// Tests: observability primitives (sharded counters, gauges, log-linear
// histograms, registry exposition, tracing) plus the end-to-end check
// that every instrumented subsystem actually shows up in a service's
// exposition.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <thread>
#include <vector>

#include "attack/fake_vp.h"
#include "common/rng.h"
#include "common/stats.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "store/segment_store.h"
#include "system/service.h"

namespace viewmap::obs {
namespace {

TEST(Counter, ShardedSumIsExact) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);

  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 20'000;
  std::vector<std::thread> pool;
  pool.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t)
    pool.emplace_back([&c] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) c.add();
    });
  for (auto& th : pool) th.join();
  // Every increment lands in exactly one slot: the sum is exact once
  // writers quiesce, whatever slots the threads were assigned.
  EXPECT_EQ(c.value(), 42u + kThreads * kPerThread);
}

TEST(Gauge, SetAddSubAndHighWater) {
  Gauge g;
  g.set(5);
  EXPECT_EQ(g.value(), 5);
  g.add(3);
  g.sub(7);
  EXPECT_EQ(g.value(), 1);
  g.set(-4);
  EXPECT_EQ(g.value(), -4);

  Gauge peak;
  peak.update_max(10);
  peak.update_max(3);  // lower: no effect
  EXPECT_EQ(peak.value(), 10);
  peak.update_max(12);
  EXPECT_EQ(peak.value(), 12);
}

TEST(Histogram, BucketBoundariesAreConsistent) {
  // Exact region: one bucket per value below 2·kSub.
  for (std::uint64_t v = 0; v < 2 * Histogram::kSub; ++v) {
    EXPECT_EQ(Histogram::bucket_index(v), v);
    EXPECT_EQ(Histogram::bucket_lower(v), v);
    EXPECT_EQ(Histogram::bucket_upper(v), v);
  }
  // Every bucket: lower maps back to it, upper maps back to it, the
  // next value starts the next bucket, and lowers are strictly
  // increasing — no gaps, no overlaps, full uint64 coverage.
  for (std::size_t idx = 0; idx < Histogram::kBuckets; ++idx) {
    const std::uint64_t lo = Histogram::bucket_lower(idx);
    const std::uint64_t hi = Histogram::bucket_upper(idx);
    ASSERT_LE(lo, hi);
    EXPECT_EQ(Histogram::bucket_index(lo), idx);
    EXPECT_EQ(Histogram::bucket_index(hi), idx);
    if (idx + 1 < Histogram::kBuckets) {
      EXPECT_EQ(hi + 1, Histogram::bucket_lower(idx + 1));
      EXPECT_EQ(Histogram::bucket_index(hi + 1), idx + 1);
    } else {
      EXPECT_EQ(hi, ~std::uint64_t{0});
    }
  }
  // Relative width bound: ≤ 12.5% once past the exact region.
  for (std::size_t idx = 2 * Histogram::kSub; idx + 1 < Histogram::kBuckets; ++idx) {
    const double lo = static_cast<double>(Histogram::bucket_lower(idx));
    const double hi = static_cast<double>(Histogram::bucket_upper(idx));
    EXPECT_LE(hi, lo * 1.125) << "bucket " << idx;
  }
}

TEST(Histogram, PercentilesTrackExactReference) {
  Histogram h;
  RunningStats reference;
  std::vector<std::uint64_t> values;
  Rng rng(7);
  for (int i = 0; i < 5000; ++i) {
    // Log-uniform-ish spread: exercises exact buckets and octaves alike.
    const auto v = static_cast<std::uint64_t>(
        std::exp(rng.uniform(0.0, std::log(2e6))));
    values.push_back(v);
    reference.add(static_cast<double>(v));
    h.record(v);
  }
  const Histogram::Snapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, values.size());
  std::uint64_t exact_sum = 0;
  for (const std::uint64_t v : values) exact_sum += v;
  EXPECT_EQ(snap.sum, exact_sum);
  EXPECT_NEAR(snap.mean(), reference.mean(), 1e-6);

  std::sort(values.begin(), values.end());
  for (const double q : {0.5, 0.9, 0.99}) {
    const std::uint64_t exact =
        values[static_cast<std::size_t>(std::ceil(q * 5000.0)) - 1];
    const std::uint64_t approx = snap.percentile(q);
    // The reported value is the upper bound of the exact sample's
    // bucket: never below it, at most one 12.5%-wide bucket above.
    EXPECT_GE(approx, exact) << "q=" << q;
    EXPECT_LE(static_cast<double>(approx),
              static_cast<double>(exact) * 1.125 + 1.0)
        << "q=" << q;
  }
  // Monotone by construction; the max never underestimates.
  EXPECT_LE(snap.percentile(0.5), snap.percentile(0.9));
  EXPECT_LE(snap.percentile(0.9), snap.percentile(0.99));
  EXPECT_GE(snap.percentile(1.0), values.back());
}

TEST(Histogram, MergesStripesAcrossThreads) {
  Histogram h;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 10'000;
  std::vector<std::thread> pool;
  pool.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t)
    pool.emplace_back([&h, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i)
        h.record(static_cast<std::uint64_t>(t) * kPerThread + i);
    });
  for (auto& th : pool) th.join();
  const Histogram::Snapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, kThreads * kPerThread);
  const std::uint64_t n = kThreads * kPerThread;
  EXPECT_EQ(snap.sum, n * (n - 1) / 2);
  std::uint64_t bucket_total = 0;
  for (const std::uint64_t b : snap.buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, snap.count);
}

TEST(Registry, GoldenExposition) {
  MetricsRegistry reg;
  reg.counter("test_requests_total", {{"kind", "a"}}).add(3);
  reg.counter("test_requests_total", {{"kind", "b"}}).add(1);
  reg.gauge("test_queue_depth").set(7);
  Histogram& h = reg.histogram("test_latency_us");
  h.record(1);
  h.record(2);
  h.record(3);

  // Byte-deterministic: ordered walk, one # TYPE line per family.
  EXPECT_EQ(reg.render_text(),
            "# TYPE test_latency_us histogram\n"
            "test_latency_us_count 3\n"
            "test_latency_us_sum 6\n"
            "test_latency_us{quantile=\"0.5\"} 2\n"
            "test_latency_us{quantile=\"0.9\"} 3\n"
            "test_latency_us{quantile=\"0.99\"} 3\n"
            "# TYPE test_queue_depth gauge\n"
            "test_queue_depth 7\n"
            "# TYPE test_requests_total counter\n"
            "test_requests_total{kind=\"a\"} 3\n"
            "test_requests_total{kind=\"b\"} 1\n");

  std::ostringstream json;
  reg.render_json(json);
  EXPECT_NE(json.str().find("\"test_queue_depth\": {\"type\": \"gauge\", \"value\": 7}"),
            std::string::npos);
  EXPECT_NE(json.str().find("\"p50\": 2"), std::string::npos);
}

TEST(Registry, IdempotentRegistrationAndKindChecks) {
  MetricsRegistry reg;
  Counter& a = reg.counter("x_total", {{"k", "v"}});
  Counter& b = reg.counter("x_total", {{"k", "v"}});
  EXPECT_EQ(&a, &b);  // same name + labels ⇒ same object
  a.add(2);
  EXPECT_EQ(b.value(), 2u);

  // Label order does not matter — the canonical name sorts keys.
  Counter& c = reg.counter("y_total", {{"b", "2"}, {"a", "1"}});
  Counter& d = reg.counter("y_total", {{"a", "1"}, {"b", "2"}});
  EXPECT_EQ(&c, &d);
  EXPECT_EQ(MetricsRegistry::full_name("y_total", {{"b", "2"}, {"a", "1"}}),
            "y_total{a=\"1\",b=\"2\"}");

  EXPECT_THROW((void)reg.gauge("x_total", {{"k", "v"}}), std::logic_error);
  EXPECT_THROW((void)reg.histogram("x_total", {{"k", "v"}}), std::logic_error);

  EXPECT_NE(reg.find_counter("x_total{k=\"v\"}"), nullptr);
  EXPECT_EQ(reg.find_counter("x_total{k=\"v\"}")->value(), 2u);
  EXPECT_EQ(reg.find_gauge("x_total{k=\"v\"}"), nullptr);  // wrong kind
  EXPECT_EQ(reg.find_counter("missing_total"), nullptr);
}

TEST(Tracer, KeepsTheSlowestN) {
  Tracer tracer(16);
  for (std::uint64_t i = 0; i < 30; ++i)
    tracer.record(Trace{"t" + std::to_string(i), i, {}});
  EXPECT_EQ(tracer.recorded(), 30u);
  const std::vector<Trace> slowest = tracer.slowest();
  ASSERT_EQ(slowest.size(), 16u);
  EXPECT_EQ(slowest.front().total_us, 29u);
  EXPECT_EQ(slowest.back().total_us, 14u);  // 14..29 survive, sorted desc
  for (std::size_t i = 0; i + 1 < slowest.size(); ++i)
    EXPECT_GE(slowest[i].total_us, slowest[i + 1].total_us);
}

TEST(Tracer, ScopesStashedSpansAndNesting) {
  Tracer tracer(4);
  {
    // No active trace: a SpanScope is inert, a stash waits for the next
    // TraceScope on this thread.
    SpanScope orphan("ignored");
  }
  stash_span("snapshot_pin", 42);
  Trace trace;
  {
    TraceScope scope(&tracer, "req");
    { SpanScope inner("edge_build"); }
    { SpanScope later("trust_rank"); }
    trace = scope.finish();
  }
  EXPECT_EQ(tracer.recorded(), 1u);
  EXPECT_EQ(trace.label, "req");
  ASSERT_EQ(trace.spans.size(), 3u);
  EXPECT_EQ(trace.spans[0].name, "snapshot_pin");
  EXPECT_EQ(trace.spans[0].dur_us, 42u);
  EXPECT_EQ(trace.spans[0].begin_us, 0u);
  EXPECT_EQ(trace.spans[1].name, "edge_build");
  EXPECT_EQ(trace.spans[2].name, "trust_rank");
  EXPECT_GE(trace.spans[2].begin_us, trace.spans[1].begin_us);

  // The stash was consumed: a second trace starts clean.
  Trace second;
  {
    TraceScope scope(&tracer, "req2");
    second = scope.finish();
  }
  EXPECT_TRUE(second.spans.empty());
}

// 8 writer threads hammering one counter + one histogram while a reader
// renders the registry concurrently. Run under TSan in CI: the sharded
// slots and stripes must be plain atomics, no annotations needed.
TEST(Registry, ConcurrentRecordAndRenderAreRaceFree) {
  MetricsRegistry reg;
  Counter& c = reg.counter("stress_total");
  Histogram& h = reg.histogram("stress_us");
  Gauge& g = reg.gauge("stress_depth");

  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 5'000;
  std::atomic<bool> done{false};
  std::thread reader([&] {
    std::size_t renders = 0;
    while (!done.load(std::memory_order_acquire) || renders == 0) {
      const std::string text = reg.render_text();
      EXPECT_NE(text.find("stress_total"), std::string::npos);
      ++renders;
    }
  });
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t)
    writers.emplace_back([&, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        c.add();
        h.record(i);
        g.set(static_cast<std::int64_t>(t));
      }
    });
  for (auto& th : writers) th.join();
  done.store(true, std::memory_order_release);
  reader.join();

  EXPECT_EQ(c.value(), kThreads * kPerThread);
  EXPECT_EQ(h.snapshot().count, kThreads * kPerThread);
}

// End-to-end: drive one small service through ingest, investigation,
// checkpoint, and recovery, then check every instrumented subsystem
// reports in the exposition and the stats structs agree with it.
TEST(Service, ExpositionCoversEverySubsystem) {
  sys::ServiceConfig cfg;
  cfg.rsa_bits = 1024;  // test speed
  sys::ViewMapService service(cfg);

  Rng rng(11);
  const TimeSec unit = 0;
  service.register_trusted(attack::make_fake_profile(unit, {0, 0}, {400, 0}, rng));
  for (int i = 0; i < 6; ++i)
    service.upload_channel().submit(
        attack::make_fake_profile(unit, {i * 50.0, 10}, {400 + i * 50.0, 10}, rng)
            .serialize());
  service.upload_channel().submit({0xde, 0xad});  // malformed
  EXPECT_EQ(service.ingest_uploads(), 6u);

  const index::IngestStats totals = service.ingest_totals();
  EXPECT_EQ(totals.accepted, 6u);
  EXPECT_EQ(totals.rejected_malformed, 1u);
  EXPECT_EQ(totals.batches, 1u);

  const auto report = service.investigate({{-50, -50}, {450, 50}}, unit);
  EXPECT_FALSE(report.trace.label.empty());
  EXPECT_FALSE(report.trace.spans.empty());
  std::vector<std::string> span_names;
  for (const auto& span : report.trace.spans) span_names.push_back(span.name);
  EXPECT_NE(std::find(span_names.begin(), span_names.end(), "member_select"),
            span_names.end());
  EXPECT_NE(std::find(span_names.begin(), span_names.end(), "solicit"),
            span_names.end());
  EXPECT_EQ(service.tracer().recorded(), 1u);

  const auto dir =
      std::filesystem::temp_directory_path() / "viewmap_obs_test_store";
  std::filesystem::remove_all(dir);
  store::SegmentStoreConfig store_cfg;
  store_cfg.fsync = false;  // durability is not under test here
  store::SegmentStore store(dir.string(), store_cfg);
  (void)service.checkpoint(store);
  (void)service.restore_from(store);
  std::filesystem::remove_all(dir);

  const std::string text = service.metrics().render_text();
  for (const char* family :
       {"viewmap_ingest_accepted_total", "viewmap_ingest_rejected_total",
        "viewmap_ingest_batch_us", "viewmap_timeline_shards",
        "viewmap_investigate_us", "viewmap_store_checkpoints_total",
        "viewmap_store_checkpoint_us", "viewmap_store_recoveries_total"})
    EXPECT_NE(text.find(family), std::string::npos) << family;

  // The struct views and the registry agree.
  const obs::Counter* accepted =
      service.metrics().find_counter("viewmap_ingest_accepted_total");
  ASSERT_NE(accepted, nullptr);
  EXPECT_EQ(accepted->value(), service.ingest_totals().accepted);
  const obs::Gauge* shards =
      service.metrics().find_gauge("viewmap_timeline_shards");
  ASSERT_NE(shards, nullptr);
  // One unit-time in play; the recovered timeline owns the gauge now.
  EXPECT_EQ(shards->value(), 1);
}

}  // namespace
}  // namespace viewmap::obs
