// ResultCache: ARC replacement mechanics on the cache itself, the
// tentpole bit-identity property (cache-on reports == cache-off reports
// under an adversarial interleaving of ingest / eviction / clock
// advance / investigate), and a TSan case with cache hits racing live
// ingest and retention eviction.
#include <gtest/gtest.h>

#include <atomic>
#include <bit>
#include <cstdint>
#include <thread>
#include <unordered_set>
#include <vector>

#include "attack/fake_vp.h"
#include "common/rng.h"
#include "system/result_cache.h"
#include "system/service.h"

namespace viewmap::sys {
namespace {

// ── ARC unit tests ───────────────────────────────────────────────────

/// An entry whose byte weight is controlled through the solicited-id
/// padding: empty report ≈ 328 bytes, +16 per id.
std::shared_ptr<CachedInvestigation> entry(std::size_t pad_ids = 0) {
  return std::make_shared<CachedInvestigation>(CachedInvestigation{
      Viewmap({}, {}, CsrGraph{}, 0, geo::Rect{}, nullptr),
      VerificationResult{}, std::vector<Id16>(pad_ids), 0});
}

ResultCache::Key key_of(int n) {
  ResultCache::Key k;
  k.unit_time = n * kUnitTimeSec;
  k.digest.bytes[0] = static_cast<std::uint8_t>(n & 0xff);
  k.site = {{0, 0}, {100, 100}};
  return k;
}

TEST(ResultCache, HitReturnsTheInsertedObjectAndCounts) {
  ResultCache cache({.capacity_bytes = 10'000});
  auto e = entry();
  const CachedInvestigation* raw = e.get();
  cache.insert(key_of(1), e);
  const auto hit1 = cache.find(key_of(1));
  const auto hit2 = cache.find(key_of(1));
  ASSERT_NE(hit1, nullptr);
  EXPECT_EQ(hit1.get(), raw);  // the very object, not a copy
  EXPECT_EQ(hit2.get(), raw);
  const auto s = cache.stats();
  EXPECT_EQ(s.hits, 2u);
  EXPECT_EQ(s.misses, 0u);
  EXPECT_EQ(s.insertions, 1u);
  EXPECT_EQ(s.resident_entries, 1u);
  EXPECT_GT(s.resident_bytes, 0u);
}

TEST(ResultCache, AnyKeyComponentChangeMisses) {
  ResultCache cache({.capacity_bytes = 10'000});
  cache.insert(key_of(1), entry());

  ResultCache::Key other_digest = key_of(1);
  other_digest.digest.bytes[31] = 0xff;  // same (site, unit), new content
  EXPECT_EQ(cache.find(other_digest), nullptr);

  ResultCache::Key other_site = key_of(1);
  other_site.site.max.x += 1.0;
  EXPECT_EQ(cache.find(other_site), nullptr);

  ResultCache::Key other_unit = key_of(1);
  other_unit.unit_time += kUnitTimeSec;
  EXPECT_EQ(cache.find(other_unit), nullptr);

  EXPECT_EQ(cache.find(key_of(1)) != nullptr, true);
  EXPECT_EQ(cache.stats().misses, 3u);
}

TEST(ResultCache, ResidentBytesNeverExceedCapacity) {
  constexpr std::size_t kCap = 1000;  // fits ~3 empty entries
  ResultCache cache({.capacity_bytes = kCap});
  for (int i = 0; i < 10; ++i) {
    cache.insert(key_of(i), entry());
    const auto s = cache.stats();
    EXPECT_LE(s.resident_bytes, kCap) << "after insert " << i;
  }
  const auto s = cache.stats();
  EXPECT_EQ(s.insertions, 10u);
  EXPECT_GE(s.evictions, 7u);  // 10 in, ≤3 resident
  EXPECT_LE(s.resident_entries, 3u);
  // A pure scan fills the recency list to capacity, so the |T1|+|B1| ≤ c
  // ghost bound correctly leaves no ghosts behind.
  EXPECT_EQ(s.ghost_entries, 0u);
}

TEST(ResultCache, GhostReinsertLandsOnFrequentListAndAdaptsTarget) {
  ResultCache cache({.capacity_bytes = 700});   // fits 2 empty entries
  cache.insert(key_of(1), entry());             // A → T1
  cache.insert(key_of(2), entry());             // B → T1
  ASSERT_NE(cache.find(key_of(1)), nullptr);    // A promotes to T2
  cache.insert(key_of(3), entry());             // C evicts B (T1 LRU) → B1 ghost
  EXPECT_EQ(cache.find(key_of(2)), nullptr);    // B is a ghost now
  ASSERT_GT(cache.stats().ghost_entries, 0u);   // and really on a ghost list

  // Re-inserting B hits its B1 ghost: ARC grows the recency target and
  // seats B on the frequency list, so the replacement it forces comes
  // out of T2's LRU (A) rather than evicting B straight back.
  cache.insert(key_of(2), entry());
  EXPECT_NE(cache.find(key_of(2)), nullptr);  // B resident again, frequent
  EXPECT_EQ(cache.find(key_of(1)), nullptr);  // A paid for it
  EXPECT_NE(cache.find(key_of(3)), nullptr);  // the recency list kept C
  const auto s = cache.stats();
  EXPECT_EQ(s.resident_entries, 2u);
  EXPECT_LE(s.resident_bytes, 700u);
}

TEST(ResultCache, EntryLargerThanCapacityIsNotCached) {
  ResultCache cache({.capacity_bytes = 400});
  cache.insert(key_of(1), entry(/*pad_ids=*/10));  // ≈ 488 bytes > 400
  EXPECT_EQ(cache.find(key_of(1)), nullptr);
  const auto s = cache.stats();
  EXPECT_EQ(s.insertions, 0u);
  EXPECT_EQ(s.resident_entries, 0u);
}

TEST(ResultCache, DisabledCacheIsInert) {
  ResultCache cache({.enabled = false, .capacity_bytes = 10'000});
  EXPECT_FALSE(cache.enabled());
  cache.insert(key_of(1), entry());
  EXPECT_EQ(cache.find(key_of(1)), nullptr);
  const auto s = cache.stats();
  EXPECT_EQ(s.hits + s.misses + s.insertions, 0u);
}

TEST(ResultCache, ClearDropsEntriesButKeepsCounters) {
  ResultCache cache({.capacity_bytes = 10'000});
  cache.insert(key_of(1), entry());
  ASSERT_NE(cache.find(key_of(1)), nullptr);
  cache.clear();
  EXPECT_EQ(cache.find(key_of(1)), nullptr);
  const auto s = cache.stats();
  EXPECT_EQ(s.resident_entries, 0u);
  EXPECT_EQ(s.resident_bytes, 0u);
  EXPECT_EQ(s.hits, 1u);  // history survives the wipe
}

// ── the tentpole property: bit-identical reports, cache on vs off ────

/// Order-sensitive FNV-1a over everything the report asserts about the
/// world: members (ids + trust flags), the CSR edge set, the verification
/// verdicts, the TrustRank vector bytes, and the solicited ids. The trace
/// is excluded by design — it is timing-valued and records the serving
/// path (build spans vs result_cache_hit).
std::uint64_t fingerprint(const InvestigationReport& r) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  const auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 0x100000001b3ull;
    }
  };
  const Viewmap& m = r.viewmap;
  mix(m.size());
  mix(static_cast<std::uint64_t>(m.unit_time()));
  for (std::size_t i = 0; i < m.size(); ++i) {
    for (std::uint8_t b : m.member(i).vp_id().bytes) mix(b);
    mix(m.is_trusted(i) ? 1 : 0);
  }
  for (std::size_t o : m.graph().offsets()) mix(o);
  for (std::uint32_t e : m.graph().edges()) mix(e);
  const VerificationResult& v = r.verification;
  for (std::size_t i : v.site_members) mix(i);
  for (std::size_t i : v.legitimate) mix(i);
  for (std::size_t i : v.rejected) mix(i);
  for (double s : v.ranks.scores) mix(std::bit_cast<std::uint64_t>(s));
  mix(static_cast<std::uint64_t>(v.ranks.iterations));
  mix(v.ranks.converged ? 1 : 0);
  for (const Id16& id : r.solicited) for (std::uint8_t b : id.bytes) mix(b);
  return h;
}

TEST(ResultCacheProperty, FortyStepInterleavingIsBitIdenticalToCacheOff) {
  // Two services, identical in everything except the cache switch, fed
  // byte-identical inputs through 40 random steps of
  // {ingest, advance_clock(evict), investigate, investigate-again}.
  // Every investigation must agree between the two — same report
  // fingerprint or the same builder refusal — while the cache-on side
  // takes real hits and stays inside its byte budget.
  ServiceConfig on_cfg;
  on_cfg.rsa_bits = 1024;
  on_cfg.result_cache.capacity_bytes = 2048;  // small: force ARC turnover
  on_cfg.index.retention.window_sec = 300;    // 5 minutes: eviction in-play
  ServiceConfig off_cfg = on_cfg;
  off_cfg.result_cache.enabled = false;
  ViewMapService on(on_cfg);
  ViewMapService off(off_cfg);

  Rng rng(177);
  constexpr int kMinutes = 8;
  for (int m = 0; m < kMinutes; ++m) {
    const auto trusted = attack::make_fake_profile(
        m * kUnitTimeSec, {0, 0}, {900, 0}, rng);
    ASSERT_TRUE(on.register_trusted(trusted));
    ASSERT_TRUE(off.register_trusted(trusted));
  }
  const std::vector<geo::Rect> sites = {
      {{0, -50}, {400, 50}}, {{200, -50}, {700, 50}}, {{500, -50}, {1000, 50}}};
  TimeSec now = kMinutes * kUnitTimeSec;
  on.advance_clock(now);
  off.advance_clock(now);

  const auto investigate_both = [&](const geo::Rect& site, TimeSec t) {
    std::uint64_t fp_on = 0, fp_off = 0;
    bool threw_on = false, threw_off = false;
    try {
      fp_on = fingerprint(on.investigate(site, t));
    } catch (const std::runtime_error&) {
      threw_on = true;
    }
    try {
      fp_off = fingerprint(off.investigate(site, t));
    } catch (const std::runtime_error&) {
      threw_off = true;
    }
    ASSERT_EQ(threw_on, threw_off) << "site.max.x=" << site.max.x << " t=" << t;
    if (!threw_on)
      ASSERT_EQ(fp_on, fp_off) << "site.max.x=" << site.max.x << " t=" << t;
  };

  for (int step = 0; step < 40; ++step) {
    switch (rng.index(4)) {
      case 0: {  // ingest: same serialized bytes into both channels
        const TimeSec minute = static_cast<TimeSec>(rng.index(kMinutes)) * kUnitTimeSec;
        for (int i = 0; i < 3; ++i) {
          const double x = rng.uniform(0.0, 600.0);
          const auto vp = attack::make_fake_profile(
              minute, {x, rng.uniform(-20.0, 20.0)}, {x + 350, 0}, rng);
          const auto bytes = vp.serialize();
          on.upload_channel().submit(bytes);
          off.upload_channel().submit(bytes);
        }
        ASSERT_EQ(on.ingest_uploads(), off.ingest_uploads());
        break;
      }
      case 1:  // advance the trusted clock: retention eviction fires
        now += kUnitTimeSec;
        on.advance_clock(now);
        off.advance_clock(now);
        break;
      default: {  // investigate the same key twice: miss-then-hit on the
                  // cache side whenever the build succeeds
        const geo::Rect& site = sites[rng.index(sites.size())];
        const TimeSec t = static_cast<TimeSec>(rng.index(kMinutes)) * kUnitTimeSec;
        investigate_both(site, t);
        investigate_both(site, t);
        break;
      }
    }
    EXPECT_LE(on.result_cache().stats().resident_bytes,
              on_cfg.result_cache.capacity_bytes);
  }

  // The run must have exercised the cache for the property to mean
  // anything: real hits, real misses, and both boards agreeing on the
  // full set of solicited videos.
  const auto s = on.result_cache().stats();
  EXPECT_GT(s.hits, 0u);
  EXPECT_GT(s.misses, 0u);
  const auto posted_on = on.board().posted(RequestKind::kVideo);
  const auto posted_off = off.board().posted(RequestKind::kVideo);
  const std::unordered_set<Id16, Id16Hasher> set_on(posted_on.begin(), posted_on.end());
  const std::unordered_set<Id16, Id16Hasher> set_off(posted_off.begin(),
                                                     posted_off.end());
  EXPECT_EQ(set_on, set_off);
  EXPECT_EQ(off.result_cache().stats().hits, 0u);  // the control stayed cold
}

// ── TSan: cache hits racing live ingest + retention eviction ─────────

TEST(ResultCacheConcurrent, HitsRaceLiveIngestAndEviction) {
  ServiceConfig cfg;
  cfg.rsa_bits = 1024;
  cfg.result_cache.capacity_bytes = 16 * 1024;  // small: eviction under race
  cfg.index.retention.window_sec = 240;
  ViewMapService service(cfg);

  Rng seed_rng(41);
  constexpr int kMinutes = 6;
  for (int m = 0; m < kMinutes; ++m)
    ASSERT_TRUE(service.register_trusted(attack::make_fake_profile(
        m * kUnitTimeSec, {0, 0}, {900, 0}, seed_rng)));
  service.advance_clock(kMinutes * kUnitTimeSec);

  std::atomic<bool> stop{false};
  std::atomic<std::size_t> served{0};
  const geo::Rect site{{0, -50}, {800, 50}};

  // Two investigators hammer a rotating key set — hits, misses, inserts,
  // and ARC evictions all race each other...
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r)
    readers.emplace_back([&service, &stop, &served, &site, r] {
      for (int i = 0; !stop.load(std::memory_order_relaxed); ++i) {
        const TimeSec t = ((i + r) % kMinutes) * kUnitTimeSec;
        try {
          const auto report = service.investigate(site, t);
          if (report.viewmap.size() > 0) served.fetch_add(1);
        } catch (const std::runtime_error&) {
          // minute evicted mid-run: acceptable, the key just went stale
        }
      }
    });

  // ...while the single control thread keeps ingesting into the same
  // minutes (shard change-keys churn ⇒ cache keys go stale) and advances the
  // retention clock (shards evict under the readers).
  Rng rng(43);
  for (int k = 0; k < 40; ++k) {
    const TimeSec minute = static_cast<TimeSec>(rng.index(kMinutes)) * kUnitTimeSec;
    for (int i = 0; i < 2; ++i) {
      const double x = rng.uniform(0.0, 500.0);
      service.upload_channel().submit(
          attack::make_fake_profile(minute, {x, 0}, {x + 300, 0}, rng).serialize());
    }
    service.ingest_uploads();
    service.advance_clock(kMinutes * kUnitTimeSec + k * 10);
  }
  stop.store(true);
  for (auto& t : readers) t.join();

  EXPECT_GT(served.load(), 0u);
  const auto s = service.result_cache().stats();
  EXPECT_LE(s.resident_bytes, cfg.result_cache.capacity_bytes);
  EXPECT_GT(s.hits + s.misses, 0u);
}

}  // namespace
}  // namespace viewmap::sys
