// Unit + property tests: spatial grid, sharded timeline, retention
// eviction, and the concurrent ingest engine.
#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <thread>
#include <vector>

#include "attack/fake_vp.h"
#include "common/rng.h"
#include "index/ingest_engine.h"
#include "index/spatial_grid.h"
#include "index/timeline.h"
#include "sim/simulator.h"
#include "system/vp_database.h"

namespace viewmap::index {
namespace {

/// Cheap structurally-valid VP: straight line over one minute. Same
/// generator the attack experiments use, so it passes VpUploadPolicy.
vp::ViewProfile straight_vp(TimeSec unit, geo::Vec2 start, geo::Vec2 end, Rng& rng) {
  return attack::make_fake_profile(unit, start, end, rng);
}

vp::ViewProfile random_vp(TimeSec unit, double extent, Rng& rng) {
  const geo::Vec2 start{rng.uniform(-extent, extent), rng.uniform(-extent, extent)};
  const geo::Vec2 end{start.x + rng.uniform(-1500.0, 1500.0),
                      start.y + rng.uniform(-1500.0, 1500.0)};
  return straight_vp(unit, start, end, rng);
}

/// The pre-index query algorithm, verbatim: linear scan of everything.
std::vector<Id16> linear_scan_ids(const DbSnapshot& snap, TimeSec unit_time,
                                  const geo::Rect& area) {
  std::vector<Id16> out;
  for (const auto* profile : snap.all())
    if (profile->unit_time() == unit_time && profile->visits(area))
      out.push_back(profile->vp_id());
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<Id16> ids_of(const std::vector<const vp::ViewProfile*>& profiles) {
  std::vector<Id16> out;
  out.reserve(profiles.size());
  for (const auto* p : profiles) out.push_back(p->vp_id());
  std::sort(out.begin(), out.end());
  return out;
}

TEST(SpatialGrid, CandidatesAreSupersetAndDeduplicated) {
  Rng rng(1);
  std::vector<vp::ViewProfile> profiles;
  for (int i = 0; i < 50; ++i) profiles.push_back(random_vp(0, 3000.0, rng));

  SpatialGrid grid;
  for (const auto& p : profiles) grid.insert(&p);
  EXPECT_GT(grid.cell_count(), 0u);
  EXPECT_GE(grid.entry_count(), profiles.size());

  for (int q = 0; q < 100; ++q) {
    const geo::Vec2 c{rng.uniform(-3000.0, 3000.0), rng.uniform(-3000.0, 3000.0)};
    const double half = rng.uniform(50.0, 800.0);
    const geo::Rect area{{c.x - half, c.y - half}, {c.x + half, c.y + half}};

    std::vector<const vp::ViewProfile*> candidates;
    grid.collect_candidates(area, candidates);

    // No duplicates.
    auto sorted = candidates;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_TRUE(std::adjacent_find(sorted.begin(), sorted.end()) == sorted.end());

    // Every VP that exactly visits the area must be among the candidates.
    for (const auto& p : profiles)
      if (p.visits(area))
        EXPECT_TRUE(std::find(candidates.begin(), candidates.end(), &p) !=
                    candidates.end());
  }
}

TEST(SpatialGrid, EraseRemovesAllReferences) {
  Rng rng(3);
  auto keep = random_vp(0, 1000.0, rng);
  auto drop = random_vp(0, 1000.0, rng);
  SpatialGrid grid;
  grid.insert(&keep);
  grid.insert(&drop);
  grid.erase(&drop);

  std::vector<const vp::ViewProfile*> candidates;
  grid.collect_candidates({{-1e9, -1e9}, {1e9, 1e9}}, candidates);
  EXPECT_EQ(candidates, std::vector<const vp::ViewProfile*>{&keep});

  // Erasing the rest leaves a truly empty grid.
  grid.erase(&keep);
  EXPECT_EQ(grid.cell_count(), 0u);
  EXPECT_EQ(grid.entry_count(), 0u);
}

TEST(SpatialGrid, HugeQueryRectFallsBackToCellScan) {
  Rng rng(2);
  std::vector<vp::ViewProfile> profiles;
  for (int i = 0; i < 10; ++i) profiles.push_back(random_vp(0, 1000.0, rng));
  SpatialGrid grid;
  for (const auto& p : profiles) grid.insert(&p);

  std::vector<const vp::ViewProfile*> candidates;
  grid.collect_candidates({{-1e9, -1e9}, {1e9, 1e9}}, candidates);
  EXPECT_EQ(candidates.size(), profiles.size());
}

TEST(VpTimelineProperty, QueryMatchesLinearScanOnRandomWorkloads) {
  for (std::uint64_t seed = 10; seed < 15; ++seed) {
    Rng rng(seed);
    sys::VpDatabase db;
    const int minutes = 5;
    for (int i = 0; i < 300; ++i) {
      const TimeSec unit = kUnitTimeSec * rng.index(static_cast<std::size_t>(minutes));
      auto profile = random_vp(unit, 4000.0, rng);
      const bool trusted = rng.index(10) == 0;
      ASSERT_TRUE(trusted ? db.upload_trusted(std::move(profile))
                          : db.upload(std::move(profile)));
    }

    const DbSnapshot snap = db.snapshot();
    for (int q = 0; q < 200; ++q) {
      const TimeSec unit = kUnitTimeSec * rng.index(static_cast<std::size_t>(minutes + 1));
      const geo::Vec2 c{rng.uniform(-4500.0, 4500.0), rng.uniform(-4500.0, 4500.0)};
      const double half = rng.uniform(10.0, 2000.0);
      const geo::Rect area{{c.x - half, c.y - half}, {c.x + half, c.y + half}};

      const auto indexed = snap.query(unit, area);
      EXPECT_EQ(ids_of(indexed), linear_scan_ids(snap, unit, area));
      // Results are id-ordered (deterministic across runs).
      for (std::size_t i = 1; i < indexed.size(); ++i)
        EXPECT_TRUE(indexed[i - 1]->vp_id() < indexed[i]->vp_id());
    }

    // Whole-world queries per minute partition all().
    std::size_t total = 0;
    const geo::Rect everywhere{{-1e7, -1e7}, {1e7, 1e7}};
    for (int m = 0; m < minutes; ++m)
      total += snap.query(m * kUnitTimeSec, everywhere).size();
    EXPECT_EQ(total, snap.size());
  }
}

TEST(VpTimeline, TrustedSetSemantics) {
  Rng rng(20);
  sys::VpDatabase db;
  auto trusted = random_vp(0, 1000.0, rng);
  auto plain = random_vp(0, 1000.0, rng);
  const Id16 trusted_id = trusted.vp_id();
  const Id16 plain_id = plain.vp_id();
  ASSERT_TRUE(db.upload_trusted(std::move(trusted)));
  ASSERT_TRUE(db.upload(std::move(plain)));

  const DbSnapshot snap = db.snapshot();
  EXPECT_TRUE(db.is_trusted(trusted_id));
  EXPECT_FALSE(db.is_trusted(plain_id));
  EXPECT_EQ(db.trusted_count(), 1u);
  EXPECT_EQ(snap.trusted_ids(), std::vector<Id16>{trusted_id});
  EXPECT_EQ(snap.trusted_at(0).size(), 1u);
  // Live and snapshot trust views agree for every stored VP (the old
  // map<Id,bool> representation could make them disagree).
  const auto trusted_list = snap.trusted_ids();
  for (const auto* p : snap.all()) {
    const bool listed = std::find(trusted_list.begin(), trusted_list.end(),
                                  p->vp_id()) != trusted_list.end();
    EXPECT_EQ(db.is_trusted(p->vp_id()), listed);
    EXPECT_EQ(snap.is_trusted(p->vp_id()), listed);
  }
}

TEST(VpTimeline, RetentionEvictsWholeShards) {
  Rng rng(30);
  TimelineConfig cfg;
  cfg.retention.window_sec = 2 * kUnitTimeSec;  // keep latest two minutes
  VpTimeline timeline(cfg);

  std::vector<Id16> minute0_ids;
  for (int i = 0; i < 10; ++i) {
    auto p = random_vp(0, 1000.0, rng);
    minute0_ids.push_back(p.vp_id());
    ASSERT_TRUE(timeline.insert(std::move(p), i == 0));  // one trusted
  }
  auto p60 = random_vp(60, 1000.0, rng);
  const Id16 id60 = p60.vp_id();
  ASSERT_TRUE(timeline.insert(std::move(p60), false));
  EXPECT_EQ(timeline.size(), 11u);
  EXPECT_EQ(timeline.trusted_count(), 1u);
  EXPECT_EQ(timeline.trusted_now(), 0);  // trusted insert set the clock
  EXPECT_EQ(timeline.enforce_retention(), 0u);  // everything within window

  auto p180 = random_vp(180, 1000.0, rng);
  ASSERT_TRUE(timeline.insert(std::move(p180), false));
  // An anonymous insert never advances the retention clock...
  EXPECT_EQ(timeline.trusted_now(), 0);
  EXPECT_EQ(timeline.enforce_retention(), 0u);
  // ...the operator's clock does. now = 180, cutoff = 60: the minute-0
  // shard (trusted VP included) must vanish in one whole-shard eviction.
  timeline.advance_clock(180);
  EXPECT_EQ(timeline.enforce_retention(), 10u);
  EXPECT_EQ(timeline.size(), 2u);
  EXPECT_EQ(timeline.trusted_count(), 0u);
  EXPECT_EQ(timeline.shard_stats().size(), 2u);
  for (const auto& id : minute0_ids) {
    EXPECT_EQ(timeline.find(id), nullptr);
    EXPECT_FALSE(timeline.is_trusted(id));
  }
  EXPECT_NE(timeline.find(id60), nullptr);
  EXPECT_TRUE(timeline.snapshot().query(0, {{-1e6, -1e6}, {1e6, 1e6}}).empty());

  // An evicted id is a tombstone, not a live entry: re-uploading it (the
  // same vehicle re-submitting after the service aged it out) must work.
  Rng rng2(30);  // same seed → same first profile → same id
  auto again = random_vp(0, 1000.0, rng2);
  ASSERT_EQ(again.vp_id(), minute0_ids[0]);
  EXPECT_TRUE(timeline.insert(std::move(again), false));
  EXPECT_NE(timeline.find(minute0_ids[0]), nullptr);
}

TEST(VpTimeline, RetentionIgnoresAnonymousClaims) {
  Rng rng(35);
  TimelineConfig cfg;
  cfg.retention.window_sec = 2 * kUnitTimeSec;
  VpTimeline timeline(cfg);
  for (int i = 0; i < 10; ++i)
    ASSERT_TRUE(timeline.insert(random_vp(0, 1000.0, rng), false));

  // The anonymous-attacker eviction vector: a well-formed upload claiming
  // a far-future minute must not age out anyone else's shards.
  ASSERT_TRUE(timeline.insert(random_vp(1'000'000'000'000LL, 1000.0, rng), false));
  EXPECT_FALSE(timeline.has_trusted_clock());
  EXPECT_EQ(timeline.enforce_retention(), 0u);  // no trusted clock, no eviction
  EXPECT_EQ(timeline.size(), 11u);

  // Once the clock is set, the far-future junk admitted while it was
  // unset is reclaimed (otherwise it would sit beyond every future cutoff
  // forever); the minute-0 shard is inside the window and stays.
  timeline.advance_clock(60);
  EXPECT_EQ(timeline.enforce_retention(), 1u);
  EXPECT_EQ(timeline.size(), 10u);

  // reset_clock is the operator's non-monotonic escape hatch (a poisoned
  // clock cannot be walked back via advance_clock), and a clock at the
  // representable floor must saturate, not wrap (UB).
  timeline.reset_clock(std::numeric_limits<TimeSec>::min() + 1);
  EXPECT_EQ(timeline.trusted_now(), std::numeric_limits<TimeSec>::min() + 1);
  EXPECT_EQ(timeline.enforce_retention(), 10u);  // everything implausibly new now
  EXPECT_EQ(timeline.size(), 0u);
}

TEST(VpTimeline, AdmissionScreenBoundsAnonymousTimestamps) {
  Rng rng(36);
  TimelineConfig cfg;
  cfg.retention.window_sec = 2 * kUnitTimeSec;
  cfg.retention.max_future_skew_sec = kUnitTimeSec;
  sys::VpDatabase db({}, cfg);

  // No trusted reference yet: every claim is admissible.
  ASSERT_TRUE(db.upload(random_vp(0, 1000.0, rng)));

  auto authority = random_vp(600, 1000.0, rng);
  ASSERT_TRUE(db.upload_trusted(std::move(authority)));
  EXPECT_EQ(db.trusted_now(), 600);

  EXPECT_TRUE(db.upload(random_vp(600 + kUnitTimeSec, 1000.0, rng)));   // at skew edge
  EXPECT_TRUE(db.upload(random_vp(600 - 2 * kUnitTimeSec, 1000.0, rng)));  // at window edge
  EXPECT_FALSE(db.upload(random_vp(600 + 2 * kUnitTimeSec, 1000.0, rng)));  // too new
  EXPECT_FALSE(db.upload(random_vp(600 - 3 * kUnitTimeSec, 1000.0, rng)));  // too old
  EXPECT_EQ(db.size(), 4u);

  // Retention measures from the same trusted clock: only the pre-clock
  // minute-0 VP has aged out.
  EXPECT_EQ(db.enforce_retention(), 1u);
  EXPECT_EQ(db.size(), 3u);
}

TEST(VpTimeline, TombstoneCompactionKeepsLookupsConsistent) {
  Rng rng(40);
  VpTimeline timeline;
  // Many VPs in an old minute, then few in a new one: eviction leaves
  // tombstones outnumbering live ids, forcing a compaction sweep.
  std::vector<Id16> old_ids;
  for (int i = 0; i < 200; ++i) {
    auto p = random_vp(0, 2000.0, rng);
    old_ids.push_back(p.vp_id());
    ASSERT_TRUE(timeline.insert(std::move(p), false));
  }
  std::vector<Id16> new_ids;
  for (int i = 0; i < 5; ++i) {
    auto p = random_vp(600, 2000.0, rng);
    new_ids.push_back(p.vp_id());
    ASSERT_TRUE(timeline.insert(std::move(p), false));
  }
  EXPECT_EQ(timeline.evict_older_than(600), 200u);
  EXPECT_EQ(timeline.size(), 5u);
  for (const auto& id : old_ids) EXPECT_EQ(timeline.find(id), nullptr);
  for (const auto& id : new_ids) EXPECT_NE(timeline.find(id), nullptr);
}

TEST(IngestEngine, StatsAndDuplicateScreen) {
  Rng rng(50);
  sys::VpDatabase db;
  std::vector<std::vector<std::uint8_t>> payloads;
  for (int i = 0; i < 20; ++i) payloads.push_back(random_vp(0, 2000.0, rng).serialize());
  payloads.push_back(payloads.front());      // duplicate id
  payloads.push_back({0xde, 0xad, 0xbe});    // malformed

  IngestConfig cfg;
  cfg.threads = 4;
  cfg.min_parallel_batch = 1;
  IngestEngine engine(db.timeline(), db.policy(), cfg);
  const auto stats = engine.ingest(std::move(payloads));
  EXPECT_EQ(stats.accepted, 20u);
  EXPECT_EQ(stats.rejected_duplicate, 1u);
  EXPECT_EQ(stats.rejected_malformed, 1u);
  EXPECT_EQ(db.size(), 20u);
  EXPECT_EQ(engine.totals().accepted, 20u);
}

TEST(IngestEngine, FarFutureAnonymousBatchCannotEvictRealShards) {
  Rng rng(55);
  TimelineConfig tl_cfg;
  tl_cfg.retention.window_sec = 2 * kUnitTimeSec;
  sys::VpDatabase db({}, tl_cfg);
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(db.upload(random_vp(0, 2000.0, rng)));
  ASSERT_TRUE(db.upload_trusted(random_vp(60, 2000.0, rng)));  // clock = 60

  // The batch path enforces retention after every ingest; a far-future
  // anonymous claim must be screened out, not advance the cutoff.
  IngestConfig cfg;
  cfg.threads = 2;
  cfg.min_parallel_batch = 1;
  IngestEngine engine(db.timeline(), db.policy(), cfg);
  std::vector<std::vector<std::uint8_t>> payloads;
  payloads.push_back(random_vp(1'000'000'000'000LL, 2000.0, rng).serialize());
  payloads.push_back(random_vp(0, 2000.0, rng).serialize());  // still plausible
  const auto stats = engine.ingest(std::move(payloads));
  EXPECT_EQ(stats.rejected_untimely, 1u);
  EXPECT_EQ(stats.accepted, 1u);
  EXPECT_EQ(stats.evicted, 0u);
  EXPECT_EQ(db.size(), 12u);
  EXPECT_EQ(db.trusted_now(), 60);
}

TEST(IngestEngine, ThreadCountDoesNotChangeTheOutcome) {
  Rng rng(60);
  std::vector<std::vector<std::uint8_t>> payloads;
  for (int i = 0; i < 200; ++i) {
    const TimeSec unit = kUnitTimeSec * rng.index(4);
    payloads.push_back(random_vp(unit, 3000.0, rng).serialize());
  }
  // Every fourth payload duplicated: the duplicates lose regardless of
  // which worker wins the race.
  for (std::size_t i = 0; i < 200; i += 4) payloads.push_back(payloads[i]);

  std::vector<Id16> reference;
  for (unsigned threads : {1u, 2u, 8u}) {
    sys::VpDatabase db;
    IngestConfig cfg;
    cfg.threads = threads;
    cfg.min_parallel_batch = 1;
    IngestEngine engine(db.timeline(), db.policy(), cfg);
    const auto stats = engine.ingest(payloads);
    EXPECT_EQ(stats.accepted, 200u);
    EXPECT_EQ(stats.rejected_duplicate, 50u);
    auto ids = ids_of(db.snapshot().all());
    if (reference.empty())
      reference = ids;
    else
      EXPECT_EQ(ids, reference);
  }
}

TEST(IngestEngine, ConcurrentInsertsOnOneTimelineAreSafe) {
  Rng rng(70);
  // Shared duplicates contended by every thread plus a private set each.
  std::vector<vp::ViewProfile> shared;
  for (int i = 0; i < 50; ++i) shared.push_back(random_vp(0, 3000.0, rng));

  VpTimeline timeline;
  constexpr int kThreads = 4;
  std::vector<std::vector<vp::ViewProfile>> private_sets(kThreads);
  for (int t = 0; t < kThreads; ++t)
    for (int i = 0; i < 100; ++i)
      private_sets[static_cast<std::size_t>(t)].push_back(
          random_vp(kUnitTimeSec * (t % 3), 3000.0, rng));

  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t)
    pool.emplace_back([&, t] {
      for (auto& p : private_sets[static_cast<std::size_t>(t)])
        EXPECT_TRUE(timeline.insert(std::move(p), false));
      for (const auto& p : shared) timeline.insert(p, false);  // racing duplicates
    });
  for (auto& th : pool) th.join();

  EXPECT_EQ(timeline.size(), static_cast<std::size_t>(kThreads * 100 + 50));
  for (const auto& p : shared) EXPECT_NE(timeline.find(p.vp_id()), nullptr);
}

TEST(VpTimeline, EvictionConcurrentWithInsertKeepsCountersSane) {
  Rng rng(45);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 80;
  std::vector<std::vector<vp::ViewProfile>> sets(kThreads);
  for (int t = 0; t < kThreads; ++t)
    for (int i = 0; i < kPerThread; ++i)
      sets[static_cast<std::size_t>(t)].push_back(
          random_vp(kUnitTimeSec * (i % 6), 2000.0, rng));

  VpTimeline timeline;
  std::atomic<bool> done{false};
  std::thread evictor([&] {
    while (!done.load()) timeline.evict_older_than(3 * kUnitTimeSec);
    timeline.evict_older_than(3 * kUnitTimeSec);
  });
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t)
    pool.emplace_back([&, t] {
      for (auto& p : sets[static_cast<std::size_t>(t)])
        timeline.insert(std::move(p), false);
    });
  for (auto& th : pool) th.join();
  done.store(true);
  evictor.join();

  // Every survivor is in minutes [3, 6); the counters match a full walk
  // (a transient counter wrap would leave size() astronomically large).
  const DbSnapshot snap = timeline.snapshot();
  const auto survivors = snap.all();
  EXPECT_EQ(timeline.size(), survivors.size());
  EXPECT_LE(timeline.size(), static_cast<std::size_t>(kThreads * kPerThread));
  for (const auto* p : survivors) EXPECT_GE(p->unit_time(), 3 * kUnitTimeSec);
}

TEST(IngestEngine, DrainsSimulatedTrafficLikeTheSerialPath) {
  road::GridCityConfig ccfg;
  ccfg.extent_m = 1000.0;
  Rng city_rng(80);
  auto city = road::make_grid_city(ccfg, city_rng);
  sim::SimConfig scfg;
  scfg.seed = 81;
  scfg.vehicle_count = 12;
  scfg.minutes = 2;
  scfg.video_bytes_per_second = 8;
  sim::TrafficSimulator simulator(std::move(city), scfg);
  const auto world = simulator.run();
  auto payloads = sim::upload_payloads(world);
  ASSERT_FALSE(payloads.empty());

  // Serial reference: the pre-engine upload loop.
  sys::VpDatabase reference;
  std::size_t reference_accepted = 0;
  for (const auto& payload : payloads)
    if (reference.upload(vp::ViewProfile::parse(payload))) ++reference_accepted;

  sys::VpDatabase db;
  IngestConfig cfg;
  cfg.threads = 4;
  cfg.min_parallel_batch = 1;
  IngestEngine engine(db.timeline(), db.policy(), cfg);
  const auto stats = engine.ingest(std::move(payloads));
  EXPECT_EQ(stats.accepted, reference_accepted);
  EXPECT_EQ(ids_of(db.snapshot().all()), ids_of(reference.snapshot().all()));
}

}  // namespace
}  // namespace viewmap::index
