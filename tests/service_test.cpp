// Tests: ViewMapService facade — upload path, investigation, solicitation,
// video validation, reward protocol (paper Fig. 2 pipeline).
#include <gtest/gtest.h>

#include "attack/fake_vp.h"
#include "reward/client.h"
#include "sim/simulator.h"
#include "system/service.h"

namespace viewmap::sys {
namespace {

/// A compact world: 4 vehicles in convoy on an open road (vehicle 0 acts
/// as the police car), with retained videos and secrets.
struct World {
  World() {
    sim::SimConfig cfg;
    cfg.seed = 5;
    cfg.vehicle_count = 0;  // explicit fleet below
    cfg.minutes = 1;
    cfg.guards_enabled = false;
    cfg.keep_videos = true;
    cfg.video_bytes_per_second = 32;

    road::CityMap open;
    open.bounds = {{0, -100}, {5000, 100}};
    std::vector<sim::VehicleMotion> fleet;
    for (int i = 0; i < 4; ++i)
      fleet.push_back(
          sim::VehicleMotion::scripted({{i * 60.0, 0}, {5000 + i * 60.0, 0}}, 15.0));
    sim::TrafficSimulator sim(std::move(open), cfg, std::move(fleet));
    result = sim.run();
  }

  [[nodiscard]] const sim::ProfileRecord& record_of(VehicleId v) const {
    for (const auto& rec : result.profiles)
      if (!rec.guard && rec.creator == v) return rec;
    throw std::logic_error("no record");
  }
  [[nodiscard]] const sim::OwnedVp& owned_of(VehicleId v) const {
    for (const auto& o : result.owned)
      if (o.vehicle == v) return o;
    throw std::logic_error("no owned");
  }
  [[nodiscard]] const vp::RecordedVideo& video_of(VehicleId v) const {
    for (std::size_t i = 0; i < result.owned.size(); ++i)
      if (result.owned[i].vehicle == v) return result.videos[i];
    throw std::logic_error("no video");
  }

  sim::SimResult result;
};

ServiceConfig test_cfg() {
  ServiceConfig cfg;
  cfg.rsa_bits = 1024;  // test speed
  return cfg;
}

TEST(Service, IngestAcceptsValidAndDropsGarbage) {
  World world;
  ViewMapService service(test_cfg());
  service.upload_channel().submit(world.record_of(1).profile.serialize());
  service.upload_channel().submit({1, 2, 3});  // malformed
  service.upload_channel().submit(world.record_of(2).profile.serialize());
  service.upload_channel().submit(world.record_of(2).profile.serialize());  // dup
  EXPECT_EQ(service.ingest_uploads(), 2u);
  EXPECT_EQ(service.database().size(), 2u);
}

TEST(Service, InvestigationSolicitsLegitimateSiteVps) {
  World world;
  ViewMapService service(test_cfg());
  service.register_trusted(world.record_of(0).profile);
  for (VehicleId v = 1; v < 4; ++v)
    service.upload_channel().submit(world.record_of(v).profile.serialize());
  service.ingest_uploads();

  // Site around the convoy's first-minute stretch.
  const geo::Rect site{{0, -50}, {1200, 50}};
  const auto report = service.investigate(site, 0);

  EXPECT_EQ(report.viewmap.size(), 4u);
  EXPECT_EQ(report.verification.legitimate.size(), 4u);
  // Trusted VP's own video is not solicited.
  EXPECT_EQ(report.solicited.size(), 3u);
  for (const Id16& id : report.solicited)
    EXPECT_TRUE(service.board().is_posted(id, RequestKind::kVideo));
}

TEST(Service, BoardNeverRevealsSiteOrTime) {
  // Structural: the notice board API carries VP identifiers only.
  World world;
  ViewMapService service(test_cfg());
  service.register_trusted(world.record_of(0).profile);
  service.upload_channel().submit(world.record_of(1).profile.serialize());
  service.ingest_uploads();
  const auto report = service.investigate({{0, -50}, {1200, 50}}, 0);
  const auto posted = service.board().posted(RequestKind::kVideo);
  for (const Id16& id : posted)
    EXPECT_EQ(sizeof(id), 16u);  // an opaque identifier, nothing else
}

TEST(Service, VideoSubmissionValidatesHashChain) {
  World world;
  ViewMapService service(test_cfg());
  service.register_trusted(world.record_of(0).profile);
  service.upload_channel().submit(world.record_of(1).profile.serialize());
  service.ingest_uploads();
  (void)service.investigate({{0, -50}, {1200, 50}}, 0);

  const Id16 id = world.owned_of(1).vp_id;
  ASSERT_TRUE(service.board().is_posted(id, RequestKind::kVideo));

  // Wrong vehicle's video fails the cascaded-hash check.
  EXPECT_FALSE(service.submit_video(id, world.video_of(2)));
  // The right video passes and enters human review.
  EXPECT_TRUE(service.submit_video(id, world.video_of(1)));
  EXPECT_FALSE(service.board().is_posted(id, RequestKind::kVideo));
  ASSERT_EQ(service.review_queue().size(), 1u);
  EXPECT_EQ(service.review_queue()[0], id);
}

TEST(Service, UnsolicitedVideoRejected) {
  World world;
  ViewMapService service(test_cfg());
  service.register_trusted(world.record_of(0).profile);
  service.upload_channel().submit(world.record_of(1).profile.serialize());
  service.ingest_uploads();
  // No investigation ⇒ nothing posted ⇒ uploads rejected outright.
  EXPECT_FALSE(service.submit_video(world.owned_of(1).vp_id, world.video_of(1)));
}

TEST(Service, PendingRequestsFilter) {
  World world;
  ViewMapService service(test_cfg());
  service.register_trusted(world.record_of(0).profile);
  for (VehicleId v = 1; v < 4; ++v)
    service.upload_channel().submit(world.record_of(v).profile.serialize());
  service.ingest_uploads();
  (void)service.investigate({{0, -50}, {1200, 50}}, 0);

  const std::vector<Id16> mine{world.owned_of(2).vp_id};
  const auto pending = service.pending_video_requests(mine);
  ASSERT_EQ(pending.size(), 1u);
  EXPECT_EQ(pending[0], mine[0]);
}

TEST(Service, RewardProtocolEndToEnd) {
  World world;
  ViewMapService service(test_cfg());
  service.register_trusted(world.record_of(0).profile);
  service.upload_channel().submit(world.record_of(1).profile.serialize());
  service.ingest_uploads();
  (void)service.investigate({{0, -50}, {1200, 50}}, 0);

  const Id16 id = world.owned_of(1).vp_id;
  ASSERT_TRUE(service.submit_video(id, world.video_of(1)));
  service.conclude_review(id, /*approved=*/true, /*units=*/3);
  ASSERT_TRUE(service.board().is_posted(id, RequestKind::kReward));

  // Ownership proof: correct Q succeeds, wrong Q fails.
  vp::VpSecret wrong{};
  EXPECT_FALSE(service.begin_reward_claim(id, wrong).has_value());
  const auto granted = service.begin_reward_claim(id, world.owned_of(1).secret);
  ASSERT_TRUE(granted.has_value());
  EXPECT_EQ(*granted, 3);

  // Blind-sign + unblind + redeem.
  reward::RewardClient client(service.cash_public_key(), 77);
  const auto blinded = client.prepare(static_cast<std::size_t>(*granted));
  const auto signatures = service.sign_reward_batch(id, blinded);
  ASSERT_TRUE(signatures.has_value());
  const auto cash = client.unblind_batch(*signatures);
  for (const auto& token : cash)
    EXPECT_EQ(service.bank().redeem(token), reward::RedeemOutcome::kAccepted);

  // Claim is consumed: no second batch.
  EXPECT_FALSE(service.sign_reward_batch(id, blinded).has_value());
  EXPECT_FALSE(service.board().is_posted(id, RequestKind::kReward));
}

TEST(Service, RejectedReviewGrantsNothing) {
  World world;
  ViewMapService service(test_cfg());
  service.register_trusted(world.record_of(0).profile);
  service.upload_channel().submit(world.record_of(1).profile.serialize());
  service.ingest_uploads();
  (void)service.investigate({{0, -50}, {1200, 50}}, 0);
  const Id16 id = world.owned_of(1).vp_id;
  ASSERT_TRUE(service.submit_video(id, world.video_of(1)));
  service.conclude_review(id, /*approved=*/false, 0);
  EXPECT_FALSE(service.board().is_posted(id, RequestKind::kReward));
  EXPECT_FALSE(service.begin_reward_claim(id, world.owned_of(1).secret).has_value());
}

TEST(Service, FakeVpInSiteIsNotSolicited) {
  World world;
  ViewMapService service(test_cfg());
  service.register_trusted(world.record_of(0).profile);
  for (VehicleId v = 1; v < 4; ++v)
    service.upload_channel().submit(world.record_of(v).profile.serialize());
  Rng rng(13);
  auto fake = attack::make_fake_profile(0, {500, 0}, {560, 0}, rng);
  const Id16 fake_id = fake.vp_id();
  service.upload_channel().submit(fake.serialize());
  EXPECT_EQ(service.ingest_uploads(), 4u);  // fake passes the *structural* screen

  const auto report = service.investigate({{0, -50}, {1200, 50}}, 0);
  EXPECT_EQ(report.verification.rejected.size(), 1u);
  EXPECT_FALSE(service.board().is_posted(fake_id, RequestKind::kVideo));
}

}  // namespace
}  // namespace viewmap::sys
