// Unit tests: SHA-256 wrapper, cascaded hash chain, blind RSA signatures.
#include <gtest/gtest.h>

#include <cstring>

#include "common/hex.h"
#include "common/rng.h"
#include "crypto/blind_rsa.h"
#include "crypto/hash_chain.h"
#include "crypto/sha256.h"

namespace viewmap::crypto {
namespace {

std::vector<std::uint8_t> bytes_of(const char* s) {
  return {reinterpret_cast<const std::uint8_t*>(s),
          reinterpret_cast<const std::uint8_t*>(s) + std::strlen(s)};
}

TEST(Sha256, KnownVectors) {
  // FIPS 180-2 test vectors.
  EXPECT_EQ(to_hex(sha256({}).bytes),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  EXPECT_EQ(to_hex(sha256(bytes_of("abc")).bytes),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  const auto data = bytes_of("the quick brown fox jumps over the lazy dog");
  Sha256 inc;
  inc.update(std::span(data).subspan(0, 10));
  inc.update(std::span(data).subspan(10));
  EXPECT_EQ(inc.finish(), sha256(data));
}

TEST(Sha256, FinishResetsContext) {
  Sha256 h;
  h.update(bytes_of("abc"));
  (void)h.finish();
  h.update(bytes_of("abc"));
  EXPECT_EQ(h.finish(), sha256(bytes_of("abc")));
}

TEST(Sha256, DeriveVpIdIsTruncatedHash) {
  const auto secret = bytes_of("secret");
  const Id16 id = derive_vp_id(secret);
  const Hash16 t = sha256(secret).truncated();
  EXPECT_EQ(id.bytes, t.bytes);
}

TEST(HashChain, StatefulMatchesStateless) {
  Id16 r;
  r.bytes[0] = 0x42;
  CascadedHasher hasher(r);
  Hash16 prev;
  prev.bytes = r.bytes;
  Rng rng(1);
  std::vector<std::uint8_t> chunk(100);
  for (int i = 1; i <= 5; ++i) {
    rng.fill_bytes(chunk);
    ChainStepMeta meta{i, 1.0f * i, 2.0f * i, static_cast<std::uint64_t>(100 * i)};
    const Hash16 h1 = hasher.step(meta, chunk);
    const Hash16 h2 = chain_step(prev, meta, chunk);
    EXPECT_EQ(h1, h2);
    prev = h2;
  }
  EXPECT_EQ(hasher.steps_done(), 5);
}

TEST(HashChain, SensitiveToEveryInput) {
  Id16 r;
  const std::vector<std::uint8_t> chunk{1, 2, 3};
  const ChainStepMeta meta{10, 1.0f, 2.0f, 3};
  const Hash16 base = chain_step(Hash16{}, meta, chunk);

  ChainStepMeta m2 = meta;
  m2.time = 11;
  EXPECT_NE(chain_step(Hash16{}, m2, chunk), base);

  m2 = meta;
  m2.loc_x = 1.5f;
  EXPECT_NE(chain_step(Hash16{}, m2, chunk), base);

  m2 = meta;
  m2.file_size = 4;
  EXPECT_NE(chain_step(Hash16{}, m2, chunk), base);

  Hash16 other_prev;
  other_prev.bytes[15] = 1;
  EXPECT_NE(chain_step(other_prev, meta, chunk), base);

  const std::vector<std::uint8_t> chunk2{1, 2, 4};
  EXPECT_NE(chain_step(Hash16{}, meta, chunk2), base);
}

TEST(HashChain, VerifyChainAcceptsHonestRecording) {
  Id16 r;
  r.bytes[3] = 7;
  CascadedHasher hasher(r);
  Rng rng(2);

  std::vector<std::uint8_t> video;
  std::vector<std::uint64_t> offsets{0};
  std::vector<ChainStepMeta> metas;
  std::vector<Hash16> expected;
  for (int i = 1; i <= 10; ++i) {
    std::vector<std::uint8_t> chunk(50 + static_cast<std::size_t>(i));
    rng.fill_bytes(chunk);
    video.insert(video.end(), chunk.begin(), chunk.end());
    ChainStepMeta meta{i, 0.0f, 0.0f, video.size()};
    expected.push_back(hasher.step(meta, chunk));
    metas.push_back(meta);
    offsets.push_back(video.size());
  }
  EXPECT_TRUE(verify_chain(r, metas, expected, video, offsets));
}

TEST(HashChain, VerifyChainRejectsTamperedVideo) {
  Id16 r;
  CascadedHasher hasher(r);
  std::vector<std::uint8_t> video(300, 0xaa);
  std::vector<std::uint64_t> offsets{0, 100, 200, 300};
  std::vector<ChainStepMeta> metas;
  std::vector<Hash16> expected;
  for (int i = 0; i < 3; ++i) {
    ChainStepMeta meta{i + 1, 0.0f, 0.0f, static_cast<std::uint64_t>((i + 1) * 100)};
    expected.push_back(
        hasher.step(meta, std::span(video).subspan(static_cast<std::size_t>(i) * 100, 100)));
    metas.push_back(meta);
  }
  EXPECT_TRUE(verify_chain(r, metas, expected, video, offsets));
  video[150] ^= 1;  // flip one bit in the middle chunk
  EXPECT_FALSE(verify_chain(r, metas, expected, video, offsets));
}

TEST(HashChain, VerifyChainRejectsWrongAnchor) {
  Id16 r;
  CascadedHasher hasher(r);
  std::vector<std::uint8_t> video(10, 1);
  std::vector<std::uint64_t> offsets{0, 10};
  ChainStepMeta meta{1, 0.0f, 0.0f, 10};
  std::vector<Hash16> expected{hasher.step(meta, video)};
  std::vector<ChainStepMeta> metas{meta};

  Id16 wrong = r;
  wrong.bytes[0] ^= 1;
  EXPECT_TRUE(verify_chain(r, metas, expected, video, offsets));
  EXPECT_FALSE(verify_chain(wrong, metas, expected, video, offsets));
}

TEST(HashChain, VerifyChainRejectsStructuralMismatch) {
  Id16 r;
  std::vector<std::uint8_t> video(10, 1);
  // offsets.size() must equal metas.size()+1
  EXPECT_FALSE(verify_chain(r, std::vector<ChainStepMeta>(1),
                            std::vector<Hash16>(1), video,
                            std::vector<std::uint64_t>{0}));
  // mismatched metas/expected
  EXPECT_FALSE(verify_chain(r, std::vector<ChainStepMeta>(2),
                            std::vector<Hash16>(1), video,
                            std::vector<std::uint64_t>{0, 5, 10}));
  // final offset must equal the video size
  EXPECT_FALSE(verify_chain(r, std::vector<ChainStepMeta>(1),
                            std::vector<Hash16>(1), video,
                            std::vector<std::uint64_t>{0, 5}));
}

class BlindRsaTest : public ::testing::Test {
 protected:
  // 1024-bit keys: key generation speed, not cryptographic strength, is
  // what matters in unit tests.
  static RsaSigner& signer() {
    static RsaSigner s(1024);
    return s;
  }
};

TEST_F(BlindRsaTest, BlindSignUnblindVerify) {
  const auto msg = bytes_of("one unit of virtual cash");
  const auto blinded = blind(msg, signer().public_key(), /*rng_seed=*/7);
  const auto blind_sig = signer().sign_blinded(blinded.blinded);
  const auto sig = unblind(blind_sig, blinded.blinding_secret, signer().public_key());
  EXPECT_TRUE(verify_signature(msg, sig, signer().public_key()));
}

TEST_F(BlindRsaTest, SignatureBoundToMessage) {
  const auto msg = bytes_of("cash A");
  const auto blinded = blind(msg, signer().public_key(), 8);
  const auto sig = unblind(signer().sign_blinded(blinded.blinded),
                           blinded.blinding_secret, signer().public_key());
  EXPECT_FALSE(verify_signature(bytes_of("cash B"), sig, signer().public_key()));
}

TEST_F(BlindRsaTest, BlindedMessageHidesFdh) {
  // The signer sees b = H(m)·r^e; for different r the blinded values must
  // differ even for the same message (unlinkability precondition).
  const auto msg = bytes_of("same message");
  const auto b1 = blind(msg, signer().public_key(), 1);
  const auto b2 = blind(msg, signer().public_key(), 2);
  EXPECT_NE(b1.blinded, b2.blinded);
  EXPECT_NE(b1.blinded, full_domain_hash(msg, signer().public_key()));
}

TEST_F(BlindRsaTest, FdhDeterministicAndInRange) {
  const auto msg = bytes_of("m");
  const auto h1 = full_domain_hash(msg, signer().public_key());
  const auto h2 = full_domain_hash(msg, signer().public_key());
  EXPECT_EQ(h1, h2);
  // Reduced into [0, N): never longer than the modulus, and if equal
  // length then numerically smaller.
  const auto& n = signer().public_key().n;
  ASSERT_LE(h1.size(), n.size());
  if (h1.size() == n.size()) EXPECT_LT(h1, n);  // big-endian lexicographic

  const auto other = full_domain_hash(bytes_of("m2"), signer().public_key());
  EXPECT_NE(other, h1);
}

TEST_F(BlindRsaTest, UnblindWithWrongSecretFailsVerification) {
  const auto msg = bytes_of("m");
  const auto b1 = blind(msg, signer().public_key(), 3);
  const auto b2 = blind(msg, signer().public_key(), 4);
  const auto sig1 = signer().sign_blinded(b1.blinded);
  const auto bad = unblind(sig1, b2.blinding_secret, signer().public_key());
  EXPECT_FALSE(verify_signature(msg, bad, signer().public_key()));
}

TEST_F(BlindRsaTest, VerifyRejectsOutOfRangeSignature) {
  const auto msg = bytes_of("m");
  crypto::BigBytes too_big = signer().public_key().n;
  too_big.push_back(0xff);  // > N
  EXPECT_FALSE(verify_signature(msg, too_big, signer().public_key()));
}

}  // namespace
}  // namespace viewmap::crypto
