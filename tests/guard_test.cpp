// Unit tests: guard VP fabrication and the §6.2.2 coverage formula.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "road/city.h"
#include "vp/guard.h"
#include "vp/video.h"

namespace viewmap::vp {
namespace {

struct GuardFixture : ::testing::Test {
  GuardFixture() : rng(1), city(make_city()), router(city.roads), factory(router) {}

  static road::CityMap make_city() {
    Rng r(99);
    road::GridCityConfig cfg;
    cfg.extent_m = 1000;
    cfg.block_m = 200;
    cfg.building_fill = 0.0;  // roads only
    return road::make_grid_city(cfg, r);
  }

  /// Builds an actual VP for a vehicle driving east, that heard one
  /// neighbor driving nearby.
  VpGenerationResult make_actual_with_neighbor(geo::Vec2 own_start,
                                               geo::Vec2 neighbor_start) {
    VpBuilder own(0, rng);
    VpBuilder nbr(0, rng);
    SyntheticVideoSource source(5, 32);
    std::vector<std::uint8_t> chunk;
    for (int s = 0; s < kDigestsPerProfile; ++s) {
      source.generate_chunk(0, s, chunk);
      (void)own.tick(own_start + geo::Vec2{s * 8.0, 0}, chunk);
      const auto vd = nbr.tick(neighbor_start + geo::Vec2{s * 8.0, 0}, chunk);
      own.accept_neighbor(vd, own_start + geo::Vec2{s * 8.0, 0});
    }
    (void)nbr.finish();
    return own.finish();
  }

  Rng rng;
  road::CityMap city;
  road::Router router;
  GuardVpFactory factory;
};

TEST(GuardMath, GuardCount) {
  EXPECT_EQ(guard_count(0.1, 0), 0u);
  EXPECT_EQ(guard_count(0.1, 1), 1u);   // ⌈0.1⌉
  EXPECT_EQ(guard_count(0.1, 10), 1u);
  EXPECT_EQ(guard_count(0.1, 11), 2u);
  EXPECT_EQ(guard_count(0.5, 7), 4u);
}

TEST(GuardMath, UncoveredProbabilityPaperOperatingPoint) {
  // §6.2.2: α = 0.1 drives P_t below 0.01 within 5 minutes of driving.
  // The formula needs a moderately dense neighborhood (m ≈ 50) — in
  // sparse traffic coverage takes longer, as Fig. 10/11 show.
  EXPECT_LT(uncovered_probability(0.1, 50, 5), 0.01);
  // Less cover with smaller α.
  EXPECT_GT(uncovered_probability(0.05, 50, 5), uncovered_probability(0.1, 50, 5));
  // More minutes always help.
  EXPECT_LT(uncovered_probability(0.1, 50, 10), uncovered_probability(0.1, 50, 5));
}

TEST_F(GuardFixture, GuardStartsAtSeedAndEndsAtOwner) {
  auto gen = make_actual_with_neighbor({100, 200}, {100, 240});
  ASSERT_EQ(gen.neighbors.size(), 1u);

  auto guard = factory.make_guard(gen.neighbors[0], gen.profile.last_location(), 0, rng);
  ASSERT_TRUE(guard.has_value());

  const geo::Vec2 seed_start = gen.neighbors[0].advertised_start();
  EXPECT_NEAR(guard->first_location().x, seed_start.x, 1.0);
  EXPECT_NEAR(guard->first_location().y, seed_start.y, 1.0);
  const geo::Vec2 own_end = gen.profile.last_location();
  EXPECT_NEAR(guard->last_location().x, own_end.x, 1.0);
  EXPECT_NEAR(guard->last_location().y, own_end.y, 1.0);
}

TEST_F(GuardFixture, GuardIsStructurallyIndistinguishable) {
  auto gen = make_actual_with_neighbor({100, 200}, {100, 240});
  auto guard = factory.make_guard(gen.neighbors[0], gen.profile.last_location(), 0, rng);
  ASSERT_TRUE(guard.has_value());
  // The system's upload screen must accept guards like actual VPs —
  // indistinguishability is the whole point (§5.1.2).
  EXPECT_TRUE(VpUploadPolicy{}.well_formed(*guard));
  EXPECT_EQ(guard->digests().size(), static_cast<std::size_t>(kDigestsPerProfile));
  EXPECT_EQ(guard->unit_time(), 0);
}

TEST_F(GuardFixture, MakeGuardsLinksMutually) {
  auto gen = make_actual_with_neighbor({100, 200}, {100, 240});
  auto guards = factory.make_guards_for(gen.profile, gen.neighbors, 0, rng);
  ASSERT_EQ(guards.size(), 1u);  // ⌈0.1·1⌉ = 1
  EXPECT_TRUE(gen.profile.heard(guards[0]));
  EXPECT_TRUE(guards[0].heard(gen.profile));
}

TEST_F(GuardFixture, NoNeighborsNoGuards) {
  VpBuilder own(0, rng);
  SyntheticVideoSource source(6, 32);
  std::vector<std::uint8_t> chunk;
  for (int s = 0; s < kDigestsPerProfile; ++s) {
    source.generate_chunk(0, s, chunk);
    (void)own.tick({100 + s * 8.0, 200}, chunk);
  }
  auto gen = own.finish();
  auto guards = factory.make_guards_for(gen.profile, gen.neighbors, 0, rng);
  EXPECT_TRUE(guards.empty());
}

TEST_F(GuardFixture, GuardSpeedIsPlausible) {
  auto gen = make_actual_with_neighbor({100, 200}, {300, 400});
  ASSERT_EQ(gen.neighbors.size(), 1u);
  auto guard = factory.make_guard(gen.neighbors[0], gen.profile.last_location(), 0, rng);
  ASSERT_TRUE(guard.has_value());
  const auto digests = guard->digests();
  for (std::size_t i = 1; i < digests.size(); ++i) {
    const double dx = digests[i].loc_x - digests[i - 1].loc_x;
    const double dy = digests[i].loc_y - digests[i - 1].loc_y;
    EXPECT_LE(std::hypot(dx, dy), 70.0);  // < VpUploadPolicy::max_speed_mps
  }
}

TEST_F(GuardFixture, AlphaScalesGuardVolume) {
  // Fig. 9: VPs created per vehicle-minute = 1 + ⌈α·m⌉.
  for (double alpha : {0.1, 0.3, 0.5}) {
    for (std::size_t m : {20u, 100u, 200u}) {
      const std::size_t total = 1 + guard_count(alpha, m);
      EXPECT_EQ(total, 1 + static_cast<std::size_t>(std::ceil(alpha * static_cast<double>(m))));
    }
  }
}

}  // namespace
}  // namespace viewmap::vp
