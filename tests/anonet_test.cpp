// Unit tests: anonymous upload channel (Tor stand-in).
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "anonet/channel.h"

namespace viewmap::anonet {
namespace {

std::vector<std::uint8_t> payload(std::uint8_t tag) { return {tag, tag, tag}; }

TEST(AnonymousChannel, DrainDeliversEverything) {
  AnonymousChannel ch(1);
  for (std::uint8_t i = 0; i < 10; ++i) ch.submit(payload(i));
  EXPECT_EQ(ch.pending(), 10u);
  const auto out = ch.drain();
  EXPECT_EQ(out.size(), 10u);
  EXPECT_EQ(ch.pending(), 0u);
}

TEST(AnonymousChannel, SessionIdsAreFreshPerUpload) {
  AnonymousChannel ch(2);
  for (std::uint8_t i = 0; i < 64; ++i) ch.submit(payload(i));
  const auto out = ch.drain();
  std::set<std::uint64_t> ids;
  for (const auto& d : out) ids.insert(d.session_id);
  EXPECT_EQ(ids.size(), out.size());  // never reused — unlinkable sessions
}

TEST(AnonymousChannel, MixDecorrelatesOrder) {
  AnonymousChannel ch(3);
  for (std::uint8_t i = 0; i < 32; ++i) ch.submit(payload(i));
  const auto out = ch.drain();
  // Probability of preserved order under a fair shuffle is 1/32!.
  bool in_order = true;
  for (std::size_t i = 0; i < out.size(); ++i)
    in_order = in_order && out[i].payload[0] == static_cast<std::uint8_t>(i);
  EXPECT_FALSE(in_order);
  // But every payload arrives exactly once.
  std::set<std::uint8_t> tags;
  for (const auto& d : out) tags.insert(d.payload[0]);
  EXPECT_EQ(tags.size(), 32u);
}

TEST(AnonymousChannel, BatchWithholdsBelowPoolSize) {
  AnonymousChannel ch(4, /*mix_pool=*/8);
  for (std::uint8_t i = 0; i < 5; ++i) ch.submit(payload(i));
  EXPECT_TRUE(ch.drain_batch().empty());  // timing protection: wait for pool
  for (std::uint8_t i = 5; i < 9; ++i) ch.submit(payload(i));
  const auto out = ch.drain_batch();
  EXPECT_EQ(out.size(), 8u);
  EXPECT_EQ(ch.pending(), 1u);
}

TEST(AnonymousChannel, DeliveryCarriesNoSenderInformation) {
  // Structural check: Delivery exposes exactly a session id and payload.
  static_assert(sizeof(Delivery) ==
                sizeof(std::uint64_t) + sizeof(std::vector<std::uint8_t>));
  AnonymousChannel ch(5);
  ch.submit(payload(1));
  const auto out = ch.drain();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].payload, payload(1));
}

}  // namespace
}  // namespace viewmap::anonet
