// Unit tests: VP database persistence (VMDB snapshot format).
#include <gtest/gtest.h>

#include <sstream>

#include "store/vp_store.h"
#include "vp/video.h"
#include "vp/vp_builder.h"

namespace viewmap::store {
namespace {

vp::ViewProfile make_profile(TimeSec unit, geo::Vec2 start, Rng& rng) {
  vp::VpBuilder builder(unit, rng);
  vp::SyntheticVideoSource source(99, 16);
  std::vector<std::uint8_t> chunk;
  for (int s = 0; s < kDigestsPerProfile; ++s) {
    source.generate_chunk(unit, s, chunk);
    (void)builder.tick(start + geo::Vec2{s * 5.0, 0}, chunk);
  }
  return builder.finish().profile;
}

sys::VpDatabase make_db(Rng& rng, int normal, int trusted) {
  sys::VpDatabase db;
  for (int i = 0; i < normal; ++i)
    db.upload(make_profile(0, {i * 100.0, 0}, rng));
  for (int i = 0; i < trusted; ++i)
    db.upload_trusted(make_profile(60, {i * 100.0, 500}, rng));
  return db;
}

TEST(VpStore, RoundTripPreservesEverything) {
  Rng rng(1);
  const auto db = make_db(rng, 5, 2);

  std::stringstream buffer;
  save_database(db, buffer);

  LoadStats stats;
  const auto loaded = load_database(buffer, &stats);
  EXPECT_EQ(stats.profiles_loaded, 7u);
  EXPECT_EQ(stats.profiles_rejected, 0u);
  EXPECT_EQ(loaded.size(), db.size());
  EXPECT_EQ(loaded.trusted_count(), db.trusted_count());
  // The trusted retention clock survives the round trip, so retention
  // resumes where the live service left off.
  EXPECT_EQ(loaded.trusted_now(), db.trusted_now());
  const sys::DbSnapshot before = db.snapshot();
  const sys::DbSnapshot after = loaded.snapshot();
  for (const auto* profile : before.all()) {
    const auto* copy = after.find(profile->vp_id());
    ASSERT_NE(copy, nullptr);
    EXPECT_EQ(*copy, *profile);
    EXPECT_EQ(after.is_trusted(profile->vp_id()), before.is_trusted(profile->vp_id()));
  }
  // Snapshot serialization is deterministic: same state, same bytes.
  std::stringstream again;
  save_snapshot(before, again);
  EXPECT_EQ(again.str(), buffer.str());
}

TEST(VpStore, ClockRecoverySurvivesRoundTrip) {
  Rng rng(6);
  auto db = make_db(rng, 2, 1);  // trusted VP at unit 60 → clock = 60
  db.reset_clock(10);            // operator walked a poisoned clock back
  std::stringstream buffer;
  save_database(db, buffer);
  const auto loaded = load_database(buffer);
  // Replaying the trusted profile advances the clock to 60 during load;
  // the persisted value must win or the recovery is silently undone.
  EXPECT_EQ(loaded.trusted_now(), 10);
}

TEST(VpStore, RejectsBadMagicAndVersion) {
  std::stringstream bad_magic("NOPE....");
  EXPECT_THROW((void)load_database(bad_magic), std::runtime_error);

  Rng rng(2);
  const auto db = make_db(rng, 1, 0);
  std::stringstream buffer;
  save_database(db, buffer);
  std::string data = buffer.str();
  data[4] = 99;  // version byte
  std::stringstream tampered(data);
  EXPECT_THROW((void)load_database(tampered), std::runtime_error);
}

TEST(VpStore, TruncationIsDetected) {
  Rng rng(3);
  const auto db = make_db(rng, 3, 1);
  std::stringstream buffer;
  save_database(db, buffer);
  std::string data = buffer.str();
  data.resize(data.size() / 2);
  std::stringstream truncated(data);
  EXPECT_THROW((void)load_database(truncated), std::runtime_error);
}

TEST(VpStore, CorruptedProfileIsDroppedNotFatal) {
  Rng rng(4);
  const auto db = make_db(rng, 3, 0);
  std::stringstream buffer;
  save_database(db, buffer);
  std::string data = buffer.str();
  // Flip a location byte inside the second profile's payload so it fails
  // the plausibility screen (teleport) but parses fine structurally.
  const std::size_t header = 4 + 4 + 8 + 8 + 8;  // + trusted_clock (v2)
  const std::size_t second_profile = header + vp::kVpWireSize + 30 * 72 + 8;
  data[second_profile] = static_cast<char>(0xff);
  data[second_profile + 1] = static_cast<char>(0xff);
  data[second_profile + 2] = static_cast<char>(0x7f);
  data[second_profile + 3] = static_cast<char>(0x7f);  // loc_x ≈ 3.4e38 m

  std::stringstream corrupted(data);
  LoadStats stats;
  const auto loaded = load_database(corrupted, &stats);
  EXPECT_EQ(stats.profiles_loaded + stats.profiles_rejected, 3u);
  EXPECT_GE(stats.profiles_rejected, 1u);
  EXPECT_EQ(loaded.size(), stats.profiles_loaded);
}

TEST(VpStore, FileRoundTrip) {
  Rng rng(5);
  const auto db = make_db(rng, 4, 1);
  const std::string path = "/tmp/viewmap_store_test.vmdb";
  save_database_file(db, path);
  LoadStats stats;
  const auto loaded = load_database_file(path, &stats);
  EXPECT_EQ(loaded.size(), 5u);
  EXPECT_EQ(loaded.trusted_count(), 1u);
  EXPECT_THROW((void)load_database_file("/nonexistent/nope.vmdb"),
               std::runtime_error);
}

TEST(VpStore, EmptyDatabaseRoundTrips) {
  sys::VpDatabase empty;
  // Operator-fed wall clock with no trusted profiles stored: the clock
  // must still survive (no trusted insert replays it on load).
  empty.advance_clock(12345);
  std::stringstream buffer;
  save_database(empty, buffer);
  const auto loaded = load_database(buffer);
  EXPECT_EQ(loaded.size(), 0u);
  EXPECT_EQ(loaded.trusted_count(), 0u);
  EXPECT_EQ(loaded.trusted_now(), 12345);
}

}  // namespace
}  // namespace viewmap::store
