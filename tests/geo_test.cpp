// Unit tests: planar geometry and the obstacle spatial index.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "geo/geometry.h"
#include "geo/obstacle_index.h"

namespace viewmap::geo {
namespace {

TEST(Vec2, Arithmetic) {
  const Vec2 a{1, 2}, b{3, -4};
  EXPECT_EQ(a + b, (Vec2{4, -2}));
  EXPECT_EQ(a - b, (Vec2{-2, 6}));
  EXPECT_EQ(a * 2.0, (Vec2{2, 4}));
  EXPECT_DOUBLE_EQ(dot(a, b), 3 - 8);
  EXPECT_DOUBLE_EQ(cross(a, b), -4 - 6);
  EXPECT_DOUBLE_EQ((Vec2{3, 4}).norm(), 5.0);
}

TEST(Segments, CrossingAndDisjoint) {
  EXPECT_TRUE(segments_intersect({{0, 0}, {10, 10}}, {{0, 10}, {10, 0}}));
  EXPECT_FALSE(segments_intersect({{0, 0}, {1, 1}}, {{2, 2}, {3, 3}}));
  EXPECT_FALSE(segments_intersect({{0, 0}, {10, 0}}, {{0, 1}, {10, 1}}));
}

TEST(Segments, CollinearOverlapAndTouch) {
  EXPECT_TRUE(segments_intersect({{0, 0}, {5, 0}}, {{3, 0}, {8, 0}}));
  EXPECT_TRUE(segments_intersect({{0, 0}, {5, 0}}, {{5, 0}, {9, 0}}));  // endpoint touch
  EXPECT_FALSE(segments_intersect({{0, 0}, {5, 0}}, {{6, 0}, {9, 0}}));
}

TEST(Rect, ContainsAndInflate) {
  const Rect r{{0, 0}, {10, 5}};
  EXPECT_TRUE(r.contains({5, 2}));
  EXPECT_TRUE(r.contains({0, 0}));
  EXPECT_FALSE(r.contains({10.1, 2}));
  const Rect big = r.inflated(1.0);
  EXPECT_TRUE(big.contains({-0.5, -0.5}));
  EXPECT_DOUBLE_EQ(big.width(), 12.0);
}

TEST(SegmentRect, ThroughTouchingAndContained) {
  const Rect r{{2, 2}, {4, 4}};
  EXPECT_TRUE(segment_intersects_rect({{0, 3}, {6, 3}}, r));   // pass through
  EXPECT_TRUE(segment_intersects_rect({{3, 3}, {3, 3.5}}, r)); // inside
  EXPECT_FALSE(segment_intersects_rect({{0, 0}, {1, 5}}, r));  // misses
  EXPECT_TRUE(segment_intersects_rect({{0, 2}, {6, 2}}, r));   // grazes edge
}

TEST(PointSegment, Distance) {
  const Segment s{{0, 0}, {10, 0}};
  EXPECT_DOUBLE_EQ(point_segment_distance({5, 3}, s), 3.0);
  EXPECT_DOUBLE_EQ(point_segment_distance({-3, 4}, s), 5.0);  // clamps to endpoint
  EXPECT_DOUBLE_EQ(point_segment_distance({12, 0}, s), 2.0);
}

TEST(LineOfSight, BlockedByRect) {
  const std::vector<Rect> obstacles{{{4, -1}, {6, 1}}};
  EXPECT_FALSE(line_of_sight({0, 0}, {10, 0}, obstacles));
  EXPECT_TRUE(line_of_sight({0, 5}, {10, 5}, obstacles));
  EXPECT_EQ(first_blocking({0, 0}, {10, 0}, obstacles), std::optional<std::size_t>(0));
}

TEST(LineOfSight, EndpointInsideBlocks) {
  const std::vector<Rect> obstacles{{{0, 0}, {10, 10}}};
  EXPECT_FALSE(line_of_sight({5, 5}, {20, 5}, obstacles));
}

TEST(Polyline, LengthAndPointAlong) {
  const std::vector<Vec2> pts{{0, 0}, {10, 0}, {10, 10}};
  EXPECT_DOUBLE_EQ(polyline_length(pts), 20.0);
  EXPECT_EQ(point_along_polyline(pts, 0.0), (Vec2{0, 0}));
  EXPECT_EQ(point_along_polyline(pts, 5.0), (Vec2{5, 0}));
  EXPECT_EQ(point_along_polyline(pts, 15.0), (Vec2{10, 5}));
  EXPECT_EQ(point_along_polyline(pts, 99.0), (Vec2{10, 10}));  // clamped
  EXPECT_EQ(point_along_polyline(pts, -1.0), (Vec2{0, 0}));
}

TEST(ObstacleIndex, MatchesBruteForce) {
  Rng rng(17);
  std::vector<Rect> rects;
  for (int i = 0; i < 200; ++i) {
    const Vec2 lo{rng.uniform(0, 2000), rng.uniform(0, 2000)};
    rects.push_back({lo, lo + Vec2{rng.uniform(10, 80), rng.uniform(10, 80)}});
  }
  const ObstacleIndex index(rects, 150.0);

  for (int trial = 0; trial < 500; ++trial) {
    const Vec2 a{rng.uniform(-100, 2100), rng.uniform(-100, 2100)};
    const Vec2 b = a + Vec2{rng.uniform(-400, 400), rng.uniform(-400, 400)};
    EXPECT_EQ(index.line_of_sight(a, b), line_of_sight(a, b, rects))
        << "a=(" << a.x << "," << a.y << ") b=(" << b.x << "," << b.y << ")";
  }
}

TEST(ObstacleIndex, ContainsPointMatchesBruteForce) {
  Rng rng(23);
  std::vector<Rect> rects;
  for (int i = 0; i < 100; ++i) {
    const Vec2 lo{rng.uniform(0, 1000), rng.uniform(0, 1000)};
    rects.push_back({lo, lo + Vec2{rng.uniform(10, 60), rng.uniform(10, 60)}});
  }
  const ObstacleIndex index(rects);
  for (int trial = 0; trial < 1000; ++trial) {
    const Vec2 p{rng.uniform(-50, 1100), rng.uniform(-50, 1100)};
    bool brute = false;
    for (const auto& r : rects) brute = brute || r.contains(p);
    EXPECT_EQ(index.contains_point(p), brute);
  }
}

TEST(ObstacleIndex, EmptyIndexIsAlwaysClear) {
  const ObstacleIndex index;
  EXPECT_TRUE(index.line_of_sight({0, 0}, {100, 100}));
  EXPECT_FALSE(index.contains_point({0, 0}));
  EXPECT_TRUE(index.empty());
}

}  // namespace
}  // namespace viewmap::geo
