// Unit tests: road network, router (Directions-API substitute), city maps.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "road/city.h"
#include "road/network.h"
#include "road/router.h"

namespace viewmap::road {
namespace {

RoadNetwork line_network() {
  RoadNetwork net;
  const NodeId a = net.add_node({0, 0});
  const NodeId b = net.add_node({100, 0});
  const NodeId c = net.add_node({200, 0});
  net.add_road(a, b);
  net.add_road(b, c);
  return net;
}

TEST(RoadNetwork, AdjacencySymmetric) {
  const auto net = line_network();
  ASSERT_EQ(net.node_count(), 3u);
  EXPECT_EQ(net.neighbors(1).size(), 2u);
  EXPECT_EQ(net.neighbors(0).size(), 1u);
  EXPECT_DOUBLE_EQ(net.neighbors(0)[0].length_m, 100.0);
}

TEST(RoadNetwork, RejectsSelfLoop) {
  RoadNetwork net;
  const NodeId a = net.add_node({0, 0});
  EXPECT_THROW(net.add_road(a, a), std::invalid_argument);
}

TEST(RoadNetwork, NearestNode) {
  const auto net = line_network();
  EXPECT_EQ(net.nearest_node({90, 10}), 1u);
  EXPECT_EQ(net.nearest_node({-50, 0}), 0u);
}

TEST(Router, ShortestPathOnGrid) {
  // 3×3 grid with unit spacing 100 m.
  RoadNetwork net;
  NodeId id[3][3];
  for (int y = 0; y < 3; ++y)
    for (int x = 0; x < 3; ++x) id[y][x] = net.add_node({x * 100.0, y * 100.0});
  for (int y = 0; y < 3; ++y)
    for (int x = 0; x < 3; ++x) {
      if (x < 2) net.add_road(id[y][x], id[y][x + 1]);
      if (y < 2) net.add_road(id[y][x], id[y + 1][x]);
    }
  const Router router(net);
  const auto route = router.shortest_path(id[0][0], id[2][2]);
  ASSERT_TRUE(route.has_value());
  EXPECT_DOUBLE_EQ(route->length_m, 400.0);
  EXPECT_EQ(route->nodes.front(), id[0][0]);
  EXPECT_EQ(route->nodes.back(), id[2][2]);
  // Manhattan path: 5 nodes.
  EXPECT_EQ(route->nodes.size(), 5u);
}

TEST(Router, DisconnectedReturnsNull) {
  RoadNetwork net;
  const NodeId a = net.add_node({0, 0});
  const NodeId b = net.add_node({100, 0});
  const NodeId c = net.add_node({500, 0});
  const NodeId d = net.add_node({600, 0});
  net.add_road(a, b);
  net.add_road(c, d);
  const Router router(net);
  EXPECT_FALSE(router.shortest_path(a, d).has_value());
}

TEST(Router, RouteBetweenStitchesExactEndpoints) {
  const auto net = line_network();
  const Router router(net);
  const auto route = router.route_between({5, 3}, {195, -2});
  ASSERT_TRUE(route.has_value());
  EXPECT_EQ(route->points.front(), (geo::Vec2{5, 3}));
  EXPECT_EQ(route->points.back(), (geo::Vec2{195, -2}));
  EXPECT_GE(route->points.size(), 3u);
}

TEST(Router, RouteBetweenSameSnapNode) {
  const auto net = line_network();
  const Router router(net);
  const auto route = router.route_between({1, 1}, {3, 1});
  ASSERT_TRUE(route.has_value());
  EXPECT_NEAR(route->length_m, 2.0, 1e-9);
}

TEST(City, GridHasExpectedStructure) {
  Rng rng(1);
  GridCityConfig cfg;
  cfg.extent_m = 1000;
  cfg.block_m = 200;
  const CityMap city = make_grid_city(cfg, rng);
  // 6 lines each way → 36 intersections.
  EXPECT_EQ(city.roads.node_count(), 36u);
  EXPECT_FALSE(city.buildings.empty());
  // Buildings stay inside their blocks.
  for (const auto& b : city.buildings) {
    EXPECT_GE(b.min.x, 0.0);
    EXPECT_LE(b.max.x, cfg.extent_m);
    EXPECT_GT(b.width(), 0.0);
    EXPECT_GT(b.height(), 0.0);
  }
}

TEST(City, GridIsFullyRoutable) {
  Rng rng(2);
  GridCityConfig cfg;
  cfg.extent_m = 800;
  cfg.block_m = 200;
  const CityMap city = make_grid_city(cfg, rng);
  const Router router(city.roads);
  const auto route =
      router.shortest_path(0, static_cast<NodeId>(city.roads.node_count() - 1));
  ASSERT_TRUE(route.has_value());
  EXPECT_DOUBLE_EQ(route->length_m, 1600.0);  // Manhattan distance corner-corner
}

TEST(City, BuildingsDoNotCoverStreets) {
  Rng rng(3);
  GridCityConfig cfg;
  cfg.extent_m = 1000;
  cfg.block_m = 200;
  cfg.building_fill = 1.0;
  const CityMap city = make_grid_city(cfg, rng);
  // Street grid lines must be clear of footprints (setback ≥ min).
  for (const auto& b : city.buildings) {
    const double mx = std::fmod(b.min.x, cfg.block_m);
    EXPECT_GE(mx, cfg.building_setback_min - 1e-9);
  }
}

TEST(City, EnvironmentPresetsDiffer) {
  Rng rng(4);
  const auto open = make_environment(Environment::kOpenRoad, 2000, rng);
  const auto downtown = make_environment(Environment::kDowntown, 2000, rng);
  const auto residential = make_environment(Environment::kResidential, 2000, rng);
  EXPECT_TRUE(open.buildings.empty());
  EXPECT_GT(downtown.buildings.size(), residential.buildings.size() / 2);
  // Downtown buildings fill most of each 150 m block.
  double downtown_area = 0;
  for (const auto& b : downtown.buildings) downtown_area += b.width() * b.height();
  EXPECT_GT(downtown_area, 0.5 * 2000 * 2000);
}

TEST(City, EnvironmentNames) {
  EXPECT_STREQ(environment_name(Environment::kOpenRoad), "Open road");
  EXPECT_STREQ(environment_name(Environment::kDowntown), "Downtown");
}

}  // namespace
}  // namespace viewmap::road
