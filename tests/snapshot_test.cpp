// DbSnapshot semantics: isolation from later writes, pinned lifetime
// across eviction (and database destruction), byte-deterministic
// persistence under concurrent ingest, and TSan-exercised concurrency of
// investigations against the live ingest + retention path.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <sstream>
#include <thread>
#include <vector>

#include "attack/fake_vp.h"
#include "common/rng.h"
#include "index/ingest_engine.h"
#include "index/timeline.h"
#include "sim/simulator.h"
#include "store/vp_store.h"
#include "system/service.h"
#include "system/viewmap_graph.h"
#include "system/vp_database.h"
#include "track/privacy_eval.h"

namespace viewmap::index {
namespace {

vp::ViewProfile random_vp(TimeSec unit, double extent, Rng& rng) {
  const geo::Vec2 start{rng.uniform(-extent, extent), rng.uniform(-extent, extent)};
  const geo::Vec2 end{start.x + rng.uniform(-1500.0, 1500.0),
                      start.y + rng.uniform(-1500.0, 1500.0)};
  return attack::make_fake_profile(unit, start, end, rng);
}

/// Concatenated wire bytes of everything a snapshot holds, in its
/// deterministic (unit-time, id) order — the bit-identity probe.
std::vector<std::uint8_t> wire_bytes(const DbSnapshot& snap) {
  std::vector<std::uint8_t> out;
  for (const auto* profile : snap.all()) {
    const auto payload = profile->serialize();
    out.insert(out.end(), payload.begin(), payload.end());
  }
  return out;
}

TEST(DbSnapshot, IsolationFromLaterInserts) {
  Rng rng(1);
  VpTimeline timeline;
  std::vector<Id16> first_wave;
  for (int i = 0; i < 40; ++i) {
    auto p = random_vp(kUnitTimeSec * (i % 3), 2000.0, rng);
    first_wave.push_back(p.vp_id());
    ASSERT_TRUE(timeline.insert(std::move(p), i == 0));
  }

  const DbSnapshot snap = timeline.snapshot();
  const auto bytes_at_cut = wire_bytes(snap);
  EXPECT_EQ(snap.size(), 40u);
  EXPECT_EQ(snap.trusted_count(), 1u);

  // Writes into the SAME minutes force copy-on-write of every pinned
  // shard; the snapshot must not see any of them.
  for (int i = 0; i < 40; ++i)
    ASSERT_TRUE(timeline.insert(random_vp(kUnitTimeSec * (i % 3), 2000.0, rng), false));
  EXPECT_EQ(timeline.size(), 80u);
  EXPECT_EQ(snap.size(), 40u);
  EXPECT_EQ(wire_bytes(snap), bytes_at_cut);
  for (const Id16& id : first_wave) EXPECT_NE(snap.find(id), nullptr);

  // A fresh snapshot sees everything; the old one still answers queries
  // exactly as of its cut.
  const DbSnapshot fresh = timeline.snapshot();
  EXPECT_EQ(fresh.size(), 80u);
  const geo::Rect everywhere{{-1e7, -1e7}, {1e7, 1e7}};
  std::size_t old_total = 0;
  for (int m = 0; m < 3; ++m) old_total += snap.query(m * kUnitTimeSec, everywhere).size();
  EXPECT_EQ(old_total, 40u);
}

TEST(DbSnapshot, PinsEvictedShardsUntilLastReleaseThenFrees) {
  Rng rng(2);
  TimelineConfig cfg;
  cfg.retention.window_sec = 2 * kUnitTimeSec;
  VpTimeline timeline(cfg);
  std::vector<Id16> ids;
  for (int i = 0; i < 10; ++i) {
    auto p = random_vp(0, 1000.0, rng);
    ids.push_back(p.vp_id());
    ASSERT_TRUE(timeline.insert(std::move(p), false));
  }

  std::weak_ptr<const TimeShard> pinned_shard;
  std::vector<std::uint8_t> bytes_before;
  {
    DbSnapshot held = timeline.snapshot();
    ASSERT_EQ(held.shard_count(), 1u);
    pinned_shard = held.shards().front();
    bytes_before = wire_bytes(held);

    // Age the shard out from under the snapshot.
    timeline.advance_clock(10 * kUnitTimeSec);
    EXPECT_EQ(timeline.enforce_retention(), 10u);
    EXPECT_EQ(timeline.size(), 0u);
    EXPECT_EQ(timeline.snapshot().shard_count(), 0u);  // live view: gone

    // The held snapshot: bit-identical, every lookup intact.
    EXPECT_FALSE(pinned_shard.expired());
    EXPECT_EQ(held.size(), 10u);
    EXPECT_EQ(wire_bytes(held), bytes_before);
    for (const Id16& id : ids) EXPECT_NE(held.find(id), nullptr);

    // Copies share the pin; dropping one copy must not release it.
    DbSnapshot copy = held;
    held = DbSnapshot{};
    EXPECT_FALSE(pinned_shard.expired());
    EXPECT_EQ(wire_bytes(copy), bytes_before);
  }
  // Last reference gone ⇒ the evicted shard's memory is actually released.
  EXPECT_TRUE(pinned_shard.expired());
}

TEST(DbSnapshot, SurvivesDatabaseDestruction) {
  Rng rng(3);
  DbSnapshot snap;
  Id16 id;
  {
    sys::VpDatabase db;
    auto p = random_vp(0, 1000.0, rng);
    id = p.vp_id();
    ASSERT_TRUE(db.upload(std::move(p)));
    snap = db.snapshot();
  }  // database (and its timeline) destroyed here
  EXPECT_EQ(snap.size(), 1u);
  ASSERT_NE(snap.find(id), nullptr);
  EXPECT_EQ(snap.find(id)->vp_id(), id);
}

TEST(DbSnapshot, LazyIdIndexFindIsExactAndConcurrentSafe) {
  // find() builds its id → profile index lazily on first probe
  // (call_once). Hammer one snapshot from several threads racing that
  // first build: every present id must resolve to the exact shard-order
  // answer, every absent id to nullptr — TSan (CI runs this suite under
  // it) watches the build race.
  Rng rng(14);
  VpTimeline timeline;
  std::vector<Id16> ids;
  for (int i = 0; i < 120; ++i) {
    auto p = random_vp(kUnitTimeSec * (i % 5), 2000.0, rng);
    ids.push_back(p.vp_id());
    ASSERT_TRUE(timeline.insert(std::move(p), false));
  }
  const DbSnapshot snap = timeline.snapshot();

  // Reference answers via the shards themselves.
  std::vector<const vp::ViewProfile*> expected;
  for (const Id16& id : ids) {
    const vp::ViewProfile* hit = nullptr;
    for (const auto& shard : snap.shards())
      if (auto it = shard->profiles.find(id); it != shard->profiles.end()) {
        hit = it->second.get();
        break;
      }
    ASSERT_NE(hit, nullptr);
    expected.push_back(hit);
  }

  std::atomic<int> mismatches{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t)
    readers.emplace_back([&] {
      for (std::size_t k = 0; k < ids.size(); ++k)
        if (snap.find(ids[k]) != expected[k]) mismatches.fetch_add(1);
      Id16 absent{};
      absent.bytes.fill(0xEE);
      if (snap.find(absent) != nullptr) mismatches.fetch_add(1);
    });
  for (auto& t : readers) t.join();
  EXPECT_EQ(mismatches.load(), 0);

  // Still exact after the live timeline evicts everything: the index
  // points into pinned shards, not the timeline.
  timeline.advance_clock(100 * kUnitTimeSec);
  (void)timeline.enforce_retention();
  EXPECT_EQ(snap.find(ids.front()), expected.front());
}

TEST(DbSnapshot, OwningFindOutlivesEviction) {
  Rng rng(4);
  TimelineConfig cfg;
  cfg.retention.window_sec = 2 * kUnitTimeSec;
  VpTimeline timeline(cfg);
  auto p = random_vp(0, 1000.0, rng);
  const Id16 id = p.vp_id();
  const auto bytes = p.serialize();
  ASSERT_TRUE(timeline.insert(std::move(p), false));

  const std::shared_ptr<const vp::ViewProfile> held = timeline.find(id);
  ASSERT_NE(held, nullptr);
  timeline.advance_clock(10 * kUnitTimeSec);
  EXPECT_EQ(timeline.enforce_retention(), 1u);
  EXPECT_EQ(timeline.find(id), nullptr);  // live view: gone
  EXPECT_EQ(held->serialize(), bytes);    // owned reference: intact
}

TEST(DbSnapshot, SerializationIsByteDeterministicUnderConcurrentIngest) {
  Rng rng(5);
  sys::VpDatabase db;
  for (int i = 0; i < 60; ++i)
    ASSERT_TRUE(db.upload(random_vp(kUnitTimeSec * (i % 4), 2000.0, rng)));

  const sys::DbSnapshot snap = db.snapshot();
  std::stringstream first;
  store::save_snapshot(snap, first);

  // A writer hammers the same minutes (forcing copy-on-write of every
  // pinned shard) while the same snapshot serializes again.
  std::atomic<bool> stop{false};
  std::atomic<std::size_t> landed{0};
  std::thread writer([&] {
    Rng wrng(6);
    while (!stop.load())
      if (db.upload(random_vp(kUnitTimeSec * wrng.index(4), 2000.0, wrng)))
        landed.fetch_add(1);
  });
  // The writer is demonstrably landing inserts BEFORE the second
  // serialization starts — on a 1-core host it may otherwise never be
  // scheduled until after the save, and the race this test exists for
  // would silently not happen.
  while (landed.load() == 0) std::this_thread::yield();
  std::stringstream second;
  store::save_snapshot(snap, second);
  stop.store(true);
  writer.join();

  EXPECT_EQ(first.str(), second.str());
  EXPECT_GT(db.size(), snap.size());  // the writer really did land inserts
}

TEST(DbSnapshot, SnapshotConcurrentWithInsertAndEvictIsSafe) {
  // TSan target: snapshots (and queries through them) racing shard
  // copy-on-write inserts and whole-shard eviction.
  Rng rng(7);
  constexpr int kWriters = 2;
  constexpr int kPerWriter = 150;
  std::vector<std::vector<vp::ViewProfile>> sets(kWriters);
  for (int t = 0; t < kWriters; ++t)
    for (int i = 0; i < kPerWriter; ++i)
      sets[static_cast<std::size_t>(t)].push_back(
          random_vp(kUnitTimeSec * (i % 6), 2000.0, rng));

  VpTimeline timeline;
  std::atomic<bool> done{false};
  std::thread evictor([&] {
    while (!done.load()) timeline.evict_older_than(3 * kUnitTimeSec);
    timeline.evict_older_than(3 * kUnitTimeSec);
  });
  std::thread reader([&] {
    const geo::Rect everywhere{{-1e7, -1e7}, {1e7, 1e7}};
    while (!done.load()) {
      const DbSnapshot snap = timeline.snapshot();
      // Internal consistency of every cut: per-minute queries partition
      // all(), and the precomputed counters match the pinned shards.
      std::size_t total = 0;
      for (int m = 0; m < 6; ++m) total += snap.query(m * kUnitTimeSec, everywhere).size();
      EXPECT_EQ(total, snap.size());
      EXPECT_EQ(snap.all().size(), snap.size());
    }
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < kWriters; ++t)
    writers.emplace_back([&, t] {
      for (auto& p : sets[static_cast<std::size_t>(t)])
        timeline.insert(std::move(p), false);
    });
  for (auto& th : writers) th.join();
  done.store(true);
  evictor.join();
  reader.join();

  const DbSnapshot final_snap = timeline.snapshot();
  EXPECT_EQ(final_snap.size(), timeline.size());
  for (const auto* p : final_snap.all()) EXPECT_GE(p->unit_time(), 3 * kUnitTimeSec);
}

TEST(DbSnapshot, InvestigateConcurrentWithIngestAndEviction) {
  // The service-level satellite: investigate() loops on one thread while
  // ingest_uploads() (with its per-batch retention pass) runs on another,
  // until retention evicts the investigated minute itself. Reports built
  // before the eviction must stay bit-identical afterwards.
  Rng rng(8);
  sys::ServiceConfig cfg;
  cfg.rsa_bits = 1024;
  cfg.index.retention.window_sec = 2 * kUnitTimeSec;
  cfg.ingest.min_parallel_batch = 4;
  sys::ViewMapService service(cfg);

  // Trust seed at minute 0, inside what will be the investigation site.
  Rng trng(9);
  ASSERT_TRUE(service.register_trusted(
      attack::make_fake_profile(0, {0.0, 0.0}, {300.0, 0.0}, trng)));
  const geo::Rect site{{-400.0, -400.0}, {700.0, 400.0}};

  const auto viewmap_bytes = [](const sys::Viewmap& map) {
    std::vector<std::uint8_t> out;
    for (std::size_t i = 0; i < map.size(); ++i) {
      const auto payload = map.member(i).serialize();
      out.insert(out.end(), payload.begin(), payload.end());
    }
    return out;
  };
  std::vector<sys::InvestigationReport> reports;
  std::vector<std::vector<std::uint8_t>> bytes_at_build;
  std::atomic<bool> evicted{false};
  std::atomic<std::size_t> produced{0};

  std::thread investigator([&] {
    while (!evicted.load()) {
      try {
        auto report = service.investigate(site, 0);
        bytes_at_build.push_back(viewmap_bytes(report.viewmap));
        reports.push_back(std::move(report));
        produced.fetch_add(1);
      } catch (const std::runtime_error&) {
        // Minute 0 lost its trust seed: retention reached it. Done.
        break;
      }
    }
  });

  // Ingest side: keep the channel fed with minute-0/1 uploads and let the
  // per-batch retention pass run; then walk the trusted clock forward so
  // retention evicts minute 0 out from under the investigator. The
  // eviction waits for the investigator to have built at least one
  // report — on a 1-core host it may not get scheduled for many rounds.
  Rng urng(10);
  for (std::size_t round = 0; round < 5000; ++round) {
    for (int i = 0; i < 8; ++i) {
      const TimeSec unit = kUnitTimeSec * static_cast<TimeSec>(round % 2);
      const geo::Vec2 a{urng.uniform(-350.0, 650.0), urng.uniform(-350.0, 350.0)};
      const geo::Vec2 b{a.x + 200.0, a.y};
      service.upload_channel().submit(attack::make_fake_profile(unit, a, b, urng).serialize());
    }
    (void)service.ingest_uploads();
    if (round >= 30 && produced.load() > 0) {
      service.advance_clock(10 * kUnitTimeSec);  // minute 0 now outside the window
      // Retention runs per non-empty batch (an empty drain returns
      // early), so feed one admissible upload with the eviction pass.
      service.upload_channel().submit(
          attack::make_fake_profile(10 * kUnitTimeSec, {0.0, 0.0}, {200.0, 0.0}, urng)
              .serialize());
      (void)service.ingest_uploads();  // retention pass evicts minute 0
      evicted.store(true);
      break;
    }
    std::this_thread::yield();
  }
  evicted.store(true);
  investigator.join();

  // The investigated shard is gone from the live database…
  EXPECT_TRUE(service.database().snapshot().trusted_at(0).empty());
  // …but every report pinned its snapshot: still present, bit-identical.
  ASSERT_FALSE(reports.empty());
  for (std::size_t r = 0; r < reports.size(); ++r)
    EXPECT_EQ(viewmap_bytes(reports[r].viewmap), bytes_at_build[r]);
}

TEST(DbSnapshot, TrackingAnalysisReadsFromSnapshot) {
  // §6.2.2: the honest-but-curious system extracts tracker observations
  // from its own database — through a snapshot, not raw pointers.
  road::GridCityConfig ccfg;
  ccfg.extent_m = 1000.0;
  Rng city_rng(11);
  auto city = road::make_grid_city(ccfg, city_rng);
  sim::SimConfig scfg;
  scfg.seed = 12;
  scfg.vehicle_count = 10;
  scfg.minutes = 3;
  scfg.video_bytes_per_second = 8;
  sim::TrafficSimulator simulator(std::move(city), scfg);
  const auto world = simulator.run();

  sys::VpDatabase db;
  IngestEngine engine(db.timeline(), db.policy(), {});
  (void)engine.ingest(sim::upload_payloads(world));
  ASSERT_GT(db.size(), 0u);

  const sys::DbSnapshot snap = db.snapshot();
  const auto per_minute = track::observations_by_minute(snap);
  ASSERT_EQ(per_minute.size(), snap.shard_count());

  std::size_t total = 0;
  for (const auto& minute : per_minute) {
    for (const auto& obs : minute) {
      ++total;
      const auto* profile = snap.find(obs.vp_id);
      ASSERT_NE(profile, nullptr);
      EXPECT_EQ(obs.unit_time, profile->unit_time());
      EXPECT_EQ(obs.start.x, profile->first_location().x);
      EXPECT_EQ(obs.end.y, profile->last_location().y);
    }
  }
  EXPECT_EQ(total, snap.size());
}

}  // namespace
}  // namespace viewmap::index
