// Unit tests: mobility, traffic simulator, staged scenarios.
#include <gtest/gtest.h>

#include "sim/mobility.h"
#include "sim/scenarios.h"
#include "sim/simulator.h"

namespace viewmap::sim {
namespace {

TEST(Mobility, ScriptedFollowsPathAtSpeed) {
  auto m = VehicleMotion::scripted({{0, 0}, {100, 0}}, 10.0);
  Rng rng(1);
  m.advance(1.0, rng);
  EXPECT_NEAR(m.position().x, 10.0, 1e-9);
  EXPECT_NEAR(m.heading().x, 1.0, 1e-9);
  for (int i = 0; i < 20; ++i) m.advance(1.0, rng);
  EXPECT_NEAR(m.position().x, 100.0, 1e-9);  // holds at the end
}

TEST(Mobility, ScriptedLoopWraps) {
  auto m = VehicleMotion::scripted({{0, 0}, {30, 0}}, 10.0, /*loop=*/true);
  Rng rng(2);
  for (int i = 0; i < 4; ++i) m.advance(1.0, rng);  // 40 m along a 30 m path
  EXPECT_NEAR(m.position().x, 10.0, 1e-9);
}

TEST(Mobility, StationaryNeverMoves) {
  auto m = VehicleMotion::stationary({5, 6});
  Rng rng(3);
  m.advance(10.0, rng);
  EXPECT_EQ(m.position(), (geo::Vec2{5, 6}));
  EXPECT_EQ(m.heading(), (geo::Vec2{0, 0}));
}

TEST(Mobility, RandomTripsStayOnMapAndKeepMoving) {
  Rng city_rng(4);
  road::GridCityConfig cfg;
  cfg.extent_m = 1000;
  cfg.block_m = 200;
  const auto city = road::make_grid_city(cfg, city_rng);
  Rng rng(5);
  auto m = VehicleMotion::random_trips(city.roads, 15.0, rng);

  geo::Vec2 prev = m.position();
  double moved = 0;
  for (int s = 0; s < 300; ++s) {
    m.advance(1.0, rng);
    const geo::Vec2 p = m.position();
    EXPECT_GE(p.x, -1e-6);
    EXPECT_LE(p.x, 1000 + 1e-6);
    EXPECT_GE(p.y, -1e-6);
    EXPECT_LE(p.y, 1000 + 1e-6);
    moved += geo::distance(prev, p);
    prev = p;
  }
  // 15 m/s for 300 s ⇒ ~4.5 km driven (modulo trip re-planning instants).
  EXPECT_GT(moved, 3000.0);
}

SimConfig small_cfg() {
  SimConfig cfg;
  cfg.seed = 7;
  cfg.vehicle_count = 12;
  cfg.minutes = 2;
  cfg.video_bytes_per_second = 16;
  return cfg;
}

road::CityMap small_city(std::uint64_t seed = 8) {
  Rng rng(seed);
  road::GridCityConfig cfg;
  cfg.extent_m = 800;
  cfg.block_m = 200;
  cfg.building_fill = 0.5;
  return road::make_grid_city(cfg, rng);
}

TEST(Simulator, ProducesOneActualVpPerVehicleMinute) {
  TrafficSimulator sim(small_city(), small_cfg());
  const auto result = sim.run();
  std::size_t actual = 0, guards = 0;
  for (const auto& rec : result.profiles) (rec.guard ? guards : actual) += 1;
  EXPECT_EQ(actual, 12u * 2u);
  EXPECT_EQ(result.owned.size(), 12u * 2u);
  // In a dense 800 m map every vehicle has neighbors, so guards exist.
  EXPECT_GT(guards, 0u);
}

TEST(Simulator, ProfilesPassUploadScreen) {
  TrafficSimulator sim(small_city(), small_cfg());
  const auto result = sim.run();
  const vp::VpUploadPolicy policy;
  for (const auto& rec : result.profiles)
    EXPECT_TRUE(policy.well_formed(rec.profile)) << (rec.guard ? "guard" : "actual");
}

TEST(Simulator, DeterministicAcrossRuns) {
  TrafficSimulator a(small_city(42), small_cfg());
  TrafficSimulator b(small_city(42), small_cfg());
  const auto ra = a.run();
  const auto rb = b.run();
  ASSERT_EQ(ra.profiles.size(), rb.profiles.size());
  for (std::size_t i = 0; i < ra.profiles.size(); ++i)
    EXPECT_EQ(ra.profiles[i].profile, rb.profiles[i].profile);
  EXPECT_EQ(ra.vd_deliveries, rb.vd_deliveries);
}

TEST(Simulator, GuardsDisabledMeansNoGuards) {
  auto cfg = small_cfg();
  cfg.guards_enabled = false;
  TrafficSimulator sim(small_city(), cfg);
  const auto result = sim.run();
  for (const auto& rec : result.profiles) EXPECT_FALSE(rec.guard);
}

TEST(Simulator, KeepVideosRetainsValidatableRecordings) {
  auto cfg = small_cfg();
  cfg.keep_videos = true;
  cfg.vehicle_count = 3;
  TrafficSimulator sim(small_city(), cfg);
  const auto result = sim.run();
  ASSERT_EQ(result.videos.size(), result.owned.size());
  // Videos are parallel to `owned` and hash-chain-consistent with the
  // corresponding actual profile (checked end-to-end in service_test).
  for (std::size_t i = 0; i < result.videos.size(); ++i)
    EXPECT_EQ(result.videos[i].start_time, result.owned[i].unit_time);
}

TEST(Simulator, ContactStatsAccumulate) {
  TrafficSimulator sim(small_city(), small_cfg());
  const auto result = sim.run();
  EXPECT_GT(result.contact_seconds.count(), 0u);
  EXPECT_GT(result.contact_seconds.mean(), 0.0);
  EXPECT_GT(result.vd_deliveries, 0u);
  EXPECT_EQ(result.vd_broadcasts, 12u * 2u * 60u);
}

TEST(Simulator, TwoVehicleConvoyLinksEveryMinute) {
  SimConfig cfg;
  cfg.seed = 9;
  cfg.minutes = 3;
  cfg.guards_enabled = false;
  cfg.collect_pair_stats = true;
  cfg.video_bytes_per_second = 16;

  road::CityMap open;
  open.bounds = {{0, -100}, {10000, 100}};
  std::vector<VehicleMotion> fleet;
  fleet.push_back(VehicleMotion::scripted({{0, 0}, {10000, 0}}, 15.0));
  fleet.push_back(VehicleMotion::scripted({{80, 0}, {10080, 0}}, 15.0));

  TrafficSimulator sim(std::move(open), cfg, std::move(fleet));
  const auto result = sim.run();
  ASSERT_EQ(result.pair_minutes.size(), 3u);
  for (const auto& obs : result.pair_minutes) {
    EXPECT_TRUE(obs.vp_linked);  // open road, 80 m: always linked
    EXPECT_TRUE(obs.los_ever);
    EXPECT_TRUE(obs.on_video);   // trailing car faces the leading one
  }
}

TEST(Simulator, ParkedFractionProducesStationaryWitnesses) {
  auto cfg = small_cfg();
  cfg.parked_fraction = 0.5;
  cfg.vehicle_count = 20;
  TrafficSimulator sim(small_city(77), cfg);
  const auto result = sim.run();
  // Parked recorders are full protocol participants: every vehicle still
  // yields one actual VP per minute…
  std::size_t actual = 0;
  for (const auto& rec : result.profiles) actual += rec.guard ? 0u : 1u;
  EXPECT_EQ(actual, 20u * 2u);
  // …and some of them never moved over the whole run.
  std::size_t stationary = 0;
  for (const auto& rec : result.profiles) {
    if (rec.guard) continue;
    if (geo::distance(rec.profile.first_location(), rec.profile.last_location()) < 1e-6)
      ++stationary;
  }
  EXPECT_GT(stationary, 0u);
  EXPECT_LT(stationary, actual);  // and some drove
}

TEST(Scenarios, AllFourteenTable2RowsPresent) {
  const auto all = table2_scenarios(1);
  ASSERT_EQ(all.size(), 14u);
  EXPECT_EQ(all[0].name, "Open road");
  EXPECT_EQ(all[13].name, "Parking structure");
  for (const auto& s : all) EXPECT_EQ(s.fleet.size(), 2u);
}

TEST(Scenarios, LosAndNlosExtremesBehave) {
  // Spot-check the two extreme rows; the full table is a bench.
  auto all = table2_scenarios(2);
  const auto open = run_staged(std::move(all[0]), 5, 11);
  EXPECT_GT(open.vp_linkage_ratio, 0.95);
  EXPECT_GT(open.on_video_ratio, 0.95);

  const auto building = run_staged(std::move(all[1]), 5, 12);
  EXPECT_LT(building.vp_linkage_ratio, 0.1);
  EXPECT_LT(building.on_video_ratio, 0.01);
}

TEST(Scenarios, ConditionNames) {
  EXPECT_STREQ(to_string(SightCondition::kLos), "LOS");
  EXPECT_STREQ(to_string(SightCondition::kNlos), "NLOS");
  EXPECT_STREQ(to_string(SightCondition::kMixed), "LOS/NLOS");
}

}  // namespace
}  // namespace viewmap::sim
