// Tests: the Dashcam device abstraction — minute lifecycle, upload queue,
// guard amnesia, solicitation answering, end-to-end against the service.
#include <gtest/gtest.h>

#include "road/city.h"
#include "system/service.h"
#include "vp/dashcam.h"

namespace viewmap::vp {
namespace {

struct DashcamFixture : ::testing::Test {
  DashcamFixture()
      : city(make_city()), router(city.roads) {}

  static road::CityMap make_city() {
    Rng r(5);
    road::GridCityConfig cfg;
    cfg.extent_m = 1000;
    cfg.block_m = 200;
    cfg.building_fill = 0.0;
    return road::make_grid_city(cfg, r);
  }

  Dashcam make_cam(std::uint64_t seed, bool guards = true) {
    DashcamConfig cfg;
    cfg.video_seed = seed;
    cfg.guards_enabled = guards;
    return Dashcam(cfg, &router, Rng(seed));
  }

  /// Drives two cams side by side for `minutes` with mutual VD exchange.
  void drive_pair(Dashcam& a, Dashcam& b, int minutes) {
    for (TimeSec now = 1; now <= minutes * kUnitTimeSec; ++now) {
      // Seconds 1..60 of each minute map to monotone positions 0..59 so
      // trajectories stay physically plausible within a profile.
      const auto step = static_cast<double>((now - 1) % kUnitTimeSec);
      const geo::Vec2 pa{200.0 + step * 5.0, 200.0};
      const geo::Vec2 pb{230.0 + step * 5.0, 200.0};
      const auto vda = a.tick(now, pa);
      const auto vdb = b.tick(now, pb);
      a.receive(vdb);
      b.receive(vda);
    }
  }

  road::CityMap city;
  road::Router router;
};

TEST_F(DashcamFixture, OneVpPerMinutePlusGuards) {
  auto a = make_cam(1);
  auto b = make_cam(2);
  drive_pair(a, b, 2);
  EXPECT_EQ(a.minutes_recorded(), 2u);
  const auto uploads = a.drain_uploads();
  // 2 actual VPs + 2 guards (⌈0.1·1⌉ per minute with one neighbor).
  EXPECT_EQ(uploads.size(), 4u);
  for (const auto& payload : uploads) {
    const auto profile = ViewProfile::parse(payload);
    EXPECT_TRUE(VpUploadPolicy{}.well_formed(profile));
  }
  EXPECT_TRUE(a.drain_uploads().empty());  // queue drained
}

TEST_F(DashcamFixture, GuardsAreForgottenActualsAnswerable) {
  auto a = make_cam(3);
  auto b = make_cam(4);
  drive_pair(a, b, 1);
  const auto uploads = a.drain_uploads();
  ASSERT_EQ(uploads.size(), 2u);

  const auto answerable = a.answerable_vp_ids();
  ASSERT_EQ(answerable.size(), 1u);
  std::size_t answerable_found = 0;
  for (const auto& payload : uploads) {
    const auto profile = ViewProfile::parse(payload);
    if (profile.vp_id() == answerable[0]) {
      ++answerable_found;
    } else {
      // The guard: device must hold neither secret nor video for it.
      EXPECT_EQ(a.secret_of(profile.vp_id()), nullptr);
      EXPECT_EQ(a.video_of(profile.vp_id()), nullptr);
    }
  }
  EXPECT_EQ(answerable_found, 1u);
  EXPECT_NE(a.secret_of(answerable[0]), nullptr);
  EXPECT_NE(a.video_of(answerable[0]), nullptr);
}

TEST_F(DashcamFixture, SecretMatchesVpId) {
  auto a = make_cam(5, /*guards=*/false);
  auto b = make_cam(6, false);
  drive_pair(a, b, 1);
  const auto ids = a.answerable_vp_ids();
  ASSERT_EQ(ids.size(), 1u);
  EXPECT_EQ(a.secret_of(ids[0])->vp_id(), ids[0]);
}

TEST_F(DashcamFixture, RingBufferForgetsOldVideos) {
  DashcamConfig cfg;
  cfg.video_seed = 7;
  cfg.guards_enabled = false;
  cfg.storage_minutes = 2;
  Dashcam a(cfg, &router, Rng(7));
  Dashcam b = make_cam(8, false);
  drive_pair(a, b, 4);
  EXPECT_EQ(a.minutes_recorded(), 4u);
  // Secrets persist for all 4 VPs, but only the last 2 videos survive.
  std::size_t with_video = 0;
  for (const auto& id : a.answerable_vp_ids())
    with_video += a.video_of(id) != nullptr ? 1u : 0u;
  EXPECT_EQ(with_video, 2u);
}

TEST_F(DashcamFixture, EndToEndWithService) {
  auto witness = make_cam(9);
  auto passerby = make_cam(10);
  drive_pair(witness, passerby, 1);

  // Passerby doubles as the authority vehicle for this test.
  sys::ServiceConfig scfg;
  scfg.rsa_bits = 1024;
  sys::ViewMapService service(scfg);
  for (auto& payload : passerby.drain_uploads()) {
    const auto profile = ViewProfile::parse(payload);
    if (passerby.secret_of(profile.vp_id()) != nullptr)
      service.register_trusted(profile);  // its actual VP
    else
      service.upload_channel().submit(std::move(payload));
  }
  for (auto& payload : witness.drain_uploads())
    service.upload_channel().submit(std::move(payload));
  service.ingest_uploads();

  const geo::Rect site{{150, 150}, {600, 250}};
  const auto report = service.investigate(site, 0);
  EXPECT_GE(report.solicited.size(), 1u);

  // The witness polls the board and answers with its video.
  const auto mine = witness.answerable_vp_ids();
  const auto pending = service.pending_video_requests(mine);
  ASSERT_EQ(pending.size(), 1u);
  const auto* video = witness.video_of(pending[0]);
  ASSERT_NE(video, nullptr);
  EXPECT_TRUE(service.submit_video(pending[0], *video));

  // Reward claim with the retained secret.
  service.conclude_review(pending[0], true, 1);
  const auto granted =
      service.begin_reward_claim(pending[0], *witness.secret_of(pending[0]));
  EXPECT_TRUE(granted.has_value());
}

TEST_F(DashcamFixture, NoRouterMeansNoGuards) {
  DashcamConfig cfg;
  cfg.video_seed = 11;
  cfg.guards_enabled = true;
  Dashcam a(cfg, /*router=*/nullptr, Rng(11));
  Dashcam b = make_cam(12, false);
  drive_pair(a, b, 1);
  EXPECT_EQ(a.drain_uploads().size(), 1u);  // actual VP only
}

TEST_F(DashcamFixture, MidMinuteStartYieldsNoPartialVp) {
  auto a = make_cam(13, false);
  // Start at second 30 of a minute: the partial minute produces no VP.
  for (TimeSec now = 31; now <= 2 * kUnitTimeSec; ++now)
    (void)a.tick(now, {100, 100});
  EXPECT_EQ(a.minutes_recorded(), 1u);  // only the complete minute
  EXPECT_EQ(a.drain_uploads().size(), 1u);
}

}  // namespace
}  // namespace viewmap::vp
