// Robustness & failure-injection tests: fuzzed inputs at every trust
// boundary, hostile upload streams, degraded channels, and multi-seed /
// multi-minute service behavior.
#include <gtest/gtest.h>

#include "attack/fake_vp.h"
#include "common/rng.h"
#include "sim/simulator.h"
#include "system/service.h"

namespace viewmap {
namespace {

// ── Parser fuzzing: hostile bytes must throw or parse, never crash ──────

TEST(Fuzz, ViewDigestParseArbitraryBytes) {
  Rng rng(1);
  std::vector<std::uint8_t> frame(dsrc::kViewDigestWireSize);
  for (int i = 0; i < 2000; ++i) {
    rng.fill_bytes(frame);
    const auto vd = dsrc::ViewDigest::parse(frame);  // any 72 bytes parse
    // Byte-level round trip must be stable even for garbage field values
    // (struct equality would trip over NaN floats, which random bytes
    // produce; the wire format itself must still be a fixed point after
    // one normalization — padding zeroed).
    const auto normalized = vd.serialize();
    EXPECT_EQ(dsrc::ViewDigest::parse(normalized).serialize(), normalized);
  }
}

TEST(Fuzz, ViewProfileParseArbitraryBytes) {
  Rng rng(2);
  std::vector<std::uint8_t> payload(vp::kVpWireSize);
  int parsed = 0;
  for (int i = 0; i < 200; ++i) {
    rng.fill_bytes(payload);
    try {
      const auto profile = vp::ViewProfile::parse(payload);
      ++parsed;
      // Random bytes virtually never share one VP id across 60 VDs.
      (void)profile;
    } catch (const std::invalid_argument&) {
      // expected: mixed identifiers
    }
  }
  EXPECT_EQ(parsed, 0);  // 2^-128-ish odds of all ids matching
}

TEST(Fuzz, ServiceIngestSurvivesGarbageStream) {
  sys::ServiceConfig cfg;
  cfg.rsa_bits = 1024;
  sys::ViewMapService service(cfg);
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    std::vector<std::uint8_t> garbage(rng.index(2 * vp::kVpWireSize));
    rng.fill_bytes(garbage);
    service.upload_channel().submit(std::move(garbage));
  }
  EXPECT_EQ(service.ingest_uploads(), 0u);
  EXPECT_EQ(service.database().size(), 0u);
}

TEST(Fuzz, UploadPolicyOnRandomButParseableProfiles) {
  // Profiles with a consistent id but random everything else must be
  // screened out by the plausibility rules.
  Rng rng(4);
  int accepted = 0;
  for (int trial = 0; trial < 50; ++trial) {
    Id16 id;
    rng.fill_bytes(id.bytes);
    std::vector<dsrc::ViewDigest> digests;
    for (int i = 1; i <= kDigestsPerProfile; ++i) {
      dsrc::ViewDigest vd;
      vd.vp_id = id;
      vd.second = static_cast<std::uint16_t>(i);
      vd.time = static_cast<TimeSec>(rng.uniform_int(0, 1000));
      vd.loc_x = static_cast<float>(rng.uniform(-1e4, 1e4));
      vd.loc_y = static_cast<float>(rng.uniform(-1e4, 1e4));
      vd.file_size = rng.next_u64() >> 40;
      rng.fill_bytes(vd.hash.bytes);
      digests.push_back(vd);
    }
    const vp::ViewProfile profile(std::move(digests),
                                  bloom::BloomFilter(vp::kBloomBits, vp::kBloomHashes));
    accepted += vp::VpUploadPolicy{}.well_formed(profile) ? 1 : 0;
  }
  EXPECT_EQ(accepted, 0);  // random walks teleport and time-travel
}

// ── Channel degradation ─────────────────────────────────────────────────

TEST(Degradation, HeavyTrafficBlacksOutWholeMinutes) {
  // The Gilbert blockage state must produce minute-long outages — the
  // mechanism behind Table 2's 61% "Traffic" row.
  sim::SimConfig cfg;
  cfg.seed = 5;
  cfg.minutes = 30;
  cfg.guards_enabled = false;
  cfg.collect_pair_stats = true;
  cfg.video_bytes_per_second = 16;
  cfg.traffic_blocker_density_per_m = 0.012;

  road::CityMap highway;
  highway.bounds = {{0, -100}, {1e6, 100}};
  std::vector<sim::VehicleMotion> fleet;
  fleet.push_back(sim::VehicleMotion::scripted({{0, 0}, {1e6, 0}}, 20.0));
  fleet.push_back(sim::VehicleMotion::scripted({{160, 0}, {1e6 + 160, 0}}, 20.0));
  sim::TrafficSimulator sim(std::move(highway), cfg, std::move(fleet));
  const auto result = sim.run();

  int linked = 0;
  for (const auto& obs : result.pair_minutes) linked += obs.vp_linked;
  EXPECT_GT(linked, 5);                 // not dead —
  EXPECT_LT(linked, cfg.minutes - 3);   // — but some minutes fully blocked
}

TEST(Degradation, AsymmetricRangeStillNeedsBothDirections) {
  // One direction hearing the other is not a viewlink: verify via two
  // builders where only one direction's VDs are delivered.
  Rng rng(6);
  vp::VpBuilder a(0, rng), b(0, rng);
  std::vector<std::uint8_t> chunk(16);
  for (int s = 0; s < kDigestsPerProfile; ++s) {
    const auto vda = a.tick({s * 5.0, 0}, chunk);
    (void)b.tick({s * 5.0, 50}, chunk);
    b.accept_neighbor(vda, {s * 5.0, 50});  // b hears a; a never hears b
  }
  auto ga = a.finish();
  auto gb = b.finish();
  const sys::ViewmapBuilder builder;
  EXPECT_FALSE(builder.viewlinked(ga.profile, gb.profile));
}

// ── Multi-seed trust and multi-minute investigations ────────────────────

TEST(Service, InvestigatePeriodSpansMinutesAndSkipsUnverifiable) {
  // Build a 3-minute world where only minutes 0 and 2 have trusted VPs.
  sim::SimConfig cfg;
  cfg.seed = 7;
  cfg.minutes = 3;
  cfg.guards_enabled = false;
  cfg.video_bytes_per_second = 16;
  road::CityMap open;
  open.bounds = {{-100, -100}, {20000, 100}};
  std::vector<sim::VehicleMotion> fleet;
  for (int i = 0; i < 3; ++i)
    fleet.push_back(
        sim::VehicleMotion::scripted({{i * 50.0, 0}, {20000 + i * 50.0, 0}}, 12.0));
  sim::TrafficSimulator sim(std::move(open), cfg, std::move(fleet));
  const auto world = sim.run();

  sys::ServiceConfig scfg;
  scfg.rsa_bits = 1024;
  sys::ViewMapService service(scfg);
  for (const auto& rec : world.profiles) {
    const bool trusted_minute =
        rec.profile.unit_time() == 0 || rec.profile.unit_time() == 120;
    if (rec.creator == 0 && trusted_minute)
      service.register_trusted(rec.profile);
    else
      service.upload_channel().submit(rec.profile.serialize());
  }
  service.ingest_uploads();

  const geo::Rect site{{-100, -100}, {20000, 100}};
  const auto reports = service.investigate_period(site, 0, 180);
  ASSERT_EQ(reports.size(), 2u);  // minute 1 skipped: no trust seed
  EXPECT_EQ(reports[0].viewmap.unit_time(), 0);
  EXPECT_EQ(reports[1].viewmap.unit_time(), 120);
  for (const auto& r : reports) EXPECT_GE(r.solicited.size(), 2u);
}

TEST(Service, MultipleTrustedSeedsShareTrustMass) {
  // Two police cars in one minute: both register, TrustRank splits the
  // seed distribution, verification still works.
  Rng rng(8);
  std::vector<vp::VpBuilder> builders;
  for (int i = 0; i < 4; ++i) builders.emplace_back(0, rng);
  std::vector<std::uint8_t> chunk(16);
  for (int s = 0; s < kDigestsPerProfile; ++s) {
    std::vector<dsrc::ViewDigest> vds;
    for (int i = 0; i < 4; ++i)
      vds.push_back(builders[static_cast<std::size_t>(i)].tick({s * 8.0, i * 60.0}, chunk));
    for (int i = 0; i + 1 < 4; ++i) {
      builders[static_cast<std::size_t>(i)].accept_neighbor(
          vds[static_cast<std::size_t>(i + 1)], {s * 8.0, i * 60.0});
      builders[static_cast<std::size_t>(i + 1)].accept_neighbor(
          vds[static_cast<std::size_t>(i)], {s * 8.0, (i + 1) * 60.0});
    }
  }
  sys::VpDatabase db;
  std::vector<Id16> ids;
  for (int i = 0; i < 4; ++i) {
    auto gen = builders[static_cast<std::size_t>(i)].finish();
    ids.push_back(gen.profile.vp_id());
    if (i == 0 || i == 3)
      db.upload_trusted(std::move(gen.profile));
    else
      db.upload(std::move(gen.profile));
  }
  const sys::ViewmapBuilder builder;
  const geo::Rect site{{-10, -10}, {600, 200}};
  const auto map = builder.build(db.snapshot(), site, 0);
  EXPECT_EQ(map.trusted_indices().size(), 2u);
  const auto ranks = sys::trust_rank(map);
  double total = 0;
  for (double s : ranks.scores) total += s;
  EXPECT_NEAR(total, 1.0, 1e-6);

  const sys::Verifier verifier;
  const auto verdict = verifier.verify(map, site);
  EXPECT_EQ(verdict.legitimate.size(), 4u);
}

TEST(Service, SaturatedBloomAttackerNeverSolicited) {
  // Full pipeline version of the §6.3.2 all-ones attack.
  Rng rng(9);
  std::vector<vp::VpBuilder> builders;
  for (int i = 0; i < 3; ++i) builders.emplace_back(0, rng);
  std::vector<std::uint8_t> chunk(16);
  for (int s = 0; s < kDigestsPerProfile; ++s) {
    std::vector<dsrc::ViewDigest> vds;
    for (int i = 0; i < 3; ++i)
      vds.push_back(builders[static_cast<std::size_t>(i)].tick({s * 8.0, i * 50.0}, chunk));
    for (int i = 0; i + 1 < 3; ++i) {
      builders[static_cast<std::size_t>(i)].accept_neighbor(
          vds[static_cast<std::size_t>(i + 1)], {s * 8.0, i * 50.0});
      builders[static_cast<std::size_t>(i + 1)].accept_neighbor(
          vds[static_cast<std::size_t>(i)], {s * 8.0, (i + 1) * 50.0});
    }
  }
  sys::ServiceConfig scfg;
  scfg.rsa_bits = 1024;
  sys::ViewMapService service(scfg);
  auto g0 = builders[0].finish();
  service.register_trusted(g0.profile);
  for (int i = 1; i < 3; ++i)
    service.upload_channel().submit(builders[static_cast<std::size_t>(i)].finish().profile.serialize());

  Rng attacker_rng(10);
  const auto sat = attack::make_saturated_profile(0, {100, 60}, {500, 60}, attacker_rng);
  const Id16 sat_id = sat.vp_id();
  service.upload_channel().submit(sat.serialize());
  service.ingest_uploads();

  const auto report = service.investigate({{-10, -10}, {600, 150}}, 0);
  EXPECT_FALSE(service.board().is_posted(sat_id, sys::RequestKind::kVideo));
}

}  // namespace
}  // namespace viewmap
