// Unit tests: synthetic video, ViewProfile, VpBuilder state machine.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "vp/video.h"
#include "vp/view_profile.h"
#include "vp/vp_builder.h"

namespace viewmap::vp {
namespace {

/// Drives one builder through a full minute along a straight path.
VpGenerationResult build_profile(TimeSec unit, geo::Vec2 start, geo::Vec2 step,
                                 Rng& rng, std::uint64_t bps = 64,
                                 std::uint64_t video_seed = 9) {
  VpBuilder builder(unit, rng);
  SyntheticVideoSource source(video_seed, bps);
  std::vector<std::uint8_t> chunk;
  for (int s = 0; s < kDigestsPerProfile; ++s) {
    source.generate_chunk(unit, s, chunk);
    (void)builder.tick(start + step * static_cast<double>(s), chunk);
  }
  return builder.finish();
}

TEST(Video, ChunksDeterministic) {
  const SyntheticVideoSource a(42, 128), b(42, 128), c(43, 128);
  std::vector<std::uint8_t> ca, cb, cc;
  a.generate_chunk(60, 5, ca);
  b.generate_chunk(60, 5, cb);
  c.generate_chunk(60, 5, cc);
  EXPECT_EQ(ca, cb);
  EXPECT_NE(ca, cc);
  a.generate_chunk(120, 5, cb);
  EXPECT_NE(ca, cb);  // different minute
}

TEST(Video, RecordMinuteMatchesChunks) {
  const SyntheticVideoSource src(7, 100);
  const RecordedVideo video = src.record_minute(180);
  EXPECT_EQ(video.size(), 6000u);
  ASSERT_EQ(video.chunk_offsets.size(), 61u);
  std::vector<std::uint8_t> chunk;
  src.generate_chunk(180, 30, chunk);
  const auto got = video.chunk(30);
  EXPECT_TRUE(std::equal(got.begin(), got.end(), chunk.begin(), chunk.end()));
}

TEST(Video, StorageRingEvictsOldest) {
  DashcamStorage storage(3);
  SyntheticVideoSource src(1, 16);
  for (TimeSec t : {0, 60, 120, 180}) storage.store(src.record_minute(t));
  EXPECT_EQ(storage.size(), 3u);
  EXPECT_EQ(storage.find(0), nullptr);  // §2: oldest recorded over
  EXPECT_NE(storage.find(60), nullptr);
  EXPECT_NE(storage.find(180), nullptr);
  EXPECT_EQ(storage.oldest_minute(), std::optional<TimeSec>(60));
}

TEST(ViewProfile, StorageOverheadMatchesPaper) {
  // §6.1: 60×72 B of VDs + 256 B Bloom + 8 B secret = 4584 B per VP.
  EXPECT_EQ(kVpWireSize, 60u * 72u + 256u);
  EXPECT_EQ(kVpStorageBytes, 4584u);
}

TEST(ViewProfile, BuilderProducesWellFormedProfile) {
  Rng rng(1);
  auto gen = build_profile(120, {0, 0}, {10, 0}, rng);
  const ViewProfile& p = gen.profile;
  EXPECT_EQ(p.digests().size(), static_cast<std::size_t>(kDigestsPerProfile));
  EXPECT_EQ(p.start_time(), 121);
  EXPECT_EQ(p.end_time(), 180);
  EXPECT_EQ(p.unit_time(), 120);
  EXPECT_EQ(p.vp_id(), gen.secret.vp_id());
  EXPECT_TRUE(VpUploadPolicy{}.well_formed(p));
}

TEST(ViewProfile, SerializationRoundTrip) {
  Rng rng(2);
  auto gen = build_profile(0, {5, 5}, {3, 4}, rng);
  const auto payload = gen.profile.serialize();
  EXPECT_EQ(payload.size(), kVpWireSize);
  const ViewProfile parsed = ViewProfile::parse(payload);
  EXPECT_EQ(parsed, gen.profile);
}

TEST(ViewProfile, VisitsAndLocations) {
  Rng rng(3);
  auto gen = build_profile(0, {0, 0}, {10, 0}, rng);
  EXPECT_EQ(gen.profile.first_location(), (geo::Vec2{0, 0}));
  EXPECT_EQ(gen.profile.last_location(), (geo::Vec2{590, 0}));
  EXPECT_TRUE(gen.profile.visits({{100, -10}, {200, 10}}));
  EXPECT_FALSE(gen.profile.visits({{100, 50}, {200, 100}}));
}

TEST(ViewProfile, EverWithinUsesTimeAlignment) {
  Rng rng(4);
  auto a = build_profile(0, {0, 0}, {10, 0}, rng);
  auto b = build_profile(0, {0, 300}, {10, 0}, rng);   // parallel, 300 m apart
  auto c = build_profile(0, {0, 5000}, {10, 0}, rng);  // far away
  EXPECT_TRUE(a.profile.ever_within(b.profile, 350));
  EXPECT_FALSE(a.profile.ever_within(b.profile, 200));
  EXPECT_FALSE(a.profile.ever_within(c.profile, 400));
}

TEST(VpBuilder, RequiresUnitBoundaryAndExactly60Ticks) {
  Rng rng(5);
  EXPECT_THROW(VpBuilder(61, rng), std::invalid_argument);

  VpBuilder builder(60, rng);
  std::vector<std::uint8_t> chunk(8);
  EXPECT_THROW((void)builder.finish(), std::logic_error);  // too early
  for (int s = 0; s < kDigestsPerProfile; ++s) (void)builder.tick({0, 0}, chunk);
  EXPECT_THROW((void)builder.tick({0, 0}, chunk), std::logic_error);  // too many
}

TEST(VpBuilder, NeighborFirstAndLastVdKept) {
  Rng rng(6);
  VpBuilder builder(0, rng);
  VpBuilder other(0, rng);
  std::vector<std::uint8_t> chunk(8);

  dsrc::ViewDigest first_vd, last_vd;
  for (int s = 0; s < kDigestsPerProfile; ++s) {
    (void)builder.tick({0, 0}, chunk);
    const auto vd = other.tick({50, 0}, chunk);
    if (s == 0 || s == 20 || s == 59) {
      EXPECT_TRUE(builder.accept_neighbor(vd, {0, 0}));
      if (s == 0) first_vd = vd;
      if (s == 59) last_vd = vd;
    }
  }
  EXPECT_EQ(builder.neighbor_count(), 1u);
  auto gen = builder.finish();
  ASSERT_EQ(gen.neighbors.size(), 1u);
  EXPECT_EQ(gen.neighbors[0].first, first_vd);
  ASSERT_TRUE(gen.neighbors[0].last.has_value());
  EXPECT_EQ(*gen.neighbors[0].last, last_vd);
  // Bloom contains first and last, not necessarily the middle VD.
  EXPECT_TRUE(gen.profile.neighbor_bloom().maybe_contains(first_vd.serialize()));
  EXPECT_TRUE(gen.profile.neighbor_bloom().maybe_contains(last_vd.serialize()));
}

TEST(VpBuilder, RejectsImplausibleVds) {
  Rng rng(7);
  VpBuilder builder(0, rng);
  std::vector<std::uint8_t> chunk(8);
  (void)builder.tick({0, 0}, chunk);

  dsrc::ViewDigest vd;
  vd.vp_id.bytes[0] = 9;
  vd.time = 1;
  vd.loc_x = 10000.0f;  // way outside DSRC radius
  vd.loc_y = 0.0f;
  EXPECT_FALSE(builder.accept_neighbor(vd, {0, 0}));

  vd.loc_x = 50.0f;
  vd.time = 500;  // stale timestamp
  EXPECT_FALSE(builder.accept_neighbor(vd, {0, 0}));

  vd.time = 1;  // now acceptable
  EXPECT_TRUE(builder.accept_neighbor(vd, {0, 0}));
}

TEST(VpBuilder, IgnoresOwnEcho) {
  Rng rng(8);
  VpBuilder builder(0, rng);
  std::vector<std::uint8_t> chunk(8);
  const auto own = builder.tick({0, 0}, chunk);
  EXPECT_FALSE(builder.accept_neighbor(own, {0, 0}));
  EXPECT_EQ(builder.neighbor_count(), 0u);
}

TEST(VpBuilder, EnforcesNeighborCap) {
  Rng rng(9);
  VpBuilder builder(0, rng);
  std::vector<std::uint8_t> chunk(8);
  (void)builder.tick({0, 0}, chunk);

  for (std::size_t i = 0; i < kMaxNeighbors + 50; ++i) {
    dsrc::ViewDigest vd;
    vd.time = 1;
    vd.loc_x = 10.0f;
    vd.second = 1;
    Rng id_rng(i + 1000);
    id_rng.fill_bytes(vd.vp_id.bytes);
    builder.accept_neighbor(vd, {0, 0});
  }
  EXPECT_EQ(builder.neighbor_count(), kMaxNeighbors);  // §6.3.2 fn.10
}

TEST(VpBuilder, TwoVehiclesFormTwoWayLink) {
  Rng rng(10);
  VpBuilder a(0, rng), b(0, rng);
  SyntheticVideoSource sa(1, 32), sb(2, 32);
  std::vector<std::uint8_t> chunk;
  for (int s = 0; s < kDigestsPerProfile; ++s) {
    sa.generate_chunk(0, s, chunk);
    const auto vda = a.tick({s * 5.0, 0}, chunk);
    sb.generate_chunk(0, s, chunk);
    const auto vdb = b.tick({s * 5.0, 30}, chunk);
    EXPECT_TRUE(a.accept_neighbor(vdb, {s * 5.0, 0}));
    EXPECT_TRUE(b.accept_neighbor(vda, {s * 5.0, 30}));
  }
  auto ga = a.finish();
  auto gb = b.finish();
  EXPECT_TRUE(ga.profile.heard(gb.profile));
  EXPECT_TRUE(gb.profile.heard(ga.profile));
  EXPECT_TRUE(ga.profile.ever_within(gb.profile, 400));
}

TEST(UploadPolicy, RejectsTeleportingProfile) {
  Rng rng(11);
  auto gen = build_profile(0, {0, 0}, {10, 0}, rng);
  auto digests =
      std::vector<dsrc::ViewDigest>(gen.profile.digests().begin(),
                                    gen.profile.digests().end());
  digests[30].loc_x = 5000.0f;  // 5 km jump within one second
  const ViewProfile teleporter(std::move(digests),
                               bloom::BloomFilter(kBloomBits, kBloomHashes));
  EXPECT_FALSE(VpUploadPolicy{}.well_formed(teleporter));
}

TEST(UploadPolicy, RejectsShrinkingFile) {
  Rng rng(12);
  auto gen = build_profile(0, {0, 0}, {1, 0}, rng);
  auto digests =
      std::vector<dsrc::ViewDigest>(gen.profile.digests().begin(),
                                    gen.profile.digests().end());
  digests[10].file_size = 1;  // video cannot shrink while recording
  const ViewProfile shrinker(std::move(digests),
                             bloom::BloomFilter(kBloomBits, kBloomHashes));
  EXPECT_FALSE(VpUploadPolicy{}.well_formed(shrinker));
}

TEST(VpSecret, IdDerivation) {
  Rng rng(13);
  const VpSecret s = make_vp_secret(rng);
  EXPECT_EQ(s.vp_id(), s.vp_id());
  const VpSecret s2 = make_vp_secret(rng);
  EXPECT_NE(s.vp_id(), s2.vp_id());
}

TEST(LinkMutually, CreatesTwoWayBloomMembership) {
  Rng rng(14);
  auto a = build_profile(0, {0, 0}, {1, 0}, rng);
  auto b = build_profile(0, {20, 0}, {1, 0}, rng);
  EXPECT_FALSE(a.profile.heard(b.profile));
  link_mutually(a.profile, b.profile);
  EXPECT_TRUE(a.profile.heard(b.profile));
  EXPECT_TRUE(b.profile.heard(a.profile));
}

}  // namespace
}  // namespace viewmap::vp
