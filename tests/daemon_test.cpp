// Always-on daemon (src/daemon/): soak/crash harness + lifecycle edges.
//
// The core of this suite is the kill-and-recover soak: a lifecycle-
// managed daemon under live ingest, concurrent investigations, and
// retention eviction is kill_for_test()ed mid-flight over and over, and
// every restart must satisfy the PR 5 recovery invariant — land exactly
// on the newest sealed manifest (no fallback), load every profile the
// manifest promises, reject none. Clean SIGTERM-style drains are held
// to a stronger bar: the recovered database must equal the live one
// bit-for-bit (VMDB byte oracle), because the final checkpoint runs
// after ingest has settled.
//
// Satellites: scrape endpoint byte-identity with dump_metrics(),
// healthz tracking lifecycle state, backpressured submit, the
// ReentrancyGuard crash (single-threaded death test, skipped under
// TSan), and the lifecycle edge matrix from the issue — double start,
// stop before start, drain with a full investigation queue, a
// checkpoint daemon firing during drain, SIGTERM racing an in-flight
// checkpoint.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <csignal>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "attack/fake_vp.h"
#include "common/failpoint.h"
#include "common/reentrancy.h"
#include "common/rng.h"
#include "daemon/lifecycle.h"
#include "obs/metrics.h"
#include "store/vp_store.h"

#if defined(__SANITIZE_THREAD__)
#define VIEWMAP_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define VIEWMAP_TSAN 1
#endif
#endif

namespace viewmap::daemon {
namespace {

namespace fs = std::filesystem;
using namespace std::chrono_literals;

/// Unique scratch directory, removed on destruction.
class TempDir {
 public:
  explicit TempDir(const char* tag) {
    static std::atomic<int> counter{0};
    path_ = fs::temp_directory_path() /
            ("viewmap_daemon_" + std::string(tag) + "_" +
             std::to_string(::getpid()) + "_" +
             std::to_string(counter.fetch_add(1)));
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  [[nodiscard]] std::string str() const { return path_.string(); }

 private:
  fs::path path_;
};

/// Fast daemon config for tests: tiny checkpoint interval, no fsync,
/// deterministic jitter, scrape off unless a test turns it on.
DaemonConfig test_config(const std::string& store_dir) {
  DaemonConfig cfg;
  cfg.service.rsa_bits = 1024;
  cfg.service.index.retention.window_sec = 5 * kUnitTimeSec;  // evict fast
  cfg.store_dir = store_dir;
  cfg.store.fsync = false;  // durability is modelled logically in tests
  cfg.checkpoint.interval = 5ms;
  cfg.checkpoint.jitter_pct = 0;
  cfg.ingest.idle_backoff_max = 5ms;  // keep submit→ingest latency tiny
  cfg.server.workers = 1;
  cfg.scrape.enabled = false;
  cfg.watchdog.interval = 50ms;
  return cfg;
}

std::string db_bytes(const sys::VpDatabase& db) {
  std::stringstream out;
  store::save_database(db, out);
  return out.str();
}

/// Submits `n` synthetic VPs for `unit` through the daemon's
/// backpressured path; returns how many were admitted.
std::size_t feed(ServiceLifecycle& d, TimeSec unit, std::size_t n, Rng& rng) {
  std::size_t ok = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const geo::Vec2 start{rng.uniform(-200.0, 1000.0), rng.uniform(-60.0, 60.0)};
    const geo::Vec2 end{start.x + rng.uniform(200.0, 600.0),
                        start.y + rng.uniform(-20.0, 20.0)};
    if (d.ingest().submit(
            attack::make_fake_profile(unit, start, end, rng).serialize()))
      ++ok;
  }
  return ok;
}

/// Polls until the daemon's checkpointer has written at least `n`
/// manifests this instance (poking it along), or fails the test.
void await_checkpoints(ServiceLifecycle& d, std::uint64_t n) {
  const auto deadline = std::chrono::steady_clock::now() + 10s;
  while (d.checkpointer()->written() < n) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "checkpointer wrote " << d.checkpointer()->written() << "/" << n;
    d.checkpointer()->poke();
    std::this_thread::sleep_for(1ms);
  }
}

/// One-shot HTTP GET against 127.0.0.1:port; returns the raw response.
std::string http_get(std::uint16_t port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  EXPECT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr), 0)
      << "connect to " << port;
  const std::string request = "GET " + path + " HTTP/1.0\r\n\r\n";
  EXPECT_EQ(::send(fd, request.data(), request.size(), 0),
            static_cast<ssize_t>(request.size()));
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof buf, 0)) > 0)
    response.append(buf, static_cast<std::size_t>(n));
  ::close(fd);
  return response;
}

std::string body_of(const std::string& response) {
  const auto pos = response.find("\r\n\r\n");
  return pos == std::string::npos ? std::string() : response.substr(pos + 4);
}

// ── tentpole: soak / crash harness ───────────────────────────────────

TEST(DaemonSoak, KillAndRecoverCycles) {
  TempDir dir("soak");
  Rng rng(7);
  constexpr int kCycles = 22;
  TimeSec unit = 0;
  std::size_t prev_manifest_profiles = 0;

  for (int cycle = 0; cycle < kCycles; ++cycle) {
    ServiceLifecycle d(test_config(dir.str()));
    ASSERT_TRUE(d.start()) << "cycle " << cycle;

    // ── recovery invariant (PR 5): land on the newest sealed manifest,
    //    no fallback, every promised profile loaded, none rejected.
    if (cycle > 0) {
      ASSERT_TRUE(d.recovered()) << "cycle " << cycle;
      const auto& r = d.recovery();
      EXPECT_EQ(r.manifests_tried, 1u) << "fallback in cycle " << cycle;
      EXPECT_EQ(r.sequence, d.store()->latest_sequence());
      EXPECT_EQ(r.profiles_loaded, r.manifest_profiles);
      EXPECT_EQ(r.profiles_rejected, 0u);
      // The crash lost at most what landed after the last seal — never
      // what the sealed manifest promised.
      EXPECT_GE(r.profiles_loaded, prev_manifest_profiles > 0 ? 1u : 0u);
    }

    // ── live load: trusted clock advance (drives retention eviction),
    //    anonymous ingest, one concurrent investigation.
    unit += kUnitTimeSec;
    ASSERT_TRUE(d.service().register_trusted(
        attack::make_fake_profile(unit, {0, 0}, {800, 0}, rng)));
    const std::size_t admitted = feed(d, unit, 40, rng);
    EXPECT_EQ(admitted, 40u);
    auto report = d.service().server()->submit({{-100, -80}, {900, 80}}, unit);

    // At least one checkpoint must seal the new unit's data before the
    // "crash", so every cycle exercises a non-empty recovery.
    await_checkpoints(d, 1);
    if (report.valid()) (void)report.get();

    const auto& r = d.recovery();
    prev_manifest_profiles = cycle > 0 ? r.profiles_loaded : 1;
    d.kill_for_test();
    EXPECT_EQ(d.state(), LifecycleState::kStopped);
  }

  // After 20+ crash cycles the store must still recover cleanly.
  store::SegmentStore store(dir.str());
  store::RecoveryStats stats;
  const sys::VpDatabase db = store.recover(&stats);
  EXPECT_EQ(stats.manifests_tried, 1u);
  EXPECT_EQ(stats.profiles_rejected, 0u);
  EXPECT_EQ(stats.profiles_loaded, stats.manifest_profiles);
  // Retention evicted old units across restarts: the recovered database
  // cannot have accumulated all 22 × 41 profiles.
  EXPECT_LT(db.size(), 22u * 41u);
  EXPECT_GT(db.size(), 0u);
}

TEST(DaemonSoak, CleanDrainIsBitForBit) {
  TempDir dir("drain");
  Rng rng(11);
  auto cfg = test_config(dir.str());
  cfg.checkpoint.interval = 1h;  // only the final drain checkpoint writes

  ServiceLifecycle d(cfg);
  ASSERT_TRUE(d.start());
  ASSERT_TRUE(d.service().register_trusted(
      attack::make_fake_profile(0, {0, 0}, {800, 0}, rng)));
  EXPECT_EQ(feed(d, 0, 120, rng), 120u);
  d.drain();
  EXPECT_EQ(d.state(), LifecycleState::kDraining);

  // Every accepted VP is in the live database (the drain settled ingest
  // first) and the final checkpoint sealed exactly that database.
  EXPECT_EQ(d.service().database().size(), 121u);
  store::SegmentStore store(dir.str());
  const sys::VpDatabase recovered = store.recover();
  EXPECT_TRUE(db_bytes(recovered) == db_bytes(d.service().database()))
      << "recovered database is not bit-for-bit the live one";
  d.stop();
  EXPECT_EQ(d.state(), LifecycleState::kStopped);
}

// ── chaos: failpoint-injected checkpoint failures ────────────────────

/// test_config plus a fast retry ladder, tight health thresholds, and a
/// cadence that only moves when poked — each test controls exactly when
/// a checkpoint attempt meets an armed failpoint.
DaemonConfig chaos_config(const std::string& store_dir) {
  auto cfg = test_config(store_dir);
  cfg.checkpoint.interval = 1h;
  cfg.checkpoint.retry_backoff_min = 1ms;
  cfg.checkpoint.retry_backoff_max = 5ms;
  cfg.health.degraded_after = 1;
  cfg.health.failing_after = 3;
  return cfg;
}

/// Pokes the checkpointer until its failure counter reaches `n`.
void await_failures(ServiceLifecycle& d, std::uint64_t n) {
  const auto deadline = std::chrono::steady_clock::now() + 10s;
  while (d.checkpointer()->failures() < n) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "checkpointer failed " << d.checkpointer()->failures() << "/" << n;
    d.checkpointer()->poke();
    std::this_thread::sleep_for(1ms);
  }
}

TEST(DaemonChaos, CheckpointFailsThenRecovers) {
  TempDir dir("chaos_recover");
  Rng rng(23);
  failpoint::disarm_all();

  ServiceLifecycle d(chaos_config(dir.str()));
  ASSERT_TRUE(d.start());
  ASSERT_TRUE(d.service().register_trusted(
      attack::make_fake_profile(0, {0, 0}, {800, 0}, rng)));
  EXPECT_EQ(feed(d, 0, 30, rng), 30u);
  while (d.service().upload_channel().pending() != 0)
    std::this_thread::sleep_for(1ms);

  // A bounded ENOSPC burst: exactly 4 checkpoint attempts fail, the
  // daemon must keep its thread alive and walk the retry ladder.
  failpoint::arm_from_spec("store.write.data=enospc@window:0:4");
  await_failures(d, 4);
  EXPECT_TRUE(d.checkpointer()->running());
  EXPECT_EQ(d.checkpointer()->written(), 0u);
  EXPECT_GE(d.checkpointer()->consecutive_failures(), 4u);
  EXPECT_FALSE(d.checkpointer()->last_error().empty());
  EXPECT_NE(d.health_state(), HealthState::kHealthy);

  // Failures are classified: the enospc reason counter moved, the
  // consecutive gauge tracks the streak.
  auto& reg = d.service().metrics();
  const auto* enospc = reg.find_counter(obs::MetricsRegistry::full_name(
      "viewmap_daemon_checkpoint_failures_total", {{"reason", "enospc"}}));
  ASSERT_NE(enospc, nullptr);
  EXPECT_GE(enospc->value(), 4u);
  EXPECT_GE(reg.gauge("viewmap_daemon_checkpoint_consecutive_failures").value(),
            4);

  // Window exhausted: the next attempt seals, the streak resets, health
  // snaps back, and the sequence gauge resumes from the failure pit.
  failpoint::disarm_all();
  await_checkpoints(d, 1);
  EXPECT_EQ(d.checkpointer()->consecutive_failures(), 0u);
  EXPECT_EQ(d.health_state(), HealthState::kHealthy);
  EXPECT_EQ(reg.gauge("viewmap_daemon_checkpoint_consecutive_failures").value(),
            0);
  EXPECT_EQ(reg.gauge("viewmap_daemon_checkpoint_sequence").value(),
            static_cast<std::int64_t>(d.store()->latest_sequence()));

  // Nothing was lost: the sealed store is bit-for-bit the live database.
  store::SegmentStore store(dir.str());
  EXPECT_EQ(db_bytes(store.recover()), db_bytes(d.service().database()));
  // And no failed attempt leaked a temp file.
  for (const auto& entry : fs::directory_iterator(dir.str()))
    EXPECT_FALSE(entry.path().filename().string().ends_with(".tmp"))
        << entry.path().filename();
  d.kill_for_test();
}

TEST(DaemonChaos, HealthzGoesDegradedAndBack) {
  TempDir dir("chaos_healthz");
  Rng rng(29);
  failpoint::disarm_all();
  auto cfg = chaos_config(dir.str());
  cfg.scrape.enabled = true;
  cfg.scrape.port = 0;

  ServiceLifecycle d(cfg);
  ASSERT_TRUE(d.start());
  const std::uint16_t port = d.scrape_port();
  ASSERT_NE(port, 0);

  // Healthy daemon: 200.
  EXPECT_NE(http_get(port, "/healthz").find("200 OK"), std::string::npos);

  // Inject a failure streak: /healthz must flip to 503 and name the
  // reason and the last error.
  ASSERT_TRUE(d.service().register_trusted(
      attack::make_fake_profile(0, {0, 0}, {800, 0}, rng)));
  EXPECT_EQ(feed(d, 0, 20, rng), 20u);
  while (d.service().upload_channel().pending() != 0)
    std::this_thread::sleep_for(1ms);
  failpoint::arm_from_spec("store.write.data=eio@window:0:2");
  await_failures(d, 1);
  const std::string degraded = http_get(port, "/healthz");
  EXPECT_NE(degraded.find("503"), std::string::npos);
  EXPECT_NE(degraded.find("health=degraded"), std::string::npos);
  EXPECT_NE(degraded.find("reason=checkpoint-failures:"), std::string::npos);
  EXPECT_NE(degraded.find("last_error="), std::string::npos);

  // Streak past failing_after: health escalates.
  await_failures(d, 2);
  failpoint::disarm_all();

  // Recovery: next sealed checkpoint returns /healthz to 200.
  await_checkpoints(d, 1);
  const std::string healthy = http_get(port, "/healthz");
  EXPECT_NE(healthy.find("200 OK"), std::string::npos);
  EXPECT_NE(healthy.find("health=healthy"), std::string::npos);
  d.kill_for_test();
}

TEST(DaemonChaos, FinalCheckpointFailurePropagatesOutOfStop) {
  TempDir dir("chaos_final");
  Rng rng(31);
  failpoint::disarm_all();
  auto cfg = chaos_config(dir.str());
  cfg.checkpoint.final_attempts = 2;

  ServiceLifecycle d(cfg);
  ASSERT_TRUE(d.start());
  ASSERT_TRUE(d.service().register_trusted(
      attack::make_fake_profile(0, {0, 0}, {800, 0}, rng)));
  EXPECT_EQ(feed(d, 0, 25, rng), 25u);
  while (d.service().upload_channel().pending() != 0)
    std::this_thread::sleep_for(1ms);

  // Enter the retry pit first (a failure is mid-backoff), then stop:
  // the in-process equivalent of SIGTERM arriving mid-retry. Every
  // final attempt fails too — the daemon must come down with every
  // thread joined and the failure must surface, not vanish.
  failpoint::arm_from_spec("store.write.data=enospc");  // always
  await_failures(d, 1);
  EXPECT_FALSE(d.drain());
  EXPECT_FALSE(d.stop());
  EXPECT_EQ(d.state(), LifecycleState::kStopped);
  EXPECT_FALSE(d.checkpointer()->running());
  EXPECT_FALSE(d.ingest().running());
  EXPECT_NE(d.last_error().find("final checkpoint failed"), std::string::npos);
  // Idempotent: a repeat stop() reports the recorded verdict.
  EXPECT_FALSE(d.stop());
  failpoint::disarm_all();

  // The store still recovers to its last sealed state (nothing sealed
  // here — the window covered every cycle — so it recovers empty) and
  // holds no temp debris.
  for (const auto& entry : fs::directory_iterator(dir.str()))
    EXPECT_FALSE(entry.path().filename().string().ends_with(".tmp"))
        << entry.path().filename();

  // Same shutdown with the fault cleared: the verdict is clean again on
  // a fresh instance.
  ServiceLifecycle d2(chaos_config(dir.str()));
  ASSERT_TRUE(d2.start());
  EXPECT_EQ(feed(d2, 0, 10, rng), 10u);
  EXPECT_TRUE(d2.drain());
  EXPECT_TRUE(d2.stop());
  EXPECT_TRUE(d2.last_error().empty());
}

TEST(DaemonChaos, StartSweepsStaleCheckpointTemps) {
  TempDir dir("chaos_sweep");
  failpoint::disarm_all();
  {
    // Seed crash debris the way an interrupted checkpoint would.
    std::ofstream a(fs::path(dir.str()) / "seg-dead.vseg2.tmp");
    a << "junk";
    std::ofstream b(fs::path(dir.str()) / "manifest-000009.vman.tmp");
    b << "junk";
  }
  ServiceLifecycle d(test_config(dir.str()));
  ASSERT_TRUE(d.start());
  EXPECT_EQ(d.swept_temps(), 2u);
  EXPECT_FALSE(fs::exists(fs::path(dir.str()) / "seg-dead.vseg2.tmp"));
  EXPECT_FALSE(fs::exists(fs::path(dir.str()) / "manifest-000009.vman.tmp"));
  d.kill_for_test();
}

TEST(DaemonChaos, IngestSurvivesInjectedDrainFailures) {
  TempDir dir("chaos_ingest");
  Rng rng(37);
  failpoint::disarm_all();
  ServiceLifecycle d(chaos_config(dir.str()));
  ASSERT_TRUE(d.start());
  ASSERT_TRUE(d.service().register_trusted(
      attack::make_fake_profile(0, {0, 0}, {800, 0}, rng)));
  const std::size_t base = d.service().database().size();

  // The first two drain passes throw; payloads stay queued and the
  // retry with backoff must deliver every one of them.
  failpoint::arm_from_spec("daemon.ingest.pass=error@window:0:2");
  EXPECT_EQ(feed(d, 0, 15, rng), 15u);
  const auto deadline = std::chrono::steady_clock::now() + 10s;
  while (d.service().database().size() < base + 15u) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline);
    std::this_thread::sleep_for(1ms);
  }
  EXPECT_TRUE(d.ingest().running());
  EXPECT_GE(failpoint::stats("daemon.ingest.pass").fires, 2u);
  failpoint::disarm_all();
  d.kill_for_test();
}

// ── lifecycle edges ──────────────────────────────────────────────────

TEST(Lifecycle, DoubleStartRefused) {
  TempDir dir("dbl");
  ServiceLifecycle d(test_config(dir.str()));
  ASSERT_TRUE(d.start());
  EXPECT_FALSE(d.start());
  EXPECT_EQ(d.state(), LifecycleState::kRunning);
  d.stop();
}

TEST(Lifecycle, StopBeforeStart) {
  TempDir dir("sbs");
  ServiceLifecycle d(test_config(dir.str()));
  d.stop();  // Init → Stopped, nothing was running
  EXPECT_EQ(d.state(), LifecycleState::kStopped);
  EXPECT_FALSE(d.start());  // a stopped instance does not restart
}

TEST(Lifecycle, DrainWithFullInvestigationQueue) {
  TempDir dir("fullq");
  Rng rng(13);
  auto cfg = test_config(dir.str());
  cfg.server.workers = 1;
  cfg.server.queue_capacity = 2;
  cfg.server.overflow = sys::OverflowPolicy::kReject;

  ServiceLifecycle d(cfg);
  ASSERT_TRUE(d.start());
  ASSERT_TRUE(d.service().register_trusted(
      attack::make_fake_profile(0, {0, 0}, {800, 0}, rng)));
  EXPECT_EQ(feed(d, 0, 60, rng), 60u);
  // Flood far past capacity so the queue is saturated as drain begins.
  std::vector<std::future<sys::InvestigationServer::Reports>> futures;
  for (int i = 0; i < 40; ++i)
    futures.push_back(d.service().server()->submit({{-100, -80}, {900, 80}}, 0));
  d.drain();  // must settle the queue, not deadlock on it
  EXPECT_EQ(d.state(), LifecycleState::kDraining);
  std::size_t served = 0;
  for (auto& f : futures)
    if (f.valid()) {
      (void)f.get();
      ++served;
    }
  EXPECT_GT(served, 0u);  // queued work was drained, not dropped
  d.stop();
}

TEST(Lifecycle, CheckpointFiringDuringDrain) {
  TempDir dir("ckdrain");
  Rng rng(17);
  auto cfg = test_config(dir.str());
  cfg.checkpoint.interval = 1ms;  // fire as often as the scheduler allows

  ServiceLifecycle d(cfg);
  ASSERT_TRUE(d.start());
  ASSERT_TRUE(d.service().register_trusted(
      attack::make_fake_profile(0, {0, 0}, {800, 0}, rng)));
  EXPECT_EQ(feed(d, 0, 80, rng), 80u);
  std::this_thread::sleep_for(10ms);  // let periodic cycles overlap drain
  d.drain();
  store::SegmentStore store(dir.str());
  store::RecoveryStats stats;
  const sys::VpDatabase recovered = store.recover(&stats);
  EXPECT_EQ(stats.manifests_tried, 1u) << "drain left a damaged newest manifest";
  EXPECT_TRUE(db_bytes(recovered) == db_bytes(d.service().database()))
      << "recovered database is not bit-for-bit the live one";
  d.stop();
}

TEST(Lifecycle, SigtermDuringInFlightCheckpoint) {
  TempDir dir("sigterm");
  Rng rng(19);
  auto cfg = test_config(dir.str());
  cfg.checkpoint.interval = 1ms;

  ServiceLifecycle::install_signal_handlers();
  ServiceLifecycle::clear_shutdown();
  ServiceLifecycle d(cfg);
  ASSERT_TRUE(d.start());
  ASSERT_TRUE(d.service().register_trusted(
      attack::make_fake_profile(0, {0, 0}, {800, 0}, rng)));
  EXPECT_EQ(feed(d, 0, 80, rng), 80u);
  await_checkpoints(d, 1);  // cycles are in flight right now
  ASSERT_EQ(::raise(SIGTERM), 0);
  EXPECT_TRUE(ServiceLifecycle::shutdown_requested());
  // What viewmapd's main loop does on the flag:
  d.drain();
  d.stop();
  ServiceLifecycle::clear_shutdown();

  store::SegmentStore store(dir.str());
  store::RecoveryStats stats;
  const sys::VpDatabase recovered = store.recover(&stats);
  EXPECT_EQ(stats.manifests_tried, 1u) << "newest manifest invalid after SIGTERM";
  EXPECT_EQ(stats.profiles_rejected, 0u);
  EXPECT_TRUE(db_bytes(recovered) == db_bytes(d.service().database()))
      << "recovered database is not bit-for-bit the live one";
}

TEST(Lifecycle, PointInTimeStartRestoresNamedCheckpoint) {
  TempDir dir("pit");
  Rng rng(31);
  auto cfg = test_config(dir.str());
  cfg.store.keep_manifests = 8;  // retain the history a named restore needs
  cfg.checkpoint.interval = 1h;  // only drain checkpoints write

  std::uint64_t first_seq = 0;
  std::size_t first_size = 0;
  {
    ServiceLifecycle d(cfg);
    ASSERT_TRUE(d.start());
    ASSERT_TRUE(d.service().register_trusted(
        attack::make_fake_profile(0, {0, 0}, {800, 0}, rng)));
    EXPECT_EQ(feed(d, 0, 10, rng), 10u);
    d.drain();
    d.stop();
    first_seq = store::SegmentStore(dir.str()).latest_sequence();
    first_size = 11;
  }
  {
    ServiceLifecycle d(cfg);
    ASSERT_TRUE(d.start());
    EXPECT_EQ(feed(d, 0, 25, rng), 25u);
    d.drain();
    d.stop();
  }
  // Start a third daemon pinned to the FIRST checkpoint, not the newest.
  cfg.recover_sequence = first_seq;
  ServiceLifecycle d(cfg);
  ASSERT_TRUE(d.start());
  ASSERT_TRUE(d.recovered());
  EXPECT_EQ(d.recovery().sequence, first_seq);
  EXPECT_EQ(d.service().database().size(), first_size);
  d.stop();
}

// ── scrape endpoint ──────────────────────────────────────────────────

TEST(Scrape, MetricsByteIdenticalToDump) {
  // Standalone endpoint over a quiesced service, with the endpoint's own
  // counters in a separate registry so scraping does not perturb the
  // exposition being scraped.
  sys::ServiceConfig scfg;
  scfg.rsa_bits = 1024;
  sys::ViewMapService service(scfg);
  Rng rng(23);
  ASSERT_TRUE(service.register_trusted(
      attack::make_fake_profile(0, {0, 0}, {800, 0}, rng)));
  for (int i = 0; i < 20; ++i)
    service.upload_channel().submit(
        attack::make_fake_profile(0, {double(i * 10), 0},
                                  {double(i * 10) + 300, 0}, rng)
            .serialize());
  ASSERT_EQ(service.ingest_uploads(), 20u);

  obs::MetricsRegistry own;
  ScrapeEndpoint ep(
      service.metrics(), [] { return std::pair{true, std::string("ok\n")}; },
      ScrapeConfig{}, own);
  ASSERT_TRUE(ep.start());
  const std::string scraped = body_of(http_get(ep.port(), "/metrics"));

  std::ostringstream dumped;
  service.dump_metrics(dumped);
  EXPECT_EQ(scraped, dumped.str());
  EXPECT_NE(scraped.find("viewmap_ingest_accepted_total"), std::string::npos);

  EXPECT_NE(http_get(ep.port(), "/nope").find("404"), std::string::npos);
  ep.stop();
  EXPECT_EQ(ep.port(), 0);
}

TEST(Scrape, RequestLineSplitAcrossTcpSegmentsStillRoutes) {
  // Regression: serve_one used to issue a single recv and route on
  // whatever fragment arrived, so a GET split across TCP segments (small
  // sender buffers, Nagle-off scrapers) answered a bogus 404. The server
  // must keep reading until the request line's "\r\n" arrives.
  sys::ServiceConfig scfg;
  scfg.rsa_bits = 1024;
  sys::ViewMapService service(scfg);
  obs::MetricsRegistry own;
  ScrapeEndpoint ep(
      service.metrics(), [] { return std::pair{true, std::string("ok\n")}; },
      ScrapeConfig{}, own);
  ASSERT_TRUE(ep.start());

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(ep.port());
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  ASSERT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr), 0);

  // Two writes with a pause in between: the first carries no "\r\n" at
  // all, so the old single-recv server had only "GET /met" to route on.
  const std::string part1 = "GET /met";
  const std::string part2 = "rics HTTP/1.1\r\n\r\n";
  ASSERT_EQ(::send(fd, part1.data(), part1.size(), 0),
            static_cast<ssize_t>(part1.size()));
  std::this_thread::sleep_for(50ms);
  ASSERT_EQ(::send(fd, part2.data(), part2.size(), 0),
            static_cast<ssize_t>(part2.size()));

  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof buf, 0)) > 0)
    response.append(buf, static_cast<std::size_t>(n));
  ::close(fd);

  EXPECT_NE(response.find("200 OK"), std::string::npos) << response.substr(0, 200);
  EXPECT_NE(body_of(response).find("viewmap_investigate_us"), std::string::npos);
  ep.stop();
}

TEST(Scrape, HealthzTracksLifecycleState) {
  TempDir dir("healthz");
  auto cfg = test_config(dir.str());
  cfg.scrape.enabled = true;  // port 0 → OS-assigned

  ServiceLifecycle d(cfg);
  ASSERT_TRUE(d.start());
  const std::uint16_t port = d.scrape_port();
  ASSERT_NE(port, 0);

  const std::string running = http_get(port, "/healthz");
  EXPECT_NE(running.find("200"), std::string::npos);
  EXPECT_NE(running.find("state=running"), std::string::npos);

  d.drain();  // scrape stays up through the drain
  const std::string draining = http_get(port, "/healthz");
  EXPECT_NE(draining.find("503"), std::string::npos);
  EXPECT_NE(draining.find("state=draining"), std::string::npos);

  d.stop();
  EXPECT_EQ(d.scrape_port(), 0);
}

// ── ingest backpressure ──────────────────────────────────────────────

TEST(Ingest, SubmitLifecycleAndBackpressure) {
  TempDir dir("bp");
  Rng rng(29);
  auto cfg = test_config(dir.str());
  cfg.ingest.max_pending_uploads = 8;  // tiny bound, kBlock default

  ServiceLifecycle d(cfg);
  // Before start: the daemon is not accepting.
  EXPECT_FALSE(d.ingest().submit(
      attack::make_fake_profile(0, {0, 0}, {300, 0}, rng).serialize()));

  ASSERT_TRUE(d.start());
  ASSERT_TRUE(d.service().register_trusted(
      attack::make_fake_profile(0, {0, 0}, {800, 0}, rng)));
  // Two submitters flood well past the bound; kBlock means every submit
  // eventually lands (none rejected, none lost).
  constexpr std::size_t kPerThread = 150;
  std::atomic<std::size_t> admitted{0};
  std::vector<std::thread> submitters;
  for (int t = 0; t < 2; ++t)
    submitters.emplace_back([&d, &admitted, t] {
      Rng local(100 + t);
      admitted += feed(d, 0, kPerThread, local);
    });
  for (auto& th : submitters) th.join();
  EXPECT_EQ(admitted.load(), 2 * kPerThread);

  d.drain();  // settles the channel: everything admitted is ingested
  EXPECT_EQ(d.service().database().size(), 2 * kPerThread + 1);
  // After drain: rejected again.
  EXPECT_FALSE(d.ingest().submit(
      attack::make_fake_profile(0, {0, 0}, {300, 0}, rng).serialize()));
  d.stop();
}

// ── single-caller re-entrancy guard ──────────────────────────────────

#if !defined(VIEWMAP_TSAN)
using ReentrancyDeathTest = ::testing::Test;

TEST(ReentrancyDeathTest, SecondEntrantAborts) {
  testing::GTEST_FLAG(death_test_style) = "threadsafe";
  std::atomic<bool> flag{false};
  ReentrancyGuard outer(flag, "test-region");
  EXPECT_DEATH({ ReentrancyGuard inner(flag, "test-region"); },
               "re-entered single-caller test-region");
}

TEST(ReentrancyDeathTest, ReleaseThenReenterIsFine) {
  std::atomic<bool> flag{false};
  { ReentrancyGuard g(flag, "r"); }
  { ReentrancyGuard g(flag, "r"); }  // no abort: the region was left
  EXPECT_FALSE(flag.load());
}
#endif

}  // namespace
}  // namespace viewmap::daemon
