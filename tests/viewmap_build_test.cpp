// Grid-accelerated viewmap construction vs the retained O(n²) reference
// builder, and the flat CSR machinery underneath it.
//
// The load-bearing property: for ANY member layout, link forgery
// included, the grid+CSR pipeline and the naive all-pairs sweep emit the
// bit-identical edge set — same CSR offsets, same edge array, for every
// thread count. The randomized layouts stress what the grid can get
// wrong: dense single-cell pileups, sparse city-scale spread, clusters
// straddling cell boundaries at exactly the link radius, and
// adjacent-attacker forgeries (mutual Bloom links between far-apart
// profiles that proximity must reject).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "attack/fake_vp.h"
#include "common/rng.h"
#include "system/csr_graph.h"
#include "system/trustrank.h"
#include "system/verifier.h"
#include "system/viewmap_graph.h"

namespace viewmap::sys {
namespace {

constexpr double kRadius = 400.0;  // ViewmapConfig default link radius

std::vector<const vp::ViewProfile*> pointers(const std::vector<vp::ViewProfile>& fleet) {
  std::vector<const vp::ViewProfile*> out;
  out.reserve(fleet.size());
  for (const auto& p : fleet) out.push_back(&p);
  return out;
}

/// Random straight-line trajectories over [-extent, extent]², then a
/// link pass: mutual Bloom membership for random pairs near AND far
/// (far forgeries must be rejected by proximity in both builders), plus
/// some one-way insertions (must never link).
std::vector<vp::ViewProfile> random_fleet(std::size_t n, double extent, Rng& rng) {
  std::vector<vp::ViewProfile> fleet;
  fleet.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const geo::Vec2 a{rng.uniform(-extent, extent), rng.uniform(-extent, extent)};
    const geo::Vec2 b{a.x + rng.uniform(-600.0, 600.0), a.y + rng.uniform(-600.0, 600.0)};
    fleet.push_back(attack::make_fake_profile(0, a, b, rng));
  }
  for (std::size_t k = 0; k < 3 * n; ++k) {
    const std::size_t i = rng.index(n);
    const std::size_t j = rng.index(n);
    if (i == j) continue;
    vp::link_mutually(fleet[i], fleet[j]);
  }
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t i = rng.index(n);
    const std::size_t j = rng.index(n);
    if (i == j) continue;
    fleet[i].add_neighbor_digest(fleet[j].digests().front());  // one-way only
  }
  return fleet;
}

/// Builds with the grid path at the given thread count and with the
/// naive reference, and requires the bit-identical CSR.
void expect_equivalent(const std::vector<vp::ViewProfile>& fleet,
                       std::size_t build_threads) {
  ViewmapConfig cfg;
  cfg.build_threads = build_threads;
  const ViewmapBuilder builder(cfg);
  const geo::Rect cover{{-1e7, -1e7}, {1e7, 1e7}};
  const std::vector<bool> trusted(fleet.size(), false);

  const Viewmap grid = builder.build_from_members(pointers(fleet), trusted, 0, cover);
  const Viewmap ref =
      builder.build_from_members_reference(pointers(fleet), trusted, 0, cover);

  ASSERT_EQ(grid.size(), ref.size());
  EXPECT_EQ(grid.graph(), ref.graph())
      << "edge sets diverge at n=" << fleet.size() << " threads=" << build_threads;
  EXPECT_EQ(grid.edge_count(), ref.edge_count());
}

TEST(ViewmapBuildEquivalence, SparseCityScaleLayouts) {
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    Rng rng(seed);
    // ~150 VPs over ~8×8 km: most cells hold one trajectory.
    expect_equivalent(random_fleet(150, 4000.0, rng), 1);
  }
}

TEST(ViewmapBuildEquivalence, DenseSingleCellPileup) {
  for (std::uint64_t seed : {4u, 5u, 6u}) {
    Rng rng(seed);
    // Everybody within one or two grid cells: candidate generation
    // degenerates toward all-pairs and must still match exactly.
    expect_equivalent(random_fleet(180, 350.0, rng), 1);
  }
}

TEST(ViewmapBuildEquivalence, ParallelBuildMatchesSerialAndReference) {
  for (std::uint64_t seed : {7u, 8u}) {
    Rng rng(seed);
    const auto fleet = random_fleet(220, 500.0, rng);
    expect_equivalent(fleet, 1);
    expect_equivalent(fleet, 4);  // shards the candidate stream
  }
}

TEST(ViewmapBuildEquivalence, SmallMemberSetsUseAllPairsPathIdentically) {
  for (std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{2},
                        std::size_t{20}, std::size_t{47}, std::size_t{48}}) {
    Rng rng(40 + n);
    expect_equivalent(random_fleet(n, 600.0, rng), 2);
  }
}

TEST(ViewmapBuildEquivalence, CellBoundaryStraddlersAtExactRadius) {
  // Stationary profiles in columns exactly one link radius apart, i.e.
  // on consecutive grid cell boundaries: every adjacent-column pair is
  // at distance exactly R (edges require distance ≤ R, so these are the
  // knife-edge candidates the grid must not miss), and same-column
  // pairs are co-located.
  Rng rng(60);
  std::vector<vp::ViewProfile> fleet;
  for (int col = 0; col < 10; ++col)
    for (int k = 0; k < 6; ++k) {
      const geo::Vec2 at{col * kRadius, 0.0};
      fleet.push_back(attack::make_fake_profile(0, at, at, rng));
    }
  for (std::size_t i = 0; i < fleet.size(); ++i)
    for (std::size_t j = i + 1; j < fleet.size(); ++j)
      if (rng.index(3) == 0) vp::link_mutually(fleet[i], fleet[j]);
  expect_equivalent(fleet, 1);
  expect_equivalent(fleet, 3);

  // Sanity: linked exact-radius pairs do produce edges.
  ViewmapConfig cfg;
  const ViewmapBuilder builder(cfg);
  const Viewmap map = builder.build_from_members(
      pointers(fleet), std::vector<bool>(fleet.size(), false), 0,
      {{-1e6, -1e6}, {1e6, 1e6}});
  EXPECT_GT(map.edge_count(), 0u);
}

TEST(ViewmapBuildEquivalence, OffsetStartTimesWithinTheMinuteKeepTheirEdges) {
  // Upload screening requires 60 CONTIGUOUS seconds, not minute
  // alignment, so one shard can hold profiles whose start times are
  // offset within the minute. ever_within() aligns digests by
  // wall-clock timestamp (index 30 of one against index 0 of another);
  // the grid's occupancy masks must use the same clock — a mask keyed
  // by digest index would prune these pairs and silently drop real
  // viewlinks (regression: caught in review).
  // Spread far enough that the grid path runs for real (a tight cluster
  // would divert to the degenerate all-pairs fallback, bypassing the
  // masks this test exists to check): 16×10 stationary profiles at
  // 300 m spacing — adjacent neighbors within the 400 m link radius,
  // most cells lightly occupied.
  Rng rng(65);
  std::vector<vp::ViewProfile> fleet;
  for (int k = 0; k < 160; ++k) {
    const TimeSec start = (k % 4) * 15;  // starts at :00 :15 :30 :45
    const geo::Vec2 at{static_cast<double>(k % 16) * 300.0,
                      static_cast<double>(k / 16) * 300.0};
    fleet.push_back(attack::make_fake_profile(start, at, at, rng));
  }
  for (std::size_t i = 0; i < fleet.size(); ++i)
    for (std::size_t j = i + 1; j < fleet.size(); ++j)
      if (rng.index(4) == 0) vp::link_mutually(fleet[i], fleet[j]);
  expect_equivalent(fleet, 1);
  expect_equivalent(fleet, 3);

  // The sharpest construct: convoy pairs on the same 40 m/s path with a
  // 45 s start offset, positioned to be CO-LOCATED in wall time. The
  // leader crosses the last grid cell at digest indices ~50–59, the
  // follower crosses it at ITS indices ~5–14 — index-keyed masks would
  // never intersect and the edge would vanish; wall-clock masks share
  // bits 50–59.
  std::vector<vp::ViewProfile> convoy;
  for (int lane = 0; lane < 100; ++lane) {
    const double y = lane * 500.0;  // > link radius: lanes independent
    convoy.push_back(
        attack::make_fake_profile(0, {0.0, y}, {2360.0, y}, rng));  // 40 m/s
    convoy.push_back(
        attack::make_fake_profile(45, {1800.0, y}, {4160.0, y}, rng));
    vp::link_mutually(convoy[convoy.size() - 2], convoy.back());
  }
  expect_equivalent(convoy, 1);
  const ViewmapBuilder builder;
  EXPECT_TRUE(builder.viewlinked(convoy[0], convoy[1]));
  const Viewmap map = builder.build_from_members(
      pointers(convoy), std::vector<bool>(convoy.size(), false), 0,
      {{-1e7, -1e7}, {1e7, 1e7}});
  // Every lane's offset pair must have kept its viewlink.
  EXPECT_GE(map.edge_count(), 100u);
}

TEST(ViewmapBuildEquivalence, AdjacentAttackerForgeriesRejectedIdentically) {
  // Colluders 10 km from the honest cluster forge mutual links to
  // clones of honest trajectories (§6.3.1-style): proximity kills the
  // edges, and the grid path must agree with the reference on exactly
  // which survive.
  Rng rng(61);
  auto fleet = random_fleet(120, 400.0, rng);
  const std::size_t honest = fleet.size();
  for (std::size_t k = 0; k < 30; ++k) {
    const geo::Vec2 a{10000.0 + rng.uniform(0.0, 400.0), rng.uniform(0.0, 400.0)};
    fleet.push_back(attack::make_fake_profile(0, a, {a.x + 200.0, a.y}, rng));
    vp::link_mutually(fleet.back(), fleet[rng.index(honest)]);
  }
  expect_equivalent(fleet, 1);
  expect_equivalent(fleet, 4);
}

// ── CSR machinery ────────────────────────────────────────────────────

TEST(CsrGraph, FromAdjacencyRoundTrip) {
  const std::vector<std::vector<std::uint32_t>> adj{{1, 2}, {0}, {0}, {}};
  const CsrGraph g = CsrGraph::from_adjacency(adj);
  ASSERT_EQ(g.size(), 4u);
  EXPECT_EQ(g.edge_slots(), 4u);
  EXPECT_EQ(g.degree(0), 2u);
  EXPECT_EQ(g.degree(3), 0u);
  ASSERT_EQ(g.neighbors(0).size(), 2u);
  EXPECT_EQ(g.neighbors(0)[0], 1u);
  EXPECT_EQ(g.neighbors(0)[1], 2u);
  EXPECT_TRUE(g.neighbors(3).empty());
}

TEST(CsrGraph, RejectsMalformedArrays) {
  EXPECT_THROW(CsrGraph({0, 2}, {1}), std::invalid_argument);      // frame mismatch
  EXPECT_THROW(CsrGraph({0, 1}, {5}), std::invalid_argument);      // target ≥ n
  EXPECT_THROW(CsrGraph({1, 1}, {}), std::invalid_argument);       // front ≠ 0
  EXPECT_THROW(CsrGraph({0, 2, 1, 3}, {0, 1, 2}), std::invalid_argument);  // decreasing
  EXPECT_NO_THROW(CsrGraph({0, 1, 2}, {1, 0}));
  EXPECT_NO_THROW(CsrGraph({}, {}));  // zero-node graph
}

TEST(CsrGraph, ViewmapNeighborsAreBoundsChecked) {
  Rng rng(62);
  const auto fleet = random_fleet(5, 300.0, rng);
  const ViewmapBuilder builder;
  const Viewmap map = builder.build_from_members(
      pointers(fleet), std::vector<bool>(5, false), 0, {{-1e6, -1e6}, {1e6, 1e6}});
  EXPECT_THROW((void)map.neighbors(5), std::out_of_range);
}

TEST(TrustRankCsr, MatchesNestedAdjacencyPowerIteration) {
  // The CSR core against an independent naive power iteration (the
  // pre-CSR implementation's arithmetic, re-stated here): identical
  // floating-point results, not just "close".
  Rng rng(63);
  const std::size_t n = 40;
  std::vector<std::vector<std::uint32_t>> adj(n);
  for (std::size_t k = 0; k < 3 * n; ++k) {
    const auto i = static_cast<std::uint32_t>(rng.index(n));
    const auto j = static_cast<std::uint32_t>(rng.index(n));
    if (i == j) continue;
    if (std::find(adj[i].begin(), adj[i].end(), j) != adj[i].end()) continue;
    adj[i].push_back(j);
    adj[j].push_back(i);
  }
  const std::vector<std::size_t> seeds{0, 7};
  const TrustRankConfig cfg;
  const auto result = trust_rank(CsrGraph::from_adjacency(adj), seeds, cfg);

  std::vector<double> d(n, 0.0);
  for (std::size_t s : seeds) d[s] = 1.0 / static_cast<double>(seeds.size());
  std::vector<double> scores = d;
  std::vector<double> next(n, 0.0);
  int iters = 0;
  for (int iter = 0; iter < cfg.max_iterations; ++iter) {
    for (std::size_t u = 0; u < n; ++u) next[u] = (1.0 - cfg.damping) * d[u];
    for (std::size_t v = 0; v < n; ++v) {
      if (adj[v].empty()) continue;
      const double share = cfg.damping * scores[v] / static_cast<double>(adj[v].size());
      for (std::uint32_t u : adj[v]) next[u] += share;
    }
    double delta = 0.0;
    for (std::size_t u = 0; u < n; ++u) delta += std::abs(next[u] - scores[u]);
    scores.swap(next);
    iters = iter + 1;
    if (delta < cfg.tolerance) break;
  }
  EXPECT_EQ(result.iterations, iters);
  ASSERT_EQ(result.scores.size(), scores.size());
  for (std::size_t u = 0; u < n; ++u) EXPECT_EQ(result.scores[u], scores[u]);
}

TEST(TrustRankCsr, SeedValidationAndViewmapZeroCopyPath) {
  const CsrGraph g = CsrGraph::from_adjacency(
      std::vector<std::vector<std::uint32_t>>{{1}, {0}});
  EXPECT_THROW((void)trust_rank(g, std::vector<std::size_t>{2}, {}),
               std::invalid_argument);

  // End to end through the Viewmap overload: scores come straight off
  // the viewmap's own CSR.
  Rng rng(64);
  auto fleet = random_fleet(60, 300.0, rng);
  std::vector<bool> trusted(fleet.size(), false);
  trusted[0] = true;
  const ViewmapBuilder builder;
  const Viewmap map = builder.build_from_members(pointers(fleet), trusted, 0,
                                                 {{-1e6, -1e6}, {1e6, 1e6}});
  const auto ranks = trust_rank(map);
  ASSERT_EQ(ranks.scores.size(), map.size());
  const auto direct = trust_rank(map.graph(), map.trusted_indices());
  EXPECT_EQ(ranks.scores, direct.scores);
}

TEST(Algorithm1Csr, MatchesLegacyAdjacencyEntry) {
  const std::vector<std::vector<std::uint32_t>> adj{{1}, {0, 2}, {1, 3}, {2}};
  const std::vector<double> scores{0.5, 0.3, 0.15, 0.05};
  const std::vector<std::size_t> site{1, 3};
  const auto legacy = algorithm1(adj, scores, site);
  const auto csr = algorithm1(CsrGraph::from_adjacency(adj), scores, site);
  EXPECT_EQ(legacy.top_scored, csr.top_scored);
  EXPECT_EQ(legacy.legitimate, csr.legitimate);
}

}  // namespace
}  // namespace viewmap::sys
