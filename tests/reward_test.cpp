// Unit tests: untraceable rewards — bank, client, double-spend ledger.
#include <gtest/gtest.h>

#include "reward/bank.h"
#include "reward/client.h"

namespace viewmap::reward {
namespace {

class RewardTest : public ::testing::Test {
 protected:
  static Bank& bank() {
    static Bank b(1024);  // small key: test speed, not security
    return b;
  }
};

TEST_F(RewardTest, FullProtocolYieldsSpendableCash) {
  RewardClient client(bank().public_key(), /*seed=*/42);
  const auto blinded = client.prepare(3);
  ASSERT_EQ(blinded.size(), 3u);
  const auto signatures = bank().sign_blinded(blinded);
  const auto cash = client.unblind_batch(signatures);
  ASSERT_EQ(cash.size(), 3u);
  for (const auto& token : cash) {
    EXPECT_TRUE(token_authentic(token, bank().public_key()));
    EXPECT_EQ(bank().redeem(token), RedeemOutcome::kAccepted);
  }
}

TEST_F(RewardTest, DoubleSpendRejected) {
  RewardClient client(bank().public_key(), 43);
  const auto cash = client.unblind_batch(bank().sign_blinded(client.prepare(1)));
  ASSERT_EQ(cash.size(), 1u);
  EXPECT_EQ(bank().redeem(cash[0]), RedeemOutcome::kAccepted);
  EXPECT_EQ(bank().redeem(cash[0]), RedeemOutcome::kDoubleSpend);
}

TEST_F(RewardTest, ForgedTokenRejected) {
  CashToken forged;
  forged.message = {1, 2, 3};
  forged.signature = {4, 5, 6};
  EXPECT_EQ(bank().redeem(forged), RedeemOutcome::kBadSignature);
}

TEST_F(RewardTest, TamperedMessageRejected) {
  RewardClient client(bank().public_key(), 44);
  auto cash = client.unblind_batch(bank().sign_blinded(client.prepare(1)));
  cash[0].message[0] ^= 1;
  EXPECT_EQ(bank().redeem(cash[0]), RedeemOutcome::kBadSignature);
}

TEST_F(RewardTest, UnlinkabilityBlindedValuesIndependentOfMessages) {
  // The bank sees only blinded values; two clients with identical RNG
  // messages but different blinding seeds produce unrelated blindings.
  RewardClient c1(bank().public_key(), 45);
  RewardClient c2(bank().public_key(), 46);
  const auto b1 = c1.prepare(1);
  const auto b2 = c2.prepare(1);
  EXPECT_NE(b1[0], b2[0]);
}

TEST_F(RewardTest, SignatureCountMismatchThrows) {
  RewardClient client(bank().public_key(), 47);
  (void)client.prepare(2);
  std::vector<crypto::BigBytes> wrong(1);
  EXPECT_THROW((void)client.unblind_batch(wrong), std::invalid_argument);
}

TEST_F(RewardTest, MisbehavingSignerDetected) {
  RewardClient client(bank().public_key(), 48);
  const auto blinded = client.prepare(1);
  // A "signer" that returns garbage must be caught at unblind time.
  std::vector<crypto::BigBytes> garbage{{0x01, 0x02, 0x03}};
  EXPECT_THROW((void)client.unblind_batch(garbage), std::runtime_error);
}

TEST_F(RewardTest, RedeemCountTracksAcceptedOnly) {
  Bank fresh(1024);
  RewardClient client(fresh.public_key(), 49);
  const auto cash = client.unblind_batch(fresh.sign_blinded(client.prepare(2)));
  EXPECT_EQ(fresh.redeemed_count(), 0u);
  (void)fresh.redeem(cash[0]);
  (void)fresh.redeem(cash[0]);  // double spend, not counted twice
  EXPECT_EQ(fresh.redeemed_count(), 1u);
  (void)fresh.redeem(cash[1]);
  EXPECT_EQ(fresh.redeemed_count(), 2u);
}

TEST(RedeemOutcomeNames, Strings) {
  EXPECT_STREQ(to_string(RedeemOutcome::kAccepted), "accepted");
  EXPECT_STREQ(to_string(RedeemOutcome::kBadSignature), "bad-signature");
  EXPECT_STREQ(to_string(RedeemOutcome::kDoubleSpend), "double-spend");
}

}  // namespace
}  // namespace viewmap::reward
