// Tests: wire protocol framing, typed messages, and the full byte-level
// user ↔ system conversation (upload → investigate → solicit → submit →
// review → claim → blind-sign → unblind → spend).
#include <gtest/gtest.h>

#include "common/bytes.h"
#include "proto/endpoint.h"
#include "proto/messages.h"
#include "road/city.h"

namespace viewmap::proto {
namespace {

TEST(Framing, EncodeDecodeRoundTrip) {
  Envelope e;
  e.type = MessageType::kVideoListRequest;
  e.payload = {1, 2, 3};
  const auto frame = encode(e);
  EXPECT_EQ(decode(frame), e);
}

TEST(Framing, RejectsMalformedFrames) {
  EXPECT_THROW((void)decode(std::vector<std::uint8_t>{}), std::invalid_argument);
  EXPECT_THROW((void)decode(std::vector<std::uint8_t>{1, 2}), std::invalid_argument);
  // Unknown type.
  std::vector<std::uint8_t> bad{99, 0, 0, 0, 0};
  EXPECT_THROW((void)decode(bad), std::invalid_argument);
  // Length mismatch.
  std::vector<std::uint8_t> short_len{1, 5, 0, 0, 0, 1};
  EXPECT_THROW((void)decode(short_len), std::invalid_argument);
}

TEST(Messages, IdListRoundTrip) {
  std::vector<Id16> ids(3);
  ids[0].bytes[0] = 1;
  ids[1].bytes[5] = 2;
  ids[2].bytes[15] = 3;
  const auto frame = make_id_list(MessageType::kVideoListResponse, ids);
  const auto envelope = decode(frame);
  EXPECT_EQ(envelope.type, MessageType::kVideoListResponse);
  EXPECT_EQ(parse_id_list(envelope.payload), ids);
}

TEST(Messages, IdListRejectsBadLength) {
  std::vector<std::uint8_t> payload{3, 0, 0, 0, 1, 2};  // claims 3 ids, has 2 bytes
  EXPECT_THROW((void)parse_id_list(payload), std::invalid_argument);
}

TEST(Messages, VideoSubmitRoundTrip) {
  vp::RecordedVideo video;
  video.start_time = 120;
  video.bytes = {9, 8, 7, 6, 5};
  Id16 id;
  id.bytes[3] = 0xaa;
  const auto frame = make_video_submit(id, video);
  const auto envelope = decode(frame);
  const auto msg = parse_video_submit(envelope.payload);
  EXPECT_EQ(msg.vp_id, id);
  EXPECT_EQ(msg.start_time, 120);
  EXPECT_EQ(msg.video_bytes, video.bytes);
}

TEST(Messages, RewardClaimRoundTrip) {
  Id16 id;
  id.bytes[0] = 7;
  vp::VpSecret secret;
  secret.q = {1, 2, 3, 4, 5, 6, 7, 8};
  const auto envelope = decode(make_reward_claim(id, secret));
  const auto claim = parse_reward_claim(envelope.payload);
  EXPECT_EQ(claim.vp_id, id);
  EXPECT_EQ(claim.secret.q, secret.q);
}

TEST(Messages, BigBatchRoundTrip) {
  Id16 id;
  id.bytes[9] = 1;
  std::vector<crypto::BigBytes> items{{1, 2, 3}, {}, {0xff}};
  const auto envelope = decode(make_big_batch(MessageType::kBlindBatch, id, items));
  const auto batch = parse_big_batch(envelope.payload);
  EXPECT_EQ(batch.vp_id, id);
  EXPECT_EQ(batch.items, items);
}

TEST(Messages, BatchLimitsEnforced) {
  // count > 4096 rejected
  viewmap::ByteWriter w;
  Id16 id;
  w.put_bytes(id.bytes);
  w.put_u32(5000);
  EXPECT_THROW((void)parse_big_batch(w.bytes()), std::invalid_argument);
}

// ── Full byte-level conversation ─────────────────────────────────────────

struct ProtoWorld : ::testing::Test {
  ProtoWorld()
      : city(make_city()),
        router(city.roads),
        service(make_service_config()),
        server(service),
        witness_cam(make_cam(1)),
        police_cam(make_cam(2)) {}

  static road::CityMap make_city() {
    Rng r(50);
    road::GridCityConfig cfg;
    cfg.extent_m = 1000;
    cfg.block_m = 200;
    cfg.building_fill = 0.0;
    return road::make_grid_city(cfg, r);
  }
  static sys::ServiceConfig make_service_config() {
    sys::ServiceConfig cfg;
    cfg.rsa_bits = 1024;
    return cfg;
  }
  vp::Dashcam make_cam(std::uint64_t seed) {
    vp::DashcamConfig cfg;
    cfg.video_seed = seed;
    cfg.guards_enabled = seed != 2;  // the police car uploads only actuals
    return vp::Dashcam(cfg, &router, Rng(seed));
  }

  void drive_minute() {
    for (TimeSec now = 1; now <= kUnitTimeSec; ++now) {
      const auto step = static_cast<double>((now - 1) % kUnitTimeSec);
      const auto vdw = witness_cam.tick(now, {200.0 + step * 5.0, 200.0});
      const auto vdp = police_cam.tick(now, {230.0 + step * 5.0, 200.0});
      witness_cam.receive(vdp);
      police_cam.receive(vdw);
    }
  }

  road::CityMap city;
  road::Router router;
  sys::ViewMapService service;
  ServerEndpoint server;
  vp::Dashcam witness_cam;
  vp::Dashcam police_cam;
};

TEST_F(ProtoWorld, EndToEndOverWire) {
  drive_minute();

  // Police car registers its actual VP out of band (authenticated path).
  for (auto& payload : police_cam.drain_uploads())
    service.register_trusted(vp::ViewProfile::parse(payload));

  // Witness uploads over the wire (fire and forget: no responses).
  UserAgent witness(witness_cam, service.cash_public_key(), 71);
  for (const auto& frame : witness.upload_frames())
    EXPECT_FALSE(server.handle(frame).has_value());
  EXPECT_GE(service.database().size(), 2u);  // actual + guard(s)

  // System investigates; the witness polls and answers with its video.
  const auto report = service.investigate({{150, 150}, {600, 250}}, 0);
  ASSERT_GE(report.solicited.size(), 1u);

  const auto poll = server.handle(witness.video_poll_frame());
  ASSERT_TRUE(poll.has_value());
  const auto poll_env = decode(*poll);
  ASSERT_EQ(poll_env.type, MessageType::kVideoListResponse);
  const auto submissions = witness.answer_video_list(poll_env.payload);
  ASSERT_EQ(submissions.size(), 1u);  // guards can never be answered

  const auto result = server.handle(submissions[0]);
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(parse_submit_result(decode(*result).payload));

  // Human review approves; witness claims over the wire.
  const Id16 vp_id = witness_cam.answerable_vp_ids()[0];
  service.conclude_review(vp_id, true, 2);

  const auto reward_poll = server.handle(witness.reward_poll_frame());
  ASSERT_TRUE(reward_poll.has_value());
  const auto claims = witness.claim_rewards(decode(*reward_poll).payload);
  ASSERT_EQ(claims.size(), 1u);

  const auto grant = server.handle(claims[0]);
  ASSERT_TRUE(grant.has_value());
  const auto units = parse_reward_grant(decode(*grant).payload);
  ASSERT_EQ(units, 2u);

  const auto batch_frame = witness.blind_batch_frame(vp_id, units);
  const auto signatures = server.handle(batch_frame);
  ASSERT_TRUE(signatures.has_value());
  const auto sig_env = decode(*signatures);
  ASSERT_EQ(sig_env.type, MessageType::kSignatureBatch);
  const auto cash = witness.receive_signatures(sig_env.payload);
  ASSERT_EQ(cash.size(), 2u);
  EXPECT_EQ(witness.wallet().size(), 2u);

  for (const auto& token : cash)
    EXPECT_EQ(service.bank().redeem(token), reward::RedeemOutcome::kAccepted);
  EXPECT_EQ(service.bank().redeem(cash[0]), reward::RedeemOutcome::kDoubleSpend);
}

TEST_F(ProtoWorld, ServerDropsGarbageSilently) {
  Rng rng(99);
  for (int i = 0; i < 50; ++i) {
    std::vector<std::uint8_t> junk(rng.index(200));
    rng.fill_bytes(junk);
    EXPECT_FALSE(server.handle(junk).has_value());
  }
  EXPECT_EQ(server.dropped_frames(), 50u);
  EXPECT_EQ(service.database().size(), 0u);
}

TEST_F(ProtoWorld, WrongVideoRejectedOverWire) {
  drive_minute();
  for (auto& payload : police_cam.drain_uploads())
    service.register_trusted(vp::ViewProfile::parse(payload));
  UserAgent witness(witness_cam, service.cash_public_key(), 72);
  for (const auto& frame : witness.upload_frames()) (void)server.handle(frame);
  (void)service.investigate({{150, 150}, {600, 250}}, 0);

  // Submit a fabricated video for our own solicited VP id.
  const Id16 vp_id = witness_cam.answerable_vp_ids()[0];
  vp::RecordedVideo forged;
  forged.start_time = 0;
  forged.bytes.assign(60 * 32, 0xee);
  const auto response = server.handle(make_video_submit(vp_id, forged));
  ASSERT_TRUE(response.has_value());
  EXPECT_FALSE(parse_submit_result(decode(*response).payload));
}

TEST_F(ProtoWorld, ClaimWithWrongSecretGetsZeroGrant) {
  drive_minute();
  for (auto& payload : police_cam.drain_uploads())
    service.register_trusted(vp::ViewProfile::parse(payload));
  UserAgent witness(witness_cam, service.cash_public_key(), 73);
  for (const auto& frame : witness.upload_frames()) (void)server.handle(frame);
  (void)service.investigate({{150, 150}, {600, 250}}, 0);
  const Id16 vp_id = witness_cam.answerable_vp_ids()[0];
  const auto* video = witness_cam.video_of(vp_id);
  ASSERT_TRUE(service.submit_video(vp_id, *video));
  service.conclude_review(vp_id, true, 1);

  vp::VpSecret wrong{};
  const auto grant = server.handle(make_reward_claim(vp_id, wrong));
  ASSERT_TRUE(grant.has_value());
  EXPECT_EQ(parse_reward_grant(decode(*grant).payload), 0u);
}

}  // namespace
}  // namespace viewmap::proto
