// Tests that the paper's §6.3.1 analysis holds for our TrustRank
// implementation:
//
//   Lemma 1     — the total trust score of VPs at ≥ L links from the
//                 trusted seed is at most δ^L.
//   Corollary 1 — injecting more fakes dilutes the per-fake trust score:
//                 the maximum fake score inside the site decreases (on
//                 average) as the fake count grows.
//
// Plus a full-protocol version of the chain attack: real ViewProfiles,
// real Bloom filters, real viewmap construction.
#include <gtest/gtest.h>

#include "attack/attack_graph.h"
#include "attack/fake_vp.h"
#include "common/rng.h"
#include "system/service.h"
#include "system/trustrank.h"
#include "vp/video.h"
#include "vp/vp_builder.h"

namespace viewmap {
namespace {

TEST(Lemma1, TrustBeyondLHopsBoundedByDeltaPowL) {
  // Random geometric graphs; for every L, sum of scores over nodes with
  // hop distance ≥ L must be ≤ δ^L (+ numerical slack).
  for (std::uint64_t seed : {1u, 2u, 3u, 4u}) {
    Rng rng(seed);
    attack::GeometricConfig cfg;
    cfg.legit_count = 400;
    cfg.area_m = 2000;
    cfg.link_radius_m = 160;
    const auto g = attack::make_geometric_viewmap(cfg, rng);

    sys::TrustRankConfig tr;  // δ = 0.8
    const auto result = sys::trust_rank(g.adj, g.trusted, tr);
    const auto hops = g.hops_from_trusted();

    for (std::size_t L = 1; L <= 12; ++L) {
      double far_mass = 0.0;
      for (std::size_t i = 0; i < g.size(); ++i)
        if (hops[i] != SIZE_MAX && hops[i] >= L) far_mass += result.scores[i];
      EXPECT_LE(far_mass, std::pow(tr.damping, static_cast<double>(L)) + 1e-9)
          << "seed " << seed << " L " << L;
    }
  }
}

TEST(Corollary1, MoreFakesMeansLowerPerFakeScore) {
  // Average the best fake score inside the site over several graphs, for
  // growing fake budgets. The per-fake ceiling must fall roughly like
  // 1/n (we assert strict monotonicity of the 4x-spaced averages).
  const std::vector<std::size_t> budgets{250, 1000, 4000};
  std::vector<double> avg_best(budgets.size(), 0.0);
  const int graphs = 6;
  Rng rng(99);
  sys::TrustRankConfig tr;
  tr.tolerance = 1e-10;

  for (int trial = 0; trial < graphs; ++trial) {
    attack::GeometricConfig cfg;
    cfg.legit_count = 500;
    cfg.area_m = 2000;
    cfg.link_radius_m = 160;
    for (std::size_t b = 0; b < budgets.size(); ++b) {
      Rng graph_rng(1000 + static_cast<std::uint64_t>(trial));  // same base graph per budget
      auto g = attack::make_geometric_viewmap(cfg, graph_rng);
      attack::AttackPlan plan;
      plan.fake_count = budgets[b];
      plan.attacker_count = 10;
      Rng attack_rng(2000 + static_cast<std::uint64_t>(trial));
      if (!attack::inject_fakes(g, plan, cfg.link_radius_m, attack_rng)) continue;

      const auto result = sys::trust_rank(g.adj, g.trusted, tr);
      double best_fake = 0.0;
      for (std::size_t i : g.site_members())
        if (g.fake[i]) best_fake = std::max(best_fake, result.scores[i]);
      avg_best[b] += best_fake;
    }
  }
  for (std::size_t b = 1; b < budgets.size(); ++b)
    EXPECT_LT(avg_best[b], avg_best[b - 1])
        << "per-fake trust must dilute as the fake population grows";
}

TEST(FullProtocol, MultiHopFakeChainIntoSiteRejected) {
  // Five honest vehicles in convoy; the attacker holds ONE legitimately
  // generated VP at the convoy's tail and chains three fake VPs (real
  // ViewProfiles, forged mutual Bloom links) toward the site at the head.
  Rng rng(7);
  const int honest = 5;
  std::vector<vp::VpBuilder> builders;
  for (int i = 0; i <= honest; ++i) builders.emplace_back(0, rng);  // +1: attacker

  vp::SyntheticVideoSource source(3, 16);
  std::vector<std::uint8_t> chunk;
  auto pos = [](int vehicle, int sec) {
    return geo::Vec2{sec * 8.0, vehicle * 60.0};
  };
  for (int s = 0; s < kDigestsPerProfile; ++s) {
    source.generate_chunk(0, s, chunk);
    std::vector<dsrc::ViewDigest> vds;
    for (int i = 0; i <= honest; ++i)
      vds.push_back(builders[static_cast<std::size_t>(i)].tick(pos(i, s), chunk));
    for (int i = 0; i < honest; ++i) {  // chain exchanges, incl. attacker at tail
      builders[static_cast<std::size_t>(i)].accept_neighbor(
          vds[static_cast<std::size_t>(i + 1)], pos(i, s));
      builders[static_cast<std::size_t>(i + 1)].accept_neighbor(
          vds[static_cast<std::size_t>(i)], pos(i + 1, s));
    }
  }

  sys::ServiceConfig scfg;
  scfg.rsa_bits = 1024;
  sys::ViewMapService service(scfg);
  std::vector<Id16> honest_ids;
  vp::ViewProfile attacker_legit = [&] {
    std::optional<vp::ViewProfile> result;
    for (int i = 0; i <= honest; ++i) {
      auto gen = builders[static_cast<std::size_t>(i)].finish();
      if (i == 0) {
        service.register_trusted(gen.profile);
        honest_ids.push_back(gen.profile.vp_id());
      } else if (i < honest) {
        honest_ids.push_back(gen.profile.vp_id());
        service.upload_channel().submit(gen.profile.serialize());
      } else {
        result = std::move(gen.profile);  // vehicle `honest` is the attacker
      }
    }
    return std::move(*result);
  }();

  // Fake chain from the attacker's position (y = 300) to the site around
  // vehicle 1 (y = 60), spaced within the validated DSRC radius.
  Rng attacker_rng(8);
  auto f1 = attack::make_fake_profile(0, {100, 300}, {300, 240}, attacker_rng);
  auto f2 = attack::make_fake_profile(0, {120, 200}, {320, 150}, attacker_rng);
  auto f3 = attack::make_fake_profile(0, {140, 90}, {340, 60}, attacker_rng);
  attack::forge_link(attacker_legit, f1);
  attack::forge_link(f1, f2);
  attack::forge_link(f2, f3);
  const Id16 f3_id = f3.vp_id();

  service.upload_channel().submit(attacker_legit.serialize());
  service.upload_channel().submit(f1.serialize());
  service.upload_channel().submit(f2.serialize());
  service.upload_channel().submit(f3.serialize());
  EXPECT_EQ(service.ingest_uploads(), 4u + static_cast<std::size_t>(honest) - 1u);

  // Site around vehicles 0-1 (y ≤ 120): f3 claims to be there too.
  const geo::Rect site{{-10, -10}, {600, 120}};
  const auto report = service.investigate(site, 0);

  // The fake in the site is rejected; honest site members are solicited.
  EXPECT_FALSE(service.board().is_posted(f3_id, sys::RequestKind::kVideo));
  EXPECT_TRUE(service.board().is_posted(honest_ids[1], sys::RequestKind::kVideo));
  ASSERT_FALSE(report.verification.rejected.empty());
}

}  // namespace
}  // namespace viewmap
