// InvestigationServer + concurrent NoticeBoard: the multi-threaded
// investigation front. Covers the NoticeBoard multi-writer contract (no
// lost or duplicated notices), queue backpressure (bounded queue full →
// reject vs block, both observable), per-batch snapshot pinning and
// write-version reuse, and the tentpole TSan stress: N workers
// investigating against a live ingest + retention-eviction loop.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <future>
#include <stdexcept>
#include <string_view>
#include <thread>
#include <unordered_set>
#include <vector>

#include "attack/fake_vp.h"
#include "common/failpoint.h"
#include "common/rng.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/simulator.h"
#include "system/investigation_server.h"
#include "system/service.h"

namespace viewmap::sys {
namespace {

Id16 id_of(int n) {
  Id16 id{};
  id.bytes[0] = static_cast<std::uint8_t>(n & 0xff);
  id.bytes[1] = static_cast<std::uint8_t>((n >> 8) & 0xff);
  return id;
}

TEST(NoticeBoardConcurrent, MultiWriterPostsAreNeitherLostNorDuplicated) {
  // 4 writers post 200 disjoint video requests each, and all 4 also post
  // the same 50 shared ids (idempotent re-posts racing each other).
  NoticeBoard board;
  constexpr int kWriters = 4;
  constexpr int kPerWriter = 200;
  constexpr int kShared = 50;
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w)
    writers.emplace_back([&board, w] {
      for (int i = 0; i < kPerWriter; ++i)
        board.post(id_of(1000 + w * kPerWriter + i), RequestKind::kVideo);
      for (int i = 0; i < kShared; ++i) board.post(id_of(i), RequestKind::kVideo);
    });
  for (auto& t : writers) t.join();

  const auto posted = board.posted(RequestKind::kVideo);
  // Every notice present exactly once: no lost posts, no duplicates.
  EXPECT_EQ(posted.size(), static_cast<std::size_t>(kWriters * kPerWriter + kShared));
  std::unordered_set<Id16, Id16Hasher> unique(posted.begin(), posted.end());
  EXPECT_EQ(unique.size(), posted.size());
  for (int i = 0; i < kShared; ++i)
    EXPECT_TRUE(board.is_posted(id_of(i), RequestKind::kVideo));
  for (int w = 0; w < kWriters; ++w)
    for (int i = 0; i < kPerWriter; ++i)
      EXPECT_TRUE(board.is_posted(id_of(1000 + w * kPerWriter + i), RequestKind::kVideo));
}

TEST(NoticeBoardConcurrent, PostWithdrawPollRace) {
  // TSan target: posters, a withdrawer, and anonymous pollers all racing.
  // Kinds are independent flags under one entry, so a video withdraw must
  // never drop a reward notice committed by another thread.
  NoticeBoard board;
  constexpr int kIds = 300;
  std::atomic<bool> stop{false};
  std::thread poller([&] {
    while (!stop.load()) {
      (void)board.posted(RequestKind::kVideo);
      (void)board.is_posted(id_of(1), RequestKind::kReward);
    }
  });
  std::thread video_writer([&] {
    for (int i = 0; i < kIds; ++i) board.post(id_of(i), RequestKind::kVideo);
  });
  std::thread reward_writer([&] {
    for (int i = 0; i < kIds; ++i) board.post(id_of(i), RequestKind::kReward);
  });
  video_writer.join();
  std::thread withdrawer([&] {
    for (int i = 0; i < kIds; i += 2) board.withdraw(id_of(i), RequestKind::kVideo);
  });
  reward_writer.join();
  withdrawer.join();
  stop.store(true);
  poller.join();

  EXPECT_EQ(board.posted(RequestKind::kReward).size(), static_cast<std::size_t>(kIds));
  EXPECT_EQ(board.posted(RequestKind::kVideo).size(), static_cast<std::size_t>(kIds / 2));
}

/// A convoy world (as in service_test): 4 vehicles exchanging VDs, so
/// viewlinks are real and investigations actually solicit videos.
struct ConvoyWorld {
  ConvoyWorld() {
    sim::SimConfig cfg;
    cfg.seed = 5;
    cfg.vehicle_count = 0;
    cfg.minutes = 1;
    cfg.guards_enabled = false;
    cfg.video_bytes_per_second = 32;
    road::CityMap open;
    open.bounds = {{0, -100}, {5000, 100}};
    std::vector<sim::VehicleMotion> fleet;
    for (int i = 0; i < 4; ++i)
      fleet.push_back(
          sim::VehicleMotion::scripted({{i * 60.0, 0}, {5000 + i * 60.0, 0}}, 15.0));
    sim::TrafficSimulator sim(std::move(open), cfg, std::move(fleet));
    result = sim.run();
  }
  [[nodiscard]] const sim::ProfileRecord& record_of(VehicleId v) const {
    for (const auto& rec : result.profiles)
      if (!rec.guard && rec.creator == v) return rec;
    throw std::logic_error("no record");
  }
  sim::SimResult result;
};

ServiceConfig small_cfg() {
  ServiceConfig cfg;
  cfg.rsa_bits = 1024;  // test speed
  return cfg;
}

TEST(InvestigationServer, ServesRequestsAndPostsSolicitationsConcurrently) {
  ConvoyWorld world;
  ViewMapService service(small_cfg());
  service.register_trusted(world.record_of(0).profile);
  for (VehicleId v = 1; v < 4; ++v)
    service.upload_channel().submit(world.record_of(v).profile.serialize());
  service.ingest_uploads();

  ServerConfig scfg;
  scfg.workers = 3;
  auto& server = service.start_server(scfg);
  ASSERT_EQ(service.server(), &server);
  EXPECT_EQ(server.worker_count(), 3u);

  // Many submitters racing: every request resolves to the same verdict a
  // direct investigate() produces, and all solicitations land on the
  // board (workers post concurrently).
  const geo::Rect site{{0, -50}, {1200, 50}};
  std::vector<std::future<InvestigationServer::Reports>> futures;
  for (int i = 0; i < 12; ++i) futures.push_back(server.submit(site, 0));
  // A period spanning minutes [0, 3): only minute 0 has a trust seed.
  futures.push_back(server.submit_period(site, 0, 3 * kUnitTimeSec));

  for (auto& fut : futures) {
    ASSERT_TRUE(fut.valid());
    auto reports = fut.get();
    ASSERT_EQ(reports.size(), 1u);  // exactly the seeded minute
    EXPECT_EQ(reports[0].viewmap.size(), 4u);
    EXPECT_EQ(reports[0].verification.legitimate.size(), 4u);
    EXPECT_EQ(reports[0].solicited.size(), 3u);
    for (const Id16& id : reports[0].solicited)
      EXPECT_TRUE(service.board().is_posted(id, RequestKind::kVideo));
  }
  EXPECT_EQ(service.board().posted(RequestKind::kVideo).size(), 3u);

  const auto stats = server.stats();
  EXPECT_EQ(stats.submitted, 13u);
  EXPECT_EQ(stats.completed, 13u);
  EXPECT_EQ(stats.reports, 13u);
  EXPECT_EQ(stats.rejected, 0u);
  service.stop_server();
  EXPECT_EQ(service.server(), nullptr);
}

TEST(InvestigationServer, RejectPolicyIsObservableWhenQueueFull) {
  ConvoyWorld world;
  ViewMapService service(small_cfg());
  service.register_trusted(world.record_of(0).profile);

  ServerConfig scfg;
  scfg.workers = 1;
  scfg.queue_capacity = 2;
  scfg.overflow = OverflowPolicy::kReject;
  auto& server = service.start_server(scfg);
  server.pause();  // workers idle ⇒ the bounded queue fills deterministically

  const geo::Rect site{{0, -50}, {1200, 50}};
  auto f1 = server.submit(site, 0);
  auto f2 = server.submit(site, 0);
  auto f3 = server.submit(site, 0);  // queue full → rejected
  EXPECT_TRUE(f1.valid());
  EXPECT_TRUE(f2.valid());
  EXPECT_FALSE(f3.valid());
  EXPECT_EQ(server.queue_depth(), 2u);
  EXPECT_EQ(server.stats().rejected, 1u);

  server.resume();
  EXPECT_EQ(f1.get().size(), 1u);
  EXPECT_EQ(f2.get().size(), 1u);
  const auto stats = server.stats();
  EXPECT_EQ(stats.submitted, 2u);
  EXPECT_EQ(stats.completed, 2u);
  EXPECT_EQ(stats.peak_queue, 2u);
}

TEST(InvestigationServer, BlockPolicyHoldsSubmitterUntilSlotFrees) {
  ConvoyWorld world;
  ViewMapService service(small_cfg());
  service.register_trusted(world.record_of(0).profile);

  ServerConfig scfg;
  scfg.workers = 1;
  scfg.queue_capacity = 1;
  scfg.overflow = OverflowPolicy::kBlock;
  auto& server = service.start_server(scfg);
  server.pause();

  const geo::Rect site{{0, -50}, {1200, 50}};
  auto f1 = server.submit(site, 0);
  ASSERT_TRUE(f1.valid());

  std::atomic<bool> enqueued{false};
  std::future<InvestigationServer::Reports> f2;
  std::thread submitter([&] {
    f2 = server.submit(site, 0);  // queue full → blocks until resume()
    enqueued.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_FALSE(enqueued.load());   // still blocked behind the full queue
  EXPECT_EQ(server.queue_depth(), 1u);

  server.resume();  // worker drains → slot frees → submitter unblocks
  submitter.join();
  EXPECT_TRUE(enqueued.load());
  ASSERT_TRUE(f2.valid());
  EXPECT_EQ(f1.get().size(), 1u);
  EXPECT_EQ(f2.get().size(), 1u);
  EXPECT_EQ(server.stats().rejected, 0u);
}

TEST(InvestigationServer, BatchingServesBurstFromOneSnapshot) {
  ConvoyWorld world;
  ViewMapService service(small_cfg());
  service.register_trusted(world.record_of(0).profile);

  ServerConfig scfg;
  scfg.workers = 1;
  scfg.queue_capacity = 16;
  scfg.batch_max = 8;
  auto& server = service.start_server(scfg);
  server.pause();

  const geo::Rect site{{0, -50}, {1200, 50}};
  std::vector<std::future<InvestigationServer::Reports>> futures;
  for (int i = 0; i < 8; ++i) futures.push_back(server.submit(site, 0));
  server.resume();
  for (auto& fut : futures) EXPECT_EQ(fut.get().size(), 1u);

  // The whole paused burst came off the queue as one batch, served from
  // one pinned DbSnapshot.
  const auto stats = server.stats();
  EXPECT_EQ(stats.completed, 8u);
  EXPECT_EQ(stats.batches, 1u);
  EXPECT_EQ(stats.snapshots, 1u);
}

TEST(InvestigationServer, UnchangedWriteVersionReusesSnapshotAcrossBatches) {
  ConvoyWorld world;
  ViewMapService service(small_cfg());
  service.register_trusted(world.record_of(0).profile);

  ServerConfig scfg;
  scfg.workers = 1;
  scfg.queue_capacity = 16;
  scfg.batch_max = 1;  // four separate batches…
  auto& server = service.start_server(scfg);
  server.pause();
  const geo::Rect site{{0, -50}, {1200, 50}};
  std::vector<std::future<InvestigationServer::Reports>> futures;
  for (int i = 0; i < 4; ++i) futures.push_back(server.submit(site, 0));
  server.resume();
  for (auto& fut : futures) EXPECT_EQ(fut.get().size(), 1u);

  // …but the database never changed, so the write-version check let the
  // worker pin exactly one snapshot for all of them.
  const auto stats = server.stats();
  EXPECT_EQ(stats.batches, 4u);
  EXPECT_EQ(stats.snapshots, 1u);
}

bool has_span(const obs::Trace& trace, std::string_view name) {
  for (const auto& span : trace.spans)
    if (span.name == name) return true;
  return false;
}

TEST(InvestigationServer, PriorityRequestsOvertakeQueuedBatchRequests) {
  ConvoyWorld world;
  ViewMapService service(small_cfg());
  service.register_trusted(world.record_of(0).profile);
  for (VehicleId v = 1; v < 4; ++v)
    service.upload_channel().submit(world.record_of(v).profile.serialize());
  service.ingest_uploads();

  ServerConfig scfg;
  scfg.workers = 1;
  scfg.batch_max = 1;
  auto& server = service.start_server(scfg);
  server.pause();  // queue deterministically before any serving starts

  // Four batch scans queue first, then one live request for the SAME
  // (site, minute) key. With the result cache on, serve ORDER is burned
  // into the traces: exactly one request — the first served — misses and
  // builds; everyone after it hits. If the live request overtook the
  // queue, the build trace is its.
  const geo::Rect site{{0, -50}, {1200, 50}};
  std::vector<std::future<InvestigationServer::Reports>> batch;
  for (int i = 0; i < 4; ++i)
    batch.push_back(server.submit(site, 0, {.priority = RequestPriority::kBatch}));
  auto live = server.submit(site, 0, {.priority = RequestPriority::kLive});
  ASSERT_TRUE(live.valid());
  server.resume();

  auto live_reports = live.get();
  ASSERT_EQ(live_reports.size(), 1u);
  EXPECT_FALSE(has_span(live_reports[0].trace, "result_cache_hit"))
      << "the live request was served behind the batch backlog";
  EXPECT_TRUE(has_span(live_reports[0].trace, "edge_build"));

  for (auto& fut : batch) {
    auto reports = fut.get();
    ASSERT_EQ(reports.size(), 1u);
    EXPECT_TRUE(has_span(reports[0].trace, "result_cache_hit"));
    // Bit-identical to the live (miss) report's verdict, per the digest key.
    EXPECT_EQ(reports[0].solicited, live_reports[0].solicited);
    EXPECT_EQ(reports[0].verification.legitimate,
              live_reports[0].verification.legitimate);
  }
  EXPECT_GE(service.result_cache().stats().hits, 4u);
}

TEST(InvestigationServer, DeadlineExpiredRequestsFailFastAndDistinctly) {
  ConvoyWorld world;
  ViewMapService service(small_cfg());
  service.register_trusted(world.record_of(0).profile);

  ServerConfig scfg;
  scfg.workers = 1;
  auto& server = service.start_server(scfg);
  server.pause();

  const geo::Rect site{{0, -50}, {1200, 50}};
  auto doomed = server.submit(site, 0, {.deadline = std::chrono::milliseconds(1)});
  auto patient = server.submit(site, 0);  // no deadline: must still succeed
  ASSERT_TRUE(doomed.valid());
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  server.resume();

  EXPECT_THROW(doomed.get(), DeadlineExpired);
  EXPECT_EQ(patient.get().size(), 1u);
  const auto stats = server.stats();
  EXPECT_EQ(stats.submitted, 2u);
  EXPECT_EQ(stats.completed, 2u);  // expired requests still complete…
  EXPECT_EQ(stats.expired, 1u);    // …under their own distinct reason
  EXPECT_EQ(stats.failed, 0u);     // an expiry is not a serve failure
  EXPECT_EQ(stats.rejected, 0u);   // and not a queue rejection either
}

TEST(InvestigationServer, SnapshotFailureIsCountedAndTimedNotSilent) {
  ConvoyWorld world;
  ViewMapService service(small_cfg());
  service.register_trusted(world.record_of(0).profile);

  ServerConfig scfg;
  scfg.workers = 1;
  scfg.batch_max = 2;  // both queued requests die in ONE failed batch
  auto& server = service.start_server(scfg);
  server.pause();

  const geo::Rect site{{0, -50}, {1200, 50}};
  auto f1 = server.submit(site, 0);
  auto f2 = server.submit(site, 0);
  failpoint::arm("server.snapshot", failpoint::Action::kError,
                 failpoint::Trigger::once());
  server.resume();

  EXPECT_THROW(f1.get(), std::runtime_error);
  EXPECT_THROW(f2.get(), std::runtime_error);
  failpoint::disarm("server.snapshot");

  // The stats invariant this PR fixes: a batch dying at snapshot
  // acquisition must look like completed-and-failed — with latencies in
  // the histogram — not like silent success.
  const auto stats = server.stats();
  EXPECT_EQ(stats.submitted, 2u);
  EXPECT_EQ(stats.completed, 2u);
  EXPECT_EQ(stats.failed, 2u);
  EXPECT_EQ(stats.expired, 0u);
  EXPECT_EQ(stats.reports, 0u);
  const obs::Histogram* request_us =
      service.metrics().find_histogram("viewmap_server_request_us");
  ASSERT_NE(request_us, nullptr);
  EXPECT_EQ(request_us->snapshot().count, 2u);

  // The server survives: the next request is served normally.
  auto f3 = server.submit(site, 0);
  EXPECT_EQ(f3.get().size(), 1u);
  EXPECT_EQ(server.stats().failed, 2u);
}

TEST(InvestigationServer, SubmitAfterStopIsRejected) {
  ConvoyWorld world;
  ViewMapService service(small_cfg());
  service.register_trusted(world.record_of(0).profile);
  auto& server = service.start_server();
  server.stop();
  auto fut = server.submit({{0, -50}, {1200, 50}}, 0);
  EXPECT_FALSE(fut.valid());
  EXPECT_EQ(server.stats().rejected, 1u);
}

TEST(InvestigationServer, StopDrainsQueuedRequests) {
  ConvoyWorld world;
  ViewMapService service(small_cfg());
  service.register_trusted(world.record_of(0).profile);
  ServerConfig scfg;
  scfg.workers = 2;
  auto& server = service.start_server(scfg);
  server.pause();
  const geo::Rect site{{0, -50}, {1200, 50}};
  std::vector<std::future<InvestigationServer::Reports>> futures;
  for (int i = 0; i < 6; ++i) futures.push_back(server.submit(site, 0));
  server.stop();  // overrides pause, serves everything already queued
  for (auto& fut : futures) EXPECT_EQ(fut.get().size(), 1u);
  EXPECT_EQ(server.stats().completed, 6u);
}

TEST(InvestigationServer, ConcurrentWithIngestAndEvictionStress) {
  // The tentpole TSan scenario: an N-worker server sustains concurrent
  // investigations (solicitations racing onto the NoticeBoard) while one
  // live ingest loop keeps committing anonymous uploads and the trusted
  // clock walks forward until retention evicts the oldest investigated
  // minutes out from under the workers. Every accepted request must
  // resolve; reports built from pinned snapshots stay valid throughout.
  Rng rng(21);
  ServiceConfig cfg;
  cfg.rsa_bits = 1024;
  cfg.index.retention.window_sec = 3 * kUnitTimeSec;
  cfg.ingest.min_parallel_batch = 4;
  ViewMapService service(cfg);

  // Trust seeds for minutes 0–5, each crossing the investigation site.
  Rng trng(22);
  for (int m = 0; m < 6; ++m)
    ASSERT_TRUE(service.register_trusted(
        attack::make_fake_profile(m * kUnitTimeSec, {0.0, 0.0}, {300.0, 0.0}, trng)));
  service.reset_clock(0);  // registering minute 5 advanced the clock; rewind
  const geo::Rect site{{-400.0, -400.0}, {700.0, 400.0}};

  ServerConfig scfg;
  scfg.workers = 3;
  scfg.queue_capacity = 8;  // small: backpressure engages under the race
  scfg.batch_max = 2;
  auto& server = service.start_server(scfg);

  std::atomic<bool> done{false};
  std::atomic<std::size_t> resolved{0};
  std::atomic<std::size_t> reports_seen{0};
  std::vector<std::thread> submitters;
  for (int s = 0; s < 2; ++s)
    submitters.emplace_back([&, s] {
      Rng srng(100 + s);
      while (!done.load()) {
        const TimeSec t = kUnitTimeSec * static_cast<TimeSec>(srng.index(6));
        auto fut = (srng.index(4) == 0)
                       ? server.submit_period(site, t, t + 2 * kUnitTimeSec)
                       : server.submit(site, t);
        if (!fut.valid()) continue;  // raced a full queue after stop? only stop rejects
        const auto reports = fut.get();
        resolved.fetch_add(1);
        reports_seen.fetch_add(reports.size());
        for (const auto& report : reports) {
          // A pinned snapshot behind every report: members stay readable
          // even after their shard is evicted from the live timeline.
          EXPECT_GE(report.viewmap.size(), 1u);
          for (std::size_t i = 0; i < report.viewmap.size(); ++i)
            EXPECT_EQ(report.viewmap.member(i).unit_time(), report.viewmap.unit_time());
        }
      }
    });

  // The live ingest loop: anonymous uploads for a sliding window of
  // minutes while the trusted clock advances, so retention (run per
  // ingest batch) evicts minutes 0–2 beneath the investigators (the walk
  // is capped so minutes 3–5 keep their seeds and investigations keep
  // producing reports). The loop runs until the submitters have resolved
  // a healthy number of requests — on a 1-core host they only make
  // progress when this thread cedes the CPU.
  Rng urng(23);
  std::size_t rounds = 0;
  while (rounds < 25 || (resolved.load() < 20 && rounds < 5000)) {
    const TimeSec base = kUnitTimeSec * static_cast<TimeSec>(rounds % 5);
    for (int i = 0; i < 6; ++i) {
      const geo::Vec2 a{urng.uniform(-350.0, 650.0), urng.uniform(-350.0, 350.0)};
      const geo::Vec2 b{a.x + 200.0, a.y};
      service.upload_channel().submit(
          attack::make_fake_profile(base, a, b, urng).serialize());
    }
    (void)service.ingest_uploads();
    if (rounds >= 15)  // walk minutes 0–2 out of the retention window
      service.advance_clock(
          kUnitTimeSec * std::min<TimeSec>(static_cast<TimeSec>(rounds) - 11, 6));
    ++rounds;
    std::this_thread::yield();
  }
  done.store(true);
  for (auto& t : submitters) t.join();
  service.stop_server();

  EXPECT_GE(resolved.load(), 20u);
  EXPECT_GT(reports_seen.load(), 0u);
  // Retention really did evict investigated minutes from the live view…
  EXPECT_TRUE(service.database().snapshot().trusted_at(0).empty());
  // …while later seeded minutes survived the capped clock walk.
  EXPECT_FALSE(service.database().snapshot().trusted_at(5 * kUnitTimeSec).empty());
}

TEST(InvestigationServer, ParallelViewmapBuildRacesIngestAndEviction) {
  // The grid-accelerated builder shards one viewmap's candidate-pair
  // stream across build_threads (src/system/viewmap_graph.cpp). Here
  // every build crosses the parallel cutoff — a dense minute of ~160
  // members — so server workers spawn in-build pools that read pinned
  // shard profiles while a live ingest loop commits uploads and the
  // trusted clock walks an older investigated minute out of retention.
  // TSan (CI runs this suite under it) checks the per-thread edge
  // buffers and the merge; the assertions check CSR invariants.
  Rng rng(31);
  ServiceConfig cfg;
  cfg.rsa_bits = 1024;
  cfg.viewmap.build_threads = 3;
  cfg.index.retention.window_sec = 3 * kUnitTimeSec;
  cfg.ingest.min_parallel_batch = 4;
  ViewMapService service(cfg);

  Rng trng(32);
  for (int m = 0; m < 2; ++m)
    ASSERT_TRUE(service.register_trusted(attack::make_fake_profile(
        m * kUnitTimeSec, {0.0, 0.0}, {300.0, 0.0}, trng)));
  service.reset_clock(0);
  // Dense seeded minutes: enough members that candidate generation
  // always engages the thread pool.
  for (int m = 0; m < 2; ++m)
    for (int i = 0; i < 160; ++i) {
      const geo::Vec2 a{rng.uniform(-300.0, 300.0), rng.uniform(-300.0, 300.0)};
      service.upload_channel().submit(
          attack::make_fake_profile(m * kUnitTimeSec, a, {a.x + 150.0, a.y}, rng)
              .serialize());
    }
  ASSERT_GT(service.ingest_uploads(), 0u);

  ServerConfig scfg;
  scfg.workers = 2;
  scfg.queue_capacity = 16;
  auto& server = service.start_server(scfg);
  const geo::Rect site{{-350.0, -350.0}, {350.0, 350.0}};

  // A FIXED number of writer rounds (the submit loop below runs until
  // they have all raced): unbounded pumping would grow the investigated
  // minute — and every build over it — without limit on a slow host.
  std::atomic<bool> writer_done{false};
  std::thread writer([&] {
    // Commits minute-1 uploads while the clock walk evicts minute 0
    // beneath the investigators (cutoff reaches 60 s).
    Rng wrng(33);
    for (std::size_t round = 1; round <= 40; ++round) {
      for (int i = 0; i < 8; ++i) {
        const geo::Vec2 a{wrng.uniform(-300.0, 300.0), wrng.uniform(-300.0, 300.0)};
        service.upload_channel().submit(
            attack::make_fake_profile(kUnitTimeSec, a, {a.x + 150.0, a.y}, wrng)
                .serialize());
      }
      (void)service.ingest_uploads();
      service.advance_clock(std::min<TimeSec>(static_cast<TimeSec>(round) * 30,
                                              4 * kUnitTimeSec));
      std::this_thread::yield();
    }
    writer_done.store(true);
  });

  std::size_t reports = 0;
  for (int q = 0; q < 2000 && (q < 12 || !writer_done.load()); ++q) {
    auto fut = server.submit(site, kUnitTimeSec);
    ASSERT_TRUE(fut.valid());
    for (const auto& report : fut.get()) {
      ++reports;
      EXPECT_GE(report.viewmap.size(), 160u);
      // CSR invariants: ascending unique neighbor lists, symmetric edges.
      const auto& g = report.viewmap.graph();
      for (std::size_t i = 0; i < g.size(); ++i) {
        const auto nbrs = g.neighbors(i);
        EXPECT_TRUE(std::is_sorted(nbrs.begin(), nbrs.end()));
        EXPECT_EQ(std::adjacent_find(nbrs.begin(), nbrs.end()), nbrs.end());
        for (const std::uint32_t j : nbrs) {
          const auto back = g.neighbors(j);
          EXPECT_TRUE(std::binary_search(back.begin(), back.end(),
                                         static_cast<std::uint32_t>(i)));
        }
      }
    }
  }
  writer.join();
  service.stop_server();
  EXPECT_GT(reports, 0u);

  // Deterministic tail: one more ingest at the final clock must evict
  // the investigated minute 0 (the reports above keep their pins).
  service.advance_clock(4 * kUnitTimeSec);
  service.upload_channel().submit(
      attack::make_fake_profile(kUnitTimeSec, {0.0, 0.0}, {150.0, 0.0}, rng)
          .serialize());
  (void)service.ingest_uploads();
  EXPECT_TRUE(service.database().snapshot().trusted_at(0).empty());
}

}  // namespace
}  // namespace viewmap::sys
