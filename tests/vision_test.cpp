// Unit tests: synthetic scenes, plate localization, blur, pipeline timing.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "vision/frame.h"
#include "vision/pipeline.h"
#include "vision/plate_blur.h"
#include "vision/threaded_pipeline.h"

namespace viewmap::vision {
namespace {

TEST(PixelRect, IouBasics) {
  const PixelRect a{0, 0, 10, 10};
  EXPECT_DOUBLE_EQ(a.iou(a), 1.0);
  const PixelRect b{10, 10, 10, 10};
  EXPECT_DOUBLE_EQ(a.iou(b), 0.0);
  const PixelRect c{5, 0, 10, 10};
  EXPECT_NEAR(a.iou(c), 50.0 / 150.0, 1e-12);
}

TEST(Frame, LuminanceAndBounds) {
  Frame f(4, 4);
  EXPECT_EQ(f.width(), 4);
  auto* p = f.pixel(1, 1);
  p[0] = 255;
  p[1] = 255;
  p[2] = 255;
  EXPECT_NEAR(f.luminance(1, 1), 255.0, 1e-9);
  EXPECT_NEAR(f.luminance(0, 0), 0.0, 1e-9);
  EXPECT_THROW(Frame(0, 4), std::invalid_argument);
}

TEST(Scene, GroundTruthPlatesHavePlateAspect) {
  Rng rng(1);
  SceneConfig cfg;
  const auto scene = make_scene(cfg, rng);
  ASSERT_EQ(scene.plates.size(), static_cast<std::size_t>(cfg.plate_count));
  for (const auto& plate : scene.plates) {
    EXPECT_GE(plate.aspect(), 2.0);
    EXPECT_LE(plate.aspect(), 6.5);
    EXPECT_GT(plate.area(), 0);
  }
}

TEST(Localizer, FindsMostPlates) {
  Rng rng(2);
  SceneConfig cfg;
  cfg.plate_count = 2;
  const PlateLocalizer localizer;
  DetectionQuality total;
  for (int i = 0; i < 20; ++i) {
    const auto scene = make_scene(cfg, rng);
    const auto detections = localizer.locate(scene.frame);
    const auto q = evaluate_detections(detections, scene.plates);
    total.truths += q.truths;
    total.covered += q.covered;
    total.detections += q.detections;
  }
  // ALPR localization on clean synthetic scenes should rarely miss.
  EXPECT_GT(total.recall(), 0.85);
}

TEST(Blur, DestroysPlateDetail) {
  Rng rng(3);
  SceneConfig cfg;
  cfg.plate_count = 1;
  auto scene = make_scene(cfg, rng);
  const PixelRect plate = scene.plates[0];

  // High-frequency glyph energy before vs after blur.
  auto gradient_energy = [&](const Frame& f) {
    double e = 0;
    for (int y = plate.y; y < plate.y + plate.h; ++y)
      for (int x = plate.x; x + 1 < plate.x + plate.w; ++x)
        e += std::abs(f.luminance(x + 1, y) - f.luminance(x, y));
    return e;
  };
  const double before = gradient_energy(scene.frame);
  blur_region(scene.frame, plate);  // adaptive kernel
  const double after = gradient_energy(scene.frame);
  EXPECT_LT(after, before * 0.35);
}

TEST(Blur, DoesNotTouchOutsideRegion) {
  Rng rng(4);
  SceneConfig cfg;
  auto scene = make_scene(cfg, rng);
  const Frame original = scene.frame;
  const PixelRect region{100, 100, 50, 20};
  blur_region(scene.frame, region, 3);
  // A pixel far from the region is untouched.
  EXPECT_EQ(scene.frame.pixel(10, 10)[0], original.pixel(10, 10)[0]);
  EXPECT_EQ(scene.frame.pixel(400, 300)[1], original.pixel(400, 300)[1]);
}

TEST(Blur, ClipsRegionsAtFrameEdge) {
  Frame f(32, 32);
  blur_region(f, {-5, -5, 20, 20}, 2);         // spills over top-left
  blur_region(f, {25, 25, 100, 100}, 2);       // spills over bottom-right
  blur_region(f, {40, 40, 10, 10}, 2);         // fully outside: no-op
  SUCCEED();  // no crash, no UB (ASAN-clean under sanitizer builds)
}

TEST(Pipeline, ProcessesAndTimesAllStages) {
  Rng rng(5);
  SceneConfig cfg;
  cfg.width = 320;
  cfg.height = 240;
  const auto scene = make_scene(cfg, rng);
  BlurPipeline pipeline;
  StageTimings t;
  (void)pipeline.process(scene.frame, t);
  EXPECT_GT(t.blur_ms, 0.0);
  EXPECT_GT(t.io_ms(), 0.0);
  EXPECT_GT(t.fps(), 0.0);
  ASSERT_NE(pipeline.last_output(), nullptr);
  EXPECT_EQ(pipeline.last_output()->width(), 320);
}

TEST(Pipeline, MeasureAveragesOverFrames) {
  SceneConfig cfg;
  cfg.width = 320;
  cfg.height = 240;
  const auto t = measure_pipeline(3, cfg, 99);
  EXPECT_GT(t.total_ms(), 0.0);
  EXPECT_NEAR(t.total_ms(), t.capture_ms + t.blur_ms + t.write_ms, 1e-9);
}

TEST(ThreadedPipeline, ProcessesEveryFrameExactlyOnce) {
  Rng rng(6);
  SceneConfig cfg;
  cfg.width = 320;
  cfg.height = 240;
  ThreadedBlurPipeline pipeline;
  for (int i = 0; i < 12; ++i) {
    auto scene = make_scene(cfg, rng);
    pipeline.submit(scene.frame);
  }
  EXPECT_EQ(pipeline.drain(), 12u);
  // Submitting after a drain keeps working.
  auto scene = make_scene(cfg, rng);
  pipeline.submit(scene.frame);
  EXPECT_EQ(pipeline.drain(), 13u);
}

TEST(ThreadedPipeline, DestructorJoinsCleanlyWithPendingWork) {
  Rng rng(7);
  SceneConfig cfg;
  cfg.width = 320;
  cfg.height = 240;
  {
    ThreadedBlurPipeline pipeline;
    for (int i = 0; i < 3; ++i) {
      auto scene = make_scene(cfg, rng);
      pipeline.submit(scene.frame);
    }
    // No drain: the destructor must finish or discard safely, not hang.
  }
  SUCCEED();
}

TEST(ThreadedPipeline, ComparisonReportsBothRates) {
  SceneConfig cfg;
  cfg.width = 320;
  cfg.height = 240;
  const auto cmp = compare_pipelines(6, cfg, 99);
  EXPECT_GT(cmp.sequential_fps, 0.0);
  EXPECT_GT(cmp.threaded_fps, 0.0);
}

}  // namespace
}  // namespace viewmap::vision
