// Property-based and parameterized sweeps over protocol invariants.
//
// TEST_P suites sweep seeds and parameter grids; each assertion is an
// invariant that must hold for *every* point, not a single example.
#include <gtest/gtest.h>

#include "bloom/bloom_filter.h"
#include "common/rng.h"
#include "crypto/hash_chain.h"
#include "system/trustrank.h"
#include "system/viewmap_graph.h"
#include "vp/guard.h"
#include "vp/video.h"
#include "vp/vp_builder.h"

namespace viewmap {
namespace {

// ── Hash chain: replayability across chunk sizes and seeds ──────────────

class HashChainProperty : public ::testing::TestWithParam<std::tuple<std::uint64_t, int>> {};

TEST_P(HashChainProperty, ChainReplaysFromVideoBytes) {
  const auto [seed, bps] = GetParam();
  Rng rng(seed);
  vp::VpBuilder builder(0, rng);
  vp::SyntheticVideoSource source(seed, static_cast<std::uint64_t>(bps));
  std::vector<std::uint8_t> chunk;
  for (int s = 0; s < kDigestsPerProfile; ++s) {
    source.generate_chunk(0, s, chunk);
    (void)builder.tick({s * 3.0, 0}, chunk);
  }
  auto gen = builder.finish();
  const vp::RecordedVideo video = source.record_minute(0);

  // System-side replay must agree for every (seed, chunk size).
  std::vector<crypto::ChainStepMeta> metas;
  std::vector<Hash16> expected;
  std::vector<std::uint64_t> offsets{0};
  for (const auto& vd : gen.profile.digests()) {
    metas.push_back(vd.chain_meta());
    expected.push_back(vd.hash);
    offsets.push_back(vd.file_size);
  }
  EXPECT_TRUE(crypto::verify_chain(gen.profile.vp_id(), metas, expected, video.bytes,
                                   offsets));

  // Any single flipped bit breaks it.
  auto tampered = video.bytes;
  tampered[tampered.size() / 2] ^= 0x10;
  EXPECT_FALSE(crypto::verify_chain(gen.profile.vp_id(), metas, expected, tampered,
                                    offsets));
}

INSTANTIATE_TEST_SUITE_P(
    SeedAndChunkSweep, HashChainProperty,
    ::testing::Combine(::testing::Values(1ull, 17ull, 999ull),
                       ::testing::Values(16, 128, 1024)));

// ── Bloom filter: no false negatives, ever ───────────────────────────────

class BloomProperty : public ::testing::TestWithParam<std::tuple<std::size_t, int>> {};

TEST_P(BloomProperty, NoFalseNegatives) {
  const auto [bits, k] = GetParam();
  bloom::BloomFilter f(bits, k);
  Rng rng(static_cast<std::uint64_t>(bits) * 31 + static_cast<std::uint64_t>(k));
  std::vector<std::vector<std::uint8_t>> inserted;
  for (int i = 0; i < 150; ++i) {
    std::vector<std::uint8_t> e(72);
    rng.fill_bytes(e);
    f.insert(e);
    inserted.push_back(std::move(e));
  }
  for (const auto& e : inserted) EXPECT_TRUE(f.maybe_contains(e));
}

TEST_P(BloomProperty, EmpiricalFalsePositiveWithinTheory) {
  const auto [bits, k] = GetParam();
  bloom::BloomFilter f(bits, k);
  Rng rng(static_cast<std::uint64_t>(bits) * 77 + static_cast<std::uint64_t>(k));
  const std::size_t n = 100;
  std::vector<std::uint8_t> e(72);
  for (std::size_t i = 0; i < n; ++i) {
    rng.fill_bytes(e);
    f.insert(e);
  }
  int fp = 0;
  const int probes = 5000;
  for (int i = 0; i < probes; ++i) {
    rng.fill_bytes(e);
    fp += f.maybe_contains(e);
  }
  const double theory = bloom::false_positive_rate(bits, n, k);
  EXPECT_LE(static_cast<double>(fp) / probes, theory * 2.0 + 0.01);
}

INSTANTIATE_TEST_SUITE_P(
    GridSweep, BloomProperty,
    ::testing::Combine(::testing::Values(1024u, 2048u, 4096u),
                       ::testing::Values(1, 3, 5)));

// ── TrustRank: stochastic sanity on random graphs ───────────────────────

class TrustRankProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TrustRankProperty, ScoresAreAProbabilityDistributionOverReachableGraphs) {
  Rng rng(GetParam());
  const std::size_t n = 60;
  std::vector<std::vector<std::uint32_t>> adj(n);
  // Random connected-ish graph: ring + random chords.
  for (std::uint32_t i = 0; i < n; ++i) {
    const auto j = static_cast<std::uint32_t>((i + 1) % n);
    adj[i].push_back(j);
    adj[j].push_back(i);
  }
  for (int c = 0; c < 40; ++c) {
    const auto a = static_cast<std::uint32_t>(rng.index(n));
    const auto b = static_cast<std::uint32_t>(rng.index(n));
    if (a == b) continue;
    adj[a].push_back(b);
    adj[b].push_back(a);
  }
  const std::vector<std::size_t> seeds{rng.index(n)};
  const auto result = sys::trust_rank(adj, seeds, {});
  EXPECT_TRUE(result.converged);
  double total = 0;
  for (double s : result.scores) {
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 1.0 + 1e-9);
    total += s;
  }
  // Ring ⇒ everything reachable ⇒ mass conserved.
  EXPECT_NEAR(total, 1.0, 1e-6);
  // Seed holds the maximum score (it receives the (1-δ) reinjection).
  for (double s : result.scores) EXPECT_LE(s, result.scores[seeds[0]] + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TrustRankProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// ── Guard volume & coverage: paper formulas as invariants ───────────────

class GuardFormulaProperty
    : public ::testing::TestWithParam<std::tuple<double, int>> {};

TEST_P(GuardFormulaProperty, CoverageImprovesWithTimeAndAlpha) {
  const auto [alpha, m] = GetParam();
  double prev = 1.0;
  for (int t = 1; t <= 10; ++t) {
    const double p = vp::uncovered_probability(alpha, m, t);
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
    EXPECT_LE(p, prev + 1e-12);  // monotone non-increasing in t
    prev = p;
  }
  // Volume: 1 + ⌈αm⌉ VPs per vehicle-minute, and at least one guard for
  // any non-zero neighborhood.
  EXPECT_GE(vp::guard_count(alpha, static_cast<std::size_t>(m)), 1u);
}

INSTANTIATE_TEST_SUITE_P(
    AlphaNeighborGrid, GuardFormulaProperty,
    ::testing::Combine(::testing::Values(0.1, 0.3, 0.5),
                       ::testing::Values(5, 20, 60, 150)));

// ── VD wire format: round-trip under random field values ────────────────

class VdRoundTripProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(VdRoundTripProperty, SerializeParseIdentity) {
  Rng rng(GetParam());
  dsrc::ViewDigest vd;
  vd.time = static_cast<TimeSec>(rng.uniform_int(0, 1'000'000'000));
  vd.loc_x = static_cast<float>(rng.uniform(-1e5, 1e5));
  vd.loc_y = static_cast<float>(rng.uniform(-1e5, 1e5));
  vd.file_size = rng.next_u64() >> 8;
  vd.initial_x = static_cast<float>(rng.uniform(-1e5, 1e5));
  vd.initial_y = static_cast<float>(rng.uniform(-1e5, 1e5));
  rng.fill_bytes(vd.vp_id.bytes);
  rng.fill_bytes(vd.hash.bytes);
  vd.second = static_cast<std::uint16_t>(rng.uniform_int(1, 60));

  const auto frame = vd.serialize();
  ASSERT_EQ(frame.size(), 72u);
  EXPECT_EQ(dsrc::ViewDigest::parse(frame), vd);
}

INSTANTIATE_TEST_SUITE_P(Seeds, VdRoundTripProperty,
                         ::testing::Values(11, 12, 13, 14, 15, 16));

// ── Viewmap edges: symmetry + proximity precondition on random fleets ───

class ViewlinkProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ViewlinkProperty, EdgePredicateIsSymmetricAndLocal) {
  Rng rng(GetParam());
  // Build 6 profiles at random offsets; exchange VDs between all pairs
  // within 200 m so some links exist.
  std::vector<vp::VpBuilder> builders;
  std::vector<geo::Vec2> bases;
  for (int i = 0; i < 6; ++i) {
    builders.emplace_back(0, rng);
    bases.push_back({rng.uniform(0, 600), rng.uniform(0, 600)});
  }
  std::vector<std::uint8_t> chunk(16);
  for (int s = 0; s < kDigestsPerProfile; ++s) {
    std::vector<dsrc::ViewDigest> vds;
    for (int i = 0; i < 6; ++i) {
      Rng chunk_rng(static_cast<std::uint64_t>(i) * 1000 + static_cast<std::uint64_t>(s));
      chunk_rng.fill_bytes(chunk);
      vds.push_back(builders[static_cast<std::size_t>(i)].tick(
          bases[static_cast<std::size_t>(i)] + geo::Vec2{s * 2.0, 0}, chunk));
    }
    for (int i = 0; i < 6; ++i)
      for (int j = 0; j < 6; ++j) {
        if (i == j) continue;
        if (geo::distance(bases[static_cast<std::size_t>(i)],
                          bases[static_cast<std::size_t>(j)]) < 200)
          builders[static_cast<std::size_t>(i)].accept_neighbor(
              vds[static_cast<std::size_t>(j)],
              bases[static_cast<std::size_t>(i)] + geo::Vec2{s * 2.0, 0});
      }
  }
  std::vector<vp::ViewProfile> profiles;
  for (auto& b : builders) profiles.push_back(b.finish().profile);

  const sys::ViewmapBuilder vb;
  for (std::size_t i = 0; i < profiles.size(); ++i) {
    for (std::size_t j = 0; j < profiles.size(); ++j) {
      if (i == j) continue;
      // Symmetry.
      EXPECT_EQ(vb.viewlinked(profiles[i], profiles[j]),
                vb.viewlinked(profiles[j], profiles[i]));
      // Locality: no edge without proximity.
      if (!profiles[i].ever_within(profiles[j], 400.0)) {
        EXPECT_FALSE(vb.viewlinked(profiles[i], profiles[j]));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ViewlinkProperty, ::testing::Values(21, 22, 23, 24));

// ── Storage constants: §6.1 accounting holds under any digest content ───

TEST(StorageProperty, VpOverheadBelowOneHundredthOfVideo) {
  // §6.1: VP storage < 0.01% of a 50 MB video.
  const double ratio = static_cast<double>(vp::kVpStorageBytes) / (50.0 * 1024 * 1024);
  EXPECT_LT(ratio, 0.0001);
}

}  // namespace
}  // namespace viewmap
