// Guard-VP indistinguishability (paper §5.1.2: "In an effort to make
// guard VPs indistinguishable from actual VPs…").
//
// The privacy argument collapses if the system can classify uploads as
// guard vs. actual. These tests check the observable features available
// to the system — structural validity, speed statistics, hash-field
// byte distributions, Bloom fill — and assert that guards fall inside the
// actual-VP feature envelope.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/stats.h"
#include "sim/simulator.h"
#include "system/viewmap_graph.h"
#include "system/vp_database.h"

namespace viewmap {
namespace {

struct Features {
  double mean_speed = 0.0;       ///< m/s between consecutive VDs
  double speed_stddev = 0.0;
  double hash_byte_mean = 0.0;   ///< ≈127.5 for uniformly random bytes
  double bloom_fill = 0.0;
};

Features extract(const vp::ViewProfile& profile) {
  Features f;
  RunningStats speed;
  RunningStats hash_bytes;
  const auto digests = profile.digests();
  for (std::size_t i = 0; i < digests.size(); ++i) {
    if (i > 0) {
      const double dx = digests[i].loc_x - digests[i - 1].loc_x;
      const double dy = digests[i].loc_y - digests[i - 1].loc_y;
      speed.add(std::hypot(dx, dy));
    }
    for (auto b : digests[i].hash.bytes) hash_bytes.add(b);
  }
  f.mean_speed = speed.mean();
  f.speed_stddev = speed.stddev();
  f.hash_byte_mean = hash_bytes.mean();
  f.bloom_fill = profile.neighbor_bloom().fill_ratio();
  return f;
}

struct IndistinguishabilityFixture : ::testing::Test {
  static sim::SimResult& world() {
    static sim::SimResult result = [] {
      Rng city_rng(61);
      road::GridCityConfig ccfg;
      ccfg.extent_m = 1500;
      ccfg.block_m = 250;
      ccfg.building_fill = 0.4;
      auto city = road::make_grid_city(ccfg, city_rng);
      sim::SimConfig cfg;
      cfg.seed = 62;
      cfg.vehicle_count = 25;
      cfg.minutes = 3;
      cfg.video_bytes_per_second = 16;
      sim::TrafficSimulator sim(std::move(city), cfg);
      return sim.run();
    }();
    return result;
  }
};

TEST_F(IndistinguishabilityFixture, GuardsPassEveryStructuralCheckActualsPass) {
  const vp::VpUploadPolicy policy;
  std::size_t guards = 0;
  for (const auto& rec : world().profiles) {
    EXPECT_TRUE(policy.well_formed(rec.profile));
    guards += rec.guard;
  }
  ASSERT_GT(guards, 0u);
}

TEST_F(IndistinguishabilityFixture, GuardSpeedsInsideActualEnvelope) {
  RunningStats actual_speed;
  for (const auto& rec : world().profiles)
    if (!rec.guard) actual_speed.add(extract(rec.profile).mean_speed);

  // Guards must not be outliers: their mean per-second displacement lies
  // within the span actual traffic produces (plus slack for routes that
  // cut across the grid).
  for (const auto& rec : world().profiles) {
    if (!rec.guard) continue;
    const double v = extract(rec.profile).mean_speed;
    EXPECT_LE(v, actual_speed.max() * 1.5 + 5.0);
    EXPECT_GE(v, 0.0);
  }
}

TEST_F(IndistinguishabilityFixture, HashFieldsLookUniformInBothPopulations) {
  // Actual hashes are SHA-256 truncations; guard hashes are RNG bytes.
  // Both must look uniform (mean byte ≈ 127.5) — a skew in either would
  // be a classifier feature.
  for (const auto& rec : world().profiles) {
    const double mean = extract(rec.profile).hash_byte_mean;
    EXPECT_NEAR(mean, 127.5, 8.0) << (rec.guard ? "guard" : "actual");
  }
}

TEST_F(IndistinguishabilityFixture, BloomFillOverlapsBetweenPopulations) {
  // Every guard is mutually linked with its creator's actual VP, so both
  // populations carry non-empty, modest Bloom fills. Disjoint fill ranges
  // would distinguish them; overlapping ranges are required.
  double actual_min = 1.0, actual_max = 0.0;
  double guard_min = 1.0, guard_max = 0.0;
  for (const auto& rec : world().profiles) {
    const double fill = extract(rec.profile).bloom_fill;
    if (rec.guard) {
      guard_min = std::min(guard_min, fill);
      guard_max = std::max(guard_max, fill);
    } else {
      actual_min = std::min(actual_min, fill);
      actual_max = std::max(actual_max, fill);
    }
    EXPECT_GT(fill, 0.0);  // nobody uploads an empty neighborhood here
  }
  EXPECT_LE(actual_min, guard_max);
  EXPECT_LE(guard_min, actual_max);
}

TEST_F(IndistinguishabilityFixture, GuardsAreViewlinkedToTheirCreators) {
  // From the system's perspective a guard arrives as a normally-linked
  // member of the mesh, not as an isolated oddity.
  sys::VpDatabase db;
  for (const auto& rec : world().profiles) db.upload(rec.profile);
  const sys::ViewmapBuilder builder;
  for (const auto& rec : world().profiles) {
    if (!rec.guard) continue;
    // Find the creator's actual VP for the same minute.
    for (const auto& other : world().profiles) {
      if (other.guard || other.creator != rec.creator ||
          other.profile.unit_time() != rec.profile.unit_time())
        continue;
      EXPECT_TRUE(builder.viewlinked(rec.profile, other.profile));
    }
  }
}

}  // namespace
}  // namespace viewmap
