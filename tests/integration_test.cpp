// Integration tests: the full ViewMap pipeline over simulated city traffic
// — vehicles record/exchange/compile VPs with guards, upload anonymously,
// the system builds viewmaps, verifies, solicits, validates videos, and
// pays untraceable rewards. Privacy and security properties are asserted
// on the same dataset.
#include <gtest/gtest.h>

#include "attack/fake_vp.h"
#include "reward/client.h"
#include "sim/simulator.h"
#include "system/service.h"
#include "track/privacy_eval.h"

namespace viewmap {
namespace {

struct CityWorld : ::testing::Test {
  static constexpr int kVehicles = 20;
  static constexpr int kMinutes = 3;

  static sim::SimResult& simulation() {
    static sim::SimResult result = [] {
      Rng city_rng(101);
      road::GridCityConfig ccfg;
      ccfg.extent_m = 1200;
      ccfg.block_m = 200;
      ccfg.building_fill = 0.5;
      auto city = road::make_grid_city(ccfg, city_rng);

      sim::SimConfig cfg;
      cfg.seed = 103;
      cfg.vehicle_count = kVehicles;
      cfg.minutes = kMinutes;
      cfg.video_bytes_per_second = 24;
      cfg.keep_videos = true;
      sim::TrafficSimulator sim(std::move(city), cfg);
      return sim.run();
    }();
    return result;
  }
};

TEST_F(CityWorld, AnonymousUploadPathFillsDatabase) {
  const auto& result = simulation();
  sys::ServiceConfig cfg;
  cfg.rsa_bits = 1024;
  sys::ViewMapService service(cfg);

  // Vehicle 0 doubles as the police car: its actual VPs become trusted.
  std::size_t submitted = 0;
  for (const auto& rec : result.profiles) {
    if (!rec.guard && rec.creator == 0) {
      EXPECT_TRUE(service.register_trusted(rec.profile));
    } else {
      service.upload_channel().submit(rec.profile.serialize());
      ++submitted;
    }
  }
  EXPECT_EQ(service.ingest_uploads(), submitted);
  EXPECT_EQ(service.database().size(), result.profiles.size());
  EXPECT_EQ(service.database().trusted_count(), static_cast<std::size_t>(kMinutes));
}

TEST_F(CityWorld, InvestigationFindsWitnessesAndValidatesVideo) {
  const auto& result = simulation();
  sys::ServiceConfig cfg;
  cfg.rsa_bits = 1024;
  sys::ViewMapService service(cfg);

  for (const auto& rec : result.profiles) {
    if (!rec.guard && rec.creator == 0)
      service.register_trusted(rec.profile);
    else
      service.upload_channel().submit(rec.profile.serialize());
  }
  service.ingest_uploads();

  // Incident at minute 1 around vehicle 3's position then.
  const sim::OwnedVp* witness = nullptr;
  for (const auto& o : result.owned)
    if (o.vehicle == 3 && o.unit_time == 60) witness = &o;
  ASSERT_NE(witness, nullptr);
  const auto witness_profile = service.database().find(witness->vp_id);
  ASSERT_NE(witness_profile, nullptr);
  const geo::Vec2 c = witness_profile->location_at(30);
  const geo::Rect site{{c.x - 150, c.y - 150}, {c.x + 150, c.y + 150}};

  const auto report = service.investigate(site, 60);
  EXPECT_GT(report.viewmap.size(), 0u);
  EXPECT_FALSE(report.verification.site_members.empty());

  // The witness itself must be among the solicited VPs (it is legitimate
  // and inside the site).
  const auto pending = service.pending_video_requests({{witness->vp_id}});
  ASSERT_EQ(pending.size(), 1u);

  // Upload the matching recorded video; the cascaded hash must check out.
  const vp::RecordedVideo* video = nullptr;
  for (std::size_t i = 0; i < result.owned.size(); ++i)
    if (result.owned[i].vehicle == 3 && result.owned[i].unit_time == 60)
      video = &result.videos[i];
  ASSERT_NE(video, nullptr);
  EXPECT_TRUE(service.submit_video(witness->vp_id, *video));

  // Review + reward round trip.
  service.conclude_review(witness->vp_id, true, 2);
  const auto n = service.begin_reward_claim(witness->vp_id, witness->secret);
  ASSERT_TRUE(n.has_value());
  reward::RewardClient client(service.cash_public_key(), 7);
  const auto sigs = service.sign_reward_batch(witness->vp_id,
                                              client.prepare(static_cast<std::size_t>(*n)));
  ASSERT_TRUE(sigs.has_value());
  for (const auto& token : client.unblind_batch(*sigs))
    EXPECT_EQ(service.bank().redeem(token), reward::RedeemOutcome::kAccepted);
}

TEST_F(CityWorld, GuardVpsNeverMatchSolicitations) {
  // Guard VPs were deleted on the vehicle after upload (§5.1.2): even if
  // the system solicits one, no vehicle holds a matching video or secret.
  const auto& result = simulation();
  std::unordered_set<std::string> owned_ids;
  for (const auto& o : result.owned)
    owned_ids.insert(std::string(o.vp_id.bytes.begin(), o.vp_id.bytes.end()));
  for (const auto& rec : result.profiles) {
    const std::string key(rec.profile.vp_id().bytes.begin(),
                          rec.profile.vp_id().bytes.end());
    EXPECT_EQ(owned_ids.contains(key), !rec.guard);
  }
}

TEST_F(CityWorld, GuardsDegradeTrackingOnServiceDatabase) {
  const auto& result = simulation();
  const auto with_guards = track::evaluate_privacy(result, true);
  const auto without = track::evaluate_privacy(result, false);
  EXPECT_LE(with_guards.mean_success.back(), without.mean_success.back());
}

TEST_F(CityWorld, FakeChainIntoSiteIsRejectedByRealPipeline) {
  const auto& result = simulation();
  sys::ServiceConfig scfg;
  scfg.rsa_bits = 1024;
  sys::ViewMapService service(scfg);

  for (const auto& rec : result.profiles) {
    if (!rec.guard && rec.creator == 0)
      service.register_trusted(rec.profile);
    else
      service.upload_channel().submit(rec.profile.serialize());
  }

  // Attacker: a colluding pair of fake VPs claiming positions near
  // vehicle 5 at minute 0, linked to each other but to no honest VP.
  const auto* v5 = [&]() -> const vp::ViewProfile* {
    for (const auto& rec : result.profiles)
      if (!rec.guard && rec.creator == 5 && rec.profile.unit_time() == 0)
        return &rec.profile;
    return nullptr;
  }();
  ASSERT_NE(v5, nullptr);
  const geo::Vec2 c = v5->location_at(30);
  Rng rng(999);
  auto f1 = attack::make_fake_profile(0, {c.x - 40, c.y}, {c.x + 20, c.y}, rng);
  auto f2 = attack::make_fake_profile(0, {c.x - 20, c.y + 10}, {c.x + 40, c.y + 10}, rng);
  attack::forge_link(f1, f2);
  const Id16 f1_id = f1.vp_id();
  const Id16 f2_id = f2.vp_id();
  service.upload_channel().submit(f1.serialize());
  service.upload_channel().submit(f2.serialize());
  service.ingest_uploads();

  const geo::Rect site{{c.x - 150, c.y - 150}, {c.x + 150, c.y + 150}};
  const auto report = service.investigate(site, 0);

  // Both fakes claimed in-site positions; neither may be solicited.
  EXPECT_FALSE(service.board().is_posted(f1_id, sys::RequestKind::kVideo));
  EXPECT_FALSE(service.board().is_posted(f2_id, sys::RequestKind::kVideo));
  // And at least the victim's real VP is solicited.
  EXPECT_TRUE(service.board().is_posted(v5->vp_id(), sys::RequestKind::kVideo));
}

TEST_F(CityWorld, ViewmapMembershipIsHigh) {
  // Fig. 22f: only a few percent of VPs end up isolated from viewmaps.
  const auto& result = simulation();
  sys::VpDatabase db;
  const vp::ViewProfile* trusted = nullptr;
  for (const auto& rec : result.profiles) {
    if (!rec.guard && rec.creator == 0 && rec.profile.unit_time() == 0) {
      db.upload_trusted(rec.profile);
      trusted = &rec.profile;
    } else {
      db.upload(rec.profile);
    }
  }
  ASSERT_NE(trusted, nullptr);
  const sys::ViewmapBuilder builder;
  const geo::Rect everywhere{{-1e5, -1e5}, {1e5, 1e5}};
  const auto map = builder.build(db.snapshot(), everywhere, 0);
  EXPECT_GT(map.size(), 10u);
  const double isolated =
      static_cast<double>(map.isolated_from_trusted()) / static_cast<double>(map.size());
  EXPECT_LT(isolated, 0.35);  // dense city minute: most VPs join the mesh
}

}  // namespace
}  // namespace viewmap
