// Unit tests: Bloom filter and the paper's false-linkage model (§6.3.2).
#include <gtest/gtest.h>

#include "bloom/bloom_filter.h"
#include "common/rng.h"

namespace viewmap::bloom {
namespace {

std::vector<std::uint8_t> element(Rng& rng) {
  std::vector<std::uint8_t> e(72);
  rng.fill_bytes(e);
  return e;
}

TEST(BloomFilter, InsertedElementsAlwaysFound) {
  BloomFilter f(2048, 3);
  Rng rng(1);
  std::vector<std::vector<std::uint8_t>> elements;
  for (int i = 0; i < 100; ++i) {
    elements.push_back(element(rng));
    f.insert(elements.back());
  }
  for (const auto& e : elements) EXPECT_TRUE(f.maybe_contains(e));
}

TEST(BloomFilter, EmptyFilterContainsNothing) {
  BloomFilter f(2048, 3);
  Rng rng(2);
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(f.maybe_contains(element(rng)));
}

TEST(BloomFilter, FalsePositiveRateNearTheory) {
  const std::size_t m = 2048;
  const int k = 3;
  const std::size_t n = 200;
  BloomFilter f(m, k);
  Rng rng(3);
  for (std::size_t i = 0; i < n; ++i) f.insert(element(rng));

  int fp = 0;
  const int probes = 20000;
  for (int i = 0; i < probes; ++i) fp += f.maybe_contains(element(rng));
  const double empirical = static_cast<double>(fp) / probes;
  const double theory = false_positive_rate(m, n, k);
  EXPECT_NEAR(empirical, theory, 0.01);
}

TEST(BloomFilter, SerializationRoundTrip) {
  BloomFilter f(2048, 3);
  Rng rng(4);
  const auto e = element(rng);
  f.insert(e);
  const BloomFilter g = BloomFilter::from_bytes(f.data(), 3);
  EXPECT_EQ(f, g);
  EXPECT_TRUE(g.maybe_contains(e));
}

TEST(BloomFilter, SaturateSetsAllBits) {
  BloomFilter f(256, 2);
  f.saturate();
  EXPECT_EQ(f.popcount(), 256u);
  EXPECT_DOUBLE_EQ(f.fill_ratio(), 1.0);
  Rng rng(5);
  EXPECT_TRUE(f.maybe_contains(element(rng)));
}

TEST(BloomFilter, RejectsBadConfiguration) {
  EXPECT_THROW(BloomFilter(0, 3), std::invalid_argument);
  EXPECT_THROW(BloomFilter(12, 3), std::invalid_argument);  // not byte aligned
  EXPECT_THROW(BloomFilter(256, 0), std::invalid_argument);
  EXPECT_THROW(BloomFilter(256, 100), std::invalid_argument);
}

TEST(BloomMath, OptimalHashCount) {
  // k = (m/n)·ln2: 2048 bits / 500 elements ≈ 2.84 → 3.
  EXPECT_EQ(optimal_hash_count(2048, 500), 3);
  EXPECT_EQ(optimal_hash_count(2048, 2048), 1);  // clamped to ≥ 1
  EXPECT_GE(optimal_hash_count(4096, 10), 1);
}

TEST(BloomMath, FalseLinkageMatchesPaperOperatingPoint) {
  // §6.3.2: m = 2048 bits has "a false linkage rate of 0.1% with 300
  // neighbor VPs" (with the optimal k for that load).
  const int k = optimal_hash_count(2048, 300);
  const double p = false_linkage_rate(2048, 300, k);
  EXPECT_GT(p, 0.0002);
  EXPECT_LT(p, 0.005);
}

TEST(BloomMath, FalseLinkageMonotoneInNeighborsAndBits) {
  const int k = 3;
  EXPECT_LT(false_linkage_rate(2048, 50, k), false_linkage_rate(2048, 300, k));
  EXPECT_GT(false_linkage_rate(1024, 300, k), false_linkage_rate(4096, 300, k));
}

TEST(BloomMath, TwoWayLinkageSquaresOneWay) {
  // The two-way test must be strictly harder to pass than one-way.
  for (std::size_t n : {50u, 150u, 300u}) {
    const int k = optimal_hash_count(2048, n);
    const double one_way = false_positive_rate(2048, n, k);
    EXPECT_DOUBLE_EQ(false_linkage_rate(2048, n, k), one_way * one_way);
    EXPECT_LT(false_linkage_rate(2048, n, k), one_way);
  }
}

}  // namespace
}  // namespace viewmap::bloom
