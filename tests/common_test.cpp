// Unit tests: common substrate (bytes, hex, rng, stats, types,
// failpoints).
#include <gtest/gtest.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <set>
#include <stdexcept>
#include <vector>

#include "common/bytes.h"
#include "common/failpoint.h"
#include "common/hex.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/types.h"

namespace viewmap {
namespace {

TEST(Bytes, RoundTripAllWidths) {
  ByteWriter w;
  w.put_u8(0xab);
  w.put_u16(0x1234);
  w.put_u32(0xdeadbeef);
  w.put_u64(0x0123456789abcdefull);
  w.put_i64(-42);
  w.put_f64(3.14159);
  w.put_f32(-2.5f);

  ByteReader r(w.bytes());
  EXPECT_EQ(r.get_u8(), 0xab);
  EXPECT_EQ(r.get_u16(), 0x1234);
  EXPECT_EQ(r.get_u32(), 0xdeadbeefu);
  EXPECT_EQ(r.get_u64(), 0x0123456789abcdefull);
  EXPECT_EQ(r.get_i64(), -42);
  EXPECT_DOUBLE_EQ(r.get_f64(), 3.14159);
  EXPECT_FLOAT_EQ(r.get_f32(), -2.5f);
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(Bytes, LittleEndianLayout) {
  ByteWriter w;
  w.put_u32(0x01020304);
  ASSERT_EQ(w.size(), 4u);
  EXPECT_EQ(w.bytes()[0], 0x04);
  EXPECT_EQ(w.bytes()[3], 0x01);
}

TEST(Bytes, ReaderThrowsOnUnderrun) {
  const std::vector<std::uint8_t> two{1, 2};
  ByteReader r(two);
  EXPECT_EQ(r.get_u16(), 0x0201);
  EXPECT_THROW(r.get_u8(), std::out_of_range);
}

TEST(Bytes, GetBytesExact) {
  ByteWriter w;
  const std::vector<std::uint8_t> payload{9, 8, 7, 6};
  w.put_bytes(payload);
  ByteReader r(w.bytes());
  std::array<std::uint8_t, 4> out{};
  r.get_bytes(out);
  EXPECT_EQ(std::vector<std::uint8_t>(out.begin(), out.end()), payload);
}

TEST(Hex, RoundTrip) {
  const std::vector<std::uint8_t> data{0x00, 0xff, 0x1a, 0x2b};
  EXPECT_EQ(to_hex(data), "00ff1a2b");
  EXPECT_EQ(from_hex("00ff1a2b"), data);
  EXPECT_EQ(from_hex("00FF1A2B"), data);
}

TEST(Hex, RejectsMalformed) {
  EXPECT_THROW(from_hex("abc"), std::invalid_argument);
  EXPECT_THROW(from_hex("zz"), std::invalid_argument);
}

TEST(Rng, DeterministicBySeed) {
  Rng a(42), b(42), c(43);
  EXPECT_EQ(a.next_u64(), b.next_u64());
  Rng a2(42);
  EXPECT_NE(a2.next_u64(), c.next_u64());
}

TEST(Rng, UniformIntInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(-3, 5);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 5);
  }
}

TEST(Rng, SampleIndicesDistinctAndBounded) {
  Rng rng(11);
  const auto idx = rng.sample_indices(100, 20);
  ASSERT_EQ(idx.size(), 20u);
  std::set<std::size_t> unique(idx.begin(), idx.end());
  EXPECT_EQ(unique.size(), 20u);
  for (auto i : idx) EXPECT_LT(i, 100u);
}

TEST(Rng, SampleIndicesClampsToPopulation) {
  Rng rng(11);
  EXPECT_EQ(rng.sample_indices(5, 50).size(), 5u);
}

TEST(Rng, BernoulliEdgeCases) {
  Rng rng(1);
  EXPECT_FALSE(rng.bernoulli(0.0));
  EXPECT_TRUE(rng.bernoulli(1.0));
}

TEST(Rng, FillBytesCoversBuffer) {
  Rng rng(3);
  std::vector<std::uint8_t> buf(37, 0);
  rng.fill_bytes(buf);
  int nonzero = 0;
  for (auto b : buf) nonzero += b != 0;
  EXPECT_GT(nonzero, 20);  // all-zero output would mean the fill is broken
}

TEST(Stats, RunningMeanVariance) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
}

TEST(Stats, PearsonPerfectCorrelation) {
  const std::vector<double> x{1, 2, 3, 4};
  const std::vector<double> y{2, 4, 6, 8};
  EXPECT_NEAR(pearson_correlation(x, y), 1.0, 1e-12);
  const std::vector<double> ny{-2, -4, -6, -8};
  EXPECT_NEAR(pearson_correlation(x, ny), -1.0, 1e-12);
}

TEST(Stats, PearsonDegenerateIsZero) {
  const std::vector<double> x{1, 1, 1};
  const std::vector<double> y{1, 2, 3};
  EXPECT_EQ(pearson_correlation(x, y), 0.0);
}

TEST(Stats, EntropyUniform) {
  const std::vector<double> p{0.25, 0.25, 0.25, 0.25};
  EXPECT_NEAR(entropy_bits(p), 2.0, 1e-12);
  const std::vector<double> certain{1.0, 0.0};
  EXPECT_EQ(entropy_bits(certain), 0.0);
}

TEST(Types, UnitStartFloorsToMinute) {
  EXPECT_EQ(unit_start(0), 0);
  EXPECT_EQ(unit_start(59), 0);
  EXPECT_EQ(unit_start(60), 60);
  EXPECT_EQ(unit_start(61), 60);
  EXPECT_EQ(unit_start(-1), -60);
}

TEST(Types, Id16Equality) {
  Id16 a, b;
  a.bytes[0] = 1;
  EXPECT_NE(a, b);
  b.bytes[0] = 1;
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a.is_zero());
  EXPECT_TRUE(Id16{}.is_zero());
}

// ── failpoints ───────────────────────────────────────────────────────
// The registry is process-global; every test disarms on entry and exit
// so order does not matter.

class FailpointTest : public ::testing::Test {
 protected:
  void SetUp() override { failpoint::disarm_all(); }
  void TearDown() override { failpoint::disarm_all(); }
};

TEST_F(FailpointTest, UnarmedIsNoop) {
  EXPECT_FALSE(failpoint::any_armed());
  EXPECT_FALSE(failpoint::evaluate("store.write.data").fires());
  EXPECT_EQ(failpoint::inject("store.write.data"), 0);
  // Nothing armed ⇒ the fast path never touched the registry: no hits.
  EXPECT_EQ(failpoint::stats("store.write.data").hits, 0u);
  EXPECT_EQ(failpoint::total_fires(), 0u);
}

TEST_F(FailpointTest, ArmedPointUnrelatedPointStillProceeds) {
  failpoint::arm("p.a", failpoint::Action::kEIO);
  EXPECT_TRUE(failpoint::any_armed());
  EXPECT_EQ(failpoint::inject("p.other"), 0);
  EXPECT_EQ(failpoint::inject("p.a"), EIO);
}

TEST_F(FailpointTest, OnceFiresExactlyOnce) {
  failpoint::arm("p.once", failpoint::Action::kENOSPC,
                 failpoint::Trigger::once());
  EXPECT_EQ(failpoint::inject("p.once"), ENOSPC);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(failpoint::inject("p.once"), 0);
  const auto s = failpoint::stats("p.once");
  EXPECT_EQ(s.hits, 6u);
  EXPECT_EQ(s.fires, 1u);
}

TEST_F(FailpointTest, EveryNthFiresOnEveryNthHit) {
  failpoint::arm("p.nth", failpoint::Action::kEIO,
                 failpoint::Trigger::every_nth(3));
  std::vector<int> fired;
  for (int i = 0; i < 9; ++i)
    if (failpoint::inject("p.nth") != 0) fired.push_back(i);
  EXPECT_EQ(fired, (std::vector<int>{2, 5, 8}));
}

TEST_F(FailpointTest, WindowFiresOnlyInsideHalfOpenRange) {
  failpoint::arm("p.win", failpoint::Action::kEIO,
                 failpoint::Trigger::window(2, 5));
  std::vector<int> fired;
  for (int i = 0; i < 8; ++i)
    if (failpoint::inject("p.win") != 0) fired.push_back(i);
  EXPECT_EQ(fired, (std::vector<int>{2, 3, 4}));
  EXPECT_EQ(failpoint::stats("p.win").fires, 3u);
}

TEST_F(FailpointTest, ProbabilityIsDeterministicForSeed) {
  const auto run = [] {
    failpoint::arm("p.prob", failpoint::Action::kEIO,
                   failpoint::Trigger::probability(0.5, 1234));
    std::vector<bool> fired;
    for (int i = 0; i < 64; ++i)
      fired.push_back(failpoint::inject("p.prob") != 0);
    return fired;
  };
  const auto first = run();
  const auto second = run();  // re-arm resets the RNG: identical replay
  EXPECT_EQ(first, second);
  // p=0.5 over 64 draws: both outcomes must appear.
  EXPECT_NE(std::count(first.begin(), first.end(), true), 0);
  EXPECT_NE(std::count(first.begin(), first.end(), true), 64);
}

TEST_F(FailpointTest, ShortWriteReportsEIOThroughInject) {
  failpoint::arm("p.short", failpoint::Action::kShortWrite);
  EXPECT_EQ(failpoint::inject("p.short"), EIO);
  failpoint::arm("p.short2", failpoint::Action::kShortWrite);
  EXPECT_EQ(failpoint::evaluate("p.short2").action,
            failpoint::Action::kShortWrite);
}

TEST_F(FailpointTest, DelayFiresWithoutErrno) {
  failpoint::arm("p.delay", failpoint::Action::kDelay,
                 failpoint::Trigger::always(), std::chrono::milliseconds(1));
  const auto d = failpoint::evaluate("p.delay");
  EXPECT_TRUE(d.fires());
  EXPECT_EQ(d.injected_errno(), 0);
  EXPECT_EQ(failpoint::inject("p.delay"), 0);  // delays, then proceeds
  EXPECT_EQ(failpoint::stats("p.delay").fires, 2u);
}

TEST_F(FailpointTest, SpecArmsManyPointsWithTriggers) {
  const std::size_t armed = failpoint::arm_from_spec(
      "store.write.fsync=eio@every:3;store.rename=enospc@window:1:2;"
      "p.plain=error");
  EXPECT_EQ(armed, 3u);
  const auto points = failpoint::armed_points();
  EXPECT_EQ(points, (std::vector<std::string>{"p.plain", "store.rename",
                                              "store.write.fsync"}));
  EXPECT_EQ(failpoint::inject("store.write.fsync"), 0);
  EXPECT_EQ(failpoint::inject("store.write.fsync"), 0);
  EXPECT_EQ(failpoint::inject("store.write.fsync"), EIO);
  EXPECT_EQ(failpoint::inject("store.rename"), 0);
  EXPECT_EQ(failpoint::inject("store.rename"), ENOSPC);
  EXPECT_EQ(failpoint::inject("store.rename"), 0);
  // kError fires with no errno: sites that only understand errnos
  // proceed, sites that evaluate() see the action.
  EXPECT_TRUE(failpoint::evaluate("p.plain").fires());
  EXPECT_EQ(failpoint::inject("p.plain"), 0);
}

TEST_F(FailpointTest, SpecRejectsMalformedClauses) {
  EXPECT_THROW(failpoint::arm_from_spec("no-equals-sign"),
               std::invalid_argument);
  EXPECT_THROW(failpoint::arm_from_spec("p=frobnicate"),
               std::invalid_argument);
  EXPECT_THROW(failpoint::arm_from_spec("p=eio@sometimes"),
               std::invalid_argument);
  EXPECT_THROW(failpoint::arm_from_spec("p=eio@every:0"),
               std::invalid_argument);
  EXPECT_THROW(failpoint::arm_from_spec("p=eio@window:5:2"),
               std::invalid_argument);
  EXPECT_THROW(failpoint::arm_from_spec("p=eio@prob:1.5"),
               std::invalid_argument);
  // A throwing spec arms nothing it parsed before the bad clause.
  EXPECT_THROW(failpoint::arm_from_spec("ok=eio;bad=nope"),
               std::invalid_argument);
  EXPECT_FALSE(failpoint::any_armed());
}

TEST_F(FailpointTest, DisarmDropsCountersAndTotalFires) {
  failpoint::arm("p.a", failpoint::Action::kEIO);
  failpoint::arm("p.b", failpoint::Action::kEIO);
  EXPECT_EQ(failpoint::inject("p.a"), EIO);
  EXPECT_EQ(failpoint::inject("p.b"), EIO);
  EXPECT_EQ(failpoint::total_fires(), 2u);
  failpoint::disarm("p.a");
  EXPECT_EQ(failpoint::inject("p.a"), 0);
  EXPECT_EQ(failpoint::stats("p.a").hits, 0u);  // counters dropped
  EXPECT_TRUE(failpoint::any_armed());          // p.b still armed
  failpoint::disarm_all();
  EXPECT_FALSE(failpoint::any_armed());
  EXPECT_EQ(failpoint::total_fires(), 0u);  // reset with the registry
}

TEST_F(FailpointTest, ArmFromEnvReadsVariableExplicitly) {
  ::setenv("VIEWMAP_FAILPOINTS", "p.env=enospc@once", 1);
  EXPECT_EQ(failpoint::arm_from_env(), 1u);
  EXPECT_EQ(failpoint::inject("p.env"), ENOSPC);
  EXPECT_EQ(failpoint::inject("p.env"), 0);
  ::unsetenv("VIEWMAP_FAILPOINTS");
  failpoint::disarm_all();
  EXPECT_EQ(failpoint::arm_from_env(), 0u);
}

}  // namespace
}  // namespace viewmap
