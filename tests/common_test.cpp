// Unit tests: common substrate (bytes, hex, rng, stats, types).
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/bytes.h"
#include "common/hex.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/types.h"

namespace viewmap {
namespace {

TEST(Bytes, RoundTripAllWidths) {
  ByteWriter w;
  w.put_u8(0xab);
  w.put_u16(0x1234);
  w.put_u32(0xdeadbeef);
  w.put_u64(0x0123456789abcdefull);
  w.put_i64(-42);
  w.put_f64(3.14159);
  w.put_f32(-2.5f);

  ByteReader r(w.bytes());
  EXPECT_EQ(r.get_u8(), 0xab);
  EXPECT_EQ(r.get_u16(), 0x1234);
  EXPECT_EQ(r.get_u32(), 0xdeadbeefu);
  EXPECT_EQ(r.get_u64(), 0x0123456789abcdefull);
  EXPECT_EQ(r.get_i64(), -42);
  EXPECT_DOUBLE_EQ(r.get_f64(), 3.14159);
  EXPECT_FLOAT_EQ(r.get_f32(), -2.5f);
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(Bytes, LittleEndianLayout) {
  ByteWriter w;
  w.put_u32(0x01020304);
  ASSERT_EQ(w.size(), 4u);
  EXPECT_EQ(w.bytes()[0], 0x04);
  EXPECT_EQ(w.bytes()[3], 0x01);
}

TEST(Bytes, ReaderThrowsOnUnderrun) {
  const std::vector<std::uint8_t> two{1, 2};
  ByteReader r(two);
  EXPECT_EQ(r.get_u16(), 0x0201);
  EXPECT_THROW(r.get_u8(), std::out_of_range);
}

TEST(Bytes, GetBytesExact) {
  ByteWriter w;
  const std::vector<std::uint8_t> payload{9, 8, 7, 6};
  w.put_bytes(payload);
  ByteReader r(w.bytes());
  std::array<std::uint8_t, 4> out{};
  r.get_bytes(out);
  EXPECT_EQ(std::vector<std::uint8_t>(out.begin(), out.end()), payload);
}

TEST(Hex, RoundTrip) {
  const std::vector<std::uint8_t> data{0x00, 0xff, 0x1a, 0x2b};
  EXPECT_EQ(to_hex(data), "00ff1a2b");
  EXPECT_EQ(from_hex("00ff1a2b"), data);
  EXPECT_EQ(from_hex("00FF1A2B"), data);
}

TEST(Hex, RejectsMalformed) {
  EXPECT_THROW(from_hex("abc"), std::invalid_argument);
  EXPECT_THROW(from_hex("zz"), std::invalid_argument);
}

TEST(Rng, DeterministicBySeed) {
  Rng a(42), b(42), c(43);
  EXPECT_EQ(a.next_u64(), b.next_u64());
  Rng a2(42);
  EXPECT_NE(a2.next_u64(), c.next_u64());
}

TEST(Rng, UniformIntInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(-3, 5);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 5);
  }
}

TEST(Rng, SampleIndicesDistinctAndBounded) {
  Rng rng(11);
  const auto idx = rng.sample_indices(100, 20);
  ASSERT_EQ(idx.size(), 20u);
  std::set<std::size_t> unique(idx.begin(), idx.end());
  EXPECT_EQ(unique.size(), 20u);
  for (auto i : idx) EXPECT_LT(i, 100u);
}

TEST(Rng, SampleIndicesClampsToPopulation) {
  Rng rng(11);
  EXPECT_EQ(rng.sample_indices(5, 50).size(), 5u);
}

TEST(Rng, BernoulliEdgeCases) {
  Rng rng(1);
  EXPECT_FALSE(rng.bernoulli(0.0));
  EXPECT_TRUE(rng.bernoulli(1.0));
}

TEST(Rng, FillBytesCoversBuffer) {
  Rng rng(3);
  std::vector<std::uint8_t> buf(37, 0);
  rng.fill_bytes(buf);
  int nonzero = 0;
  for (auto b : buf) nonzero += b != 0;
  EXPECT_GT(nonzero, 20);  // all-zero output would mean the fill is broken
}

TEST(Stats, RunningMeanVariance) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
}

TEST(Stats, PearsonPerfectCorrelation) {
  const std::vector<double> x{1, 2, 3, 4};
  const std::vector<double> y{2, 4, 6, 8};
  EXPECT_NEAR(pearson_correlation(x, y), 1.0, 1e-12);
  const std::vector<double> ny{-2, -4, -6, -8};
  EXPECT_NEAR(pearson_correlation(x, ny), -1.0, 1e-12);
}

TEST(Stats, PearsonDegenerateIsZero) {
  const std::vector<double> x{1, 1, 1};
  const std::vector<double> y{1, 2, 3};
  EXPECT_EQ(pearson_correlation(x, y), 0.0);
}

TEST(Stats, EntropyUniform) {
  const std::vector<double> p{0.25, 0.25, 0.25, 0.25};
  EXPECT_NEAR(entropy_bits(p), 2.0, 1e-12);
  const std::vector<double> certain{1.0, 0.0};
  EXPECT_EQ(entropy_bits(certain), 0.0);
}

TEST(Types, UnitStartFloorsToMinute) {
  EXPECT_EQ(unit_start(0), 0);
  EXPECT_EQ(unit_start(59), 0);
  EXPECT_EQ(unit_start(60), 60);
  EXPECT_EQ(unit_start(61), 60);
  EXPECT_EQ(unit_start(-1), -60);
}

TEST(Types, Id16Equality) {
  Id16 a, b;
  a.bytes[0] = 1;
  EXPECT_NE(a, b);
  b.bytes[0] = 1;
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a.is_zero());
  EXPECT_TRUE(Id16{}.is_zero());
}

}  // namespace
}  // namespace viewmap
