// Unit tests: VP database, viewmap construction, TrustRank, verifier.
#include <gtest/gtest.h>

#include "attack/fake_vp.h"
#include "common/rng.h"
#include "system/trustrank.h"
#include "system/verifier.h"
#include "system/viewmap_graph.h"
#include "system/vp_database.h"
#include "vp/video.h"
#include "vp/vp_builder.h"

namespace viewmap::sys {
namespace {

/// Builds a convoy of `count` vehicles driving east with full pairwise VD
/// exchange between adjacent vehicles (spacing 50 m). Returns the finished
/// generation results, in convoy order.
std::vector<vp::VpGenerationResult> make_convoy(int count, TimeSec unit, Rng& rng,
                                                double spacing = 50.0) {
  std::vector<vp::VpBuilder> builders;
  builders.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) builders.emplace_back(unit, rng);

  vp::SyntheticVideoSource source(77, 32);
  std::vector<std::uint8_t> chunk;
  std::vector<dsrc::ViewDigest> vds(static_cast<std::size_t>(count));
  for (int s = 0; s < kDigestsPerProfile; ++s) {
    source.generate_chunk(unit, s, chunk);
    for (int i = 0; i < count; ++i)
      vds[static_cast<std::size_t>(i)] =
          builders[static_cast<std::size_t>(i)].tick({s * 10.0, i * spacing}, chunk);
    // Adjacent convoy members hear each other every second.
    for (int i = 0; i + 1 < count; ++i) {
      builders[static_cast<std::size_t>(i)].accept_neighbor(
          vds[static_cast<std::size_t>(i + 1)], {s * 10.0, i * spacing});
      builders[static_cast<std::size_t>(i + 1)].accept_neighbor(
          vds[static_cast<std::size_t>(i)], {s * 10.0, (i + 1) * spacing});
    }
  }
  std::vector<vp::VpGenerationResult> out;
  out.reserve(static_cast<std::size_t>(count));
  for (auto& b : builders) out.push_back(b.finish());
  return out;
}

TEST(VpDatabase, UploadScreensAndDeduplicates) {
  Rng rng(1);
  auto convoy = make_convoy(2, 0, rng);
  VpDatabase db;
  EXPECT_TRUE(db.upload(convoy[0].profile));
  EXPECT_FALSE(db.upload(convoy[0].profile));  // duplicate id
  EXPECT_EQ(db.size(), 1u);
  EXPECT_NE(db.find(convoy[0].profile.vp_id()), nullptr);
  EXPECT_EQ(db.find(convoy[1].profile.vp_id()), nullptr);
}

TEST(VpDatabase, RejectsMalformedUpload) {
  Rng rng(2);
  auto convoy = make_convoy(1, 0, rng);
  auto digests = std::vector<dsrc::ViewDigest>(convoy[0].profile.digests().begin(),
                                               convoy[0].profile.digests().end());
  digests[10].loc_x += 10000.0f;  // teleport
  vp::ViewProfile bad(std::move(digests),
                      bloom::BloomFilter(vp::kBloomBits, vp::kBloomHashes));
  VpDatabase db;
  EXPECT_FALSE(db.upload(std::move(bad)));
}

TEST(VpDatabase, QueryByTimeAndArea) {
  Rng rng(3);
  auto m0 = make_convoy(2, 0, rng);
  auto m1 = make_convoy(2, 60, rng);
  VpDatabase db;
  for (auto& g : m0) db.upload(g.profile);
  for (auto& g : m1) db.upload(g.profile);

  const DbSnapshot snap = db.snapshot();
  const geo::Rect everywhere{{-1e6, -1e6}, {1e6, 1e6}};
  EXPECT_EQ(snap.query(0, everywhere).size(), 2u);
  EXPECT_EQ(snap.query(60, everywhere).size(), 2u);
  EXPECT_EQ(snap.query(120, everywhere).size(), 0u);
  const geo::Rect nowhere{{5000, 5000}, {6000, 6000}};
  EXPECT_EQ(snap.query(0, nowhere).size(), 0u);
}

TEST(VpDatabase, TrustedRegistry) {
  Rng rng(4);
  auto convoy = make_convoy(2, 0, rng);
  VpDatabase db;
  db.upload_trusted(convoy[0].profile);
  db.upload(convoy[1].profile);
  EXPECT_TRUE(db.is_trusted(convoy[0].profile.vp_id()));
  EXPECT_FALSE(db.is_trusted(convoy[1].profile.vp_id()));
  const DbSnapshot snap = db.snapshot();
  EXPECT_EQ(snap.trusted_at(0).size(), 1u);
  EXPECT_EQ(snap.trusted_at(60).size(), 0u);
}

TEST(ViewmapBuilder, ConvoyFormsChainGraph) {
  Rng rng(5);
  auto convoy = make_convoy(4, 0, rng);
  VpDatabase db;
  db.upload_trusted(convoy[0].profile);
  for (std::size_t i = 1; i < convoy.size(); ++i) db.upload(convoy[i].profile);

  const ViewmapBuilder builder;
  const geo::Rect site{{0, 100}, {600, 200}};  // around vehicles 2-3
  const Viewmap map = builder.build(db.snapshot(), site, 0);

  EXPECT_EQ(map.size(), 4u);
  EXPECT_EQ(map.edge_count(), 3u);  // chain 0-1-2-3
  EXPECT_EQ(map.trusted_indices().size(), 1u);
  EXPECT_EQ(map.isolated_from_trusted(), 0u);
}

TEST(ViewmapBuilder, NoTrustedVpThrows) {
  Rng rng(6);
  auto convoy = make_convoy(2, 0, rng);
  VpDatabase db;
  for (auto& g : convoy) db.upload(g.profile);
  const ViewmapBuilder builder;
  EXPECT_THROW(builder.build(db.snapshot(), {{0, 0}, {10, 10}}, 0), std::runtime_error);
}

TEST(ViewmapBuilder, ViewlinkRequiresBothDirections) {
  Rng rng(7);
  // Two profiles close in space but without any VD exchange.
  auto a = make_convoy(1, 0, rng, 0.0);
  auto b = make_convoy(1, 0, rng, 0.0);
  const ViewmapBuilder builder;
  EXPECT_FALSE(builder.viewlinked(a[0].profile, b[0].profile));

  // One-way insertion is not enough.
  a[0].profile.add_neighbor_digest(b[0].profile.digests().front());
  EXPECT_FALSE(builder.viewlinked(a[0].profile, b[0].profile));

  // Mutual insertion, still close ⇒ linked.
  b[0].profile.add_neighbor_digest(a[0].profile.digests().front());
  EXPECT_TRUE(builder.viewlinked(a[0].profile, b[0].profile));
}

TEST(ViewmapBuilder, ViewlinkRequiresProximity) {
  Rng rng(8);
  auto convoy = make_convoy(2, 0, rng, /*spacing=*/10000.0);  // 10 km apart
  // Forge mutual Bloom membership — distance must still preclude the edge.
  vp::link_mutually(convoy[0].profile, convoy[1].profile);
  const ViewmapBuilder builder;
  EXPECT_FALSE(builder.viewlinked(convoy[0].profile, convoy[1].profile));
}

TEST(TrustRank, ConservesMassOnConnectedGraph) {
  // Triangle with one seed.
  std::vector<std::vector<std::uint32_t>> adj{{1, 2}, {0, 2}, {0, 1}};
  const std::vector<std::size_t> seeds{0};
  const auto result = trust_rank(adj, seeds, {});
  ASSERT_TRUE(result.converged);
  double total = 0;
  for (double s : result.scores) total += s;
  EXPECT_NEAR(total, 1.0, 1e-9);
  EXPECT_GT(result.scores[0], result.scores[1]);
  EXPECT_NEAR(result.scores[1], result.scores[2], 1e-12);  // symmetry
}

TEST(TrustRank, ScoreDecaysWithHopDistance) {
  // Path graph seeded at one end: scores must be monotone decreasing.
  const std::size_t n = 8;
  std::vector<std::vector<std::uint32_t>> adj(n);
  for (std::uint32_t i = 0; i + 1 < n; ++i) {
    adj[i].push_back(i + 1);
    adj[i + 1].push_back(i);
  }
  const auto result = trust_rank(adj, std::vector<std::size_t>{0}, {});
  for (std::size_t i = 2; i < n; ++i) EXPECT_LT(result.scores[i], result.scores[i - 1]);
}

TEST(TrustRank, DisconnectedComponentGetsNothing) {
  std::vector<std::vector<std::uint32_t>> adj{{1}, {0}, {3}, {2}};
  const auto result = trust_rank(adj, std::vector<std::size_t>{0}, {});
  EXPECT_GT(result.scores[1], 0.0);
  EXPECT_EQ(result.scores[2], 0.0);
  EXPECT_EQ(result.scores[3], 0.0);
}

TEST(TrustRank, RejectsBadInputs) {
  std::vector<std::vector<std::uint32_t>> adj{{}};
  EXPECT_THROW(trust_rank(adj, std::vector<std::size_t>{}, {}), std::invalid_argument);
  TrustRankConfig bad;
  bad.damping = 1.5;
  EXPECT_THROW(trust_rank(adj, std::vector<std::size_t>{0}, bad), std::invalid_argument);
}

TEST(Algorithm1, FloodFillRestrictedToSite) {
  // 0-1-2-3 path; site = {1, 3}. From top-scored 1, node 3 is reachable
  // only through 2 ∉ X, so 3 must be rejected.
  std::vector<std::vector<std::uint32_t>> adj{{1}, {0, 2}, {1, 3}, {2}};
  const std::vector<double> scores{0.5, 0.3, 0.15, 0.05};
  const std::vector<std::size_t> site{1, 3};
  const auto verdict = algorithm1(adj, scores, site);
  EXPECT_EQ(verdict.top_scored, 1u);
  EXPECT_EQ(verdict.legitimate, (std::vector<std::size_t>{1}));
}

TEST(Algorithm1, ConnectedSiteAllLegitimate) {
  std::vector<std::vector<std::uint32_t>> adj{{1}, {0, 2}, {1}};
  const std::vector<double> scores{0.6, 0.3, 0.1};
  const std::vector<std::size_t> site{0, 1, 2};
  const auto verdict = algorithm1(adj, scores, site);
  EXPECT_EQ(verdict.legitimate.size(), 3u);
}

TEST(Verifier, EndToEndConvoyAllLegitimate) {
  Rng rng(9);
  auto convoy = make_convoy(5, 0, rng);
  VpDatabase db;
  db.upload_trusted(convoy[0].profile);
  for (std::size_t i = 1; i < convoy.size(); ++i) db.upload(convoy[i].profile);

  const ViewmapBuilder builder;
  const geo::Rect site{{-10, -10}, {600, 260}};
  const Viewmap map = builder.build(db.snapshot(), site, 0);
  const Verifier verifier;
  const auto result = verifier.verify(map, site);
  EXPECT_EQ(result.site_members.size(), 5u);
  EXPECT_EQ(result.legitimate.size(), 5u);
  EXPECT_TRUE(result.rejected.empty());
}

TEST(Verifier, FakeLayerRejected) {
  Rng rng(10);
  auto convoy = make_convoy(5, 0, rng);

  // Attacker fabricates a fake VP claiming to be in the site, linked only
  // to... nothing honest (it cannot forge two-way links, §5.2.2).
  Rng attacker_rng(11);
  auto fake = attack::make_fake_profile(0, {200, 100}, {260, 100}, attacker_rng);

  VpDatabase db;
  db.upload_trusted(convoy[0].profile);
  for (std::size_t i = 1; i < convoy.size(); ++i) db.upload(convoy[i].profile);
  EXPECT_TRUE(db.upload(std::move(fake)));  // well-formed, so accepted

  const ViewmapBuilder builder;
  const geo::Rect site{{-10, -10}, {600, 260}};
  const Viewmap map = builder.build(db.snapshot(), site, 0);
  const Verifier verifier;
  const auto result = verifier.verify(map, site);

  ASSERT_EQ(result.site_members.size(), 6u);
  EXPECT_EQ(result.legitimate.size(), 5u);
  ASSERT_EQ(result.rejected.size(), 1u);
  // The rejected one is the fake (zero trust score, disconnected layer).
  EXPECT_EQ(result.ranks.scores[result.rejected[0]], 0.0);
}

TEST(Verifier, SaturatedBloomCannotForgeLink) {
  Rng rng(12);
  auto convoy = make_convoy(2, 0, rng);
  Rng attacker_rng(13);
  // All-ones Bloom claims to have heard everyone (§6.3.2)…
  auto fake = attack::make_saturated_profile(0, {0, 25}, {590, 25}, attacker_rng);
  const ViewmapBuilder builder;
  // …but the two-way check needs the *honest* VP to have heard the fake,
  // which it did not.
  EXPECT_FALSE(builder.viewlinked(convoy[0].profile, fake));
}

}  // namespace
}  // namespace viewmap::sys
