// Unit tests: attack graphs, fake injection, verification experiments.
#include <gtest/gtest.h>

#include "attack/attack_graph.h"
#include "attack/experiments.h"
#include "attack/fake_vp.h"

namespace viewmap::attack {
namespace {

GeometricConfig small_cfg() {
  GeometricConfig cfg;
  cfg.legit_count = 300;
  cfg.area_m = 1500;
  cfg.link_radius_m = 150;
  cfg.site_half_m = 120;
  return cfg;
}

TEST(AttackGraph, GeometricConstructionInvariants) {
  Rng rng(1);
  const auto g = make_geometric_viewmap(small_cfg(), rng);
  EXPECT_EQ(g.size(), 300u);
  ASSERT_EQ(g.trusted.size(), 1u);
  EXPECT_FALSE(g.fake[g.trusted[0]]);
  EXPECT_FALSE(g.site_members().empty());

  // Edges are symmetric and respect the link radius.
  for (std::size_t u = 0; u < g.size(); ++u) {
    for (std::uint32_t v : g.adj[u]) {
      EXPECT_LE(geo::distance(g.pos[u], g.pos[v]), 150.0 + 1e-9);
      const auto& back = g.adj[v];
      EXPECT_NE(std::find(back.begin(), back.end(), static_cast<std::uint32_t>(u)),
                back.end());
    }
  }
}

TEST(AttackGraph, HopsFromTrustedBfs) {
  AttackGraph g;
  g.pos = {{0, 0}, {1, 0}, {2, 0}, {50, 50}};
  g.adj.resize(4);
  g.fake.assign(4, false);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.trusted = {0};
  const auto hops = g.hops_from_trusted();
  EXPECT_EQ(hops[0], 0u);
  EXPECT_EQ(hops[1], 1u);
  EXPECT_EQ(hops[2], 2u);
  EXPECT_EQ(hops[3], SIZE_MAX);  // disconnected
}

TEST(InjectFakes, NeverLinksFakeToHonestNonAttacker) {
  Rng rng(2);
  auto g = make_geometric_viewmap(small_cfg(), rng);
  const std::size_t base = g.size();
  AttackPlan plan;
  plan.fake_count = 200;
  plan.attacker_count = 10;
  const auto attackers = inject_fakes(g, plan, 150, rng);
  ASSERT_TRUE(attackers.has_value());
  EXPECT_EQ(g.size(), base + 200);

  std::vector<bool> is_attacker(g.size(), false);
  for (std::size_t a : *attackers) is_attacker[a] = true;
  for (std::size_t f = base; f < g.size(); ++f) {
    ASSERT_TRUE(g.fake[f]);
    for (std::uint32_t nbr : g.adj[f]) {
      // Fake edges reach only other fakes or attacker-controlled VPs.
      EXPECT_TRUE(g.fake[nbr] || is_attacker[nbr])
          << "fake " << f << " linked to honest non-attacker " << nbr;
    }
  }
}

TEST(InjectFakes, FakeEdgesRespectClaimedProximity) {
  Rng rng(3);
  auto g = make_geometric_viewmap(small_cfg(), rng);
  AttackPlan plan;
  plan.fake_count = 150;
  plan.attacker_count = 8;
  ASSERT_TRUE(inject_fakes(g, plan, 150, rng).has_value());
  for (std::size_t u = 0; u < g.size(); ++u) {
    for (std::uint32_t v : g.adj[u]) {
      if (g.fake[u] || g.fake[v]) {
        EXPECT_LE(geo::distance(g.pos[u], g.pos[v]), 150.0 * 1.25)
            << "chain spacing must stay within the validated DSRC radius";
      }
    }
  }
}

TEST(InjectFakes, SomeFakesReachTheSite) {
  Rng rng(4);
  auto g = make_geometric_viewmap(small_cfg(), rng);
  AttackPlan plan;
  plan.fake_count = 300;
  plan.attacker_count = 10;
  ASSERT_TRUE(inject_fakes(g, plan, 150, rng).has_value());
  std::size_t site_fakes = 0;
  for (std::size_t i : g.site_members()) site_fakes += g.fake[i];
  EXPECT_GT(site_fakes, 0u);  // otherwise the attack is vacuous
}

TEST(InjectFakes, EmptyHopBucketReturnsNullopt) {
  Rng rng(5);
  auto g = make_geometric_viewmap(small_cfg(), rng);
  AttackPlan plan;
  plan.hop_bucket = {{900, 1000}};  // no node is 900 hops away
  EXPECT_FALSE(inject_fakes(g, plan, 150, rng).has_value());
}

TEST(Judge, CleanViewmapIsCorrect) {
  Rng rng(6);
  const auto g = make_geometric_viewmap(small_cfg(), rng);
  const auto outcome = judge(g, {});
  EXPECT_TRUE(outcome.ran);
  EXPECT_TRUE(outcome.correct);
  EXPECT_EQ(outcome.fakes_accepted, 0u);
  EXPECT_EQ(outcome.site_fakes, 0u);
  EXPECT_GT(outcome.site_honest, 0u);
}

TEST(Judge, DistantAttackersAreRejected) {
  // Attackers far (in hops) from the trusted seed rarely win (Fig. 12
  // shows ≈99-100% accuracy outside the nearest bucket).
  Rng rng(7);
  sys::TrustRankConfig tr;
  tr.tolerance = 1e-10;
  AttackPlan plan;
  plan.fake_count = 600;  // 200% of legit
  plan.attacker_count = 15;
  plan.hop_bucket = {{8, 20}};
  int correct = 0, ran = 0;
  for (int i = 0; i < 20; ++i) {
    const auto out = run_geometric_trial(small_cfg(), plan, tr, rng);
    if (!out.ran) continue;
    ++ran;
    correct += out.correct;
  }
  ASSERT_GT(ran, 10);
  EXPECT_GE(static_cast<double>(correct) / ran, 0.9);
}

TEST(GeometricAccuracy, ReturnsFractionInUnitInterval) {
  Rng rng(8);
  sys::TrustRankConfig tr;
  tr.tolerance = 1e-8;
  AttackPlan plan;
  plan.fake_count = 100;
  plan.attacker_count = 5;
  const double acc = geometric_accuracy(small_cfg(), plan, tr, 5, rng);
  EXPECT_GE(acc, 0.0);
  EXPECT_LE(acc, 1.0);
}

TEST(FakeVp, WellFormedButUnlinked) {
  Rng rng(9);
  const auto fake = make_fake_profile(60, {0, 0}, {300, 0}, rng);
  EXPECT_TRUE(vp::VpUploadPolicy{}.well_formed(fake));
  EXPECT_EQ(fake.unit_time(), 60);
  EXPECT_EQ(fake.neighbor_bloom().popcount(), 0u);
}

TEST(FakeVp, ForgeLinkOnlyWorksBetweenControlledProfiles) {
  Rng rng(10);
  auto f1 = make_fake_profile(0, {0, 0}, {100, 0}, rng);
  auto f2 = make_fake_profile(0, {50, 0}, {150, 0}, rng);
  EXPECT_FALSE(f1.heard(f2));
  forge_link(f1, f2);
  EXPECT_TRUE(f1.heard(f2));
  EXPECT_TRUE(f2.heard(f1));
}

TEST(FakeVp, SaturatedProfileClaimsEverything) {
  Rng rng(11);
  const auto sat = make_saturated_profile(0, {0, 0}, {10, 0}, rng);
  const auto other = make_fake_profile(0, {5, 0}, {15, 0}, rng);
  EXPECT_TRUE(sat.heard(other));   // claims to have heard anyone
  EXPECT_FALSE(other.heard(sat));  // but cannot make others claim it back
}

}  // namespace
}  // namespace viewmap::attack
