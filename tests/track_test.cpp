// Unit tests: adversarial tracker and privacy evaluation harness.
#include <gtest/gtest.h>

#include "sim/simulator.h"
#include "track/privacy_eval.h"
#include "track/tracker.h"

namespace viewmap::track {
namespace {

Id16 id_of(std::uint8_t tag) {
  Id16 id;
  id.bytes[0] = tag;
  return id;
}

VpObservation obs(std::uint8_t tag, TimeSec unit, geo::Vec2 start, geo::Vec2 end) {
  return {id_of(tag), unit, start, end};
}

TEST(Tracker, SingleContinuationKeepsCertainty) {
  // One vehicle, no guards: the tracker never loses it.
  std::vector<std::vector<VpObservation>> minutes{
      {obs(1, 0, {0, 0}, {100, 0})},
      {obs(2, 60, {100, 0}, {200, 0})},
      {obs(3, 120, {200, 0}, {300, 0})},
  };
  const std::vector<Id16> truth{id_of(1), id_of(2), id_of(3)};
  const Tracker tracker;
  const auto trace = tracker.follow(minutes, 0, truth);
  ASSERT_EQ(trace.success_ratio.size(), 2u);
  EXPECT_NEAR(trace.success_ratio[0], 1.0, 1e-9);
  EXPECT_NEAR(trace.success_ratio[1], 1.0, 1e-9);
  EXPECT_NEAR(trace.entropy_bits[1], 0.0, 1e-9);
}

TEST(Tracker, GuardForkSplitsBelief) {
  // Minute 1 offers two equally plausible continuations from (100,0):
  // the actual VP and a guard starting at the same spot.
  std::vector<std::vector<VpObservation>> minutes{
      {obs(1, 0, {0, 0}, {100, 0})},
      {obs(2, 60, {100, 0}, {200, 0}), obs(9, 60, {100, 0}, {50, 300})},
  };
  const std::vector<Id16> truth{id_of(1), id_of(2)};
  const Tracker tracker;
  const auto trace = tracker.follow(minutes, 0, truth);
  EXPECT_NEAR(trace.success_ratio[0], 0.5, 1e-9);
  EXPECT_NEAR(trace.entropy_bits[0], 1.0, 1e-9);  // two equal hypotheses
}

TEST(Tracker, GateExcludesFarCandidates) {
  std::vector<std::vector<VpObservation>> minutes{
      {obs(1, 0, {0, 0}, {100, 0})},
      {obs(2, 60, {100, 0}, {200, 0}), obs(9, 60, {5000, 0}, {5100, 0})},
  };
  const std::vector<Id16> truth{id_of(1), id_of(2)};
  const Tracker tracker;
  const auto trace = tracker.follow(minutes, 0, truth);
  EXPECT_NEAR(trace.success_ratio[0], 1.0, 1e-9);  // far VP gets no belief
}

TEST(Tracker, CloserContinuationGetsMoreBelief) {
  std::vector<std::vector<VpObservation>> minutes{
      {obs(1, 0, {0, 0}, {100, 0})},
      {obs(2, 60, {100, 0}, {200, 0}), obs(9, 60, {160, 0}, {260, 0})},
  };
  const std::vector<Id16> truth{id_of(1), id_of(2)};
  const Tracker tracker;
  const auto trace = tracker.follow(minutes, 0, truth);
  EXPECT_GT(trace.success_ratio[0], 0.5);
  EXPECT_LT(trace.success_ratio[0], 1.0);
}

TEST(Tracker, DivergentGuardChainsCompoundConfusion) {
  // Guard trajectories end elsewhere, and from there further plausible
  // continuations exist (other vehicles' paths) — belief spreads over an
  // exponentially growing hypothesis tree, so success decays per minute.
  std::vector<std::vector<VpObservation>> minutes;
  std::vector<Id16> truth;
  minutes.push_back({obs(1, 0, {0, 0}, {100, 0})});
  truth.push_back(id_of(1));
  std::uint8_t next_id = 10;
  for (int t = 1; t <= 3; ++t) {
    std::vector<VpObservation> minute;
    // The hypothesis frontier doubles each minute: every surviving branch
    // (real or guard) gets both a straight continuation and a guard fork
    // toward a distinct end region.
    const int branches = 1 << (t - 1);
    for (int b = 0; b < branches; ++b) {
      const geo::Vec2 base{100.0 * t, b * 400.0};
      minute.push_back(obs(next_id, t * 60, base, base + geo::Vec2{100, 0}));
      if (b == 0 && t < 4) truth.push_back(id_of(next_id));
      ++next_id;
      minute.push_back(obs(next_id, t * 60, base, base + geo::Vec2{0, 400}));
      ++next_id;
    }
    minutes.push_back(std::move(minute));
  }
  const Tracker tracker;
  const auto trace = tracker.follow(minutes, 0, truth);
  ASSERT_EQ(trace.success_ratio.size(), 3u);
  // Minute 1: two equal hypotheses; each later minute forks every branch.
  EXPECT_NEAR(trace.success_ratio[0], 0.5, 0.05);
  EXPECT_LE(trace.success_ratio[1], 0.30);
  EXPECT_LE(trace.success_ratio[2], 0.20);
  EXPECT_GT(trace.entropy_bits[2], trace.entropy_bits[0]);
}

TEST(Tracker, PersistentSameStartForksHoldAtHalf) {
  // When every guard starts AND the next minute's candidates start at the
  // same point, mass re-merges: success plateaus at 1/2 instead of
  // compounding. (Compounding requires divergent guard endpoints, which
  // the simulator-based privacy tests exercise.)
  std::vector<std::vector<VpObservation>> minutes;
  std::vector<Id16> truth;
  minutes.push_back({obs(1, 0, {0, 0}, {100, 0})});
  truth.push_back(id_of(1));
  for (std::uint8_t t = 1; t <= 4; ++t) {
    const double x = 100.0 * t;
    minutes.push_back(
        {obs(static_cast<std::uint8_t>(10 + t), t * 60, {x, 0}, {x + 100, 0}),
         obs(static_cast<std::uint8_t>(100 + t), t * 60, {x, 0}, {x - 50, 200})});
    truth.push_back(id_of(static_cast<std::uint8_t>(10 + t)));
  }
  const Tracker tracker;
  const auto trace = tracker.follow(minutes, 0, truth);
  ASSERT_EQ(trace.success_ratio.size(), 4u);
  EXPECT_NEAR(trace.success_ratio[3], 0.5, 0.05);
  EXPECT_NEAR(trace.entropy_bits[3], 1.0, 0.1);
}

TEST(Tracker, InputValidation) {
  const Tracker tracker;
  std::vector<std::vector<VpObservation>> minutes{{obs(1, 0, {0, 0}, {1, 0})}};
  EXPECT_THROW((void)tracker.follow(minutes, 5, {id_of(1)}), std::invalid_argument);
  EXPECT_THROW((void)tracker.follow(minutes, 0, {}), std::invalid_argument);
}

class PrivacyEvalTest : public ::testing::Test {
 protected:
  static sim::SimResult simulate(bool guards) {
    // Sparse traffic (≈3 vehicles/km², as in the paper's n = 50 over
    // 4×4 km²): without guards, paths barely ever get confused.
    Rng city_rng(31);
    road::GridCityConfig ccfg;
    ccfg.extent_m = 2000;
    ccfg.block_m = 250;
    ccfg.building_fill = 0.4;
    auto city = road::make_grid_city(ccfg, city_rng);

    sim::SimConfig cfg;
    cfg.seed = 33;
    cfg.vehicle_count = 12;
    cfg.minutes = 5;
    cfg.video_bytes_per_second = 16;
    cfg.guards_enabled = guards;
    sim::TrafficSimulator s(std::move(city), cfg);
    return s.run();
  }
};

TEST_F(PrivacyEvalTest, GuardsRaiseEntropyAndCutSuccess) {
  const auto result = simulate(true);
  const auto with_guards = evaluate_privacy(result, /*include_guards=*/true);
  const auto without = evaluate_privacy(result, /*include_guards=*/false);

  ASSERT_EQ(with_guards.minutes.size(), 4u);
  // By the last minute, guards must have strictly degraded tracking.
  EXPECT_LT(with_guards.mean_success.back(), without.mean_success.back());
  EXPECT_GT(with_guards.mean_entropy.back(), without.mean_entropy.back());
  // No-guard tracking in sparse traffic stays close to certain (Fig. 11).
  EXPECT_GT(without.mean_success.back(), 0.7);
}

TEST_F(PrivacyEvalTest, ObservationsGroupedPerMinute) {
  const auto result = simulate(true);
  const auto grouped = observations_by_minute(result, true);
  ASSERT_EQ(grouped.size(), 5u);
  const auto actual_only = observations_by_minute(result, false);
  for (std::size_t t = 0; t < 5; ++t) {
    EXPECT_EQ(actual_only[t].size(), 12u);
    EXPECT_GE(grouped[t].size(), actual_only[t].size());
  }
}

}  // namespace
}  // namespace viewmap::track
