// Unit tests: VD wire format, radio model, broadcast channel.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "dsrc/channel.h"
#include "dsrc/radio.h"
#include "dsrc/view_digest.h"

namespace viewmap::dsrc {
namespace {

ViewDigest sample_vd() {
  ViewDigest vd;
  vd.time = 1234;
  vd.loc_x = 10.5f;
  vd.loc_y = -3.25f;
  vd.file_size = 873813;
  vd.initial_x = 1.0f;
  vd.initial_y = 2.0f;
  vd.vp_id.bytes[0] = 0xaa;
  vd.vp_id.bytes[15] = 0xbb;
  vd.hash.bytes[7] = 0xcc;
  vd.second = 17;
  return vd;
}

TEST(ViewDigest, WireSizeIsExactly72Bytes) {
  // §6.1: "the length of our VD message is thus only 72 bytes".
  EXPECT_EQ(sample_vd().serialize().size(), kViewDigestWireSize);
  EXPECT_EQ(kViewDigestWireSize, 72u);
}

TEST(ViewDigest, SerializationRoundTrip) {
  const ViewDigest vd = sample_vd();
  const auto frame = vd.serialize();
  const ViewDigest parsed = ViewDigest::parse(frame);
  EXPECT_EQ(parsed, vd);
}

TEST(ViewDigest, ParseRejectsBadSize) {
  std::vector<std::uint8_t> frame(71);
  EXPECT_THROW(ViewDigest::parse(frame), std::invalid_argument);
  frame.resize(73);
  EXPECT_THROW(ViewDigest::parse(frame), std::invalid_argument);
}

TEST(ViewDigest, DistinctDigestsSerializeDistinctly) {
  ViewDigest a = sample_vd();
  ViewDigest b = a;
  b.second = 18;
  EXPECT_NE(a.serialize(), b.serialize());
}

TEST(AcceptancePolicy, TimeWindow) {
  const VdAcceptancePolicy policy;
  ViewDigest vd = sample_vd();
  vd.time = 100;
  vd.loc_x = 0;
  vd.loc_y = 0;
  EXPECT_TRUE(policy.acceptable(vd, 100, 0, 0));
  EXPECT_TRUE(policy.acceptable(vd, 101, 0, 0));
  EXPECT_FALSE(policy.acceptable(vd, 102, 0, 0));  // stale
  EXPECT_FALSE(policy.acceptable(vd, 98, 0, 0));   // from the future
}

TEST(AcceptancePolicy, DsrcRadius) {
  const VdAcceptancePolicy policy;
  ViewDigest vd = sample_vd();
  vd.time = 100;
  vd.loc_x = 0;
  vd.loc_y = 0;
  EXPECT_TRUE(policy.acceptable(vd, 100, 399, 0));
  EXPECT_FALSE(policy.acceptable(vd, 100, 401, 0));  // claims impossible range
}

TEST(Radio, PathLossMonotoneInDistance) {
  const RadioModel radio;
  double prev = radio.mean_rssi_dbm(1, true);
  for (double d = 50; d <= 400; d += 50) {
    const double rssi = radio.mean_rssi_dbm(d, true);
    EXPECT_LT(rssi, prev);
    prev = rssi;
  }
}

TEST(Radio, NlosPenaltyApplies) {
  const RadioModel radio;
  EXPECT_NEAR(radio.mean_rssi_dbm(100, true) - radio.mean_rssi_dbm(100, false),
              radio.config().nlos_penalty_db, 1e-9);
}

TEST(Radio, PdrCurveShape) {
  // Fig. 16: ≈1 above -80 dBm, ≈0 below -100 dBm, steep in between.
  EXPECT_GT(RadioModel::mean_pdr(-75.0), 0.95);
  EXPECT_GT(RadioModel::mean_pdr(-80.0), 0.9);
  EXPECT_LT(RadioModel::mean_pdr(-100.0), 0.1);
  EXPECT_LT(RadioModel::mean_pdr(-110.0), 0.01);
  const double mid = RadioModel::mean_pdr(-90.0);
  EXPECT_GT(mid, 0.3);
  EXPECT_LT(mid, 0.7);
}

TEST(Radio, OpenRoadDeliversAcross400m) {
  // §7.2.1: open-road VLR > 99% out to 400 m. A full minute of broadcasts
  // must get at least one frame through at max range.
  const RadioModel radio;
  Rng rng(1);
  int minutes_linked = 0;
  for (int minute = 0; minute < 100; ++minute) {
    bool got = false;
    for (int s = 0; s < 60 && !got; ++s)
      got = radio.try_deliver(400.0, true, false, rng);
    minutes_linked += got;
  }
  EXPECT_GE(minutes_linked, 99);
}

TEST(Radio, BuildingBlockageKillsDelivery) {
  const RadioModel radio;
  Rng rng(2);
  int delivered = 0;
  for (int i = 0; i < 6000; ++i) delivered += radio.try_deliver(120.0, false, false, rng);
  EXPECT_LT(delivered, 12);  // < 0.2% of frames behind a building at 120 m
}

TEST(Radio, MaxRangeIsHardCutoff) {
  const RadioModel radio;
  Rng rng(3);
  for (int i = 0; i < 100; ++i)
    EXPECT_FALSE(radio.try_deliver(401.0, true, false, rng));
}

TEST(Radio, TrafficBlockageProbability) {
  EXPECT_DOUBLE_EQ(traffic_blockage_probability(100, 0.0), 0.0);
  EXPECT_NEAR(traffic_blockage_probability(100, 0.01), 1.0 - std::exp(-1.0), 1e-12);
  EXPECT_GT(traffic_blockage_probability(300, 0.01),
            traffic_blockage_probability(100, 0.01));
}

TEST(Channel, LosFollowsObstacles) {
  const geo::ObstacleIndex index(std::vector<geo::Rect>{{{40, -10}, {60, 10}}});
  const BroadcastChannel channel;
  const ChannelEnvironment env{&index, 0.0};
  EXPECT_FALSE(channel.line_of_sight({0, 0}, {100, 0}, env));
  EXPECT_TRUE(channel.line_of_sight({0, 20}, {100, 20}, env));
}

TEST(Channel, DeliveryContrastLosVsNlos) {
  const geo::ObstacleIndex index(std::vector<geo::Rect>{{{40, -10}, {60, 10}}});
  const BroadcastChannel channel;
  const ChannelEnvironment env{&index, 0.0};
  Rng rng(5);
  int los_ok = 0, nlos_ok = 0;
  for (int i = 0; i < 2000; ++i) {
    los_ok += channel.try_deliver({0, 20}, {100, 20}, env, rng);
    nlos_ok += channel.try_deliver({0, 0}, {100, 0}, env, rng);
  }
  EXPECT_GT(los_ok, 1900);
  EXPECT_LT(nlos_ok, 20);
}

TEST(Channel, EnclosedEndpointAttenuatesFurther) {
  // A vehicle inside a structure (tunnel/garage) must be far less
  // reachable than one merely shadowed by it.
  const geo::ObstacleIndex inside_idx(std::vector<geo::Rect>{{{-5, -5}, {30, 5}}});
  const BroadcastChannel channel;
  const ChannelEnvironment env{&inside_idx, 0.0};
  Rng rng(6);
  int ok = 0;
  for (int i = 0; i < 4000; ++i) ok += channel.try_deliver({0, 0}, {25, 0}, env, rng);
  EXPECT_LT(ok, 8);  // NLOS + enclosed at 25 m: essentially dead
}

}  // namespace
}  // namespace viewmap::dsrc
