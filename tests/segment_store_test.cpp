// Segment store: incremental sealed-shard checkpoints + crash-consistent
// manifests (store/segment_store.h).
//
// The fault-injection harness is the core of this suite: every checkpoint
// records its durable filesystem mutations (RecordedOp log), and the
// harness replays every prefix of that sequence — truncating the write it
// lands inside — to prove that a crash at any byte offset recovers to the
// last sealed checkpoint, bit-for-bit, with zero malformed profiles. A
// corruption corpus (bit flips, truncations, wrong magic, stale or
// missing segments, torn renames) then damages sealed stores directly
// and asserts recovery either falls back to the sealed predecessor or
// fails with a clear error — never crashes, never loads a malformed VP.
// Satellites: the {ingest, evict, checkpoint, restart} interleaving
// property test, VMDB v2 conversion round trips, and the TSan stress
// where checkpoint() races live ingest + retention eviction + an
// InvestigationServer worker pool.
//
// The packed v2 codec gets its own campaign below: crash-point replay
// across the live v1 → v2 upgrade transition, a v2-specific corruption
// corpus (offset-table lies with a re-stamped CRC, packed bytes under a
// stream digest's name, CRC-consistent arena tampering vs deep_verify),
// mixed-codec interleavings vs a never-restarted reference, parallel-
// recovery determinism across worker-pool widths, and the pool feeding
// a live service under TSan.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <thread>
#include <vector>

#include "attack/fake_vp.h"
#include "common/failpoint.h"
#include "common/rng.h"
#include "crypto/crc32c.h"
#include "store/segment_store.h"
#include "store/vp_store.h"
#include "system/investigation_server.h"
#include "system/service.h"

namespace viewmap::store {
namespace {

namespace fs = std::filesystem;

// ── helpers ──────────────────────────────────────────────────────────

/// Unique scratch directory, removed on destruction.
class TempDir {
 public:
  explicit TempDir(const char* tag) {
    static std::atomic<int> counter{0};
    path_ = fs::temp_directory_path() /
            ("viewmap_segstore_" + std::string(tag) + "_" + std::to_string(::getpid()) +
             "_" + std::to_string(counter.fetch_add(1)));
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  [[nodiscard]] const fs::path& path() const noexcept { return path_; }
  [[nodiscard]] std::string str() const { return path_.string(); }

 private:
  fs::path path_;
};

vp::ViewProfile make_profile(TimeSec unit, geo::Vec2 start, Rng& rng) {
  return attack::make_fake_profile(unit, start, {start.x + 200.0, start.y}, rng);
}

/// Canonical full-database serialization — the equality oracle: two
/// databases are "the same" iff their VMDB snapshot bytes match.
std::string db_bytes(const sys::VpDatabase& db) {
  std::stringstream out;
  save_database(db, out);
  return out.str();
}

std::string snap_bytes(const sys::DbSnapshot& snap) {
  std::stringstream out;
  save_snapshot(snap, out);
  return out.str();
}

SegmentStoreConfig fast_config() {
  SegmentStoreConfig cfg;
  cfg.fsync = false;  // tests model durability logically via the op log
  // This suite's original sections exercise the v1 stream codec (several
  // assert on .vseg file names and v1 byte layouts); the v2 sections
  // below use fast_v2_config().
  cfg.codec = SegmentCodec::kV1;
  return cfg;
}

SegmentStoreConfig fast_v2_config() {
  SegmentStoreConfig cfg;
  cfg.fsync = false;
  cfg.codec = SegmentCodec::kV2;
  return cfg;
}

// ── fault-injection machinery ────────────────────────────────────────

/// Byte-exact image of a store directory.
using DirImage = std::map<std::string, std::vector<std::uint8_t>>;

DirImage capture_dir(const fs::path& dir) {
  DirImage image;
  for (const auto& entry : fs::directory_iterator(dir)) {
    std::ifstream in(entry.path(), std::ios::binary);
    image[entry.path().filename().string()] =
        std::vector<std::uint8_t>((std::istreambuf_iterator<char>(in)),
                                  std::istreambuf_iterator<char>());
  }
  return image;
}

void write_raw(const fs::path& file, std::span<const std::uint8_t> bytes) {
  std::ofstream out(file, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good());
}

void materialize(const fs::path& dir, const DirImage& image) {
  fs::remove_all(dir);
  fs::create_directories(dir);
  for (const auto& [name, bytes] : image) write_raw(dir / name, bytes);
}

/// Applies the first `full_ops` recorded operations verbatim, then — when
/// `partial_bytes` targets a kWriteFile op at index full_ops — that op's
/// write truncated to `partial_bytes`. This models a crash mid-write:
/// renames and removes are atomic, so they are either applied or not.
void apply_ops(const fs::path& dir, const std::vector<RecordedOp>& ops,
               std::size_t full_ops, std::size_t partial_bytes = 0,
               bool with_partial = false) {
  for (std::size_t i = 0; i < full_ops; ++i) {
    const RecordedOp& op = ops[i];
    switch (op.kind) {
      case RecordedOp::Kind::kWriteFile:
        write_raw(dir / op.name, op.bytes);
        break;
      case RecordedOp::Kind::kRename:
        fs::rename(dir / op.name, dir / op.to);
        break;
      case RecordedOp::Kind::kRemove:
        fs::remove(dir / op.name);
        break;
    }
  }
  if (with_partial) {
    ASSERT_LT(full_ops, ops.size());
    ASSERT_EQ(ops[full_ops].kind, RecordedOp::Kind::kWriteFile);
    write_raw(dir / ops[full_ops].name,
              std::span<const std::uint8_t>(ops[full_ops].bytes).subspan(0, partial_bytes));
  }
}

/// Recovers the scratch directory and returns the VMDB bytes of the
/// result. Any throw propagates — callers assert either equality with a
/// sealed state or a clean std::runtime_error.
std::string recover_bytes(const fs::path& dir) {
  SegmentStore store(dir.string(), fast_config());
  return db_bytes(store.recover());
}

/// The index of the manifest-publishing rename — the commit point: every
/// prefix strictly before it must recover the previous checkpoint, every
/// prefix at or past it the new one.
std::size_t manifest_commit_index(const std::vector<RecordedOp>& ops) {
  for (std::size_t i = 0; i < ops.size(); ++i)
    if (ops[i].kind == RecordedOp::Kind::kRename && ops[i].to.starts_with("manifest-"))
      return i;
  ADD_FAILURE() << "op log contains no manifest rename";
  return ops.size();
}

/// Truncation points for a write of `size` bytes: every offset through
/// the header region (where every format field lives), then a dense
/// stride through the payload, plus both edges. A prime stride hits
/// every residue of the 4576-byte profile record across a few profiles.
std::vector<std::size_t> truncation_points(std::size_t size) {
  std::vector<std::size_t> points;
  const std::size_t dense = std::min<std::size_t>(size, 64);
  for (std::size_t off = 0; off < dense; ++off) points.push_back(off);
  for (std::size_t off = dense; off < size; off += 31) points.push_back(off);
  if (size > 1) points.push_back(size - 1);
  return points;
}

/// The harness: given a directory image of the previous sealed
/// checkpoint and the op log of the next one, replays every crash point
/// and asserts recovery lands exactly on `prev_bytes` (before the
/// manifest commit) or `next_bytes` (at/after it).
void replay_all_crash_points(const DirImage& base, const std::vector<RecordedOp>& ops,
                             const std::string& prev_bytes, const std::string& next_bytes,
                             const char* what) {
  TempDir scratch("replay");
  const std::size_t commit = manifest_commit_index(ops);
  std::size_t states = 0;
  for (std::size_t i = 0; i <= ops.size(); ++i) {
    const std::string& expect = i > commit ? next_bytes : prev_bytes;
    // Crash exactly between op i-1 and op i.
    materialize(scratch.path(), base);
    apply_ops(scratch.path(), ops, i);
    EXPECT_EQ(recover_bytes(scratch.path()), expect)
        << what << ": crash before op " << i;
    ++states;
    // Crash inside op i, at every sampled byte offset.
    if (i < ops.size() && ops[i].kind == RecordedOp::Kind::kWriteFile) {
      for (const std::size_t off : truncation_points(ops[i].bytes.size())) {
        materialize(scratch.path(), base);
        apply_ops(scratch.path(), ops, i, off, /*with_partial=*/true);
        EXPECT_EQ(recover_bytes(scratch.path()), expect)
            << what << ": crash inside op " << i << " at byte " << off;
        ++states;
      }
    }
  }
  // Make sure the harness actually exercised a meaningful state space.
  EXPECT_GT(states, ops.size());
}

// ── corruption-corpus builders (satellite) ───────────────────────────
// Each builder takes a healthy sealed directory and damages it one
// specific way; the corpus test asserts every damaged store either
// recovers to the sealed predecessor or throws a clear error.

void corrupt_flip_byte(const fs::path& dir, const std::string& name, std::size_t off) {
  auto image = capture_dir(dir);
  auto& bytes = image.at(name);
  ASSERT_LT(off, bytes.size());
  bytes[off] ^= 0x40;
  write_raw(dir / name, bytes);
}

void corrupt_truncate(const fs::path& dir, const std::string& name, std::size_t keep) {
  auto image = capture_dir(dir);
  auto& bytes = image.at(name);
  bytes.resize(std::min(keep, bytes.size()));
  write_raw(dir / name, bytes);
}

void corrupt_wrong_magic(const fs::path& dir, const std::string& name) {
  auto image = capture_dir(dir);
  auto& bytes = image.at(name);
  ASSERT_GE(bytes.size(), 4u);
  bytes[0] = 'N';
  bytes[1] = 'O';
  bytes[2] = 'P';
  bytes[3] = 'E';
  write_raw(dir / name, bytes);
}

void corrupt_remove(const fs::path& dir, const std::string& name) {
  fs::remove(dir / name);
}

/// Stale segment reference: the manifest names a digest whose file now
/// holds a different (internally valid) segment's bytes.
void corrupt_swap_contents(const fs::path& dir, const std::string& victim,
                           const std::string& donor) {
  auto image = capture_dir(dir);
  write_raw(dir / victim, image.at(donor));
}

// ── basic round trips ────────────────────────────────────────────────

TEST(SegmentStore, CheckpointRecoverRoundTrip) {
  TempDir dir("roundtrip");
  Rng rng(1);
  sys::VpDatabase db;
  for (int m = 0; m < 3; ++m)
    for (int i = 0; i < 2; ++i)
      ASSERT_TRUE(db.upload(make_profile(m * kUnitTimeSec, {i * 400.0, m * 100.0}, rng)));
  ASSERT_TRUE(db.upload_trusted(make_profile(kUnitTimeSec, {0.0, 900.0}, rng)));

  SegmentStore store(dir.str(), fast_config());
  const auto stats = store.checkpoint(db.snapshot());
  EXPECT_EQ(stats.sequence, 1u);
  EXPECT_EQ(stats.shards_total, 3u);
  EXPECT_EQ(stats.segments_written, 3u);
  EXPECT_EQ(stats.segments_reused, 0u);
  EXPECT_GT(stats.bytes_written, 7 * vp::kVpWireSize);

  RecoveryStats rec;
  const auto loaded = store.recover(&rec);
  EXPECT_EQ(rec.sequence, 1u);
  EXPECT_EQ(rec.manifests_tried, 1u);
  EXPECT_EQ(rec.segments_loaded, 3u);
  EXPECT_EQ(rec.profiles_loaded, 7u);
  EXPECT_EQ(rec.profiles_rejected, 0u);
  EXPECT_EQ(rec.manifest_profiles, 7u);
  EXPECT_EQ(rec.trusted_marked, 1u);
  EXPECT_EQ(loaded.trusted_count(), 1u);
  EXPECT_EQ(loaded.trusted_now(), db.trusted_now());
  EXPECT_EQ(db_bytes(loaded), db_bytes(db));
}

TEST(SegmentStore, EmptyAndFreshStores) {
  TempDir dir("fresh");
  SegmentStore store(dir.str(), fast_config());
  EXPECT_EQ(store.latest_sequence(), 0u);
  RecoveryStats rec;
  const auto loaded = store.recover(&rec);
  EXPECT_EQ(loaded.size(), 0u);
  EXPECT_EQ(rec.manifests_tried, 0u);

  // An empty database checkpoints and recovers too (manifest, no segments).
  sys::VpDatabase empty;
  empty.advance_clock(777 * kUnitTimeSec);
  const auto stats = store.checkpoint(empty.snapshot());
  EXPECT_EQ(stats.segments_written, 0u);
  const auto again = store.recover();
  EXPECT_EQ(again.size(), 0u);
  EXPECT_EQ(again.trusted_now(), 777 * kUnitTimeSec);
}

TEST(SegmentStore, UnlistableStorePathThrowsInsteadOfReportingEmpty) {
  // A directory that exists but cannot be iterated (here: the path is a
  // regular file) is an I/O failure, not a fresh store — returning an
  // empty database would let restore_from() silently replace weeks of
  // checkpointed history.
  TempDir dir("unlistable");
  const fs::path not_a_dir = dir.path() / "file";
  const std::vector<std::uint8_t> junk{1};
  write_raw(not_a_dir, junk);
  SegmentStore store(not_a_dir.string(), fast_config());
  EXPECT_THROW((void)store.recover(), std::runtime_error);
  EXPECT_THROW((void)store.latest_sequence(), std::runtime_error);
}

TEST(SegmentStore, IncrementalCheckpointWritesOnlyChangedShards) {
  TempDir dir("incremental");
  Rng rng(2);
  sys::VpDatabase db;
  for (int m = 0; m < 4; ++m)
    for (int i = 0; i < 3; ++i)
      ASSERT_TRUE(db.upload(make_profile(m * kUnitTimeSec, {i * 400.0, m * 100.0}, rng)));

  SegmentStore store(dir.str(), fast_config());
  const auto first = store.checkpoint(db.snapshot());
  EXPECT_EQ(first.segments_written, 4u);

  // Touch exactly one minute.
  ASSERT_TRUE(db.upload(make_profile(2 * kUnitTimeSec, {5000.0, 0.0}, rng)));
  const auto second = store.checkpoint(db.snapshot());
  EXPECT_EQ(second.sequence, 2u);
  EXPECT_EQ(second.shards_total, 4u);
  EXPECT_EQ(second.segments_written, 1u);
  EXPECT_EQ(second.segments_reused, 3u);
  // Incremental I/O: one shard's segment + the manifest, nowhere near a
  // full rewrite.
  EXPECT_LT(second.bytes_written, first.bytes_written / 2);
  EXPECT_EQ(db_bytes(store.recover()), db_bytes(db));

  // Nothing changed: the next checkpoint writes only a manifest.
  const auto third = store.checkpoint(db.snapshot());
  EXPECT_EQ(third.segments_written, 0u);
  EXPECT_EQ(third.segments_reused, 4u);
  EXPECT_LT(third.bytes_written, 1024u);
  EXPECT_EQ(db_bytes(store.recover()), db_bytes(db));
}

TEST(SegmentStore, EvictionUnreferencesSegmentsAndGcReclaims) {
  TempDir dir("eviction");
  Rng rng(3);
  index::TimelineConfig tcfg;
  tcfg.retention.window_sec = 2 * kUnitTimeSec;
  sys::VpDatabase db(vp::VpUploadPolicy{}, tcfg);
  db.advance_clock(2 * kUnitTimeSec);
  for (int m = 0; m < 3; ++m)
    ASSERT_TRUE(db.upload(make_profile(m * kUnitTimeSec, {m * 300.0, 0.0}, rng)));

  SegmentStore store(dir.str(), fast_config());
  (void)store.checkpoint(db.snapshot());
  const auto digests = db.snapshot().shard_digests();
  ASSERT_EQ(digests.size(), 3u);
  const std::string evicted_segment = SegmentStore::segment_file_name(digests[0].digest);
  ASSERT_TRUE(fs::exists(dir.path() / evicted_segment));

  // Walk the clock so minute 0 ages out, then rotate two checkpoints: the
  // first still keeps the old manifest (fallback depth 2), the second
  // pushes it out and its exclusive segment with it.
  db.advance_clock(3 * kUnitTimeSec);
  EXPECT_GT(db.enforce_retention(), 0u);
  (void)store.checkpoint(db.snapshot());
  EXPECT_TRUE(fs::exists(dir.path() / evicted_segment));  // predecessor still refs it
  const auto stats = store.checkpoint(db.snapshot());
  EXPECT_GT(stats.files_removed, 0u);
  EXPECT_FALSE(fs::exists(dir.path() / evicted_segment));
  // Retention survives the restart: the recovered database has only the
  // in-window shards.
  const auto loaded = store.recover(vp::VpUploadPolicy{}, tcfg);
  EXPECT_EQ(db_bytes(loaded), db_bytes(db));
  EXPECT_EQ(loaded.snapshot().shard_count(), 2u);
}

TEST(SegmentStore, KeepManifestsBoundsHistory) {
  TempDir dir("keep");
  Rng rng(4);
  sys::VpDatabase db;
  SegmentStoreConfig cfg = fast_config();
  cfg.keep_manifests = 3;
  SegmentStore store(dir.str(), cfg);
  for (int round = 0; round < 5; ++round) {
    ASSERT_TRUE(db.upload(make_profile(0, {round * 500.0, 0.0}, rng)));
    (void)store.checkpoint(db.snapshot());
  }
  std::size_t manifests = 0;
  for (const auto& entry : fs::directory_iterator(dir.path()))
    manifests += entry.path().filename().string().starts_with("manifest-") ? 1 : 0;
  EXPECT_EQ(manifests, 3u);
  EXPECT_EQ(store.latest_sequence(), 5u);
}

TEST(SegmentStore, PointInTimeRecoverLandsOnTheNamedManifest) {
  TempDir dir("pit");
  Rng rng(40);
  sys::VpDatabase db;
  SegmentStoreConfig cfg = fast_config();
  cfg.keep_manifests = 4;  // retain the history the named restores walk
  SegmentStore store(dir.str(), cfg);
  std::map<std::uint64_t, std::string> sealed;  // sequence → VMDB bytes
  for (int round = 0; round < 3; ++round) {
    ASSERT_TRUE(db.upload(
        make_profile(round * kUnitTimeSec, {round * 300.0, 0.0}, rng)));
    const auto stats = store.checkpoint(db.snapshot());
    sealed[stats.sequence] = db_bytes(db);
  }
  EXPECT_EQ(store.manifest_sequences(),
            (std::vector<std::uint64_t>{1, 2, 3}));

  // Every retained checkpoint — including the middle of history, which
  // newest-first recover() can never land on — restores bit-for-bit.
  for (const auto& [seq, bytes] : sealed) {
    RecoveryStats rec;
    const sys::VpDatabase loaded = store.recover(seq, &rec);
    EXPECT_EQ(rec.sequence, seq);
    EXPECT_EQ(rec.manifests_tried, 1u);
    EXPECT_EQ(rec.profiles_loaded, rec.manifest_profiles);
    EXPECT_EQ(rec.profiles_rejected, 0u);
    EXPECT_TRUE(db_bytes(loaded) == bytes)
        << "sequence " << seq << " did not restore bit-for-bit";
  }
}

TEST(SegmentStore, PointInTimeRecoverMissingSequenceThrows) {
  TempDir dir("pitmissing");
  Rng rng(41);
  sys::VpDatabase db;
  SegmentStore store(dir.str(), fast_config());
  ASSERT_TRUE(db.upload(make_profile(0, {0.0, 0.0}, rng)));
  (void)store.checkpoint(db.snapshot());

  const std::uint64_t absent = 99;
  EXPECT_THROW((void)store.recover(absent), std::runtime_error);
  // GC'd history is equally absent: only the kept manifests are menu.
  const std::uint64_t sealed = 1;
  EXPECT_NO_THROW((void)store.recover(sealed));
}

TEST(SegmentStore, PointInTimeRecoverNeverFallsBack) {
  TempDir dir("pitdamaged");
  Rng rng(42);
  sys::VpDatabase db;
  SegmentStore store(dir.str(), fast_config());
  ASSERT_TRUE(db.upload(make_profile(0, {0.0, 0.0}, rng)));
  (void)store.checkpoint(db.snapshot());
  const std::string sealed_bytes = db_bytes(db);
  ASSERT_TRUE(db.upload(make_profile(kUnitTimeSec, {400.0, 0.0}, rng)));
  (void)store.checkpoint(db.snapshot());

  // Damage the newest manifest. Newest-first recover() falls back to
  // checkpoint 1; naming sequence 2 must throw instead of silently
  // landing the caller on a checkpoint they did not ask for.
  const std::vector<std::uint8_t> junk{'j', 'u', 'n', 'k'};
  write_raw(dir.path() / "manifest-0000000000000002.vman", junk);
  RecoveryStats rec;
  const sys::VpDatabase fallback = store.recover(&rec);
  EXPECT_EQ(rec.sequence, 1u);
  EXPECT_EQ(rec.manifests_tried, 2u);
  EXPECT_TRUE(db_bytes(fallback) == sealed_bytes);
  const std::uint64_t named = 2;
  EXPECT_THROW((void)store.recover(named), std::runtime_error);
}

TEST(SegmentStore, ClockRecoverySurvivesCheckpoint) {
  TempDir dir("clock");
  Rng rng(5);
  sys::VpDatabase db;
  ASSERT_TRUE(db.upload_trusted(make_profile(kUnitTimeSec, {0.0, 0.0}, rng)));
  db.reset_clock(10);  // operator walked a poisoned clock back
  SegmentStore store(dir.str(), fast_config());
  (void)store.checkpoint(db.snapshot());
  // Replaying the trusted profile advances the clock to 60 during load;
  // the manifest value must win or the recovery is silently undone.
  EXPECT_EQ(store.recover().trusted_now(), 10);
}

// ── shard content digests ────────────────────────────────────────────

TEST(ShardDigest, InsertionOrderInsensitiveAndContentSensitive) {
  Rng rng(6);
  std::vector<vp::ViewProfile> fleet;
  for (int i = 0; i < 4; ++i) fleet.push_back(make_profile(0, {i * 350.0, 0.0}, rng));

  sys::VpDatabase forward;
  sys::VpDatabase backward;
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    ASSERT_TRUE(forward.upload(fleet[i]));
    ASSERT_TRUE(backward.upload(fleet[fleet.size() - 1 - i]));
  }
  const auto a = forward.snapshot().shard_digests();
  const auto b = backward.snapshot().shard_digests();
  ASSERT_EQ(a.size(), 1u);
  ASSERT_EQ(b.size(), 1u);
  // Same content ⇒ same digest, however it was inserted.
  EXPECT_EQ(a[0].digest, b[0].digest);
  EXPECT_EQ(a[0].unit_time, 0);

  // Mutation changes the digest; the cache must not serve stale bytes.
  ASSERT_TRUE(forward.upload(make_profile(0, {9000.0, 0.0}, rng)));
  const auto c = forward.snapshot().shard_digests();
  EXPECT_NE(c[0].digest, a[0].digest);

  // Trusted marking is content too (it changes what recovery restores).
  sys::VpDatabase trusted_db;
  ASSERT_TRUE(trusted_db.upload_trusted(fleet[0]));
  sys::VpDatabase anon_db;
  ASSERT_TRUE(anon_db.upload(fleet[0]));
  EXPECT_NE(trusted_db.snapshot().shard_digests()[0].digest,
            anon_db.snapshot().shard_digests()[0].digest);
}

// ── fault injection: crash at every byte offset ──────────────────────

TEST(SegmentStoreFaults, EveryCrashPointRecoversTheLastSealedCheckpoint) {
  TempDir dir("prefix");
  Rng rng(7);
  std::vector<RecordedOp> ops;
  SegmentStoreConfig cfg = fast_config();
  cfg.op_log = &ops;
  SegmentStore store(dir.str(), cfg);

  index::TimelineConfig tcfg;
  tcfg.retention.window_sec = 3 * kUnitTimeSec;
  sys::VpDatabase db(vp::VpUploadPolicy{}, tcfg);
  db.advance_clock(2 * kUnitTimeSec);
  for (int m = 0; m < 2; ++m)
    for (int i = 0; i < 2; ++i)
      ASSERT_TRUE(db.upload(make_profile(m * kUnitTimeSec, {i * 400.0, m * 150.0}, rng)));

  // Seal checkpoint 1, the recovery floor for the first replay.
  (void)store.checkpoint(db.snapshot());
  const std::string sealed1 = db_bytes(db);
  const DirImage base1 = capture_dir(dir.path());

  // Transition 1 → 2: one changed shard, one brand-new shard.
  ASSERT_TRUE(db.upload(make_profile(0, {7000.0, 0.0}, rng)));
  ASSERT_TRUE(db.upload(make_profile(2 * kUnitTimeSec, {0.0, 2500.0}, rng)));
  ops.clear();
  (void)store.checkpoint(db.snapshot());
  const std::string sealed2 = db_bytes(db);
  ASSERT_GE(ops.size(), 6u);  // 2 segments (write+rename), manifest (write+rename)
  replay_all_crash_points(base1, ops, sealed1, sealed2, "transition 1->2");

  // Transition 2 → 3: eviction + churn, so the op log includes GC
  // removes of a rotated-out manifest.
  const DirImage base2 = capture_dir(dir.path());
  db.advance_clock(4 * kUnitTimeSec);
  EXPECT_GT(db.enforce_retention(), 0u);
  ASSERT_TRUE(db.upload(make_profile(3 * kUnitTimeSec, {100.0, 100.0}, rng)));
  ops.clear();
  (void)store.checkpoint(db.snapshot());
  const std::string sealed3 = db_bytes(db);
  bool saw_remove = false;
  for (const auto& op : ops) saw_remove |= op.kind == RecordedOp::Kind::kRemove;
  EXPECT_TRUE(saw_remove);
  replay_all_crash_points(base2, ops, sealed2, sealed3, "transition 2->3");
}

// ── corruption corpus ────────────────────────────────────────────────

/// Fixture state: a sealed store with checkpoints 1 and 2 where
/// checkpoint 2 added one shard, so `fresh_segment` is referenced only by
/// manifest 2 and `shared_segment` by both.
struct SealedPair {
  DirImage image;                    ///< healthy directory bytes
  std::string sealed1, sealed2;      ///< VMDB bytes of each checkpoint
  std::string manifest1, manifest2;  ///< file names
  std::string shared_segment, fresh_segment;
};

SealedPair build_sealed_pair(const fs::path& dir) {
  Rng rng(8);
  sys::VpDatabase db;
  SegmentStore store(dir.string(), fast_config());
  for (int i = 0; i < 2; ++i)
    EXPECT_TRUE(db.upload(make_profile(0, {i * 400.0, 0.0}, rng)));
  (void)store.checkpoint(db.snapshot());
  SealedPair out;
  out.sealed1 = db_bytes(db);
  out.shared_segment =
      SegmentStore::segment_file_name(db.snapshot().shard_digests()[0].digest);

  EXPECT_TRUE(db.upload(make_profile(kUnitTimeSec, {0.0, 700.0}, rng)));
  (void)store.checkpoint(db.snapshot());
  out.sealed2 = db_bytes(db);
  out.fresh_segment =
      SegmentStore::segment_file_name(db.snapshot().shard_digests()[1].digest);
  out.manifest1 = SegmentStore::manifest_file_name(1);
  out.manifest2 = SegmentStore::manifest_file_name(2);
  out.image = capture_dir(dir);
  EXPECT_TRUE(out.image.contains(out.manifest1));
  EXPECT_TRUE(out.image.contains(out.manifest2));
  EXPECT_TRUE(out.image.contains(out.shared_segment));
  EXPECT_TRUE(out.image.contains(out.fresh_segment));
  return out;
}

TEST(SegmentStoreFaults, CorruptionCorpusRecoversOrFailsCleanly) {
  TempDir dir("corpus");
  const SealedPair sealed = build_sealed_pair(dir.path());
  TempDir scratch("corpus_scratch");

  const auto reset = [&] { materialize(scratch.path(), sealed.image); };

  // Bit flips anywhere in the newest manifest → fall back to checkpoint 1.
  const std::size_t manifest_size = sealed.image.at(sealed.manifest2).size();
  for (std::size_t off = 0; off < manifest_size; off += 7) {
    reset();
    corrupt_flip_byte(scratch.path(), sealed.manifest2, off);
    EXPECT_EQ(recover_bytes(scratch.path()), sealed.sealed1)
        << "manifest flip at byte " << off;
  }

  // Bit flips in the newest-only segment → checkpoint 2 unloadable → 1.
  const std::size_t fresh_size = sealed.image.at(sealed.fresh_segment).size();
  for (const std::size_t off : {std::size_t{0}, std::size_t{9}, fresh_size / 2,
                                fresh_size - 1}) {
    reset();
    corrupt_flip_byte(scratch.path(), sealed.fresh_segment, off);
    EXPECT_EQ(recover_bytes(scratch.path()), sealed.sealed1)
        << "fresh segment flip at byte " << off;
  }

  // Truncations of the newest manifest at every prefix length → 1.
  for (std::size_t keep = 0; keep < manifest_size; keep += 5) {
    reset();
    corrupt_truncate(scratch.path(), sealed.manifest2, keep);
    EXPECT_EQ(recover_bytes(scratch.path()), sealed.sealed1)
        << "manifest truncated to " << keep;
  }

  // Truncated newest segment → 1.
  reset();
  corrupt_truncate(scratch.path(), sealed.fresh_segment, fresh_size / 3);
  EXPECT_EQ(recover_bytes(scratch.path()), sealed.sealed1);

  // Wrong magic in manifest / segment → 1.
  reset();
  corrupt_wrong_magic(scratch.path(), sealed.manifest2);
  EXPECT_EQ(recover_bytes(scratch.path()), sealed.sealed1);
  reset();
  corrupt_wrong_magic(scratch.path(), sealed.fresh_segment);
  EXPECT_EQ(recover_bytes(scratch.path()), sealed.sealed1);

  // Stale segment reference: manifest 2 names a digest whose file is
  // missing, or holds some other (internally valid) segment → 1.
  reset();
  corrupt_remove(scratch.path(), sealed.fresh_segment);
  EXPECT_EQ(recover_bytes(scratch.path()), sealed.sealed1);
  reset();
  corrupt_swap_contents(scratch.path(), sealed.fresh_segment, sealed.shared_segment);
  EXPECT_EQ(recover_bytes(scratch.path()), sealed.sealed1);

  // Unrelated junk files are ignored: recovery still lands on 2.
  reset();
  const std::vector<std::uint8_t> junk{'j', 'u', 'n', 'k'};
  write_raw(scratch.path() / "seg-zzzz.vseg", junk);
  write_raw(scratch.path() / "notes.txt", junk);
  EXPECT_EQ(recover_bytes(scratch.path()), sealed.sealed2);

  // Damage shared by every sealed checkpoint → a clear error, no crash,
  // nothing malformed loaded.
  reset();
  corrupt_flip_byte(scratch.path(), sealed.shared_segment, 100);
  corrupt_flip_byte(scratch.path(), sealed.manifest1, 20);
  corrupt_flip_byte(scratch.path(), sealed.manifest2, 20);
  try {
    SegmentStore store(scratch.str(), fast_config());
    (void)store.recover();
    FAIL() << "recover() of an unrecoverable store must throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("segment_store"), std::string::npos);
  }
}

TEST(SegmentStoreFaults, TornRenamesAndStaleTempsNeverMaskTheSealedCheckpoint) {
  TempDir dir("torn");
  const SealedPair sealed = build_sealed_pair(dir.path());
  TempDir scratch("torn_scratch");

  // A "torn rename" artifact: a higher-sequence manifest name holding a
  // prefix of real manifest bytes (rename is atomic on POSIX; this guards
  // the format against filesystems where it is not).
  const auto& real = sealed.image.at(sealed.manifest2);
  for (const std::size_t keep : {std::size_t{0}, std::size_t{7}, real.size() / 2}) {
    materialize(scratch.path(), sealed.image);
    write_raw(scratch.path() / SegmentStore::manifest_file_name(3),
              std::span<const std::uint8_t>(real).subspan(0, keep));
    EXPECT_EQ(recover_bytes(scratch.path()), sealed.sealed2)
        << "torn manifest-3 with " << keep << " bytes";
  }

  // Stale .tmp debris neither loads nor survives the next checkpoint —
  // but only the store's own temp patterns are cleaned; a foreign .tmp
  // is as untouchable as any other foreign file.
  materialize(scratch.path(), sealed.image);
  const std::vector<std::uint8_t> junk{1, 2, 3};
  write_raw(scratch.path() / "seg-dead.vseg.tmp", junk);
  write_raw(scratch.path() / (SegmentStore::manifest_file_name(9) + ".tmp"), junk);
  write_raw(scratch.path() / "notes.tmp", junk);
  EXPECT_EQ(recover_bytes(scratch.path()), sealed.sealed2);
  SegmentStore store(scratch.str(), fast_config());
  auto recovered = store.recover();
  (void)store.checkpoint(recovered.snapshot());
  EXPECT_FALSE(fs::exists(scratch.path() / "seg-dead.vseg.tmp"));
  EXPECT_FALSE(
      fs::exists(scratch.path() / (SegmentStore::manifest_file_name(9) + ".tmp")));
  EXPECT_TRUE(fs::exists(scratch.path() / "notes.tmp"));
}

TEST(SegmentStoreFaults, SweepTempsRemovesOnlyOwnPatternsAndSparesSegments) {
  TempDir dir("sweep");
  const SealedPair sealed = build_sealed_pair(dir.path());

  // Seed crash debris of every temp pattern the store writes, plus a
  // foreign .tmp that must be spared.
  const std::vector<std::uint8_t> junk{9, 9, 9};
  write_raw(dir.path() / "seg-feed.vseg.tmp", junk);
  write_raw(dir.path() / "seg-beef.vseg2.tmp", junk);
  write_raw(dir.path() / (SegmentStore::manifest_file_name(42) + ".tmp"), junk);
  write_raw(dir.path() / "operator-notes.tmp", junk);

  SegmentStore store(dir.str(), fast_config());
  EXPECT_EQ(store.sweep_temps(), 3u);
  EXPECT_FALSE(fs::exists(dir.path() / "seg-feed.vseg.tmp"));
  EXPECT_FALSE(fs::exists(dir.path() / "seg-beef.vseg2.tmp"));
  EXPECT_FALSE(
      fs::exists(dir.path() / (SegmentStore::manifest_file_name(42) + ".tmp")));
  EXPECT_TRUE(fs::exists(dir.path() / "operator-notes.tmp"));
  // Sealed state untouched: temps were never mistaken for segments.
  EXPECT_EQ(recover_bytes(dir.path()), sealed.sealed2);
  // Idempotent, and safe on a directory that does not exist.
  EXPECT_EQ(store.sweep_temps(), 0u);
  SegmentStore missing((dir.path() / "nope").string(), fast_config());
  EXPECT_EQ(missing.sweep_temps(), 0u);
}

TEST(SegmentStoreFaults, FailedCheckpointCleansItsTempAndStaysRecoverable) {
  TempDir dir("failckpt");
  Rng rng(17);
  sys::VpDatabase db;
  for (int m = 0; m < 3; ++m)
    ASSERT_TRUE(db.upload(make_profile(m * kUnitTimeSec, {m * 300.0, 0.0}, rng)));

  SegmentStore store(dir.str(), fast_config());
  (void)store.checkpoint(db.snapshot());
  const std::string sealed = db_bytes(store.recover());

  // Grow the database, then fail the next checkpoint at every injectable
  // site in the durable-write path. After each failure the directory
  // must hold zero temp files and recover() must land on the sealed
  // predecessor — retries never fight leaked `.tmp` artifacts.
  ASSERT_TRUE(db.upload(make_profile(5 * kUnitTimeSec, {4000.0, 0.0}, rng)));
  for (const char* spec :
       {"store.write.open=enospc@once", "store.write.data=enospc@once",
        "store.write.data=short@once", "store.write.close=eio@once",
        "store.rename=eio@once"}) {
    failpoint::disarm_all();
    failpoint::arm_from_spec(spec);
    EXPECT_THROW((void)store.checkpoint(db.snapshot()), StoreError) << spec;
    failpoint::disarm_all();
    for (const auto& entry : fs::directory_iterator(dir.path()))
      EXPECT_FALSE(entry.path().filename().string().ends_with(".tmp"))
          << spec << " leaked " << entry.path().filename();
    EXPECT_EQ(recover_bytes(dir.path()), sealed) << spec;
  }

  // With the points disarmed the same checkpoint succeeds and recovers
  // the grown database — the failures had no lasting effect.
  (void)store.checkpoint(db.snapshot());
  EXPECT_EQ(db_bytes(store.recover()), db_bytes(db));
}

TEST(SegmentStoreFaults, StoreErrorClassifiesTransientVsPermanent) {
  EXPECT_TRUE(StoreError("x", ENOSPC).transient());
  EXPECT_TRUE(StoreError("x", EIO).transient());
  EXPECT_TRUE(StoreError("x", EINTR).transient());
  EXPECT_FALSE(StoreError("x", EROFS).transient());
  EXPECT_FALSE(StoreError("x", EACCES).transient());
  EXPECT_FALSE(StoreError("x", ENOENT).transient());
  EXPECT_STREQ(StoreError("x", ENOSPC).reason(), "enospc");
  EXPECT_STREQ(StoreError("x", EDQUOT).reason(), "enospc");
  EXPECT_STREQ(StoreError("x", EIO).reason(), "eio");
  EXPECT_STREQ(StoreError("x", EPERM).reason(), "permission");
  EXPECT_STREQ(StoreError("x", ENOENT).reason(), "other");
  EXPECT_EQ(StoreError("x", ENOSPC).errno_value(), ENOSPC);
}

TEST(SegmentStoreFaults, CorruptManifestsNeverConsumeGcFallbackDepth) {
  // Manifests {1 good, 2 bit-rotted}: later checkpoints must keep good
  // manifest 1 alive until two *valid* newer checkpoints exist — a
  // corrupt file counting toward keep_manifests would strand recovery
  // the moment the newest manifest is also damaged.
  TempDir dir("gc_depth");
  const SealedPair sealed = build_sealed_pair(dir.path());
  corrupt_flip_byte(dir.path(), sealed.manifest2, 25);

  SegmentStore store(dir.str(), fast_config());
  auto recovered = store.recover();          // falls back to checkpoint 1
  EXPECT_EQ(db_bytes(recovered), sealed.sealed1);
  (void)store.checkpoint(recovered.snapshot());  // seals checkpoint 3

  // Keep window is {3 valid, 2 corrupt, 1 valid}: manifest 1 survives.
  EXPECT_TRUE(fs::exists(dir.path() / sealed.manifest1));
  corrupt_flip_byte(dir.path(), SegmentStore::manifest_file_name(3), 25);
  EXPECT_EQ(db_bytes(store.recover()), sealed.sealed1);

  // Once two valid checkpoints exist past it, the corpse rotates out.
  recovered = store.recover();
  (void)store.checkpoint(recovered.snapshot());  // 4 (valid; 3 now corrupt)
  (void)store.checkpoint(recovered.snapshot());  // 5 (valid)
  EXPECT_FALSE(fs::exists(dir.path() / sealed.manifest1));
  EXPECT_FALSE(fs::exists(dir.path() / sealed.manifest2));
  EXPECT_EQ(db_bytes(store.recover()), sealed.sealed1);
}

// ── property: interleavings vs a never-restarted reference ───────────

TEST(SegmentStoreProperty, AnyInterleavingMatchesNeverRestartedReference) {
  for (const std::uint64_t seed : {11u, 22u, 33u}) {
    TempDir dir("prop");
    Rng rng(seed);
    index::TimelineConfig tcfg;
    tcfg.retention.window_sec = 4 * kUnitTimeSec;
    const vp::VpUploadPolicy policy{};
    sys::VpDatabase reference(policy, tcfg);
    sys::VpDatabase live(policy, tcfg);
    SegmentStore store(dir.str(), fast_config());

    TimeSec clock = 4 * kUnitTimeSec;
    reference.advance_clock(clock);
    live.advance_clock(clock);

    for (int step = 0; step < 40; ++step) {
      const std::size_t pick = rng.index(10);
      if (pick < 5) {
        // Ingest a batch: identical profiles offered to both databases.
        const int batch = 1 + static_cast<int>(rng.index(3));
        for (int i = 0; i < batch; ++i) {
          const TimeSec unit =
              clock + kUnitTimeSec * (static_cast<TimeSec>(rng.index(4)) - 3);
          const auto profile = make_profile(
              unit, {rng.uniform(-4000.0, 4000.0), rng.uniform(-4000.0, 4000.0)}, rng);
          const bool trusted = rng.index(5) == 0;
          const bool ref_ok = trusted ? reference.upload_trusted(profile)
                                      : reference.upload(profile);
          const bool live_ok =
              trusted ? live.upload_trusted(profile) : live.upload(profile);
          EXPECT_EQ(ref_ok, live_ok);
          if (trusted) clock = std::max(clock, unit);
        }
      } else if (pick < 7) {
        // Retention eviction under a walking trusted clock.
        clock += kUnitTimeSec;
        reference.advance_clock(clock);
        live.advance_clock(clock);
        EXPECT_EQ(reference.enforce_retention(), live.enforce_retention());
      } else if (pick < 9) {
        (void)store.checkpoint(live.snapshot());
      } else {
        // Restart: checkpoint, drop the live database, recover from disk.
        (void)store.checkpoint(live.snapshot());
        live = store.recover(policy, tcfg);
      }
      ASSERT_EQ(db_bytes(live), db_bytes(reference)) << "seed " << seed
                                                     << " step " << step;
    }
  }
}

// ── VMDB v2 interchange (backward compat + conversion path) ──────────

TEST(SegmentStoreCompat, VmdbV2ConvertsLosslesslyBothWays) {
  TempDir dir("compat");
  Rng rng(9);
  sys::VpDatabase db;
  for (int m = 0; m < 3; ++m)
    ASSERT_TRUE(db.upload(make_profile(m * kUnitTimeSec, {m * 500.0, 0.0}, rng)));
  ASSERT_TRUE(db.upload_trusted(make_profile(0, {0.0, 800.0}, rng)));
  db.reset_clock(42);  // exercise the force-set path through both formats

  // Original service wrote a VMDB v2 file.
  const std::string vmdb_in = (dir.path() / "in.vmdb").string();
  save_database_file(db, vmdb_in);

  // v2 file → database → segment checkpoint.
  LoadStats load_stats;
  const auto from_vmdb = load_database_file(vmdb_in, &load_stats);
  EXPECT_EQ(load_stats.profiles_rejected, 0u);
  SegmentStore store(dir.str(), fast_config());
  (void)store.checkpoint(from_vmdb.snapshot());

  // Segment checkpoint → database → VMDB v2 file: byte-identical to the
  // original, so the two formats are interchangeable.
  const auto from_segments = store.recover();
  EXPECT_EQ(db_bytes(from_segments), db_bytes(db));
  const std::string vmdb_out = (dir.path() / "out.vmdb").string();
  save_database_file(from_segments, vmdb_out);
  std::ifstream a(vmdb_in, std::ios::binary), b(vmdb_out, std::ios::binary);
  const std::string bytes_a((std::istreambuf_iterator<char>(a)),
                            std::istreambuf_iterator<char>());
  const std::string bytes_b((std::istreambuf_iterator<char>(b)),
                            std::istreambuf_iterator<char>());
  EXPECT_EQ(bytes_a, bytes_b);
}

// ── concurrency: checkpoint vs live service (TSan target) ────────────

TEST(SegmentStoreConcurrency, CheckpointRacesIngestEvictionAndServerWorkers) {
  TempDir dir("race");
  sys::ServiceConfig scfg;
  scfg.rsa_bits = 1024;  // test speed
  scfg.index.retention.window_sec = 3 * kUnitTimeSec;
  sys::ViewMapService service(scfg);
  Rng trng(10);
  for (int m = 0; m < 6; ++m)
    ASSERT_TRUE(service.register_trusted(attack::make_fake_profile(
        m * kUnitTimeSec, {0.0, 0.0}, {300.0, 0.0}, trng)));

  sys::ServerConfig server_cfg;
  server_cfg.workers = 2;
  auto& server = service.start_server(server_cfg);

  std::atomic<bool> stop{false};
  // Live ingest + retention: uploads stream in while the trusted clock
  // walks the oldest minutes out of the window.
  std::thread ingester([&] {
    Rng rng(20);
    TimeSec clock = 5 * kUnitTimeSec;
    while (!stop.load(std::memory_order_relaxed)) {
      for (int i = 0; i < 8; ++i) {
        const TimeSec unit = clock - kUnitTimeSec * static_cast<TimeSec>(rng.index(3));
        service.upload_channel().submit(
            attack::make_fake_profile(unit,
                                      {rng.uniform(-800.0, 800.0), rng.uniform(-800.0, 800.0)},
                                      {200.0, 0.0}, rng)
                .serialize());
      }
      (void)service.ingest_uploads();
      clock += kUnitTimeSec;
      service.advance_clock(clock);
    }
  });
  // Investigation load through the worker pool.
  std::thread submitter([&] {
    Rng rng(30);
    while (!stop.load(std::memory_order_relaxed)) {
      auto future = server.submit({{-400.0, -400.0}, {400.0, 400.0}},
                                  kUnitTimeSec * static_cast<TimeSec>(rng.index(6)));
      if (future.valid()) (void)future.get();
    }
  });

  // The checkpointer: each checkpoint pins one snapshot; the recovered
  // database must serialize to exactly that snapshot's bytes — byte
  // determinism per pinned version, however hard the writers race.
  SegmentStore store(dir.str(), fast_config());
  for (int round = 0; round < 6; ++round) {
    const sys::DbSnapshot snap = service.database().snapshot();
    const std::string expected = snap_bytes(snap);
    const auto stats = store.checkpoint(snap);
    EXPECT_EQ(stats.sequence, static_cast<std::uint64_t>(round + 1));
    const auto recovered = store.recover(vp::VpUploadPolicy{}, scfg.index);
    EXPECT_EQ(db_bytes(recovered), expected) << "round " << round;
  }
  stop.store(true);
  ingester.join();
  submitter.join();
  service.stop_server();

  // Service-level wiring: checkpoint through the facade, then restore —
  // the restarted service resumes with the checkpointed database.
  (void)service.checkpoint(store);
  const std::size_t size_at_checkpoint = service.database().size();
  sys::ViewMapService restarted(scfg);
  const auto rec = restarted.restore_from(store);
  EXPECT_EQ(rec.profiles_rejected, 0u);
  EXPECT_EQ(restarted.database().size(), size_at_checkpoint);
  EXPECT_EQ(db_bytes(restarted.database()), db_bytes(service.database()));
}

// ── packed v2 codec ──────────────────────────────────────────────────
// Byte-surgery constants for the v2 layout (see store/segment_store.h):
// 40-byte prefix (magic, version, unit_time, vp_count, trusted_count,
// arena_len), then vp_count × 12-byte (offset u64, len u32) table
// entries, the arena, trusted ids, and a 36-byte trailer (digest + CRC).
constexpr std::size_t kPackedPrefix = 40;
constexpr std::size_t kPackedEntry = 12;

/// Re-stamps the trailing whole-file CRC32C after a deliberate byte
/// edit, so corpus entries can attack the *structural* validation layer
/// (offset-table lies) rather than being caught by the checksum.
void fix_v2_crc(const fs::path& dir, const std::string& name) {
  auto image = capture_dir(dir);
  auto& bytes = image.at(name);
  ASSERT_GE(bytes.size(), 4u);
  const std::uint32_t crc = crypto::crc32c(
      std::span<const std::uint8_t>(bytes).subspan(0, bytes.size() - 4));
  for (int i = 0; i < 4; ++i)
    bytes[bytes.size() - 4 + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(crc >> (8 * i));
  write_raw(dir / name, bytes);
}

/// Overwrites the offset field of offset-table entry `index`.
void patch_v2_table_offset(const fs::path& dir, const std::string& name,
                           std::size_t index, std::uint64_t new_offset) {
  auto image = capture_dir(dir);
  auto& bytes = image.at(name);
  const std::size_t at = kPackedPrefix + index * kPackedEntry;
  ASSERT_LE(at + 8, bytes.size());
  for (int i = 0; i < 8; ++i)
    bytes[at + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(new_offset >> (8 * i));
  write_raw(dir / name, bytes);
}

/// Overwrites the length field of offset-table entry `index`.
void patch_v2_table_length(const fs::path& dir, const std::string& name,
                           std::size_t index, std::uint32_t new_length) {
  auto image = capture_dir(dir);
  auto& bytes = image.at(name);
  const std::size_t at = kPackedPrefix + index * kPackedEntry + 8;
  ASSERT_LE(at + 4, bytes.size());
  for (int i = 0; i < 4; ++i)
    bytes[at + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(new_length >> (8 * i));
  write_raw(dir / name, bytes);
}

TEST(SegmentStoreV2, PackedCheckpointRoundTripAndDigestSeeding) {
  TempDir dir("v2roundtrip");
  Rng rng(60);
  sys::VpDatabase db;
  for (int m = 0; m < 3; ++m)
    for (int i = 0; i < 2; ++i)
      ASSERT_TRUE(db.upload(make_profile(m * kUnitTimeSec, {i * 400.0, m * 100.0}, rng)));
  ASSERT_TRUE(db.upload_trusted(make_profile(kUnitTimeSec, {0.0, 900.0}, rng)));

  SegmentStore store(dir.str(), fast_v2_config());
  const auto stats = store.checkpoint(db.snapshot());
  EXPECT_EQ(stats.segments_written, 3u);
  // Every segment landed packed; no v1 stream files appear anywhere.
  for (const auto& d : db.snapshot().shard_digests()) {
    EXPECT_TRUE(fs::exists(dir.path() / SegmentStore::segment_file_name_v2(d.digest)));
    EXPECT_FALSE(fs::exists(dir.path() / SegmentStore::segment_file_name(d.digest)));
  }

  RecoveryStats rec;
  const auto loaded = store.recover(&rec);
  EXPECT_EQ(rec.segments_v2, 3u);
  EXPECT_EQ(rec.segments_v1, 0u);
  EXPECT_EQ(rec.profiles_loaded, 7u);
  EXPECT_EQ(rec.profiles_rejected, 0u);
  EXPECT_EQ(rec.trusted_marked, 1u);
  EXPECT_GE(rec.threads_used, 1u);
  EXPECT_EQ(db_bytes(loaded), db_bytes(db));

  // Digest seeding: adopted shards carry their manifest digests, so the
  // first checkpoint after a restart re-hashes nothing and rewrites
  // nothing — it reuses every sealed segment by name.
  const auto again = store.checkpoint(loaded.snapshot());
  EXPECT_EQ(again.segments_written, 0u);
  EXPECT_EQ(again.segments_reused, 3u);

  // deep_verify re-hashes canonical content on the way in; on a healthy
  // store it must change nothing but the cost.
  SegmentStoreConfig deep = fast_v2_config();
  deep.deep_verify = true;
  SegmentStore deep_store(dir.str(), deep);
  EXPECT_EQ(db_bytes(deep_store.recover()), db_bytes(db));
}

TEST(SegmentStoreV2, CrossCodecReuseKeepsSealedV1Segments) {
  TempDir dir("crosscodec");
  Rng rng(61);
  sys::VpDatabase db;
  for (int m = 0; m < 3; ++m)
    ASSERT_TRUE(db.upload(make_profile(m * kUnitTimeSec, {m * 300.0, 0.0}, rng)));
  {
    SegmentStore v1(dir.str(), fast_config());
    (void)v1.checkpoint(db.snapshot());
  }

  // Live upgrade: a v2-configured store reuses sealed v1 segments by
  // digest (shard identity is codec-independent) and writes only the
  // churned shard in the packed format.
  ASSERT_TRUE(db.upload(make_profile(0, {5000.0, 0.0}, rng)));
  SegmentStore v2(dir.str(), fast_v2_config());
  const auto stats = v2.checkpoint(db.snapshot());
  EXPECT_EQ(stats.segments_written, 1u);
  EXPECT_EQ(stats.segments_reused, 2u);

  RecoveryStats rec;
  const auto loaded = v2.recover(&rec);
  EXPECT_EQ(rec.segments_v1, 2u);
  EXPECT_EQ(rec.segments_v2, 1u);
  EXPECT_EQ(db_bytes(loaded), db_bytes(db));

  // With cross-codec reuse off the same checkpoint is a migration
  // rewrite: the two v1 survivors are re-encoded, the packed one is
  // reused, and the next recovery is all-v2.
  SegmentStoreConfig migrate = fast_v2_config();
  migrate.reuse_any_codec = false;
  SegmentStore rewriter(dir.str(), migrate);
  const auto moved = rewriter.checkpoint(loaded.snapshot());
  EXPECT_EQ(moved.segments_written, 2u);
  EXPECT_EQ(moved.segments_reused, 1u);
  RecoveryStats rec2;
  const auto migrated = rewriter.recover(&rec2);
  EXPECT_EQ(rec2.segments_v1, 0u);
  EXPECT_EQ(rec2.segments_v2, 3u);
  EXPECT_EQ(db_bytes(migrated), db_bytes(db));
}

TEST(SegmentStoreV2, V1ToV2ToV1MigrationIsByteIdentical) {
  // The viewmap_convert migration contract: v1 → v2 → v1 through
  // recover/checkpoint reproduces the original store directory
  // bit-for-bit (same digests ⇒ same segment names ⇒ same bytes).
  TempDir a("mig_a"), b("mig_b"), c("mig_c");
  Rng rng(62);
  sys::VpDatabase db;
  for (int m = 0; m < 3; ++m)
    for (int i = 0; i < 2; ++i)
      ASSERT_TRUE(db.upload(make_profile(m * kUnitTimeSec, {i * 400.0, m * 120.0}, rng)));
  ASSERT_TRUE(db.upload_trusted(make_profile(0, {0.0, 900.0}, rng)));

  SegmentStore sa(a.str(), fast_config());
  (void)sa.checkpoint(db.snapshot());
  const DirImage image_a = capture_dir(a.path());

  SegmentStoreConfig v2cfg = fast_v2_config();
  v2cfg.reuse_any_codec = false;
  SegmentStore sb(b.str(), v2cfg);
  (void)sb.checkpoint(sa.recover().snapshot());
  for (const auto& [name, bytes] : capture_dir(b.path()))
    EXPECT_FALSE(name.ends_with(".vseg")) << "stream segment survived migration: " << name;

  SegmentStore sc(c.str(), fast_config());
  (void)sc.checkpoint(sb.recover().snapshot());
  EXPECT_TRUE(capture_dir(c.path()) == image_a)
      << "v1 -> v2 -> v1 round trip is not byte-identical";
}

TEST(SegmentStoreV2, ParallelRecoveryIsDeterministicAcrossThreadCounts) {
  TempDir dir("v2threads");
  Rng rng(63);
  sys::VpDatabase db;
  // Mixed-codec history: three shards sealed as v1 first, then churn +
  // three more minutes sealed by a v2 writer, so every worker count
  // walks both load paths.
  for (int m = 0; m < 3; ++m)
    for (int i = 0; i < 3; ++i)
      ASSERT_TRUE(db.upload(make_profile(m * kUnitTimeSec, {i * 400.0, m * 90.0}, rng)));
  {
    SegmentStore v1(dir.str(), fast_config());
    (void)v1.checkpoint(db.snapshot());
  }
  for (int m = 3; m < 6; ++m)
    for (int i = 0; i < 3; ++i)
      ASSERT_TRUE(db.upload(make_profile(m * kUnitTimeSec, {i * 400.0, m * 90.0}, rng)));
  ASSERT_TRUE(db.upload_trusted(make_profile(2 * kUnitTimeSec, {0.0, 1200.0}, rng)));
  {
    SegmentStore writer(dir.str(), fast_v2_config());
    (void)writer.checkpoint(db.snapshot());
  }

  const std::string expected = db_bytes(db);
  RecoveryStats base;
  for (const unsigned threads : {1u, 2u, 4u, 0u}) {  // 0 = hardware concurrency
    SegmentStoreConfig cfg = fast_v2_config();
    cfg.restore_threads = threads;
    SegmentStore store(dir.str(), cfg);
    RecoveryStats rec;
    const auto loaded = store.recover(&rec);
    // Bit-identical database AND identical recovery accounting, however
    // wide the pool — adoption order is manifest order, not finish order.
    EXPECT_EQ(db_bytes(loaded), expected) << "threads=" << threads;
    if (threads == 1) {
      EXPECT_EQ(rec.threads_used, 1u);
      base = rec;
      continue;
    }
    EXPECT_EQ(rec.sequence, base.sequence) << "threads=" << threads;
    EXPECT_EQ(rec.segments_loaded, base.segments_loaded) << "threads=" << threads;
    EXPECT_EQ(rec.segments_v1, base.segments_v1) << "threads=" << threads;
    EXPECT_EQ(rec.segments_v2, base.segments_v2) << "threads=" << threads;
    EXPECT_EQ(rec.profiles_loaded, base.profiles_loaded) << "threads=" << threads;
    EXPECT_EQ(rec.profiles_rejected, base.profiles_rejected) << "threads=" << threads;
    EXPECT_EQ(rec.trusted_marked, base.trusted_marked) << "threads=" << threads;
  }
}

TEST(SegmentStoreV2, DamagedSegmentErrorsNameFileAndOffsetAtAnyPoolWidth) {
  TempDir dir("v2err");
  Rng rng(64);
  sys::VpDatabase db;
  for (int m = 0; m < 4; ++m) {
    ASSERT_TRUE(db.upload(make_profile(m * kUnitTimeSec, {m * 350.0, 0.0}, rng)));
    ASSERT_TRUE(db.upload(make_profile(m * kUnitTimeSec, {m * 350.0, 600.0}, rng)));
  }
  SegmentStore writer(dir.str(), fast_v2_config());
  (void)writer.checkpoint(db.snapshot());
  const auto digests = db.snapshot().shard_digests();
  ASSERT_EQ(digests.size(), 4u);
  const std::string first = SegmentStore::segment_file_name_v2(digests[0].digest);
  const std::string third = SegmentStore::segment_file_name_v2(digests[2].digest);

  // Damage two referenced segments differently. Point-in-time recovery
  // must throw (never fall back), the message must name the damaged
  // file and its offending table entry's file offset, and the *same*
  // error — the earliest manifest entry's — must surface no matter how
  // many workers raced over the entries.
  patch_v2_table_offset(dir.path(), first, 1, 0);  // entry 1 overlaps entry 0
  fix_v2_crc(dir.path(), first);
  corrupt_truncate(dir.path(), third, 50);
  std::map<unsigned, std::string> messages;
  for (const unsigned threads : {1u, 4u}) {
    SegmentStoreConfig cfg = fast_v2_config();
    cfg.restore_threads = threads;
    SegmentStore store(dir.str(), cfg);
    const std::uint64_t sealed = 1;
    try {
      (void)store.recover(sealed);
      FAIL() << "recover(1) of a damaged checkpoint must throw (threads="
             << threads << ")";
    } catch (const std::runtime_error& e) {
      messages[threads] = e.what();
    }
  }
  EXPECT_EQ(messages[1], messages[4]);
  EXPECT_NE(messages[1].find(first), std::string::npos) << messages[1];
  EXPECT_NE(messages[1].find("table entry 1"), std::string::npos) << messages[1];
  EXPECT_NE(messages[1].find("file offset"), std::string::npos) << messages[1];
}

// ── fault injection: v2 + the live v1 → v2 upgrade transition ────────

TEST(SegmentStoreV2Faults, EveryCrashPointRecoversTheLastSealedCheckpoint) {
  TempDir dir("v2prefix");
  Rng rng(65);
  index::TimelineConfig tcfg;
  tcfg.retention.window_sec = 3 * kUnitTimeSec;
  sys::VpDatabase db(vp::VpUploadPolicy{}, tcfg);
  db.advance_clock(2 * kUnitTimeSec);
  for (int m = 0; m < 2; ++m)
    for (int i = 0; i < 2; ++i)
      ASSERT_TRUE(db.upload(make_profile(m * kUnitTimeSec, {i * 400.0, m * 150.0}, rng)));

  // Checkpoint 1 is sealed by a v1-codec store: the first replayed
  // transition is the live upgrade path (v1 history, v2 writer).
  {
    SegmentStore v1(dir.str(), fast_config());
    (void)v1.checkpoint(db.snapshot());
  }
  const std::string sealed1 = db_bytes(db);
  const DirImage base1 = capture_dir(dir.path());

  std::vector<RecordedOp> ops;
  SegmentStoreConfig cfg = fast_v2_config();
  cfg.op_log = &ops;
  SegmentStore store(dir.str(), cfg);

  // Transition 1 → 2: one changed shard, one brand-new shard, both
  // written packed while the unchanged shard stays a v1 stream file.
  ASSERT_TRUE(db.upload(make_profile(0, {7000.0, 0.0}, rng)));
  ASSERT_TRUE(db.upload(make_profile(2 * kUnitTimeSec, {0.0, 2500.0}, rng)));
  ops.clear();
  (void)store.checkpoint(db.snapshot());
  const std::string sealed2 = db_bytes(db);
  bool saw_v2_write = false;
  for (const auto& op : ops)
    saw_v2_write |= op.kind == RecordedOp::Kind::kWriteFile &&
                    op.name.find(".vseg2") != std::string::npos;
  EXPECT_TRUE(saw_v2_write);
  replay_all_crash_points(base1, ops, sealed1, sealed2, "v2 transition 1->2");

  // Transition 2 → 3: eviction + churn, so the replayed log includes GC
  // removes interleaved with packed segment writes.
  const DirImage base2 = capture_dir(dir.path());
  db.advance_clock(4 * kUnitTimeSec);
  EXPECT_GT(db.enforce_retention(), 0u);
  ASSERT_TRUE(db.upload(make_profile(3 * kUnitTimeSec, {100.0, 100.0}, rng)));
  ops.clear();
  (void)store.checkpoint(db.snapshot());
  const std::string sealed3 = db_bytes(db);
  bool saw_remove = false;
  for (const auto& op : ops) saw_remove |= op.kind == RecordedOp::Kind::kRemove;
  EXPECT_TRUE(saw_remove);
  replay_all_crash_points(base2, ops, sealed2, sealed3, "v2 transition 2->3");
}

// ── corruption corpus: packed-format-specific damage ─────────────────

/// Same shape as build_sealed_pair, but sealed by a v2 writer and with a
/// two-profile fresh shard so offset-table surgery has two extents to
/// play against each other.
SealedPair build_sealed_pair_v2(const fs::path& dir) {
  Rng rng(66);
  sys::VpDatabase db;
  SegmentStore store(dir.string(), fast_v2_config());
  for (int i = 0; i < 2; ++i)
    EXPECT_TRUE(db.upload(make_profile(0, {i * 400.0, 0.0}, rng)));
  (void)store.checkpoint(db.snapshot());
  SealedPair out;
  out.sealed1 = db_bytes(db);
  out.shared_segment =
      SegmentStore::segment_file_name_v2(db.snapshot().shard_digests()[0].digest);

  EXPECT_TRUE(db.upload(make_profile(kUnitTimeSec, {0.0, 700.0}, rng)));
  EXPECT_TRUE(db.upload(make_profile(kUnitTimeSec, {900.0, 700.0}, rng)));
  (void)store.checkpoint(db.snapshot());
  out.sealed2 = db_bytes(db);
  out.fresh_segment =
      SegmentStore::segment_file_name_v2(db.snapshot().shard_digests()[1].digest);
  out.manifest1 = SegmentStore::manifest_file_name(1);
  out.manifest2 = SegmentStore::manifest_file_name(2);
  out.image = capture_dir(dir);
  EXPECT_TRUE(out.image.contains(out.manifest1));
  EXPECT_TRUE(out.image.contains(out.manifest2));
  EXPECT_TRUE(out.image.contains(out.shared_segment));
  EXPECT_TRUE(out.image.contains(out.fresh_segment));
  return out;
}

TEST(SegmentStoreV2Faults, PackedCorruptionCorpusRecoversOrFailsCleanly) {
  TempDir dir("v2corpus");
  const SealedPair sealed = build_sealed_pair_v2(dir.path());
  TempDir scratch("v2corpus_scratch");
  const auto reset = [&] { materialize(scratch.path(), sealed.image); };

  const std::size_t fresh_size = sealed.image.at(sealed.fresh_segment).size();
  ASSERT_EQ(fresh_size, kPackedPrefix + 2 * kPackedEntry + 2 * vp::kVpWireSize + 36);

  // Whole-file CRC: a flip anywhere — prefix, offset table, arena,
  // digest, the CRC itself — makes checkpoint 2 unloadable → 1.
  for (const std::size_t off :
       {std::size_t{0}, std::size_t{5}, std::size_t{41}, std::size_t{52},
        kPackedPrefix + 2 * kPackedEntry + 100, fresh_size - 40, fresh_size - 2}) {
    reset();
    corrupt_flip_byte(scratch.path(), sealed.fresh_segment, off);
    EXPECT_EQ(recover_bytes(scratch.path()), sealed.sealed1)
        << "packed segment flip at byte " << off;
  }

  // Truncations: empty file, mid-prefix, mid-offset-table, mid-arena,
  // into the trailer, one byte short.
  for (const std::size_t keep :
       {std::size_t{0}, std::size_t{10}, std::size_t{45}, kPackedPrefix + kPackedEntry + 6,
        fresh_size / 2, fresh_size - 5, fresh_size - 1}) {
    reset();
    corrupt_truncate(scratch.path(), sealed.fresh_segment, keep);
    EXPECT_EQ(recover_bytes(scratch.path()), sealed.sealed1)
        << "packed segment truncated to " << keep;
  }

  // Structural attacks with a re-stamped CRC — the offset table lies
  // while the whole-file checksum is valid, so only the dense-ascending
  // scan stands between a bad extent and a wild arena read.
  reset();  // entry 1 overlaps entry 0
  patch_v2_table_offset(scratch.path(), sealed.fresh_segment, 1, 0);
  fix_v2_crc(scratch.path(), sealed.fresh_segment);
  EXPECT_EQ(recover_bytes(scratch.path()), sealed.sealed1);
  reset();  // entry 1 leaves a gap / points past the arena
  patch_v2_table_offset(scratch.path(), sealed.fresh_segment, 1,
                        3 * vp::kVpWireSize);
  fix_v2_crc(scratch.path(), sealed.fresh_segment);
  EXPECT_EQ(recover_bytes(scratch.path()), sealed.sealed1);
  reset();  // entry 0 claims a non-wire-size payload
  patch_v2_table_length(scratch.path(), sealed.fresh_segment, 0,
                        static_cast<std::uint32_t>(vp::kVpWireSize) + 1);
  fix_v2_crc(scratch.path(), sealed.fresh_segment);
  EXPECT_EQ(recover_bytes(scratch.path()), sealed.sealed1);

  // Wrong magic, missing file, stale contents (a different internally
  // valid packed segment under this digest's name: CRC passes, the
  // embedded digest field gives it away) → 1.
  reset();
  corrupt_wrong_magic(scratch.path(), sealed.fresh_segment);
  EXPECT_EQ(recover_bytes(scratch.path()), sealed.sealed1);
  reset();
  corrupt_remove(scratch.path(), sealed.fresh_segment);
  EXPECT_EQ(recover_bytes(scratch.path()), sealed.sealed1);
  reset();
  corrupt_swap_contents(scratch.path(), sealed.fresh_segment, sealed.shared_segment);
  EXPECT_EQ(recover_bytes(scratch.path()), sealed.sealed1);

  // Foreign .vseg2 junk is ignored; stale packed temps are cleaned by
  // the next checkpoint like their v1 cousins.
  reset();
  const std::vector<std::uint8_t> junk{'j', 'u', 'n', 'k'};
  write_raw(scratch.path() / "seg-zzzz.vseg2", junk);
  write_raw(scratch.path() / "seg-dead.vseg2.tmp", junk);
  EXPECT_EQ(recover_bytes(scratch.path()), sealed.sealed2);
  {
    SegmentStore store(scratch.str(), fast_v2_config());
    auto recovered = store.recover();
    (void)store.checkpoint(recovered.snapshot());
    EXPECT_FALSE(fs::exists(scratch.path() / "seg-dead.vseg2.tmp"));
  }

  // Damage shared by every sealed checkpoint → a clear error, no crash,
  // nothing malformed loaded.
  reset();
  corrupt_flip_byte(scratch.path(), sealed.shared_segment, 100);
  corrupt_flip_byte(scratch.path(), sealed.manifest1, 20);
  corrupt_flip_byte(scratch.path(), sealed.manifest2, 20);
  try {
    SegmentStore store(scratch.str(), fast_v2_config());
    (void)store.recover();
    FAIL() << "recover() of an unrecoverable store must throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("segment_store"), std::string::npos);
  }
}

TEST(SegmentStoreV2Faults, PackedSegmentRenamedOverAStreamDigestFallsBack) {
  // Operator error during migration: a packed v2 segment's bytes end up
  // under a v1 digest's .vseg name. The manifest's codec column says
  // stream; the magic check refuses the packed bytes, and recovery
  // walks back to the last checkpoint that doesn't reference the victim.
  TempDir dir("v2overv1");
  Rng rng(67);
  sys::VpDatabase db;
  SegmentStoreConfig v1cfg = fast_config();
  v1cfg.keep_manifests = 3;  // keep checkpoint 1, the fallback target
  SegmentStore v1(dir.str(), v1cfg);
  ASSERT_TRUE(db.upload(make_profile(0, {0.0, 0.0}, rng)));
  (void)v1.checkpoint(db.snapshot());
  const std::string sealed1 = db_bytes(db);
  ASSERT_TRUE(db.upload(make_profile(kUnitTimeSec, {0.0, 600.0}, rng)));
  (void)v1.checkpoint(db.snapshot());
  const std::string victim =
      SegmentStore::segment_file_name(db.snapshot().shard_digests()[1].digest);
  ASSERT_TRUE(db.upload(make_profile(2 * kUnitTimeSec, {0.0, 1200.0}, rng)));
  SegmentStoreConfig v2cfg = fast_v2_config();
  v2cfg.keep_manifests = 3;
  SegmentStore v2(dir.str(), v2cfg);
  (void)v2.checkpoint(db.snapshot());
  const std::string donor =
      SegmentStore::segment_file_name_v2(db.snapshot().shard_digests()[2].digest);

  corrupt_swap_contents(dir.path(), victim, donor);
  // Manifests 3 and 2 both reference the victim → fall back to 1.
  EXPECT_EQ(recover_bytes(dir.path()), sealed1);
}

TEST(SegmentStoreV2Faults, DeepVerifyCatchesCrcConsistentArenaTampering) {
  TempDir dir("v2deep");
  const SealedPair sealed = build_sealed_pair_v2(dir.path());
  TempDir scratch("v2deep_scratch");
  materialize(scratch.path(), sealed.image);

  // Tamper with one arena byte and re-stamp the whole-file CRC: the
  // fast integrity pass is consistent and the digest *field* still
  // matches the manifest — only re-hashing the content can tell. This
  // is exactly the class deep_verify exists for.
  corrupt_flip_byte(scratch.path(), sealed.fresh_segment,
                    kPackedPrefix + 2 * kPackedEntry + 1234);
  fix_v2_crc(scratch.path(), sealed.fresh_segment);
  SegmentStoreConfig deep = fast_v2_config();
  deep.deep_verify = true;
  SegmentStore store(scratch.str(), deep);
  EXPECT_EQ(db_bytes(store.recover()), sealed.sealed1);
}

// ── property: mixed-codec interleavings vs a never-restarted ref ─────

TEST(SegmentStoreProperty, MixedCodecInterleavingsMatchNeverRestartedReference) {
  for (const std::uint64_t seed : {44u, 55u, 66u}) {
    TempDir dir("prop2");
    Rng rng(seed);
    index::TimelineConfig tcfg;
    tcfg.retention.window_sec = 4 * kUnitTimeSec;
    const vp::VpUploadPolicy policy{};
    sys::VpDatabase reference(policy, tcfg);
    sys::VpDatabase live(policy, tcfg);
    // Two writers on ONE directory: checkpoints alternate codecs at
    // random, so manifests reference whatever mix of .vseg/.vseg2 the
    // history happened to leave sealed. Restarts recover through the
    // parallel worker pool.
    SegmentStore v1_store(dir.str(), fast_config());
    SegmentStoreConfig pcfg = fast_v2_config();
    pcfg.restore_threads = 3;
    SegmentStore v2_store(dir.str(), pcfg);

    TimeSec clock = 4 * kUnitTimeSec;
    reference.advance_clock(clock);
    live.advance_clock(clock);

    for (int step = 0; step < 40; ++step) {
      const std::size_t pick = rng.index(12);
      if (pick < 5) {
        const int batch = 1 + static_cast<int>(rng.index(3));
        for (int i = 0; i < batch; ++i) {
          const TimeSec unit =
              clock + kUnitTimeSec * (static_cast<TimeSec>(rng.index(4)) - 3);
          const auto profile = make_profile(
              unit, {rng.uniform(-4000.0, 4000.0), rng.uniform(-4000.0, 4000.0)}, rng);
          const bool trusted = rng.index(5) == 0;
          const bool ref_ok = trusted ? reference.upload_trusted(profile)
                                      : reference.upload(profile);
          const bool live_ok =
              trusted ? live.upload_trusted(profile) : live.upload(profile);
          EXPECT_EQ(ref_ok, live_ok);
          if (trusted) clock = std::max(clock, unit);
        }
      } else if (pick < 7) {
        clock += kUnitTimeSec;
        reference.advance_clock(clock);
        live.advance_clock(clock);
        EXPECT_EQ(reference.enforce_retention(), live.enforce_retention());
      } else if (pick < 9) {
        (void)v1_store.checkpoint(live.snapshot());
      } else if (pick < 11) {
        (void)v2_store.checkpoint(live.snapshot());
      } else {
        const std::size_t codec_pick = rng.index(2);
        (void)(codec_pick == 0 ? v1_store : v2_store).checkpoint(live.snapshot());
        live = v2_store.recover(policy, tcfg);
      }
      ASSERT_EQ(db_bytes(live), db_bytes(reference)) << "seed " << seed
                                                     << " step " << step;
    }
  }
}

// ── concurrency: parallel recovery feeding a live service (TSan) ─────

TEST(SegmentStoreConcurrency, ParallelRecoveryFeedsLiveService) {
  TempDir dir("parallel_live");
  sys::ServiceConfig scfg;
  scfg.rsa_bits = 1024;  // test speed
  sys::ViewMapService origin(scfg);
  Rng trng(50);
  for (int m = 0; m < 5; ++m)
    ASSERT_TRUE(origin.register_trusted(attack::make_fake_profile(
        m * kUnitTimeSec, {0.0, 0.0}, {300.0, 0.0}, trng)));
  for (int m = 2; m < 5; ++m)
    for (int i = 0; i < 4; ++i)
      origin.upload_channel().submit(
          attack::make_fake_profile(m * kUnitTimeSec, {i * 300.0, 150.0},
                                    {i * 300.0 + 200.0, 150.0}, trng)
              .serialize());
  EXPECT_GT(origin.ingest_uploads(), 0u);

  SegmentStoreConfig cfg = fast_v2_config();
  cfg.restore_threads = 4;
  SegmentStore store(dir.str(), cfg);
  (void)origin.checkpoint(store);
  const std::string expected = db_bytes(origin.database());

  // Restore through the 4-wide worker pool, then immediately put the
  // adopted shards under live write + query traffic: TSan watches the
  // handoff from recovery workers to ingest and server threads.
  sys::ViewMapService restarted(scfg);
  const auto rec = restarted.restore_from(store);
  EXPECT_EQ(rec.threads_used, 4u);
  EXPECT_EQ(rec.profiles_rejected, 0u);
  EXPECT_EQ(db_bytes(restarted.database()), expected);

  sys::ServerConfig server_cfg;
  server_cfg.workers = 2;
  auto& server = restarted.start_server(server_cfg);
  std::thread ingester([&] {
    Rng rng(51);
    for (int round = 0; round < 15; ++round) {
      for (int i = 0; i < 4; ++i)
        restarted.upload_channel().submit(
            attack::make_fake_profile(
                4 * kUnitTimeSec - kUnitTimeSec * static_cast<TimeSec>(rng.index(2)),
                {rng.uniform(-800.0, 800.0), rng.uniform(-800.0, 800.0)},
                {200.0, 0.0}, rng)
                .serialize());
      (void)restarted.ingest_uploads();
    }
  });
  Rng qrng(52);
  for (int q = 0; q < 15; ++q) {
    auto future = server.submit({{-500.0, -500.0}, {500.0, 500.0}},
                                kUnitTimeSec * static_cast<TimeSec>(qrng.index(5)));
    if (future.valid()) (void)future.get();
  }
  ingester.join();
  restarted.stop_server();
  EXPECT_GE(restarted.database().size(), origin.database().size());
}

}  // namespace
}  // namespace viewmap::store
