// viewmap_simulate — generate a ViewMap VP database from simulated city
// traffic and write it as a VMDB snapshot.
//
// Usage:
//   viewmap_simulate OUT.vmdb [vehicles] [minutes] [extent_m] [seed]
//
// Vehicle 0 plays the police car: its actual VPs are marked trusted.
// Inspect the result with viewmap_inspect.
#include <cstdio>
#include <cstdlib>

#include "index/ingest_engine.h"
#include "sim/simulator.h"
#include "store/vp_store.h"

using namespace viewmap;

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s OUT.vmdb [vehicles=60] [minutes=5] [extent_m=2500] "
                 "[seed=1]\n",
                 argv[0]);
    return 2;
  }
  const std::string out_path = argv[1];
  const int vehicles = argc > 2 ? std::atoi(argv[2]) : 60;
  const int minutes = argc > 3 ? std::atoi(argv[3]) : 5;
  const double extent = argc > 4 ? std::atof(argv[4]) : 2500.0;
  const auto seed = static_cast<std::uint64_t>(argc > 5 ? std::atoll(argv[5]) : 1);

  Rng city_rng(seed);
  road::GridCityConfig ccfg;
  ccfg.extent_m = extent;
  ccfg.block_m = 250.0;
  ccfg.building_fill = 0.55;
  auto city = road::make_grid_city(ccfg, city_rng);

  sim::SimConfig cfg;
  cfg.seed = seed + 1;
  cfg.vehicle_count = vehicles;
  cfg.minutes = minutes;
  cfg.video_bytes_per_second = 32;
  sim::TrafficSimulator simulator(std::move(city), cfg);
  const sim::SimResult world = simulator.run();

  // Trusted VPs (vehicle 0, the police car) take the authenticated path;
  // everything else is serialized and batch-committed by the ingest engine,
  // exactly as anonymous uploads reach a deployed service.
  sys::VpDatabase db;
  std::size_t guards = 0;
  std::vector<std::vector<std::uint8_t>> anonymous;
  anonymous.reserve(world.profiles.size());
  for (const auto& rec : world.profiles) {
    guards += rec.guard;
    if (!rec.guard && rec.creator == 0)
      db.upload_trusted(rec.profile);
    else
      anonymous.push_back(rec.profile.serialize());
  }
  index::IngestEngine engine(db.timeline(), db.policy());
  const auto ingest = engine.ingest(std::move(anonymous));

  // Persist and report from one pinned snapshot: the bytes on disk and
  // the census below describe exactly the same immutable state.
  const sys::DbSnapshot snap = db.snapshot();
  store::save_snapshot_file(snap, out_path);
  std::printf("%s: %zu VPs (%zu guards, %zu trusted) from %d vehicles x %d min\n",
              out_path.c_str(), snap.size(), guards, snap.trusted_count(), vehicles,
              minutes);
  std::printf("ingest: %zu accepted, %zu malformed, %zu untimely, %zu duplicate (%u threads)\n",
              ingest.accepted, ingest.rejected_malformed, ingest.rejected_untimely,
              ingest.rejected_duplicate, engine.worker_count());
  std::printf("%-12s %-8s %-8s %-10s\n", "unit-time", "VPs", "trusted", "grid-cells");
  for (const auto& shard : snap.shard_stats())
    std::printf("%-12lld %-8zu %-8zu %-10zu\n", static_cast<long long>(shard.unit_time),
                shard.vp_count, shard.trusted_count, shard.grid_cells);
  return 0;
}
