// viewmapd — the always-on ViewMap service daemon.
//
// Wires a ServiceLifecycle (ingest thread + checkpoint thread +
// investigation server + scrape endpoint + watchdog, src/daemon/) behind
// a config file and flags, installs SIGTERM/SIGINT handlers, and runs
// until signalled (or for --run_seconds, for harnesses).
//
// Usage:
//   viewmapd [--config=FILE] [--store=DIR] [--port=N] [--bind=ADDR]
//            [--workers=N] [--checkpoint_interval_ms=N] [--jitter=PCT]
//            [--keep_manifests=N] [--recover_seq=N] [--run_seconds=N]
//            [--soak_rate=N] [--unit_every_ms=N] [--investigate_every_ms=N]
//            [--cache_mb=N] [--failpoints=SPEC]
//
// --cache_mb bounds the digest-keyed investigation result cache
// (src/system/result_cache.h) in MiB; 0 disables it. Default 64.
//
// --failpoints (or the VIEWMAP_FAILPOINTS environment variable) arms
// fault-injection points for manual chaos: SPEC is the
// `point=action[@trigger][;…]` grammar of src/common/failpoint.h, e.g.
//   --failpoints='store.write.fsync=eio@every:3'
// The daemon is expected to SURVIVE whatever the spec throws at it —
// /healthz degrades during failure windows and recovers after.
//
// The config file is `key=value` per line (# comments); keys are the
// long flag names without the leading dashes. Flags override the file.
//
// Soak mode (--soak_rate=N > 0) generates N synthetic VPs/second of
// live ingest through the daemon's backpressured submit path, advances
// the trusted clock one unit-time every --unit_every_ms (compressed
// time: retention eviction runs continuously), and — when
// --investigate_every_ms > 0 — keeps concurrent investigations flowing.
// That is the workload the CI smoke and the soak harness run kill -9
// cycles against.
//
// Startup prints one parseable line per fact the harnesses assert on:
//   viewmapd: scrape listening on 127.0.0.1:PORT
//   viewmapd: recovered seq=N profiles=M      (or: fresh database)
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "attack/fake_vp.h"
#include "common/failpoint.h"
#include "common/rng.h"
#include "daemon/lifecycle.h"
#include "geo/geometry.h"

using namespace viewmap;

namespace {

struct Options {
  std::string store_dir;
  std::string bind = "127.0.0.1";
  std::uint64_t port = 0;
  std::uint64_t workers = 2;
  std::uint64_t checkpoint_interval_ms = 5000;
  std::uint64_t jitter = 10;
  std::uint64_t keep_manifests = 2;
  std::uint64_t recover_seq = 0;
  std::uint64_t run_seconds = 0;  ///< 0 = until SIGTERM/SIGINT
  std::uint64_t soak_rate = 0;    ///< synthetic VPs/second; 0 = off
  std::uint64_t unit_every_ms = 1000;
  std::uint64_t investigate_every_ms = 0;
  std::uint64_t cache_mb = 64;  ///< result-cache budget; 0 disables it
  std::uint64_t seed = 42;
  std::string failpoints;  ///< failpoint spec; empty = none
};

bool apply(Options& o, const std::string& key, const std::string& value) {
  const auto u64 = [&value] { return std::strtoull(value.c_str(), nullptr, 10); };
  if (key == "store") o.store_dir = value;
  else if (key == "bind") o.bind = value;
  else if (key == "port") o.port = u64();
  else if (key == "workers") o.workers = u64();
  else if (key == "checkpoint_interval_ms") o.checkpoint_interval_ms = u64();
  else if (key == "jitter") o.jitter = u64();
  else if (key == "keep_manifests") o.keep_manifests = u64();
  else if (key == "recover_seq") o.recover_seq = u64();
  else if (key == "run_seconds") o.run_seconds = u64();
  else if (key == "soak_rate") o.soak_rate = u64();
  else if (key == "unit_every_ms") o.unit_every_ms = u64();
  else if (key == "investigate_every_ms") o.investigate_every_ms = u64();
  else if (key == "cache_mb") o.cache_mb = u64();
  else if (key == "seed") o.seed = u64();
  else if (key == "failpoints") o.failpoints = value;
  else return false;
  return true;
}

bool load_config_file(Options& o, const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "viewmapd: cannot read config %s\n", path.c_str());
    return false;
  }
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    const auto eq = line.find('=');
    if (eq == std::string::npos || !apply(o, line.substr(0, eq), line.substr(eq + 1))) {
      std::fprintf(stderr, "viewmapd: bad config line: %s\n", line.c_str());
      return false;
    }
  }
  return true;
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--config=FILE] [--store=DIR] [--port=N] "
               "[--bind=ADDR]\n"
               "       [--workers=N] [--checkpoint_interval_ms=N] "
               "[--jitter=PCT]\n"
               "       [--keep_manifests=N] [--recover_seq=N] "
               "[--run_seconds=N]\n"
               "       [--soak_rate=N] [--unit_every_ms=N] "
               "[--investigate_every_ms=N] [--cache_mb=N] [--seed=N]\n"
               "       [--failpoints=point=action[@trigger][;...]]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  // First pass: config file only, so flags override it.
  for (int i = 1; i < argc; ++i)
    if (std::strncmp(argv[i], "--config=", 9) == 0 &&
        !load_config_file(opt, argv[i] + 9))
      return 2;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--config=", 9) == 0) continue;
    if (std::strncmp(arg, "--", 2) != 0) return usage(argv[0]);
    const char* eq = std::strchr(arg, '=');
    if (eq == nullptr || !apply(opt, std::string(arg + 2, eq), eq + 1))
      return usage(argv[0]);
  }

  daemon::DaemonConfig cfg;
  cfg.service.rsa_bits = 1024;  // synthetic identities; not a deployment CA
  cfg.server.workers = static_cast<std::size_t>(opt.workers);
  cfg.store_dir = opt.store_dir;
  cfg.store.keep_manifests = static_cast<std::size_t>(
      opt.keep_manifests == 0 ? 1 : opt.keep_manifests);
  cfg.recover_sequence = opt.recover_seq;
  cfg.checkpoint.interval = std::chrono::milliseconds(opt.checkpoint_interval_ms);
  cfg.checkpoint.jitter_pct = static_cast<unsigned>(opt.jitter);
  cfg.scrape.bind_address = opt.bind;
  cfg.scrape.port = static_cast<std::uint16_t>(opt.port);
  // --cache_mb=0 turns the digest-keyed result cache off entirely (a
  // zero-byte budget admits nothing; the service then skips the lookup).
  cfg.service.result_cache.capacity_bytes =
      static_cast<std::size_t>(opt.cache_mb) << 20;
  cfg.service.result_cache.enabled = opt.cache_mb > 0;

  // Chaos arming before any thread starts, so the very first checkpoint
  // cycle can already hit an armed point. Flag wins over environment.
  try {
    std::size_t armed = 0;
    if (!opt.failpoints.empty())
      armed = failpoint::arm_from_spec(opt.failpoints);
    else
      armed = failpoint::arm_from_env();
    if (armed > 0) {
      std::string names;
      for (const auto& p : failpoint::armed_points()) {
        if (!names.empty()) names += ',';
        names += p;
      }
      std::printf("viewmapd: failpoints armed: %s\n", names.c_str());
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "viewmapd: bad failpoint spec: %s\n", e.what());
    return 2;
  }

  daemon::ServiceLifecycle::install_signal_handlers();
  daemon::ServiceLifecycle daemon_instance(cfg);
  try {
    daemon_instance.start();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "viewmapd: start failed: %s\n", e.what());
    return 1;
  }

  std::printf("viewmapd: scrape listening on %s:%u\n", opt.bind.c_str(),
              static_cast<unsigned>(daemon_instance.scrape_port()));
  if (daemon_instance.recovered()) {
    // One parseable line per restart: which manifest the daemon resumed
    // from, what it cost, and how wide the recovery pool ran — the smoke
    // harness asserts the seq/rejected fields and the cold-restart time.
    const auto& r = daemon_instance.recovery();
    std::printf(
        "viewmapd: recovered seq=%llu profiles=%zu rejected=%zu "
        "segments=%zu (v1=%zu v2=%zu) threads=%u ms=%.1f\n",
        static_cast<unsigned long long>(r.sequence), r.profiles_loaded,
        r.profiles_rejected, r.segments_loaded, r.segments_v1, r.segments_v2,
        r.threads_used, static_cast<double>(r.total_us) / 1000.0);
  } else {
    std::printf("viewmapd: fresh database\n");
  }
  std::fflush(stdout);

  // ── main loop: soak load + signal poll ─────────────────────────────
  Rng rng(opt.seed);
  TimeSec unit = 0;
  sys::ViewMapService& svc = daemon_instance.service();
  // Seed the trusted clock so timeliness screening accepts the soak VPs.
  if (opt.soak_rate > 0)
    svc.register_trusted(attack::make_fake_profile(unit, {0, 0}, {800, 0}, rng));

  const auto started = std::chrono::steady_clock::now();
  auto next_unit = started + std::chrono::milliseconds(opt.unit_every_ms);
  auto next_investigation =
      started + std::chrono::milliseconds(
                    opt.investigate_every_ms ? opt.investigate_every_ms : 1);
  const auto tick = std::chrono::milliseconds(50);
  std::uint64_t submitted = 0;

  while (!daemon::ServiceLifecycle::shutdown_requested()) {
    const auto now = std::chrono::steady_clock::now();
    if (opt.run_seconds > 0 &&
        now - started >= std::chrono::seconds(opt.run_seconds))
      break;

    if (opt.soak_rate > 0) {
      // Catch the submission count up to rate × elapsed.
      const auto elapsed_ms =
          std::chrono::duration_cast<std::chrono::milliseconds>(now - started)
              .count();
      const std::uint64_t target =
          opt.soak_rate * static_cast<std::uint64_t>(elapsed_ms) / 1000;
      while (submitted < target) {
        const geo::Vec2 start{rng.uniform(-200.0, 1000.0),
                              rng.uniform(-60.0, 60.0)};
        const geo::Vec2 end{start.x + rng.uniform(200.0, 600.0),
                            start.y + rng.uniform(-20.0, 20.0)};
        (void)daemon_instance.ingest().submit(
            attack::make_fake_profile(unit, start, end, rng).serialize());
        ++submitted;
      }
      if (now >= next_unit) {
        unit += kUnitTimeSec;
        svc.register_trusted(
            attack::make_fake_profile(unit, {0, 0}, {800, 0}, rng));
        next_unit += std::chrono::milliseconds(opt.unit_every_ms);
      }
      if (opt.investigate_every_ms > 0 && now >= next_investigation &&
          svc.server() != nullptr) {
        (void)svc.server()->submit({{-100, -80}, {900, 80}}, unit);
        next_investigation += std::chrono::milliseconds(opt.investigate_every_ms);
      }
    }
    std::this_thread::sleep_for(tick);
  }

  std::printf("viewmapd: draining\n");
  std::fflush(stdout);
  daemon_instance.drain();
  if (!daemon_instance.stop()) {
    // All threads are joined and the store still holds its last sealed
    // manifest — but the final checkpoint failed, so data accepted since
    // then is NOT durable. That must be an operator-visible failure, not
    // a quiet exit 0.
    std::fprintf(stderr, "viewmapd: unclean stop: %s\n",
                 daemon_instance.last_error().c_str());
    std::printf("viewmapd: stopped UNCLEAN (submitted=%llu)\n",
                static_cast<unsigned long long>(submitted));
    return 1;
  }
  std::printf("viewmapd: stopped (submitted=%llu)\n",
              static_cast<unsigned long long>(submitted));
  return 0;
}
