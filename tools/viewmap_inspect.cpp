// viewmap_inspect — load a persisted database (a VMDB snapshot file or a
// segment-store checkpoint directory), print database statistics, and
// optionally run an investigation against it.
//
// Usage:
//   viewmap_inspect DB.vmdb                      # stats per unit-time
//   viewmap_inspect SEGMENT_DIR                  # same, from a checkpoint
//   viewmap_inspect DB.vmdb X Y RADIUS MINUTE    # investigate a site
//   viewmap_inspect --metrics SEGMENT_DIR ...    # also dump the metrics
//                                                  the load/recovery published
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <iostream>

#include "common/hex.h"
#include "obs/metrics.h"
#include "store/segment_store.h"
#include "store/vp_store.h"
#include "system/verifier.h"
#include "system/viewmap_graph.h"

using namespace viewmap;

int main(int argc, char** argv) {
  // Recovery and timeline instrumentation publish here when --metrics is
  // given; the registry is rendered after the census.
  const char* prog = argv[0];
  bool metrics_on = false;
  if (argc >= 2 && std::strcmp(argv[1], "--metrics") == 0) {
    metrics_on = true;
    --argc;
    ++argv;
  }
  if (argc != 2 && argc != 6) {
    std::fprintf(stderr,
                 "usage: %s [--metrics] DB.vmdb|SEGMENT_DIR [X Y RADIUS MINUTE]\n",
                 prog);
    return 2;
  }

  obs::MetricsRegistry registry;
  sys::VpDatabase db;
  try {
    if (std::filesystem::is_directory(argv[1])) {
      store::SegmentStoreConfig store_cfg;
      if (metrics_on) store_cfg.metrics = &registry;
      store::SegmentStore segments(argv[1], store_cfg);
      if (segments.latest_sequence() == 0) {
        // A directory with no manifest is far more likely a typo than a
        // store that never checkpointed (same guard as viewmap_convert).
        std::fprintf(stderr, "error: no checkpoint found in %s\n", argv[1]);
        return 1;
      }
      store::RecoveryStats rec;
      index::TimelineConfig index_cfg;
      if (metrics_on) index_cfg.metrics = &registry;
      db = segments.recover(vp::VpUploadPolicy{}, index_cfg, &rec);
      std::printf(
          "%s: checkpoint %llu, %zu segments, %zu VPs loaded (%zu rejected by "
          "the upload screen), %zu trusted%s\n",
          argv[1], static_cast<unsigned long long>(rec.sequence), rec.segments_loaded,
          rec.profiles_loaded, rec.profiles_rejected, rec.trusted_marked,
          rec.manifests_tried > 1 ? " [fell back past a damaged checkpoint]" : "");
    } else {
      store::LoadStats stats;
      db = store::load_database_file(argv[1], &stats);
      std::printf(
          "%s: %zu VPs loaded (%zu rejected by the upload screen), %zu trusted, "
          "%zu shard(s)\n",
          argv[1], stats.profiles_loaded, stats.profiles_rejected, stats.trusted_marked,
          stats.shards_loaded);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }

  // One pinned snapshot serves the census and the investigation below —
  // the read API; nothing here touches live shards.
  const sys::DbSnapshot snap = db.snapshot();
  std::printf("%-12s %-8s %-8s %-10s %-12s\n", "unit-time", "VPs", "trusted",
              "grid-cells", "grid-entries");
  for (const auto& shard : snap.shard_stats())
    std::printf("%-12lld %-8zu %-8zu %-10zu %-12zu\n",
                static_cast<long long>(shard.unit_time), shard.vp_count,
                shard.trusted_count, shard.grid_cells, shard.grid_entries);

  if (argc == 6) {
    const double x = std::atof(argv[2]);
    const double y = std::atof(argv[3]);
    const double r = std::atof(argv[4]);
    const TimeSec minute = std::atoll(argv[5]) * kUnitTimeSec;
    const geo::Rect site{{x - r, y - r}, {x + r, y + r}};

    const sys::ViewmapBuilder builder;
    const sys::Viewmap map = builder.build(snap, site, minute);
    const sys::Verifier verifier;
    const auto verdict = verifier.verify(map, site);
    std::printf("\ninvestigation @ (%.0f, %.0f) r=%.0f, minute %lld:\n", x, y, r,
                static_cast<long long>(minute / kUnitTimeSec));
    std::printf("  viewmap: %zu members, %zu viewlinks\n", map.size(),
                map.edge_count());
    std::printf("  site: %zu members, %zu legitimate, %zu rejected\n",
                verdict.site_members.size(), verdict.legitimate.size(),
                verdict.rejected.size());
    for (std::size_t i : verdict.legitimate)
      std::printf("    LEGITIMATE %s trust=%.5f\n",
                  to_hex(map.member(i).vp_id().bytes).substr(0, 16).c_str(),
                  verdict.ranks.scores[i]);
  }

  if (metrics_on) {
    std::printf("\n");
    registry.render(std::cout);
  }
  return 0;
}
