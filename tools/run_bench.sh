#!/usr/bin/env bash
# Build (Release) and run the index benchmark, leaving BENCH_index.json in
# the repository root so successive PRs accumulate a perf trajectory.
# Covers snapshot query latency vs db size, ingest throughput, the
# snapshot-queries-vs-concurrent-ingest scenario, the investigation
# server throughput scenario (worker pool vs live ingest + eviction; on a
# 1-core host the JSON carries a note: everything time-slices one CPU),
# viewmap construction (grid+CSR builder vs the naive O(n²) reference),
# incremental persistence (segment-store checkpoint vs full VMDB
# rewrite, plus cold-restart recovery), observability overhead
# (ingest with the metrics registry on vs off), and the daemon soak
# (ServiceLifecycle under kill -9 cycles: sustained ingest rate,
# checkpoint cadence, restart recovery latency), and the daemon chaos
# scenario (failpoint-injected ENOSPC/EIO/fsync/rename/torn-write
# failures through the checkpoint path: daemon survival, health
# degrade/recover, zero leaked temps, bit-for-bit recovery). Asserts
# that every
# viewmap_build row reports a bit-identical edge set between the two
# builders, that the checkpoint, recovery_v2, and daemon-soak scenarios'
# recovery invariant held (profiles recovered == manifest promise,
# single-attempt restarts), that the packed-v2 restart beats the recorded
# v1 baseline by ≥ 5× on 1M-VP runs, that viewmap_convert's v1 ↔ v2
# migration round trips are byte-identical, that the server_zipf
# result-cache scenario hit the cache (hit_rate > 0) with every hit
# bit-identical to a fresh build and the cache inside its byte bound,
# and that the server
# latency percentiles are monotone (p50 ≤ p90 ≤ p99); warns when the
# observability overhead exceeds its 3% budget. Finishes with a
# docs-link check: every per-module design doc under src/*/README.md
# must be referenced from ARCHITECTURE.md.
#
#   tools/run_bench.sh [extra bench_index flags, e.g. --max_vps=100000]
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${BUILD_DIR:-$repo_root/build}"

cmake -B "$build_dir" -S "$repo_root" -DCMAKE_BUILD_TYPE=Release
cmake --build "$build_dir" --target bench_index viewmap_convert viewmap_simulate -j "$(nproc)"

cd "$repo_root"
"$build_dir/bench/bench_index" "$@"
echo "BENCH_index.json -> $repo_root/BENCH_index.json"

# Edge-set assertion: the grid-accelerated builder must have produced the
# bit-identical CSR as the retained naive reference in every layout.
if ! grep -q '"viewmap_build"' BENCH_index.json; then
  echo "viewmap_build check: scenario missing from BENCH_index.json" >&2
  exit 1
fi
if grep -q '"edges_match": false' BENCH_index.json; then
  echo "viewmap_build check: grid and reference builders disagree on the edge set" >&2
  exit 1
fi
echo "viewmap_build check passed: grid edge sets match the O(n^2) reference"

# Recovery-invariant assertion: the checkpoint scenario must have restarted
# from its own segments and found exactly the profiles the manifest (and the
# pinned snapshot) promised — zero rejects, zero losses.
if ! grep -q '"checkpoint_incremental"' BENCH_index.json; then
  echo "checkpoint check: scenario missing from BENCH_index.json" >&2
  exit 1
fi
if grep -q '"recovered_matches": false' BENCH_index.json; then
  echo "checkpoint check: post-restart profile count does not match the manifest" >&2
  exit 1
fi
echo "checkpoint check passed: restart recovered exactly the checkpointed profiles"

# recovery_v2 assertion: the packed-codec restart must be present, must
# have recovered exactly the checkpointed profiles (the shared
# recovered_matches grep above already fails the run on false), and — on
# 1M-VP runs, where the recorded v1 baseline applies — must beat that
# baseline by at least 5x.
if ! grep -q '"recovery_v2"' BENCH_index.json; then
  echo "recovery_v2 check: scenario missing from BENCH_index.json" >&2
  exit 1
fi
baseline_speedup="$(sed -n 's/.*"speedup_vs_baseline": \([0-9.]*\).*/\1/p' BENCH_index.json)"
if [ -z "${baseline_speedup:-}" ]; then
  echo "recovery_v2 check: could not parse speedup_vs_baseline" >&2
  exit 1
fi
if awk -v s="$baseline_speedup" 'BEGIN { exit !(s == 0.0) }'; then
  echo "recovery_v2 check: non-1M run; baseline speedup not applicable (skipped)"
elif awk -v s="$baseline_speedup" 'BEGIN { exit !(s < 5.0) }'; then
  echo "recovery_v2 check: packed restart is only ${baseline_speedup}x the recorded v1 baseline (need >= 5x)" >&2
  exit 1
else
  echo "recovery_v2 check passed: packed restart is ${baseline_speedup}x the recorded v1 baseline"
fi

# Migration round trip: v1 -> v2 -> v1 through viewmap_convert must
# reproduce the store directory bit-for-bit (shard identity is codec-
# independent, segments are digest-named, manifests are deterministic).
roundtrip_dir="$(mktemp -d)"
trap 'rm -rf "$roundtrip_dir"' EXIT
"$build_dir/tools/viewmap_simulate" "$roundtrip_dir/seed.vmdb" 40 4 2000 7 >/dev/null
"$build_dir/tools/viewmap_convert" to-segments "$roundtrip_dir/seed.vmdb" "$roundtrip_dir/s_v2" >/dev/null
"$build_dir/tools/viewmap_convert" migrate "$roundtrip_dir/s_v2" "$roundtrip_dir/s_v1" v1 >/dev/null
"$build_dir/tools/viewmap_convert" migrate "$roundtrip_dir/s_v1" "$roundtrip_dir/s_v2rt" v2 >/dev/null
"$build_dir/tools/viewmap_convert" migrate "$roundtrip_dir/s_v2rt" "$roundtrip_dir/s_v1rt" v1 >/dev/null
if ! diff -r "$roundtrip_dir/s_v1" "$roundtrip_dir/s_v1rt" >/dev/null; then
  echo "migration check: v1 -> v2 -> v1 round trip is not byte-identical" >&2
  exit 1
fi
if ! diff -r "$roundtrip_dir/s_v2" "$roundtrip_dir/s_v2rt" >/dev/null; then
  echo "migration check: v2 -> v1 -> v2 round trip is not byte-identical" >&2
  exit 1
fi
echo "migration check passed: v1 <-> v2 round trips are byte-identical"

# Percentile-monotonicity assertion: the server scenario's serve-side
# latency histogram must report p50 ≤ p90 ≤ p99 — the exposition contract
# the log-linear bucket walk guarantees by construction.
if ! grep -q '"request_p50_us"' BENCH_index.json; then
  echo "percentile check: request_p50_us missing from BENCH_index.json" >&2
  exit 1
fi
read -r p50 p90 p99 < <(sed -n 's/.*"request_p50_us": \([0-9]*\), "request_p90_us": \([0-9]*\), "request_p99_us": \([0-9]*\).*/\1 \2 \3/p' BENCH_index.json)
if [ -z "${p50:-}" ] || [ -z "${p90:-}" ] || [ -z "${p99:-}" ]; then
  echo "percentile check: could not parse request percentiles" >&2
  exit 1
fi
if [ "$p50" -gt "$p90" ] || [ "$p90" -gt "$p99" ]; then
  echo "percentile check: not monotone (p50=$p50 p90=$p90 p99=$p99)" >&2
  exit 1
fi
echo "percentile check passed: p50=$p50 <= p90=$p90 <= p99=$p99 (us)"

# server_zipf assertion: the result-cache scenario must be present, the
# skewed request mix must actually hit the cache, every cache hit must
# have been bit-identical to a fresh build, and the cache stayed inside
# its configured byte bound.
if ! grep -q '"server_zipf"' BENCH_index.json; then
  echo "server_zipf check: scenario missing from BENCH_index.json" >&2
  exit 1
fi
zipf_row="$(grep -o '"server_zipf": {[^}]*}' BENCH_index.json)"
if ! echo "$zipf_row" | grep -q '"reports_match": true'; then
  echo "server_zipf check: a cache hit diverged from the fresh-build report" >&2
  exit 1
fi
if ! echo "$zipf_row" | grep -q '"bytes_ok": true'; then
  echo "server_zipf check: cache resident bytes exceeded the configured bound" >&2
  exit 1
fi
zipf_hit_rate="$(echo "$zipf_row" | sed -n 's/.*"hit_rate": \([0-9.]*\).*/\1/p')"
if [ -z "${zipf_hit_rate:-}" ] || awk -v h="$zipf_hit_rate" 'BEGIN { exit !(h <= 0.0) }'; then
  echo "server_zipf check: hit rate is ${zipf_hit_rate:-unparseable} (need > 0)" >&2
  exit 1
fi
zipf_speedup="$(echo "$zipf_row" | sed -n 's/.*"speedup_vs_nocache": \([0-9.]*\).*/\1/p')"
echo "server_zipf check passed: hit rate ${zipf_hit_rate}, ${zipf_speedup}x vs cache-off, reports bit-identical"

# Observability overhead: the scenario must be present; the 3% ingest
# budget is advisory (timing noise on CI runners), so exceeding it warns
# rather than fails.
if ! grep -q '"obs_overhead"' BENCH_index.json; then
  echo "obs_overhead check: scenario missing from BENCH_index.json" >&2
  exit 1
fi
overhead="$(sed -n 's/.*"overhead_pct": \(-\{0,1\}[0-9.]*\).*/\1/p' BENCH_index.json)"
if awk -v o="$overhead" 'BEGIN { exit !(o > 3.0) }'; then
  echo "obs_overhead WARNING: metered ingest is ${overhead}% slower than plain (budget 3%)" >&2
else
  echo "obs_overhead check passed: ${overhead}% (budget 3%)"
fi

# Daemon-soak assertion: the always-on service scenario must be present,
# and every kill -9 restart must have recovered the newest sealed manifest
# in a single attempt with zero rejects (the shared recovered_matches
# grep above already fails the run if the invariant broke).
if ! grep -q '"daemon_soak"' BENCH_index.json; then
  echo "daemon_soak check: scenario missing from BENCH_index.json" >&2
  exit 1
fi
echo "daemon_soak check passed: every kill -9 restart recovered the sealed manifest"

# Daemon-chaos assertion: the failpoint chaos scenario must be present, the
# daemon must have survived every injected-failure window (>= 20 injected
# I/O faults per run), health must have visibly degraded and recovered, no
# checkpoint temp file may have leaked, and every post-window recover must
# match the live shard digests bit-for-bit (the shared recovered_matches
# grep above fails the run on a digest mismatch).
if ! grep -q '"daemon_chaos"' BENCH_index.json; then
  echo "daemon_chaos check: scenario missing from BENCH_index.json" >&2
  exit 1
fi
chaos_row="$(grep -o '"daemon_chaos": {[^}]*}' BENCH_index.json)"
for flag in daemon_survived health_degraded_seen health_recovered clean_drains; do
  if ! echo "$chaos_row" | grep -q "\"$flag\": true"; then
    echo "daemon_chaos check: $flag is not true" >&2
    exit 1
  fi
done
if ! echo "$chaos_row" | grep -q '"leaked_temps": 0'; then
  echo "daemon_chaos check: checkpoint temp files leaked" >&2
  exit 1
fi
chaos_fires="$(echo "$chaos_row" | sed -n 's/.*"injected_failures": \([0-9]*\).*/\1/p')"
if [ -z "${chaos_fires:-}" ] || [ "$chaos_fires" -lt 20 ]; then
  echo "daemon_chaos check: only ${chaos_fires:-0} injected failures (need >= 20)" >&2
  exit 1
fi
echo "daemon_chaos check passed: daemon survived $chaos_fires injected I/O failures with zero leaked temps"

# Docs-link check: the architecture map must reach every module design doc.
missing=0
for doc in src/*/README.md; do
  if ! grep -qF "$doc" ARCHITECTURE.md; then
    echo "docs-link check: ARCHITECTURE.md does not reference $doc" >&2
    missing=1
  fi
done
if [ "$missing" -ne 0 ]; then
  exit 1
fi
echo "docs-link check passed: all src/*/README.md reachable from ARCHITECTURE.md"
