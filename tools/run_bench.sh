#!/usr/bin/env bash
# Build (Release) and run the index benchmark, leaving BENCH_index.json in
# the repository root so successive PRs accumulate a perf trajectory.
# Covers snapshot query latency vs db size, ingest throughput, and the
# snapshot-queries-vs-concurrent-ingest scenario (on a 1-core host the
# JSON carries a note: reader/writer time-slice one CPU).
#
#   tools/run_bench.sh [extra bench_index flags, e.g. --max_vps=100000]
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${BUILD_DIR:-$repo_root/build}"

cmake -B "$build_dir" -S "$repo_root" -DCMAKE_BUILD_TYPE=Release
cmake --build "$build_dir" --target bench_index -j "$(nproc)"

cd "$repo_root"
"$build_dir/bench/bench_index" "$@"
echo "BENCH_index.json -> $repo_root/BENCH_index.json"
