#!/usr/bin/env bash
# Compressed-time soak/crash smoke of the viewmapd daemon (well under
# 60 s end to end). Exercises the full service lifecycle the way an
# operator would see it:
#
#   1. start viewmapd on a fresh store with live soak ingest
#      (--soak_rate), a compressed trusted clock (--unit_every_ms), and
#      concurrent investigations;
#   2. scrape /metrics and /healthz over the daemon's own TCP endpoint
#      (plain bash /dev/tcp — no curl dependency);
#   3. kill -9 the process mid-checkpoint-cadence (200 ms interval, so
#      a hard kill lands between — or inside — cycles); the cadence must
#      have sealed packed .vseg2 segments (the daemon's default codec);
#   4. restart on the same store and assert the recovery line
#      (recovered seq=N ... rejected=0 ... ms=T), that the parallel v2
#      cold restart stayed inside its timing budget, and a green
#      /healthz;
#   5. SIGTERM the daemon and assert the clean drain+stop lines;
#   6. restart with --failpoints injecting an ENOSPC window into the
#      checkpoint write path: the daemon must survive, /healthz must go
#      503 (degraded) during the window and back to 200 after it, the
#      failure counters must show up on /metrics, no checkpoint temp
#      file may be left behind, and SIGTERM must still exit clean.
#
#   tools/daemon_smoke.sh [path/to/viewmapd]   (default build/tools/viewmapd)
set -euo pipefail

bin="${1:-build/tools/viewmapd}"
if [ ! -x "$bin" ]; then
  echo "daemon_smoke: $bin not found or not executable" >&2
  exit 1
fi

workdir="$(mktemp -d)"
pid=""
cleanup() {
  [ -n "$pid" ] && kill -9 "$pid" 2>/dev/null || true
  rm -rf "$workdir"
}
trap cleanup EXIT

store="$workdir/store"
log="$workdir/viewmapd.log"
port=""

start_daemon() {
  : > "$log"
  "$bin" --store="$store" --port=0 --workers=1 \
         --checkpoint_interval_ms=200 --jitter=0 \
         --soak_rate=400 --unit_every_ms=250 --investigate_every_ms=100 \
         "$@" \
         >"$log" 2>&1 &
  pid=$!
  port=""
  for _ in $(seq 1 100); do
    port="$(sed -n 's/^viewmapd: scrape listening on [0-9.]*:\([0-9]*\)$/\1/p' "$log" | head -n 1)"
    [ -n "$port" ] && return 0
    if ! kill -0 "$pid" 2>/dev/null; then break; fi
    sleep 0.1
  done
  echo "daemon_smoke: daemon did not announce its scrape endpoint" >&2
  cat "$log" >&2
  exit 1
}

# GET a path from the scrape endpoint; prints status line + headers +
# body. Runs the socket I/O in a command-substitution subshell and
# retries: on a busy 1-core host the daemon's accept loop can drop a
# connection mid-request, and a stray SIGPIPE must not kill the harness.
http_get() {
  local path="$1" out="" attempt
  for attempt in $(seq 1 25); do
    out="$( {
      exec 3<>"/dev/tcp/127.0.0.1/$port" &&
        printf 'GET %s HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n' \
          "$path" >&3 &&
        cat <&3
    } 2>/dev/null )" || out=""
    if [ -n "$out" ]; then
      printf '%s\n' "$out"
      return 0
    fi
    sleep 0.4
  done
  echo "daemon_smoke: scrape GET $path failed after 25 attempts" >&2
  return 1
}

# ── 1. fresh start under soak load ───────────────────────────────────
start_daemon
grep -q '^viewmapd: fresh database$' "$log" || {
  echo "daemon_smoke: expected a fresh database on first start" >&2
  cat "$log" >&2
  exit 1
}
echo "daemon_smoke: started (pid=$pid, scrape port=$port)"

# Let the soak loop ingest and the 200 ms checkpoint cadence seal a few
# manifests worth of live state.
sleep 3

# The daemon checkpoints with the packed v2 codec by default: sealed
# segments must be .vseg2 files.
ls "$store"/seg-*.vseg2 >/dev/null 2>&1 || {
  echo "daemon_smoke: no packed .vseg2 segments after checkpoint cadence" >&2
  ls "$store" >&2 || true
  exit 1
}
echo "daemon_smoke: packed v2 segments sealed under live ingest"

# ── 2. scrape the live daemon ────────────────────────────────────────
metrics="$(http_get /metrics)"
echo "$metrics" | grep -q '^HTTP/1.1 200 OK' ||
  { echo "daemon_smoke: /metrics did not return 200" >&2; exit 1; }
echo "$metrics" | grep -q 'viewmap_daemon_heartbeats_total' ||
  { echo "daemon_smoke: /metrics is missing daemon heartbeat counters" >&2; exit 1; }
echo "$metrics" | grep -q 'viewmap_daemon_checkpoints_total' ||
  { echo "daemon_smoke: /metrics is missing checkpoint counters" >&2; exit 1; }
health="$(http_get /healthz)"
echo "$health" | grep -q '^HTTP/1.1 200 OK' ||
  { echo "daemon_smoke: /healthz not green on a running daemon" >&2; exit 1; }
echo "$health" | grep -q '^state=running' ||
  { echo "daemon_smoke: /healthz body does not report state=running" >&2; exit 1; }
echo "daemon_smoke: /metrics + /healthz green under live ingest"

# ── 3. kill -9 mid-cadence ───────────────────────────────────────────
kill -9 "$pid"
wait "$pid" 2>/dev/null || true
echo "daemon_smoke: killed -9"

# ── 4. restart on the crashed store: the recovery invariant ──────────
start_daemon
recovered="$(grep '^viewmapd: recovered seq=' "$log" | head -n 1 || true)"
[ -n "$recovered" ] || {
  echo "daemon_smoke: restart did not recover from the crashed store" >&2
  cat "$log" >&2
  exit 1
}
echo "$recovered" | grep -q 'rejected=0' ||
  { echo "daemon_smoke: recovery rejected profiles: $recovered" >&2; exit 1; }
# Cold-restart timing: the recovery line reports ms=N.N for the parallel
# v2 restore; at smoke scale (a few seconds of soak) anything over 5 s
# means the packed read path regressed catastrophically.
recover_ms="$(echo "$recovered" | sed -n 's/.* ms=\([0-9.]*\)$/\1/p')"
[ -n "$recover_ms" ] || {
  echo "daemon_smoke: recovery line is missing the ms= timing: $recovered" >&2
  exit 1
}
awk -v ms="$recover_ms" 'BEGIN { exit !(ms < 5000.0) }' || {
  echo "daemon_smoke: cold restart took ${recover_ms} ms (budget 5000)" >&2
  exit 1
}
health="$(http_get /healthz)"
echo "$health" | grep -q '^HTTP/1.1 200 OK' ||
  { echo "daemon_smoke: /healthz not green after crash recovery" >&2; exit 1; }
echo "daemon_smoke: $recovered — /healthz green after kill -9 restart"

# ── 5. graceful shutdown: drain then stop ────────────────────────────
sleep 1
kill -TERM "$pid"
for _ in $(seq 1 100); do
  if ! kill -0 "$pid" 2>/dev/null; then break; fi
  sleep 0.1
done
if kill -0 "$pid" 2>/dev/null; then
  echo "daemon_smoke: daemon ignored SIGTERM" >&2
  kill -9 "$pid"
  exit 1
fi
wait "$pid" 2>/dev/null || true
pid=""
grep -q '^viewmapd: draining$' "$log" ||
  { echo "daemon_smoke: SIGTERM did not drain" >&2; cat "$log" >&2; exit 1; }
grep -q '^viewmapd: stopped' "$log" ||
  { echo "daemon_smoke: daemon did not report a clean stop" >&2; cat "$log" >&2; exit 1; }
echo "daemon_smoke: clean SIGTERM drain+stop"

# ── 6. injected-ENOSPC chaos cycle ───────────────────────────────────
# Restart on the same store with a failpoint window: the first 6
# checkpoint attempts hit ENOSPC on the segment-write path (the retry
# backoff stretches the window over a few seconds — long enough to
# observe). The daemon must survive it, /healthz must degrade to 503
# and recover to 200, and shutdown must still be clean.
start_daemon --failpoints='store.write.data=enospc@window:0:6'
grep -q '^viewmapd: failpoints armed: store.write.data$' "$log" || {
  echo "daemon_smoke: daemon did not announce the armed failpoint" >&2
  cat "$log" >&2
  exit 1
}

degraded=""
for _ in $(seq 1 60); do
  health="$(http_get /healthz)" || health=""
  if echo "$health" | grep -q '^HTTP/1.1 503'; then degraded="$health"; break; fi
  if ! kill -0 "$pid" 2>/dev/null; then
    echo "daemon_smoke: daemon died during the ENOSPC window" >&2
    cat "$log" >&2
    exit 1
  fi
  sleep 0.1
done
[ -n "$degraded" ] || {
  echo "daemon_smoke: /healthz never reported 503 during the ENOSPC window" >&2
  exit 1
}
echo "$degraded" | grep -q '^reason=checkpoint-failures:' ||
  { echo "daemon_smoke: degraded /healthz body is missing the reason= line" >&2; exit 1; }
echo "daemon_smoke: /healthz degraded (503) during the injected ENOSPC window"

recovered_health=""
for _ in $(seq 1 150); do
  health="$(http_get /healthz)" || health=""
  if echo "$health" | grep -q '^HTTP/1.1 200 OK'; then recovered_health="$health"; break; fi
  if ! kill -0 "$pid" 2>/dev/null; then
    echo "daemon_smoke: daemon died before recovering from the ENOSPC window" >&2
    cat "$log" >&2
    exit 1
  fi
  sleep 0.1
done
[ -n "$recovered_health" ] || {
  echo "daemon_smoke: /healthz never recovered to 200 after the ENOSPC window" >&2
  exit 1
}
metrics="$(http_get /metrics)"
echo "$metrics" | grep -q 'viewmap_daemon_checkpoint_failures_total{reason="enospc"} [1-9]' ||
  { echo "daemon_smoke: /metrics does not show the injected ENOSPC failures" >&2; exit 1; }
echo "daemon_smoke: /healthz back to 200, enospc failure counter visible"

kill -TERM "$pid"
for _ in $(seq 1 100); do
  if ! kill -0 "$pid" 2>/dev/null; then break; fi
  sleep 0.1
done
if kill -0 "$pid" 2>/dev/null; then
  echo "daemon_smoke: daemon ignored SIGTERM after the chaos cycle" >&2
  kill -9 "$pid"
  exit 1
fi
wait "$pid" 2>/dev/null || true
pid=""
grep -q '^viewmapd: stopped (submitted=' "$log" ||
  { echo "daemon_smoke: chaos cycle did not end in a clean stop" >&2; cat "$log" >&2; exit 1; }
if ls "$store"/*.tmp >/dev/null 2>&1; then
  echo "daemon_smoke: checkpoint temp files leaked in the store" >&2
  ls "$store" >&2
  exit 1
fi
echo "daemon_smoke: chaos cycle survived — clean stop, no leaked temps"
echo "daemon_smoke: PASS"
