// viewmap_metrics — drive a small synthetic ViewMap service end to end
// (ingest → investigation server → checkpoint) and print the full
// metrics exposition plus the slowest investigation traces.
//
// Usage:
//   viewmap_metrics [--vps=N] [--requests=R] [--workers=W] [--selftest]
//
// --selftest exercises the same workload but prints nothing except
// failures and exits non-zero when any observability invariant breaks
// (metric families present, p50 ≤ p90 ≤ p99, registry counters agreeing
// with the stats structs, at least one multi-span trace). CI's Release
// job runs it as a smoke test of the whole obs stack.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "attack/fake_vp.h"
#include "common/rng.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "store/segment_store.h"
#include "system/investigation_server.h"
#include "system/service.h"

using namespace viewmap;

namespace {

struct Options {
  std::size_t vps = 200;
  std::size_t requests = 8;
  std::size_t workers = 2;
  bool selftest = false;
};

bool parse_flag(const char* arg, const char* name, std::size_t& out) {
  const std::size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0) return false;
  out = static_cast<std::size_t>(std::strtoull(arg + len, nullptr, 10));
  return true;
}

int fail(const char* what) {
  std::fprintf(stderr, "selftest FAILED: %s\n", what);
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--selftest") == 0) {
      opt.selftest = true;
    } else if (parse_flag(argv[i], "--vps=", opt.vps) ||
               parse_flag(argv[i], "--requests=", opt.requests) ||
               parse_flag(argv[i], "--workers=", opt.workers)) {
    } else {
      std::fprintf(stderr,
                   "usage: %s [--vps=N] [--requests=R] [--workers=W] [--selftest]\n",
                   argv[0]);
      return 2;
    }
  }
  opt.vps = std::max<std::size_t>(opt.vps, 1);
  opt.requests = std::max<std::size_t>(opt.requests, 1);
  opt.workers = std::max<std::size_t>(opt.workers, 1);

  sys::ServiceConfig cfg;
  cfg.rsa_bits = 1024;  // synthetic workload, not a deployment
  sys::ViewMapService service(cfg);

  // Synthetic minute 0: one trusted patrol plus a cloud of anonymous VPs
  // in a band around it, a sprinkle of garbage for the reject counters.
  Rng rng(17);
  const TimeSec unit = 0;
  service.register_trusted(
      attack::make_fake_profile(unit, {0, 0}, {800, 0}, rng));
  for (std::size_t i = 0; i < opt.vps; ++i) {
    const geo::Vec2 start{rng.uniform(-200.0, 1000.0), rng.uniform(-60.0, 60.0)};
    const geo::Vec2 end{start.x + rng.uniform(200.0, 600.0),
                        start.y + rng.uniform(-20.0, 20.0)};
    service.upload_channel().submit(
        attack::make_fake_profile(unit, start, end, rng).serialize());
  }
  service.upload_channel().submit({0x00});        // malformed
  service.upload_channel().submit({0xff, 0xff});  // malformed
  const std::size_t accepted = service.ingest_uploads();

  // Investigation server: R sites across the band, served concurrently —
  // twice. The second pass repeats the same (site, minute) keys over the
  // unchanged shard, so the digest-keyed result cache serves it from
  // memory and the cache families below carry real hits.
  sys::ServerConfig server_cfg;
  server_cfg.workers = opt.workers;
  sys::InvestigationServer& server = service.start_server(server_cfg);
  std::size_t reports = 0;
  for (int pass = 0; pass < 2; ++pass) {
    std::vector<std::future<sys::InvestigationServer::Reports>> futures;
    futures.reserve(opt.requests);
    for (std::size_t i = 0; i < opt.requests; ++i) {
      const double cx = 100.0 + 700.0 * static_cast<double>(i) /
                                    static_cast<double>(opt.requests);
      futures.push_back(
          server.submit({{cx - 150, -80}, {cx + 150, 80}}, unit));
    }
    for (auto& fut : futures)
      if (fut.valid()) reports += fut.get().size();
  }
  service.stop_server();

  // One checkpoint so the store family reports too. Scratch directory;
  // durability is not the point of this tool.
  const auto dir =
      std::filesystem::temp_directory_path() / "viewmap_metrics_store";
  std::filesystem::remove_all(dir);
  store::SegmentStoreConfig store_cfg;
  store_cfg.fsync = false;
  store::SegmentStore store(dir.string(), store_cfg);
  (void)service.checkpoint(store);
  std::filesystem::remove_all(dir);

  if (opt.selftest) {
    const std::string text = service.metrics().render_text();
    for (const char* family :
         {"viewmap_ingest_accepted_total", "viewmap_ingest_batch_us",
          "viewmap_timeline_shards", "viewmap_server_submitted_total",
          "viewmap_server_request_us", "viewmap_investigate_us",
          "viewmap_cache_hits_total", "viewmap_cache_misses_total",
          "viewmap_cache_bytes", "viewmap_cache_hit_us",
          "viewmap_store_checkpoints_total"})
      if (text.find(family) == std::string::npos) return fail(family);

    const sys::ResultCache::Stats cache = service.result_cache().stats();
    if (cache.hits < opt.requests)
      return fail("second request pass did not hit the result cache");
    if (cache.misses == 0) return fail("first request pass never missed");
    const obs::Counter* hits_c =
        service.metrics().find_counter("viewmap_cache_hits_total");
    if (hits_c == nullptr || hits_c->value() != cache.hits)
      return fail("cache hit counter disagrees with ResultCache::stats()");

    const obs::Counter* c =
        service.metrics().find_counter("viewmap_ingest_accepted_total");
    if (c == nullptr || c->value() != service.ingest_totals().accepted ||
        c->value() != accepted)
      return fail("ingest counter disagrees with ingest_totals()");
    if (service.ingest_totals().rejected_malformed != 2)
      return fail("malformed rejects not counted");

    const obs::Histogram* h =
        service.metrics().find_histogram("viewmap_server_request_us");
    if (h == nullptr) return fail("request histogram missing");
    const obs::Histogram::Snapshot snap = h->snapshot();
    if (snap.count != 2 * opt.requests) return fail("request count mismatch");
    if (!(snap.percentile(0.5) <= snap.percentile(0.9) &&
          snap.percentile(0.9) <= snap.percentile(0.99)))
      return fail("request percentiles not monotone");

    bool multi_span = false;
    for (const obs::Trace& t : service.tracer().slowest())
      multi_span = multi_span || t.spans.size() >= 3;
    if (!multi_span) return fail("no trace with >= 3 spans");
    if (reports == 0) return fail("no investigation reports produced");
    std::printf("selftest OK: %zu VPs, %zu requests, %zu reports\n", accepted,
                opt.requests, reports);
    return 0;
  }

  service.dump_metrics(std::cout);

  const sys::ResultCache::Stats cache = service.result_cache().stats();
  std::printf("\nresult cache: %zu hits / %zu misses, %zu insertions, "
              "%zu evictions, %zu entries / %zu bytes resident\n",
              cache.hits, cache.misses, cache.insertions, cache.evictions,
              cache.resident_entries, cache.resident_bytes);

  std::printf("\nslowest investigations (%llu recorded, keeping %zu):\n",
              static_cast<unsigned long long>(service.tracer().recorded()),
              service.tracer().keep());
  for (const obs::Trace& trace : service.tracer().slowest()) {
    std::printf("  %8llu us  %s\n",
                static_cast<unsigned long long>(trace.total_us),
                trace.label.c_str());
    for (const obs::Span& span : trace.spans)
      std::printf("    %-14s +%-8llu %llu us\n", span.name.c_str(),
                  static_cast<unsigned long long>(span.begin_us),
                  static_cast<unsigned long long>(span.dur_us));
  }
  return 0;
}
