// viewmap_convert — lossless conversion between the two persistence
// formats: the legacy single-file VMDB container (store/vp_store) and the
// incremental segment-store checkpoint directory (store/segment_store).
//
// Usage:
//   viewmap_convert to-segments DB.vmdb SEGMENT_DIR   # vmdb → checkpoint
//   viewmap_convert to-vmdb SEGMENT_DIR DB.vmdb       # checkpoint → vmdb
//   viewmap_convert migrate SRC_DIR DST_DIR v1|v2     # re-encode segments
//
// Both directions round-trip byte-exactly: converting a VMDB file to a
// segment checkpoint and back reproduces the identical file (the suite
// asserts this in tests/segment_store_test.cpp). `to-segments` into a
// directory that already holds checkpoints seals a new incremental one —
// only shards that differ from the previous manifest are written.
//
// `migrate` recovers the newest checkpoint of SRC_DIR and seals it into
// DST_DIR with every segment rewritten in the requested codec (cross-
// codec reuse is disabled, so nothing is aliased from the old format).
// Because shard identity is codec-independent, v1 → v2 → v1 reproduces
// the original store directory bit-for-bit — run_bench.sh asserts that
// round trip on every benchmark run.
#include <cstdio>
#include <cstring>
#include <exception>

#include "store/segment_store.h"
#include "store/vp_store.h"

using namespace viewmap;

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s to-segments DB.vmdb SEGMENT_DIR\n"
               "       %s to-vmdb SEGMENT_DIR DB.vmdb\n"
               "       %s migrate SRC_DIR DST_DIR v1|v2\n",
               argv0, argv0, argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage(argv[0]);
  const bool to_segments = std::strcmp(argv[1], "to-segments") == 0;
  const bool to_vmdb = std::strcmp(argv[1], "to-vmdb") == 0;
  const bool migrate = std::strcmp(argv[1], "migrate") == 0;
  if ((to_segments || to_vmdb) && argc != 4) return usage(argv[0]);
  if (migrate && argc != 5) return usage(argv[0]);
  if (!to_segments && !to_vmdb && !migrate) return usage(argv[0]);

  try {
    if (migrate) {
      store::SegmentCodec codec;
      if (std::strcmp(argv[4], "v1") == 0) codec = store::SegmentCodec::kV1;
      else if (std::strcmp(argv[4], "v2") == 0) codec = store::SegmentCodec::kV2;
      else return usage(argv[0]);
      store::SegmentStore src(argv[2]);
      if (src.latest_sequence() == 0) {
        std::fprintf(stderr, "error: no checkpoint found in %s\n", argv[2]);
        return 1;
      }
      store::RecoveryStats rec;
      const auto db = src.recover(&rec);
      store::SegmentStoreConfig cfg;
      cfg.codec = codec;
      cfg.reuse_any_codec = false;  // a migration rewrites, never aliases
      store::SegmentStore dst(argv[3], cfg);
      const auto stats = dst.checkpoint(db.snapshot());
      std::printf(
          "%s checkpoint %llu (%zu v1 + %zu v2 segments) -> %s checkpoint "
          "%llu as %s: %zu/%zu segments written (%zu reused), %llu bytes\n",
          argv[2], static_cast<unsigned long long>(rec.sequence), rec.segments_v1,
          rec.segments_v2, argv[3], static_cast<unsigned long long>(stats.sequence),
          argv[4], stats.segments_written, stats.shards_total, stats.segments_reused,
          static_cast<unsigned long long>(stats.bytes_written));
      if (rec.manifests_tried > 1)
        std::printf("note: newest checkpoint was damaged; fell back %zu manifest(s)\n",
                    rec.manifests_tried - 1);
    } else if (to_segments) {
      store::LoadStats load;
      const auto db = store::load_database_file(argv[2], &load);
      store::SegmentStore segments(argv[3]);
      const auto stats = segments.checkpoint(db.snapshot());
      std::printf(
          "%s: %zu VPs (%zu rejected), %zu trusted -> %s checkpoint %llu: "
          "%zu/%zu segments written (%zu sealed by reference), %llu bytes\n",
          argv[2], load.profiles_loaded, load.profiles_rejected, load.trusted_marked,
          argv[3], static_cast<unsigned long long>(stats.sequence),
          stats.segments_written, stats.shards_total, stats.segments_reused,
          static_cast<unsigned long long>(stats.bytes_written));
    } else {
      store::SegmentStore segments(argv[2]);
      if (segments.latest_sequence() == 0) {
        // recover() would legitimately treat this as a fresh, empty store;
        // for a conversion tool a checkpoint-less source is a typo.
        std::fprintf(stderr, "error: no checkpoint found in %s\n", argv[2]);
        return 1;
      }
      store::RecoveryStats rec;
      const auto db = segments.recover(&rec);
      store::save_database_file(db, argv[3]);
      std::printf(
          "%s checkpoint %llu: %zu segments, %zu VPs (%zu rejected), "
          "%zu trusted -> %s\n",
          argv[2], static_cast<unsigned long long>(rec.sequence), rec.segments_loaded,
          rec.profiles_loaded, rec.profiles_rejected, rec.trusted_marked, argv[3]);
      if (rec.manifests_tried > 1)
        std::printf("note: newest checkpoint was damaged; fell back %zu manifest(s)\n",
                    rec.manifests_tried - 1);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
