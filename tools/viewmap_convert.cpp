// viewmap_convert — lossless conversion between the two persistence
// formats: the legacy single-file VMDB container (store/vp_store) and the
// incremental segment-store checkpoint directory (store/segment_store).
//
// Usage:
//   viewmap_convert to-segments DB.vmdb SEGMENT_DIR   # vmdb → checkpoint
//   viewmap_convert to-vmdb SEGMENT_DIR DB.vmdb       # checkpoint → vmdb
//
// Both directions round-trip byte-exactly: converting a VMDB file to a
// segment checkpoint and back reproduces the identical file (the suite
// asserts this in tests/segment_store_test.cpp). `to-segments` into a
// directory that already holds checkpoints seals a new incremental one —
// only shards that differ from the previous manifest are written.
#include <cstdio>
#include <cstring>
#include <exception>

#include "store/segment_store.h"
#include "store/vp_store.h"

using namespace viewmap;

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s to-segments DB.vmdb SEGMENT_DIR\n"
               "       %s to-vmdb SEGMENT_DIR DB.vmdb\n",
               argv0, argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 4) return usage(argv[0]);
  const bool to_segments = std::strcmp(argv[1], "to-segments") == 0;
  const bool to_vmdb = std::strcmp(argv[1], "to-vmdb") == 0;
  if (!to_segments && !to_vmdb) return usage(argv[0]);

  try {
    if (to_segments) {
      store::LoadStats load;
      const auto db = store::load_database_file(argv[2], &load);
      store::SegmentStore segments(argv[3]);
      const auto stats = segments.checkpoint(db.snapshot());
      std::printf(
          "%s: %zu VPs (%zu rejected), %zu trusted -> %s checkpoint %llu: "
          "%zu/%zu segments written (%zu sealed by reference), %llu bytes\n",
          argv[2], load.profiles_loaded, load.profiles_rejected, load.trusted_marked,
          argv[3], static_cast<unsigned long long>(stats.sequence),
          stats.segments_written, stats.shards_total, stats.segments_reused,
          static_cast<unsigned long long>(stats.bytes_written));
    } else {
      store::SegmentStore segments(argv[2]);
      if (segments.latest_sequence() == 0) {
        // recover() would legitimately treat this as a fresh, empty store;
        // for a conversion tool a checkpoint-less source is a typo.
        std::fprintf(stderr, "error: no checkpoint found in %s\n", argv[2]);
        return 1;
      }
      store::RecoveryStats rec;
      const auto db = segments.recover(&rec);
      store::save_database_file(db, argv[3]);
      std::printf(
          "%s checkpoint %llu: %zu segments, %zu VPs (%zu rejected), "
          "%zu trusted -> %s\n",
          argv[2], static_cast<unsigned long long>(rec.sequence), rec.segments_loaded,
          rec.profiles_loaded, rec.profiles_rejected, rec.trusted_marked, argv[3]);
      if (rec.manifests_tried > 1)
        std::printf("note: newest checkpoint was damaged; fell back %zu manifest(s)\n",
                    rec.manifests_tried - 1);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
