// Quickstart: the ViewMap protocol between two vehicles, end to end.
//
// Two dashcams drive down the same road for one minute. Each second they
// record a video chunk, advance the cascaded hash, broadcast a 72-byte
// view digest (VD) over DSRC, and screen/store the neighbor's VDs. At the
// minute boundary each compiles a View Profile (VP). The system then
// builds a viewmap from the two uploaded VPs, validates the two-way
// viewlink, runs TrustRank + Algorithm 1, and verifies the witness.
//
// Build & run:  ./examples/quickstart
#include <cstdio>

#include "common/hex.h"
#include "common/rng.h"
#include "system/verifier.h"
#include "system/viewmap_graph.h"
#include "system/vp_database.h"
#include "vp/video.h"
#include "vp/vp_builder.h"

using namespace viewmap;

int main() {
  Rng rng(2024);

  // ── Vehicle side ─────────────────────────────────────────────────────
  // Vehicle A (a police car in this demo) and vehicle B drive eastward,
  // 60 m apart, recording minute t = 0.
  vp::VpBuilder builder_a(0, rng);
  vp::VpBuilder builder_b(0, rng);
  vp::SyntheticVideoSource cam_a(1, vp::kRealisticBytesPerSecond / 1024);  // scaled
  vp::SyntheticVideoSource cam_b(2, vp::kRealisticBytesPerSecond / 1024);

  std::vector<std::uint8_t> chunk;
  for (int sec = 0; sec < kDigestsPerProfile; ++sec) {
    const geo::Vec2 pos_a{sec * 12.0, 0.0};
    const geo::Vec2 pos_b{sec * 12.0 + 60.0, 0.0};

    cam_a.generate_chunk(0, sec, chunk);
    const dsrc::ViewDigest vd_a = builder_a.tick(pos_a, chunk);
    cam_b.generate_chunk(0, sec, chunk);
    const dsrc::ViewDigest vd_b = builder_b.tick(pos_b, chunk);

    // DSRC broadcast, both directions (perfect channel in this demo).
    builder_a.accept_neighbor(vd_b, pos_a);
    builder_b.accept_neighbor(vd_a, pos_b);
  }

  vp::VpGenerationResult gen_a = builder_a.finish();
  vp::VpGenerationResult gen_b = builder_b.finish();
  std::printf("vehicle A: VP %s, %zu neighbor(s)\n",
              to_hex(gen_a.profile.vp_id().bytes).substr(0, 16).c_str(),
              gen_a.neighbors.size());
  std::printf("vehicle B: VP %s, %zu neighbor(s)\n",
              to_hex(gen_b.profile.vp_id().bytes).substr(0, 16).c_str(),
              gen_b.neighbors.size());
  std::printf("VD wire size: %zu bytes, VP payload: %zu bytes (paper: 72 / 4576+8)\n",
              dsrc::kViewDigestWireSize, gen_a.profile.serialize().size());

  // ── System side ──────────────────────────────────────────────────────
  sys::VpDatabase db;
  db.upload_trusted(gen_a.profile);  // police car: trusted VP
  db.upload(gen_b.profile);          // anonymous upload

  const geo::Rect site{{500, -100}, {800, 100}};  // where the incident was
  const sys::ViewmapBuilder builder;
  // Reads go through an immutable snapshot; the viewmap pins it, so the
  // investigation stays valid whatever the live database does next.
  const sys::Viewmap map = builder.build(db.snapshot(), site, 0);
  std::printf("viewmap: %zu members, %zu viewlink(s)\n", map.size(), map.edge_count());

  const sys::Verifier verifier;
  const auto verdict = verifier.verify(map, site);
  std::printf("site members: %zu, legitimate: %zu, rejected: %zu\n",
              verdict.site_members.size(), verdict.legitimate.size(),
              verdict.rejected.size());
  for (std::size_t i : verdict.legitimate)
    std::printf("  LEGITIMATE %s  trust=%.4f\n",
                to_hex(map.member(i).vp_id().bytes).substr(0, 16).c_str(),
                verdict.ranks.scores[i]);
  return 0;
}
