// Attack & defense demo: colluding fake-VP injection vs Algorithm 1.
//
// Builds a synthetic 1000-VP viewmap (as in §6.3.1), lets colluding
// attackers inject fake VPs — chained from their own legitimate VPs into
// the investigation site, since two-way validation forbids edges to
// honest VPs — and shows how TrustRank + Algorithm 1 reject the fake
// layer. Sweeps the attacker's hop distance to the trusted VP to
// reproduce the Fig. 12 effect in miniature.
//
// Build & run:  ./examples/attack_defense
#include <cstdio>

#include "attack/experiments.h"

using namespace viewmap;

int main() {
  Rng rng(17);
  attack::GeometricConfig geo_cfg;
  geo_cfg.legit_count = 1000;

  // One annotated trial, close up.
  attack::AttackGraph g = attack::make_geometric_viewmap(geo_cfg, rng);
  attack::AttackPlan plan;
  plan.fake_count = 2000;  // 200% of the legitimate population
  plan.attacker_count = 50;
  plan.hop_bucket = {{6, 10}};
  const auto attackers = attack::inject_fakes(g, plan, geo_cfg.link_radius_m, rng);
  std::printf("viewmap: %zu honest VPs + %zu fakes by %zu colluders (hops 6-10)\n",
              geo_cfg.legit_count, g.size() - geo_cfg.legit_count,
              attackers ? attackers->size() : 0);

  const auto outcome = attack::judge(g, {});
  std::printf("site: %zu honest, %zu fake claims → fakes accepted: %zu (%s)\n\n",
              outcome.site_honest, outcome.site_fakes, outcome.fakes_accepted,
              outcome.correct ? "verification CORRECT" : "verification FOOLED");

  // Fig. 12 in miniature: accuracy vs attacker distance, 500% fakes.
  std::printf("accuracy vs attacker hop-distance to the trusted VP (500%% fakes):\n");
  sys::TrustRankConfig tr;
  tr.tolerance = 1e-10;
  for (const auto& [lo, hi] : std::vector<std::pair<std::size_t, std::size_t>>{
           {1, 5}, {6, 10}, {11, 15}, {16, 20}}) {
    attack::AttackPlan p;
    p.fake_count = 5000;
    p.attacker_count = 50;
    p.hop_bucket = {{lo, hi}};
    const double acc = attack::geometric_accuracy(geo_cfg, p, tr, /*runs=*/15, rng);
    std::printf("  hops %2zu-%-2zu : %5.1f%%\n", lo, hi, 100.0 * acc);
  }
  std::printf("\nPaper reference (Fig. 12): ≈83%% at worst in the nearest bucket,\n"
              "≈99-100%% everywhere else; more fakes only dilute the attack.\n");
  return 0;
}
