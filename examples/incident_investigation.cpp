// Incident investigation: the full public-service pipeline on simulated
// city traffic (the workload the paper's introduction motivates).
//
// 1. A fleet drives a synthetic city for several minutes; every vehicle
//    records video, exchanges VDs over DSRC, compiles actual VPs and
//    fabricates guard VPs.
// 2. All VPs are uploaded over the anonymous channel; vehicle 0 is a
//    police car whose VPs register as trusted.
// 3. An incident is declared at a time/place; the system builds the
//    viewmap, verifies VPs, and posts video requests by VP identifier.
// 4. A witness notices the posted id, uploads its video; the system
//    replays the cascaded hash chain; human review approves; the owner
//    claims untraceable cash via blind signatures and spends it once.
// 5. The investigation *server*: the same pipeline as a public service —
//    a worker pool drains a bounded queue of concurrent investigation
//    requests while the anonymous upload stream keeps ingesting.
//
// Build & run:  ./examples/incident_investigation
#include <cstdio>
#include <future>
#include <vector>

#include "common/hex.h"
#include "reward/client.h"
#include "sim/simulator.h"
#include "system/investigation_server.h"
#include "system/service.h"

using namespace viewmap;

int main() {
  // ── 1. simulate the city ────────────────────────────────────────────
  Rng city_rng(7);
  road::GridCityConfig city_cfg;
  city_cfg.extent_m = 1500;
  city_cfg.block_m = 250;
  city_cfg.building_fill = 0.6;
  auto city = road::make_grid_city(city_cfg, city_rng);

  sim::SimConfig sim_cfg;
  sim_cfg.seed = 11;
  sim_cfg.vehicle_count = 25;
  sim_cfg.minutes = 3;
  sim_cfg.video_bytes_per_second = 64;
  sim_cfg.keep_videos = true;
  sim::TrafficSimulator simulator(std::move(city), sim_cfg);
  const sim::SimResult world = simulator.run();
  std::printf("simulated %d vehicles × %d min: %zu VPs (%zu actual + guards)\n",
              sim_cfg.vehicle_count, sim_cfg.minutes, world.profiles.size(),
              world.owned.size());

  // ── 2. anonymous upload ─────────────────────────────────────────────
  sys::ServiceConfig svc_cfg;
  svc_cfg.rsa_bits = 1024;  // demo-sized key
  sys::ViewMapService service(svc_cfg);
  for (const auto& rec : world.profiles) {
    if (!rec.guard && rec.creator == 0)
      service.register_trusted(rec.profile);
    else
      service.upload_channel().submit(rec.profile.serialize());
  }
  const std::size_t accepted = service.ingest_uploads();
  std::printf("anonymous channel delivered %zu VPs into the database\n", accepted);

  // ── 3. investigate an incident near vehicle 7 at minute 1 ──────────
  const sim::OwnedVp* witness = nullptr;
  for (const auto& o : world.owned)
    if (o.vehicle == 7 && o.unit_time == 60) witness = &o;
  // find() hands back an owning reference — valid however long we keep
  // it, even across ingest batches and retention eviction.
  const auto witness_vp = service.database().find(witness->vp_id);
  const geo::Vec2 c = witness_vp->location_at(30);
  const geo::Rect site{{c.x - 120, c.y - 120}, {c.x + 120, c.y + 120}};
  std::printf("incident at (%.0f, %.0f), minute 1 — investigating…\n", c.x, c.y);

  const auto report = service.investigate(site, 60);
  std::printf("viewmap: %zu members, %zu viewlinks; %zu in site, %zu legitimate, "
              "%zu rejected; %zu videos solicited\n",
              report.viewmap.size(), report.viewmap.edge_count(),
              report.verification.site_members.size(),
              report.verification.legitimate.size(),
              report.verification.rejected.size(), report.solicited.size());

  // ── 4. witness answers the solicitation ────────────────────────────
  const auto pending = service.pending_video_requests({{witness->vp_id}});
  if (pending.empty()) {
    std::printf("witness VP was not solicited (outside the verified set)\n");
    return 0;
  }
  const vp::RecordedVideo* video = nullptr;
  for (std::size_t i = 0; i < world.owned.size(); ++i)
    if (world.owned[i].vehicle == 7 && world.owned[i].unit_time == 60)
      video = &world.videos[i];
  if (!service.submit_video(witness->vp_id, *video)) {
    std::printf("video failed hash-chain validation (unexpected)\n");
    return 1;
  }
  std::printf("video %s uploaded and hash-chain validated; awaiting review\n",
              to_hex(witness->vp_id.bytes).substr(0, 16).c_str());

  service.conclude_review(witness->vp_id, /*approved=*/true, /*units=*/3);
  const auto units = service.begin_reward_claim(witness->vp_id, witness->secret);
  reward::RewardClient client(service.cash_public_key(), 99);
  const auto signatures =
      service.sign_reward_batch(witness->vp_id, client.prepare(static_cast<std::size_t>(*units)));
  const auto cash = client.unblind_batch(*signatures);
  std::printf("reward: %zu unit(s) of untraceable cash issued\n", cash.size());
  for (const auto& token : cash)
    std::printf("  spend → %s\n", reward::to_string(service.bank().redeem(token)));
  std::printf("  spend again → %s (double-spend defense)\n",
              reward::to_string(service.bank().redeem(cash.front())));

  // ── 5. concurrent investigations through the server ────────────────
  // A live deployment doesn't investigate one incident at a time: the
  // InvestigationServer puts a worker pool in front of the pipeline.
  // submit()/submit_period() enqueue onto a bounded MPMC queue and hand
  // back a std::future; each worker pins one immutable DbSnapshot per
  // request batch and runs viewmap → verification → solicitation over
  // it, so investigations run concurrently with each other AND with the
  // ingest loop below (eviction can never invalidate a report — the
  // report's viewmap pins its shard).
  sys::ServerConfig server_cfg;
  server_cfg.workers = 2;          // investigation worker pool
  server_cfg.queue_capacity = 64;  // bounded; when full, submit() blocks
                                   // (OverflowPolicy::kReject fails fast)
  server_cfg.batch_max = 4;        // serve bursts from one pinned snapshot
  auto& server = service.start_server(server_cfg);

  // Queue the incident's whole period plus each minute individually —
  // four requests in flight at once.
  std::vector<std::future<sys::InvestigationServer::Reports>> minutes;
  for (TimeSec m = 0; m < 3; ++m)
    minutes.push_back(server.submit(site, m * 60));
  auto period = server.submit_period(site, 0, 3 * 60);

  // The upload stream never pauses meanwhile: a re-delivery burst lands
  // mid-investigation (the §4 screens drop every duplicate on arrival).
  for (const auto& rec : world.profiles)
    if (rec.guard || rec.creator != 0)
      service.upload_channel().submit(rec.profile.serialize());
  const std::size_t redelivered = service.ingest_uploads();

  const auto period_reports = period.get();
  std::printf("server: period [0,3min) → %zu reports while ingest screened %zu "
              "re-deliveries (accepted %zu)\n",
              period_reports.size(), world.profiles.size() - 3, redelivered);
  for (TimeSec m = 0; m < 3; ++m) {
    const auto reports = minutes[static_cast<std::size_t>(m)].get();
    if (reports.empty()) {
      std::printf("  minute %lld: no trust seed, skipped\n", static_cast<long long>(m));
      continue;
    }
    std::printf("  minute %lld: viewmap %zu members, %zu legitimate, %zu solicited\n",
                static_cast<long long>(m), reports[0].viewmap.size(),
                reports[0].verification.legitimate.size(),
                reports[0].solicited.size());
  }
  const auto stats = server.stats();
  std::printf("server stats: %zu requests, %zu reports, %zu snapshots over %zu "
              "batches, peak queue %zu\n",
              stats.completed, stats.reports, stats.snapshots, stats.batches,
              stats.peak_queue);
  service.stop_server();
  return 0;
}
