// Parked witness: parking-mode dashcams as stationary evidence sources.
//
// §2 notes that many dashcams keep recording while parked (motion-trigger
// parking mode). ViewMap handles this for free: a parked vehicle still
// broadcasts VDs, still collects neighbors' VDs, and its VPs join
// viewmaps like any other. This example stages a hit-and-run in front of
// a parked car: two vehicles drive past (one is the offender), the parked
// witness records everything, and the investigation finds it.
//
// Build & run:  ./examples/parked_witness
#include <cstdio>

#include "common/hex.h"
#include "sim/simulator.h"
#include "system/service.h"

using namespace viewmap;

int main() {
  // Street scene: a parked witness at the curb, a police car on patrol
  // two blocks over, and two vehicles driving down the street.
  sim::SimConfig cfg;
  cfg.seed = 31;
  cfg.minutes = 1;
  cfg.guards_enabled = false;
  cfg.keep_videos = true;
  cfg.video_bytes_per_second = 64;

  road::CityMap street;
  street.bounds = {{-100, -400}, {1200, 400}};
  std::vector<sim::VehicleMotion> fleet;
  fleet.push_back(sim::VehicleMotion::stationary({400, 8}));  // 0: parked witness
  fleet.push_back(sim::VehicleMotion::scripted({{0, 0}, {1200, 0}}, 15.0));   // 1: offender
  fleet.push_back(sim::VehicleMotion::scripted({{60, 0}, {1260, 0}}, 15.0));  // 2: other car
  fleet.push_back(sim::VehicleMotion::scripted({{350, 300}, {350, -300}}, 10.0));  // 3: police

  sim::TrafficSimulator simulator(std::move(street), cfg, std::move(fleet));
  const sim::SimResult world = simulator.run();

  sys::ServiceConfig svc_cfg;
  svc_cfg.rsa_bits = 1024;
  sys::ViewMapService service(svc_cfg);
  for (const auto& rec : world.profiles) {
    if (rec.creator == 3)
      service.register_trusted(rec.profile);  // police car
    else
      service.upload_channel().submit(rec.profile.serialize());
  }
  service.ingest_uploads();
  std::printf("database: %zu VPs (%zu trusted)\n", service.database().size(),
              service.database().trusted_count());

  // The incident: something happened right in front of the parked car.
  const geo::Rect site{{300, -60}, {500, 60}};
  const auto report = service.investigate(site, 0);
  std::printf("viewmap: %zu members, %zu viewlinks; %zu legitimate in site\n",
              report.viewmap.size(), report.viewmap.edge_count(),
              report.verification.legitimate.size());

  const auto& witness = world.owned[0];  // vehicle 0's minute-0 VP
  const bool solicited =
      !service.pending_video_requests({{witness.vp_id}}).empty();
  std::printf("parked witness VP %s solicited: %s\n",
              to_hex(witness.vp_id.bytes).substr(0, 16).c_str(),
              solicited ? "YES" : "no");
  if (solicited && service.submit_video(witness.vp_id, world.videos[0]))
    std::printf("parked witness video validated via cascaded hash chain — "
                "evidence secured.\n");
  return 0;
}
