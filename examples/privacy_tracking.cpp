// Privacy demo: what the system-as-tracker sees, with and without guards.
//
// Simulates a fleet, then runs the §6.2.2 strong adversary over the VP
// database twice — once on actual VPs only (the "no guard" baseline) and
// once on the real database including guard VPs — and prints location
// entropy / tracking success per minute of pursuit (Figs. 10 and 11).
//
// Build & run:  ./examples/privacy_tracking
#include <cstdio>

#include "sim/simulator.h"
#include "track/privacy_eval.h"

using namespace viewmap;

int main() {
  Rng city_rng(3);
  road::GridCityConfig city_cfg;
  city_cfg.extent_m = 2500;
  city_cfg.block_m = 250;
  city_cfg.building_fill = 0.5;
  auto city = road::make_grid_city(city_cfg, city_rng);

  sim::SimConfig cfg;
  cfg.seed = 5;
  cfg.vehicle_count = 40;
  cfg.minutes = 8;
  cfg.video_bytes_per_second = 16;
  sim::TrafficSimulator simulator(std::move(city), cfg);
  const sim::SimResult world = simulator.run();

  std::size_t guards = 0;
  for (const auto& rec : world.profiles) guards += rec.guard;
  std::printf("fleet: %d vehicles × %d min → %zu actual VPs + %zu guard VPs\n",
              cfg.vehicle_count, cfg.minutes, world.profiles.size() - guards, guards);
  std::printf("avg neighbors per vehicle-minute: %.1f\n\n",
              world.neighbors_per_vehicle_minute.mean());

  const auto with_guards = track::evaluate_privacy(world, /*include_guards=*/true);
  const auto without = track::evaluate_privacy(world, /*include_guards=*/false);

  std::printf("%-8s | %-28s | %-28s\n", "", "with guard VPs", "without guard VPs");
  std::printf("%-8s | %-13s %-14s | %-13s %-14s\n", "minute", "entropy(bits)",
              "track-success", "entropy(bits)", "track-success");
  for (std::size_t t = 0; t < with_guards.minutes.size(); ++t)
    std::printf("%-8.0f | %-13.2f %-14.3f | %-13.2f %-14.3f\n",
                with_guards.minutes[t], with_guards.mean_entropy[t],
                with_guards.mean_success[t], without.mean_entropy[t],
                without.mean_success[t]);

  std::printf("\nPaper reference (§8): success < 0.1 within ~3 min with guards;\n"
              "stays > 0.9 after 20 min without them.\n");
  return 0;
}
