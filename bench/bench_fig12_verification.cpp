// Fig. 12: verification accuracy vs attackers' positions.
//
// Synthetic geometric viewmaps of 1000 legitimate VPs (as in §6.3.1);
// colluding attackers whose legitimate VPs sit at a controlled hop
// distance from the trusted VP inject fake VPs outnumbering the
// legitimate ones by 100..500%. Accuracy = fraction of trials where no
// fake VP survives Algorithm 1 inside the investigation site.
//
// Paper shape: ≈99-100% everywhere except the nearest bucket (83% at
// worst); *more* fakes dilute per-fake trust and help the defender
// (Corollary 1).
#include "attack/experiments.h"
#include "bench_util.h"

using namespace viewmap;

int main(int argc, char** argv) {
  bench::header("Fig. 12", "Verification accuracy vs attackers' hop distance");
  const int runs = bench::int_flag(argc, argv, "runs", 30);
  std::printf("(%d trials per cell; paper uses 1000 — pass --runs=N to scale)\n\n",
              runs);

  attack::GeometricConfig geo_cfg;  // 1000 legit VPs
  sys::TrustRankConfig tr;
  tr.tolerance = 1e-10;

  const std::vector<std::pair<std::size_t, std::size_t>> buckets{
      {1, 5}, {6, 10}, {11, 15}, {16, 20}, {21, 25}};
  const std::vector<int> fake_pct{100, 200, 300, 400, 500};

  std::printf("%-12s", "hops\\fakes");
  for (int pct : fake_pct) std::printf(" %6d%%", pct);
  std::printf("\n");

  Rng rng(42);
  for (const auto& bucket : buckets) {
    std::printf("%3zu - %-6zu", bucket.first, bucket.second);
    for (int pct : fake_pct) {
      attack::AttackPlan plan;
      plan.fake_count = geo_cfg.legit_count * static_cast<std::size_t>(pct) / 100;
      plan.attacker_count = 20;  // a small colluding crew
      plan.hop_bucket = bucket;
      const double acc = attack::geometric_accuracy(geo_cfg, plan, tr, runs, rng);
      std::printf(" %6.1f%%", 100.0 * acc);
    }
    std::printf("\n");
  }
  std::printf("\npaper reference: ~83%% worst in bucket 1-5, ≈99-100%% elsewhere.\n");
  return 0;
}
