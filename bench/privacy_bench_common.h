// Shared simulation driver for the Fig. 10 / Fig. 11 privacy benches
// (and their large-scale Fig. 22a/b siblings).
#pragma once

#include <cstdio>
#include <utility>
#include <vector>

#include "road/city.h"
#include "sim/simulator.h"
#include "track/privacy_eval.h"

namespace viewmap::bench {

struct PrivacyRun {
  int vehicles = 0;
  track::PrivacyCurves with_guards;
  track::PrivacyCurves without_guards;
};

/// Simulates `vehicles` over an `extent_m` square city for `minutes` and
/// evaluates the §6.2.2 tracker both ways.
inline PrivacyRun run_privacy(int vehicles, double extent_m, int minutes,
                              std::uint64_t seed) {
  Rng city_rng(seed);
  road::GridCityConfig ccfg;
  ccfg.extent_m = extent_m;
  ccfg.block_m = 250.0;
  ccfg.building_fill = 0.5;
  auto city = road::make_grid_city(ccfg, city_rng);

  sim::SimConfig cfg;
  cfg.seed = seed + 1;
  cfg.vehicle_count = vehicles;
  cfg.minutes = minutes;
  cfg.video_bytes_per_second = 16;
  sim::TrafficSimulator sim(std::move(city), cfg);
  const sim::SimResult result = sim.run();

  PrivacyRun run;
  run.vehicles = vehicles;
  run.with_guards = track::evaluate_privacy(result, true);
  run.without_guards = track::evaluate_privacy(result, false);
  return run;
}

inline void print_curves(const std::vector<PrivacyRun>& runs, bool entropy) {
  std::printf("%-8s", "minute");
  for (const auto& r : runs) std::printf(" n=%-9d", r.vehicles);
  std::printf(" %-12s\n", "no-guard(n0)");
  const std::size_t T = runs.front().with_guards.minutes.size();
  for (std::size_t t = 0; t < T; ++t) {
    std::printf("%-8.0f", runs.front().with_guards.minutes[t]);
    for (const auto& r : runs)
      std::printf(" %-11.3f", entropy ? r.with_guards.mean_entropy[t]
                                      : r.with_guards.mean_success[t]);
    std::printf(" %-12.3f\n", entropy ? runs.front().without_guards.mean_entropy[t]
                                      : runs.front().without_guards.mean_success[t]);
  }
}

}  // namespace viewmap::bench
