// Fig. 10: location entropy over tracking time, n = 50..200 vehicles on a
// 4×4 km² map (ns-3 in the paper; our mobility+DSRC co-simulator here).
//
// Paper shape: entropy grows with driving time and density; ≈3 bits by
// 10 min even in the sparse n = 50 case; near zero without guard VPs.
#include "bench_util.h"
#include "privacy_bench_common.h"

using namespace viewmap;

int main(int argc, char** argv) {
  bench::header("Fig. 10", "Location entropy under tracking (4x4 km map)");
  const int minutes = bench::int_flag(argc, argv, "minutes", 12);
  std::printf("(%d simulated minutes per density; paper runs 20)\n\n", minutes);

  std::vector<bench::PrivacyRun> runs;
  for (int n : {50, 100, 150, 200})
    runs.push_back(bench::run_privacy(n, 4000.0, minutes, 1000 + static_cast<std::uint64_t>(n)));

  std::printf("mean location entropy (bits) vs minutes tracked:\n");
  bench::print_curves(runs, /*entropy=*/true);
  std::printf("\npaper reference: ~3 bits at 10 min for n=50, more with density; "
              "near 0 without guards.\n");
  return 0;
}
