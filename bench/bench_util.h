// Shared helpers for the table/figure reproduction binaries.
//
// Every bench prints: a header naming the paper artifact it regenerates,
// the parameters used (including any scale-down vs the paper), the
// reproduced rows/series, and the paper's reference values for shape
// comparison. EXPERIMENTS.md records paper-vs-measured per artifact.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

namespace viewmap::bench {

inline void header(const char* artifact, const char* title) {
  std::printf("\n================================================================\n");
  std::printf("%s — %s\n", artifact, title);
  std::printf("================================================================\n");
}

inline void note(const char* text) { std::printf("%s\n", text); }

/// `--runs=N` / `--scale=N` style integer flag, with default.
inline int int_flag(int argc, char** argv, const char* name, int fallback) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i)
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0)
      return std::atoi(argv[i] + prefix.size());
  return fallback;
}

inline bool bool_flag(int argc, char** argv, const char* name) {
  const std::string flag = std::string("--") + name;
  for (int i = 1; i < argc; ++i)
    if (flag == argv[i]) return true;
  return false;
}

}  // namespace viewmap::bench
