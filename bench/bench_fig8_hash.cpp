// Fig. 8: hash generation times — normal (whole-prefix) vs cascaded.
//
// Paper: on a Raspberry Pi, rehashing the whole 50 MB/min video misses
// the 1-second VD deadline past ~20 s of recording (4.32 s at the end),
// while the cascaded hash stays constant (worst 0.13 s). We measure both
// schemes at the paper's real data rate (~873 KiB recorded per second)
// and print the same series. Host CPUs are faster than a Pi; the shape —
// linear growth vs flat — is the claim.
#include <chrono>
#include <vector>

#include "bench_util.h"
#include "crypto/hash_chain.h"
#include "dsrc/view_digest.h"
#include "vp/video.h"
#include "vp/view_profile.h"

using namespace viewmap;
using Clock = std::chrono::steady_clock;

int main(int argc, char** argv) {
  bench::header("Fig. 8", "Hash generation times (normal vs cascaded)");
  const int reps = bench::int_flag(argc, argv, "reps", 3);

  const vp::SyntheticVideoSource source(42, vp::kRealisticBytesPerSecond);
  const vp::RecordedVideo video = source.record_minute(0);
  std::printf("video: %.1f MB per minute (%llu bytes/s), %d repetition(s)\n\n",
              static_cast<double>(video.size()) / (1024 * 1024),
              static_cast<unsigned long long>(vp::kRealisticBytesPerSecond), reps);

  Id16 r;
  r.bytes[0] = 1;
  std::printf("%-10s %-18s %-18s\n", "second", "normal hash (ms)", "cascaded (ms)");

  crypto::CascadedHasher chain(r);
  double cascaded_worst = 0, normal_worst = 0;
  for (int sec = 1; sec <= kDigestsPerProfile; ++sec) {
    const auto prefix =
        std::span<const std::uint8_t>(video.bytes).subspan(0, video.chunk_offsets[static_cast<std::size_t>(sec)]);
    const auto chunk = video.chunk(sec - 1);
    const crypto::ChainStepMeta meta{sec, 0.0f, 0.0f, prefix.size()};

    double normal_ms = 0, cascaded_ms = 0;
    for (int rep = 0; rep < reps; ++rep) {
      auto t0 = Clock::now();
      (void)crypto::normal_hash(meta, prefix);
      normal_ms += std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
    }
    normal_ms /= reps;
    {
      auto t0 = Clock::now();
      (void)chain.step(meta, chunk);  // stateful: once, it advances the chain
      cascaded_ms = std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
    }
    normal_worst = std::max(normal_worst, normal_ms);
    cascaded_worst = std::max(cascaded_worst, cascaded_ms);
    if (sec % 5 == 0 || sec == 1)
      std::printf("%-10d %-18.2f %-18.3f\n", sec, normal_ms, cascaded_ms);
  }
  std::printf("\nworst case: normal %.2f ms, cascaded %.3f ms (ratio %.0fx)\n",
              normal_worst, cascaded_worst, normal_worst / cascaded_worst);
  std::printf("paper (Rasp. Pi): normal 4320 ms at sec 60 — misses the 1 s deadline "
              "after ~20 s; cascaded worst 130 ms.\n");
  std::printf("\n§6.1 check: VD message = %zu bytes; VP storage = %zu bytes "
              "(<0.01%% of a 50 MB video)\n",
              dsrc::kViewDigestWireSize, vp::kVpStorageBytes);
  return 0;
}
