// Fig. 21: viewmaps built from traffic traces at 50 and 70 km/h.
//
// Paper: renders the mesh of viewlinks over the Seoul street map; the
// mesh follows the road network and densifies with slower traffic (longer
// contacts). We build one viewmap per speed from a city simulation,
// report graph statistics, and render a coarse ASCII density map of the
// viewlink mesh.
#include <algorithm>
#include <memory>

#include "bench_util.h"
#include "sim/simulator.h"
#include "system/viewmap_graph.h"
#include "system/vp_database.h"

using namespace viewmap;

namespace {

struct BuiltViewmap {
  // The database owns the profiles the viewmap borrows; member order
  // matters for destruction (map first, then db).
  std::unique_ptr<sys::VpDatabase> db;
  std::unique_ptr<sys::Viewmap> map;
  double extent = 0.0;
};

BuiltViewmap build_traffic_viewmap(double speed_kmh, int vehicles, double extent,
                                   std::uint64_t seed) {
  Rng city_rng(seed);
  road::GridCityConfig ccfg;
  ccfg.extent_m = extent;
  ccfg.block_m = 250.0;
  ccfg.building_fill = 0.6;
  auto city = road::make_grid_city(ccfg, city_rng);

  sim::SimConfig cfg;
  cfg.seed = seed + 1;
  cfg.vehicle_count = vehicles;
  cfg.minutes = 1;
  cfg.mean_speed_kmh = speed_kmh;
  cfg.video_bytes_per_second = 16;
  sim::TrafficSimulator sim(std::move(city), cfg);
  const sim::SimResult result = sim.run();

  BuiltViewmap built;
  built.extent = extent;
  built.db = std::make_unique<sys::VpDatabase>();
  bool trusted_done = false;
  for (const auto& rec : result.profiles) {
    if (!trusted_done && !rec.guard) {
      built.db->upload_trusted(rec.profile);
      trusted_done = true;
    } else {
      built.db->upload(rec.profile);
    }
  }
  const sys::ViewmapBuilder builder;
  const geo::Rect everywhere{{-1e6, -1e6}, {1e6, 1e6}};
  built.map = std::make_unique<sys::Viewmap>(builder.build(built.db->snapshot(), everywhere, 0));
  return built;
}

void render_ascii(const BuiltViewmap& built) {
  // 48×16 character raster of viewlink midpoints.
  constexpr int W = 48, H = 16;
  int density[H][W] = {};
  const auto& map = *built.map;
  for (std::size_t i = 0; i < map.size(); ++i) {
    const geo::Vec2 a = map.member(i).location_at(30);
    for (std::uint32_t j : map.neighbors(i)) {
      if (j < i) continue;
      const geo::Vec2 b = map.member(j).location_at(30);
      const geo::Vec2 mid = geo::lerp(a, b, 0.5);
      const int cx = std::clamp(static_cast<int>(mid.x / built.extent * W), 0, W - 1);
      const int cy = std::clamp(static_cast<int>(mid.y / built.extent * H), 0, H - 1);
      ++density[cy][cx];
    }
  }
  for (int y = H - 1; y >= 0; --y) {
    std::printf("  ");
    for (int x = 0; x < W; ++x) {
      const int d = density[y][x];
      std::printf("%c", d == 0 ? '.' : d < 2 ? ':' : d < 4 ? 'o' : d < 8 ? 'O' : '#');
    }
    std::printf("\n");
  }
}

}  // namespace

int main(int argc, char** argv) {
  bench::header("Fig. 21", "Viewmaps from traffic traces");
  const int vehicles = bench::int_flag(argc, argv, "vehicles", 250);
  const double extent = bench::int_flag(argc, argv, "extent", 4000);
  std::printf("(%d vehicles on a %.0fx%.0f m map; paper: 1000 over 8x8 km — pass "
              "--vehicles/--extent to scale)\n",
              vehicles, extent, extent);

  for (double speed : {50.0, 70.0}) {
    const auto built = build_traffic_viewmap(speed, vehicles, extent,
                                             static_cast<std::uint64_t>(speed));
    const auto& map = *built.map;
    double degree_sum = 0;
    std::size_t max_degree = 0;
    for (std::size_t i = 0; i < map.size(); ++i) {
      degree_sum += static_cast<double>(map.neighbors(i).size());
      max_degree = std::max(max_degree, map.neighbors(i).size());
    }
    std::printf("\nvehicle speed ~%.0f km/h: %zu member VPs, %zu viewlinks, "
                "mean degree %.2f, max %zu, isolated-from-trusted %.1f%%\n",
                speed, map.size(), map.edge_count(),
                map.size() ? degree_sum / static_cast<double>(map.size()) : 0.0,
                max_degree,
                map.size() ? 100.0 * static_cast<double>(map.isolated_from_trusted()) /
                                 static_cast<double>(map.size())
                           : 0.0);
    render_ascii(built);
  }
  std::printf("\npaper shape: mesh follows the street grid; slower traffic ⇒ "
              "denser mesh (longer contacts).\n");
  return 0;
}
