// Fig. 16: RSSI vs packet delivery ratio scatter.
//
// Paper (field measurement): PDR ≈1 above -80 dBm, ≈0 below -100 dBm,
// and widely fluctuating in between — making RSSI a poor predictor of VP
// linkage compared with the LOS condition. We sample the radio model over
// random distances/conditions and print per-RSSI-bin PDR statistics.
#include <map>

#include "bench_util.h"
#include "common/rng.h"
#include "common/stats.h"
#include "dsrc/radio.h"

using namespace viewmap;

int main(int argc, char** argv) {
  bench::header("Fig. 16", "RSSI vs PDR");
  const int samples = bench::int_flag(argc, argv, "samples", 40000);

  const dsrc::RadioModel radio;
  Rng rng(3);
  std::map<int, RunningStats> bins;  // key: RSSI bin (2 dBm)
  for (int i = 0; i < samples; ++i) {
    const double d = rng.uniform(10.0, 400.0);
    const bool los = rng.bernoulli(0.8);
    const double rssi = radio.sample_rssi_dbm(d, los, rng);
    if (rssi < -110 || rssi > -50) continue;
    bins[static_cast<int>(rssi / 2) * 2].add(dsrc::RadioModel::sample_pdr(rssi, rng));
  }

  std::printf("%-12s %-8s %-10s %-10s %-10s\n", "RSSI (dBm)", "n", "mean PDR",
              "min", "max");
  for (const auto& [rssi, stats] : bins) {
    if (stats.count() < 20) continue;
    std::printf("%-12d %-8zu %-10.3f %-10.3f %-10.3f\n", rssi, stats.count(),
                stats.mean(), stats.min(), stats.max());
  }
  std::printf("\npaper shape: saturated ≈1 above -80 dBm, dead below -100 dBm, "
              "fluctuating between (min/max spread widest there).\n");
  return 0;
}
