// Table 1: frame rates of realtime license plate blurring.
//
// Paper: per-stage times on three platforms (Raspberry Pi 3, iMac 2008,
// iMac 2014). We run the same three-stage pipeline (capture I/O →
// localize+blur → write I/O) on synthetic 640×480 frames on this host and
// print the paper's numbers alongside. Absolute times differ with CPU;
// the shape — blur well under the realtime deadline, fps bounded by
// blur+I/O — is the reproduced claim.
#include "bench_util.h"
#include "vision/pipeline.h"
#include "vision/threaded_pipeline.h"

using namespace viewmap;

int main(int argc, char** argv) {
  bench::header("Table 1", "Frame rates of realtime license plate blurring");
  const int frames = bench::int_flag(argc, argv, "frames", 40);

  vision::SceneConfig cfg;  // 640×480, two plates
  const auto t = vision::measure_pipeline(frames, cfg, /*seed=*/1);

  std::printf("%-22s %-12s %-12s %-10s\n", "Platform", "Blur time", "I/O time",
              "Frame rate");
  std::printf("%-22s %-12s %-12s %-10s\n", "Rasp. Pi 3 (paper)", "50.19 ms",
              "49.32 ms", "10 fps");
  std::printf("%-22s %-12s %-12s %-10s\n", "iMac 2008 (paper)", "10.72 ms",
              "41.78 ms", "18 fps");
  std::printf("%-22s %-12s %-12s %-10s\n", "iMac 2014 (paper)", "10.18 ms",
              "20.44 ms", "30 fps");
  std::printf("%-22s %-9.2f ms %-9.2f ms %.0f fps\n", "this host (measured)",
              t.blur_ms, t.io_ms(), t.fps());
  std::printf("\n(%d frames averaged; 640x480 synthetic scenes, 2 plates each)\n",
              frames);

  // §6.2.1 suggests multithreading blur and I/O; measure the gain.
  const auto cmp = vision::compare_pipelines(frames, cfg, /*seed=*/2);
  std::printf("\npipelining (paper's suggested improvement): sequential %.0f fps -> "
              "2-thread %.0f fps (%.2fx)\n",
              cmp.sequential_fps, cmp.threaded_fps,
              cmp.threaded_fps / cmp.sequential_fps);
  return 0;
}
