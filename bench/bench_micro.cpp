// Micro-benchmarks (google-benchmark) for the protocol's hot primitives:
// cascaded hash steps, VD serialization, Bloom operations, viewmap-probe
// membership tests, and TrustRank iterations. These are the knobs §6.1
// budgets (per-second VD deadline, VP storage, verification latency).
#include <benchmark/benchmark.h>

#include "bloom/bloom_filter.h"
#include "common/rng.h"
#include "crypto/hash_chain.h"
#include "dsrc/view_digest.h"
#include "system/trustrank.h"
#include "vp/video.h"

using namespace viewmap;

namespace {

void BM_CascadedHashStep(benchmark::State& state) {
  const auto chunk_size = static_cast<std::uint64_t>(state.range(0));
  std::vector<std::uint8_t> chunk(chunk_size);
  Rng rng(1);
  rng.fill_bytes(chunk);
  Id16 r;
  crypto::CascadedHasher hasher(r);
  const crypto::ChainStepMeta meta{1, 0.0f, 0.0f, chunk_size};
  for (auto _ : state) benchmark::DoNotOptimize(hasher.step(meta, chunk));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(chunk_size));
}
BENCHMARK(BM_CascadedHashStep)->Arg(1024)->Arg(64 * 1024)->Arg(873 * 1024);

void BM_NormalHashOfPrefix(benchmark::State& state) {
  const auto prefix_mb = static_cast<std::size_t>(state.range(0));
  std::vector<std::uint8_t> prefix(prefix_mb * 1024 * 1024);
  Rng rng(2);
  rng.fill_bytes(prefix);
  const crypto::ChainStepMeta meta{1, 0.0f, 0.0f, prefix.size()};
  for (auto _ : state) benchmark::DoNotOptimize(crypto::normal_hash(meta, prefix));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(prefix.size()));
}
BENCHMARK(BM_NormalHashOfPrefix)->Arg(1)->Arg(10)->Arg(50);

void BM_VdSerialize(benchmark::State& state) {
  dsrc::ViewDigest vd;
  vd.second = 30;
  for (auto _ : state) benchmark::DoNotOptimize(vd.serialize());
}
BENCHMARK(BM_VdSerialize);

void BM_BloomInsert(benchmark::State& state) {
  bloom::BloomFilter filter(2048, 3);
  Rng rng(3);
  std::vector<std::uint8_t> element(72);
  rng.fill_bytes(element);
  for (auto _ : state) {
    filter.insert(element);
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_BloomInsert);

void BM_BloomQueryHashed(benchmark::State& state) {
  bloom::BloomFilter filter(2048, 3);
  Rng rng(4);
  std::vector<std::uint8_t> element(72);
  rng.fill_bytes(element);
  for (auto _ : state) benchmark::DoNotOptimize(filter.maybe_contains(element));
}
BENCHMARK(BM_BloomQueryHashed);

void BM_BloomQueryPrecomputed(benchmark::State& state) {
  bloom::BloomFilter filter(2048, 3);
  Rng rng(5);
  std::vector<std::uint8_t> element(72);
  rng.fill_bytes(element);
  std::array<std::size_t, 3> probe{};
  bloom::BloomFilter::probe_positions(element, 2048, 3, probe);
  for (auto _ : state) benchmark::DoNotOptimize(filter.test_positions(probe));
}
BENCHMARK(BM_BloomQueryPrecomputed);

void BM_TrustRank(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(6);
  std::vector<std::vector<std::uint32_t>> adj(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    const auto j = static_cast<std::uint32_t>((i + 1) % n);
    adj[i].push_back(j);
    adj[j].push_back(i);
  }
  for (std::size_t c = 0; c < n * 3; ++c) {
    const auto a = static_cast<std::uint32_t>(rng.index(n));
    const auto b = static_cast<std::uint32_t>(rng.index(n));
    if (a == b) continue;
    adj[a].push_back(b);
    adj[b].push_back(a);
  }
  const std::vector<std::size_t> seeds{0};
  sys::TrustRankConfig cfg;
  cfg.tolerance = 1e-10;
  for (auto _ : state) benchmark::DoNotOptimize(sys::trust_rank(adj, seeds, cfg));
}
BENCHMARK(BM_TrustRank)->Arg(1000)->Arg(6000);

void BM_SyntheticChunk(benchmark::State& state) {
  const vp::SyntheticVideoSource source(7, static_cast<std::uint64_t>(state.range(0)));
  std::vector<std::uint8_t> chunk;
  int sec = 0;
  for (auto _ : state) {
    source.generate_chunk(0, sec++ % 60, chunk);
    benchmark::DoNotOptimize(chunk.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_SyntheticChunk)->Arg(1024)->Arg(873 * 1024);

}  // namespace
