// Ablations over ViewMap's design choices (DESIGN.md §7) — the knobs the
// paper fixes by fiat, swept:
//
//   A. TrustRank damping δ (paper: 0.8) vs verification accuracy against
//      near-seed attackers — the hardest Fig. 12 cell.
//   B. Bloom filter size m (paper: 2048 bits) vs false-linkage rate AND
//      per-VP storage — the compactness/correctness trade of §6.3.2.
//   C. Guard ratio α (paper: 0.1) vs tracking success AND database
//      growth — the privacy/storage trade of §6.2.2.
#include "attack/experiments.h"
#include "bench_util.h"
#include "bloom/bloom_filter.h"
#include "privacy_bench_common.h"
#include "vp/guard.h"

using namespace viewmap;

namespace {

void ablate_damping(int runs, Rng& rng) {
  std::printf("\n-- A. TrustRank damping delta vs accuracy (attackers at 1-5 hops, "
              "300%% fakes) --\n");
  std::printf("%-10s %-12s\n", "delta", "accuracy");
  attack::GeometricConfig geo_cfg;
  attack::AttackPlan plan;
  plan.fake_count = 3000;
  plan.attacker_count = 20;
  plan.hop_bucket = {{1, 5}};
  for (double delta : {0.5, 0.6, 0.7, 0.8, 0.9, 0.95}) {
    sys::TrustRankConfig tr;
    tr.damping = delta;
    tr.tolerance = 1e-10;
    const double acc = attack::geometric_accuracy(geo_cfg, plan, tr, runs, rng);
    std::printf("%-10.2f %6.1f%%%s\n", delta, 100.0 * acc,
                delta == 0.8 ? "   <- paper's choice" : "");
  }
  std::printf("small delta keeps trust near the seed (robust but short-sighted); "
              "large delta lets it diffuse into fake layers.\n");
}

void ablate_bloom() {
  std::printf("\n-- B. Bloom size m vs false linkage at 300 neighbors AND VP size --\n");
  std::printf("%-10s %-16s %-14s %-14s\n", "m (bits)", "false linkage", "VP bytes",
              "vs video");
  for (std::size_t m : {512u, 1024u, 2048u, 4096u, 8192u}) {
    const int k = bloom::optimal_hash_count(m, 300);
    const double p = bloom::false_linkage_rate(m, 300, k);
    const std::size_t vp_bytes = 60 * 72 + m / 8 + 8;
    std::printf("%-10zu %-16.6f %-14zu %.5f%%%s\n", m, p, vp_bytes,
                100.0 * static_cast<double>(vp_bytes) / (50.0 * 1024 * 1024),
                m == 2048 ? "   <- paper's choice" : "");
  }
  std::printf("2048 bits is the knee: 10x fewer false links than 1024 for +128 B "
              "per VP; 4096+ buys little.\n");
}

void ablate_alpha(int minutes) {
  std::printf("\n-- C. Guard ratio alpha vs tracking success AND database growth --\n");
  std::printf("%-8s %-22s %-20s %-16s\n", "alpha", "success @ last minute",
              "entropy (bits)", "VPs per actual");
  for (double alpha : {0.0, 0.05, 0.1, 0.2, 0.3}) {
    Rng city_rng(77);
    road::GridCityConfig ccfg;
    ccfg.extent_m = 2500.0;
    ccfg.block_m = 250.0;
    ccfg.building_fill = 0.5;
    auto city = road::make_grid_city(ccfg, city_rng);

    sim::SimConfig cfg;
    cfg.seed = 78;
    cfg.vehicle_count = 40;
    cfg.minutes = minutes;
    cfg.video_bytes_per_second = 16;
    cfg.guards_enabled = alpha > 0.0;
    cfg.guard.alpha = alpha > 0.0 ? alpha : 0.1;
    sim::TrafficSimulator sim(std::move(city), cfg);
    const auto result = sim.run();

    const auto curves = track::evaluate_privacy(result, /*include_guards=*/true);
    const double growth = static_cast<double>(result.profiles.size()) /
                          static_cast<double>(result.owned.size());
    std::printf("%-8.2f %-22.3f %-20.2f %-16.2f%s\n", alpha,
                curves.mean_success.back(), curves.mean_entropy.back(), growth,
                alpha == 0.1 ? "   <- paper's choice" : "");
  }
  std::printf("alpha=0.1 buys most of the privacy for ~2x database growth (the one-guard floor of the ceiling dominates in sparse traffic); "
              "larger alpha pays storage for diminishing confusion.\n");
}

}  // namespace

int main(int argc, char** argv) {
  bench::header("Ablations", "Design-choice sweeps (damping, Bloom size, alpha)");
  const int runs = bench::int_flag(argc, argv, "runs", 20);
  const int minutes = bench::int_flag(argc, argv, "minutes", 6);
  Rng rng(2027);
  ablate_damping(runs, rng);
  ablate_bloom();
  ablate_alpha(minutes);
  return 0;
}
