// Fig. 15: VP linkage ratio (VLR) vs distance across environments.
//
// Paper (field measurement, Seoul): open road stays >99% out to 400 m;
// residential and downtown decay with distance as buildings interpose;
// unlinkage "occurs mostly when the vehicles are blocked by buildings".
// We sample vehicle placements on the synthetic environment maps and
// measure one-minute two-way linkage through the radio model.
#include "bench_util.h"
#include "vlr_bench_common.h"

using namespace viewmap;

int main(int argc, char** argv) {
  bench::header("Fig. 15", "VP linkage ratio vs distance per environment");
  const int samples = bench::int_flag(argc, argv, "samples", 120);
  std::printf("(%d vehicle placements per point)\n\n", samples);

  const road::Environment envs[] = {
      road::Environment::kOpenRoad, road::Environment::kHighway,
      road::Environment::kResidential, road::Environment::kDowntown};

  std::printf("%-10s", "dist(m)");
  for (auto e : envs) std::printf(" %-18s", road::environment_name(e));
  std::printf("\n");

  Rng map_rng(5);
  std::vector<road::CityMap> maps;
  for (auto e : envs) maps.push_back(road::make_environment(e, 2500.0, map_rng));

  Rng rng(6);
  for (double d = 50; d <= 400; d += 50) {
    std::printf("%-10.0f", d);
    for (const auto& map : maps)
      std::printf(" %-18.3f", bench::measure_vlr(map, d, samples, 0.0, rng));
    std::printf("\n");
  }
  std::printf("\npaper shape: open road ≈1.0 throughout; downtown lowest and "
              "falling fastest with distance.\n");
  return 0;
}
