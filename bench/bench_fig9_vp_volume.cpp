// Fig. 9: volume of VP creation vs number of neighbors, for α ∈ {0.5,
// 0.3, 0.1}, plus the §6.2.2 coverage formula P_t that justifies α = 0.1.
//
// VPs created per vehicle per minute = 1 actual + ⌈α·m⌉ guards. The paper
// picks the smallest α whose uncovered-vehicle probability P_t drops
// below 0.01 within a typical drive.
#include "bench_util.h"
#include "vp/guard.h"

using namespace viewmap;

int main(int, char**) {
  bench::header("Fig. 9", "Volume of VP creation (VPs per vehicle per 1-min)");

  std::printf("%-12s %-10s %-10s %-10s\n", "neighbors m", "a=0.5", "a=0.3", "a=0.1");
  for (int m = 20; m <= 200; m += 20) {
    std::printf("%-12d %-10zu %-10zu %-10zu\n", m,
                1 + vp::guard_count(0.5, static_cast<std::size_t>(m)),
                1 + vp::guard_count(0.3, static_cast<std::size_t>(m)),
                1 + vp::guard_count(0.1, static_cast<std::size_t>(m)));
  }
  std::printf("\npaper shape: linear in m with slope α; α = 0.1 keeps the database "
              "growth ≈1.1×actuals.\n");

  std::printf("\nCoverage formula P_t (probability some vehicle is still uncovered "
              "after t minutes):\n");
  std::printf("%-12s %-10s %-10s %-10s %-10s\n", "minutes t", "m=20", "m=50", "m=100",
              "m=200");
  for (int t = 1; t <= 10; ++t) {
    std::printf("%-12d %-10.4f %-10.4f %-10.4f %-10.4f\n", t,
                vp::uncovered_probability(0.1, 20, t),
                vp::uncovered_probability(0.1, 50, t),
                vp::uncovered_probability(0.1, 100, t),
                vp::uncovered_probability(0.1, 200, t));
  }
  std::printf("\npaper claim: α = 0.1 drives P_t < 0.01 within ~5 minutes of "
              "driving (moderate density).\n");
  return 0;
}
