// Fig. 11: tracking success ratio over time, n = 50..200 vehicles on a
// 4×4 km² map, with the no-guard baseline.
//
// Paper shape: with guards, success falls to ~0.2 by 10 min and < 0.1 by
// 15 min even at n = 50; without guards it stays above 0.9 past 20 min.
#include "bench_util.h"
#include "privacy_bench_common.h"

using namespace viewmap;

int main(int argc, char** argv) {
  bench::header("Fig. 11", "Tracking success ratio (4x4 km map)");
  const int minutes = bench::int_flag(argc, argv, "minutes", 12);
  std::printf("(%d simulated minutes per density; paper runs 20)\n\n", minutes);

  std::vector<bench::PrivacyRun> runs;
  for (int n : {50, 100, 150, 200})
    runs.push_back(bench::run_privacy(n, 4000.0, minutes, 2000 + static_cast<std::uint64_t>(n)));

  std::printf("mean tracking success ratio vs minutes tracked:\n");
  bench::print_curves(runs, /*entropy=*/false);
  std::printf("\npaper reference: <0.2 by 10 min (n=50), <0.1 by 15 min; >0.9 "
              "without guards.\n");
  return 0;
}
