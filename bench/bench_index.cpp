// bench_index — perf trajectory for the spatio-temporal VP index.
//
//   (1) (site, unit-time) query latency through a DbSnapshot: grid-indexed
//       shards vs the pre-index linear scan, at growing database sizes.
//   (2) batched ingest throughput: 1 worker vs N workers through the
//       striped-lock commit path.
//   (3) snapshot queries under concurrent ingest + retention eviction:
//       one thread investigates (snapshot per query), another keeps
//       committing uploads and evicting — the workload the snapshot API
//       exists for.
//   (4) investigation-server throughput: the InvestigationServer's worker
//       pool drains a bounded request queue (full §5.2 viewmap + verify +
//       solicitation chain per request, batched snapshot pinning) while a
//       live ingest loop keeps committing uploads and the trusted clock
//       walks minutes out of the retention window.
//   (5) viewmap construction: the grid-accelerated CSR builder vs the
//       retained naive O(n²) reference, n ∈ {1k, 10k, 50k} members in
//       dense (urban rush hour) and sparse (city-scale) layouts. The two
//       edge sets are compared bit-for-bit; tools/run_bench.sh fails the
//       run if they ever diverge.
//   (6) incremental persistence: full database save (legacy VMDB rewrite)
//       vs an incremental segment-store checkpoint after 1% shard churn,
//       plus cold-restart recovery time. tools/run_bench.sh asserts the
//       recovery invariant (profiles recovered == profiles the manifest
//       promises == profiles in the pinned snapshot).
//   (6b) recovery_v2: the same churned checkpoint migrated to the packed
//       v2 codec and cold-restarted through the parallel recovery pool,
//       head-to-head against the v1 stream restart of (6) — plus the
//       per-phase (read/validate/parse/adopt) breakdown. tools/
//       run_bench.sh asserts recovered_matches and, on 1M-VP runs, a
//       ≥ 5× speedup over the recorded v1 baseline restart.
//   (7) observability overhead: single-thread ingest with the metrics
//       registry wired vs disabled (the null-registry switch in
//       TimelineConfig/IngestConfig). tools/run_bench.sh warns when the
//       overhead exceeds the 3% budget documented in src/obs/README.md.
//   (8) daemon soak: the assembled ServiceLifecycle daemon under kill -9
//       cycles — sustained ingest rate through the IngestService drain,
//       checkpoint cadence, and per-restart recovery latency. Every
//       restart asserts the recovery invariant; tools/run_bench.sh fails
//       the run when any cycle violates it.
//   (9) daemon chaos: the soak workload with failpoints firing inside the
//       durable-I/O path (ENOSPC bursts, fsync EIO, rename failures, torn
//       short writes, whole-cycle faults). Each cycle the daemon must eat
//       a window of injected checkpoint failures without dying, health
//       must visibly degrade and recover, no *.tmp file may survive, and
//       a cold recover must match the live shard digests bit-for-bit.
//       tools/run_bench.sh fails the run on any violated assertion.
//   (10) server_zipf: the investigation server under a Zipf-skewed request
//       mix with the digest-keyed result cache on vs off, while live
//       ingest lands in the newest minutes (hot-shard digests quiescent).
//       Emits the hit rate, cache-on/off throughput ratio, hit-latency
//       percentiles, and whether every cache hit was bit-identical to a
//       fresh build; tools/run_bench.sh asserts hit_rate > 0 and
//       reports_match.
//
// Emits BENCH_index.json (cwd) so future PRs can diff the numbers.
//
//   ./bench/bench_index [--max_vps=1000000] [--queries=200]
//                       [--ingest_vps=20000] [--threads=N]
//                       [--server_requests=500] [--zipf_requests=400]
//                       [--viewmap_vps=50000]
//                       [--checkpoint_vps=1000000]
//                       [--soak_cycles=5] [--soak_vps=300]
//                       [--chaos_cycles=6] [--chaos_failures=4]
//                       [--chaos_vps=200]
#include <algorithm>
#include <atomic>
#include <bit>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <future>
#include <thread>
#include <vector>

#include "attack/fake_vp.h"
#include "bench_util.h"
#include "common/failpoint.h"
#include "common/rng.h"
#include "daemon/lifecycle.h"
#include "index/ingest_engine.h"
#include "obs/metrics.h"
#include "store/segment_store.h"
#include "store/vp_store.h"
#include "system/investigation_server.h"
#include "system/service.h"
#include "system/vp_database.h"

using namespace viewmap;

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Straight-line synthetic VP inside a city whose extent grows with the
/// fleet so density stays plausible.
vp::ViewProfile random_vp(TimeSec unit, double extent, Rng& rng) {
  const geo::Vec2 start{rng.uniform(-extent, extent), rng.uniform(-extent, extent)};
  const geo::Vec2 end{start.x + rng.uniform(-1500.0, 1500.0),
                      start.y + rng.uniform(-1500.0, 1500.0)};
  return attack::make_fake_profile(unit, start, end, rng);
}

struct QueryRow {
  std::size_t vps = 0;
  double snapshot_us = 0.0;  ///< cost of taking one DbSnapshot
  double indexed_us = 0.0;
  double linear_us = 0.0;
  double speedup = 0.0;
  std::size_t hits = 0;
};

QueryRow bench_queries(std::size_t vp_count, int query_count, Rng& rng) {
  // Spread the fleet over 30 minutes of city time (a typical incident
  // window) and scale the map so ~50 VPs share a 250 m block per minute.
  const int minutes = 30;
  const double extent =
      std::max(2000.0, 250.0 * std::sqrt(static_cast<double>(vp_count) / minutes / 50.0) * 8.0);

  sys::VpDatabase db;
  for (std::size_t i = 0; i < vp_count; ++i) {
    const TimeSec unit = kUnitTimeSec * static_cast<TimeSec>(rng.index(minutes));
    if (!db.timeline().insert(random_vp(unit, extent, rng), false)) --i;
  }

  // Query sites: 200 m half-width incident rectangles at random places.
  std::vector<geo::Rect> sites;
  std::vector<TimeSec> units;
  for (int q = 0; q < query_count; ++q) {
    const geo::Vec2 c{rng.uniform(-extent, extent), rng.uniform(-extent, extent)};
    sites.push_back({{c.x - 200.0, c.y - 200.0}, {c.x + 200.0, c.y + 200.0}});
    units.push_back(kUnitTimeSec * static_cast<TimeSec>(rng.index(minutes)));
  }

  QueryRow row;
  row.vps = db.size();

  // The read path is snapshot-first: one pinned view, queried at will.
  auto start = Clock::now();
  const sys::DbSnapshot snap = db.snapshot();
  row.snapshot_us = seconds_since(start) * 1e6;

  start = Clock::now();
  for (int q = 0; q < query_count; ++q)
    row.hits += snap.query(units[static_cast<std::size_t>(q)],
                           sites[static_cast<std::size_t>(q)])
                    .size();
  row.indexed_us = seconds_since(start) / query_count * 1e6;

  // The pre-index algorithm, verbatim: scan every stored VP. all() is
  // hoisted out of the loop — the scan itself is what we are timing.
  const auto everything = snap.all();
  const int linear_runs = std::max(5, query_count / 10);
  std::size_t linear_hits = 0;
  start = Clock::now();
  for (int q = 0; q < linear_runs; ++q) {
    for (const auto* profile : everything)
      if (profile->unit_time() == units[static_cast<std::size_t>(q)] &&
          profile->visits(sites[static_cast<std::size_t>(q)]))
        ++linear_hits;
  }
  row.linear_us = seconds_since(start) / linear_runs * 1e6;
  row.speedup = row.indexed_us > 0 ? row.linear_us / row.indexed_us : 0.0;
  return row;
}

struct IngestRow {
  std::size_t payloads = 0;
  unsigned threads = 1;
  double single_vps_per_sec = 0.0;
  double multi_vps_per_sec = 0.0;
  double speedup = 0.0;
};

IngestRow bench_ingest(std::size_t payload_count, unsigned threads, Rng& rng) {
  std::vector<std::vector<std::uint8_t>> payloads;
  payloads.reserve(payload_count);
  for (std::size_t i = 0; i < payload_count; ++i) {
    const TimeSec unit = kUnitTimeSec * static_cast<TimeSec>(rng.index(30));
    payloads.push_back(random_vp(unit, 8000.0, rng).serialize());
  }

  IngestRow row;
  row.payloads = payload_count;
  row.threads = threads;
  for (const bool multi : {false, true}) {
    sys::VpDatabase db;
    index::IngestConfig cfg;
    cfg.threads = multi ? threads : 1;
    index::IngestEngine engine(db.timeline(), db.policy(), cfg);
    const auto start = Clock::now();
    const auto stats = engine.ingest(payloads);
    const double rate = static_cast<double>(stats.accepted) / seconds_since(start);
    (multi ? row.multi_vps_per_sec : row.single_vps_per_sec) = rate;
  }
  row.speedup = row.single_vps_per_sec > 0 ? row.multi_vps_per_sec / row.single_vps_per_sec
                                           : 0.0;
  return row;
}

struct ConcurrentRow {
  std::size_t vps = 0;           ///< database size when the run started
  double query_us = 0.0;         ///< snapshot + query, per investigation
  double writer_vps_per_sec = 0.0;  ///< concurrent ingest throughput meanwhile
  std::size_t evictions = 0;     ///< retention passes the writer ran
  std::size_t hits = 0;
};

/// The workload the snapshot API exists for: one thread investigates
/// (fresh DbSnapshot per query, as the service does) while another keeps
/// committing anonymous uploads and running retention eviction. Queries
/// never block on the writer beyond the stripe-lock handshake of
/// snapshot(), and eviction never invalidates an investigation.
ConcurrentRow bench_concurrent(std::size_t vp_count, int query_count, Rng& rng) {
  const int minutes = 30;
  const double extent =
      std::max(2000.0, 250.0 * std::sqrt(static_cast<double>(vp_count) / minutes / 50.0) * 8.0);

  sys::VpDatabase db;
  for (std::size_t i = 0; i < vp_count; ++i) {
    const TimeSec unit = kUnitTimeSec * static_cast<TimeSec>(rng.index(minutes));
    if (!db.timeline().insert(random_vp(unit, extent, rng), false)) --i;
  }

  std::vector<geo::Rect> sites;
  std::vector<TimeSec> units;
  for (int q = 0; q < query_count; ++q) {
    const geo::Vec2 c{rng.uniform(-extent, extent), rng.uniform(-extent, extent)};
    sites.push_back({{c.x - 200.0, c.y - 200.0}, {c.x + 200.0, c.y + 200.0}});
    units.push_back(kUnitTimeSec * static_cast<TimeSec>(rng.index(minutes)));
  }

  ConcurrentRow row;
  row.vps = db.size();

  std::atomic<bool> stop{false};
  std::atomic<std::size_t> written{0};
  std::atomic<std::size_t> evictions{0};
  std::thread writer([&] {
    Rng wrng(4242);
    std::size_t n = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      const TimeSec unit = kUnitTimeSec * static_cast<TimeSec>(wrng.index(minutes));
      if (db.timeline().insert(random_vp(unit, extent, wrng), false) && ++n % 128 == 0) {
        // Churn shards the way the batch path does between batches.
        db.timeline().evict_older_than(kUnitTimeSec);
        evictions.fetch_add(1, std::memory_order_relaxed);
      }
    }
    written.store(n, std::memory_order_relaxed);
  });

  // Individual investigations are microseconds; loop them for a fixed
  // wall-clock window so the writer actually races (and evicts) under us.
  constexpr double kRunSeconds = 0.5;
  std::size_t investigations = 0;
  const auto start = Clock::now();
  do {
    for (int q = 0; q < query_count; ++q) {
      const sys::DbSnapshot snap = db.snapshot();  // one pin per investigation
      row.hits += snap.query(units[static_cast<std::size_t>(q)],
                             sites[static_cast<std::size_t>(q)])
                      .size();
    }
    investigations += static_cast<std::size_t>(query_count);
  } while (seconds_since(start) < kRunSeconds);
  const double elapsed = seconds_since(start);
  stop.store(true);
  writer.join();

  row.query_us = elapsed / static_cast<double>(investigations) * 1e6;
  row.writer_vps_per_sec = static_cast<double>(written.load()) / elapsed;
  row.evictions = evictions.load();
  return row;
}

struct ServerRow {
  std::size_t vps = 0;          ///< database size when the run started
  std::size_t workers = 0;
  std::size_t requests = 0;     ///< investigation requests submitted
  double requests_per_sec = 0.0;
  /// Mean submit→resolve latency per request, measured per future —
  /// includes queue wait, which dominates when the submitter bursts the
  /// whole request set ahead of the pool.
  double request_us = 0.0;
  std::size_t reports = 0;      ///< InvestigationReports produced
  double writer_vps_per_sec = 0.0;  ///< concurrent ingest throughput meanwhile
  std::size_t snapshots = 0;    ///< DbSnapshots pinned by the workers
  std::size_t batches = 0;      ///< dequeue rounds (snapshots ≤ batches)
  std::size_t peak_queue = 0;
  /// Serve-side latency distribution from the service registry's
  /// viewmap_server_request_us histogram (excludes queue wait, unlike
  /// request_us above). Monotone by construction — run_bench.sh asserts
  /// p50 ≤ p90 ≤ p99.
  std::uint64_t request_p50_us = 0;
  std::uint64_t request_p90_us = 0;
  std::uint64_t request_p99_us = 0;
};

/// The §5 public-service workload end to end: an InvestigationServer pool
/// drains submitted (site, unit-time) requests — each the full viewmap →
/// TrustRank → solicitation chain over a pinned snapshot — while a live
/// ingest loop keeps committing anonymous uploads and the trusted clock
/// walks the oldest minutes out of the retention window.
ServerRow bench_server(std::size_t vp_count, int request_count, unsigned workers,
                       Rng& rng) {
  const int minutes = 10;
  const double extent =
      std::max(2000.0, 250.0 * std::sqrt(static_cast<double>(vp_count) / minutes / 50.0) * 8.0);

  sys::ServiceConfig scfg;
  scfg.rsa_bits = 1024;
  scfg.index.retention.window_sec = 15 * kUnitTimeSec;
  sys::ViewMapService service(scfg);
  // One authority trajectory per minute near the city core: the trust
  // seeds every investigation needs.
  for (int m = 0; m < minutes; ++m)
    (void)service.register_trusted(attack::make_fake_profile(
        kUnitTimeSec * static_cast<TimeSec>(m), {0.0, 0.0}, {300.0, 0.0}, rng));
  for (std::size_t i = 0; i < vp_count; ++i) {
    const TimeSec unit = kUnitTimeSec * static_cast<TimeSec>(rng.index(minutes));
    service.upload_channel().submit(random_vp(unit, extent, rng).serialize());
  }
  (void)service.ingest_uploads();

  // Incident sites near the authority corridor (coverage spans site ∪
  // trusted trajectory, so far-flung sites would drag half the city into
  // one viewmap — not what §5.2.1 investigations look like).
  std::vector<geo::Rect> sites;
  std::vector<TimeSec> units;
  for (int q = 0; q < request_count; ++q) {
    const geo::Vec2 c{rng.uniform(-1200.0, 1500.0), rng.uniform(-1200.0, 1200.0)};
    sites.push_back({{c.x - 200.0, c.y - 200.0}, {c.x + 200.0, c.y + 200.0}});
    units.push_back(kUnitTimeSec * static_cast<TimeSec>(rng.index(minutes)));
  }

  ServerRow row;
  row.vps = service.database().size();
  row.workers = workers;
  row.requests = static_cast<std::size_t>(request_count);

  sys::ServerConfig server_cfg;
  server_cfg.workers = workers;
  server_cfg.queue_capacity = 1024;
  server_cfg.batch_max = 8;
  auto& server = service.start_server(server_cfg);

  std::atomic<bool> stop{false};
  std::atomic<std::size_t> written{0};
  std::thread writer([&] {
    // The live ingest loop: uploads for the newest minutes (always inside
    // the admission window), per-batch retention, and a trusted clock
    // walking forward so the oldest minutes age out mid-run.
    Rng wrng(4242);
    std::size_t n = 0;
    std::size_t step = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      for (int i = 0; i < 64; ++i) {
        const TimeSec unit =
            kUnitTimeSec * static_cast<TimeSec>(3 + wrng.index(minutes - 3));
        service.upload_channel().submit(random_vp(unit, extent, wrng).serialize());
      }
      n += service.ingest_uploads();
      if (++step % 4 == 0)
        service.advance_clock(kUnitTimeSec * std::min<TimeSec>(
                                  static_cast<TimeSec>(10 + step / 4), 18));
    }
    written.store(n, std::memory_order_relaxed);
  });

  std::vector<std::future<sys::InvestigationServer::Reports>> futures;
  std::vector<Clock::time_point> submit_at;
  futures.reserve(row.requests);
  submit_at.reserve(row.requests);
  const auto start = Clock::now();
  for (int q = 0; q < request_count; ++q) {
    submit_at.push_back(Clock::now());
    futures.push_back(server.submit(sites[static_cast<std::size_t>(q)],
                                    units[static_cast<std::size_t>(q)]));
  }
  double latency_sum = 0.0;
  std::size_t resolved = 0;
  for (std::size_t q = 0; q < futures.size(); ++q) {
    if (!futures[q].valid()) continue;
    row.reports += futures[q].get().size();
    latency_sum += std::chrono::duration<double>(Clock::now() - submit_at[q]).count();
    ++resolved;
  }
  const double elapsed = seconds_since(start);
  stop.store(true);
  writer.join();

  const auto stats = server.stats();
  if (const obs::Histogram* h =
          service.metrics().find_histogram("viewmap_server_request_us")) {
    const obs::Histogram::Snapshot snap = h->snapshot();
    row.request_p50_us = snap.percentile(0.5);
    row.request_p90_us = snap.percentile(0.9);
    row.request_p99_us = snap.percentile(0.99);
  }
  service.stop_server();
  row.requests_per_sec = static_cast<double>(stats.completed) / elapsed;
  row.request_us = resolved > 0 ? latency_sum / static_cast<double>(resolved) * 1e6 : 0.0;
  row.writer_vps_per_sec = static_cast<double>(written.load()) / elapsed;
  row.snapshots = stats.snapshots;
  row.batches = stats.batches;
  row.peak_queue = stats.peak_queue;
  return row;
}

struct ZipfServerRow {
  std::size_t vps = 0;
  std::size_t workers = 0;
  std::size_t requests = 0;
  double alpha = 0.0;            ///< Zipf skew of the request mix
  std::size_t distinct_keys = 0; ///< (site, unit-time) universe size
  double hit_rate = 0.0;         ///< cache hits / requests, serving phase
  double req_per_sec = 0.0;          ///< result cache on
  double req_per_sec_nocache = 0.0;  ///< identical run, cache disabled
  double speedup_vs_nocache = 0.0;
  /// Serve-side latency with the cache on (viewmap_server_request_us).
  std::uint64_t request_p50_us = 0;
  std::uint64_t request_p99_us = 0;
  /// Cache-hit investigate() latency (viewmap_cache_hit_us).
  std::uint64_t hit_p50_us = 0;
  std::uint64_t hit_p99_us = 0;
  /// Every key's cache-hit report fingerprint equalled the fresh-build
  /// (= cache-off path) fingerprint. tools/run_bench.sh fails on false.
  bool reports_match = false;
  std::size_t cache_bytes = 0;           ///< resident bytes after the run
  std::size_t cache_capacity_bytes = 0;  ///< configured bound
  bool bytes_ok = false;                 ///< resident ≤ bound throughout
};

/// Order-sensitive fingerprint of everything an InvestigationReport says
/// (members, trust flags, CSR edges, verdict sets, bit-cast TrustRank
/// scores, solicitations) — trace excluded, since it records the serving
/// path. Two reports with equal fingerprints are bit-identical results.
std::uint64_t report_fingerprint(const sys::InvestigationReport& r) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  const auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 0x100000001b3ull;
    }
  };
  const sys::Viewmap& m = r.viewmap;
  mix(m.size());
  mix(static_cast<std::uint64_t>(m.unit_time()));
  for (std::size_t i = 0; i < m.size(); ++i) {
    for (std::uint8_t b : m.member(i).vp_id().bytes) mix(b);
    mix(m.is_trusted(i) ? 1 : 0);
  }
  for (std::size_t o : m.graph().offsets()) mix(o);
  for (std::uint32_t e : m.graph().edges()) mix(e);
  const sys::VerificationResult& v = r.verification;
  for (std::size_t i : v.site_members) mix(i);
  for (std::size_t i : v.legitimate) mix(i);
  for (std::size_t i : v.rejected) mix(i);
  for (double s : v.ranks.scores) mix(std::bit_cast<std::uint64_t>(s));
  mix(static_cast<std::uint64_t>(v.ranks.iterations));
  mix(v.ranks.converged ? 1 : 0);
  for (const Id16& id : r.solicited)
    for (std::uint8_t b : id.bytes) mix(b);
  return h;
}

/// The workload the result cache exists for: a Zipf-skewed request mix
/// (real investigation traffic clusters on a few hot incidents) against
/// a database whose hot minutes are quiescent while live ingest keeps
/// landing in the newest minutes. Two identical services — cache on vs
/// cache off — serve the same precomputed request sequence through the
/// same server config; the row records the throughput ratio, the hit
/// rate, and whether every cache hit was bit-identical to a fresh build.
ZipfServerRow bench_server_zipf(std::size_t vp_count, int request_count,
                                double alpha, unsigned workers) {
  const int minutes = 12;       // requests target 0..7; ingest lands in 8..11
  const int query_minutes = 8;
  const int site_count = 4;
  // Fixed dense-city geometry, deliberately NOT the density-preserving
  // sqrt(vps) extent the other scenarios use: incidents concentrate where
  // traffic does, and the cache's value is proportional to what a build
  // costs. A (1.2 km)² downtown with vp_count/minutes VPs per minute puts
  // a few hundred members in every site rectangle, so a miss pays a real
  // viewmap + TrustRank build while a hit pays a lookup + report copy.
  const double extent = 600.0;

  // The (site, unit-time) key universe: incident rectangles along the
  // trusted corridor × the quiescent minutes. All four sites lie inside
  // the VP spread and under the corridor, so every key sees trusted
  // seeds, members, and a full verification.
  std::vector<geo::Rect> sites;
  for (int s = 0; s < site_count; ++s) {
    const double cx = -450.0 + 300.0 * s;
    sites.push_back({{cx - 200.0, -200.0}, {cx + 200.0, 200.0}});
  }
  const std::size_t keys = static_cast<std::size_t>(site_count * query_minutes);

  // Zipf(alpha) over the key universe, sampled once so both sides serve
  // the byte-identical request sequence.
  std::vector<double> cdf(keys);
  double total = 0.0;
  for (std::size_t k = 0; k < keys; ++k) {
    total += 1.0 / std::pow(static_cast<double>(k + 1), alpha);
    cdf[k] = total;
  }
  Rng zipf_rng(60660);
  std::vector<std::size_t> req_keys;
  req_keys.reserve(static_cast<std::size_t>(request_count));
  for (int q = 0; q < request_count; ++q) {
    const double u = zipf_rng.uniform(0.0, total);
    req_keys.push_back(static_cast<std::size_t>(
        std::lower_bound(cdf.begin(), cdf.end(), u) - cdf.begin()));
  }

  ZipfServerRow row;
  row.workers = workers;
  row.requests = static_cast<std::size_t>(request_count);
  row.alpha = alpha;
  row.distinct_keys = keys;

  for (const bool cache_on : {false, true}) {
    sys::ServiceConfig scfg;
    scfg.rsa_bits = 1024;
    scfg.result_cache.enabled = cache_on;
    sys::ViewMapService service(scfg);
    // Seeded identically per side: same trusted corridor, same uploads.
    Rng seed_rng(8088);
    for (int m = 0; m < minutes; ++m)
      (void)service.register_trusted(attack::make_fake_profile(
          kUnitTimeSec * static_cast<TimeSec>(m), {-650.0, 0.0}, {650.0, 0.0},
          seed_rng));
    for (std::size_t i = 0; i < vp_count; ++i) {
      const TimeSec unit = kUnitTimeSec * static_cast<TimeSec>(seed_rng.index(minutes));
      service.upload_channel().submit(random_vp(unit, extent, seed_rng).serialize());
    }
    (void)service.ingest_uploads();
    row.vps = service.database().size();

    if (cache_on) {
      // Correctness phase, quiesced: for every key, a fresh build (the
      // cache-off code path) followed by the cache hit it seeded. The
      // fingerprints must agree — the bit-identity claim of the cache.
      bool match = true;
      for (std::size_t k = 0; k < keys; ++k) {
        const geo::Rect& site = sites[k % static_cast<std::size_t>(site_count)];
        const TimeSec unit =
            kUnitTimeSec * static_cast<TimeSec>(k / static_cast<std::size_t>(site_count));
        try {
          const auto fresh = service.investigate(site, unit);
          const auto hit = service.investigate(site, unit);
          match = match && report_fingerprint(fresh) == report_fingerprint(hit);
        } catch (const std::exception&) {
          match = false;  // corridor keys must all be investigable
        }
      }
      row.reports_match = match;
      // The serving phase measures a cold cache: first touch per key
      // misses, the skewed tail hits.
      service.result_cache().clear();
    }
    const std::size_t hits_before = service.result_cache().stats().hits;

    sys::ServerConfig server_cfg;
    server_cfg.workers = workers;
    server_cfg.queue_capacity = 1024;
    server_cfg.batch_max = 8;
    auto& server = service.start_server(server_cfg);

    // Live ingest confined to the newest minutes: the hot shards' digests
    // stay put, which is exactly when the cache may keep serving them.
    std::atomic<bool> stop{false};
    std::thread writer([&] {
      Rng wrng(4242);
      while (!stop.load(std::memory_order_relaxed)) {
        for (int i = 0; i < 64; ++i) {
          const TimeSec unit = kUnitTimeSec * static_cast<TimeSec>(
              query_minutes + wrng.index(minutes - query_minutes));
          service.upload_channel().submit(random_vp(unit, extent, wrng).serialize());
        }
        (void)service.ingest_uploads();
      }
    });

    std::vector<std::future<sys::InvestigationServer::Reports>> futures;
    futures.reserve(req_keys.size());
    const auto start = Clock::now();
    for (const std::size_t k : req_keys)
      futures.push_back(server.submit(
          sites[k % static_cast<std::size_t>(site_count)],
          kUnitTimeSec * static_cast<TimeSec>(k / static_cast<std::size_t>(site_count))));
    std::size_t resolved = 0;
    for (auto& fut : futures) {
      if (!fut.valid()) continue;
      (void)fut.get();
      ++resolved;
    }
    const double elapsed = seconds_since(start);
    stop.store(true);
    writer.join();

    const double rate = elapsed > 0 ? static_cast<double>(resolved) / elapsed : 0.0;
    if (cache_on) {
      row.req_per_sec = rate;
      const auto cstats = service.result_cache().stats();
      row.hit_rate = row.requests > 0
                         ? static_cast<double>(cstats.hits - hits_before) /
                               static_cast<double>(row.requests)
                         : 0.0;
      row.cache_bytes = cstats.resident_bytes;
      row.cache_capacity_bytes = scfg.result_cache.capacity_bytes;
      row.bytes_ok = cstats.resident_bytes <= scfg.result_cache.capacity_bytes;
      if (const obs::Histogram* h =
              service.metrics().find_histogram("viewmap_server_request_us")) {
        const auto snap = h->snapshot();
        row.request_p50_us = snap.percentile(0.5);
        row.request_p99_us = snap.percentile(0.99);
      }
      if (const obs::Histogram* h =
              service.metrics().find_histogram("viewmap_cache_hit_us")) {
        const auto snap = h->snapshot();
        row.hit_p50_us = snap.percentile(0.5);
        row.hit_p99_us = snap.percentile(0.99);
      }
    } else {
      row.req_per_sec_nocache = rate;
    }
    service.stop_server();
  }
  row.speedup_vs_nocache = row.req_per_sec_nocache > 0
                               ? row.req_per_sec / row.req_per_sec_nocache
                               : 0.0;
  return row;
}

struct ViewmapBuildRow {
  std::size_t n = 0;
  const char* layout = "";
  double density_per_km2 = 0.0;
  double grid_ms = 0.0;   ///< grid-accelerated CSR builder
  double naive_ms = 0.0;  ///< retained O(n²) reference builder
  double speedup = 0.0;
  std::size_t edges = 0;
  double edges_per_sec = 0.0;  ///< viewlinks emitted per second (grid path)
  bool edges_match = false;    ///< CSR bit-identical to the reference
  /// Upper bound the auto setting resolves to on this host; small
  /// builds clamp lower inside the builder (serial cutoff, per-thread
  /// minimum work), so the actual pool may be smaller.
  std::size_t build_threads_max = 1;
};

/// §5.2.1 viewmap construction over a synthetic minute of traffic:
/// vehicles travel in platoons (≤6 vehicles, 40 m headway) with mutual
/// Bloom links between platoon neighbors — the local connectivity real
/// VD exchange produces — spread at the layout's density. The grid
/// builder and the naive reference apply the identical edge predicate;
/// the row records both times and whether the CSRs matched exactly.
ViewmapBuildRow bench_viewmap_build(std::size_t n, bool dense, Rng& rng) {
  // Dense ≈ the paper's Fig. 22 large-scale simulation (25k vehicles on
  // 10×10 km ⇒ hundreds per km²); sparse ≈ early-adoption metro scale
  // (50k simultaneous recorders over a ~1700 km² metropolitan area).
  const double density = dense ? 1200.0 : 30.0;  // VPs per km²
  const double half = std::sqrt(static_cast<double>(n) / density) * 1000.0 / 2.0;
  constexpr double kTau = 6.283185307179586;

  std::vector<vp::ViewProfile> fleet;
  fleet.reserve(n);
  while (fleet.size() < n) {
    const geo::Vec2 lead{rng.uniform(-half, half), rng.uniform(-half, half)};
    const double heading = rng.uniform(0.0, kTau);
    const geo::Vec2 dir{std::cos(heading), std::sin(heading)};
    const double len = rng.uniform(200.0, 700.0);
    const std::size_t platoon = std::min<std::size_t>(1 + rng.index(6), n - fleet.size());
    const std::size_t first = fleet.size();
    for (std::size_t k = 0; k < platoon; ++k) {
      const geo::Vec2 a{lead.x - dir.x * 40.0 * static_cast<double>(k),
                        lead.y - dir.y * 40.0 * static_cast<double>(k)};
      fleet.push_back(attack::make_fake_profile(
          0, a, {a.x + dir.x * len, a.y + dir.y * len}, rng));
    }
    for (std::size_t k = first + 1; k < fleet.size(); ++k)
      vp::link_mutually(fleet[k - 1], fleet[k]);
  }
  std::vector<const vp::ViewProfile*> members;
  members.reserve(n);
  for (const auto& p : fleet) members.push_back(&p);
  const std::vector<bool> trusted(n, false);
  const geo::Rect cover{{-half - 1000.0, -half - 1000.0}, {half + 1000.0, half + 1000.0}};

  // Warm the per-profile probe tables (memoized SHA-256 per VD) so both
  // timed builds measure pair work — the steady state a live server
  // sees, since profiles keep their tables across investigations.
  for (const auto* m : members) (void)m->bloom_probes();

  ViewmapBuildRow row;
  row.n = n;
  row.layout = dense ? "dense" : "sparse";
  row.density_per_km2 = density;
  const sys::ViewmapBuilder builder;  // default config: auto build_threads
  row.build_threads_max = sys::ViewmapBuilder::resolved_build_threads(0);

  auto start = Clock::now();
  const sys::Viewmap grid = builder.build_from_members(members, trusted, 0, cover);
  row.grid_ms = seconds_since(start) * 1e3;

  start = Clock::now();
  const sys::Viewmap naive =
      builder.build_from_members_reference(members, trusted, 0, cover);
  row.naive_ms = seconds_since(start) * 1e3;

  row.speedup = row.grid_ms > 0 ? row.naive_ms / row.grid_ms : 0.0;
  row.edges = grid.edge_count();
  row.edges_per_sec =
      row.grid_ms > 0 ? static_cast<double>(row.edges) / (row.grid_ms / 1e3) : 0.0;
  row.edges_match = grid.graph() == naive.graph();
  return row;
}

struct CheckpointRow {
  std::size_t vps = 0;
  std::size_t shards = 0;
  std::size_t churn_shards = 0;     ///< shards whose content changed (~1%)
  std::size_t churn_vps = 0;        ///< VPs added to force that churn
  double legacy_full_ms = 0.0;      ///< vp_store full-database rewrite
  std::uint64_t legacy_full_bytes = 0;
  double full_checkpoint_ms = 0.0;  ///< first segment checkpoint (all shards)
  std::uint64_t full_checkpoint_bytes = 0;
  double incr_checkpoint_ms = 0.0;  ///< checkpoint after the churn
  std::uint64_t incr_bytes = 0;     ///< bytes actually written by it
  std::size_t incr_segments_written = 0;
  std::size_t incr_segments_reused = 0;
  double restart_ms = 0.0;          ///< cold recover() of the checkpoint
  std::size_t recovered_vps = 0;
  /// The recovery invariant: recovered == manifest promise == snapshot,
  /// zero rejects. tools/run_bench.sh fails the run when false.
  bool recovered_matches = false;
};

/// The v1 restart_ms recorded for this scenario at 1M VPs before the
/// packed v2 codec landed — the restart-time target the v2 row is
/// judged against (tools/run_bench.sh asserts ≥ 5×).
constexpr double kRecordedV1RestartMs1M = 83652.5;
constexpr std::size_t kBaselineVps = 1000000;

struct RecoveryV2Row {
  std::size_t vps = 0;
  std::size_t shards = 0;
  double restart_v1_ms = 0.0;        ///< same-run cold recover of the v1 store
  double restart_v2_ms = 0.0;        ///< cold recover of the migrated v2 store
  double speedup_vs_v1 = 0.0;
  double baseline_restart_ms = 0.0;  ///< recorded v1 number (1M-VP runs only)
  double speedup_vs_baseline = 0.0;
  unsigned threads = 0;              ///< recovery worker-pool width used
  /// Per-phase cost of the v2 restart. read/validate/parse are summed
  /// across workers; adopt is wall clock on the recovering thread.
  double read_ms = 0.0;
  double validate_ms = 0.0;
  double parse_ms = 0.0;
  double adopt_ms = 0.0;
  bool recovered_matches = false;
};

/// The always-on persistence workload: a service checkpointing weeks of
/// history where only the newest minutes change between checkpoints.
/// Spreads `vp_count` over 200 unit-times, seals a full checkpoint, churns
/// 1% of the shards (2 of 200), then measures what §"incremental
/// persistence" buys: a full legacy save rewrites every byte, the segment
/// checkpoint rewrites only the 2 changed shards + a ~12 KB manifest.
/// fsync is ON — these are honest durable-write numbers.
///
/// When `v2out` is non-null the same dataset also feeds the recovery_v2
/// scenario: the churned checkpoint is migrated into a packed v2 store
/// and cold-recovered through the parallel worker pool, head-to-head
/// against the v1 stream restart measured here.
CheckpointRow bench_checkpoint(std::size_t vp_count, Rng& rng,
                               RecoveryV2Row* v2out = nullptr) {
  const int minutes = 200;
  const double extent =
      std::max(2000.0, 250.0 * std::sqrt(static_cast<double>(vp_count) / minutes / 50.0) * 8.0);

  sys::VpDatabase db;
  for (std::size_t i = 0; i < vp_count; ++i) {
    const TimeSec unit = kUnitTimeSec * static_cast<TimeSec>(rng.index(minutes));
    if (!db.timeline().insert(random_vp(unit, extent, rng), false)) --i;
  }

  namespace fs = std::filesystem;
  const fs::path seg_dir = "bench_segments.tmp";
  const fs::path vmdb_path = "bench_full_save.vmdb.tmp";
  fs::remove_all(seg_dir);

  CheckpointRow row;
  row.vps = db.size();

  // Pinned to the v1 stream codec: this row is the legacy-format
  // trajectory the recorded baseline (and the v2 comparison) reference.
  store::SegmentStoreConfig v1cfg;
  v1cfg.codec = store::SegmentCodec::kV1;
  store::SegmentStore segments(seg_dir.string(), v1cfg);
  {
    const sys::DbSnapshot snap = db.snapshot();
    row.shards = snap.shard_count();
    const auto start = Clock::now();
    const auto stats = segments.checkpoint(snap);
    row.full_checkpoint_ms = seconds_since(start) * 1e3;
    row.full_checkpoint_bytes = stats.bytes_written;
  }

  // 1% shard churn: fresh uploads land in 2 of the 200 minutes.
  row.churn_shards = static_cast<std::size_t>(minutes) / 100;
  for (std::size_t s = 0; s < row.churn_shards; ++s) {
    const TimeSec unit = kUnitTimeSec * static_cast<TimeSec>(s * 97 % minutes);
    for (int i = 0; i < 25; ++i) {
      if (db.timeline().insert(random_vp(unit, extent, rng), false)) ++row.churn_vps;
    }
  }

  const sys::DbSnapshot churned = db.snapshot();
  {
    const auto start = Clock::now();
    store::save_snapshot_file(churned, vmdb_path.string());
    row.legacy_full_ms = seconds_since(start) * 1e3;
    row.legacy_full_bytes = static_cast<std::uint64_t>(fs::file_size(vmdb_path));
  }
  {
    const auto start = Clock::now();
    const auto stats = segments.checkpoint(churned);
    row.incr_checkpoint_ms = seconds_since(start) * 1e3;
    row.incr_bytes = stats.bytes_written;
    row.incr_segments_written = stats.segments_written;
    row.incr_segments_reused = stats.segments_reused;
  }
  {
    const auto start = Clock::now();
    store::RecoveryStats rec;
    const auto recovered = segments.recover(&rec);
    row.restart_ms = seconds_since(start) * 1e3;
    row.recovered_vps = recovered.size();
    row.recovered_matches = rec.profiles_rejected == 0 &&
                            rec.profiles_loaded == rec.manifest_profiles &&
                            recovered.size() == churned.size();
  }

  if (v2out != nullptr) {
    // Migrate the churned checkpoint into a packed v2 store (cross-codec
    // reuse off ⇒ every shard is re-encoded), then cold-restart it
    // through the parallel recovery pool.
    const fs::path v2_dir = "bench_segments_v2.tmp";
    fs::remove_all(v2_dir);
    store::SegmentStoreConfig v2cfg;
    v2cfg.codec = store::SegmentCodec::kV2;
    v2cfg.reuse_any_codec = false;
    store::SegmentStore packed(v2_dir.string(), v2cfg);
    (void)packed.checkpoint(churned);

    v2out->vps = row.vps;
    v2out->shards = row.shards;
    v2out->restart_v1_ms = row.restart_ms;
    {
      const auto start = Clock::now();
      store::RecoveryStats rec;
      const auto recovered = packed.recover(&rec);
      v2out->restart_v2_ms = seconds_since(start) * 1e3;
      v2out->threads = rec.threads_used;
      v2out->read_ms = static_cast<double>(rec.read_us) / 1e3;
      v2out->validate_ms = static_cast<double>(rec.validate_us) / 1e3;
      v2out->parse_ms = static_cast<double>(rec.parse_us) / 1e3;
      v2out->adopt_ms = static_cast<double>(rec.adopt_us) / 1e3;
      v2out->recovered_matches = rec.profiles_rejected == 0 &&
                                 rec.profiles_loaded == rec.manifest_profiles &&
                                 recovered.size() == churned.size();
    }
    if (v2out->restart_v2_ms > 0.0)
      v2out->speedup_vs_v1 = v2out->restart_v1_ms / v2out->restart_v2_ms;
    if (row.vps == kBaselineVps) {
      // The recorded-baseline comparison only means something at the VP
      // count the baseline was recorded at.
      v2out->baseline_restart_ms = kRecordedV1RestartMs1M;
      if (v2out->restart_v2_ms > 0.0)
        v2out->speedup_vs_baseline = kRecordedV1RestartMs1M / v2out->restart_v2_ms;
    }
    fs::remove_all(v2_dir);
  }

  fs::remove_all(seg_dir);
  fs::remove(vmdb_path);
  return row;
}

struct ObsRow {
  std::size_t payloads = 0;
  double plain_vps_per_sec = 0.0;    ///< registry disabled (null pointers)
  double metered_vps_per_sec = 0.0;  ///< registry wired into timeline + ingest
  double overhead_pct = 0.0;         ///< (plain − metered) / plain × 100
};

/// What the always-on instrumentation costs on the hottest path:
/// single-thread ingest (parse + screen + shard commit, a counter bump
/// per VP) with the metrics registry wired vs the null-registry switch.
/// Best-of-3 per side over a fresh database each run, so allocator state
/// and shard growth are identical; only the counter increments differ.
ObsRow bench_obs_overhead(std::size_t payload_count, Rng& rng) {
  std::vector<std::vector<std::uint8_t>> payloads;
  payloads.reserve(payload_count);
  for (std::size_t i = 0; i < payload_count; ++i) {
    const TimeSec unit = kUnitTimeSec * static_cast<TimeSec>(rng.index(30));
    payloads.push_back(random_vp(unit, 8000.0, rng).serialize());
  }

  ObsRow row;
  row.payloads = payload_count;
  obs::MetricsRegistry registry;
  for (const bool metered : {false, true}) {
    double best = 0.0;
    for (int run = 0; run < 3; ++run) {
      index::TimelineConfig timeline_cfg;
      index::IngestConfig ingest_cfg;
      ingest_cfg.threads = 1;
      if (metered) {
        timeline_cfg.metrics = &registry;
        ingest_cfg.metrics = &registry;
      }
      sys::VpDatabase db(vp::VpUploadPolicy{}, timeline_cfg);
      index::IngestEngine engine(db.timeline(), db.policy(), ingest_cfg);
      const auto start = Clock::now();
      const auto stats = engine.ingest(payloads);
      best = std::max(best,
                      static_cast<double>(stats.accepted) / seconds_since(start));
    }
    (metered ? row.metered_vps_per_sec : row.plain_vps_per_sec) = best;
  }
  row.overhead_pct =
      row.plain_vps_per_sec > 0
          ? (row.plain_vps_per_sec - row.metered_vps_per_sec) /
                row.plain_vps_per_sec * 100.0
          : 0.0;
  return row;
}

struct DaemonSoakRow {
  std::size_t kill_cycles = 0;
  std::size_t vps_submitted = 0;       ///< admitted by IngestService::submit
  std::size_t vps_recovered = 0;       ///< final cold recover() of the store
  double sustained_ingest_vps_per_sec = 0.0;
  std::size_t checkpoints = 0;         ///< manifests sealed across all cycles
  double recovery_ms_mean = 0.0;       ///< start()-time restore, cycles 2..N
  double recovery_ms_max = 0.0;
  /// Every restart's recovery invariant (single-attempt recover, zero
  /// rejects, loaded == manifest promise) plus a clean final cold
  /// recover. tools/run_bench.sh fails the run when false.
  bool recovered_matches = false;
};

/// The assembled daemon under the crash workload the soak test hammers:
/// each cycle constructs a fresh ServiceLifecycle on the same store
/// directory, times the restore start() performs, pushes `vps_per_cycle`
/// uploads through the IngestService drain (blocking backpressure), waits
/// for a checkpoint sealed after the channel emptied, then kill_for_test()
/// — the in-process kill -9: no drain, no final checkpoint. fsync is ON;
/// recovery_ms and checkpoint cadence are honest durable numbers.
DaemonSoakRow bench_daemon_soak(std::size_t cycles, std::size_t vps_per_cycle,
                                Rng& rng) {
  namespace fs = std::filesystem;
  const fs::path dir = "bench_daemon_soak.tmp";
  fs::remove_all(dir);

  daemon::DaemonConfig cfg;
  cfg.service.rsa_bits = 1024;  // keygen is not what this bench measures
  cfg.start_server = false;
  cfg.store_dir = dir.string();
  cfg.checkpoint.interval = std::chrono::milliseconds(25);
  cfg.checkpoint.jitter_pct = 0;
  cfg.ingest.idle_backoff_max = std::chrono::milliseconds(5);
  cfg.scrape.enabled = false;
  cfg.watchdog.enabled = false;

  DaemonSoakRow row;
  row.kill_cycles = cycles;
  bool invariant_ok = true;
  double feed_seconds = 0.0;
  std::vector<double> recovery_ms;

  for (std::size_t cycle = 0; cycle < cycles; ++cycle) {
    daemon::ServiceLifecycle d(cfg);
    const auto t0 = Clock::now();
    d.start();
    const double start_ms = seconds_since(t0) * 1e3;
    if (cycle > 0) {
      // Restarts after a kill must land on the newest sealed manifest in
      // one attempt with nothing rejected — the PR 5 recovery invariant.
      const auto& rec = d.recovery();
      recovery_ms.push_back(start_ms);
      invariant_ok = invariant_ok && d.recovered() && rec.manifests_tried == 1 &&
                     rec.profiles_rejected == 0 &&
                     rec.profiles_loaded == rec.manifest_profiles;
    }

    std::vector<std::vector<std::uint8_t>> payloads;
    payloads.reserve(vps_per_cycle);
    for (std::size_t i = 0; i < vps_per_cycle; ++i) {
      const TimeSec unit = kUnitTimeSec * static_cast<TimeSec>(rng.index(30));
      payloads.push_back(random_vp(unit, 8000.0, rng).serialize());
    }
    const auto feed_start = Clock::now();
    for (auto& p : payloads)
      if (d.ingest().submit(std::move(p))) ++row.vps_submitted;
    // Admission rate: submit-to-admitted through the bounded channel while
    // the drain thread time-slices the same core(s).
    feed_seconds += seconds_since(feed_start);

    // Wait until the channel emptied, then for one checkpoint sealed
    // after that — the manifest a kill now must leave recoverable.
    while (d.service().upload_channel().pending() != 0)
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    const std::uint64_t sealed = d.checkpointer()->written();
    while (d.checkpointer()->written() <= sealed) {
      d.checkpointer()->poke();
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    d.kill_for_test();
  }

  row.sustained_ingest_vps_per_sec =
      feed_seconds > 0 ? static_cast<double>(row.vps_submitted) / feed_seconds
                       : 0.0;
  if (!recovery_ms.empty()) {
    double sum = 0.0;
    for (const double ms : recovery_ms) {
      sum += ms;
      row.recovery_ms_max = std::max(row.recovery_ms_max, ms);
    }
    row.recovery_ms_mean = sum / static_cast<double>(recovery_ms.size());
  }

  {
    store::SegmentStore store(dir.string());
    row.checkpoints = static_cast<std::size_t>(store.latest_sequence());
    store::RecoveryStats rec;
    const auto db = store.recover(&rec);
    row.vps_recovered = db.size();
    row.recovered_matches = invariant_ok && rec.profiles_rejected == 0 &&
                            rec.profiles_loaded == rec.manifest_profiles;
  }

  fs::remove_all(dir);
  return row;
}

struct DaemonChaosRow {
  std::size_t cycles = 0;               ///< lifecycle cycles (kill/drain alternating)
  std::size_t injected_failures = 0;    ///< failpoint fires across all cycles
  std::size_t checkpoint_failures = 0;  ///< failed checkpoint cycles (all retried)
  bool daemon_survived = false;         ///< every thread alive through every window
  bool health_degraded_seen = false;    ///< healthz left kHealthy inside windows
  bool health_recovered = false;        ///< back to kHealthy after every window
  bool clean_drains = false;            ///< drain cycles reported clean stops
  std::size_t leaked_temps = 0;         ///< *.tmp files found after any cycle
  bool recovered_matches = false;       ///< per-cycle shard-digest bit-for-bit
};

/// The chaos soak: the daemon_soak workload with failpoints firing inside
/// the checkpoint path. Each cycle arms one fault family (ENOSPC on
/// segment data, EIO on fsync, rename failure, torn short writes, whole-
/// cycle failures), feeds live ingest through it, and requires the daemon
/// to eat `failures_per_cycle` consecutive checkpoint failures — health
/// must leave healthy — then disarms and requires a sealed checkpoint and
/// health back to healthy. Cycles alternate kill_for_test (crash) with
/// drain+stop (clean); after each, a cold recover must reproduce the live
/// database's shard digests bit-for-bit and the store directory must hold
/// zero temp files. This is the acceptance harness for the failpoint
/// framework: ≥ 20 injected I/O failures per run with no daemon death.
DaemonChaosRow bench_daemon_chaos(std::size_t cycles,
                                  std::size_t failures_per_cycle,
                                  std::size_t vps_per_cycle, Rng& rng) {
  namespace fs = std::filesystem;
  const fs::path dir = "bench_daemon_chaos.tmp";
  fs::remove_all(dir);
  failpoint::disarm_all();

  daemon::DaemonConfig cfg;
  cfg.service.rsa_bits = 1024;
  cfg.start_server = false;
  cfg.store_dir = dir.string();
  cfg.checkpoint.interval = std::chrono::milliseconds(25);
  cfg.checkpoint.jitter_pct = 0;
  cfg.checkpoint.retry_backoff_min = std::chrono::milliseconds(2);
  cfg.checkpoint.retry_backoff_max = std::chrono::milliseconds(20);
  cfg.ingest.idle_backoff_max = std::chrono::milliseconds(5);
  cfg.scrape.enabled = false;
  cfg.watchdog.enabled = false;
  cfg.health.degraded_after = 1;
  cfg.health.failing_after = 3;

  // One fault family per cycle, round-robin. Windows are sized so each
  // family yields exactly `failures_per_cycle` failed checkpoint cycles
  // (one fire aborts one checkpoint attempt) and then exhausts.
  const std::string windowed = "@window:0:" + std::to_string(failures_per_cycle);
  const std::vector<std::string> specs{
      "store.write.data=enospc" + windowed,
      "store.write.fsync=eio" + windowed,
      "store.rename=eio" + windowed,
      "store.write.data=short" + windowed,
      "daemon.checkpoint.cycle=eio" + windowed,
      "store.write.open=enospc" + windowed,
  };

  DaemonChaosRow row;
  row.cycles = cycles;
  bool survived = true;
  bool degraded_seen_all = true;
  bool recovered_all = true;
  bool clean_all = true;
  bool matches_all = true;

  for (std::size_t cycle = 0; cycle < cycles; ++cycle) {
    daemon::ServiceLifecycle d(cfg);
    d.start();
    row.leaked_temps += d.swept_temps();  // a prior cycle leaked debris

    // Arm BEFORE feeding: the first checkpoint that tries to seal the
    // new shards walks straight into the fault window.
    failpoint::arm_from_spec(specs[cycle % specs.size()]);

    std::vector<std::vector<std::uint8_t>> payloads;
    payloads.reserve(vps_per_cycle);
    for (std::size_t i = 0; i < vps_per_cycle; ++i) {
      const TimeSec unit = kUnitTimeSec * static_cast<TimeSec>(rng.index(30));
      payloads.push_back(random_vp(unit, 8000.0, rng).serialize());
    }
    for (auto& p : payloads) (void)d.ingest().submit(std::move(p));
    while (d.service().upload_channel().pending() != 0)
      std::this_thread::sleep_for(std::chrono::milliseconds(1));

    // Eat the whole fault window: poke the checkpointer through its
    // backoff until every armed fire has failed a cycle. The daemon must
    // stay Running (and its threads alive) the entire time, and health
    // must visibly leave kHealthy.
    bool left_healthy = false;
    while (d.checkpointer()->failures() < failures_per_cycle) {
      d.checkpointer()->poke();
      if (d.health_state() != daemon::HealthState::kHealthy) left_healthy = true;
      survived = survived && d.state() == daemon::LifecycleState::kRunning &&
                 d.ingest().running() && d.checkpointer()->running();
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    left_healthy = left_healthy ||
                   d.health_state() != daemon::HealthState::kHealthy;
    degraded_seen_all = degraded_seen_all && left_healthy;
    row.checkpoint_failures += d.checkpointer()->failures();
    row.injected_failures += failpoint::total_fires();
    failpoint::disarm_all();

    // Recovery: the next successful cycle (written or provably skipped)
    // must snap health back to healthy.
    const std::uint64_t sealed =
        d.checkpointer()->written() + d.checkpointer()->skipped();
    while (d.checkpointer()->written() + d.checkpointer()->skipped() <= sealed) {
      d.checkpointer()->poke();
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    recovered_all =
        recovered_all && d.health_state() == daemon::HealthState::kHealthy;
    survived = survived && d.state() == daemon::LifecycleState::kRunning;

    // The database is now quiescent: capture its shard digests as the
    // bit-for-bit oracle for what a recover must reproduce.
    const auto expected = d.service().database().snapshot().shard_digests();

    if (cycle % 2 == 0) {
      d.kill_for_test();
    } else {
      const bool drained = d.drain();
      const bool stopped = d.stop();
      clean_all = clean_all && drained && stopped;
    }

    std::size_t temps = 0;
    for (const auto& entry : fs::directory_iterator(dir))
      if (entry.path().filename().string().ends_with(".tmp")) ++temps;
    row.leaked_temps += temps;

    store::SegmentStore store(dir.string());
    store::RecoveryStats rec;
    const auto db = store.recover(&rec);
    const auto got = db.snapshot().shard_digests();
    bool match = rec.profiles_rejected == 0 && got.size() == expected.size();
    for (std::size_t i = 0; match && i < got.size(); ++i)
      match = got[i].unit_time == expected[i].unit_time &&
              got[i].digest == expected[i].digest;
    matches_all = matches_all && match;
  }

  row.daemon_survived = survived;
  row.health_degraded_seen = degraded_seen_all;
  row.health_recovered = recovered_all;
  row.clean_drains = clean_all;
  row.recovered_matches = matches_all;
  failpoint::disarm_all();
  fs::remove_all(dir);
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  bench::header("Index", "Spatio-temporal VP index: query + ingest scaling");
  const auto max_vps =
      static_cast<std::size_t>(bench::int_flag(argc, argv, "max_vps", 1000000));
  const int queries = bench::int_flag(argc, argv, "queries", 200);
  const auto ingest_vps =
      static_cast<std::size_t>(bench::int_flag(argc, argv, "ingest_vps", 20000));
  const int server_requests = bench::int_flag(argc, argv, "server_requests", 500);
  const int zipf_requests = bench::int_flag(argc, argv, "zipf_requests", 400);
  const auto viewmap_vps =
      static_cast<std::size_t>(bench::int_flag(argc, argv, "viewmap_vps", 50000));
  const auto checkpoint_vps = std::min<std::size_t>(
      static_cast<std::size_t>(bench::int_flag(argc, argv, "checkpoint_vps", 1000000)),
      max_vps);
  const auto soak_cycles =
      static_cast<std::size_t>(bench::int_flag(argc, argv, "soak_cycles", 5));
  const auto soak_vps =
      static_cast<std::size_t>(bench::int_flag(argc, argv, "soak_vps", 300));
  const auto chaos_cycles =
      static_cast<std::size_t>(bench::int_flag(argc, argv, "chaos_cycles", 6));
  const auto chaos_failures =
      static_cast<std::size_t>(bench::int_flag(argc, argv, "chaos_failures", 4));
  const auto chaos_vps =
      static_cast<std::size_t>(bench::int_flag(argc, argv, "chaos_vps", 200));
  unsigned threads = static_cast<unsigned>(bench::int_flag(argc, argv, "threads", 0));
  if (threads == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    threads = hw == 0 ? 1 : hw;
  }

  std::printf("(hardware_concurrency=%u, ingest workers=%u)\n",
              std::thread::hardware_concurrency(), threads);

  // ── query latency vs database size ───────────────────────────────────
  std::printf("\n-- (site, unit-time) snapshot query latency: grid index vs linear scan --\n");
  std::printf("%-10s %-14s %-14s %-14s %-10s %-8s\n", "VPs", "snapshot (us)",
              "indexed (us)", "linear (us)", "speedup", "hits/q");
  std::vector<QueryRow> query_rows;
  for (std::size_t n : {std::size_t{10000}, std::size_t{100000}, std::size_t{1000000}}) {
    if (n > max_vps) break;
    Rng rng(1000 + n);
    const auto row = bench_queries(n, queries, rng);
    char speedup[32];
    std::snprintf(speedup, sizeof speedup, "%.1fx", row.speedup);
    std::printf("%-10zu %-14.2f %-14.2f %-14.1f %-10s %-8.1f\n", row.vps,
                row.snapshot_us, row.indexed_us, row.linear_us, speedup,
                static_cast<double>(row.hits) / queries);
    query_rows.push_back(row);
  }

  // ── ingest throughput: 1 worker vs N ─────────────────────────────────
  std::printf("\n-- batched ingest throughput (parse + screen + shard commit) --\n");
  Rng ingest_rng(77);
  const auto ingest = bench_ingest(ingest_vps, threads, ingest_rng);
  std::printf("%zu payloads: %.0f VPs/s single-thread, %.0f VPs/s with %u threads "
              "(%.2fx)\n",
              ingest.payloads, ingest.single_vps_per_sec, ingest.multi_vps_per_sec,
              ingest.threads, ingest.speedup);
  if (std::thread::hardware_concurrency() <= 1)
    std::printf("note: this host exposes 1 CPU; multi-thread speedup needs cores.\n");

  // ── snapshot queries under concurrent ingest + eviction ──────────────
  std::printf("\n-- snapshot queries vs concurrent ingest + retention eviction --\n");
  Rng conc_rng(55);
  const std::size_t conc_vps = std::min<std::size_t>(max_vps, 100000);
  const auto conc = bench_concurrent(conc_vps, queries, conc_rng);
  std::printf("%zu VPs: %.2f us/investigation (snapshot + query) while a writer "
              "ingested %.0f VPs/s and ran %zu retention passes\n",
              conc.vps, conc.query_us, conc.writer_vps_per_sec, conc.evictions);
  if (std::thread::hardware_concurrency() <= 1)
    std::printf("note: 1-core host — reader and writer time-slice one CPU, so the\n"
                "      per-investigation latency above includes writer preemption.\n");

  // ── investigation-server throughput ──────────────────────────────────
  std::printf("\n-- investigation server: worker pool vs live ingest + eviction --\n");
  Rng server_rng(99);
  const std::size_t server_vps = std::min<std::size_t>(max_vps, 20000);
  const auto srv = bench_server(server_vps, server_requests, threads, server_rng);
  std::printf("%zu VPs, %zu workers: %.0f requests/s (%.1f us/request end to end), "
              "%zu reports from %zu requests;\n"
              "  %zu snapshots pinned over %zu batches (write-version reuse), "
              "peak queue %zu, writer ingested %.0f VPs/s\n",
              srv.vps, srv.workers, srv.requests_per_sec, srv.request_us,
              srv.reports, srv.requests, srv.snapshots, srv.batches,
              srv.peak_queue, srv.writer_vps_per_sec);
  std::printf("  serve-side latency (viewmap_server_request_us): "
              "p50=%llu us, p90=%llu us, p99=%llu us\n",
              static_cast<unsigned long long>(srv.request_p50_us),
              static_cast<unsigned long long>(srv.request_p90_us),
              static_cast<unsigned long long>(srv.request_p99_us));
  if (std::thread::hardware_concurrency() <= 1)
    std::printf("note: 1-core host — workers, submitter, and the ingest loop\n"
                "      time-slice one CPU; worker scaling needs real cores.\n");

  // ── server_zipf: result cache under a skewed request mix ─────────────
  std::printf("\n-- server_zipf: digest-keyed result cache, Zipf request mix, "
              "cache on vs off --\n");
  // The scenario fixes its own dense (1.2 km)² geometry; 24k VPs over its
  // 12 minutes ≈ 1.4k VPs/km²/minute — the paper's dense urban regime, a
  // few hundred site members per key, so a miss pays a real build.
  const std::size_t zipf_vps = std::min<std::size_t>(max_vps, 24000);
  const auto zipf =
      bench_server_zipf(zipf_vps, zipf_requests, /*alpha=*/1.1, threads);
  std::printf(
      "%zu VPs, %zu workers, %zu requests over %zu keys (alpha=%.1f):\n"
      "  cache on:  %.0f requests/s, hit rate %.1f%%, hit p50=%llu us / "
      "p99=%llu us, serve p50=%llu us / p99=%llu us\n"
      "  cache off: %.0f requests/s  ->  %.1fx speedup; reports %s; "
      "cache %zu / %zu bytes (%s)\n",
      zipf.vps, zipf.workers, zipf.requests, zipf.distinct_keys, zipf.alpha,
      zipf.req_per_sec, zipf.hit_rate * 100.0,
      static_cast<unsigned long long>(zipf.hit_p50_us),
      static_cast<unsigned long long>(zipf.hit_p99_us),
      static_cast<unsigned long long>(zipf.request_p50_us),
      static_cast<unsigned long long>(zipf.request_p99_us),
      zipf.req_per_sec_nocache, zipf.speedup_vs_nocache,
      zipf.reports_match ? "bit-identical" : "DIVERGED",
      zipf.cache_bytes, zipf.cache_capacity_bytes,
      zipf.bytes_ok ? "within bound" : "OVER BOUND");

  // ── viewmap construction: grid+CSR vs naive O(n²) reference ─────────
  std::printf("\n-- viewmap construction: grid+CSR builder vs naive O(n^2) reference --\n");
  std::printf("%-8s %-8s %-12s %-12s %-10s %-10s %-12s %-6s\n", "members", "layout",
              "grid (ms)", "naive (ms)", "speedup", "edges", "edges/s", "match");
  std::vector<ViewmapBuildRow> vm_rows;
  for (std::size_t n : {std::size_t{1000}, std::size_t{10000}, std::size_t{50000}}) {
    if (n > viewmap_vps) break;
    for (const bool dense : {true, false}) {
      Rng rng(3000 + n + (dense ? 1 : 0));
      const auto row = bench_viewmap_build(n, dense, rng);
      char speedup[32];
      std::snprintf(speedup, sizeof speedup, "%.1fx", row.speedup);
      std::printf("%-8zu %-8s %-12.2f %-12.1f %-10s %-10zu %-12.0f %-6s\n", row.n,
                  row.layout, row.grid_ms, row.naive_ms, speedup, row.edges,
                  row.edges_per_sec, row.edges_match ? "yes" : "NO");
      vm_rows.push_back(row);
    }
  }

  // ── observability overhead: registry wired vs disabled ──────────────
  std::printf("\n-- observability overhead: single-thread ingest, registry on vs off --\n");
  Rng obs_rng(31337);
  const auto obs_row = bench_obs_overhead(ingest_vps, obs_rng);
  std::printf("%zu payloads: %.0f VPs/s plain, %.0f VPs/s metered (%.2f%% overhead)\n",
              obs_row.payloads, obs_row.plain_vps_per_sec, obs_row.metered_vps_per_sec,
              obs_row.overhead_pct);

  // ── incremental persistence: segment checkpoints vs full saves ──────
  std::printf("\n-- incremental checkpoint (segment store) vs full save (VMDB rewrite) --\n");
  Rng ckpt_rng(7777);
  RecoveryV2Row rv2;
  const auto ckpt = bench_checkpoint(checkpoint_vps, ckpt_rng, &rv2);
  std::printf(
      "%zu VPs over %zu shards, %zu churned (+%zu VPs):\n"
      "  full save (legacy VMDB rewrite): %.1f ms, %llu bytes\n"
      "  full segment checkpoint (first): %.1f ms, %llu bytes\n"
      "  incremental checkpoint:          %.1f ms, %llu bytes "
      "(%zu segments written, %zu sealed by reference)\n"
      "  cold restart (recover):          %.1f ms, %zu VPs, invariant %s\n",
      ckpt.vps, ckpt.shards, ckpt.churn_shards, ckpt.churn_vps, ckpt.legacy_full_ms,
      static_cast<unsigned long long>(ckpt.legacy_full_bytes), ckpt.full_checkpoint_ms,
      static_cast<unsigned long long>(ckpt.full_checkpoint_bytes),
      ckpt.incr_checkpoint_ms, static_cast<unsigned long long>(ckpt.incr_bytes),
      ckpt.incr_segments_written, ckpt.incr_segments_reused, ckpt.restart_ms,
      ckpt.recovered_vps, ckpt.recovered_matches ? "OK" : "VIOLATED");

  // ── recovery_v2: packed codec + parallel restore vs the v1 stream ───
  std::printf("\n-- recovery_v2: packed v2 restart vs v1 stream restart --\n");
  std::printf(
      "%zu VPs over %zu shards, %u recovery thread(s):\n"
      "  v1 stream cold restart: %.1f ms\n"
      "  v2 packed cold restart: %.1f ms (%.1fx vs same-run v1), invariant %s\n"
      "  v2 phases: read %.1f ms, validate %.1f ms, parse %.1f ms "
      "(worker-summed), adopt %.1f ms\n",
      rv2.vps, rv2.shards, rv2.threads, rv2.restart_v1_ms, rv2.restart_v2_ms,
      rv2.speedup_vs_v1, rv2.recovered_matches ? "OK" : "VIOLATED", rv2.read_ms,
      rv2.validate_ms, rv2.parse_ms, rv2.adopt_ms);
  if (rv2.baseline_restart_ms > 0.0)
    std::printf("  vs recorded v1 baseline (%.1f ms at 1M VPs): %.1fx\n",
                rv2.baseline_restart_ms, rv2.speedup_vs_baseline);

  // ── daemon soak: the assembled service under kill -9 cycles ─────────
  std::printf("\n-- daemon soak: ServiceLifecycle under repeated kill -9 + restart --\n");
  Rng soak_rng(4242);
  const auto soak = bench_daemon_soak(soak_cycles, soak_vps, soak_rng);
  std::printf(
      "%zu kill cycles, %zu VPs submitted (%.0f VPs/s sustained through the "
      "ingest drain):\n"
      "  %zu checkpoints sealed, restart recovery %.1f ms mean / %.1f ms max, "
      "%zu VPs in the final cold recover, invariant %s\n",
      soak.kill_cycles, soak.vps_submitted, soak.sustained_ingest_vps_per_sec,
      soak.checkpoints, soak.recovery_ms_mean, soak.recovery_ms_max,
      soak.vps_recovered, soak.recovered_matches ? "OK" : "VIOLATED");

  // ── daemon chaos: the soak under injected durable-I/O failures ──────
  std::printf("\n-- daemon chaos: failpoint-injected I/O failures through the "
              "checkpoint path --\n");
  Rng chaos_rng(31415);
  const auto chaos =
      bench_daemon_chaos(chaos_cycles, chaos_failures, chaos_vps, chaos_rng);
  std::printf(
      "%zu cycles, %zu injected faults, %zu checkpoint failures eaten:\n"
      "  daemon survived %s, health degraded %s / recovered %s, clean drains "
      "%s, leaked temps %zu, recovery invariant %s\n",
      chaos.cycles, chaos.injected_failures, chaos.checkpoint_failures,
      chaos.daemon_survived ? "yes" : "NO",
      chaos.health_degraded_seen ? "yes" : "NO",
      chaos.health_recovered ? "yes" : "NO", chaos.clean_drains ? "yes" : "NO",
      chaos.leaked_temps, chaos.recovered_matches ? "OK" : "VIOLATED");

  // ── JSON trajectory ──────────────────────────────────────────────────
  FILE* json = std::fopen("BENCH_index.json", "w");
  if (json != nullptr) {
    std::fprintf(json, "{\n  \"hardware_concurrency\": %u,\n  \"query\": [\n",
                 std::thread::hardware_concurrency());
    for (std::size_t i = 0; i < query_rows.size(); ++i) {
      const auto& r = query_rows[i];
      std::fprintf(json,
                   "    {\"vps\": %zu, \"snapshot_us\": %.3f, \"indexed_us\": %.3f, "
                   "\"linear_us\": %.3f, \"speedup\": %.2f}%s\n",
                   r.vps, r.snapshot_us, r.indexed_us, r.linear_us, r.speedup,
                   i + 1 < query_rows.size() ? "," : "");
    }
    std::fprintf(json,
                 "  ],\n  \"ingest\": {\"payloads\": %zu, \"single_vps_per_sec\": %.1f, "
                 "\"threads\": %u, \"multi_vps_per_sec\": %.1f, \"speedup\": %.3f%s},\n",
                 ingest.payloads, ingest.single_vps_per_sec, ingest.threads,
                 ingest.multi_vps_per_sec, ingest.speedup,
                 std::thread::hardware_concurrency() <= 1
                     ? ", \"note\": \"single-core host: thread scaling not observable\""
                     : "");
    std::fprintf(json,
                 "  \"snapshot_concurrent\": {\"vps\": %zu, \"query_us\": %.3f, "
                 "\"writer_vps_per_sec\": %.1f, \"retention_passes\": %zu%s},\n",
                 conc.vps, conc.query_us, conc.writer_vps_per_sec, conc.evictions,
                 std::thread::hardware_concurrency() <= 1
                     ? ", \"note\": \"single-core host: reader/writer time-slice one "
                       "CPU; latency includes writer preemption\""
                     : "");
    std::fprintf(json, "  \"viewmap_build\": [\n");
    for (std::size_t i = 0; i < vm_rows.size(); ++i) {
      const auto& r = vm_rows[i];
      std::fprintf(json,
                   "    {\"members\": %zu, \"layout\": \"%s\", "
                   "\"density_per_km2\": %.0f, \"build_threads_max\": %zu, "
                   "\"grid_ms\": %.3f, \"naive_ms\": %.3f, \"speedup\": %.2f, "
                   "\"edges\": %zu, \"edges_per_sec\": %.0f, \"edges_match\": %s}%s\n",
                   r.n, r.layout, r.density_per_km2, r.build_threads_max, r.grid_ms,
                   r.naive_ms, r.speedup, r.edges, r.edges_per_sec,
                   r.edges_match ? "true" : "false",
                   i + 1 < vm_rows.size() ? "," : "");
    }
    std::fprintf(json, "  ],\n");
    std::fprintf(
        json,
        "  \"checkpoint_incremental\": {\"vps\": %zu, \"shards\": %zu, "
        "\"churn_shards\": %zu, \"churn_vps\": %zu, \"legacy_full_ms\": %.1f, "
        "\"legacy_full_bytes\": %llu, \"full_checkpoint_ms\": %.1f, "
        "\"full_checkpoint_bytes\": %llu, \"incr_checkpoint_ms\": %.1f, "
        "\"incr_bytes\": %llu, \"segments_written\": %zu, \"segments_reused\": %zu, "
        "\"restart_ms\": %.1f, \"recovered_vps\": %zu, \"recovered_matches\": %s, "
        "\"note\": \"fsync on; segment writes proportional to churned shards\"},\n",
        ckpt.vps, ckpt.shards, ckpt.churn_shards, ckpt.churn_vps, ckpt.legacy_full_ms,
        static_cast<unsigned long long>(ckpt.legacy_full_bytes), ckpt.full_checkpoint_ms,
        static_cast<unsigned long long>(ckpt.full_checkpoint_bytes),
        ckpt.incr_checkpoint_ms, static_cast<unsigned long long>(ckpt.incr_bytes),
        ckpt.incr_segments_written, ckpt.incr_segments_reused, ckpt.restart_ms,
        ckpt.recovered_vps, ckpt.recovered_matches ? "true" : "false");
    std::fprintf(
        json,
        "  \"recovery_v2\": {\"vps\": %zu, \"shards\": %zu, \"threads\": %u, "
        "\"restart_v1_ms\": %.1f, \"restart_v2_ms\": %.1f, "
        "\"speedup_vs_v1\": %.2f, \"baseline_restart_ms\": %.1f, "
        "\"speedup_vs_baseline\": %.2f, \"read_ms\": %.1f, "
        "\"validate_ms\": %.1f, \"parse_ms\": %.1f, \"adopt_ms\": %.1f, "
        "\"recovered_matches\": %s, \"note\": \"packed v2 codec + parallel "
        "restore; baseline is the recorded v1 restart at 1M VPs "
        "(0.0 when this run used a different VP count)\"},\n",
        rv2.vps, rv2.shards, rv2.threads, rv2.restart_v1_ms, rv2.restart_v2_ms,
        rv2.speedup_vs_v1, rv2.baseline_restart_ms, rv2.speedup_vs_baseline,
        rv2.read_ms, rv2.validate_ms, rv2.parse_ms, rv2.adopt_ms,
        rv2.recovered_matches ? "true" : "false");
    std::fprintf(json,
                 "  \"server_throughput\": {\"vps\": %zu, \"workers\": %zu, "
                 "\"requests\": %zu, \"requests_per_sec\": %.1f, \"request_us\": %.1f, "
                 "\"request_p50_us\": %llu, \"request_p90_us\": %llu, "
                 "\"request_p99_us\": %llu, "
                 "\"reports\": %zu, \"writer_vps_per_sec\": %.1f, \"snapshots\": %zu, "
                 "\"batches\": %zu, \"peak_queue\": %zu%s},\n",
                 srv.vps, srv.workers, srv.requests, srv.requests_per_sec,
                 srv.request_us,
                 static_cast<unsigned long long>(srv.request_p50_us),
                 static_cast<unsigned long long>(srv.request_p90_us),
                 static_cast<unsigned long long>(srv.request_p99_us),
                 srv.reports, srv.writer_vps_per_sec, srv.snapshots,
                 srv.batches, srv.peak_queue,
                 std::thread::hardware_concurrency() <= 1
                     ? ", \"note\": \"single-core host: workers/submitter/ingest "
                       "time-slice one CPU; worker scaling needs cores\""
                     : "");
    std::fprintf(
        json,
        "  \"server_zipf\": {\"vps\": %zu, \"workers\": %zu, \"requests\": %zu, "
        "\"alpha\": %.2f, \"distinct_keys\": %zu, \"hit_rate\": %.4f, "
        "\"req_per_sec\": %.1f, \"req_per_sec_nocache\": %.1f, "
        "\"speedup_vs_nocache\": %.2f, \"hit_p50_us\": %llu, \"hit_p99_us\": %llu, "
        "\"request_p50_us\": %llu, \"request_p99_us\": %llu, "
        "\"reports_match\": %s, \"cache_bytes\": %zu, "
        "\"cache_capacity_bytes\": %zu, \"bytes_ok\": %s, "
        "\"note\": \"Zipf mix over quiescent hot minutes with live ingest in "
        "the newest minutes; reports_match compares cache-hit vs fresh-build "
        "fingerprints per key\"},\n",
        zipf.vps, zipf.workers, zipf.requests, zipf.alpha, zipf.distinct_keys,
        zipf.hit_rate, zipf.req_per_sec, zipf.req_per_sec_nocache,
        zipf.speedup_vs_nocache,
        static_cast<unsigned long long>(zipf.hit_p50_us),
        static_cast<unsigned long long>(zipf.hit_p99_us),
        static_cast<unsigned long long>(zipf.request_p50_us),
        static_cast<unsigned long long>(zipf.request_p99_us),
        zipf.reports_match ? "true" : "false", zipf.cache_bytes,
        zipf.cache_capacity_bytes, zipf.bytes_ok ? "true" : "false");
    std::fprintf(json,
                 "  \"obs_overhead\": {\"payloads\": %zu, "
                 "\"plain_vps_per_sec\": %.1f, \"metered_vps_per_sec\": %.1f, "
                 "\"overhead_pct\": %.2f},\n",
                 obs_row.payloads, obs_row.plain_vps_per_sec,
                 obs_row.metered_vps_per_sec, obs_row.overhead_pct);
    std::fprintf(json,
                 "  \"daemon_soak\": {\"kill_cycles\": %zu, "
                 "\"vps_submitted\": %zu, \"sustained_ingest_vps_per_sec\": %.1f, "
                 "\"checkpoints\": %zu, \"recovery_ms_mean\": %.2f, "
                 "\"recovery_ms_max\": %.2f, \"vps_recovered\": %zu, "
                 "\"recovered_matches\": %s, \"note\": \"fsync on; kill -9 via "
                 "kill_for_test between cycles\"},\n",
                 soak.kill_cycles, soak.vps_submitted,
                 soak.sustained_ingest_vps_per_sec, soak.checkpoints,
                 soak.recovery_ms_mean, soak.recovery_ms_max, soak.vps_recovered,
                 soak.recovered_matches ? "true" : "false");
    std::fprintf(json,
                 "  \"daemon_chaos\": {\"cycles\": %zu, "
                 "\"injected_failures\": %zu, \"checkpoint_failures\": %zu, "
                 "\"daemon_survived\": %s, \"health_degraded_seen\": %s, "
                 "\"health_recovered\": %s, \"clean_drains\": %s, "
                 "\"leaked_temps\": %zu, \"recovered_matches\": %s, "
                 "\"note\": \"failpoint windows: enospc/eio/fsync/rename/torn "
                 "writes; alternating kill -9 and clean drains\"}\n}\n",
                 chaos.cycles, chaos.injected_failures,
                 chaos.checkpoint_failures,
                 chaos.daemon_survived ? "true" : "false",
                 chaos.health_degraded_seen ? "true" : "false",
                 chaos.health_recovered ? "true" : "false",
                 chaos.clean_drains ? "true" : "false", chaos.leaked_temps,
                 chaos.recovered_matches ? "true" : "false");
    std::fclose(json);
    std::printf("\nwrote BENCH_index.json\n");
  }
  return 0;
}
