// Fig. 17: VLR vs distance on highways — speed vs traffic volume.
//
// Paper: VLR is insensitive to vehicle speed (Doppler) but drops under
// heavy traffic (blockage by tall vehicles). We measure one-minute
// two-way linkage for convoys at 50/80 km/h under light and heavy
// interposed-traffic densities.
#include "bench_util.h"
#include "sim/simulator.h"

using namespace viewmap;

namespace {

/// Linkage ratio for two vehicles driving the same highway `d` apart.
double convoy_vlr(double d, double speed_kmh, double blocker_density, int minutes,
                  std::uint64_t seed) {
  sim::SimConfig cfg;
  cfg.seed = seed;
  cfg.minutes = minutes;
  cfg.guards_enabled = false;
  cfg.collect_pair_stats = true;
  cfg.video_bytes_per_second = 16;
  cfg.traffic_blocker_density_per_m = blocker_density;

  road::CityMap highway;
  highway.bounds = {{0, -100}, {1e6, 100}};
  std::vector<sim::VehicleMotion> fleet;
  const double v = sim::kmh(speed_kmh);
  fleet.push_back(sim::VehicleMotion::scripted({{0, 0}, {1e6, 0}}, v));
  fleet.push_back(sim::VehicleMotion::scripted({{d, 0}, {1e6 + d, 0}}, v));

  sim::TrafficSimulator sim(std::move(highway), cfg, std::move(fleet));
  const auto result = sim.run();
  int linked = 0;
  for (const auto& obs : result.pair_minutes) linked += obs.vp_linked;
  return static_cast<double>(linked) / minutes;
}

}  // namespace

int main(int argc, char** argv) {
  bench::header("Fig. 17", "VLR vs distance: speed and traffic volume");
  const int minutes = bench::int_flag(argc, argv, "minutes", 30);
  std::printf("(%d minutes per point; Hwy1 = light traffic 0.0005/m, Hwy2 = heavy "
              "0.012/m)\n\n",
              minutes);

  struct Config {
    const char* label;
    double speed;
    double density;
  };
  const Config configs[] = {{"Hwy1 80km/h (light)", 80, 0.0005},
                            {"Hwy1 50km/h (light)", 50, 0.0005},
                            {"Hwy2 80km/h (heavy)", 80, 0.012},
                            {"Hwy2 50km/h (heavy)", 50, 0.012}};

  std::printf("%-10s", "dist(m)");
  for (const auto& c : configs) std::printf(" %-22s", c.label);
  std::printf("\n");
  std::uint64_t seed = 100;
  for (double d = 50; d <= 400; d += 50) {
    std::printf("%-10.0f", d);
    for (const auto& c : configs)
      std::printf(" %-22.3f", convoy_vlr(d, c.speed, c.density, minutes, ++seed));
    std::printf("\n");
  }
  std::printf("\npaper shape: 50 vs 80 km/h curves overlap (speed-insensitive); "
              "heavy traffic drops VLR with distance.\n");
  return 0;
}
