// Shared VP-linkage-ratio (VLR) measurement for the Fig. 15/17 benches.
//
// VLR(d): the probability that two vehicles separated by d form a two-way
// viewlink within one minute of VD broadcasts — exactly what the field
// experiments measured while driving. One trial = 60 per-second delivery
// attempts in each direction; linked iff both directions got ≥1 frame
// through (the builder then stores the neighbor and Bloom membership
// follows deterministically).
#pragma once

#include "common/rng.h"
#include "dsrc/channel.h"
#include "geo/obstacle_index.h"
#include "road/city.h"

namespace viewmap::bench {

inline bool minute_linked(const dsrc::BroadcastChannel& channel,
                          const dsrc::ChannelEnvironment& env, geo::Vec2 a,
                          geo::Vec2 b, Rng& rng) {
  bool ab = false;
  bool ba = false;
  for (int s = 0; s < 60 && !(ab && ba); ++s) {
    ab = ab || channel.try_deliver(a, b, env, rng);
    ba = ba || channel.try_deliver(b, a, env, rng);
  }
  return ab && ba;
}

/// Random point on a random road segment of the map.
inline geo::Vec2 random_road_point(const road::RoadNetwork& net, Rng& rng) {
  for (int attempt = 0; attempt < 64; ++attempt) {
    const auto a = static_cast<road::NodeId>(rng.index(net.node_count()));
    const auto nbrs = net.neighbors(a);
    if (nbrs.empty()) continue;
    const auto& e = nbrs[rng.index(nbrs.size())];
    return geo::lerp(net.node_pos(a), net.node_pos(e.to), rng.uniform());
  }
  return net.node_pos(0);
}

/// VLR at separation `d`: vehicles at random road points, the partner `d`
/// away in a random direction (clamped back toward the map on failure).
inline double measure_vlr(const road::CityMap& map, double d, int samples,
                          double traffic_density, Rng& rng) {
  const geo::ObstacleIndex index(
      std::vector<geo::Rect>(map.buildings.begin(), map.buildings.end()));
  const dsrc::BroadcastChannel channel;
  const dsrc::ChannelEnvironment env{&index, traffic_density};

  int linked = 0;
  for (int i = 0; i < samples; ++i) {
    const geo::Vec2 a = random_road_point(map.roads, rng);
    const double theta = rng.uniform(0.0, 6.28318530718);
    // 0.999 keeps the exact-range sample inside the decode horizon rather
    // than letting floating-point noise flip the d == max_range boundary.
    const geo::Vec2 b{a.x + 0.999 * d * std::cos(theta),
                      a.y + 0.999 * d * std::sin(theta)};
    linked += minute_linked(channel, env, a, b, rng);
  }
  return static_cast<double>(linked) / samples;
}

}  // namespace viewmap::bench
