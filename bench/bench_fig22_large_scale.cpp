// Fig. 22 (a–f): the paper's large-scale trace-driven evaluation.
//
//   (a) location entropy over time            (b) tracking success ratio
//   (c) average contact time vs speed         (d) accuracy vs attacker position
//   (e) accuracy under concentration attacks  (f) % viewmap member VPs
//
// Paper setting: ns-3 + SUMO, 1000 vehicles over an 8×8 km² Seoul
// extract. Default here is a scaled city (pass --vehicles/--extent/
// --minutes to approach paper scale); every sub-figure prints its paper
// reference shape.
#include <algorithm>
#include <limits>
#include <memory>

#include "attack/experiments.h"
#include "bench_util.h"
#include "privacy_bench_common.h"
#include "system/viewmap_graph.h"
#include "system/vp_database.h"

using namespace viewmap;

namespace {

sim::SimResult simulate_city(int vehicles, double extent, int minutes,
                             double speed_kmh, std::uint64_t seed) {
  Rng city_rng(seed);
  road::GridCityConfig ccfg;
  ccfg.extent_m = extent;
  ccfg.block_m = 250.0;
  ccfg.building_fill = 0.6;
  auto city = road::make_grid_city(ccfg, city_rng);

  sim::SimConfig cfg;
  cfg.seed = seed + 1;
  cfg.vehicle_count = vehicles;
  cfg.minutes = minutes;
  cfg.mean_speed_kmh = speed_kmh;
  cfg.video_bytes_per_second = 16;
  sim::TrafficSimulator sim(std::move(city), cfg);
  return sim.run();
}

/// Viewmap of minute 0 with the first actual VP as trust seed. The holder
/// keeps the database alive for as long as the viewmap borrows from it.
struct HeldViewmap {
  std::unique_ptr<sys::VpDatabase> db;
  std::unique_ptr<sys::Viewmap> map;
};

HeldViewmap viewmap_of(const sim::SimResult& result) {
  HeldViewmap held;
  held.db = std::make_unique<sys::VpDatabase>();
  // Feed the simulated wall-clock first (the single trust seed sits at
  // minute ~0, and long --minutes runs would otherwise fall outside the
  // upload timeliness window and be silently dropped).
  TimeSec newest = std::numeric_limits<TimeSec>::min();
  for (const auto& rec : result.profiles)
    newest = std::max(newest, rec.profile.unit_time());
  if (newest != std::numeric_limits<TimeSec>::min()) held.db->advance_clock(newest);
  bool trusted_done = false;
  for (const auto& rec : result.profiles) {
    if (!trusted_done && !rec.guard) {
      held.db->upload_trusted(rec.profile);
      trusted_done = true;
    } else {
      held.db->upload(rec.profile);
    }
  }
  const sys::ViewmapBuilder builder;
  held.map = std::make_unique<sys::Viewmap>(
      builder.build(held.db->snapshot(), {{-1e6, -1e6}, {1e6, 1e6}}, 0));
  return held;
}

/// Converts a traffic-derived viewmap into the abstract attack substrate.
attack::AttackGraph to_attack_graph(const sys::Viewmap& map, Rng& rng,
                                    double site_half) {
  attack::AttackGraph g;
  g.pos.reserve(map.size());
  g.adj.reserve(map.size());
  for (std::size_t i = 0; i < map.size(); ++i) {
    g.pos.push_back(map.member(i).location_at(30));
    const auto nbrs = map.neighbors(i);
    g.adj.emplace_back(nbrs.begin(), nbrs.end());
    if (map.is_trusted(i)) g.trusted.push_back(i);
  }
  g.fake.assign(map.size(), false);
  // Site around a random member connected to the trust seed.
  const auto hops = g.hops_from_trusted();
  std::vector<std::size_t> reachable;
  for (std::size_t i = 0; i < g.size(); ++i)
    if (hops[i] != SIZE_MAX && hops[i] >= 2) reachable.push_back(i);
  const geo::Vec2 c = reachable.empty() ? g.pos[0] : g.pos[reachable[rng.index(reachable.size())]];
  g.site = {{c.x - site_half, c.y - site_half}, {c.x + site_half, c.y + site_half}};
  return g;
}

}  // namespace

int main(int argc, char** argv) {
  bench::header("Fig. 22", "Large-scale trace-driven evaluation (a-f)");
  const int vehicles = bench::int_flag(argc, argv, "vehicles", 300);
  const double extent = bench::int_flag(argc, argv, "extent", 4000);
  const int minutes = bench::int_flag(argc, argv, "minutes", 10);
  std::printf("(%d vehicles, %.0fx%.0f m, %d min; paper: 1000 over 8x8 km, 20 min)\n",
              vehicles, extent, extent, minutes);

  // ── (a) + (b): privacy under tracking ────────────────────────────────
  std::printf("\n-- Fig. 22a/22b: entropy and tracking success (mixed speeds) --\n");
  const auto privacy = bench::run_privacy(vehicles, extent, minutes, 4242);
  std::printf("%-8s %-14s %-14s %-16s %-16s\n", "minute", "entropy", "success",
              "entropy(noguard)", "success(noguard)");
  for (std::size_t t = 0; t < privacy.with_guards.minutes.size(); ++t)
    std::printf("%-8.0f %-14.3f %-14.3f %-16.3f %-16.3f\n",
                privacy.with_guards.minutes[t], privacy.with_guards.mean_entropy[t],
                privacy.with_guards.mean_success[t],
                privacy.without_guards.mean_entropy[t],
                privacy.without_guards.mean_success[t]);
  std::printf("paper: ~8 bits / success ≈0.01 by 10 min; >0.9 without guards.\n");

  // ── (c): contact time vs speed; (f): viewmap membership ─────────────
  std::printf("\n-- Fig. 22c: avg contact time | Fig. 22f: viewmap member VPs --\n");
  std::printf("%-10s %-18s %-18s\n", "speed", "contact time (s)", "member VPs (%)");
  for (double speed : {30.0, 50.0, 70.0}) {
    const auto result = simulate_city(vehicles, extent, 2, speed,
                                      9000 + static_cast<std::uint64_t>(speed));
    const auto held = viewmap_of(result);
    const auto& map = *held.map;
    const double member_pct =
        map.size() ? 100.0 * (1.0 - static_cast<double>(map.isolated_from_trusted()) /
                                        static_cast<double>(map.size()))
                   : 0.0;
    std::printf("%-3.0fkm/h    %-18.1f %-18.1f\n", speed,
                result.contact_seconds.mean(), member_pct);
  }
  std::printf("paper: contact ≈8-13 s falling with speed; members >97%%.\n");

  // ── (d) + (e): attacks on traffic-derived viewmaps ───────────────────
  std::printf("\n-- Fig. 22d: accuracy vs attacker position (traffic viewmaps) --\n");
  const auto base_result = simulate_city(vehicles, extent, 1, 50.0, 7777);
  const auto base_held = viewmap_of(base_result);
  const auto& base_map = *base_held.map;
  sys::TrustRankConfig tr;
  tr.tolerance = 1e-10;
  const int runs = bench::int_flag(argc, argv, "runs", 20);
  Rng rng(55);

  std::printf("%-12s", "hops\\fakes");
  for (int pct : {100, 300, 500}) std::printf(" %6d%%", pct);
  std::printf("\n");
  for (const auto& bucket : std::vector<std::pair<std::size_t, std::size_t>>{
           {1, 5}, {6, 10}, {11, 15}}) {
    std::printf("%3zu - %-6zu", bucket.first, bucket.second);
    for (int pct : {100, 300, 500}) {
      int correct = 0, ran = 0;
      for (int r = 0; r < runs; ++r) {
        attack::AttackGraph g = to_attack_graph(base_map, rng, 200.0);
        attack::AttackPlan plan;
        plan.fake_count = base_map.size() * static_cast<std::size_t>(pct) / 100;
        plan.attacker_count = 10;
        plan.hop_bucket = bucket;
        const auto out = attack::run_graph_trial(g, plan, 400.0, tr, rng);
        if (!out.ran) continue;
        ++ran;
        correct += out.correct;
      }
      if (ran == 0)
        std::printf("      -");
      else
        std::printf(" %5.1f%%", 100.0 * correct / ran);
    }
    std::printf("\n");
  }
  std::printf("paper: 100%% in most cases, 82%% worst with attackers adjacent to "
              "the trusted VP.\n");

  std::printf("\n-- Fig. 22e: accuracy under concentration attacks --\n");
  std::printf("%-14s", "dummies\\fakes");
  for (int pct : {100, 300, 500}) std::printf(" %6d%%", pct);
  std::printf("\n");
  for (std::size_t dummies : {50u, 125u}) {
    std::printf("%-14zu", dummies);
    for (int pct : {100, 300, 500}) {
      int correct = 0, ran = 0;
      for (int r = 0; r < runs; ++r) {
        attack::AttackGraph g = to_attack_graph(base_map, rng, 200.0);
        attack::AttackPlan plan;
        plan.fake_count = base_map.size() * static_cast<std::size_t>(pct) / 100;
        plan.attacker_count = 2;
        plan.dummies_per_attacker = dummies;
        const auto out = attack::run_graph_trial(g, plan, 400.0, tr, rng);
        if (!out.ran) continue;
        ++ran;
        correct += out.correct;
      }
      if (ran == 0)
        std::printf("      -");
      else
        std::printf(" %5.1f%%", 100.0 * correct / ran);
    }
    std::printf("\n");
  }
  std::printf("paper: accuracy stays above ≈95%% — topology, not volume, bounds "
              "attacker trust.\n");
  return 0;
}
