// Table 2: VP linkage and on-video ratios across staged LOS/NLOS
// scenarios (the paper's semi-controlled field experiments, Fig. 19).
//
// Each row replays the geometric essence of one staged two-vehicle
// scenario for N minutes and reports (i) the fraction of minutes a
// two-way viewlink formed and (ii) the fraction where either dashcam
// captured the other vehicle.
#include "bench_util.h"
#include "sim/scenarios.h"

using namespace viewmap;

int main(int argc, char** argv) {
  bench::header("Table 2", "VP linkage vs video visibility per scenario");
  const int minutes = bench::int_flag(argc, argv, "minutes", 25);
  std::printf("(%d minutes per scenario)\n\n", minutes);

  // Paper's measured columns, in scenario order, for reference.
  struct PaperRow {
    int linkage_pct;
    int video_pct;
  };
  const PaperRow paper[] = {{100, 100}, {0, 0},  {100, 93}, {9, 0},  {84, 77},
                            {0, 0},     {61, 52}, {13, 0},  {100, 100}, {0, 0},
                            {39, 18},   {0, 0},  {56, 51},  {3, 0}};

  std::printf("%-22s %-10s | %-9s %-9s | %-9s %-9s\n", "Scenario", "Condition",
              "link(us)", "video(us)", "link(ppr)", "video(ppr)");
  auto scenarios = sim::table2_scenarios(1);
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    const auto outcome =
        sim::run_staged(std::move(scenarios[i]), minutes, 500 + i);
    std::printf("%-22s %-10s | %8.0f%% %8.0f%% | %8d%% %8d%%\n",
                outcome.name.c_str(), sim::to_string(outcome.condition),
                100.0 * outcome.vp_linkage_ratio, 100.0 * outcome.on_video_ratio,
                paper[i].linkage_pct, paper[i].video_pct);
  }
  std::printf("\nshape to check: LOS rows ≈100/100, NLOS rows ≈0/0, mixed rows in "
              "between with video ≤ linkage.\n");
  return 0;
}
