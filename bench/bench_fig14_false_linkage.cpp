// Fig. 14: Bloom-filter false linkage rate vs number of neighbor VPs,
// m ∈ {1024, 2048, 3072, 4096} bits, optimal k = (m/n)·ln2.
//
// Analytic curves (the paper's model) plus an empirical column measured
// on the real filter with the deployed two-way membership check at the
// protocol configuration (m = 2048, k = 3).
#include "bench_util.h"
#include "bloom/bloom_filter.h"
#include "common/rng.h"
#include "vp/view_profile.h"

using namespace viewmap;

namespace {

/// Empirical probability that two *unrelated* filters, each loaded with n
/// random 72-byte elements, pass the deployed two-way membership check
/// against one another's boundary elements.
double empirical_two_way(std::size_t n, int trials, Rng& rng) {
  int linked = 0;
  std::vector<std::uint8_t> e(72);
  for (int t = 0; t < trials; ++t) {
    bloom::BloomFilter a(vp::kBloomBits, vp::kBloomHashes);
    bloom::BloomFilter b(vp::kBloomBits, vp::kBloomHashes);
    std::vector<std::uint8_t> probe_a(72), probe_b(72);
    rng.fill_bytes(probe_a);
    rng.fill_bytes(probe_b);
    for (std::size_t i = 0; i < n; ++i) {
      rng.fill_bytes(e);
      a.insert(e);
      rng.fill_bytes(e);
      b.insert(e);
    }
    linked += a.maybe_contains(probe_b) && b.maybe_contains(probe_a);
  }
  return static_cast<double>(linked) / trials;
}

}  // namespace

int main(int argc, char** argv) {
  bench::header("Fig. 14", "False linkage rate vs number of neighbor VPs");
  const int trials = bench::int_flag(argc, argv, "trials", 3000);

  std::printf("%-10s %-12s %-12s %-12s %-12s %-16s\n", "neighbors", "m=1024",
              "m=2048", "m=3072", "m=4096", "empirical(2048,k=3)");
  Rng rng(7);
  for (std::size_t n = 50; n <= 400; n += 50) {
    std::printf("%-10zu", n);
    for (std::size_t m : {1024u, 2048u, 3072u, 4096u}) {
      const int k = bloom::optimal_hash_count(m, n);
      std::printf(" %-12.6f", bloom::false_linkage_rate(m, n, k));
    }
    std::printf(" %-16.6f\n", empirical_two_way(n, trials, rng));
  }
  std::printf("\npaper operating point: m = 2048 bits ⇒ ≈0.1%% false linkage at "
              "300 neighbors (§6.3.2).\n");
  std::printf("note: the paper's displayed formula (2nk/2k exponents) does not\n"
              "reproduce its own 0.1%% claim; we model a false positive in each\n"
              "direction independently — see EXPERIMENTS.md.\n");
  return 0;
}
