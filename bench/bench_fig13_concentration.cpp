// Fig. 13: verification accuracy under concentration attacks.
//
// Each attacker pre-positions many legitimate-but-dummy VPs (25..125) in
// the viewmap — e.g. by driving around with prepared dummy videos — and
// then injects fakes. Paper shape: accuracy stays above ≈95% because
// trust scores are bounded by topology, not by how many VPs the attacker
// holds (§6.3.1).
#include "attack/experiments.h"
#include "bench_util.h"

using namespace viewmap;

int main(int argc, char** argv) {
  bench::header("Fig. 13", "Accuracy under concentration attacks");
  const int runs = bench::int_flag(argc, argv, "runs", 30);
  std::printf("(%d trials per cell; paper uses 1000 — pass --runs=N to scale)\n\n",
              runs);

  attack::GeometricConfig geo_cfg;
  sys::TrustRankConfig tr;
  tr.tolerance = 1e-10;

  const std::vector<std::size_t> dummies{25, 50, 75, 100, 125};
  const std::vector<int> fake_pct{100, 200, 300, 400, 500};

  std::printf("%-14s", "dummies\\fakes");
  for (int pct : fake_pct) std::printf(" %6d%%", pct);
  std::printf("\n");

  Rng rng(43);
  for (std::size_t d : dummies) {
    std::printf("%-14zu", d);
    for (int pct : fake_pct) {
      attack::AttackPlan plan;
      plan.fake_count = geo_cfg.legit_count * static_cast<std::size_t>(pct) / 100;
      plan.attacker_count = 2;  // few humans, many dummy VPs each
      plan.dummies_per_attacker = d;
      const double acc = attack::geometric_accuracy(geo_cfg, plan, tr, runs, rng);
      std::printf(" %6.1f%%", 100.0 * acc);
    }
    std::printf("\n");
  }
  std::printf("\npaper reference: accuracy stays above ~95%% across the sweep.\n");
  return 0;
}
