// Fig. 20: correlation between VP links and video contents vs distance.
//
// Paper: over all field data, the Pearson correlation between "two VPs
// are viewlinked" and "either video shows the other vehicle" is 0.7-0.9
// across separation distances and environments — VP linkage is a proxy
// for shared view. We reproduce it by driving a fleet per environment,
// collecting per-pair-per-minute observations, bucketing by distance and
// correlating the two binary outcomes.
#include <map>

#include "bench_util.h"
#include "common/stats.h"
#include "sim/simulator.h"

using namespace viewmap;

namespace {

struct Bucket {
  std::vector<double> linked;
  std::vector<double> seen;
};

std::map<int, Bucket> collect(road::CityMap city, int vehicles, int minutes,
                              std::uint64_t seed, double traffic_density) {
  sim::SimConfig cfg;
  cfg.seed = seed;
  cfg.vehicle_count = vehicles;
  cfg.minutes = minutes;
  cfg.guards_enabled = false;
  cfg.collect_pair_stats = true;
  cfg.video_bytes_per_second = 16;
  cfg.camera_range_m = 400.0;  // §7.2: open-road pairs film each other at range
  cfg.camera_fov_deg = 160.0;
  cfg.traffic_blocker_density_per_m = traffic_density;
  sim::TrafficSimulator sim(std::move(city), cfg);
  const auto result = sim.run();

  std::map<int, Bucket> buckets;  // key: 50 m distance bin
  for (const auto& obs : result.pair_minutes) {
    auto& b = buckets[static_cast<int>(obs.min_distance_m / 50.0) * 50 + 50];
    b.linked.push_back(obs.vp_linked ? 1.0 : 0.0);
    b.seen.push_back(obs.on_video ? 1.0 : 0.0);
  }
  return buckets;
}

}  // namespace

int main(int argc, char** argv) {
  bench::header("Fig. 20", "Correlation of VP links and video contents");
  const int minutes = bench::int_flag(argc, argv, "minutes", 8);
  const int vehicles = bench::int_flag(argc, argv, "vehicles", 30);
  std::printf("(%d vehicles, %d minutes per environment)\n\n", vehicles, minutes);

  struct Env {
    const char* label;
    road::Environment kind;
  };
  const Env envs[] = {{"Downtown", road::Environment::kDowntown},
                      {"Residential", road::Environment::kResidential},
                      {"Highway", road::Environment::kHighway}};

  std::map<const char*, std::map<int, Bucket>> results;
  Rng map_rng(9);
  for (const auto& env : envs) {
    auto city = road::make_environment(env.kind, 2000.0, map_rng);
    // The highway has no buildings; its outcome variance comes from heavy
    // vehicle traffic blocking sight lines, as on the paper's testbed runs.
    const double traffic =
        env.kind == road::Environment::kHighway ? 0.006 : 0.0;
    results[env.label] = collect(std::move(city), vehicles, minutes,
                                 1000 + static_cast<std::uint64_t>(env.kind), traffic);
  }

  std::printf("%-10s %-22s %-22s %-22s\n", "dist(m)", "Downtown", "Residential",
              "Highway");
  for (int d = 50; d <= 400; d += 50) {
    std::printf("%-10d", d);
    for (const auto& env : envs) {
      const auto& buckets = results[env.label];
      auto it = buckets.find(d);
      if (it == buckets.end() || it->second.linked.size() < 8) {
        std::printf(" %-21s", "-");
        continue;
      }
      const double corr = pearson_correlation(it->second.linked, it->second.seen);
      std::printf(" %-10.3f (n=%-5zu)", corr, it->second.linked.size());
    }
    std::printf("\n");
  }
  std::printf("\npaper shape: correlation ≈0.7–0.9 across distances; '-' marks "
              "bins with too few pair-minutes.\n");
  return 0;
}
