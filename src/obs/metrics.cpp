#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace viewmap::obs {

namespace detail {

std::size_t thread_shard() noexcept {
  // Round-robin assignment at first touch: with ≤ kStatShards live
  // threads every thread owns a private slot; beyond that, threads
  // share slots but the sum stays exact (each increment lands in
  // exactly one slot either way).
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t shard =
      next.fetch_add(1, std::memory_order_relaxed) % kStatShards;
  return shard;
}

}  // namespace detail

std::uint64_t Histogram::Snapshot::percentile(double q) const noexcept {
  if (count == 0 || buckets.empty()) return 0;
  const double clamped = std::clamp(q, 0.0, 1.0);
  // Rank of the target sample, 1-based; q = 0 means the first sample.
  const auto target = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             std::ceil(clamped * static_cast<double>(count))));
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    cumulative += buckets[i];
    if (cumulative >= target) return bucket_upper(i);
  }
  return bucket_upper(buckets.size() - 1);  // unreachable when counts agree
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot snap;
  snap.buckets.assign(kBuckets, 0);
  for (const Stripe& stripe : stripes_) {
    snap.count += stripe.count.load(std::memory_order_relaxed);
    snap.sum += stripe.sum.load(std::memory_order_relaxed);
    for (std::size_t i = 0; i < kBuckets; ++i)
      snap.buckets[i] += stripe.buckets[i].load(std::memory_order_relaxed);
  }
  return snap;
}

std::string MetricsRegistry::full_name(std::string_view name,
                                       std::initializer_list<Label> labels) {
  std::string out(name);
  if (labels.size() == 0) return out;
  std::vector<Label> sorted(labels);
  std::sort(sorted.begin(), sorted.end());
  out += '{';
  bool first = true;
  for (const auto& [key, value] : sorted) {
    if (!first) out += ',';
    first = false;
    out += key;
    out += "=\"";
    out += value;
    out += '"';
  }
  out += '}';
  return out;
}

MetricsRegistry::Entry& MetricsRegistry::entry(std::string_view name,
                                               std::initializer_list<Label> labels,
                                               Kind kind) {
  std::string key = full_name(name, labels);
  std::lock_guard lock(mutex_);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    Entry fresh;
    fresh.kind = kind;
    switch (kind) {
      case Kind::kCounter: fresh.counter = std::make_unique<Counter>(); break;
      case Kind::kGauge: fresh.gauge = std::make_unique<Gauge>(); break;
      case Kind::kHistogram: fresh.histogram = std::make_unique<Histogram>(); break;
    }
    it = entries_.emplace(std::move(key), std::move(fresh)).first;
  } else if (it->second.kind != kind) {
    throw std::logic_error("MetricsRegistry: '" + it->first +
                           "' already registered as a different metric kind");
  }
  return it->second;
}

Counter& MetricsRegistry::counter(std::string_view name,
                                  std::initializer_list<Label> labels) {
  return *entry(name, labels, Kind::kCounter).counter;
}

Gauge& MetricsRegistry::gauge(std::string_view name,
                              std::initializer_list<Label> labels) {
  return *entry(name, labels, Kind::kGauge).gauge;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::initializer_list<Label> labels) {
  return *entry(name, labels, Kind::kHistogram).histogram;
}

const MetricsRegistry::Entry* MetricsRegistry::find(std::string_view full_name,
                                                    Kind kind) const {
  std::lock_guard lock(mutex_);
  const auto it = entries_.find(full_name);
  if (it == entries_.end() || it->second.kind != kind) return nullptr;
  return &it->second;
}

const Counter* MetricsRegistry::find_counter(std::string_view full_name) const {
  const Entry* e = find(full_name, Kind::kCounter);
  return e == nullptr ? nullptr : e->counter.get();
}

const Gauge* MetricsRegistry::find_gauge(std::string_view full_name) const {
  const Entry* e = find(full_name, Kind::kGauge);
  return e == nullptr ? nullptr : e->gauge.get();
}

const Histogram* MetricsRegistry::find_histogram(std::string_view full_name) const {
  const Entry* e = find(full_name, Kind::kHistogram);
  return e == nullptr ? nullptr : e->histogram.get();
}

namespace {

/// Splices an extra label into a canonical full name: `n` → `n{extra}`,
/// `n{a="b"}` → `n{a="b",extra}`.
std::string with_label(const std::string& key, const std::string& extra) {
  const std::size_t brace = key.find('{');
  if (brace == std::string::npos) return key + '{' + extra + '}';
  std::string out = key;
  out.insert(out.size() - 1, "," + extra);
  return out;
}

std::string base_of(const std::string& key) {
  return key.substr(0, key.find('{'));
}

}  // namespace

void MetricsRegistry::render(std::ostream& os) const {
  std::lock_guard lock(mutex_);
  std::string last_base;
  for (const auto& [key, e] : entries_) {
    const std::string base = base_of(key);
    if (base != last_base) {
      const char* type = e.kind == Kind::kCounter   ? "counter"
                         : e.kind == Kind::kGauge   ? "gauge"
                                                    : "histogram";
      os << "# TYPE " << base << ' ' << type << '\n';
      last_base = base;
    }
    switch (e.kind) {
      case Kind::kCounter:
        os << key << ' ' << e.counter->value() << '\n';
        break;
      case Kind::kGauge:
        os << key << ' ' << e.gauge->value() << '\n';
        break;
      case Kind::kHistogram: {
        const Histogram::Snapshot snap = e.histogram->snapshot();
        os << base_of(key) << "_count"
           << (key.size() == base.size() ? "" : key.substr(base.size())) << ' '
           << snap.count << '\n';
        os << base_of(key) << "_sum"
           << (key.size() == base.size() ? "" : key.substr(base.size())) << ' '
           << snap.sum << '\n';
        os << with_label(key, "quantile=\"0.5\"") << ' ' << snap.percentile(0.5)
           << '\n';
        os << with_label(key, "quantile=\"0.9\"") << ' ' << snap.percentile(0.9)
           << '\n';
        os << with_label(key, "quantile=\"0.99\"") << ' ' << snap.percentile(0.99)
           << '\n';
        break;
      }
    }
  }
}

void MetricsRegistry::render_json(std::ostream& os) const {
  std::lock_guard lock(mutex_);
  os << "{";
  bool first = true;
  for (const auto& [key, e] : entries_) {
    if (!first) os << ",";
    first = false;
    os << "\n  \"" << key << "\": ";
    switch (e.kind) {
      case Kind::kCounter:
        os << "{\"type\": \"counter\", \"value\": " << e.counter->value() << "}";
        break;
      case Kind::kGauge:
        os << "{\"type\": \"gauge\", \"value\": " << e.gauge->value() << "}";
        break;
      case Kind::kHistogram: {
        const Histogram::Snapshot snap = e.histogram->snapshot();
        os << "{\"type\": \"histogram\", \"count\": " << snap.count
           << ", \"sum\": " << snap.sum << ", \"p50\": " << snap.percentile(0.5)
           << ", \"p90\": " << snap.percentile(0.9)
           << ", \"p99\": " << snap.percentile(0.99) << "}";
        break;
      }
    }
  }
  os << "\n}\n";
}

std::string MetricsRegistry::render_text() const {
  std::ostringstream os;
  render(os);
  return os.str();
}

}  // namespace viewmap::obs
