// Per-request span tracing for investigations.
//
// A slow investigation is opaque from the outside: the request histogram
// says "32 ms", not whether the time went to snapshot pinning, candidate
// generation, edge building, TrustRank, or verification. The tracer
// answers that with near-zero plumbing:
//
//   TraceScope trace(&tracer, "investigate …");   // request entry point
//     SpanScope span("edge_build");               // anywhere beneath it
//
// TraceScope installs itself as the thread's active trace; SpanScope —
// placed inside the builder, the verifier, TrustRank — checks that
// thread-local and appends a timed span when (and only when) a trace is
// active. Components therefore carry no tracer parameter at all, and
// code running outside any traced request (direct builder benchmarks,
// tests) pays one thread-local null check per scope.
//
// Finished traces go two places: into the report that triggered them
// (InvestigationReport::trace — the caller sees its own breakdown), and
// into the Tracer's bounded keep-the-N-slowest ring, which is what an
// operator inspects when "some requests are slow" (tools/viewmap_metrics
// renders it). The ring is mutex-guarded — traces complete at request
// rate, not at span rate, so the lock is far off any hot path.
//
// stash_span() covers the one span that happens *before* the traced
// entry point runs: the investigation server pins its DbSnapshot before
// calling investigate(), so it measures the pin and stashes it; the next
// TraceScope constructed on that thread adopts it as its first span.
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace viewmap::obs {

/// One timed phase inside a trace. begin_us is relative to the trace
/// start. Spans may nest (e.g. trust_rank inside verify); they are kept
/// flat, in completion order.
struct Span {
  std::string name;
  std::uint64_t begin_us = 0;
  std::uint64_t dur_us = 0;
};

struct Trace {
  std::string label;
  std::uint64_t total_us = 0;
  std::vector<Span> spans;
};

/// Bounded ring of the N slowest traces ever recorded. Thread-safe.
class Tracer {
 public:
  explicit Tracer(std::size_t keep = 16);

  /// Keeps `t` iff it ranks among the `keep()` slowest so far.
  void record(Trace t);

  /// The kept traces, slowest first.
  [[nodiscard]] std::vector<Trace> slowest() const;
  /// Total traces ever offered to record().
  [[nodiscard]] std::uint64_t recorded() const;
  [[nodiscard]] std::size_t keep() const noexcept { return keep_; }

 private:
  std::size_t keep_;
  mutable std::mutex mutex_;
  std::vector<Trace> kept_;  ///< unordered; sorted on read
  std::uint64_t recorded_ = 0;
};

/// RAII root of one trace; installs itself as the thread's active trace
/// (stacking over any outer one). finish() — or the destructor — stamps
/// the total, commits to the tracer (when non-null), and uninstalls.
class TraceScope {
 public:
  TraceScope(Tracer* tracer, std::string label);
  ~TraceScope();
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

  /// Ends the trace early and returns it (the tracer got a copy). The
  /// scope is inert afterwards.
  Trace finish();

 private:
  friend class SpanScope;
  Tracer* tracer_;
  Trace trace_;
  std::chrono::steady_clock::time_point start_;
  TraceScope* prev_ = nullptr;
  bool finished_ = false;
};

/// RAII span under the thread's active trace; a no-op (one thread-local
/// read) when no trace is active. `name` must outlive the scope —
/// string literals in practice.
class SpanScope {
 public:
  explicit SpanScope(const char* name) noexcept;
  ~SpanScope();
  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

 private:
  const char* name_;
  std::chrono::steady_clock::time_point start_;
  bool active_;
};

/// Hands a pre-measured duration to the NEXT TraceScope constructed on
/// this thread, which adopts it as its first span (begin_us 0). Used
/// for work that precedes the traced entry point (snapshot pinning in
/// the investigation server). A second stash before a TraceScope
/// consumes the first overwrites it.
void stash_span(const char* name, std::uint64_t dur_us);

}  // namespace viewmap::obs
