#include "obs/trace.h"

#include <algorithm>
#include <utility>

namespace viewmap::obs {

namespace {

using Clock = std::chrono::steady_clock;

std::uint64_t us_between(Clock::time_point a, Clock::time_point b) noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(b - a).count());
}

thread_local TraceScope* g_active_trace = nullptr;

struct Stash {
  const char* name = nullptr;
  std::uint64_t dur_us = 0;
};
thread_local Stash g_stashed_span;

}  // namespace

Tracer::Tracer(std::size_t keep) : keep_(std::max<std::size_t>(keep, 1)) {
  kept_.reserve(keep_);
}

void Tracer::record(Trace t) {
  std::lock_guard lock(mutex_);
  ++recorded_;
  if (kept_.size() < keep_) {
    kept_.push_back(std::move(t));
    return;
  }
  // Displace the fastest kept trace if the newcomer is slower. N is
  // small (default 16) — a linear min scan beats heap bookkeeping.
  auto fastest = std::min_element(
      kept_.begin(), kept_.end(),
      [](const Trace& a, const Trace& b) { return a.total_us < b.total_us; });
  if (t.total_us > fastest->total_us) *fastest = std::move(t);
}

std::vector<Trace> Tracer::slowest() const {
  std::vector<Trace> out;
  {
    std::lock_guard lock(mutex_);
    out = kept_;
  }
  std::sort(out.begin(), out.end(),
            [](const Trace& a, const Trace& b) { return a.total_us > b.total_us; });
  return out;
}

std::uint64_t Tracer::recorded() const {
  std::lock_guard lock(mutex_);
  return recorded_;
}

TraceScope::TraceScope(Tracer* tracer, std::string label)
    : tracer_(tracer), start_(Clock::now()) {
  trace_.label = std::move(label);
  if (g_stashed_span.name != nullptr) {
    trace_.spans.push_back(Span{g_stashed_span.name, 0, g_stashed_span.dur_us});
    g_stashed_span = {};
  }
  prev_ = g_active_trace;
  g_active_trace = this;
}

Trace TraceScope::finish() {
  if (finished_) return {};
  finished_ = true;
  trace_.total_us = us_between(start_, Clock::now());
  if (g_active_trace == this) g_active_trace = prev_;
  if (tracer_ != nullptr) tracer_->record(trace_);
  return std::move(trace_);
}

TraceScope::~TraceScope() {
  if (!finished_) (void)finish();
}

SpanScope::SpanScope(const char* name) noexcept
    : name_(name),
      active_(g_active_trace != nullptr) {
  if (active_) start_ = Clock::now();
}

SpanScope::~SpanScope() {
  if (!active_ || g_active_trace == nullptr) return;
  TraceScope& trace = *g_active_trace;
  const auto now = Clock::now();
  trace.trace_.spans.push_back(
      Span{name_, us_between(trace.start_, start_), us_between(start_, now)});
}

void stash_span(const char* name, std::uint64_t dur_us) {
  g_stashed_span = {name, dur_us};
}

}  // namespace viewmap::obs
