// Process-wide observability primitives: sharded counters, gauges,
// log-scale latency histograms, and the registry that names and renders
// them.
//
// Every subsystem in the service used to report through its own ad-hoc
// struct (IngestStats, ServerStats, CheckpointStats, …) — fine for unit
// tests, useless for an always-on daemon: no latency distributions, no
// common exposition, and (worse) several of those structs were returned
// by reference while another thread kept mutating them. This module is
// the common substrate those structs now read through.
//
// Design rules, in order of importance:
//
//  1. Hot-path increments must be contention-free. Counter keeps a
//     fixed array of cache-line-aligned atomic slots; each thread is
//     assigned one slot (round-robin at first touch, the NDN-DPDK
//     rx-proc per-thread stat-block idiom) and increments it with a
//     relaxed fetch_add. Readers sum the slots. Two ingest workers
//     therefore never bounce a cache line on the same counter, and TSan
//     sees plain atomics — no annotations, no races.
//  2. Reads are approximate only in ordering, never in total: every
//     increment lands in exactly one slot, so value() converges to the
//     true count the instant writers quiesce.
//  3. Histograms are fixed-size and allocation-free on the record path:
//     log-linear buckets (8 sub-buckets per power of two ⇒ worst-case
//     12.5% relative bucket width) over the full uint64 range, striped
//     the same way the counters are sharded.
//  4. Exposition is deterministic: render() walks an ordered map and
//     emits Prometheus-style text (`name{label="v"} value`), so golden
//     tests can compare bytes.
//
// Metric objects are owned by the registry and live as long as it does;
// counter()/gauge()/histogram() are idempotent (same name + labels ⇒
// same object), so wiring code resolves pointers once at construction
// and hot paths never touch the registry again. A null
// MetricsRegistry* in a component's config disables its instrumentation
// entirely — that switch is what bench_index's obs_overhead scenario
// measures. See src/obs/README.md for naming conventions.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <initializer_list>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace viewmap::obs {

namespace detail {
/// Stable per-thread shard index in [0, kStatShards): assigned
/// round-robin at a thread's first use and cached thread_local, so every
/// counter and histogram stripes the same way.
inline constexpr std::size_t kStatShards = 16;
[[nodiscard]] std::size_t thread_shard() noexcept;
}  // namespace detail

/// Monotonic counter, sharded across cache-line-aligned per-thread
/// slots. add() is wait-free and contention-free between threads with
/// distinct shard slots; value() sums the slots.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    slots_[detail::thread_shard()].v.fetch_add(n, std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t value() const noexcept {
    std::uint64_t sum = 0;
    for (const auto& slot : slots_) sum += slot.v.load(std::memory_order_relaxed);
    return sum;
  }

 private:
  struct alignas(64) Slot {
    std::atomic<std::uint64_t> v{0};
  };
  std::array<Slot, detail::kStatShards> slots_{};
};

/// Instantaneous signed value (queue depth, live shard count). A gauge
/// is one atomic — set/add/sub race freely; update_max keeps a
/// high-water mark via CAS.
class Gauge {
 public:
  void set(std::int64_t v) noexcept { v_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t d) noexcept { v_.fetch_add(d, std::memory_order_relaxed); }
  void sub(std::int64_t d) noexcept { v_.fetch_sub(d, std::memory_order_relaxed); }
  void update_max(std::int64_t v) noexcept {
    std::int64_t prev = v_.load(std::memory_order_relaxed);
    while (v > prev &&
           !v_.compare_exchange_weak(prev, v, std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] std::int64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Fixed-bucket log-linear histogram over uint64 values (we record
/// microseconds; the unit is part of the metric name, e.g. `…_us`).
///
/// Bucket layout (kSubBits = 3 ⇒ 8 sub-buckets per octave):
///   v < 16             → bucket v              (exact)
///   v ≥ 16             → octave o = bit_width(v)−1, sub-bucket
///                        (v >> (o−3)) & 7      (≤ 12.5% relative width)
/// 496 buckets cover the whole range; the array is striped like Counter
/// so record() is contention-free. Percentiles come from a Snapshot:
/// walk the cumulative distribution and report the bucket's upper
/// bound, which makes p50 ≤ p90 ≤ p99 monotone by construction and
/// never underestimates a latency by more than one bucket width.
class Histogram {
 public:
  static constexpr unsigned kSubBits = 3;
  static constexpr std::size_t kSub = std::size_t{1} << kSubBits;  // 8
  static constexpr std::size_t kBuckets = (64 - kSubBits + 1) * kSub;  // 496

  void record(std::uint64_t value) noexcept {
    Stripe& s = stripes_[detail::thread_shard() % kStripes];
    s.count.fetch_add(1, std::memory_order_relaxed);
    s.sum.fetch_add(value, std::memory_order_relaxed);
    s.buckets[bucket_index(value)].fetch_add(1, std::memory_order_relaxed);
  }

  struct Snapshot {
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::vector<std::uint64_t> buckets;  ///< kBuckets entries

    /// Value at quantile q ∈ [0, 1]: upper bound of the bucket holding
    /// the ⌈q·count⌉-th sample (0 when empty). Monotone in q.
    [[nodiscard]] std::uint64_t percentile(double q) const noexcept;
    [[nodiscard]] double mean() const noexcept {
      return count == 0 ? 0.0
                        : static_cast<double>(sum) / static_cast<double>(count);
    }
  };

  /// Merges every stripe into one consistent-enough view: each stripe's
  /// cells are summed individually (relaxed), so totals are exact once
  /// writers quiesce and never torn below the cell level.
  [[nodiscard]] Snapshot snapshot() const;

  /// Bucket index for a value — exposed for the boundary unit tests.
  [[nodiscard]] static constexpr std::size_t bucket_index(std::uint64_t v) noexcept {
    if (v < 2 * kSub) return static_cast<std::size_t>(v);
    const unsigned octave = static_cast<unsigned>(std::bit_width(v)) - 1;
    const std::uint64_t sub = (v >> (octave - kSubBits)) & (kSub - 1);
    return (octave - kSubBits + 1) * kSub + static_cast<std::size_t>(sub);
  }
  /// Smallest value mapping to bucket `idx`.
  [[nodiscard]] static constexpr std::uint64_t bucket_lower(std::size_t idx) noexcept {
    if (idx < 2 * kSub) return idx;
    const std::size_t octave = idx / kSub + kSubBits - 1;
    const std::uint64_t sub = idx % kSub;
    return (kSub + sub) << (octave - kSubBits);
  }
  /// Largest value mapping to bucket `idx` (inclusive).
  [[nodiscard]] static constexpr std::uint64_t bucket_upper(std::size_t idx) noexcept {
    return idx + 1 >= kBuckets ? ~std::uint64_t{0} : bucket_lower(idx + 1) - 1;
  }

 private:
  /// Fewer stripes than counter slots: a histogram stripe is ~4 KB of
  /// buckets, and the record path touches three cells of it — striping
  /// by thread_shard() % kStripes keeps concurrent recorders on
  /// distinct cache lines without 16× the footprint.
  static constexpr std::size_t kStripes = 4;
  struct Stripe {
    alignas(64) std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> sum{0};
    std::array<std::atomic<std::uint64_t>, kBuckets> buckets{};
  };
  std::array<Stripe, kStripes> stripes_{};
};

/// One label on a metric; labels are sorted by key into the canonical
/// full name `name{k1="v1",k2="v2"}`, which is the registry map key.
using Label = std::pair<std::string_view, std::string_view>;

/// Named metric store + exposition. Registration (counter/gauge/
/// histogram) is mutex-guarded and idempotent; the returned references
/// are stable for the registry's lifetime, so components resolve them
/// once at construction. Rendering walks the ordered map, so output is
/// byte-deterministic for a given set of metric values.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Idempotent: the same name + labels always yields the same object.
  /// Throws std::logic_error if the name is already registered as a
  /// different metric kind.
  Counter& counter(std::string_view name, std::initializer_list<Label> labels = {});
  Gauge& gauge(std::string_view name, std::initializer_list<Label> labels = {});
  Histogram& histogram(std::string_view name, std::initializer_list<Label> labels = {});

  /// Lookup by full name (labels included, canonical order), null when
  /// absent or of a different kind. For readers that must not create.
  [[nodiscard]] const Counter* find_counter(std::string_view full_name) const;
  [[nodiscard]] const Gauge* find_gauge(std::string_view full_name) const;
  [[nodiscard]] const Histogram* find_histogram(std::string_view full_name) const;

  /// Prometheus-style text exposition: `# TYPE` comment per metric
  /// family, `name{labels} value` per sample; histograms emit _count,
  /// _sum, and quantile samples (0.5 / 0.9 / 0.99).
  void render(std::ostream& os) const;
  /// The same data as one JSON object keyed by full metric name.
  void render_json(std::ostream& os) const;
  [[nodiscard]] std::string render_text() const;

  /// Canonical full name (labels sorted by key) — the find_* key.
  [[nodiscard]] static std::string full_name(std::string_view name,
                                             std::initializer_list<Label> labels);

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Entry {
    Kind kind = Kind::kCounter;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry& entry(std::string_view name, std::initializer_list<Label> labels, Kind kind);
  [[nodiscard]] const Entry* find(std::string_view full_name, Kind kind) const;

  mutable std::mutex mutex_;  ///< guards the map; metric objects are lock-free
  std::map<std::string, Entry, std::less<>> entries_;
};

}  // namespace viewmap::obs
