#include "anonet/channel.h"

namespace viewmap::anonet {

void AnonymousChannel::submit(std::vector<std::uint8_t> payload) {
  std::lock_guard lock(mutex_);
  pending_.push_back(std::move(payload));
}

std::vector<Delivery> AnonymousChannel::release(std::size_t count) {
  rng_.shuffle(pending_);
  std::vector<Delivery> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    Delivery d;
    d.session_id = rng_.next_u64();
    d.payload = std::move(pending_.back());
    pending_.pop_back();
    out.push_back(std::move(d));
  }
  return out;
}

std::vector<Delivery> AnonymousChannel::drain() {
  std::lock_guard lock(mutex_);
  return release(pending_.size());
}

std::vector<Delivery> AnonymousChannel::drain_batch() {
  std::lock_guard lock(mutex_);
  if (pending_.size() < mix_pool_) return {};
  return release(mix_pool_);
}

}  // namespace viewmap::anonet
