// Anonymous upload channel (Tor stand-in, paper §5.1.2).
//
// The paper routes VP uploads over Tor and has clients "constantly change
// sessions with the system, preventing the system from distinguishing
// among users by session ids". We model exactly the property the rest of
// the design relies on: the server receives payloads tagged only with
// throwaway session identifiers, in an order decorrelated from submission
// order (a small mix pool). No sender identity exists anywhere in the
// delivered record — verified by tests, relied on by the privacy analysis.
//
// Thread safety: submit/drain/drain_batch/pending are internally
// synchronized (one mutex; the pending vector and the RNG are the only
// shared state). This is what lets the daemon's IngestService thread
// drain continuously while any number of uploader threads submit —
// exactly the always-on shape of the paper's public service.
#pragma once

#include <cstdint>
#include <mutex>
#include <vector>

#include "common/rng.h"

namespace viewmap::anonet {

/// What the server observes per upload. Deliberately nothing else.
struct Delivery {
  std::uint64_t session_id = 0;  ///< fresh pseudo-random id per upload
  std::vector<std::uint8_t> payload;
};

class AnonymousChannel {
 public:
  /// `mix_pool` controls reorder depth: deliveries are released in random
  /// order once at least this many uploads are pending (drain() releases
  /// everything, still shuffled).
  explicit AnonymousChannel(std::uint64_t seed, std::size_t mix_pool = 16)
      : rng_(seed), mix_pool_(mix_pool) {}

  /// Client side: enqueue one payload. Thread-safe.
  void submit(std::vector<std::uint8_t> payload);

  /// Server side: receive every pending upload, shuffled, each under a
  /// fresh session id. Thread-safe.
  [[nodiscard]] std::vector<Delivery> drain();

  /// Server side: receive up to the mix-pool batch (empty if fewer than
  /// `mix_pool` uploads are pending — batching is what hides timing).
  /// Thread-safe.
  [[nodiscard]] std::vector<Delivery> drain_batch();

  [[nodiscard]] std::size_t pending() const noexcept {
    std::lock_guard lock(mutex_);
    return pending_.size();
  }

 private:
  /// Caller holds mutex_.
  [[nodiscard]] std::vector<Delivery> release(std::size_t count);

  mutable std::mutex mutex_;  ///< guards pending_ and rng_
  Rng rng_;
  std::size_t mix_pool_;
  std::vector<std::vector<std::uint8_t>> pending_;
};

}  // namespace viewmap::anonet
