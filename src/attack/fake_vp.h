// Concrete fake View Profiles (full-protocol attacks).
//
// For end-to-end tests the abstract graphs are not enough: these builders
// produce real ViewProfile objects that cheat locations/times (§6.3.1) or
// saturate Bloom filters (§6.3.2), to be thrown at the real upload,
// viewmap-construction, and verification pipeline.
#pragma once

#include "common/rng.h"
#include "common/types.h"
#include "geo/geometry.h"
#include "vp/view_profile.h"

namespace viewmap::attack {

/// A structurally well-formed VP claiming a straight-line trajectory
/// start→end over the given minute, with random hash fields (there is no
/// video) and an empty neighbor Bloom filter. Passes VpUploadPolicy as
/// long as the implied speed is plausible.
[[nodiscard]] vp::ViewProfile make_fake_profile(TimeSec minute_start, geo::Vec2 start,
                                                geo::Vec2 end, Rng& rng);

/// Forges a two-way viewlink between two attacker-controlled profiles by
/// inserting each other's boundary VDs — exactly what colluders can do,
/// and what they cannot do to an honest third party's profile.
inline void forge_link(vp::ViewProfile& a, vp::ViewProfile& b) {
  vp::link_mutually(a, b);
}

/// §6.3.2 "all-ones bit-array" attacker: claims neighborship with the
/// whole world by saturating its Bloom filter.
[[nodiscard]] vp::ViewProfile make_saturated_profile(TimeSec minute_start,
                                                     geo::Vec2 start, geo::Vec2 end,
                                                     Rng& rng);

}  // namespace viewmap::attack
