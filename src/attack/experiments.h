// Security experiment drivers (Figs. 12, 13, 22d, 22e).
//
// A trial = build (or take) a viewmap graph, inject colluding fakes, run
// TrustRank + Algorithm 1, and judge the verdict. The paper's "accuracy"
// is the fraction of runs where legitimate VPs are correctly identified —
// i.e. no fake VP survives verification inside the investigation site.
#pragma once

#include <cstdint>

#include "attack/attack_graph.h"
#include "system/trustrank.h"

namespace viewmap::attack {

struct TrialOutcome {
  bool ran = false;            ///< false when the hop bucket was empty
  bool correct = false;        ///< no fake marked legitimate
  std::size_t fakes_accepted = 0;
  std::size_t site_fakes = 0;  ///< fakes that claimed in-site positions
  std::size_t site_honest = 0;
};

/// Runs verification over an attack graph that already contains fakes.
[[nodiscard]] TrialOutcome judge(const AttackGraph& g,
                                 const sys::TrustRankConfig& cfg);

/// One synthetic-viewmap trial: fresh geometric graph + injected fakes.
[[nodiscard]] TrialOutcome run_geometric_trial(const GeometricConfig& geo_cfg,
                                               const AttackPlan& plan,
                                               const sys::TrustRankConfig& tr_cfg,
                                               Rng& rng);

/// One trial over a pre-built honest graph (e.g. traffic-derived for
/// Fig. 22d/e). The graph is copied; `link_radius_m` governs fake edges.
[[nodiscard]] TrialOutcome run_graph_trial(const AttackGraph& honest_base,
                                           const AttackPlan& plan,
                                           double link_radius_m,
                                           const sys::TrustRankConfig& tr_cfg,
                                           Rng& rng);

/// Accuracy over `runs` trials (empty-bucket trials are re-drawn, capped).
[[nodiscard]] double geometric_accuracy(const GeometricConfig& geo_cfg,
                                        const AttackPlan& plan,
                                        const sys::TrustRankConfig& tr_cfg,
                                        int runs, Rng& rng);

}  // namespace viewmap::attack
