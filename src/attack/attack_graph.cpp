#include "attack/attack_graph.h"

#include <algorithm>
#include <cmath>
#include <queue>
#include <unordered_map>

namespace viewmap::attack {

void AttackGraph::add_edge(std::size_t a, std::size_t b) {
  adj[a].push_back(static_cast<std::uint32_t>(b));
  adj[b].push_back(static_cast<std::uint32_t>(a));
}

std::vector<std::size_t> AttackGraph::site_members() const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < pos.size(); ++i)
    if (site.contains(pos[i])) out.push_back(i);
  return out;
}

std::vector<std::size_t> AttackGraph::hops_from_trusted() const {
  std::vector<std::size_t> dist(size(), SIZE_MAX);
  std::queue<std::size_t> q;
  for (std::size_t s : trusted) {
    dist[s] = 0;
    q.push(s);
  }
  while (!q.empty()) {
    const std::size_t u = q.front();
    q.pop();
    for (std::uint32_t v : adj[u]) {
      if (dist[v] == SIZE_MAX) {
        dist[v] = dist[u] + 1;
        q.push(v);
      }
    }
  }
  return dist;
}

AttackGraph make_geometric_viewmap(const GeometricConfig& cfg, Rng& rng) {
  AttackGraph g;
  g.pos.resize(cfg.legit_count);
  g.adj.resize(cfg.legit_count);
  g.fake.assign(cfg.legit_count, false);
  for (auto& p : g.pos) p = {rng.uniform(0, cfg.area_m), rng.uniform(0, cfg.area_m)};

  // Grid-bucketed radius linking.
  const double cell = cfg.link_radius_m;
  std::unordered_map<std::int64_t, std::vector<std::uint32_t>> cells;
  auto key = [&](geo::Vec2 p) {
    return (static_cast<std::int64_t>(std::floor(p.x / cell)) << 32) ^
           static_cast<std::uint32_t>(static_cast<std::int32_t>(std::floor(p.y / cell)));
  };
  for (std::uint32_t i = 0; i < g.pos.size(); ++i) cells[key(g.pos[i])].push_back(i);
  const double r2 = cfg.link_radius_m * cfg.link_radius_m;
  for (std::uint32_t i = 0; i < g.pos.size(); ++i) {
    const int cx = static_cast<int>(std::floor(g.pos[i].x / cell));
    const int cy = static_cast<int>(std::floor(g.pos[i].y / cell));
    for (int dy = -1; dy <= 1; ++dy) {
      for (int dx = -1; dx <= 1; ++dx) {
        const std::int64_t k = (static_cast<std::int64_t>(cx + dx) << 32) ^
                               static_cast<std::uint32_t>(cy + dy);
        auto it = cells.find(k);
        if (it == cells.end()) continue;
        for (std::uint32_t j : it->second)
          if (j > i && (g.pos[i] - g.pos[j]).norm2() <= r2) g.add_edge(i, j);
      }
    }
  }

  // One trusted seed among the honest VPs — biased toward a corner so the
  // hop-distance spectrum spans the full 1..25+ range Fig. 12 sweeps.
  std::size_t seed = 0;
  double best = 1e18;
  for (int probe = 0; probe < 32; ++probe) {
    const std::size_t i = rng.index(cfg.legit_count);
    const double d = g.pos[i].norm();  // distance to corner (0,0)
    if (d < best) {
      best = d;
      seed = i;
    }
  }
  g.trusted.push_back(seed);

  // Site centered on an honest VP a few hops from the seed (Fig. 6's
  // geometry: police car near, not at, the incident).
  const auto hops = g.hops_from_trusted();
  std::vector<std::size_t> ring;
  for (std::size_t i = 0; i < g.size(); ++i)
    if (hops[i] == cfg.site_hops_from_trusted) ring.push_back(i);
  const geo::Vec2 c =
      ring.empty() ? g.pos[rng.index(cfg.legit_count)] : g.pos[ring[rng.index(ring.size())]];
  g.site = {{c.x - cfg.site_half_m, c.y - cfg.site_half_m},
            {c.x + cfg.site_half_m, c.y + cfg.site_half_m}};
  return g;
}

std::optional<std::vector<std::size_t>> inject_fakes(AttackGraph& g,
                                                     const AttackPlan& plan,
                                                     double link_radius_m, Rng& rng) {
  const std::size_t base = g.size();

  // Select attacker-controlled legitimate VPs. Nodes already inside the
  // site are excluded: an attacker physically at the incident is the
  // degenerate case where it holds genuinely solicitable video anyway.
  std::vector<std::size_t> candidates;
  const auto hops = g.hops_from_trusted();
  for (std::size_t i = 0; i < base; ++i) {
    if (g.fake[i]) continue;
    if (g.site.contains(g.pos[i])) continue;
    if (std::find(g.trusted.begin(), g.trusted.end(), i) != g.trusted.end()) continue;
    if (plan.hop_bucket &&
        (hops[i] < plan.hop_bucket->first || hops[i] > plan.hop_bucket->second))
      continue;
    candidates.push_back(i);
  }
  const std::size_t want = plan.attacker_count * plan.dummies_per_attacker;
  if (candidates.size() < want || want == 0) return std::nullopt;

  std::vector<std::size_t> attackers;
  for (std::size_t idx : rng.sample_indices(candidates.size(), want))
    attackers.push_back(candidates[idx]);

  // Fake VP budget. Every attacker grows a proximity-legal chain from its
  // own legitimate VP toward the site; remaining fakes claim positions in
  // or near the site and interlink densely (colluders share fakes).
  const geo::Vec2 site_center = g.site.center();
  const double step = plan.chain_spacing_frac * link_radius_m;
  std::size_t remaining = plan.fake_count;
  std::vector<std::size_t> chain_heads;

  for (std::size_t round = 0; remaining > 0; ++round) {
    const std::size_t a = attackers[round % attackers.size()];
    // Chain from the attacker's VP to the site.
    geo::Vec2 at = g.pos[a];
    std::size_t prev = a;
    while (remaining > 0) {
      const geo::Vec2 to_site = site_center - at;
      const double dist = to_site.norm();
      const bool arrived = dist <= step;
      at = arrived ? site_center : at + to_site * (step / dist);
      // Jitter so parallel chains do not stack on one line.
      at.x += rng.uniform(-0.1, 0.1) * step;
      at.y += rng.uniform(-0.1, 0.1) * step;

      const std::size_t id = g.size();
      g.pos.push_back(at);
      g.adj.emplace_back();
      g.fake.push_back(true);
      g.add_edge(prev, id);
      prev = id;
      --remaining;
      if (arrived || g.site.contains(at)) {
        chain_heads.push_back(id);
        break;
      }
    }
    if (round >= attackers.size() && chain_heads.size() >= attackers.size()) break;
  }

  // Remaining fakes: claimed inside/near the site, linked to chain heads
  // and to a bounded number of earlier fakes (subject to claimed
  // proximity). Bounded degree loses the attacker nothing — Corollary 1:
  // denser fake-fake linking only spreads the same trickle of trust — and
  // keeps trial cost linear in the fake count.
  constexpr std::size_t kMaxFakeLinks = 8;
  std::vector<std::size_t> site_fakes = chain_heads;
  const double r2 = link_radius_m * link_radius_m;
  while (remaining > 0) {
    geo::Vec2 p;
    if (rng.bernoulli(plan.in_site_fraction)) {
      p = {rng.uniform(g.site.min.x, g.site.max.x),
           rng.uniform(g.site.min.y, g.site.max.y)};
    } else {
      p = {site_center.x + rng.uniform(-2.0, 2.0) * link_radius_m,
           site_center.y + rng.uniform(-2.0, 2.0) * link_radius_m};
    }
    const std::size_t id = g.size();
    g.pos.push_back(p);
    g.adj.emplace_back();
    g.fake.push_back(true);
    std::size_t linked = 0;
    // Always try the chain heads first (they carry the trust inflow),
    // then random earlier fakes up to the degree cap.
    for (std::size_t head : chain_heads) {
      if (linked >= kMaxFakeLinks) break;
      if ((g.pos[head] - p).norm2() <= r2) {
        g.add_edge(head, id);
        ++linked;
      }
    }
    for (std::size_t attempt = 0; attempt < 3 * kMaxFakeLinks && linked < kMaxFakeLinks;
         ++attempt) {
      const std::size_t other = site_fakes[rng.index(site_fakes.size())];
      if (other == id) continue;
      if ((g.pos[other] - p).norm2() <= r2) {
        g.add_edge(other, id);
        ++linked;
      }
    }
    site_fakes.push_back(id);
    --remaining;
  }
  return attackers;
}

}  // namespace viewmap::attack
