#include "attack/experiments.h"

#include "system/verifier.h"

namespace viewmap::attack {

TrialOutcome judge(const AttackGraph& g, const sys::TrustRankConfig& cfg) {
  TrialOutcome out;
  out.ran = true;

  const auto site = g.site_members();
  for (std::size_t i : site)
    (g.fake[i] ? out.site_fakes : out.site_honest) += 1;

  const auto ranks = sys::trust_rank(g.adj, g.trusted, cfg);
  const auto verdict = sys::algorithm1(g.adj, ranks.scores, site);
  for (std::size_t i : verdict.legitimate)
    if (g.fake[i]) ++out.fakes_accepted;
  out.correct = out.fakes_accepted == 0 && !verdict.legitimate.empty() &&
                !g.fake[verdict.top_scored];
  return out;
}

TrialOutcome run_geometric_trial(const GeometricConfig& geo_cfg, const AttackPlan& plan,
                                 const sys::TrustRankConfig& tr_cfg, Rng& rng) {
  AttackGraph g = make_geometric_viewmap(geo_cfg, rng);
  auto attackers = inject_fakes(g, plan, geo_cfg.link_radius_m, rng);
  if (!attackers) return {};
  return judge(g, tr_cfg);
}

TrialOutcome run_graph_trial(const AttackGraph& honest_base, const AttackPlan& plan,
                             double link_radius_m, const sys::TrustRankConfig& tr_cfg,
                             Rng& rng) {
  AttackGraph g = honest_base;
  auto attackers = inject_fakes(g, plan, link_radius_m, rng);
  if (!attackers) return {};
  return judge(g, tr_cfg);
}

double geometric_accuracy(const GeometricConfig& geo_cfg, const AttackPlan& plan,
                          const sys::TrustRankConfig& tr_cfg, int runs, Rng& rng) {
  int done = 0;
  int correct = 0;
  int attempts = 0;
  const int max_attempts = runs * 4;  // hop buckets can be sparse
  while (done < runs && attempts < max_attempts) {
    ++attempts;
    const TrialOutcome out = run_geometric_trial(geo_cfg, plan, tr_cfg, rng);
    if (!out.ran) continue;
    ++done;
    if (out.correct) ++correct;
  }
  return done > 0 ? static_cast<double>(correct) / done : 0.0;
}

}  // namespace viewmap::attack
