// Abstract attack graphs for the §6.3.1 security evaluation.
//
// The verification experiments (Figs. 12, 13, 22d, 22e) need thousands of
// viewmaps with injected fake VPs. At that scale we work on the viewmap's
// *graph* (positions + viewlinks + trust seed), which is all TrustRank and
// Algorithm 1 consume. Construction rules mirror what the full protocol
// enforces:
//   * fake ↔ honest-legit edges are impossible (no real VD exchange, so
//     the two-way Bloom check fails) — the generator never creates them;
//   * fake ↔ attacker-legit and fake ↔ fake edges are free (attackers
//     control both Bloom filters) but still require claimed-location
//     proximity, which the system validates — so chains are needed to
//     reach a distant site.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/rng.h"
#include "geo/geometry.h"

namespace viewmap::attack {

struct AttackGraph {
  std::vector<geo::Vec2> pos;                    ///< claimed positions
  std::vector<std::vector<std::uint32_t>> adj;   ///< viewlinks
  std::vector<bool> fake;                        ///< injected by attackers
  std::vector<std::size_t> trusted;              ///< trust seed indices
  geo::Rect site{};                              ///< investigation site

  [[nodiscard]] std::size_t size() const noexcept { return pos.size(); }
  void add_edge(std::size_t a, std::size_t b);

  /// Indices whose claimed position lies inside the site.
  [[nodiscard]] std::vector<std::size_t> site_members() const;

  /// BFS hop distance from the trusted seed(s); SIZE_MAX if unreachable.
  [[nodiscard]] std::vector<std::size_t> hops_from_trusted() const;
};

struct GeometricConfig {
  std::size_t legit_count = 1000;  ///< paper: synthetic graphs of 1000 VPs
  double area_m = 3000.0;
  double link_radius_m = 150.0;
  double site_half_m = 150.0;      ///< site square half-side
  /// The investigation site sits this many viewlink hops from the trusted
  /// seed (Fig. 6: trusted VPs are near, but not at, the site). Attacker
  /// proximity to the seed then directly controls their trust scores,
  /// which is the variable Fig. 12 sweeps.
  std::size_t site_hops_from_trusted = 4;
};

/// Random geometric viewmap of honest VPs, one trusted seed, and a random
/// investigation site guaranteed to contain at least one honest VP.
[[nodiscard]] AttackGraph make_geometric_viewmap(const GeometricConfig& cfg, Rng& rng);

/// Attack parameters shared by Fig. 12 (positioned attackers) and Fig. 13
/// (concentration attacks).
struct AttackPlan {
  std::size_t fake_count = 1000;
  /// Attacker-controlled legitimate member VPs. Fig. 12: one per human
  /// attacker, sampled at a hop-distance bucket; Fig. 13: dummies_per
  /// legit-but-dummy VPs per attacker, anywhere.
  std::size_t attacker_count = 100;
  std::optional<std::pair<std::size_t, std::size_t>> hop_bucket;  ///< inclusive
  std::size_t dummies_per_attacker = 1;
  double chain_spacing_frac = 0.8;  ///< fake chain spacing / link radius
  double in_site_fraction = 0.3;    ///< share of fakes claiming the site
};

/// Injects colluding fake VPs into `g` following the best strategy the
/// analysis allows (§6.3.1): share fakes, link them densely to every
/// attacker-controlled VP (subject to proximity), and chain toward the
/// site. Returns the attacker-controlled legit indices, or nullopt when
/// the hop bucket contains no candidates (caller resamples the graph).
std::optional<std::vector<std::size_t>> inject_fakes(AttackGraph& g,
                                                     const AttackPlan& plan,
                                                     double link_radius_m, Rng& rng);

}  // namespace viewmap::attack
