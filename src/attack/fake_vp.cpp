#include "attack/fake_vp.h"

namespace viewmap::attack {

vp::ViewProfile make_fake_profile(TimeSec minute_start, geo::Vec2 start, geo::Vec2 end,
                                  Rng& rng) {
  Id16 fake_id;
  rng.fill_bytes(fake_id.bytes);

  std::vector<dsrc::ViewDigest> digests;
  digests.reserve(kDigestsPerProfile);
  std::uint64_t size = 0;
  for (int i = 1; i <= kDigestsPerProfile; ++i) {
    const double t = static_cast<double>(i - 1) / (kDigestsPerProfile - 1);
    const geo::Vec2 p = geo::lerp(start, end, t);
    size += 850'000;

    dsrc::ViewDigest vd;
    vd.time = minute_start + i;
    vd.loc_x = static_cast<float>(p.x);
    vd.loc_y = static_cast<float>(p.y);
    vd.file_size = size;
    vd.initial_x = static_cast<float>(start.x);
    vd.initial_y = static_cast<float>(start.y);
    vd.vp_id = fake_id;
    vd.second = static_cast<std::uint16_t>(i);
    rng.fill_bytes(vd.hash.bytes);
    digests.push_back(vd);
  }
  return vp::ViewProfile(std::move(digests),
                         bloom::BloomFilter(vp::kBloomBits, vp::kBloomHashes));
}

vp::ViewProfile make_saturated_profile(TimeSec minute_start, geo::Vec2 start,
                                       geo::Vec2 end, Rng& rng) {
  vp::ViewProfile profile = make_fake_profile(minute_start, start, end, rng);
  bloom::BloomFilter all_ones(vp::kBloomBits, vp::kBloomHashes);
  all_ones.saturate();
  std::vector<dsrc::ViewDigest> digests(profile.digests().begin(),
                                        profile.digests().end());
  return vp::ViewProfile(std::move(digests), std::move(all_ones));
}

}  // namespace viewmap::attack
