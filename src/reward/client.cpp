#include "reward/client.h"

#include <stdexcept>

namespace viewmap::reward {

std::vector<crypto::BigBytes> RewardClient::prepare(std::size_t count) {
  pending_.clear();
  pending_.reserve(count);
  std::vector<crypto::BigBytes> blinded;
  blinded.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    Pending p;
    p.message.resize(32);
    rng_.fill_bytes(p.message);
    auto bm = crypto::blind(p.message, key_, rng_.next_u64());
    p.blinding_secret = std::move(bm.blinding_secret);
    blinded.push_back(std::move(bm.blinded));
    pending_.push_back(std::move(p));
  }
  return blinded;
}

std::vector<CashToken> RewardClient::unblind_batch(
    std::span<const crypto::BigBytes> blind_signatures) {
  if (blind_signatures.size() != pending_.size())
    throw std::invalid_argument("RewardClient: signature count mismatch");
  std::vector<CashToken> cash;
  cash.reserve(pending_.size());
  for (std::size_t i = 0; i < pending_.size(); ++i) {
    CashToken token;
    token.message = pending_[i].message;
    token.signature =
        crypto::unblind(blind_signatures[i], pending_[i].blinding_secret, key_);
    if (!token_authentic(token, key_))
      throw std::runtime_error("RewardClient: signer returned invalid signature");
    cash.push_back(std::move(token));
  }
  pending_.clear();
  return cash;
}

}  // namespace viewmap::reward
