// User-side reward claim (paper Appendix A, steps 2 and 4).
//
// The client mints n random messages, blinds them, sends the blinded batch
// to the system, and unblinds the returned signatures into spendable cash.
// Blinding secrets r_i never leave this object — that is what makes the
// resulting cash unlinkable even to the system.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.h"
#include "crypto/blind_rsa.h"
#include "reward/cash.h"

namespace viewmap::reward {

class RewardClient {
 public:
  RewardClient(crypto::RsaPublicKey system_key, std::uint64_t seed)
      : key_(std::move(system_key)), rng_(seed) {}

  /// Step 2: mint and blind `count` fresh messages. Returns the blinded
  /// values to transmit; the pending messages/secrets stay inside.
  [[nodiscard]] std::vector<crypto::BigBytes> prepare(std::size_t count);

  /// Step 4: unblind the system's signatures into cash. Must be called
  /// with signatures matching (and ordered like) the last prepare() batch.
  /// Throws std::invalid_argument on count mismatch and std::runtime_error
  /// if any unblinded signature fails verification (a misbehaving signer).
  [[nodiscard]] std::vector<CashToken> unblind_batch(
      std::span<const crypto::BigBytes> blind_signatures);

  [[nodiscard]] std::size_t pending_count() const noexcept { return pending_.size(); }

 private:
  struct Pending {
    std::vector<std::uint8_t> message;
    crypto::BigBytes blinding_secret;
  };

  crypto::RsaPublicKey key_;
  Rng rng_;
  std::vector<Pending> pending_;
};

}  // namespace viewmap::reward
