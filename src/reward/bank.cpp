#include "reward/bank.h"

#include "common/hex.h"
#include "crypto/sha256.h"

namespace viewmap::reward {

const char* to_string(RedeemOutcome outcome) noexcept {
  switch (outcome) {
    case RedeemOutcome::kAccepted: return "accepted";
    case RedeemOutcome::kBadSignature: return "bad-signature";
    case RedeemOutcome::kDoubleSpend: return "double-spend";
  }
  return "?";
}

std::vector<crypto::BigBytes> Bank::sign_blinded(
    std::span<const crypto::BigBytes> blinded) const {
  std::vector<crypto::BigBytes> out;
  out.reserve(blinded.size());
  for (const auto& b : blinded) out.push_back(signer_.sign_blinded(b));
  return out;
}

RedeemOutcome Bank::redeem(const CashToken& token) {
  if (!token_authentic(token, signer_.public_key()))
    return RedeemOutcome::kBadSignature;
  const auto fingerprint = to_hex(crypto::sha256(token.message).bytes);
  if (!spent_.insert(fingerprint).second) return RedeemOutcome::kDoubleSpend;
  return RedeemOutcome::kAccepted;
}

}  // namespace viewmap::reward
