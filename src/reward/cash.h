// Untraceable virtual cash (paper §5.3, Appendix A).
//
// One unit of cash is an (m, {H(m)}_{K_S^-}) pair: a random message and the
// system's blind signature over its full-domain hash. Anyone verifies
// authenticity with the system's public key; the bank additionally checks
// freshness (no double spend). Nothing in the pair links back to the video
// whose reward minted it.
#pragma once

#include <cstdint>
#include <vector>

#include "crypto/blind_rsa.h"

namespace viewmap::reward {

struct CashToken {
  std::vector<std::uint8_t> message;   ///< m — random, chosen by the owner
  crypto::BigBytes signature;          ///< s with s^e ≡ FDH(m) (mod N)

  friend bool operator==(const CashToken&, const CashToken&) = default;
};

/// Signature check only (any merchant can run this offline).
[[nodiscard]] bool token_authentic(const CashToken& token,
                                   const crypto::RsaPublicKey& system_key);

}  // namespace viewmap::reward
