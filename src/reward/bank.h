// The system's signing and redemption authority.
//
// Splits the paper's "system S" reward role into two capabilities:
//   * blind-sign messages during a reward claim (never sees contents),
//   * redeem presented cash, enforcing double-spending freshness (§5.3).
#pragma once

#include <cstdint>
#include <span>
#include <unordered_set>
#include <vector>

#include "crypto/blind_rsa.h"
#include "reward/cash.h"

namespace viewmap::reward {

enum class RedeemOutcome { kAccepted, kBadSignature, kDoubleSpend };

[[nodiscard]] const char* to_string(RedeemOutcome outcome) noexcept;

class Bank {
 public:
  /// `rsa_bits`: 2048 for deployment; tests may shrink for speed.
  explicit Bank(int rsa_bits = 2048) : signer_(rsa_bits) {}

  [[nodiscard]] const crypto::RsaPublicKey& public_key() const noexcept {
    return signer_.public_key();
  }

  /// Blind-signs a batch (step 3 of Appendix A). The bank learns nothing
  /// about the underlying messages.
  [[nodiscard]] std::vector<crypto::BigBytes> sign_blinded(
      std::span<const crypto::BigBytes> blinded) const;

  /// Verifies authenticity and freshness; burns the token on acceptance.
  RedeemOutcome redeem(const CashToken& token);

  [[nodiscard]] std::size_t redeemed_count() const noexcept { return spent_.size(); }

 private:
  crypto::RsaSigner signer_;
  /// Spent-token fingerprints (hash of m). A production system would
  /// persist this set; semantics are identical.
  std::unordered_set<std::string> spent_;
};

}  // namespace viewmap::reward
