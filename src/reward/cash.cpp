#include "reward/cash.h"

namespace viewmap::reward {

bool token_authentic(const CashToken& token, const crypto::RsaPublicKey& system_key) {
  return crypto::verify_signature(token.message, token.signature, system_key);
}

}  // namespace viewmap::reward
