#include "daemon/lifecycle.h"

#include <csignal>

#include "obs/metrics.h"

namespace viewmap::daemon {

namespace {
/// Signal handlers may only touch lock-free atomics; the lifecycle's
/// main loop polls this.
std::atomic<bool> g_shutdown{false};
extern "C" void handle_shutdown_signal(int) { g_shutdown.store(true); }
}  // namespace

const char* to_string(LifecycleState s) noexcept {
  switch (s) {
    case LifecycleState::kInit: return "init";
    case LifecycleState::kRunning: return "running";
    case LifecycleState::kDraining: return "draining";
    case LifecycleState::kStopped: return "stopped";
  }
  return "unknown";
}

const char* to_string(HealthState s) noexcept {
  switch (s) {
    case HealthState::kHealthy: return "healthy";
    case HealthState::kDegraded: return "degraded";
    case HealthState::kFailing: return "failing";
  }
  return "unknown";
}

ServiceLifecycle::ServiceLifecycle(DaemonConfig cfg)
    : cfg_(std::move(cfg)), service_(cfg_.service) {
  auto& reg = service_.metrics();
  state_g_ = &reg.gauge("viewmap_daemon_state");
  state_g_->set(static_cast<int>(LifecycleState::kInit));
  health_g_ = &reg.gauge("viewmap_daemon_health");
  health_g_->set(static_cast<int>(HealthState::kHealthy));

  if (!cfg_.store_dir.empty()) {
    auto store_cfg = cfg_.store;
    store_cfg.metrics = &reg;
    store_ = std::make_unique<store::SegmentStore>(cfg_.store_dir, store_cfg);
    checkpointer_ =
        std::make_unique<CheckpointDaemon>(service_, *store_, cfg_.checkpoint);
  }
  ingest_ = std::make_unique<IngestService>(service_, cfg_.ingest);
  if (cfg_.scrape.enabled) {
    scrape_ = std::make_unique<ScrapeEndpoint>(
        reg, [this] { return health(); }, cfg_.scrape, reg);
  }

  // Register the wedged gauges up front so a scrape before the first
  // watchdog pass still sees them (at 0).
  for (const char* component : {"ingest", "checkpoint", "scrape"}) {
    Watched w;
    w.component = component;
    w.beats = reg.find_counter(obs::MetricsRegistry::full_name(
        "viewmap_daemon_heartbeats_total", {{"component", component}}));
    w.wedged =
        &reg.gauge("viewmap_daemon_wedged", {{"component", component}});
    w.wedged->set(0);
    if (w.beats != nullptr) watched_.push_back(std::move(w));
  }
}

ServiceLifecycle::~ServiceLifecycle() { stop(); }

void ServiceLifecycle::set_state(LifecycleState s) noexcept {
  state_.store(static_cast<int>(s), std::memory_order_release);
  state_g_->set(static_cast<int>(s));
}

bool ServiceLifecycle::start() {
  if (state() != LifecycleState::kInit) return false;

  if (store_ != nullptr) {
    // Crash debris first: a checkpoint interrupted by the previous
    // process's death may have left a half-written `*.tmp` behind.
    // recover() is contractually read-only, so the sweep is its own
    // explicit step (still before any thread could start a checkpoint).
    swept_temps_ = store_->sweep_temps();
    if (cfg_.recover_sequence != 0) {
      recovery_ = service_.restore_from(*store_, cfg_.recover_sequence);
      recovered_ = true;
    } else if (store_->latest_sequence() != 0) {
      recovery_ = service_.restore_from(*store_);
      recovered_ = true;
    }
    // Empty store: nothing to recover, first checkpoint will seed it.
  }

  ingest_->start();
  if (checkpointer_ != nullptr) checkpointer_->start();
  if (cfg_.start_server) service_.start_server(cfg_.server);
  if (scrape_ != nullptr) {
    try {
      scrape_->start();
    } catch (...) {
      // Leave no thread running behind a failed start.
      ingest_->abort();
      if (checkpointer_ != nullptr) checkpointer_->abort();
      service_.stop_server();
      throw;
    }
  }
  start_watchdog();
  set_state(LifecycleState::kRunning);
  return true;
}

bool ServiceLifecycle::drain() {
  if (state() != LifecycleState::kRunning) return true;
  // 1) Flip the state first: healthz goes not-ready and new submits are
  //    rejected while the settle below runs.
  set_state(LifecycleState::kDraining);
  // 2) Ingest: stop intake, drain the channel to empty. After this,
  //    every payload a submitter was told was accepted is in the
  //    database.
  ingest_->drain_and_stop();
  // 3) Investigation server: reject new requests, serve out the queue,
  //    join the pool. Readers only — order vs. (4) is about not
  //    destroying the pool mid-request, not about data.
  service_.stop_server();
  // 4) Checkpointer LAST: its final cycle runs after (2), so the newest
  //    manifest contains every accepted VP — the clean-drain guarantee.
  //    When every final attempt fails, that guarantee is broken: record
  //    it so stop()/viewmapd report an unclean shutdown instead of
  //    silently dropping the tail.
  if (checkpointer_ != nullptr && !checkpointer_->finish_and_stop()) {
    std::lock_guard lock(error_mutex_);
    clean_ = false;
    last_error_ = "final checkpoint failed: " + checkpointer_->last_error();
  }
  // The scrape endpoint stays up: operators watch the drain complete.
  std::lock_guard lock(error_mutex_);
  return clean_;
}

bool ServiceLifecycle::stop() {
  const LifecycleState s = state();
  if (s == LifecycleState::kStopped) {
    std::lock_guard lock(error_mutex_);
    return clean_;
  }
  if (s == LifecycleState::kRunning) drain();
  stop_watchdog();
  if (scrape_ != nullptr) scrape_->stop();
  set_state(LifecycleState::kStopped);
  std::lock_guard lock(error_mutex_);
  return clean_;
}

void ServiceLifecycle::kill_for_test() {
  if (state() == LifecycleState::kStopped) return;
  // No drain, no final checkpoint, no queue settle: on-disk state stays
  // whatever the last periodic cycle sealed — the crash image.
  ingest_->abort();
  if (checkpointer_ != nullptr) checkpointer_->abort();
  service_.stop_server();
  stop_watchdog();
  if (scrape_ != nullptr) scrape_->stop();
  set_state(LifecycleState::kStopped);
}

HealthState ServiceLifecycle::health_state() const {
  bool wedged_any = false;
  for (const auto& w : watched_)
    if (w.wedged->value() != 0) wedged_any = true;
  const std::uint64_t consecutive =
      checkpointer_ != nullptr ? checkpointer_->consecutive_failures() : 0;
  HealthState h = HealthState::kHealthy;
  if (wedged_any || consecutive >= cfg_.health.failing_after)
    h = HealthState::kFailing;
  else if (consecutive >= cfg_.health.degraded_after)
    h = HealthState::kDegraded;
  health_g_->set(static_cast<int>(h));
  return h;
}

std::pair<bool, std::string> ServiceLifecycle::health() const {
  const LifecycleState s = state();
  const HealthState h = health_state();
  std::string body = "state=";
  body += to_string(s);
  body += '\n';
  body += "health=";
  body += to_string(h);
  body += '\n';
  for (const auto& w : watched_) {
    if (w.wedged->value() != 0) body += "wedged=" + w.component + '\n';
  }
  if (h != HealthState::kHealthy && checkpointer_ != nullptr) {
    const std::uint64_t consecutive = checkpointer_->consecutive_failures();
    if (consecutive > 0) {
      body += "reason=checkpoint-failures:" + std::to_string(consecutive) + '\n';
      body += "last_error=" + checkpointer_->last_error() + '\n';
    }
  }
  {
    std::lock_guard lock(error_mutex_);
    if (!clean_) body += "last_error=" + last_error_ + '\n';
  }
  const bool healthy =
      s == LifecycleState::kRunning && h == HealthState::kHealthy;
  body += healthy ? "ok\n" : "not-ready\n";
  return {healthy, body};
}

std::string ServiceLifecycle::last_error() const {
  std::lock_guard lock(error_mutex_);
  return last_error_;
}

void ServiceLifecycle::start_watchdog() {
  if (!cfg_.watchdog.enabled) return;
  const auto now = std::chrono::steady_clock::now();
  for (auto& w : watched_) {
    w.last_value = w.beats->value();
    w.last_change = now;
  }
  {
    std::lock_guard lock(watchdog_mutex_);
    watchdog_stop_ = false;
  }
  watchdog_ = std::thread([this] { watchdog_run(); });
}

void ServiceLifecycle::stop_watchdog() {
  {
    std::lock_guard lock(watchdog_mutex_);
    watchdog_stop_ = true;
  }
  watchdog_cv_.notify_all();
  if (watchdog_.joinable()) watchdog_.join();
}

void ServiceLifecycle::watchdog_run() {
  for (;;) {
    {
      std::unique_lock lock(watchdog_mutex_);
      watchdog_cv_.wait_for(lock, cfg_.watchdog.interval,
                            [this] { return watchdog_stop_; });
      if (watchdog_stop_) return;
    }
    const auto now = std::chrono::steady_clock::now();
    for (auto& w : watched_) {
      const std::uint64_t v = w.beats->value();
      if (v != w.last_value) {
        w.last_value = v;
        w.last_change = now;
        w.wedged->set(0);
      } else if (now - w.last_change >= cfg_.watchdog.stall_after) {
        w.wedged->set(1);
      }
    }
    // Keep the exported health gauge moving even when nobody scrapes
    // /healthz — alerting reads the metric, not the endpoint.
    (void)health_state();
  }
}

// ── signals ──────────────────────────────────────────────────────────

void ServiceLifecycle::install_signal_handlers() {
  struct sigaction sa{};
  sa.sa_handler = handle_shutdown_signal;
  sigemptyset(&sa.sa_mask);
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGINT, &sa, nullptr);
}

bool ServiceLifecycle::shutdown_requested() noexcept {
  return g_shutdown.load(std::memory_order_acquire);
}

void ServiceLifecycle::request_shutdown() noexcept {
  g_shutdown.store(true, std::memory_order_release);
}

void ServiceLifecycle::clear_shutdown() noexcept {
  g_shutdown.store(false, std::memory_order_release);
}

}  // namespace viewmap::daemon
