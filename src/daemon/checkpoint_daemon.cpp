#include "daemon/checkpoint_daemon.h"

#include <algorithm>
#include <cerrno>
#include <string_view>

#include "common/failpoint.h"
#include "obs/metrics.h"
#include "store/segment_store.h"
#include "system/service.h"

namespace viewmap::daemon {

namespace {

/// Slice long waits so the thread heartbeats (and notices stop/poke)
/// at least once a second.
constexpr std::chrono::milliseconds kMaxSlice{1000};

bool same_digests(const std::vector<index::DbSnapshot::ShardDigest>& a,
                  const std::vector<index::DbSnapshot::ShardDigest>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (a[i].unit_time != b[i].unit_time || a[i].digest != b[i].digest)
      return false;
  return true;
}

}  // namespace

CheckpointDaemon::CheckpointDaemon(sys::ViewMapService& service,
                                   store::SegmentStore& store,
                                   CheckpointConfig cfg)
    : service_(service),
      store_(store),
      cfg_(cfg),
      jitter_rng_(cfg.jitter_seed) {
  auto& reg = service_.metrics();
  store_.adopt_metrics(&reg);
  heartbeats_ = &reg.counter("viewmap_daemon_heartbeats_total",
                             {{"component", "checkpoint"}});
  written_c_ = &reg.counter("viewmap_daemon_checkpoints_total",
                            {{"result", "written"}});
  skipped_c_ = &reg.counter("viewmap_daemon_checkpoints_total",
                            {{"result", "skipped"}});
  sequence_g_ = &reg.gauge("viewmap_daemon_checkpoint_sequence");
  failures_enospc_ = &reg.counter("viewmap_daemon_checkpoint_failures_total",
                                  {{"reason", "enospc"}});
  failures_eio_ = &reg.counter("viewmap_daemon_checkpoint_failures_total",
                               {{"reason", "eio"}});
  failures_permission_ = &reg.counter("viewmap_daemon_checkpoint_failures_total",
                                      {{"reason", "permission"}});
  failures_other_ = &reg.counter("viewmap_daemon_checkpoint_failures_total",
                                 {{"reason", "other"}});
  consecutive_g_ = &reg.gauge("viewmap_daemon_checkpoint_consecutive_failures");
}

CheckpointDaemon::~CheckpointDaemon() { abort(); }

bool CheckpointDaemon::start() {
  std::lock_guard lock(mutex_);
  if (thread_.joinable()) return false;
  stop_requested_ = false;
  final_checkpoint_ = false;
  poked_ = false;
  thread_ = std::thread([this] { run(); });
  return true;
}

bool CheckpointDaemon::finish_and_stop() {
  return stop_impl(/*final_checkpoint=*/true);
}

void CheckpointDaemon::abort() { stop_impl(/*final_checkpoint=*/false); }

bool CheckpointDaemon::stop_impl(bool final_checkpoint) {
  {
    std::lock_guard lock(mutex_);
    if (!thread_.joinable()) return final_ok_;
    stop_requested_ = true;
    final_checkpoint_ = final_checkpoint;
  }
  cv_.notify_all();
  thread_.join();
  return final_ok_;
}

void CheckpointDaemon::poke() {
  {
    std::lock_guard lock(mutex_);
    poked_ = true;
  }
  cv_.notify_all();
}

bool CheckpointDaemon::running() const {
  std::lock_guard lock(mutex_);
  return thread_.joinable();
}

std::uint64_t CheckpointDaemon::written() const {
  std::lock_guard lock(mutex_);
  return written_n_;
}

std::uint64_t CheckpointDaemon::skipped() const {
  std::lock_guard lock(mutex_);
  return skipped_n_;
}

std::uint64_t CheckpointDaemon::failures() const {
  std::lock_guard lock(mutex_);
  return failed_n_;
}

std::uint64_t CheckpointDaemon::consecutive_failures() const {
  std::lock_guard lock(mutex_);
  return consecutive_failures_n_;
}

std::string CheckpointDaemon::last_error() const {
  std::lock_guard lock(mutex_);
  return last_error_;
}

std::chrono::milliseconds CheckpointDaemon::jittered(std::chrono::milliseconds base) {
  if (cfg_.jitter_pct == 0) return std::max<std::chrono::milliseconds>(
      base, std::chrono::milliseconds{1});
  const auto b = base.count();
  const std::int64_t span =
      std::max<std::int64_t>(1, b * static_cast<std::int64_t>(cfg_.jitter_pct) / 100);
  // base − span … base + span, uniform.
  const std::int64_t offset =
      static_cast<std::int64_t>(jitter_rng_.next_u64() % (2 * span + 1)) - span;
  return std::chrono::milliseconds(std::max<std::int64_t>(1, b + offset));
}

std::chrono::milliseconds CheckpointDaemon::next_wait() {
  return jittered(cfg_.interval);
}

std::chrono::milliseconds CheckpointDaemon::next_backoff(
    std::chrono::milliseconds prev, bool permanent) const {
  if (permanent) return cfg_.retry_backoff_max;
  if (prev < cfg_.retry_backoff_min) return cfg_.retry_backoff_min;
  return std::min(prev * 2, cfg_.retry_backoff_max);
}

bool CheckpointDaemon::cycle() {
  try {
    if (const int err = failpoint::inject("daemon.checkpoint.cycle"); err != 0)
      throw store::StoreError("checkpoint_daemon: cycle failed (injected)", err);
    // One pinned snapshot for digesting and (maybe) writing: the
    // comparison and the checkpoint describe the same database version.
    const index::DbSnapshot snap = service_.database().snapshot();
    auto digests = snap.shard_digests();
    if (cfg_.skip_if_unchanged && have_last_ &&
        same_digests(digests, last_digests_)) {
      skipped_c_->add();
      consecutive_g_->set(0);
      std::lock_guard lock(mutex_);
      ++skipped_n_;
      consecutive_failures_n_ = 0;
      last_error_.clear();
      return true;
    }
    const store::CheckpointStats stats = store_.checkpoint(snap);
    last_digests_ = std::move(digests);
    have_last_ = true;
    written_c_->add();
    sequence_g_->set(static_cast<std::int64_t>(stats.sequence));
    consecutive_g_->set(0);
    std::lock_guard lock(mutex_);
    ++written_n_;
    consecutive_failures_n_ = 0;
    last_error_.clear();
    return true;
  } catch (const std::exception& e) {
    // A failed checkpoint is survivable by construction: the store's
    // manifest rename is the commit point, so the previous sealed
    // checkpoint is untouched and retrying later is always safe.
    const auto* se = dynamic_cast<const store::StoreError*>(&e);
    last_failure_transient_ = se == nullptr || se->transient();
    obs::Counter* reason = failures_other_;
    if (se != nullptr) {
      const std::string_view r = se->reason();
      if (r == "enospc") reason = failures_enospc_;
      else if (r == "eio") reason = failures_eio_;
      else if (r == "permission") reason = failures_permission_;
    }
    reason->add();
    std::uint64_t consecutive = 0;
    {
      std::lock_guard lock(mutex_);
      ++failed_n_;
      consecutive = ++consecutive_failures_n_;
      last_error_ = e.what();
    }
    consecutive_g_->set(static_cast<std::int64_t>(consecutive));
    return false;
  }
}

void CheckpointDaemon::run() {
  // 0 = healthy cadence; otherwise the current retry backoff step.
  std::chrono::milliseconds backoff{0};
  for (;;) {
    const auto wait = backoff.count() > 0 ? jittered(backoff) : next_wait();
    const auto deadline = std::chrono::steady_clock::now() + wait;
    bool stopping = false;
    bool do_final = false;
    {
      std::unique_lock lock(mutex_);
      while (!stop_requested_ && !poked_ &&
             std::chrono::steady_clock::now() < deadline) {
        heartbeats_->add();
        const auto remaining = std::chrono::duration_cast<
            std::chrono::milliseconds>(deadline - std::chrono::steady_clock::now());
        cv_.wait_for(lock, std::min(remaining, kMaxSlice));
      }
      poked_ = false;
      stopping = stop_requested_;
      do_final = final_checkpoint_;
    }
    if (stopping) {
      // The final cycle runs HERE, after stop was observed at the wait
      // phase — never skipped because stop arrived while a periodic
      // cycle (possibly pinned before ingest settled) was in flight.
      // That stale-snapshot window is exactly what the SIGTERM-during-
      // checkpoint lifecycle test exercises. SIGTERM may also land
      // mid-retry-backoff: the wait loop above wakes immediately and the
      // final checkpoint gets its own bounded attempts regardless of how
      // many periodic retries already failed.
      if (do_final) {
        bool ok = false;
        std::chrono::milliseconds final_backoff{0};
        const unsigned attempts = std::max(1u, cfg_.final_attempts);
        for (unsigned attempt = 0; attempt < attempts && !ok; ++attempt) {
          heartbeats_->add();
          if (attempt > 0) {
            final_backoff = next_backoff(final_backoff, !last_failure_transient_);
            std::this_thread::sleep_for(jittered(final_backoff));
          }
          ok = cycle();
        }
        final_ok_ = ok;
      }
      return;
    }
    heartbeats_->add();
    backoff = cycle() ? std::chrono::milliseconds{0}
                      : next_backoff(backoff, !last_failure_transient_);
  }
}

}  // namespace viewmap::daemon
