#include "daemon/checkpoint_daemon.h"

#include <algorithm>

#include "obs/metrics.h"
#include "store/segment_store.h"
#include "system/service.h"

namespace viewmap::daemon {

namespace {

/// Slice long waits so the thread heartbeats (and notices stop/poke)
/// at least once a second.
constexpr std::chrono::milliseconds kMaxSlice{1000};

bool same_digests(const std::vector<index::DbSnapshot::ShardDigest>& a,
                  const std::vector<index::DbSnapshot::ShardDigest>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (a[i].unit_time != b[i].unit_time || a[i].digest != b[i].digest)
      return false;
  return true;
}

}  // namespace

CheckpointDaemon::CheckpointDaemon(sys::ViewMapService& service,
                                   store::SegmentStore& store,
                                   CheckpointConfig cfg)
    : service_(service),
      store_(store),
      cfg_(cfg),
      jitter_rng_(cfg.jitter_seed) {
  auto& reg = service_.metrics();
  store_.adopt_metrics(&reg);
  heartbeats_ = &reg.counter("viewmap_daemon_heartbeats_total",
                             {{"component", "checkpoint"}});
  written_c_ = &reg.counter("viewmap_daemon_checkpoints_total",
                            {{"result", "written"}});
  skipped_c_ = &reg.counter("viewmap_daemon_checkpoints_total",
                            {{"result", "skipped"}});
  sequence_g_ = &reg.gauge("viewmap_daemon_checkpoint_sequence");
}

CheckpointDaemon::~CheckpointDaemon() { abort(); }

bool CheckpointDaemon::start() {
  std::lock_guard lock(mutex_);
  if (thread_.joinable()) return false;
  stop_requested_ = false;
  final_checkpoint_ = false;
  poked_ = false;
  thread_ = std::thread([this] { run(); });
  return true;
}

void CheckpointDaemon::finish_and_stop() { stop_impl(/*final_checkpoint=*/true); }

void CheckpointDaemon::abort() { stop_impl(/*final_checkpoint=*/false); }

void CheckpointDaemon::stop_impl(bool final_checkpoint) {
  {
    std::lock_guard lock(mutex_);
    if (!thread_.joinable()) return;
    stop_requested_ = true;
    final_checkpoint_ = final_checkpoint;
  }
  cv_.notify_all();
  thread_.join();
}

void CheckpointDaemon::poke() {
  {
    std::lock_guard lock(mutex_);
    poked_ = true;
  }
  cv_.notify_all();
}

bool CheckpointDaemon::running() const {
  std::lock_guard lock(mutex_);
  return thread_.joinable();
}

std::uint64_t CheckpointDaemon::written() const {
  std::lock_guard lock(mutex_);
  return written_n_;
}

std::uint64_t CheckpointDaemon::skipped() const {
  std::lock_guard lock(mutex_);
  return skipped_n_;
}

std::chrono::milliseconds CheckpointDaemon::next_wait() {
  if (cfg_.jitter_pct == 0) return cfg_.interval;
  const auto base = cfg_.interval.count();
  const std::int64_t span =
      std::max<std::int64_t>(1, base * static_cast<std::int64_t>(cfg_.jitter_pct) / 100);
  // interval − span … interval + span, uniform.
  const std::int64_t offset =
      static_cast<std::int64_t>(jitter_rng_.next_u64() % (2 * span + 1)) - span;
  return std::chrono::milliseconds(std::max<std::int64_t>(1, base + offset));
}

void CheckpointDaemon::cycle() {
  // One pinned snapshot for digesting and (maybe) writing: the
  // comparison and the checkpoint describe the same database version.
  const index::DbSnapshot snap = service_.database().snapshot();
  auto digests = snap.shard_digests();
  if (cfg_.skip_if_unchanged && have_last_ &&
      same_digests(digests, last_digests_)) {
    skipped_c_->add();
    std::lock_guard lock(mutex_);
    ++skipped_n_;
    return;
  }
  const store::CheckpointStats stats = store_.checkpoint(snap);
  last_digests_ = std::move(digests);
  have_last_ = true;
  written_c_->add();
  sequence_g_->set(static_cast<std::int64_t>(stats.sequence));
  std::lock_guard lock(mutex_);
  ++written_n_;
}

void CheckpointDaemon::run() {
  for (;;) {
    const auto deadline = std::chrono::steady_clock::now() + next_wait();
    bool stopping = false;
    bool do_final = false;
    {
      std::unique_lock lock(mutex_);
      while (!stop_requested_ && !poked_ &&
             std::chrono::steady_clock::now() < deadline) {
        heartbeats_->add();
        const auto remaining = std::chrono::duration_cast<
            std::chrono::milliseconds>(deadline - std::chrono::steady_clock::now());
        cv_.wait_for(lock, std::min(remaining, kMaxSlice));
      }
      poked_ = false;
      stopping = stop_requested_;
      do_final = final_checkpoint_;
    }
    if (stopping) {
      // The final cycle runs HERE, after stop was observed at the wait
      // phase — never skipped because stop arrived while a periodic
      // cycle (possibly pinned before ingest settled) was in flight.
      // That stale-snapshot window is exactly what the SIGTERM-during-
      // checkpoint lifecycle test exercises.
      if (do_final) {
        heartbeats_->add();
        cycle();
      }
      return;
    }
    heartbeats_->add();
    cycle();
  }
}

}  // namespace viewmap::daemon
