// Minimal HTTP scrape endpoint: one blocking thread, two routes.
//
// The obs layer renders a byte-deterministic Prometheus-style text
// exposition (MetricsRegistry::render()); this module puts it on a TCP
// port. Deliberately primitive — a poll()-driven accept loop serving one
// request per connection on one thread — because a scrape every few
// seconds is the entire load profile, and a real HTTP stack is exactly
// the kind of dependency this repo does not take.
//
//   GET /metrics  → 200 text/plain, the registry exposition (byte-
//                   identical to ViewMapService::dump_metrics() for a
//                   quiesced service — the sharded counters converge the
//                   instant writers pause; tests assert the equality).
//   GET /healthz  → 200 when the supplied health callback says the
//                   daemon is Running and nothing is wedged, 503
//                   otherwise; the body names the lifecycle state either
//                   way, so orchestration sees Draining as not-ready
//                   while the drain completes.
//   anything else → 404.
//
// The accept loop polls with a 100 ms timeout and re-checks a stop flag
// each lap, bumping viewmap_daemon_heartbeats_total{component="scrape"}
// — closing a listening socket does not reliably wake a blocked
// accept(), so we never block in accept() without poll() saying a
// connection is already waiting.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>
#include <utility>

namespace viewmap::obs {
class Counter;
class MetricsRegistry;
}  // namespace viewmap::obs

namespace viewmap::daemon {

struct ScrapeConfig {
  bool enabled = true;
  std::string bind_address = "127.0.0.1";
  /// 0 ⇒ OS-assigned; read the result back via port().
  std::uint16_t port = 0;
};

/// (healthy, body): healthy selects 200 vs 503, body is served verbatim
/// (lifecycle state line + wedged components, see ServiceLifecycle).
using HealthProbe = std::function<std::pair<bool, std::string>()>;

class ScrapeEndpoint {
 public:
  /// `registry` and the probe must outlive the endpoint. Nothing is
  /// bound until start().
  ScrapeEndpoint(const obs::MetricsRegistry& registry, HealthProbe health,
                 ScrapeConfig cfg, obs::MetricsRegistry& own_metrics);
  ~ScrapeEndpoint();  // stop()

  ScrapeEndpoint(const ScrapeEndpoint&) = delete;
  ScrapeEndpoint& operator=(const ScrapeEndpoint&) = delete;

  /// Binds, listens, spawns the serving thread. False when already
  /// started or disabled by config; throws std::runtime_error when the
  /// bind itself fails (a daemon that silently serves nothing is worse
  /// than one that fails to start).
  bool start();

  /// Stops accepting, joins the thread, closes the socket. Idempotent.
  void stop();

  /// The bound port (the OS-assigned one when cfg.port was 0); 0 when
  /// not running.
  [[nodiscard]] std::uint16_t port() const noexcept {
    return port_.load(std::memory_order_acquire);
  }

  [[nodiscard]] bool running() const noexcept {
    return running_.load(std::memory_order_acquire);
  }

 private:
  void run();
  void serve_one(int client_fd);

  const obs::MetricsRegistry& registry_;
  HealthProbe health_;
  ScrapeConfig cfg_;
  obs::Counter* heartbeats_ = nullptr;
  obs::Counter* requests_ = nullptr;

  std::atomic<bool> stop_flag_{false};
  std::atomic<bool> running_{false};
  std::atomic<std::uint16_t> port_{0};
  int listen_fd_ = -1;
  std::thread thread_;
};

}  // namespace viewmap::daemon
