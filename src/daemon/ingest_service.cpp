#include "daemon/ingest_service.h"

#include <algorithm>
#include <stdexcept>

#include "common/failpoint.h"
#include "obs/metrics.h"
#include "system/service.h"

namespace viewmap::daemon {

IngestService::IngestService(sys::ViewMapService& service,
                             IngestServiceConfig cfg)
    : service_(service), cfg_(cfg) {
  auto& reg = service_.metrics();
  heartbeats_ =
      &reg.counter("viewmap_daemon_heartbeats_total", {{"component", "ingest"}});
  passes_ = &reg.counter("viewmap_daemon_ingest_passes_total");
  failures_ = &reg.counter("viewmap_daemon_ingest_failures_total");
  rejected_ = &reg.counter("viewmap_daemon_submit_rejected_total");
  backlog_ = &reg.gauge("viewmap_daemon_ingest_backlog");
}

IngestService::~IngestService() { abort(); }

bool IngestService::start() {
  std::lock_guard lock(mutex_);
  if (thread_.joinable()) return false;
  stop_requested_ = false;
  drain_final_ = false;
  running_.store(true, std::memory_order_release);
  accepting_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { run(); });
  return true;
}

void IngestService::drain_and_stop() { stop_impl(/*drain_remaining=*/true); }

void IngestService::abort() { stop_impl(/*drain_remaining=*/false); }

void IngestService::stop_impl(bool drain_remaining) {
  {
    std::lock_guard lock(mutex_);
    // Once this store is visible under the mutex no further payload can
    // be admitted: submit() enqueues only under the same mutex, after
    // re-checking the flag. That makes the drain loop's final
    // pending() == 0 check exact, not best-effort.
    accepting_.store(false, std::memory_order_release);
    if (!thread_.joinable()) return;
    stop_requested_ = true;
    drain_final_ = drain_remaining;
  }
  // Unblock everyone: submitters give up (accepting_ is off), the drain
  // loop sees stop_requested_ and runs its exit path.
  work_cv_.notify_all();
  space_cv_.notify_all();
  thread_.join();
  running_.store(false, std::memory_order_release);
}

bool IngestService::submit(std::vector<std::uint8_t> payload) {
  auto& channel = service_.upload_channel();
  std::unique_lock lock(mutex_);
  if (cfg_.max_pending_uploads != 0) {
    while (accepting_.load(std::memory_order_acquire) &&
           channel.pending() >= cfg_.max_pending_uploads) {
      if (cfg_.overflow == BackpressurePolicy::kReject) {
        rejected_->add();
        return false;
      }
      space_cv_.wait(lock);
    }
  }
  if (!accepting_.load(std::memory_order_acquire)) {
    rejected_->add();
    return false;
  }
  channel.submit(std::move(payload));
  lock.unlock();
  work_cv_.notify_one();
  return true;
}

void IngestService::run() {
  auto backoff = cfg_.idle_backoff_min;
  for (;;) {
    heartbeats_->add();
    // A throwing drain pass must not take the thread (and with it the
    // whole daemon) down: the payloads stay queued in the channel, so
    // backing off and re-draining loses nothing. Real throws here are
    // resource exhaustion inside ingest; the failpoint stands in for
    // them in the chaos suite.
    std::size_t accepted = 0;
    try {
      if (const int err = failpoint::inject("daemon.ingest.pass"); err != 0)
        throw std::runtime_error("ingest_service: drain pass failed (injected)");
      accepted = service_.ingest_uploads();
    } catch (const std::exception&) {
      failures_->add();
      std::unique_lock lock(mutex_);
      if (stop_requested_ && !drain_final_) return;
      work_cv_.wait_for(lock, backoff);
      backoff = std::min(backoff * 2, cfg_.idle_backoff_max);
      continue;
    }
    backlog_->set(
        static_cast<std::int64_t>(service_.upload_channel().pending()));
    // The drain freed channel slots — wake submitters parked on the
    // occupancy bound.
    space_cv_.notify_all();
    if (accepted > 0) {
      passes_->add();
      backoff = cfg_.idle_backoff_min;
      continue;  // stay hot while work keeps arriving
    }
    std::unique_lock lock(mutex_);
    if (stop_requested_) {
      if (!drain_final_) return;
      // Graceful exit: accepting_ is off and submit() enqueues only
      // under this mutex, so pending() can no longer grow — re-drain
      // until a pass leaves the channel empty.
      if (service_.upload_channel().pending() == 0) return;
      continue;
    }
    work_cv_.wait_for(lock, backoff);
    backoff = std::min(backoff * 2, cfg_.idle_backoff_max);
  }
}

}  // namespace viewmap::daemon
