// Periodic checkpointer: the daemon thread that owns the one-
// checkpointer-per-store contract.
//
// Every `interval` (± jitter, so a fleet of daemons restarted together
// doesn't fsync in lockstep) the thread pins one DbSnapshot and seals it
// into the SegmentStore. Before writing it compares the snapshot's
// shard_digests() against the digests of the last checkpoint it wrote:
// identical content ⇒ the write is skipped outright. The comparison is
// content identity (cached SHA-256 per shard, see DbSnapshot), not a
// heuristic — a skipped cycle is *proof* the newest manifest already
// equals the live database, which is why the final shutdown checkpoint
// may also skip without weakening the clean-drain guarantee.
//
// Shutdown has two shapes, mirroring IngestService: finish_and_stop()
// runs one final cycle after ingest has drained (so the newest manifest
// captures every accepted VP), abort() stops without it — the in-process
// stand-in for a crash, leaving whatever the last periodic cycle sealed.
//
// Long intervals are waited out in ≤1 s slices, each bumping
// viewmap_daemon_heartbeats_total{component="checkpoint"}: the lifecycle
// watchdog must be able to tell "waiting out a 5-minute interval" from
// "wedged inside fsync".
//
// Failure handling: a cycle that throws (disk full, EIO, an armed
// failpoint) must NEVER take the daemon down — the store guarantees a
// failed checkpoint leaves the previous sealed manifest intact, so the
// correct response is to keep serving and retry. Failed cycles are
// retried with capped exponential backoff (retry_backoff_min doubling to
// retry_backoff_max, ± the same jitter as the cadence; a permanent
// store::StoreError jumps straight to the cap — hammering a read-only
// filesystem helps nobody). Each failure bumps
// viewmap_daemon_checkpoint_failures_total{reason} and the
// viewmap_daemon_checkpoint_consecutive_failures gauge (health turns
// degraded/failing on it, see ServiceLifecycle); the first success
// zeroes the gauge and resumes the normal cadence.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "index/db_snapshot.h"

namespace viewmap::obs {
class Counter;
class Gauge;
}  // namespace viewmap::obs
namespace viewmap::store {
class SegmentStore;
}  // namespace viewmap::store
namespace viewmap::sys {
class ViewMapService;
}  // namespace viewmap::sys

namespace viewmap::daemon {

struct CheckpointConfig {
  std::chrono::milliseconds interval{30000};
  /// Each cycle's wait is interval ± this percentage, drawn per cycle.
  unsigned jitter_pct = 10;
  std::uint64_t jitter_seed = 0x7ea5;
  /// Compare shard digests against the previous checkpoint and skip the
  /// write when nothing changed. Off only for tests that count writes.
  bool skip_if_unchanged = true;
  /// Retry cadence after a failed cycle: first retry after
  /// retry_backoff_min, doubling per consecutive failure, capped at
  /// retry_backoff_max (jittered by jitter_pct like the normal cadence).
  std::chrono::milliseconds retry_backoff_min{100};
  std::chrono::milliseconds retry_backoff_max{5000};
  /// How many times the FINAL checkpoint (finish_and_stop) is attempted
  /// before giving up and reporting an unclean stop. ≥ 1.
  unsigned final_attempts = 3;
};

class CheckpointDaemon {
 public:
  /// Wires `store` into the service's registry (adopt_metrics) and
  /// registers its own metrics there. Nothing runs until start().
  CheckpointDaemon(sys::ViewMapService& service, store::SegmentStore& store,
                   CheckpointConfig cfg);
  /// abort()s — destruction must not write a checkpoint nobody asked for.
  ~CheckpointDaemon();

  CheckpointDaemon(const CheckpointDaemon&) = delete;
  CheckpointDaemon& operator=(const CheckpointDaemon&) = delete;

  /// Spawns the checkpoint thread. False if already started.
  bool start();

  /// Graceful shutdown: waits out any in-flight cycle, runs one final
  /// cycle (which may skip — see header comment), joins. True: the final
  /// checkpoint sealed (or provably skipped) and the newest manifest is
  /// content-identical to the live database as of the call. False: every
  /// final_attempts attempt failed — the thread is still joined and the
  /// store still holds its last good checkpoint, but data ingested since
  /// is not sealed; last_error() says why. Idempotent (a repeat call
  /// reports the first call's outcome).
  [[nodiscard]] bool finish_and_stop();

  /// Crash-path shutdown: joins after the in-flight cycle (a thread
  /// cannot be torn mid-fsync in-process) with NO final checkpoint —
  /// everything ingested since the last sealed manifest is lost, exactly
  /// like kill -9. Idempotent.
  void abort();

  /// Nudges the thread to run a cycle now instead of at the next
  /// deadline (tests, operator-forced checkpoint).
  void poke();

  [[nodiscard]] bool running() const;

  /// Cycles that sealed a manifest / that skipped as unchanged / that
  /// failed, this daemon instance.
  [[nodiscard]] std::uint64_t written() const;
  [[nodiscard]] std::uint64_t skipped() const;
  [[nodiscard]] std::uint64_t failures() const;

  /// Failed cycles since the last success (0 = healthy). The health
  /// state machine reads this from the lifecycle/scrape threads.
  [[nodiscard]] std::uint64_t consecutive_failures() const;

  /// what() of the most recent cycle failure; empty after a success (or
  /// if none ever failed).
  [[nodiscard]] std::string last_error() const;

 private:
  void run();
  bool cycle();
  bool stop_impl(bool final_checkpoint);
  [[nodiscard]] std::chrono::milliseconds next_wait();
  /// Doubles `prev` from retry_backoff_min toward retry_backoff_max;
  /// `permanent` jumps straight to the cap.
  [[nodiscard]] std::chrono::milliseconds next_backoff(
      std::chrono::milliseconds prev, bool permanent) const;
  [[nodiscard]] std::chrono::milliseconds jittered(
      std::chrono::milliseconds base);

  sys::ViewMapService& service_;
  store::SegmentStore& store_;
  CheckpointConfig cfg_;

  obs::Counter* heartbeats_ = nullptr;
  obs::Counter* written_c_ = nullptr;
  obs::Counter* skipped_c_ = nullptr;
  obs::Gauge* sequence_g_ = nullptr;  ///< newest manifest this daemon sealed
  /// viewmap_daemon_checkpoint_failures_total{reason=…}, pre-registered
  /// for every StoreError::reason() label so exposition is deterministic.
  obs::Counter* failures_enospc_ = nullptr;
  obs::Counter* failures_eio_ = nullptr;
  obs::Counter* failures_permission_ = nullptr;
  obs::Counter* failures_other_ = nullptr;
  obs::Gauge* consecutive_g_ = nullptr;  ///< viewmap_daemon_checkpoint_consecutive_failures

  /// Digests of the snapshot behind the last checkpoint this daemon
  /// wrote (or skipped against). Thread-private: only run() touches it.
  std::vector<index::DbSnapshot::ShardDigest> last_digests_;
  bool have_last_ = false;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_requested_ = false;   ///< under mutex_
  bool final_checkpoint_ = false; ///< under mutex_
  bool poked_ = false;            ///< under mutex_
  std::uint64_t written_n_ = 0;   ///< under mutex_ (readable while running)
  std::uint64_t skipped_n_ = 0;   ///< under mutex_
  std::uint64_t failed_n_ = 0;    ///< under mutex_
  std::uint64_t consecutive_failures_n_ = 0;  ///< under mutex_
  std::string last_error_;        ///< under mutex_
  /// Last failure's transient/permanent classification. Thread-private:
  /// only run() reads it (to pick the next backoff step).
  bool last_failure_transient_ = true;
  /// Outcome of the final checkpoint; written by run() before it
  /// returns, read by stop_impl() after join() (the join orders it).
  bool final_ok_ = true;
  Rng jitter_rng_{0};
  std::thread thread_;
};

}  // namespace viewmap::daemon
