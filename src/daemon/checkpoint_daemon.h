// Periodic checkpointer: the daemon thread that owns the one-
// checkpointer-per-store contract.
//
// Every `interval` (± jitter, so a fleet of daemons restarted together
// doesn't fsync in lockstep) the thread pins one DbSnapshot and seals it
// into the SegmentStore. Before writing it compares the snapshot's
// shard_digests() against the digests of the last checkpoint it wrote:
// identical content ⇒ the write is skipped outright. The comparison is
// content identity (cached SHA-256 per shard, see DbSnapshot), not a
// heuristic — a skipped cycle is *proof* the newest manifest already
// equals the live database, which is why the final shutdown checkpoint
// may also skip without weakening the clean-drain guarantee.
//
// Shutdown has two shapes, mirroring IngestService: finish_and_stop()
// runs one final cycle after ingest has drained (so the newest manifest
// captures every accepted VP), abort() stops without it — the in-process
// stand-in for a crash, leaving whatever the last periodic cycle sealed.
//
// Long intervals are waited out in ≤1 s slices, each bumping
// viewmap_daemon_heartbeats_total{component="checkpoint"}: the lifecycle
// watchdog must be able to tell "waiting out a 5-minute interval" from
// "wedged inside fsync".
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "index/db_snapshot.h"

namespace viewmap::obs {
class Counter;
class Gauge;
}  // namespace viewmap::obs
namespace viewmap::store {
class SegmentStore;
}  // namespace viewmap::store
namespace viewmap::sys {
class ViewMapService;
}  // namespace viewmap::sys

namespace viewmap::daemon {

struct CheckpointConfig {
  std::chrono::milliseconds interval{30000};
  /// Each cycle's wait is interval ± this percentage, drawn per cycle.
  unsigned jitter_pct = 10;
  std::uint64_t jitter_seed = 0x7ea5;
  /// Compare shard digests against the previous checkpoint and skip the
  /// write when nothing changed. Off only for tests that count writes.
  bool skip_if_unchanged = true;
};

class CheckpointDaemon {
 public:
  /// Wires `store` into the service's registry (adopt_metrics) and
  /// registers its own metrics there. Nothing runs until start().
  CheckpointDaemon(sys::ViewMapService& service, store::SegmentStore& store,
                   CheckpointConfig cfg);
  /// abort()s — destruction must not write a checkpoint nobody asked for.
  ~CheckpointDaemon();

  CheckpointDaemon(const CheckpointDaemon&) = delete;
  CheckpointDaemon& operator=(const CheckpointDaemon&) = delete;

  /// Spawns the checkpoint thread. False if already started.
  bool start();

  /// Graceful shutdown: waits out any in-flight cycle, runs one final
  /// cycle (which may skip — see header comment), joins. After this the
  /// newest manifest is content-identical to the live database as of the
  /// call. Idempotent.
  void finish_and_stop();

  /// Crash-path shutdown: joins after the in-flight cycle (a thread
  /// cannot be torn mid-fsync in-process) with NO final checkpoint —
  /// everything ingested since the last sealed manifest is lost, exactly
  /// like kill -9. Idempotent.
  void abort();

  /// Nudges the thread to run a cycle now instead of at the next
  /// deadline (tests, operator-forced checkpoint).
  void poke();

  [[nodiscard]] bool running() const;

  /// Cycles that sealed a manifest / that skipped as unchanged, this
  /// daemon instance.
  [[nodiscard]] std::uint64_t written() const;
  [[nodiscard]] std::uint64_t skipped() const;

 private:
  void run();
  void cycle();
  void stop_impl(bool final_checkpoint);
  [[nodiscard]] std::chrono::milliseconds next_wait();

  sys::ViewMapService& service_;
  store::SegmentStore& store_;
  CheckpointConfig cfg_;

  obs::Counter* heartbeats_ = nullptr;
  obs::Counter* written_c_ = nullptr;
  obs::Counter* skipped_c_ = nullptr;
  obs::Gauge* sequence_g_ = nullptr;  ///< newest manifest this daemon sealed

  /// Digests of the snapshot behind the last checkpoint this daemon
  /// wrote (or skipped against). Thread-private: only run() touches it.
  std::vector<index::DbSnapshot::ShardDigest> last_digests_;
  bool have_last_ = false;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_requested_ = false;   ///< under mutex_
  bool final_checkpoint_ = false; ///< under mutex_
  bool poked_ = false;            ///< under mutex_
  std::uint64_t written_n_ = 0;   ///< under mutex_ (readable while running)
  std::uint64_t skipped_n_ = 0;   ///< under mutex_
  Rng jitter_rng_{0};
  std::thread thread_;
};

}  // namespace viewmap::daemon
