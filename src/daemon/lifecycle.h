// ServiceLifecycle: the composition root of the always-on daemon.
//
// Owns one ViewMapService plus the threads that make it a service
// instead of a library: the IngestService drain, the CheckpointDaemon,
// the service's own InvestigationServer pool, the scrape endpoint, and
// a watchdog. Sequences them through
//
//   Init ──start()──▶ Running ──drain()──▶ Draining ──stop()──▶ Stopped
//
// start() first restores from the segment store (point-in-time when
// recover_sequence names a manifest, newest otherwise), *then* starts
// threads — recovery must finish before anything mutates the database.
//
// Shutdown ordering is the load-bearing part (argued in
// src/daemon/README.md): drain() flips the state first (healthz goes
// not-ready, submits start rejecting), stops ingest second (drains the
// channel to empty), the investigation server third, and the
// checkpointer LAST — its final cycle therefore seals a manifest
// containing every VP any submitter was ever told was accepted. The
// scrape endpoint outlives the drain so operators can watch it happen;
// stop() takes it down with the watchdog.
//
// kill_for_test() is the in-process stand-in for kill -9: every thread
// is abort()ed — no channel drain, no final checkpoint — so the store
// holds exactly what the last periodic cycle sealed, which is precisely
// the state a crash leaves. The soak harness alternates it with fresh
// ServiceLifecycle instances on the same directory to hammer the PR 5
// recovery invariant.
//
// The watchdog samples every component's
// viewmap_daemon_heartbeats_total{component=…} counter; a counter that
// stops moving for stall_after while the daemon is Running flips
// viewmap_daemon_wedged{component=…} to 1 (and back on recovery), which
// healthz reports as 503. Components heartbeat even when idle (sliced
// waits), so "quiet" and "wedged" are distinguishable by construction.
//
// Health is a second axis, orthogonal to lifecycle state: a Running
// daemon is healthy / degraded / failing depending on what its
// components report (today: the checkpointer's consecutive-failure
// count, and any wedged component). Degraded means "serving, but a
// durability cycle has failed recently — data since the last sealed
// manifest is at risk if we crash now"; failing means the condition has
// persisted past failing_after failures (or a component is wedged) and
// an operator/orchestrator should act. /healthz returns 200 only for a
// healthy Running daemon; the body carries health= and reason= lines,
// and viewmap_daemon_health exports 0/1/2 for alerting without scraping
// /healthz at all. The first successful checkpoint snaps health straight
// back to healthy — the state machine has no memory beyond the
// consecutive-failure gauge it reads.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "daemon/checkpoint_daemon.h"
#include "daemon/ingest_service.h"
#include "daemon/scrape_endpoint.h"
#include "store/segment_store.h"
#include "system/investigation_server.h"
#include "system/service.h"

namespace viewmap::daemon {

enum class LifecycleState : int {
  kInit = 0,
  kRunning = 1,
  kDraining = 2,
  kStopped = 3,
};

[[nodiscard]] const char* to_string(LifecycleState s) noexcept;

/// Health of a Running daemon (see header comment). Ordered: higher is
/// worse, and the exported viewmap_daemon_health gauge is the enum value.
enum class HealthState : int {
  kHealthy = 0,
  kDegraded = 1,
  kFailing = 2,
};

[[nodiscard]] const char* to_string(HealthState s) noexcept;

struct HealthConfig {
  /// Consecutive checkpoint failures at which health turns degraded /
  /// failing. degraded_after ≤ failing_after; a wedged component is
  /// always failing regardless of these.
  std::uint64_t degraded_after = 1;
  std::uint64_t failing_after = 5;
};

struct WatchdogConfig {
  bool enabled = true;
  std::chrono::milliseconds interval{500};
  /// A Running component whose heartbeat counter has not moved for this
  /// long is flagged wedged. Generous default: a loaded 1-core box
  /// legitimately schedules threads coarsely.
  std::chrono::milliseconds stall_after{10000};
};

struct DaemonConfig {
  sys::ServiceConfig service{};
  /// Investigation front. start_server = false runs ingest-only (the
  /// paper's service still answers investigations, but a test may not
  /// want the pool).
  sys::ServerConfig server{};
  bool start_server = true;
  /// Segment-store directory. Empty ⇒ no persistence: no recovery on
  /// start, no checkpoint thread (a pure in-memory service).
  std::string store_dir;
  store::SegmentStoreConfig store{};
  /// 0 ⇒ recover newest-recoverable; otherwise restore exactly this
  /// manifest sequence (throws out of start() if absent/damaged).
  std::uint64_t recover_sequence = 0;
  IngestServiceConfig ingest{};
  CheckpointConfig checkpoint{};
  ScrapeConfig scrape{};
  WatchdogConfig watchdog{};
  HealthConfig health{};
};

class ServiceLifecycle {
 public:
  /// Constructs the service (and store when configured) but starts no
  /// thread: state() == kInit until start().
  explicit ServiceLifecycle(DaemonConfig cfg);
  /// stop()s (which drains first when still Running).
  ~ServiceLifecycle();

  ServiceLifecycle(const ServiceLifecycle&) = delete;
  ServiceLifecycle& operator=(const ServiceLifecycle&) = delete;

  /// Init → Running: sweep stale checkpoint temps, restore from the
  /// store, then start ingest, checkpointer, investigation server,
  /// scrape endpoint, watchdog — in that order. False when not in Init
  /// (double start, restart of a stopped instance — construct a fresh
  /// one). Throws when recovery or the scrape bind fails; no thread is
  /// left running on throw.
  bool start();

  /// Running → Draining: stop intake and settle all accepted work (see
  /// header comment for the ordering argument). The scrape endpoint
  /// stays up. False when the final checkpoint failed after all its
  /// retries — every thread is still joined and the store still holds
  /// its last good manifest, but work accepted since is NOT sealed;
  /// last_error() says why (viewmapd turns this into a non-zero exit).
  /// True when not Running (nothing to lose — no-op).
  bool drain();

  /// → Stopped: drain() first when still Running, then stop the scrape
  /// endpoint and watchdog. Returns the drain verdict (false ⇔ a final
  /// checkpoint was attempted and failed; see drain()). Safe before
  /// start() and idempotent — repeat calls report the recorded outcome.
  bool stop();

  /// Crash simulation: abort every thread with no drain and no final
  /// checkpoint, → Stopped. The store is left exactly as the last
  /// sealed manifest describes — the on-disk state of kill -9.
  void kill_for_test();

  [[nodiscard]] LifecycleState state() const noexcept {
    return static_cast<LifecycleState>(state_.load(std::memory_order_acquire));
  }

  [[nodiscard]] sys::ViewMapService& service() noexcept { return service_; }
  [[nodiscard]] IngestService& ingest() noexcept { return *ingest_; }
  [[nodiscard]] CheckpointDaemon* checkpointer() noexcept {
    return checkpointer_.get();
  }
  [[nodiscard]] store::SegmentStore* store() noexcept { return store_.get(); }
  /// 0 when the scrape endpoint is disabled or not running.
  [[nodiscard]] std::uint16_t scrape_port() const noexcept {
    return scrape_ ? scrape_->port() : 0;
  }
  /// Stats of the restore start() performed; recovered() false when the
  /// store was empty or absent (fresh database).
  [[nodiscard]] bool recovered() const noexcept { return recovered_; }
  [[nodiscard]] const store::RecoveryStats& recovery() const noexcept {
    return recovery_;
  }

  /// Health state machine (see header comment): kHealthy unless the
  /// checkpointer reports consecutive failures (degraded_after /
  /// failing_after thresholds) or the watchdog flagged a component
  /// wedged (always kFailing). Also refreshes viewmap_daemon_health.
  /// Thread-safe (scrape thread + watchdog + tests).
  [[nodiscard]] HealthState health_state() const;

  /// healthz payload: 200 ⇔ Running AND kHealthy. The body reports
  /// state=, health=, any wedged= components, a reason= line while
  /// degraded/failing, and last_error= with the newest checkpoint
  /// failure message.
  [[nodiscard]] std::pair<bool, std::string> health() const;

  /// what() of the failure that made drain()/stop() return false; empty
  /// while clean. Thread-safe.
  [[nodiscard]] std::string last_error() const;

  /// Stale `*.tmp` files swept by start() before recovery (crash debris
  /// from an interrupted checkpoint of a previous process).
  [[nodiscard]] std::size_t swept_temps() const noexcept { return swept_temps_; }

  // ── process signal plumbing (used by viewmapd) ─────────────────────
  /// Installs SIGTERM/SIGINT handlers that set a process-wide flag (a
  /// handler can do nothing else safely); the main loop polls
  /// shutdown_requested() and runs drain()+stop() itself.
  static void install_signal_handlers();
  [[nodiscard]] static bool shutdown_requested() noexcept;
  static void request_shutdown() noexcept;  ///< what the handlers call
  static void clear_shutdown() noexcept;    ///< tests re-arm the flag

 private:
  void set_state(LifecycleState s) noexcept;
  void start_watchdog();
  void stop_watchdog();
  void watchdog_run();

  DaemonConfig cfg_;
  sys::ViewMapService service_;
  std::unique_ptr<store::SegmentStore> store_;
  std::unique_ptr<IngestService> ingest_;
  std::unique_ptr<CheckpointDaemon> checkpointer_;
  std::unique_ptr<ScrapeEndpoint> scrape_;

  store::RecoveryStats recovery_{};
  bool recovered_ = false;
  std::size_t swept_temps_ = 0;

  std::atomic<int> state_{static_cast<int>(LifecycleState::kInit)};
  obs::Gauge* state_g_ = nullptr;
  obs::Gauge* health_g_ = nullptr;

  /// Shutdown verdict + its error, shared between the draining thread
  /// and health()/last_error() readers.
  mutable std::mutex error_mutex_;
  bool clean_ = true;            ///< under error_mutex_
  std::string last_error_;       ///< under error_mutex_

  struct Watched {
    std::string component;          ///< heartbeat label value
    const obs::Counter* beats = nullptr;
    obs::Gauge* wedged = nullptr;
    std::uint64_t last_value = 0;
    std::chrono::steady_clock::time_point last_change{};
  };
  std::vector<Watched> watched_;
  std::mutex watchdog_mutex_;
  std::condition_variable watchdog_cv_;
  bool watchdog_stop_ = false;  ///< under watchdog_mutex_
  std::thread watchdog_;
};

}  // namespace viewmap::daemon
