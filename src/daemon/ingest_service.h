// Always-on ingest: the daemon thread that owns ViewMapService's
// single-caller upload drain.
//
// ViewMapService::ingest_uploads() is documented (and now debug-
// enforced, see common/reentrancy.h) as one-caller-at-a-time. In the
// library-embedding shape that caller is the test or bench driving the
// service; in the always-on daemon it is exactly one thread — this one.
// Uploader threads talk to the *channel* (internally synchronized, see
// anonet/channel.h) through submit(), which adds the one thing the raw
// channel lacks: backpressure. An unbounded pending vector under a
// saturating uploader is an OOM with extra steps, so submit() bounds the
// channel at max_pending_uploads and either blocks the uploader until
// the drain catches up (kBlock, the loss-free default) or fails fast
// (kReject, for callers with their own retry story).
//
// The drain loop adapts to load: every pass that accepts work resets an
// exponential idle backoff; an empty channel doubles it up to
// idle_backoff_max, so a quiet daemon costs a few wakeups per second
// while a busy one drains continuously. Each loop pass bumps
// viewmap_daemon_heartbeats_total{component="ingest"} — the signal the
// lifecycle watchdog reads to tell "idle" from "wedged".
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

namespace viewmap::obs {
class Counter;
class Gauge;
}  // namespace viewmap::obs
namespace viewmap::sys {
class ViewMapService;
}  // namespace viewmap::sys

namespace viewmap::daemon {

/// What submit() does when the channel already holds
/// max_pending_uploads payloads.
enum class BackpressurePolicy {
  kBlock,   ///< block the uploader until the drain frees a slot (or stop)
  kReject,  ///< return false immediately, count the rejection
};

struct IngestServiceConfig {
  /// First idle sleep after the channel runs dry; doubles per idle pass.
  std::chrono::milliseconds idle_backoff_min{1};
  /// Idle sleep ceiling — also the worst-case submit→ingest latency on
  /// a quiet daemon (a submit() notifies the drain, so in practice the
  /// sleeper wakes immediately).
  std::chrono::milliseconds idle_backoff_max{200};
  /// Channel occupancy bound enforced by submit(). 0 ⇒ unbounded
  /// (library behaviour — only sensible under a trusted workload).
  std::size_t max_pending_uploads = 4096;
  BackpressurePolicy overflow = BackpressurePolicy::kBlock;
};

class IngestService {
 public:
  /// Registers its metrics in `service.metrics()`. Nothing runs until
  /// start().
  IngestService(sys::ViewMapService& service, IngestServiceConfig cfg);
  /// abort()s — a destructor must not block on a drain nobody asked for.
  ~IngestService();

  IngestService(const IngestService&) = delete;
  IngestService& operator=(const IngestService&) = delete;

  /// Spawns the drain thread. False if already started (double-start is
  /// a lifecycle bug, not a crash).
  bool start();

  /// Graceful shutdown: rejects new submit()s, keeps draining until the
  /// channel is empty, then joins. Every payload accepted before the
  /// call is ingested when this returns. Idempotent.
  void drain_and_stop();

  /// Crash-path shutdown: rejects new submit()s and joins after the
  /// current pass, leaving any still-pending payloads in the channel —
  /// the in-process stand-in for kill -9 (those payloads are exactly the
  /// ones a real crash would lose). Idempotent.
  void abort();

  /// Uploader-facing enqueue with backpressure (see BackpressurePolicy).
  /// Returns false when rejected — by policy, or because the service is
  /// stopping. Thread-safe, any number of callers.
  bool submit(std::vector<std::uint8_t> payload);

  [[nodiscard]] bool running() const noexcept {
    return running_.load(std::memory_order_acquire);
  }

 private:
  void run();
  void stop_impl(bool drain_remaining);

  sys::ViewMapService& service_;
  IngestServiceConfig cfg_;

  obs::Counter* heartbeats_ = nullptr;
  obs::Counter* passes_ = nullptr;      ///< drain passes that accepted work
  obs::Counter* failures_ = nullptr;    ///< drain passes that threw (retried)
  obs::Counter* rejected_ = nullptr;    ///< submit()s refused
  obs::Gauge* backlog_ = nullptr;       ///< channel pending() after each pass

  std::mutex mutex_;
  std::condition_variable work_cv_;   ///< submit → drain loop
  std::condition_variable space_cv_;  ///< drain loop → blocked submitters
  std::atomic<bool> running_{false};
  std::atomic<bool> accepting_{false};
  bool stop_requested_ = false;  ///< under mutex_
  bool drain_final_ = false;     ///< under mutex_: drain to empty on exit
  std::thread thread_;
};

}  // namespace viewmap::daemon
