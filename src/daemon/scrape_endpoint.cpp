#include "daemon/scrape_endpoint.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <sstream>
#include <stdexcept>

#include "common/failpoint.h"
#include "obs/metrics.h"

namespace viewmap::daemon {

namespace {

void send_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::send(fd, data.data() + off, data.size() - off,
                             MSG_NOSIGNAL);
    if (n < 0 && errno == EINTR) continue;  // a signal is not the peer hanging up
    if (n <= 0) return;  // peer went away; a scraper will retry
    off += static_cast<std::size_t>(n);
  }
}

std::string http_response(int status, const char* reason,
                          const std::string& body) {
  std::ostringstream os;
  os << "HTTP/1.1 " << status << ' ' << reason << "\r\n"
     << "Content-Type: text/plain; version=0.0.4\r\n"
     << "Content-Length: " << body.size() << "\r\n"
     << "Connection: close\r\n\r\n"
     << body;
  return os.str();
}

}  // namespace

ScrapeEndpoint::ScrapeEndpoint(const obs::MetricsRegistry& registry,
                               HealthProbe health, ScrapeConfig cfg,
                               obs::MetricsRegistry& own_metrics)
    : registry_(registry), health_(std::move(health)), cfg_(std::move(cfg)) {
  heartbeats_ = &own_metrics.counter("viewmap_daemon_heartbeats_total",
                                     {{"component", "scrape"}});
  requests_ = &own_metrics.counter("viewmap_daemon_scrape_requests_total");
}

ScrapeEndpoint::~ScrapeEndpoint() { stop(); }

bool ScrapeEndpoint::start() {
  if (!cfg_.enabled || thread_.joinable()) return false;

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw std::runtime_error("scrape: socket() failed");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(cfg_.port);
  if (::inet_pton(AF_INET, cfg_.bind_address.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw std::runtime_error("scrape: bad bind address " + cfg_.bind_address);
  }
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0 ||
      ::listen(fd, 16) != 0) {
    ::close(fd);
    throw std::runtime_error("scrape: cannot bind " + cfg_.bind_address + ":" +
                             std::to_string(cfg_.port));
  }
  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len);

  listen_fd_ = fd;
  stop_flag_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  port_.store(ntohs(bound.sin_port), std::memory_order_release);
  thread_ = std::thread([this] { run(); });
  return true;
}

void ScrapeEndpoint::stop() {
  stop_flag_.store(true, std::memory_order_release);
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  running_.store(false, std::memory_order_release);
  port_.store(0, std::memory_order_release);
}

void ScrapeEndpoint::run() {
  while (!stop_flag_.load(std::memory_order_acquire)) {
    heartbeats_->add();
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/100);
    if (ready <= 0) continue;  // timeout or EINTR: re-check the stop flag
    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) continue;
    serve_one(client);
    ::close(client);
  }
}

void ScrapeEndpoint::serve_one(int client_fd) {
  requests_->add();
  // One failed response must not take the accept loop with it: answer
  // 500 and keep serving (the scraper retries; the accept loop is the
  // thing the watchdog needs alive).
  if (failpoint::any_armed() &&
      failpoint::evaluate("daemon.scrape.serve").fires()) {
    send_all(client_fd, http_response(500, "Internal Server Error",
                                      "injected failure\n"));
    return;
  }
  // We only need the request line, but TCP may hand it to us in pieces —
  // keep reading until "\r\n" arrives, the buffer fills, or the 500 ms
  // deadline passes (slow-loris resistance: then we hang up). SO_RCVTIMEO
  // bounds each individual recv so a silent peer cannot pin the thread.
  timeval tv{0, 500 * 1000};
  ::setsockopt(client_fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
  const auto give_up = std::chrono::steady_clock::now() +
                       std::chrono::milliseconds(500);
  char buf[1024];
  std::size_t have = 0;
  std::string_view request;
  for (;;) {
    const ssize_t n = ::recv(client_fd, buf + have, sizeof buf - 1 - have, 0);
    if (n < 0 && (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (std::chrono::steady_clock::now() >= give_up) return;
      continue;
    }
    if (n <= 0) return;  // peer closed (or errored) before a full request line
    have += static_cast<std::size_t>(n);
    request = std::string_view(buf, have);
    if (request.find("\r\n") != std::string_view::npos) break;
    if (have >= sizeof buf - 1) break;  // no line in a full buffer: let 404 answer
    if (std::chrono::steady_clock::now() >= give_up) return;
  }
  const auto line_end = request.find("\r\n");
  const std::string_view line = request.substr(0, line_end);

  if (line.starts_with("GET /metrics")) {
    send_all(client_fd, http_response(200, "OK", registry_.render_text()));
  } else if (line.starts_with("GET /healthz")) {
    auto [healthy, body] = health_();
    send_all(client_fd,
             healthy ? http_response(200, "OK", body)
                     : http_response(503, "Service Unavailable", body));
  } else {
    send_all(client_fd, http_response(404, "Not Found", "not found\n"));
  }
}

}  // namespace viewmap::daemon
