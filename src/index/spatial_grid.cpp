#include "index/spatial_grid.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace viewmap::index {

void SpatialGrid::insert(const vp::ViewProfile* profile) {
  // A 1-minute trajectory at ≤70 m/s touches at most ~18 distinct 250 m
  // cells, usually 1-3; dedupe the per-second keys in a small local buffer.
  CellKey keys[kDigestsPerProfile];
  std::size_t n = 0;
  for (int s = 0; s < kDigestsPerProfile; ++s) {
    const geo::Vec2 p = profile->location_at(s);
    keys[n++] = pack(cell_coord(p.x), cell_coord(p.y));
  }
  std::sort(keys, keys + n);
  const auto* end = std::unique(keys, keys + n);
  for (const auto* k = keys; k != end; ++k) {
    cells_[*k].push_back(profile);
    ++entries_;
  }
}

void SpatialGrid::erase(const vp::ViewProfile* profile) noexcept {
  for (int s = 0; s < kDigestsPerProfile; ++s) {
    const geo::Vec2 p = profile->location_at(s);
    const auto it = cells_.find(pack(cell_coord(p.x), cell_coord(p.y)));
    if (it == cells_.end()) continue;
    entries_ -= static_cast<std::size_t>(std::erase(it->second, profile));
    if (it->second.empty()) cells_.erase(it);
  }
}

void SpatialGrid::collect_candidates(const geo::Rect& area,
                                     std::vector<const vp::ViewProfile*>& out) const {
  if (cells_.empty() || area.min.x > area.max.x || area.min.y > area.max.y) return;
  const std::int32_t x0 = cell_coord(area.min.x);
  const std::int32_t x1 = cell_coord(area.max.x);
  const std::int32_t y0 = cell_coord(area.min.y);
  const std::int32_t y1 = cell_coord(area.max.y);

  const std::size_t first = out.size();
  const auto span_x = static_cast<std::uint64_t>(x1) - static_cast<std::uint64_t>(x0) + 1;
  const auto span_y = static_cast<std::uint64_t>(y1) - static_cast<std::uint64_t>(y0) + 1;
  // Huge rectangles ("query everywhere") would enumerate billions of empty
  // cells; scanning the occupied cells is strictly cheaper past this point.
  if (span_x > cells_.size() || span_y > cells_.size() ||
      span_x * span_y > cells_.size()) {
    for (const auto& [key, vps] : cells_) {
      const std::int32_t cx = grid_cell_x(key);
      const std::int32_t cy = grid_cell_y(key);
      if (cx < x0 || cx > x1 || cy < y0 || cy > y1) continue;
      out.insert(out.end(), vps.begin(), vps.end());
    }
  } else {
    for (std::int32_t cx = x0;; ++cx) {
      for (std::int32_t cy = y0;; ++cy) {
        if (auto it = cells_.find(pack(cx, cy)); it != cells_.end())
          out.insert(out.end(), it->second.begin(), it->second.end());
        if (cy == y1) break;
      }
      if (cx == x1) break;
    }
  }
  // A trajectory can touch several matched cells; report each VP once.
  std::sort(out.begin() + static_cast<std::ptrdiff_t>(first), out.end());
  out.erase(std::unique(out.begin() + static_cast<std::ptrdiff_t>(first), out.end()),
            out.end());
}

}  // namespace viewmap::index
