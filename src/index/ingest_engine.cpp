#include "index/ingest_engine.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>

#include "obs/metrics.h"

namespace viewmap::index {

IngestMetrics IngestMetrics::wire(obs::MetricsRegistry& registry) {
  IngestMetrics m;
  m.accepted = &registry.counter("viewmap_ingest_accepted_total");
  m.rejected_malformed =
      &registry.counter("viewmap_ingest_rejected_total", {{"reason", "malformed"}});
  m.rejected_untimely =
      &registry.counter("viewmap_ingest_rejected_total", {{"reason", "untimely"}});
  m.rejected_duplicate =
      &registry.counter("viewmap_ingest_rejected_total", {{"reason", "duplicate"}});
  m.evicted = &registry.counter("viewmap_ingest_evicted_total");
  m.batches = &registry.counter("viewmap_ingest_batches_total");
  m.batch_us = &registry.histogram("viewmap_ingest_batch_us");
  return m;
}

IngestStats IngestMetrics::totals() const {
  IngestStats s;
  if (accepted == nullptr) return s;
  s.accepted = accepted->value();
  s.rejected_malformed = rejected_malformed->value();
  s.rejected_untimely = rejected_untimely->value();
  s.rejected_duplicate = rejected_duplicate->value();
  s.evicted = evicted->value();
  s.batches = batches->value();
  return s;
}

IngestStats& IngestStats::operator+=(const IngestStats& o) noexcept {
  accepted += o.accepted;
  rejected_malformed += o.rejected_malformed;
  rejected_untimely += o.rejected_untimely;
  rejected_duplicate += o.rejected_duplicate;
  evicted += o.evicted;
  batches += o.batches;
  return *this;
}

IngestEngine::IngestEngine(VpTimeline& timeline, vp::VpUploadPolicy policy,
                           IngestConfig cfg)
    : timeline_(timeline), policy_(policy), cfg_(cfg) {
  if (cfg_.metrics != nullptr) metrics_ = IngestMetrics::wire(*cfg_.metrics);
}

unsigned IngestEngine::worker_count() const noexcept {
  if (cfg_.threads != 0) return cfg_.threads;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

IngestStats IngestEngine::ingest(std::vector<std::vector<std::uint8_t>> payloads) {
  IngestStats stats;
  stats.batches = 1;
  const bool wired = metrics_.accepted != nullptr;
  const auto batch_start = std::chrono::steady_clock::now();

  std::atomic<std::size_t> cursor{0};
  std::atomic<std::size_t> accepted{0};
  std::atomic<std::size_t> malformed{0};
  std::atomic<std::size_t> untimely{0};
  std::atomic<std::size_t> duplicate{0};

  const auto worker = [&] {
    std::size_t ok = 0, bad = 0, late = 0, dup = 0;
    for (;;) {
      const std::size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
      if (i >= payloads.size()) break;
      // The hot loop touches only worker-local tallies; the registry is
      // published once per batch from the aggregated deltas below, so
      // instrumentation costs the loop nothing (exposition readers see
      // batch-granular progress, which is all anyone scrapes).
      try {
        auto profile = vp::ViewProfile::parse(payloads[i]);
        if (!policy_.well_formed(profile)) {
          ++bad;
        } else if (!timeline_.admissible(profile.unit_time())) {
          // Claimed minute implausibly far from the trusted clock —
          // rejecting here keeps attacker timestamps out of the shards
          // (retention itself never trusts them either).
          ++late;
        } else if (timeline_.insert(std::move(profile), /*trusted=*/false)) {
          ++ok;
        } else {
          ++dup;
        }
      } catch (const std::exception&) {
        // Malformed payloads are dropped; anonymous senders get no feedback.
        ++bad;
      }
    }
    accepted.fetch_add(ok, std::memory_order_relaxed);
    malformed.fetch_add(bad, std::memory_order_relaxed);
    untimely.fetch_add(late, std::memory_order_relaxed);
    duplicate.fetch_add(dup, std::memory_order_relaxed);
  };

  // Never more threads than payloads: each extra worker would pop the
  // cursor once past the end and exit, paying spawn/join for nothing.
  const unsigned workers = static_cast<unsigned>(
      std::min<std::size_t>(worker_count(), payloads.size()));
  if (workers <= 1 || payloads.size() < cfg_.min_parallel_batch) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(workers);
    try {
      for (unsigned t = 0; t < workers; ++t) pool.emplace_back(worker);
    } catch (...) {
      // A thread that failed to start never claimed a cursor slot; the
      // ones already running drain the batch and exit, so joining them
      // terminates. Destroying joinable threads would std::terminate.
      for (auto& th : pool) th.join();
      throw;
    }
    for (auto& th : pool) th.join();
  }

  stats.accepted = accepted.load();
  stats.rejected_malformed = malformed.load();
  stats.rejected_untimely = untimely.load();
  stats.rejected_duplicate = duplicate.load();
  if (cfg_.enforce_retention) stats.evicted = timeline_.enforce_retention();
  totals_ += stats;
  if (wired) {
    if (stats.accepted != 0) metrics_.accepted->add(stats.accepted);
    if (stats.rejected_malformed != 0)
      metrics_.rejected_malformed->add(stats.rejected_malformed);
    if (stats.rejected_untimely != 0)
      metrics_.rejected_untimely->add(stats.rejected_untimely);
    if (stats.rejected_duplicate != 0)
      metrics_.rejected_duplicate->add(stats.rejected_duplicate);
    if (stats.evicted != 0) metrics_.evicted->add(stats.evicted);
    metrics_.batches->add();
    metrics_.batch_us->record(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - batch_start)
            .count()));
  }
  return stats;
}

IngestStats IngestEngine::drain(anonet::AnonymousChannel& channel) {
  IngestStats stats;
  auto deliveries = channel.drain();
  if (deliveries.empty()) return stats;
  std::vector<std::vector<std::uint8_t>> payloads;
  payloads.reserve(deliveries.size());
  for (auto& delivery : deliveries) payloads.push_back(std::move(delivery.payload));
  return ingest(std::move(payloads));
}

}  // namespace viewmap::index
