// Immutable, refcounted point-in-time views of the VP timeline.
//
// The service must answer investigations while anonymous uploads stream
// in and retention eviction reclaims old shards (paper §4–5). Handing out
// raw pointers into live shards forces readers to serialize against the
// ingest path; instead, readers take a DbSnapshot — an RCU-style pinned
// view built from the timeline's published shards:
//
//   * A TimeShard is immutable once published behind a std::shared_ptr.
//     Writers that must touch a shard some snapshot still references
//     clone it first (copy-on-write) and publish the clone; the snapshot
//     keeps the original.
//   * Eviction merely drops the timeline's reference. A shard pinned by
//     a snapshot stays alive — bit-identical — until the last snapshot
//     referencing it is destroyed, then its memory is released.
//
// Lifetime contract: every pointer returned by find()/query()/
// trusted_at()/all() is valid for as long as *any* copy of the snapshot
// that produced it is alive. There is no "do not hold across ingest"
// caveat; hold a snapshot as long as you like. Memory cost: a snapshot
// pins at most the shards that existed when it was taken; shards the
// live timeline has since replaced (copy-on-write) or evicted are the
// only ones it keeps alive beyond the timeline's own footprint.
//
// Snapshots are cheap (O(live shards) shared_ptr copies under the
// timeline's stripe locks — profiles are never copied), are plain values
// (copy/move freely), and are safe to share across threads: all state
// reachable from a snapshot is const.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/types.h"
#include "geo/geometry.h"
#include "index/spatial_grid.h"
#include "vp/view_profile.h"

namespace viewmap::index {

/// Per-shard census row (inspection tooling, persistence stats).
struct ShardStats {
  TimeSec unit_time = 0;
  std::size_t vp_count = 0;
  std::size_t trusted_count = 0;
  std::size_t grid_cells = 0;
  std::size_t grid_entries = 0;
};

/// One unit-time worth of storage. Published behind std::shared_ptr and
/// immutable while pinned: the timeline clones before mutating any shard
/// a snapshot still pins (see VpTimeline). Profiles are themselves
/// individually refcounted, so cloning a shard copies maps of pointers,
/// never the ~4.6 KB profiles, and the grid's raw profile pointers stay
/// valid in every clone.
struct TimeShard {
  TimeSec unit_time = 0;
  std::unordered_map<Id16, std::shared_ptr<const vp::ViewProfile>, Id16Hasher> profiles;
  std::unordered_set<Id16, Id16Hasher> trusted;
  SpatialGrid grid;
  /// Count of live DbSnapshots pinning this shard. This — not the
  /// shared_ptr use_count — is the writers' copy-on-write trigger:
  /// pinning happens under the timeline's stripe lock, unpinning is a
  /// release decrement (snapshot destruction, any thread), and a writer
  /// mutates in place only after an acquire load observes 0, which
  /// orders every released reader's reads before the writer's writes.
  /// use_count() cannot serve here: its observer is a relaxed load with
  /// no such ordering. Holding the shared_ptr without a pin (a Viewmap
  /// does) keeps the *profile objects* alive but does NOT license
  /// reading the maps/grid, which a writer may then be mutating.
  mutable std::atomic<std::size_t> pins{0};

  TimeShard(TimeSec unit, SpatialGridConfig grid_cfg) : unit_time(unit), grid(grid_cfg) {}
  /// COW clone: copies the content, starts unpinned, with an invalid
  /// digest cache and a fresh generation stamp (the clone exists
  /// precisely because it is about to be mutated).
  TimeShard(const TimeShard& other)
      : unit_time(other.unit_time),
        profiles(other.profiles),
        trusted(other.trusted),
        grid(other.grid) {}

  [[nodiscard]] ShardStats stats() const {
    return {unit_time, profiles.size(), trusted.size(), grid.cell_count(),
            grid.entry_count()};
  }

  /// Streams this shard's canonical content bytes into `sink`, in one or
  /// more chunks:
  ///
  ///   unit_time i64 LE | vp_count u64 LE | trusted_count u64 LE |
  ///   vp_count × ViewProfile wire payload (ascending id) |
  ///   trusted_count × Id16 (ascending)
  ///
  /// This byte stream IS the segment-file content section
  /// (store/segment_store) and the preimage of content_digest() — one
  /// serializer, so the digest can never disagree with what a checkpoint
  /// writes. Deterministic: equal shard content ⇒ equal bytes, whatever
  /// insertion order produced it.
  void stream_content(const std::function<void(std::span<const std::uint8_t>)>& sink) const;

  /// SHA-256 over stream_content() — the shard's content identity. The
  /// segment store keys incremental checkpoints on it: an unchanged shard
  /// keeps its digest, so its sealed segment is reused by reference
  /// instead of rewritten. Cached: computed at most once per distinct
  /// content. Call only while the shard is pinned by a snapshot (writers
  /// then copy-on-write instead of mutating in place, which also means
  /// they never race the cache below); concurrent calls from many
  /// snapshot holders are fine.
  [[nodiscard]] Hash32 content_digest() const;

  /// O(1) change-identity key for the investigation result cache. Returns
  /// the content digest when it is already cached (free — no bytes are
  /// serialized or hashed), else a tagged encoding of the shard's
  /// generation stamp. Equal keys ⇒ unchanged content: a cached digest is
  /// content identity outright, and equal stamps mean the same shard
  /// object with no in-place mutation since (every mutation path — COW
  /// clone or invalidate_digest() — draws a fresh stamp from a process-
  /// global counter, so stamps are never reused across objects or edits).
  /// Unlike content_digest(), this never pays O(shard size) on a serve
  /// path. Call only while the shard is pinned by a snapshot.
  [[nodiscard]] Hash32 cache_key() const;

  /// Writers call this (under the owning time-stripe lock) after mutating
  /// the shard in place. In-place mutation happens only on unpinned
  /// shards, so no concurrent content_digest()/cache_key() reader can
  /// exist — the stripe lock orders these plain stores before any later
  /// pin.
  void invalidate_digest() noexcept {
    digest_valid_ = false;
    generation_ = next_generation();
  }

  /// Pre-seeds the digest cache with an externally-known content digest.
  /// Only valid on a shard the caller owns exclusively (recovery builds
  /// shards off-thread before publishing them — see
  /// VpTimeline::adopt_shard), and only when `digest` really is the
  /// SHA-256 of this shard's stream_content() — the segment store seeds
  /// the manifest digest iff every profile of the segment was adopted
  /// unchanged, so the first checkpoint after a restart reuses every
  /// sealed segment without re-serializing a byte.
  void seed_digest(const Hash32& digest) noexcept {
    digest_ = digest;
    digest_valid_ = true;
  }

 private:
  /// Next value of the process-global generation counter (monotone,
  /// starts at 1 so a stamp-derived cache_key() is never the zero hash).
  static std::uint64_t next_generation() noexcept;

  /// content_digest() cache. The mutex only arbitrates concurrent
  /// snapshot readers computing the digest at the same time; writers
  /// never touch it (see invalidate_digest()).
  mutable std::mutex digest_mutex_;
  mutable bool digest_valid_ = false;
  mutable Hash32 digest_{};
  /// Change stamp backing cache_key(): fresh at construction (both ctors
  /// — the COW clone deliberately does not copy it) and on every
  /// invalidate_digest(). Plain (non-atomic) under the same discipline as
  /// digest_valid_: written only at construction or under the stripe lock
  /// on an unpinned shard.
  std::uint64_t generation_ = next_generation();
};

/// A pinned, immutable view of a VpTimeline (see file comment). Obtained
/// from VpTimeline::snapshot() / sys::VpDatabase::snapshot(); the
/// default-constructed snapshot is a valid empty database.
class DbSnapshot {
 public:
  DbSnapshot() = default;

  /// The profile stored under `vp_id` at snapshot time, or nullptr.
  /// O(1) amortized: the first find() on a snapshot builds a lazy
  /// id → profile index over the pinned shards (one pass, call_once —
  /// safe from any number of concurrent const readers); every later
  /// probe is a single hash lookup. Snapshots that never find() never
  /// pay for the index.
  [[nodiscard]] const vp::ViewProfile* find(const Id16& vp_id) const;
  [[nodiscard]] bool is_trusted(const Id16& vp_id) const noexcept;

  /// All VPs covering `unit_time` with any claimed location inside
  /// `area`, ordered by id. Exact (not a superset): candidates from the
  /// shard grid are finished with the ViewProfile::visits() predicate.
  [[nodiscard]] std::vector<const vp::ViewProfile*> query(TimeSec unit_time,
                                                          const geo::Rect& area) const;
  /// All trusted VPs covering `unit_time`, ordered by id.
  [[nodiscard]] std::vector<const vp::ViewProfile*> trusted_at(TimeSec unit_time) const;

  /// Every VP in the snapshot, ordered by (unit-time, id). This order is
  /// what makes persistence byte-deterministic (store/vp_store).
  [[nodiscard]] std::vector<const vp::ViewProfile*> all() const;
  /// Identifiers of all trusted VPs, ordered by (unit-time, id).
  [[nodiscard]] std::vector<Id16> trusted_ids() const;

  [[nodiscard]] std::size_t size() const noexcept;
  [[nodiscard]] std::size_t trusted_count() const noexcept;
  [[nodiscard]] bool empty() const noexcept { return size() == 0; }

  /// The trusted retention clock as of snapshot time (TimeSec min when it
  /// had never been set).
  [[nodiscard]] TimeSec trusted_now() const noexcept;
  [[nodiscard]] bool has_trusted_clock() const noexcept {
    return trusted_now() != std::numeric_limits<TimeSec>::min();
  }

  /// The timeline write-version observed before this snapshot's cut.
  /// `timeline.version() == snapshot.version()` ⇒ no write has completed
  /// since, i.e. the snapshot is still an exact image of the live
  /// timeline and can be reused instead of re-pinned (the investigation
  /// server's workers do). 0 for the default-constructed empty snapshot.
  [[nodiscard]] std::uint64_t version() const noexcept {
    return state_ == nullptr ? 0 : state_->version;
  }

  /// Per-shard census, ordered by unit-time.
  [[nodiscard]] std::vector<ShardStats> shard_stats() const;
  [[nodiscard]] std::size_t shard_count() const noexcept;

  /// Content identity of one pinned shard, ordered by unit-time via
  /// shard_digests(). The digest is what incremental persistence keys
  /// segment reuse on (see TimeShard::content_digest and
  /// store/segment_store).
  struct ShardDigest {
    TimeSec unit_time = 0;
    Hash32 digest{};
  };
  /// Content digests of every pinned shard, ordered by unit-time. Cost:
  /// SHA-256 over each shard whose digest is not already cached; a shard
  /// untouched since the last call across *any* snapshot answers from its
  /// cache without re-serializing a byte.
  [[nodiscard]] std::vector<ShardDigest> shard_digests() const;

  /// The pinned shards themselves, ordered by unit-time. Persistence and
  /// tests iterate these directly instead of materializing all(); the
  /// shared_ptrs make the pin observable (weak_ptr expiry ⇔ release).
  [[nodiscard]] std::span<const std::shared_ptr<const TimeShard>> shards() const noexcept;

  /// The pinned shard covering `unit_time` (null when none). Lets
  /// single-minute consumers — a Viewmap spans exactly one unit-time —
  /// keep just their shard alive instead of the whole snapshot.
  [[nodiscard]] std::shared_ptr<const TimeShard> shard(TimeSec unit_time) const noexcept;

  /// O(1) change-identity key of the shard covering `unit_time`
  /// (TimeShard::cache_key — the cached content digest when one is
  /// already known, else the shard's generation stamp), or std::nullopt
  /// when the snapshot holds no such shard. This is the invalidation key
  /// of the investigation result cache (system/result_cache.h): any
  /// ingest or eviction touching the minute changes it. Never serializes
  /// or hashes shard content — safe on a per-request serve path.
  [[nodiscard]] std::optional<Hash32> shard_cache_key(TimeSec unit_time) const;

 private:
  friend class VpTimeline;

  struct State {
    std::vector<std::shared_ptr<const TimeShard>> shards;  ///< sorted by unit_time
    std::size_t vp_count = 0;
    std::size_t trusted_count = 0;
    TimeSec clock = std::numeric_limits<TimeSec>::min();
    std::uint64_t version = 0;  ///< timeline write-version before the cut

    /// Lazy global id index for find(): built over the pinned shards on
    /// first use (call_once ⇒ const-concurrent safe), in shard order so
    /// a duplicate id resolves to the earliest unit-time exactly like
    /// the original per-shard probe did. Values point into the pinned
    /// shards, which this State owns.
    mutable std::once_flag id_index_once;
    mutable std::unordered_map<Id16, const vp::ViewProfile*, Id16Hasher> id_index;

    State() = default;
    State(const State&) = delete;
    State& operator=(const State&) = delete;
    /// Unpin everything this snapshot was reading. The release pairs
    /// with the writers' acquire load of TimeShard::pins.
    ~State() {
      for (const auto& shard : shards)
        shard->pins.fetch_sub(1, std::memory_order_release);
    }
  };

  explicit DbSnapshot(std::shared_ptr<const State> state) : state_(std::move(state)) {}

  /// The shard covering `unit_time`, or nullptr.
  [[nodiscard]] const TimeShard* shard_at(TimeSec unit_time) const noexcept;

  std::shared_ptr<const State> state_;  ///< null ⇔ empty snapshot
};

}  // namespace viewmap::index
