// Time-sharded, grid-indexed VP store with retention-window eviction.
//
// ViewMap slices everything by unit-time (1 minute, §5.2.1) and its data
// ages out naturally — dashcams themselves only retain 2-3 weeks of video
// (§2), so VPs older than the retention window can never be solicited and
// are dead weight. The timeline therefore shards storage by unit-time:
//
//   unit-time ──► shared_ptr<TimeShard> { profiles, trusted ids, grid }
//
// An investigation query (site rect, unit-time) touches exactly one shard
// and, inside it, only the grid cells overlapping the site — O(VPs near
// the site that minute) instead of O(all VPs ever stored). Retention
// eviction drops whole shards.
//
// Retention clock: eviction is measured from a *trusted* clock, never
// from timestamps claimed inside anonymous uploads. The clock advances
// monotonically from two sources only: authenticated (trusted) inserts
// and explicit advance_clock() calls by the operator. Until it is set,
// enforce_retention() evicts nothing — otherwise one well-formed
// anonymous upload claiming a far-future minute could age out every
// real shard. admissible() is the matching upload screen: anonymous
// claims outside [clock − window, clock + skew] are rejected before
// they ever reach a shard.
//
// Concurrency: insert/is_trusted/snapshot take striped locks — ids are
// striped by id hash, shards by unit-time hash — so concurrent ingest
// threads working on different minutes (or different ids within a
// minute) rarely contend and never take a global lock. The global id map
// makes duplicate-id detection work across shards; eviction does NOT
// walk it (that would make eviction O(evicted VPs) of index surgery
// under the ingest path's locks). Instead evicted ids become
// *tombstones* that are resolved lazily: a lookup whose shard has
// vanished reports the id as absent, a re-upload reclaims the entry, and
// once tombstones outnumber live ids the maps are compacted in one
// sweep.
//
// Read surface: there is none on the live timeline beyond O(1) scalar
// accessors, find() (which returns an owning shared_ptr) and is_trusted.
// Bulk reads go through snapshot() → DbSnapshot, an immutable pinned
// view whose results stay valid — across further ingest, eviction, and
// the timeline's own destruction — until the snapshot is released (RCU
// discipline; see index/db_snapshot.h). Writers honor snapshots by
// copy-on-write: an insert into a shard some snapshot still pins
// clones the shard (maps of refcounted profile pointers — cheap) and
// publishes the clone; eviction just drops the timeline's reference.
#pragma once

#include <atomic>
#include <cstdint>
#include <limits>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "geo/geometry.h"
#include "index/db_snapshot.h"
#include "index/spatial_grid.h"
#include "vp/view_profile.h"

namespace viewmap::obs {
class MetricsRegistry;  // obs/metrics.h
class Counter;
class Gauge;
}  // namespace viewmap::obs

namespace viewmap::index {

struct RetentionConfig {
  /// How far behind the trusted clock a shard may fall before
  /// enforce_retention() drops it. Default: 3 weeks (§2 dashcam storage).
  TimeSec window_sec = 21 * 24 * 3600;
  /// How far ahead of the trusted clock an anonymous upload may claim its
  /// unit-time and still pass admissible() — generous dashcam clock-skew
  /// allowance; anything further is structurally implausible.
  TimeSec max_future_skew_sec = 3600;
};

struct TimelineConfig {
  SpatialGridConfig grid{};
  RetentionConfig retention{};
  /// When set, the timeline publishes a live-shard gauge and eviction /
  /// tombstone counters here. Null disables all instrumentation. Not
  /// owned; must outlive the timeline.
  obs::MetricsRegistry* metrics = nullptr;
};

class VpTimeline {
 public:
  explicit VpTimeline(TimelineConfig cfg = {});
  ~VpTimeline();

  VpTimeline(VpTimeline&& other) noexcept;
  VpTimeline& operator=(VpTimeline&& other) noexcept;
  VpTimeline(const VpTimeline&) = delete;
  VpTimeline& operator=(const VpTimeline&) = delete;

  /// Stores an already-screened profile. Thread-safe. Returns false when
  /// the id collides with a live (or in-flight) entry.
  bool insert(vp::ViewProfile profile, bool trusted);

  /// Bulk shard adoption — the recovery fast path. The caller hands over
  /// a fully-built shard (profiles map, trusted set, grid) it owns
  /// exclusively; the timeline claims every id, removes collisions
  /// (an id already live elsewhere keeps its earlier profile — the same
  /// first-wins rule the per-profile insert() path applies), and
  /// publishes the shard in one time-stripe critical section instead of
  /// one three-phase insert per profile. When the unit-time slot is
  /// already occupied the survivors are merged into the existing shard
  /// (copy-on-write when pinned). Counters, the write version, and —
  /// when the shard carries trusted ids — the trusted clock are updated
  /// exactly as `profiles.size()` individual inserts would have.
  /// Returns the number of profiles dropped as id collisions; any drop
  /// or merge invalidates the shard's digest cache. Thread-safe against
  /// concurrent inserts/snapshots, but the shard argument must not be
  /// reachable by any other thread.
  std::size_t adopt_shard(std::shared_ptr<TimeShard> shard);

  /// An immutable pinned view of every live shard — the read API.
  /// Results obtained from the snapshot stay valid for the snapshot's
  /// lifetime regardless of concurrent ingest or eviction. Cost:
  /// O(live shards) shared_ptr copies under the stripe locks; no
  /// profile data is copied. Thread-safe.
  [[nodiscard]] DbSnapshot snapshot() const;

  /// Point lookup returning an *owning* reference: the profile stays
  /// alive (and bit-identical) for as long as the caller holds the
  /// pointer, even if its shard is evicted meanwhile. Thread-safe.
  [[nodiscard]] std::shared_ptr<const vp::ViewProfile> find(const Id16& vp_id) const;
  [[nodiscard]] bool is_trusted(const Id16& vp_id) const;

  [[nodiscard]] std::size_t size() const noexcept {
    return size_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t trusted_count() const noexcept {
    return trusted_count_.load(std::memory_order_relaxed);
  }
  /// Newest unit-time ever inserted. Informational only (inspection,
  /// stats): it reflects anonymous claims, so retention deliberately does
  /// NOT use it — see trusted_now().
  [[nodiscard]] TimeSec latest_unit_time() const noexcept {
    return latest_.load(std::memory_order_relaxed);
  }

  /// Advances the trusted service clock (monotonic max; moves only
  /// forward). Trusted inserts call this implicitly with their unit-time;
  /// the operator feeds wall-clock through it. Anonymous uploads never
  /// touch it.
  void advance_clock(TimeSec now) noexcept;
  /// Operator recovery: force-sets the clock, non-monotonically. Needed
  /// when an authority device with a corrupt RTC (or a compromised one)
  /// advanced the clock far into the future — advance_clock() alone could
  /// never bring it back. Routine advancement must use advance_clock().
  void reset_clock(TimeSec now) noexcept {
    clock_.store(now, std::memory_order_relaxed);
    // Snapshots capture the clock, so this is a write for version()
    // purposes too.
    version_.fetch_add(1, std::memory_order_release);
  }
  /// The trusted clock, or TimeSec min when it has never been set.
  [[nodiscard]] TimeSec trusted_now() const noexcept {
    return clock_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] bool has_trusted_clock() const noexcept {
    return trusted_now() != std::numeric_limits<TimeSec>::min();
  }

  /// Monotonic write-version counter: bumped by every successful insert,
  /// every eviction pass that removed at least one shard, and every
  /// trusted-clock change (the clock is part of what snapshots capture). A
  /// DbSnapshot records the version observed *before* its shard
  /// collection (DbSnapshot::version()), so `timeline.version() ==
  /// snap.version()` proves no write has completed since before the
  /// snapshot was cut — the snapshot is still an exact image of the live
  /// timeline and may be reused instead of re-pinned. The comparison is
  /// conservative: a write racing the cut bumps the live counter past
  /// the recorded one even when the snapshot actually caught it, which
  /// only costs the holder one redundant re-snapshot. This is the
  /// snapshot-acquisition hook the investigation server's workers use to
  /// skip O(live shards) re-pinning between batches on a quiet database.
  [[nodiscard]] std::uint64_t version() const noexcept {
    return version_.load(std::memory_order_acquire);
  }

  /// The timeliness screen for anonymous uploads: is a claimed unit-time
  /// plausible relative to the trusted clock? True whenever the clock is
  /// unset (no trusted reference to compare against — and then nothing
  /// can be evicted either). Otherwise the claim must lie within
  /// [clock − retention window, clock + max_future_skew_sec].
  [[nodiscard]] bool admissible(TimeSec unit_time) const noexcept;

  /// Drops every shard with unit-time < cutoff. Returns evicted VP count.
  /// Thread-safe, including against concurrent insert(): a profile and
  /// the size/trusted counters commit atomically under the shard's lock,
  /// so eviction never observes one without the other. Shards pinned by
  /// snapshots stay alive until their last snapshot is released; the
  /// timeline itself stops referencing them immediately.
  std::size_t evict_older_than(TimeSec cutoff_unit);
  /// Drops every shard outside the plausible window around the trusted
  /// clock: older than clock − window AND newer than clock + skew. The
  /// future side reclaims implausible claims admitted while the clock was
  /// still unset — without it they would be unevictable forever. A no-op
  /// until advance_clock() (or a trusted insert) has set the clock.
  std::size_t enforce_retention();

  /// Live shards, ordered by unit-time.
  [[nodiscard]] std::vector<ShardStats> shard_stats() const;

  [[nodiscard]] const TimelineConfig& config() const noexcept { return cfg_; }

 private:
  static constexpr std::size_t kIdStripes = 16;
  static constexpr std::size_t kTimeStripes = 8;

  struct IdEntry {
    TimeSec unit_time = 0;
    /// False while the owning insert is between claiming the id and
    /// committing the profile to its shard; such entries are hard
    /// duplicates, never tombstones.
    bool committed = false;
  };

  struct IdStripe {
    mutable std::mutex mutex;
    std::unordered_map<Id16, IdEntry, Id16Hasher> ids;
  };

  struct TimeStripe {
    mutable std::mutex mutex;
    /// Values are never null. A shard is writable in place exactly when
    /// its pin count observed under this mutex is 0 — snapshots pin
    /// under the same mutex and unpin with a release the writer's
    /// acquire load pairs with (see TimeShard::pins); any live pin makes
    /// a writer copy-on-write (see insert()).
    std::unordered_map<TimeSec, std::shared_ptr<TimeShard>> shards;
  };

  [[nodiscard]] IdStripe& id_stripe(const Id16& id) const {
    return *id_stripes_[Id16Hasher{}(id) % kIdStripes];
  }
  [[nodiscard]] TimeStripe& time_stripe(TimeSec unit) const {
    return *time_stripes_[static_cast<std::uint64_t>(unit) / kUnitTimeSec % kTimeStripes];
  }
  /// Lock-order invariant: a thread holding an id-stripe mutex may acquire
  /// a time-stripe mutex, never the reverse. Multi-stripe holders
  /// (compaction, snapshot) acquire id stripes in index order, then time
  /// stripes in index order.
  [[nodiscard]] bool shard_holds(TimeSec unit, const Id16& id) const;

  struct RetentionBounds {
    TimeSec oldest;
    TimeSec newest;
  };
  /// Saturating [now − window, now + skew]. One computation shared by the
  /// admission screen and the evictor, so the two can never disagree on
  /// the window edges.
  [[nodiscard]] RetentionBounds retention_bounds(TimeSec now) const noexcept;
  /// Drops every shard whose unit-time falls outside [oldest, newest].
  std::size_t evict_outside(TimeSec oldest, TimeSec newest);

  void fresh_stripes();
  void compact_tombstones();
  void wire_metrics();

  TimelineConfig cfg_;
  std::vector<std::unique_ptr<IdStripe>> id_stripes_;
  std::vector<std::unique_ptr<TimeStripe>> time_stripes_;
  std::atomic<std::size_t> size_{0};
  std::atomic<std::size_t> trusted_count_{0};
  std::atomic<TimeSec> latest_{std::numeric_limits<TimeSec>::min()};
  /// Trusted retention clock; min() = never set. Advanced only by
  /// advance_clock() — i.e. trusted inserts and the operator.
  std::atomic<TimeSec> clock_{std::numeric_limits<TimeSec>::min()};
  std::atomic<std::size_t> tombstones_{0};
  /// Write-version (see version()). Release-bumped after a write commits,
  /// acquire-read by holders deciding whether a snapshot is still fresh.
  std::atomic<std::uint64_t> version_{0};

  /// Registry handles, resolved once in wire_metrics(); all null when
  /// cfg_.metrics is null. shard_count_ mirrors this instance's
  /// contribution to the (process-wide) shard gauge so the destructor
  /// and move-assignment can withdraw exactly what this instance added —
  /// the gauge may be shared with a successor timeline during recovery.
  obs::Gauge* shards_gauge_ = nullptr;
  obs::Counter* eviction_passes_ = nullptr;
  obs::Counter* evicted_vps_ = nullptr;
  obs::Counter* tombstones_reclaimed_ = nullptr;
  std::atomic<std::size_t> shard_count_{0};
};

}  // namespace viewmap::index
