#include "index/timeline.h"

#include <algorithm>
#include <array>

#include "obs/metrics.h"

namespace viewmap::index {

VpTimeline::VpTimeline(TimelineConfig cfg) : cfg_(cfg) {
  fresh_stripes();
  wire_metrics();
}

void VpTimeline::wire_metrics() {
  if (cfg_.metrics == nullptr) return;
  shards_gauge_ = &cfg_.metrics->gauge("viewmap_timeline_shards");
  eviction_passes_ = &cfg_.metrics->counter("viewmap_timeline_eviction_passes_total");
  evicted_vps_ = &cfg_.metrics->counter("viewmap_timeline_evicted_vps_total");
  tombstones_reclaimed_ =
      &cfg_.metrics->counter("viewmap_timeline_tombstones_reclaimed_total");
}

VpTimeline::~VpTimeline() {
  // Withdraw this instance's shards from the shared gauge: a recovered
  // timeline move-assigned over this one keeps its own contribution, so
  // the gauge tracks live shards across database generations.
  if (shards_gauge_ != nullptr)
    shards_gauge_->sub(static_cast<std::int64_t>(shard_count_.load()));
}

void VpTimeline::fresh_stripes() {
  id_stripes_.clear();
  time_stripes_.clear();
  id_stripes_.reserve(kIdStripes);
  time_stripes_.reserve(kTimeStripes);
  for (std::size_t i = 0; i < kIdStripes; ++i)
    id_stripes_.push_back(std::make_unique<IdStripe>());
  for (std::size_t i = 0; i < kTimeStripes; ++i)
    time_stripes_.push_back(std::make_unique<TimeStripe>());
}

VpTimeline::VpTimeline(VpTimeline&& other) noexcept
    : cfg_(other.cfg_),
      id_stripes_(std::move(other.id_stripes_)),
      time_stripes_(std::move(other.time_stripes_)),
      size_(other.size_.load()),
      trusted_count_(other.trusted_count_.load()),
      latest_(other.latest_.load()),
      clock_(other.clock_.load()),
      tombstones_(other.tombstones_.load()),
      version_(other.version_.load()),
      shards_gauge_(other.shards_gauge_),
      eviction_passes_(other.eviction_passes_),
      evicted_vps_(other.evicted_vps_),
      tombstones_reclaimed_(other.tombstones_reclaimed_),
      shard_count_(other.shard_count_.load()) {
  other.fresh_stripes();
  other.size_ = 0;
  other.trusted_count_ = 0;
  other.latest_ = std::numeric_limits<TimeSec>::min();
  other.clock_ = std::numeric_limits<TimeSec>::min();
  other.tombstones_ = 0;
  // Gauge contribution moves with the shards; other now owns none.
  other.shard_count_ = 0;
  other.version_.fetch_add(1, std::memory_order_release);  // contents changed
}

VpTimeline& VpTimeline::operator=(VpTimeline&& other) noexcept {
  if (this == &other) return *this;
  // Withdraw the shards being replaced before adopting other's handles —
  // other's contribution (possibly on the same gauge) transfers as-is.
  if (shards_gauge_ != nullptr)
    shards_gauge_->sub(static_cast<std::int64_t>(shard_count_.load()));
  shards_gauge_ = other.shards_gauge_;
  eviction_passes_ = other.eviction_passes_;
  evicted_vps_ = other.evicted_vps_;
  tombstones_reclaimed_ = other.tombstones_reclaimed_;
  shard_count_ = other.shard_count_.load();
  other.shard_count_ = 0;
  cfg_ = other.cfg_;
  id_stripes_ = std::move(other.id_stripes_);
  time_stripes_ = std::move(other.time_stripes_);
  size_ = other.size_.load();
  trusted_count_ = other.trusted_count_.load();
  latest_ = other.latest_.load();
  clock_ = other.clock_.load();
  tombstones_ = other.tombstones_.load();
  version_.fetch_add(other.version_.load() + 1, std::memory_order_release);
  other.fresh_stripes();
  other.size_ = 0;
  other.trusted_count_ = 0;
  other.latest_ = std::numeric_limits<TimeSec>::min();
  other.clock_ = std::numeric_limits<TimeSec>::min();
  other.tombstones_ = 0;
  other.version_.fetch_add(1, std::memory_order_release);
  return *this;
}

bool VpTimeline::shard_holds(TimeSec unit, const Id16& id) const {
  TimeStripe& ts = time_stripe(unit);
  std::lock_guard lock(ts.mutex);
  auto it = ts.shards.find(unit);
  return it != ts.shards.end() && it->second->profiles.contains(id);
}

bool VpTimeline::insert(vp::ViewProfile profile, bool trusted) {
  const Id16 id = profile.vp_id();
  const TimeSec unit = profile.unit_time();

  // Phase 1: claim the id globally (duplicate screen across all shards).
  IdStripe& is = id_stripe(id);
  {
    std::lock_guard lock(is.mutex);
    auto [it, fresh] = is.ids.try_emplace(id, IdEntry{unit, false});
    if (!fresh) {
      if (!it->second.committed) return false;  // concurrent insert in flight
      if (shard_holds(it->second.unit_time, id)) return false;  // live duplicate
      it->second = IdEntry{unit, false};  // tombstone of an evicted shard
      tombstones_.fetch_sub(1, std::memory_order_relaxed);
    }
  }

  // Phase 2: commit to the minute's shard. Only this id's claimant can be
  // here, so the shard emplace cannot collide. Allocation failure must not
  // strand the phase-1 claim (an uncommitted entry blocks its id forever
  // and compaction keeps it), so unwind rolls back shard state under the
  // time lock, then the claim under the id lock — never both held.
  TimeStripe& ts = time_stripe(unit);
  bool created_shard = false;
  try {
    auto owned = std::make_shared<const vp::ViewProfile>(std::move(profile));
    std::lock_guard lock(ts.mutex);
    auto sit = ts.shards.find(unit);
    bool created = false;
    if (sit == ts.shards.end()) {
      // Built before the map slot exists so a bad_alloc cannot leave a
      // null shard published.
      auto fresh_shard = std::make_shared<TimeShard>(unit, cfg_.grid);
      sit = ts.shards.emplace(unit, std::move(fresh_shard)).first;
      created = true;
    } else if (sit->second->pins.load(std::memory_order_acquire) > 0) {
      // The shard is pinned by at least one snapshot: copy-on-write.
      // Cloning copies maps of refcounted profile pointers (and the
      // grid's raw pointers to those same heap profiles), never profile
      // payloads. Snapshot holders keep the original, bit-identical.
      // The acquire pairs with the release unpin of snapshots already
      // destroyed — observing 0 means their reads are ordered before
      // our in-place writes (see TimeShard::pins).
      sit->second = std::make_shared<TimeShard>(*sit->second);
    }
    TimeShard& shard = *sit->second;
    // Every path from here mutates (or unwinds a mutation of) this shard,
    // and the shard is unpinned — fresh, a COW clone, or observed at pin
    // count 0 — so the cache store cannot race a digest reader.
    shard.invalidate_digest();
    auto [pit, inserted] = shard.profiles.emplace(id, std::move(owned));
    (void)inserted;
    try {
      shard.grid.insert(pit->second.get());
      if (trusted) {
        shard.trusted.insert(id);
        trusted_count_.fetch_add(1, std::memory_order_relaxed);
      }
      // Counters commit under the same shard lock as the profile, so a
      // concurrent eviction sees either both or neither — its fetch_sub
      // can never precede this add and wrap the size_t counters.
      size_.fetch_add(1, std::memory_order_relaxed);
    } catch (...) {
      shard.grid.erase(pit->second.get());  // also clears a partial insert
      shard.profiles.erase(pit);
      if (created) ts.shards.erase(sit);
      throw;
    }
    created_shard = created;
  } catch (...) {
    std::lock_guard lock(is.mutex);
    is.ids.erase(id);
    throw;
  }
  if (created_shard) {
    shard_count_.fetch_add(1, std::memory_order_relaxed);
    if (shards_gauge_ != nullptr) shards_gauge_->add(1);
  }

  // Phase 3: publish — the id entry now survives as a tombstone if its
  // shard is later evicted.
  {
    std::lock_guard lock(is.mutex);
    is.ids[id].committed = true;
  }
  // Release-bump after the commit: a reader observing the old version is
  // guaranteed a snapshot cut no earlier than this write (see version()).
  version_.fetch_add(1, std::memory_order_release);
  TimeSec prev = latest_.load(std::memory_order_relaxed);
  while (unit > prev &&
         !latest_.compare_exchange_weak(prev, unit, std::memory_order_relaxed)) {
  }
  // Trusted uploads arrive authenticated, so their timestamps may drive
  // the retention clock. Anonymous claims never touch it.
  if (trusted) advance_clock(unit);
  return true;
}

std::size_t VpTimeline::adopt_shard(std::shared_ptr<TimeShard> shard) {
  if (shard == nullptr || shard->profiles.empty()) return 0;
  const TimeSec unit = shard->unit_time;

  // ── Phase 1: claim every id, uncommitted — the same in-flight marker
  // insert() uses, so a concurrent insert of a colliding id is rejected
  // rather than racing the publish below. Ids are bucketed per stripe so
  // each stripe mutex is taken once, not once per profile.
  std::array<std::vector<Id16>, kIdStripes> buckets;
  for (const auto& [id, profile] : shard->profiles)
    buckets[Id16Hasher{}(id) % kIdStripes].push_back(id);

  std::vector<Id16> drops;
  /// Exactly the ids this call claimed (fresh entries), per stripe — the
  /// precise set phase 3 commits and a failed publish unwinds. Dropped
  /// ids and foreign in-flight claims are never touched.
  std::array<std::vector<Id16>, kIdStripes> claimed;
  /// Tombstones overwritten by the claim, with their pre-images — the
  /// rollback set if publication fails.
  std::vector<std::pair<Id16, IdEntry>> reclaimed;
  for (std::size_t s = 0; s < kIdStripes; ++s) {
    if (buckets[s].empty()) continue;
    IdStripe& is = *id_stripes_[s];
    std::lock_guard lock(is.mutex);
    for (const Id16& id : buckets[s]) {
      auto [it, fresh] = is.ids.try_emplace(id, IdEntry{unit, false});
      if (fresh) {
        claimed[s].push_back(id);
        continue;
      }
      if (!it->second.committed || shard_holds(it->second.unit_time, id)) {
        drops.push_back(id);  // in-flight or live elsewhere: first wins
        continue;
      }
      reclaimed.emplace_back(id, it->second);  // tombstone of an evicted shard
      it->second = IdEntry{unit, false};
      tombstones_.fetch_sub(1, std::memory_order_relaxed);
    }
  }

  // The caller owns the shard exclusively, so collisions are removed
  // without any lock; the digest cache dies with the first removal (the
  // shard no longer matches the segment it was built from).
  for (const Id16& id : drops) {
    auto pit = shard->profiles.find(id);
    shard->grid.erase(pit->second.get());
    shard->trusted.erase(id);
    shard->profiles.erase(pit);
  }
  if (!drops.empty()) shard->invalidate_digest();

  const std::size_t adopted = shard->profiles.size();
  const std::size_t trusted_added = shard->trusted.size();
  if (adopted == 0) return drops.size();  // everything collided; no claims held

  const auto unwind_claims = [&] {
    for (std::size_t s = 0; s < kIdStripes; ++s) {
      if (claimed[s].empty()) continue;
      IdStripe& is = *id_stripes_[s];
      std::lock_guard lock(is.mutex);
      for (const Id16& id : claimed[s]) is.ids.erase(id);
    }
    for (const auto& [id, entry] : reclaimed) {
      IdStripe& is = id_stripe(id);
      std::lock_guard lock(is.mutex);
      is.ids[id] = entry;
      tombstones_.fetch_add(1, std::memory_order_relaxed);
    }
  };

  // ── Phase 2: publish the whole shard in one critical section. An
  // occupied slot (a live service adopting into a non-empty minute) takes
  // the merge path: survivors move into the existing shard, cloned first
  // when pinned — exactly insert()'s copy-on-write rule.
  bool created_shard = false;
  try {
    TimeStripe& ts = time_stripe(unit);
    std::lock_guard lock(ts.mutex);
    auto sit = ts.shards.find(unit);
    if (sit == ts.shards.end()) {
      ts.shards.emplace(unit, shard);
      created_shard = true;
    } else {
      if (sit->second->pins.load(std::memory_order_acquire) > 0)
        sit->second = std::make_shared<TimeShard>(*sit->second);
      TimeShard& dst = *sit->second;
      dst.invalidate_digest();
      std::size_t merged = 0;
      try {
        for (const auto& [id, profile] : shard->profiles) {
          auto [pit, inserted] = dst.profiles.emplace(id, profile);
          (void)inserted;  // claims guarantee the id is new to dst
          dst.grid.insert(pit->second.get());
          if (shard->trusted.contains(id)) dst.trusted.insert(id);
          ++merged;
        }
      } catch (...) {
        // Unwind the partial merge so dst is exactly its pre-call content.
        std::size_t undone = 0;
        for (const auto& [id, profile] : shard->profiles) {
          if (undone++ == merged) break;
          dst.grid.erase(profile.get());
          dst.trusted.erase(id);
          dst.profiles.erase(id);
        }
        throw;
      }
    }
  } catch (...) {
    unwind_claims();
    throw;
  }
  if (created_shard) {
    shard_count_.fetch_add(1, std::memory_order_relaxed);
    if (shards_gauge_ != nullptr) shards_gauge_->add(1);
  }
  size_.fetch_add(adopted, std::memory_order_relaxed);
  trusted_count_.fetch_add(trusted_added, std::memory_order_relaxed);

  // ── Phase 3: commit the claims; ids now survive eviction as tombstones.
  for (std::size_t s = 0; s < kIdStripes; ++s) {
    if (claimed[s].empty()) continue;
    IdStripe& is = *id_stripes_[s];
    std::lock_guard lock(is.mutex);
    for (const Id16& id : claimed[s]) is.ids[id].committed = true;
  }
  for (const auto& pre : reclaimed) {
    IdStripe& is = id_stripe(pre.first);
    std::lock_guard lock(is.mutex);
    is.ids[pre.first].committed = true;
  }

  version_.fetch_add(1, std::memory_order_release);
  TimeSec prev = latest_.load(std::memory_order_relaxed);
  while (unit > prev &&
         !latest_.compare_exchange_weak(prev, unit, std::memory_order_relaxed)) {
  }
  if (trusted_added > 0) advance_clock(unit);
  return drops.size();
}

void VpTimeline::advance_clock(TimeSec now) noexcept {
  TimeSec prev = clock_.load(std::memory_order_relaxed);
  while (now > prev) {
    if (clock_.compare_exchange_weak(prev, now, std::memory_order_relaxed)) {
      // The clock is part of what snapshots capture (trusted_now()), so a
      // clock change invalidates version-equality reuse like any write.
      version_.fetch_add(1, std::memory_order_release);
      return;
    }
  }
}

VpTimeline::RetentionBounds VpTimeline::retention_bounds(TimeSec now) const noexcept {
  constexpr TimeSec kFloor = std::numeric_limits<TimeSec>::min();
  constexpr TimeSec kCeil = std::numeric_limits<TimeSec>::max();
  const TimeSec window = std::max<TimeSec>(cfg_.retention.window_sec, 0);
  const TimeSec skew = std::max<TimeSec>(cfg_.retention.max_future_skew_sec, 0);
  // Saturating arithmetic: a clock near either extreme must not wrap.
  return {now < kFloor + window ? kFloor : now - window,
          now > kCeil - skew ? kCeil : now + skew};
}

bool VpTimeline::admissible(TimeSec unit_time) const noexcept {
  const TimeSec now = clock_.load(std::memory_order_relaxed);
  if (now == std::numeric_limits<TimeSec>::min()) return true;  // no reference
  const auto [oldest, newest] = retention_bounds(now);
  return unit_time >= oldest && unit_time <= newest;
}

DbSnapshot VpTimeline::snapshot() const {
  auto state = std::make_shared<DbSnapshot::State>();
  // Recorded before the cut: version() == snapshot.version() later means
  // no write completed since before this point, so the snapshot is still
  // an exact image (conservative — see version()).
  state->version = version_.load(std::memory_order_acquire);
  {
    // One consistent cut: hold every time-stripe lock (in index order —
    // the same global order compaction uses) while collecting shard
    // references. O(live shards) pointer copies; the copies are what
    // make every collected shard copy-on-write for later writers.
    std::vector<std::unique_lock<std::mutex>> locks;
    locks.reserve(kTimeStripes);
    for (const auto& stripe : time_stripes_) locks.emplace_back(stripe->mutex);
    std::size_t shard_count = 0;
    for (const auto& stripe : time_stripes_) shard_count += stripe->shards.size();
    state->shards.reserve(shard_count);
    for (const auto& stripe : time_stripes_)
      for (const auto& [unit, shard] : stripe->shards) {
        state->shards.push_back(shard);
        // Pin after the push so ~State's unpin loop always mirrors the
        // collected set, even if a later push_back throws.
        shard->pins.fetch_add(1, std::memory_order_relaxed);
      }
  }
  // The collected shards are immutable from here on (any writer now
  // observes pins > 0 and clones), so ordering and counting can run
  // outside the locks.
  std::sort(state->shards.begin(), state->shards.end(),
            [](const auto& a, const auto& b) { return a->unit_time < b->unit_time; });
  for (const auto& shard : state->shards) {
    state->vp_count += shard->profiles.size();
    state->trusted_count += shard->trusted.size();
  }
  state->clock = trusted_now();
  return DbSnapshot(std::move(state));
}

std::shared_ptr<const vp::ViewProfile> VpTimeline::find(const Id16& vp_id) const {
  TimeSec unit;
  {
    IdStripe& is = id_stripe(vp_id);
    std::lock_guard lock(is.mutex);
    auto it = is.ids.find(vp_id);
    if (it == is.ids.end() || !it->second.committed) return nullptr;
    unit = it->second.unit_time;
  }
  TimeStripe& ts = time_stripe(unit);
  std::lock_guard lock(ts.mutex);
  auto sit = ts.shards.find(unit);
  if (sit == ts.shards.end()) return nullptr;  // evicted → id is a tombstone
  auto pit = sit->second->profiles.find(vp_id);
  return pit == sit->second->profiles.end() ? nullptr : pit->second;
}

bool VpTimeline::is_trusted(const Id16& vp_id) const {
  TimeSec unit;
  {
    IdStripe& is = id_stripe(vp_id);
    std::lock_guard lock(is.mutex);
    auto it = is.ids.find(vp_id);
    if (it == is.ids.end() || !it->second.committed) return false;
    unit = it->second.unit_time;
  }
  TimeStripe& ts = time_stripe(unit);
  std::lock_guard lock(ts.mutex);
  auto sit = ts.shards.find(unit);
  return sit != ts.shards.end() && sit->second->trusted.contains(vp_id);
}

std::size_t VpTimeline::evict_older_than(TimeSec cutoff_unit) {
  return evict_outside(cutoff_unit, std::numeric_limits<TimeSec>::max());
}

std::size_t VpTimeline::evict_outside(TimeSec oldest, TimeSec newest) {
  std::size_t evicted = 0;
  std::size_t trusted_evicted = 0;
  // Shard references are dropped after every lock is released: when the
  // timeline holds the last reference, destruction is the expensive part
  // and nothing else needs to wait for it; when a snapshot still pins a
  // shard, dropping the reference is all eviction does — the memory
  // lives exactly until the last snapshot releases it.
  std::vector<std::shared_ptr<TimeShard>> graveyard;
  for (const auto& stripe : time_stripes_) {
    std::lock_guard lock(stripe->mutex);
    for (auto it = stripe->shards.begin(); it != stripe->shards.end();) {
      if (it->first < oldest || it->first > newest) {
        evicted += it->second->profiles.size();
        trusted_evicted += it->second->trusted.size();
        graveyard.push_back(std::move(it->second));
        it = stripe->shards.erase(it);
      } else {
        ++it;
      }
    }
  }
  if (!graveyard.empty()) version_.fetch_add(1, std::memory_order_release);
  size_.fetch_sub(evicted, std::memory_order_relaxed);
  trusted_count_.fetch_sub(trusted_evicted, std::memory_order_relaxed);
  shard_count_.fetch_sub(graveyard.size(), std::memory_order_relaxed);
  if (eviction_passes_ != nullptr) {
    eviction_passes_->add();
    if (evicted != 0) evicted_vps_->add(evicted);
    if (!graveyard.empty())
      shards_gauge_->sub(static_cast<std::int64_t>(graveyard.size()));
  }
  const std::size_t dead = tombstones_.fetch_add(evicted, std::memory_order_relaxed) + evicted;
  if (dead > size_.load(std::memory_order_relaxed)) compact_tombstones();
  return evicted;
}

std::size_t VpTimeline::enforce_retention() {
  // Measured strictly from the trusted clock: anonymous uploads can claim
  // any unit-time they like without aging out anyone else's shards. The
  // future side of the window reclaims implausible claims that slipped in
  // while the clock was still unset.
  const TimeSec now = clock_.load(std::memory_order_relaxed);
  if (now == std::numeric_limits<TimeSec>::min()) return 0;  // clock unset
  const auto [oldest, newest] = retention_bounds(now);
  return evict_outside(oldest, newest);
}

void VpTimeline::compact_tombstones() {
  // One sweep over the id maps, dropping entries whose shard is gone.
  // Takes every stripe lock, id stripes first — the same global order any
  // single insert/lookup follows, so this cannot deadlock against them.
  std::vector<std::unique_lock<std::mutex>> locks;
  locks.reserve(kIdStripes + kTimeStripes);
  for (const auto& stripe : id_stripes_) locks.emplace_back(stripe->mutex);
  for (const auto& stripe : time_stripes_) locks.emplace_back(stripe->mutex);

  const auto live = [this](TimeSec unit, const Id16& id) {
    auto& shards = time_stripe(unit).shards;
    auto it = shards.find(unit);
    return it != shards.end() && it->second->profiles.contains(id);
  };
  std::size_t reclaimed = 0;
  for (const auto& stripe : id_stripes_)
    reclaimed += std::erase_if(stripe->ids, [&](const auto& entry) {
      return entry.second.committed && !live(entry.second.unit_time, entry.first);
    });
  tombstones_.store(0, std::memory_order_relaxed);
  if (tombstones_reclaimed_ != nullptr && reclaimed != 0)
    tombstones_reclaimed_->add(reclaimed);
}

std::vector<ShardStats> VpTimeline::shard_stats() const {
  std::vector<ShardStats> out;
  for (const auto& stripe : time_stripes_) {
    std::lock_guard lock(stripe->mutex);
    for (const auto& [unit, shard] : stripe->shards) out.push_back(shard->stats());
  }
  std::sort(out.begin(), out.end(),
            [](const ShardStats& a, const ShardStats& b) { return a.unit_time < b.unit_time; });
  return out;
}

}  // namespace viewmap::index
