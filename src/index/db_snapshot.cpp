#include "index/db_snapshot.h"

#include <algorithm>

#include "common/bytes.h"
#include "crypto/sha256.h"

namespace viewmap::index {

namespace {

bool id_less(const vp::ViewProfile* a, const vp::ViewProfile* b) {
  return a->vp_id() < b->vp_id();
}

}  // namespace

void TimeShard::stream_content(
    const std::function<void(std::span<const std::uint8_t>)>& sink) const {
  ByteWriter header(24);
  header.put_i64(unit_time);
  header.put_u64(profiles.size());
  header.put_u64(trusted.size());
  sink(header.bytes());

  // Deterministic order: ascending id, matching DbSnapshot::all() within
  // one shard — the order store/vp_store has always serialized in.
  std::vector<const vp::ViewProfile*> ordered;
  ordered.reserve(profiles.size());
  for (const auto& [id, profile] : profiles) ordered.push_back(profile.get());
  std::sort(ordered.begin(), ordered.end(), id_less);
  for (const auto* profile : ordered) sink(profile->serialize());

  std::vector<Id16> trusted_ordered(trusted.begin(), trusted.end());
  std::sort(trusted_ordered.begin(), trusted_ordered.end());
  for (const Id16& id : trusted_ordered) sink(id.bytes);
}

Hash32 TimeShard::content_digest() const {
  std::lock_guard lock(digest_mutex_);
  if (digest_valid_) return digest_;
  crypto::Sha256 hasher;
  stream_content([&hasher](std::span<const std::uint8_t> chunk) { hasher.update(chunk); });
  digest_ = hasher.finish();
  digest_valid_ = true;
  return digest_;
}

std::uint64_t TimeShard::next_generation() noexcept {
  static std::atomic<std::uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

Hash32 TimeShard::cache_key() const {
  {
    std::lock_guard lock(digest_mutex_);
    if (digest_valid_) return digest_;
  }
  // Digest not known: encode the generation stamp. The tag byte keeps the
  // encoding out of the zero-hash key reserved for "no shard", and a real
  // SHA-256 digest landing on a stamp encoding (22 fixed zero bytes)
  // happens with probability ~2^-176 — never by construction.
  Hash32 key;
  const std::uint64_t g = generation_;
  for (std::size_t i = 0; i < 8; ++i)
    key.bytes[i] = static_cast<std::uint8_t>(g >> (8 * i));
  key.bytes[31] = 0x67;  // 'g' — generation-stamp key, not a digest
  return key;
}

const TimeShard* DbSnapshot::shard_at(TimeSec unit_time) const noexcept {
  // The raw pointer stays valid: state_ owns the shard either way.
  return shard(unit_time).get();
}

std::shared_ptr<const TimeShard> DbSnapshot::shard(TimeSec unit_time) const noexcept {
  if (!state_) return nullptr;
  const auto& shards = state_->shards;
  auto it = std::lower_bound(
      shards.begin(), shards.end(), unit_time,
      [](const std::shared_ptr<const TimeShard>& s, TimeSec t) { return s->unit_time < t; });
  if (it == shards.end() || (*it)->unit_time != unit_time) return nullptr;
  return *it;
}

std::optional<Hash32> DbSnapshot::shard_cache_key(TimeSec unit_time) const {
  const std::shared_ptr<const TimeShard> s = shard(unit_time);
  if (s == nullptr) return std::nullopt;
  return s->cache_key();
}

const vp::ViewProfile* DbSnapshot::find(const Id16& vp_id) const {
  if (!state_) return nullptr;
  const State* s = state_.get();
  std::call_once(s->id_index_once, [s] {
    s->id_index.reserve(s->vp_count);
    // Shard order ⇒ a duplicate id keeps its earliest-unit-time profile,
    // matching the per-shard probe this index replaced.
    for (const auto& shard : s->shards)
      for (const auto& [id, profile] : shard->profiles)
        s->id_index.emplace(id, profile.get());
  });
  const auto it = s->id_index.find(vp_id);
  return it == s->id_index.end() ? nullptr : it->second;
}

bool DbSnapshot::is_trusted(const Id16& vp_id) const noexcept {
  if (!state_) return false;
  for (const auto& shard : state_->shards)
    if (shard->trusted.contains(vp_id)) return true;
  return false;
}

std::vector<const vp::ViewProfile*> DbSnapshot::query(TimeSec unit_time,
                                                      const geo::Rect& area) const {
  std::vector<const vp::ViewProfile*> out;
  const TimeShard* shard = shard_at(unit_time);
  if (shard == nullptr) return out;
  shard->grid.collect_candidates(area, out);
  // The grid yields a cell-granular superset; finish with the exact
  // predicate so results match the reference linear scan bit-for-bit.
  std::erase_if(out, [&](const vp::ViewProfile* p) { return !p->visits(area); });
  std::sort(out.begin(), out.end(), id_less);
  return out;
}

std::vector<const vp::ViewProfile*> DbSnapshot::trusted_at(TimeSec unit_time) const {
  std::vector<const vp::ViewProfile*> out;
  const TimeShard* shard = shard_at(unit_time);
  if (shard == nullptr) return out;
  out.reserve(shard->trusted.size());
  for (const Id16& id : shard->trusted) out.push_back(shard->profiles.at(id).get());
  std::sort(out.begin(), out.end(), id_less);
  return out;
}

std::vector<const vp::ViewProfile*> DbSnapshot::all() const {
  std::vector<const vp::ViewProfile*> out;
  if (!state_) return out;
  out.reserve(state_->vp_count);
  // Shards are unit-time-ordered already; sort within each shard by id.
  for (const auto& shard : state_->shards) {
    const std::size_t first = out.size();
    for (const auto& [id, profile] : shard->profiles) out.push_back(profile.get());
    std::sort(out.begin() + static_cast<std::ptrdiff_t>(first), out.end(), id_less);
  }
  return out;
}

std::vector<Id16> DbSnapshot::trusted_ids() const {
  std::vector<Id16> out;
  if (!state_) return out;
  out.reserve(state_->trusted_count);
  for (const auto& shard : state_->shards) {
    const std::size_t first = out.size();
    for (const Id16& id : shard->trusted) out.push_back(id);
    std::sort(out.begin() + static_cast<std::ptrdiff_t>(first), out.end());
  }
  return out;
}

std::size_t DbSnapshot::size() const noexcept { return state_ ? state_->vp_count : 0; }

std::size_t DbSnapshot::trusted_count() const noexcept {
  return state_ ? state_->trusted_count : 0;
}

TimeSec DbSnapshot::trusted_now() const noexcept {
  return state_ ? state_->clock : std::numeric_limits<TimeSec>::min();
}

std::vector<ShardStats> DbSnapshot::shard_stats() const {
  std::vector<ShardStats> out;
  if (!state_) return out;
  out.reserve(state_->shards.size());
  for (const auto& shard : state_->shards) out.push_back(shard->stats());
  return out;
}

std::size_t DbSnapshot::shard_count() const noexcept {
  return state_ ? state_->shards.size() : 0;
}

std::vector<DbSnapshot::ShardDigest> DbSnapshot::shard_digests() const {
  std::vector<ShardDigest> out;
  if (!state_) return out;
  out.reserve(state_->shards.size());
  for (const auto& shard : state_->shards)
    out.push_back({shard->unit_time, shard->content_digest()});
  return out;
}

std::span<const std::shared_ptr<const TimeShard>> DbSnapshot::shards() const noexcept {
  if (!state_) return {};
  return state_->shards;
}

}  // namespace viewmap::index
