// Concurrent batched ingest for anonymous VP uploads.
//
// The service-side hot path: drain the anonymous channel in batches,
// parse + structurally screen each payload (the §4 upload screen — CPU
// work with no shared state), apply the timeline's timeliness screen
// (claimed unit-time plausible against the trusted clock, see
// VpTimeline::admissible), and commit survivors to the timeline's
// shards under its striped locks. Workers pull payload indices off one
// atomic cursor, so parse/screen/commit of different uploads overlap
// freely; there is no global lock anywhere on the path. Retention is
// enforced once per batch, between batches — the only moment the engine
// guarantees no worker holds shard pointers — and is driven by the
// trusted clock, never by timestamps inside the anonymous batch.
//
// Accept/reject results are identical to the serial path regardless of
// thread count (same screen, same duplicate rule); only the order in
// which duplicates lose is timing-dependent, exactly as it already was
// for a shuffled anonymous channel.
#pragma once

#include <cstdint>
#include <vector>

#include "anonet/channel.h"
#include "index/timeline.h"
#include "vp/view_profile.h"

namespace viewmap::obs {
class MetricsRegistry;  // obs/metrics.h
class Counter;
class Histogram;
}  // namespace viewmap::obs

namespace viewmap::index {

struct IngestConfig {
  /// Worker threads; 0 means std::thread::hardware_concurrency().
  unsigned threads = 0;
  /// Payload batches below this size are ingested inline on the calling
  /// thread — spawning workers for a handful of uploads costs more than
  /// the parse work itself.
  std::size_t min_parallel_batch = 64;
  /// Enforce the timeline's retention window after each batch.
  bool enforce_retention = true;
  /// When set, the engine publishes accept/reject counters and a
  /// per-batch latency histogram here (see IngestMetrics), aggregated
  /// once per batch from the worker-local tallies so the hot loop pays
  /// nothing. Null disables all instrumentation — the toggle
  /// bench_index's obs_overhead scenario measures. Not owned; must
  /// outlive the engine.
  obs::MetricsRegistry* metrics = nullptr;
};

/// The registry metrics the ingest path publishes, resolved once at
/// construction and fed batch-aggregated deltas at the end of each
/// ingest() (never a registry lookup, never a per-item touch). All
/// null when no registry is wired (every use is null-checked).
/// ViewMapService resolves the same set to serve ingest_totals() as a
/// thin view over the registry.
struct IngestMetrics {
  obs::Counter* accepted = nullptr;
  obs::Counter* rejected_malformed = nullptr;
  obs::Counter* rejected_untimely = nullptr;
  obs::Counter* rejected_duplicate = nullptr;
  obs::Counter* evicted = nullptr;
  obs::Counter* batches = nullptr;
  obs::Histogram* batch_us = nullptr;

  /// Registers (idempotently) and resolves the full set.
  [[nodiscard]] static IngestMetrics wire(obs::MetricsRegistry& registry);

  /// Reads the counters back as one stats struct (all zero when
  /// unwired). Each field is internally consistent (sharded-sum of
  /// atomics); the struct as a whole is a relaxed snapshot, exact once
  /// writers quiesce.
  [[nodiscard]] struct IngestStats totals() const;
};

struct IngestStats {
  std::size_t accepted = 0;
  std::size_t rejected_malformed = 0;  ///< failed parse or the upload screen
  std::size_t rejected_untimely = 0;   ///< claimed unit-time implausible vs trusted clock
  std::size_t rejected_duplicate = 0;  ///< id collision with a stored VP
  std::size_t evicted = 0;             ///< VPs aged out by retention
  std::size_t batches = 0;

  IngestStats& operator+=(const IngestStats& o) noexcept;
};

class IngestEngine {
 public:
  IngestEngine(VpTimeline& timeline, vp::VpUploadPolicy policy, IngestConfig cfg = {});

  /// Ingests one batch of serialized VP payloads (all as anonymous,
  /// untrusted uploads). Blocks until the batch is fully committed.
  IngestStats ingest(std::vector<std::vector<std::uint8_t>> payloads);

  /// Drains everything pending on the anonymous channel through ingest().
  IngestStats drain(anonet::AnonymousChannel& channel);

  /// Running totals across all ingest()/drain() calls on this engine.
  [[nodiscard]] const IngestStats& totals() const noexcept { return totals_; }

  [[nodiscard]] unsigned worker_count() const noexcept;

 private:
  VpTimeline& timeline_;
  vp::VpUploadPolicy policy_;
  IngestConfig cfg_;
  IngestStats totals_;
  IngestMetrics metrics_;  ///< resolved once in the ctor; all-null when unwired
};

}  // namespace viewmap::index
