// Uniform-grid spatial index over claimed VP locations (one per shard).
//
// Investigations ask for "every VP with a claimed location inside this
// site rectangle" (§5.2.1). A VP claims 60 positions — one per second of
// its minute — so the grid maps each distinct cell a trajectory touches to
// the VPs that touch it. Queries collect the cells overlapping the site
// and return a *candidate superset*: every VP that visits the area is
// returned, some returned VPs may only pass near it. Callers finish with
// the exact `ViewProfile::visits()` predicate, so index and linear scan
// agree bit-for-bit (property-tested in tests/index_test.cpp).
//
// Cell size defaults to 250 m — one city block in the simulated grid city
// and well under the 400 m DSRC radius, so a typical investigation site
// touches a handful of cells.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>
#include <unordered_map>
#include <vector>

#include "geo/geometry.h"
#include "vp/view_profile.h"

namespace viewmap::index {

struct SpatialGridConfig {
  double cell_m = 250.0;  ///< grid pitch in meters
};

// ── shared uniform-grid cell math ────────────────────────────────────
// Every grid in the system (the per-shard SpatialGrid below, the
// viewmap builder's per-build candidate grid) keys cells by packed
// signed 32-bit coordinates, clamped identically on insert and query so
// a clamped outlier still lands in the cell a clamped query covers.

/// Cell coordinate of a position along one axis, for pitch `cell_m`.
[[nodiscard]] inline std::int32_t grid_cell_coord(double meters, double cell_m) noexcept {
  const double c = std::floor(meters / cell_m);
  if (c <= static_cast<double>(std::numeric_limits<std::int32_t>::min()))
    return std::numeric_limits<std::int32_t>::min();
  if (c >= static_cast<double>(std::numeric_limits<std::int32_t>::max()))
    return std::numeric_limits<std::int32_t>::max();
  return static_cast<std::int32_t>(c);
}

/// Packs a cell coordinate pair into one 64-bit hash key.
[[nodiscard]] constexpr std::uint64_t grid_pack_cell(std::int32_t cx,
                                                     std::int32_t cy) noexcept {
  return static_cast<std::uint64_t>(static_cast<std::uint32_t>(cx)) << 32 |
         static_cast<std::uint32_t>(cy);
}

/// Inverse of grid_pack_cell: (cx, cy) of a packed key.
[[nodiscard]] constexpr std::int32_t grid_cell_x(std::uint64_t key) noexcept {
  return static_cast<std::int32_t>(static_cast<std::uint32_t>(key >> 32));
}
[[nodiscard]] constexpr std::int32_t grid_cell_y(std::uint64_t key) noexcept {
  return static_cast<std::int32_t>(static_cast<std::uint32_t>(key));
}

class SpatialGrid {
 public:
  explicit SpatialGrid(SpatialGridConfig cfg = {}) : cfg_(cfg) {}

  /// Registers every distinct cell of the profile's claimed trajectory.
  /// The pointer must stay valid for the grid's lifetime (shards own their
  /// profiles in a node-based map, so pointers are stable).
  void insert(const vp::ViewProfile* profile);

  /// Removes every reference to the profile (also after a partial,
  /// exception-interrupted insert — the shard commit's rollback path).
  void erase(const vp::ViewProfile* profile) noexcept;

  /// Appends all VPs whose trajectory touches a cell overlapping `area`
  /// (deduplicated; superset of the exact answer). When the rectangle
  /// spans more cells than the grid holds, falls back to scanning the
  /// occupied cells instead of the rectangle.
  void collect_candidates(const geo::Rect& area,
                          std::vector<const vp::ViewProfile*>& out) const;

  [[nodiscard]] std::size_t cell_count() const noexcept { return cells_.size(); }
  /// Total (cell, VP) incidences — gauges trajectory spread vs cell size.
  [[nodiscard]] std::size_t entry_count() const noexcept { return entries_; }

 private:
  using CellKey = std::uint64_t;

  [[nodiscard]] std::int32_t cell_coord(double meters) const noexcept {
    return grid_cell_coord(meters, cfg_.cell_m);
  }
  static CellKey pack(std::int32_t cx, std::int32_t cy) noexcept {
    return grid_pack_cell(cx, cy);
  }

  SpatialGridConfig cfg_;
  std::unordered_map<CellKey, std::vector<const vp::ViewProfile*>> cells_;
  std::size_t entries_ = 0;
};

}  // namespace viewmap::index
