#include "vision/frame.h"

#include <algorithm>
#include <stdexcept>

namespace viewmap::vision {

double PixelRect::iou(const PixelRect& other) const noexcept {
  const int ix = std::max(x, other.x);
  const int iy = std::max(y, other.y);
  const int ix2 = std::min(x + w, other.x + other.w);
  const int iy2 = std::min(y + h, other.y + other.h);
  const int iw = std::max(0, ix2 - ix);
  const int ih = std::max(0, iy2 - iy);
  const double inter = static_cast<double>(iw) * ih;
  const double uni = static_cast<double>(area()) + other.area() - inter;
  return uni > 0 ? inter / uni : 0.0;
}

Frame::Frame(int width, int height) : width_(width), height_(height) {
  if (width <= 0 || height <= 0) throw std::invalid_argument("Frame: bad dimensions");
  data_.assign(3u * static_cast<std::size_t>(width) * static_cast<std::size_t>(height), 0);
}

double Frame::luminance(int x, int y) const noexcept {
  const std::uint8_t* p = pixel(x, y);
  return 0.299 * p[0] + 0.587 * p[1] + 0.114 * p[2];
}

namespace {

void fill_rect(Frame& f, const PixelRect& r, std::uint8_t red, std::uint8_t green,
               std::uint8_t blue) {
  const int x2 = std::min(r.x + r.w, f.width());
  const int y2 = std::min(r.y + r.h, f.height());
  for (int y = std::max(0, r.y); y < y2; ++y) {
    for (int x = std::max(0, r.x); x < x2; ++x) {
      std::uint8_t* p = f.pixel(x, y);
      p[0] = red;
      p[1] = green;
      p[2] = blue;
    }
  }
}

/// Paints one license plate: bright background with dark vertical glyph
/// strokes — the high-frequency horizontal contrast a localizer keys on.
void paint_plate(Frame& f, const PixelRect& r, Rng& rng) {
  fill_rect(f, r, 235, 235, 225);
  const int stroke_w = std::max(2, r.w / 14);
  for (int gx = r.x + stroke_w; gx + stroke_w < r.x + r.w; gx += 2 * stroke_w) {
    const int inset = r.h / 5;
    PixelRect stroke{gx, r.y + inset, stroke_w, r.h - 2 * inset};
    // Slight per-glyph brightness variation, as printed characters have.
    const auto shade = static_cast<std::uint8_t>(20 + rng.uniform_int(0, 30));
    fill_rect(f, stroke, shade, shade, shade);
  }
}

}  // namespace

SyntheticScene make_scene(const SceneConfig& cfg, Rng& rng) {
  SyntheticScene scene{Frame(cfg.width, cfg.height), {}};
  Frame& f = scene.frame;

  // Road scene base: sky gradient on top, asphalt below, speckle noise.
  const int horizon = cfg.height * 2 / 5;
  for (int y = 0; y < cfg.height; ++y) {
    for (int x = 0; x < cfg.width; ++x) {
      std::uint8_t* p = f.pixel(x, y);
      if (y < horizon) {
        p[0] = static_cast<std::uint8_t>(140 + 40 * y / horizon);
        p[1] = static_cast<std::uint8_t>(160 + 30 * y / horizon);
        p[2] = 210;
      } else {
        const auto shade = static_cast<std::uint8_t>(70 + rng.uniform_int(-8, 8));
        p[0] = p[1] = p[2] = shade;
      }
    }
  }

  // Vehicle bodies with plates mounted low and centered. Bodies must not
  // overpaint previously placed vehicles (their plates would vanish).
  std::vector<PixelRect> bodies;
  for (int i = 0; i < cfg.plate_count; ++i) {
    const int pw = static_cast<int>(rng.uniform_int(cfg.plate_width_min, cfg.plate_width_max));
    const int ph = std::max(10, pw / 4);  // plate aspect ≈ 4:1
    const int body_w = pw * 2;
    const int body_h = std::max(3 * ph, pw);

    PixelRect body;
    bool placed = false;
    for (int attempt = 0; attempt < 40 && !placed; ++attempt) {
      body = {static_cast<int>(rng.uniform_int(0, std::max(1, cfg.width - body_w))),
              horizon + static_cast<int>(rng.uniform_int(
                            0, std::max(1, cfg.height - horizon - body_h))),
              body_w, body_h};
      placed = true;
      for (const auto& other : bodies) placed = placed && body.iou(other) == 0.0;
    }
    if (!placed) continue;  // crowded frame: fewer vehicles than asked
    bodies.push_back(body);

    const auto tint = static_cast<std::uint8_t>(rng.uniform_int(90, 180));
    fill_rect(f, body, tint, static_cast<std::uint8_t>(tint / 2),
              static_cast<std::uint8_t>(tint / 3));

    PixelRect plate{body.x + body_w / 2 - pw / 2, body.y + body_h - ph * 2, pw, ph};
    paint_plate(f, plate, rng);
    scene.plates.push_back(plate);
  }
  return scene;
}

}  // namespace viewmap::vision
