// Video frames and the synthetic street-scene generator.
//
// Substitute for the Raspberry Pi camera module + OpenCV of §6.2.1. Frames
// are 8-bit RGB; the generator composes a noisy road scene with
// high-contrast license-plate regions at known ground-truth positions, so
// localization quality is measurable without real imagery.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace viewmap::vision {

struct PixelRect {
  int x = 0;
  int y = 0;
  int w = 0;
  int h = 0;

  [[nodiscard]] int area() const noexcept { return w * h; }
  [[nodiscard]] double aspect() const noexcept {
    return h > 0 ? static_cast<double>(w) / h : 0.0;
  }
  /// Intersection-over-union with another rectangle (detection matching).
  [[nodiscard]] double iou(const PixelRect& other) const noexcept;

  friend bool operator==(const PixelRect&, const PixelRect&) = default;
};

class Frame {
 public:
  Frame(int width, int height);

  [[nodiscard]] int width() const noexcept { return width_; }
  [[nodiscard]] int height() const noexcept { return height_; }

  [[nodiscard]] std::uint8_t* pixel(int x, int y) noexcept {
    return data_.data() + 3 * (static_cast<std::size_t>(y) * static_cast<std::size_t>(width_) + static_cast<std::size_t>(x));
  }
  [[nodiscard]] const std::uint8_t* pixel(int x, int y) const noexcept {
    return data_.data() + 3 * (static_cast<std::size_t>(y) * static_cast<std::size_t>(width_) + static_cast<std::size_t>(x));
  }

  /// Luminance (0..255) of one pixel, ITU-R BT.601 weights.
  [[nodiscard]] double luminance(int x, int y) const noexcept;

  [[nodiscard]] std::vector<std::uint8_t>& data() noexcept { return data_; }
  [[nodiscard]] const std::vector<std::uint8_t>& data() const noexcept { return data_; }

 private:
  int width_;
  int height_;
  std::vector<std::uint8_t> data_;  // RGB8, row-major
};

/// A generated scene and its ground truth.
struct SyntheticScene {
  Frame frame;
  std::vector<PixelRect> plates;  ///< true plate regions
};

struct SceneConfig {
  int width = 640;
  int height = 480;
  int plate_count = 2;
  int plate_width_min = 60;   ///< pixels; Korean plates are wide (≈2:1..5:1)
  int plate_width_max = 140;
};

/// Renders a synthetic dashcam frame: dark asphalt gradient, background
/// clutter, vehicle bodies, and bright plates with dark glyph strokes.
[[nodiscard]] SyntheticScene make_scene(const SceneConfig& cfg, Rng& rng);

}  // namespace viewmap::vision
