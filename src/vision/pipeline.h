// Realtime blurring pipeline with per-stage timing (paper Table 1).
//
// Stages mirror §6.2.1: (i) take the frame from the camera (I/O), (ii)
// localize plate regions and blur them (Blur), (iii) write the blurred
// frame to the video file (I/O). Table 1 reports Blur time, I/O time, and
// the resulting frame rate per platform; this harness measures the same
// stages on the host, with frame copies standing in for camera/file I/O.
#pragma once

#include <cstdint>
#include <vector>

#include "vision/frame.h"
#include "vision/plate_blur.h"

namespace viewmap::vision {

struct StageTimings {
  double capture_ms = 0.0;  ///< camera read (I/O)
  double blur_ms = 0.0;     ///< localize + blur
  double write_ms = 0.0;    ///< file write (I/O)

  [[nodiscard]] double io_ms() const noexcept { return capture_ms + write_ms; }
  [[nodiscard]] double total_ms() const noexcept { return capture_ms + blur_ms + write_ms; }
  /// Sustainable frame rate if stages run back-to-back on one core.
  [[nodiscard]] double fps() const noexcept {
    return total_ms() > 0 ? 1000.0 / total_ms() : 0.0;
  }
};

class BlurPipeline {
 public:
  explicit BlurPipeline(LocalizerConfig cfg = {}) : localizer_(cfg) {}

  /// Processes one frame end to end, returning the blurred frame's plate
  /// detections and accumulating stage timings into `timings`.
  std::vector<PixelRect> process(const Frame& camera_frame, StageTimings& timings);

  /// The most recently written (blurred) frame.
  [[nodiscard]] const Frame* last_output() const noexcept {
    return output_.empty() ? nullptr : &output_.back();
  }

 private:
  PlateLocalizer localizer_;
  std::vector<Frame> output_;  ///< "video file" sink, capped to last frame
};

/// Average stage timings over `frames` synthetic frames.
[[nodiscard]] StageTimings measure_pipeline(int frames, const SceneConfig& scene_cfg,
                                            std::uint64_t seed);

}  // namespace viewmap::vision
