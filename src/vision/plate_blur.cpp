#include "vision/plate_blur.h"

#include <algorithm>
#include <cmath>

namespace viewmap::vision {

namespace {

/// Integral image over horizontal-gradient magnitude of luminance.
class GradientIntegral {
 public:
  explicit GradientIntegral(const Frame& f)
      : w_(f.width()), h_(f.height()), sum_((static_cast<std::size_t>(w_) + 1) * (static_cast<std::size_t>(h_) + 1), 0.0) {
    for (int y = 0; y < h_; ++y) {
      double row = 0.0;
      for (int x = 0; x < w_; ++x) {
        const double g =
            x + 1 < w_ ? std::abs(f.luminance(x + 1, y) - f.luminance(x, y)) : 0.0;
        row += g;
        at(x + 1, y + 1) = at(x + 1, y) + row;
      }
    }
  }

  /// Sum of gradient energy over [x, x+w) × [y, y+h).
  [[nodiscard]] double box(int x, int y, int w, int h) const noexcept {
    return at(x + w, y + h) - at(x, y + h) - at(x + w, y) + at(x, y);
  }

 private:
  double& at(int x, int y) noexcept {
    return sum_[static_cast<std::size_t>(y) * (static_cast<std::size_t>(w_) + 1) + static_cast<std::size_t>(x)];
  }
  [[nodiscard]] const double& at(int x, int y) const noexcept {
    return sum_[static_cast<std::size_t>(y) * (static_cast<std::size_t>(w_) + 1) + static_cast<std::size_t>(x)];
  }

  int w_;
  int h_;
  std::vector<double> sum_;
};

}  // namespace

namespace {

bool rects_touch(const PixelRect& a, const PixelRect& b, int slack) {
  return a.x - slack < b.x + b.w && b.x - slack < a.x + a.w &&
         a.y - slack < b.y + b.h && b.y - slack < a.y + a.h;
}

PixelRect union_rect(const PixelRect& a, const PixelRect& b) {
  const int x0 = std::min(a.x, b.x);
  const int y0 = std::min(a.y, b.y);
  const int x1 = std::max(a.x + a.w, b.x + b.w);
  const int y1 = std::max(a.y + a.h, b.y + b.h);
  return {x0, y0, x1 - x0, y1 - y0};
}

}  // namespace

std::vector<PixelRect> PlateLocalizer::locate(const Frame& frame) const {
  const GradientIntegral grad(frame);

  // Pass 1 — dense probe windows: small plate-fragment-sized windows with
  // high horizontal-gradient energy mark glyph rows.
  const int probe_w = 20;
  const int probe_h = 10;
  const int stride = 5;
  std::vector<PixelRect> hits;
  for (int y = 0; y + probe_h <= frame.height(); y += stride) {
    for (int x = 0; x + probe_w <= frame.width(); x += stride) {
      const double mean_energy =
          grad.box(x, y, probe_w, probe_h) / (static_cast<double>(probe_w) * probe_h);
      if (mean_energy >= cfg_.energy_threshold)
        hits.push_back({x, y, probe_w, probe_h});
    }
  }

  // Pass 2 — cluster adjacent hits into candidate regions (glyph rows are
  // contiguous, so touching probes belong to one plate).
  std::vector<PixelRect> clusters;
  for (const auto& hit : hits) {
    bool merged = false;
    for (auto& cluster : clusters) {
      if (rects_touch(cluster, hit, /*slack=*/stride)) {
        cluster = union_rect(cluster, hit);
        merged = true;
        break;
      }
    }
    if (!merged) clusters.push_back(hit);
  }
  // Merging is order dependent; a second consolidation pass fixes chains.
  for (std::size_t i = 0; i < clusters.size(); ++i) {
    for (std::size_t j = i + 1; j < clusters.size();) {
      if (rects_touch(clusters[i], clusters[j], stride)) {
        clusters[i] = union_rect(clusters[i], clusters[j]);
        clusters.erase(clusters.begin() + static_cast<std::ptrdiff_t>(j));
        j = i + 1;  // restart: the grown cluster may now touch earlier ones
      } else {
        ++j;
      }
    }
  }

  // Pass 3 — the paper's "various parameters (e.g., area, aspect ratio)".
  std::vector<PixelRect> plates;
  for (const auto& c : clusters) {
    if (c.w < cfg_.min_width || c.w > cfg_.max_width) continue;
    const double aspect = c.aspect();
    if (aspect < cfg_.min_aspect || aspect > cfg_.max_aspect) continue;
    plates.push_back(c);
  }
  return plates;
}

void blur_region(Frame& frame, const PixelRect& region, int radius) {
  if (radius <= 0) radius = std::max(3, std::min(region.w, region.h) / 3);
  const int x0 = std::max(0, region.x);
  const int y0 = std::max(0, region.y);
  const int x1 = std::min(frame.width(), region.x + region.w);
  const int y1 = std::min(frame.height(), region.y + region.h);
  if (x0 >= x1 || y0 >= y1) return;

  // Two-pass separable box blur over the region (reads clamp to the
  // region so plate pixels never escape the blur).
  const int rw = x1 - x0;
  const int rh = y1 - y0;
  std::vector<std::uint8_t> tmp(3u * static_cast<std::size_t>(rw) * static_cast<std::size_t>(rh));

  // Horizontal pass → tmp.
  for (int y = y0; y < y1; ++y) {
    for (int x = x0; x < x1; ++x) {
      int acc[3] = {0, 0, 0};
      int count = 0;
      for (int dx = -radius; dx <= radius; ++dx) {
        const int sx = std::clamp(x + dx, x0, x1 - 1);
        const std::uint8_t* p = frame.pixel(sx, y);
        acc[0] += p[0];
        acc[1] += p[1];
        acc[2] += p[2];
        ++count;
      }
      std::uint8_t* t = tmp.data() + 3 * (static_cast<std::size_t>(y - y0) * static_cast<std::size_t>(rw) + static_cast<std::size_t>(x - x0));
      for (int c = 0; c < 3; ++c) t[c] = static_cast<std::uint8_t>(acc[c] / count);
    }
  }
  // Vertical pass → frame.
  for (int y = y0; y < y1; ++y) {
    for (int x = x0; x < x1; ++x) {
      int acc[3] = {0, 0, 0};
      int count = 0;
      for (int dy = -radius; dy <= radius; ++dy) {
        const int sy = std::clamp(y + dy, y0, y1 - 1);
        const std::uint8_t* t = tmp.data() + 3 * (static_cast<std::size_t>(sy - y0) * static_cast<std::size_t>(rw) + static_cast<std::size_t>(x - x0));
        acc[0] += t[0];
        acc[1] += t[1];
        acc[2] += t[2];
        ++count;
      }
      std::uint8_t* p = frame.pixel(x, y);
      for (int c = 0; c < 3; ++c) p[c] = static_cast<std::uint8_t>(acc[c] / count);
    }
  }
}

DetectionQuality evaluate_detections(const std::vector<PixelRect>& detections,
                                     const std::vector<PixelRect>& truths,
                                     double min_iou) {
  DetectionQuality q;
  q.truths = truths.size();
  q.detections = detections.size();
  for (const auto& t : truths) {
    for (const auto& d : detections) {
      if (d.iou(t) >= min_iou) {
        ++q.covered;
        break;
      }
    }
  }
  return q;
}

}  // namespace viewmap::vision
