#include "vision/threaded_pipeline.h"

#include <chrono>

namespace viewmap::vision {

ThreadedBlurPipeline::ThreadedBlurPipeline(LocalizerConfig cfg)
    : localizer_(cfg), worker_([this] { worker_loop(); }) {}

ThreadedBlurPipeline::~ThreadedBlurPipeline() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_submit_.notify_all();
  worker_.join();
}

void ThreadedBlurPipeline::submit(const Frame& camera_frame) {
  std::unique_lock lock(mutex_);
  cv_done_.wait(lock, [this] { return queue_.size() < kQueueDepth; });
  queue_.push(camera_frame);  // capture I/O: copy out of the camera buffer
  cv_submit_.notify_one();
}

std::size_t ThreadedBlurPipeline::drain() {
  std::unique_lock lock(mutex_);
  cv_done_.wait(lock, [this] { return queue_.empty(); });
  return processed_;
}

void ThreadedBlurPipeline::worker_loop() {
  for (;;) {
    Frame frame(1, 1);
    {
      std::unique_lock lock(mutex_);
      cv_submit_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop requested and nothing pending
      frame = std::move(queue_.front());
      queue_.pop();
    }
    for (const auto& region : localizer_.locate(frame)) blur_region(frame, region);
    // Write I/O would go here; the blurred frame is dropped (sink).
    {
      std::lock_guard lock(mutex_);
      ++processed_;
    }
    cv_done_.notify_all();
  }
}

PipelineComparison compare_pipelines(int frames, const SceneConfig& scene_cfg,
                                     std::uint64_t seed) {
  using Clock = std::chrono::steady_clock;
  PipelineComparison result;

  // Pre-render scenes so generation cost stays out of both measurements.
  Rng rng(seed);
  std::vector<Frame> scenes;
  scenes.reserve(static_cast<std::size_t>(frames));
  for (int i = 0; i < frames; ++i) scenes.push_back(make_scene(scene_cfg, rng).frame);

  {
    BlurPipeline sequential;
    StageTimings t;
    const auto t0 = Clock::now();
    for (const auto& frame : scenes) (void)sequential.process(frame, t);
    const double sec = std::chrono::duration<double>(Clock::now() - t0).count();
    result.sequential_fps = frames / sec;
  }
  {
    ThreadedBlurPipeline threaded;
    const auto t0 = Clock::now();
    for (const auto& frame : scenes) threaded.submit(frame);
    (void)threaded.drain();
    const double sec = std::chrono::duration<double>(Clock::now() - t0).count();
    result.threaded_fps = frames / sec;
  }
  return result;
}

}  // namespace viewmap::vision
