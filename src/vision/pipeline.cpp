#include "vision/pipeline.h"

#include <chrono>

namespace viewmap::vision {

namespace {
using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start).count();
}
}  // namespace

std::vector<PixelRect> BlurPipeline::process(const Frame& camera_frame,
                                             StageTimings& timings) {
  // Stage 1 — capture I/O: copy out of the "camera buffer".
  auto t0 = Clock::now();
  Frame working = camera_frame;
  timings.capture_ms += ms_since(t0);

  // Stage 2 — localize + blur.
  t0 = Clock::now();
  auto plates = localizer_.locate(working);
  for (const auto& r : plates) blur_region(working, r);
  timings.blur_ms += ms_since(t0);

  // Stage 3 — write I/O: copy into the "video file".
  t0 = Clock::now();
  output_.clear();
  output_.push_back(std::move(working));
  timings.write_ms += ms_since(t0);

  return plates;
}

StageTimings measure_pipeline(int frames, const SceneConfig& scene_cfg,
                              std::uint64_t seed) {
  Rng rng(seed);
  BlurPipeline pipeline;
  StageTimings total;
  for (int i = 0; i < frames; ++i) {
    auto scene = make_scene(scene_cfg, rng);
    (void)pipeline.process(scene.frame, total);
  }
  if (frames > 0) {
    total.capture_ms /= frames;
    total.blur_ms /= frames;
    total.write_ms /= frames;
  }
  return total;
}

}  // namespace viewmap::vision
