// Pipelined (two-thread) realtime blurring.
//
// §6.2.1 notes the prototype "leaves more room for improvement, such as
// … multi-threading for blur and I/O operations". This is that
// improvement: a capture/write I/O thread and a localize+blur worker
// overlap, so sustained throughput approaches 1/max(stage) instead of
// 1/sum(stages). The paper's Pi-class numbers (blur ≈ I/O ≈ 50 ms) would
// roughly double their frame rate under this scheme.
#pragma once

#include <condition_variable>
#include <mutex>
#include <optional>
#include <queue>
#include <thread>

#include "vision/pipeline.h"

namespace viewmap::vision {

class ThreadedBlurPipeline {
 public:
  explicit ThreadedBlurPipeline(LocalizerConfig cfg = {});
  ~ThreadedBlurPipeline();
  ThreadedBlurPipeline(const ThreadedBlurPipeline&) = delete;
  ThreadedBlurPipeline& operator=(const ThreadedBlurPipeline&) = delete;

  /// Enqueues one camera frame (the capture I/O happens on the caller's
  /// thread, as it would on-device). Blocks when the worker is more than
  /// `kQueueDepth` frames behind — a realtime recorder must not buffer
  /// unboundedly, and unblurred frames must never accumulate.
  void submit(const Frame& camera_frame);

  /// Waits for all submitted frames to be blurred and written; returns
  /// the number of frames processed since construction.
  std::size_t drain();

 private:
  static constexpr std::size_t kQueueDepth = 3;

  void worker_loop();

  PlateLocalizer localizer_;
  std::mutex mutex_;
  std::condition_variable cv_submit_;
  std::condition_variable cv_done_;
  std::queue<Frame> queue_;
  std::size_t processed_ = 0;
  bool stop_ = false;
  std::thread worker_;
};

/// Measures sustained fps of the threaded pipeline vs the sequential one
/// over `frames` synthetic frames. Returns {sequential_fps, threaded_fps}.
struct PipelineComparison {
  double sequential_fps = 0.0;
  double threaded_fps = 0.0;
};
[[nodiscard]] PipelineComparison compare_pipelines(int frames,
                                                   const SceneConfig& scene_cfg,
                                                   std::uint64_t seed);

}  // namespace viewmap::vision
