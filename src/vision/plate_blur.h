// License plate localization and blurring (paper §6.2.1).
//
// The paper's pipeline localizes plate regions "via various parameters
// (e.g., area, aspect ratio)" — the localization stage of standard ALPR —
// and box-blurs them in the recording path, so no unblurred frame is ever
// written (realtime anonymization also forecloses posterior fabrication).
//
// Localizer: horizontal-gradient energy (plates are dense vertical-stroke
// glyph rows) box-summed with an integral image; candidate windows are
// thresholded, greedily non-max-suppressed, then filtered by area and
// aspect ratio.
#pragma once

#include <vector>

#include "vision/frame.h"

namespace viewmap::vision {

struct LocalizerConfig {
  int min_width = 40;       ///< candidate window bounds (pixels)
  int max_width = 170;
  double min_aspect = 2.0;  ///< plate width/height range
  double max_aspect = 6.5;
  double energy_threshold = 18.0;  ///< mean |∂x luminance| inside the window
  double nms_iou = 0.2;     ///< suppress overlapping candidates above this
};

class PlateLocalizer {
 public:
  explicit PlateLocalizer(LocalizerConfig cfg = {}) : cfg_(cfg) {}

  [[nodiscard]] std::vector<PixelRect> locate(const Frame& frame) const;

 private:
  LocalizerConfig cfg_;
};

/// In-place box blur of one region, edge-clamped. `radius` ≤ 0 picks an
/// adaptive kernel (≈ region height / 3) large enough to merge adjacent
/// glyph strokes — a fixed small kernel merely softens characters, which
/// is not anonymization.
void blur_region(Frame& frame, const PixelRect& region, int radius = 0);

/// Detection quality against ground truth: a truth plate counts as covered
/// when some detection overlaps it with IoU ≥ `min_iou`.
struct DetectionQuality {
  std::size_t truths = 0;
  std::size_t covered = 0;
  std::size_t detections = 0;

  [[nodiscard]] double recall() const noexcept {
    return truths ? static_cast<double>(covered) / static_cast<double>(truths) : 1.0;
  }
};

[[nodiscard]] DetectionQuality evaluate_detections(
    const std::vector<PixelRect>& detections, const std::vector<PixelRect>& truths,
    double min_iou = 0.3);

}  // namespace viewmap::vision
