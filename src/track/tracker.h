// The adversarial tracker of §6.2.2.
//
// Threat model: the system itself turns tracker, linking anonymized VPs in
// its database into per-vehicle paths by time-series analysis. Following
// [23, 24, 25], the strong adversary starts with perfect knowledge of the
// target's first VP (p(u,0) = 1). At each minute boundary it predicts the
// target's next start position from the last sample of each currently
// believed VP and spreads belief over candidate VPs by a Gaussian
// distance-deviation model, normalized so Σ_i p(i,t) = 1.
//
// Metrics (paper definitions):
//   * location entropy  H_t = −Σ_i p(i,t)·log2 p(i,t)  — uncertainty;
//   * tracking success  S_t = p(u,t) of the true VP — unknown to the
//     tracker, evaluated against simulator ground truth.
//
// Guard VPs start exactly where a targeted vehicle's actual VP starts, so
// every minute multiplies plausible continuations — that divergence is the
// paper's "cooperative privacy".
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "geo/geometry.h"

namespace viewmap::track {

/// Minimal per-VP record the tracker operates on (what an honest-but-
/// curious system can extract from any VP in its database).
struct VpObservation {
  Id16 vp_id;
  TimeSec unit_time = 0;
  geo::Vec2 start;
  geo::Vec2 end;
};

struct TrackerConfig {
  /// Stddev of the distance-deviation belief model (meters). The paper
  /// builds on the Hoh–Gruteser uncertainty-aware model [23]; recording
  /// is continuous, so honest continuations start within ~1 s of travel
  /// from the previous VP's end.
  double sigma_m = 40.0;
  /// Candidates farther than this from the prediction carry no belief.
  double gate_m = 250.0;
};

struct TrackTrace {
  std::vector<double> entropy_bits;    ///< H_t per minute (t ≥ 1)
  std::vector<double> success_ratio;   ///< S_t per minute (t ≥ 1)
};

class Tracker {
 public:
  explicit Tracker(TrackerConfig cfg = {}) : cfg_(cfg) {}

  /// Follows one target through `per_minute[t]` (observations grouped by
  /// consecutive minutes). Belief starts as certainty on
  /// `per_minute[0][start_index]`. `truth_chain[t]` is the target's actual
  /// VP id at minute t (ground truth, for S_t only).
  [[nodiscard]] TrackTrace follow(
      const std::vector<std::vector<VpObservation>>& per_minute,
      std::size_t start_index, const std::vector<Id16>& truth_chain) const;

 private:
  TrackerConfig cfg_;
};

}  // namespace viewmap::track
