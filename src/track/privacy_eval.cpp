#include "track/privacy_eval.h"

#include <algorithm>
#include <map>
#include <stdexcept>
#include <unordered_map>

namespace viewmap::track {

std::vector<std::vector<VpObservation>> observations_by_minute(
    const sim::SimResult& result, bool include_guards) {
  std::map<TimeSec, std::vector<VpObservation>> by_minute;
  for (const auto& rec : result.profiles) {
    if (rec.guard && !include_guards) continue;
    VpObservation obs;
    obs.vp_id = rec.profile.vp_id();
    obs.unit_time = rec.profile.unit_time();
    obs.start = rec.profile.first_location();
    obs.end = rec.profile.last_location();
    by_minute[obs.unit_time].push_back(obs);
  }
  std::vector<std::vector<VpObservation>> out;
  out.reserve(by_minute.size());
  for (auto& [unit, vec] : by_minute) out.push_back(std::move(vec));
  return out;
}

std::vector<std::vector<VpObservation>> observations_by_minute(
    const index::DbSnapshot& snap) {
  // The database cannot tell guards from actual VPs (§5.2.1 fn.4), so
  // there is no include_guards toggle here: the system-as-tracker always
  // sees both. The snapshot's shards are already one-per-minute and
  // unit-time-ordered — one linear pass, no re-bucketing.
  std::vector<std::vector<VpObservation>> out;
  out.reserve(snap.shard_count());
  for (const auto& shard : snap.shards()) {
    std::vector<VpObservation> minute;
    minute.reserve(shard->profiles.size());
    for (const auto& [id, profile] : shard->profiles) {
      VpObservation obs;
      obs.vp_id = id;
      obs.unit_time = profile->unit_time();
      obs.start = profile->first_location();
      obs.end = profile->last_location();
      minute.push_back(obs);
    }
    // Id-ordered within the minute: deterministic across runs (hash-map
    // iteration order is not).
    std::sort(minute.begin(), minute.end(),
              [](const VpObservation& a, const VpObservation& b) { return a.vp_id < b.vp_id; });
    out.push_back(std::move(minute));
  }
  return out;
}

PrivacyCurves evaluate_privacy(const sim::SimResult& result, bool include_guards,
                               const TrackerConfig& cfg) {
  const auto per_minute = observations_by_minute(result, include_guards);
  if (per_minute.size() < 2)
    throw std::invalid_argument("evaluate_privacy: need at least two minutes");

  // Ground-truth chain per vehicle: its actual (non-guard) VP ids, in
  // minute order.
  std::unordered_map<VehicleId, std::vector<Id16>> chains;
  {
    std::map<std::pair<TimeSec, VehicleId>, Id16> actual;
    for (const auto& rec : result.profiles)
      if (!rec.guard)
        actual[{rec.profile.unit_time(), rec.creator}] = rec.profile.vp_id();
    for (const auto& [key, id] : actual) chains[key.second].push_back(id);
  }

  const std::size_t minutes = per_minute.size();
  std::vector<double> entropy_sum(minutes - 1, 0.0);
  std::vector<double> success_sum(minutes - 1, 0.0);
  std::size_t targets = 0;

  Tracker tracker(cfg);
  for (const auto& [vehicle, chain] : chains) {
    if (chain.size() != minutes) continue;  // incomplete trace
    // Locate the target's first VP in minute 0.
    const auto& first = per_minute.front();
    auto it = std::find_if(first.begin(), first.end(), [&](const VpObservation& o) {
      return o.vp_id == chain.front();
    });
    if (it == first.end()) continue;
    const auto start_index = static_cast<std::size_t>(it - first.begin());

    const TrackTrace trace = tracker.follow(per_minute, start_index, chain);
    for (std::size_t t = 0; t < trace.entropy_bits.size(); ++t) {
      entropy_sum[t] += trace.entropy_bits[t];
      success_sum[t] += trace.success_ratio[t];
    }
    ++targets;
  }
  if (targets == 0) throw std::runtime_error("evaluate_privacy: no complete targets");

  PrivacyCurves curves;
  for (std::size_t t = 0; t < minutes - 1; ++t) {
    curves.minutes.push_back(static_cast<double>(t + 1));
    curves.mean_entropy.push_back(entropy_sum[t] / static_cast<double>(targets));
    curves.mean_success.push_back(success_sum[t] / static_cast<double>(targets));
  }
  return curves;
}

}  // namespace viewmap::track
