// Privacy evaluation harness: simulator output → Fig. 10/11/22a/22b curves.
//
// Converts a SimResult's VP set (actual + guard VPs — exactly what the
// system's database contains) into tracker observations, runs the §6.2.2
// adversary against every vehicle, and averages entropy / success over
// targets per minute of tracking.
#pragma once

#include <vector>

#include "index/db_snapshot.h"
#include "sim/simulator.h"
#include "track/tracker.h"

namespace viewmap::track {

struct PrivacyCurves {
  std::vector<double> minutes;        ///< x-axis: 1..T-1
  std::vector<double> mean_entropy;   ///< bits
  std::vector<double> mean_success;   ///< tracking success ratio
};

/// Groups profiles by minute into tracker observations.
/// `include_guards` toggles the no-guard baseline of Figs. 10/11/22.
[[nodiscard]] std::vector<std::vector<VpObservation>> observations_by_minute(
    const sim::SimResult& result, bool include_guards);

/// The honest-but-curious system as adversary (§6.2.2 threat model): the
/// same grouping extracted from a pinned snapshot of the system's own VP
/// database — exactly what the service can see, with guards and actual
/// VPs indistinguishable by construction. Runs entirely against the
/// immutable snapshot, concurrent with live ingest.
[[nodiscard]] std::vector<std::vector<VpObservation>> observations_by_minute(
    const index::DbSnapshot& snap);

/// Runs the tracker against every vehicle and averages the curves.
[[nodiscard]] PrivacyCurves evaluate_privacy(const sim::SimResult& result,
                                             bool include_guards,
                                             const TrackerConfig& cfg = {});

}  // namespace viewmap::track
