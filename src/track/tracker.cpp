#include "track/tracker.h"

#include <cmath>
#include <stdexcept>

#include "common/stats.h"

namespace viewmap::track {

TrackTrace Tracker::follow(const std::vector<std::vector<VpObservation>>& per_minute,
                           std::size_t start_index,
                           const std::vector<Id16>& truth_chain) const {
  if (per_minute.empty()) return {};
  if (truth_chain.size() != per_minute.size())
    throw std::invalid_argument("Tracker: truth chain length mismatch");
  if (start_index >= per_minute.front().size())
    throw std::invalid_argument("Tracker: bad start index");

  TrackTrace trace;
  // Belief over minute-0 VPs: certainty on the start (strong adversary).
  std::vector<double> belief(per_minute.front().size(), 0.0);
  belief[start_index] = 1.0;

  const double inv_two_sigma2 = 1.0 / (2.0 * cfg_.sigma_m * cfg_.sigma_m);
  const double gate2 = cfg_.gate_m * cfg_.gate_m;

  for (std::size_t t = 1; t < per_minute.size(); ++t) {
    const auto& prev = per_minute[t - 1];
    const auto& cur = per_minute[t];
    std::vector<double> next(cur.size(), 0.0);

    for (std::size_t j = 0; j < prev.size(); ++j) {
      if (belief[j] <= 0.0) continue;
      // Prediction: the next VP starts where the believed VP ended
      // (recording is continuous, so the gap is ≤ 1 s of travel).
      const geo::Vec2 predicted = prev[j].end;
      double weight_sum = 0.0;
      // Two passes: accumulate unnormalized transition weights, then
      // distribute this parent's belief proportionally.
      std::vector<std::pair<std::size_t, double>> weights;
      for (std::size_t i = 0; i < cur.size(); ++i) {
        const double d2 = (cur[i].start - predicted).norm2();
        if (d2 > gate2) continue;
        const double w = std::exp(-d2 * inv_two_sigma2);
        weights.emplace_back(i, w);
        weight_sum += w;
      }
      if (weight_sum <= 0.0) continue;  // belief dies with this parent
      for (const auto& [i, w] : weights) next[i] += belief[j] * w / weight_sum;
    }

    // Renormalize (dead parents lose mass; the tracker conditions on the
    // target still being somewhere in the dataset).
    double total = 0.0;
    for (double p : next) total += p;
    if (total > 0.0)
      for (double& p : next) p /= total;

    trace.entropy_bits.push_back(entropy_bits(next));

    double success = 0.0;
    for (std::size_t i = 0; i < cur.size(); ++i)
      if (cur[i].vp_id == truth_chain[t]) {
        success = next[i];
        break;
      }
    trace.success_ratio.push_back(success);

    belief = std::move(next);
  }
  return trace;
}

}  // namespace viewmap::track
