#include "vp/guard.h"

#include <array>
#include <cmath>

namespace viewmap::vp {

double uncovered_probability(double alpha, int neighbors, int minutes) {
  const double m = neighbors;
  // Chance one particular neighbor choice misses a given vehicle: each of
  // the m neighbors independently fails to pick it with prob (1-α)^m …
  const double miss_all = std::pow(1.0 - std::pow(1.0 - alpha, m), m);
  const double p_minute = 1.0 - miss_all;
  return std::pow(p_minute, minutes);
}

std::size_t guard_count(double alpha, std::size_t neighbors) {
  if (neighbors == 0) return 0;
  return static_cast<std::size_t>(
      std::ceil(alpha * static_cast<double>(neighbors)));
}

std::optional<ViewProfile> GuardVpFactory::make_guard(
    const NeighborRecord& seed_neighbor, geo::Vec2 own_end, TimeSec minute_start,
    Rng& rng, std::size_t camouflage_neighbors) const {
  const geo::Vec2 start = seed_neighbor.advertised_start();
  auto route = router_->route_between(start, own_end);
  if (!route) return std::nullopt;

  // Fabricated identity: random R (no video ⇒ no secret worth keeping).
  Id16 guard_id;
  rng.fill_bytes(guard_id.bytes);

  // Spread 60 VDs along the route with variable spacing ("we arrange their
  // VDs variably spaced within the predefined margin", §5.1.2). We draw 60
  // per-second step weights with ±speed_jitter and normalize so the
  // trajectory spans the whole route in exactly one minute.
  std::array<double, kDigestsPerProfile> weights;
  double total = 0.0;
  for (auto& w : weights) {
    w = rng.uniform(1.0 - cfg_.speed_jitter, 1.0 + cfg_.speed_jitter);
    total += w;
  }

  const double length = route->length_m;
  std::vector<dsrc::ViewDigest> digests;
  digests.reserve(kDigestsPerProfile);
  double progressed = 0.0;
  std::uint64_t fake_size = 0;
  const std::uint64_t bytes_per_sec = 850'000 + rng.next_u64() % 100'000;
  for (int i = 1; i <= kDigestsPerProfile; ++i) {
    progressed += weights[static_cast<std::size_t>(i - 1)] / total * length;
    const geo::Vec2 p = geo::point_along_polyline(route->points, progressed);
    fake_size += bytes_per_sec;

    dsrc::ViewDigest vd;
    vd.time = minute_start + i;
    vd.loc_x = static_cast<float>(p.x);
    vd.loc_y = static_cast<float>(p.y);
    vd.file_size = fake_size;
    vd.initial_x = static_cast<float>(start.x);
    vd.initial_y = static_cast<float>(start.y);
    vd.vp_id = guard_id;
    vd.second = static_cast<std::uint16_t>(i);
    rng.fill_bytes(vd.hash.bytes);  // no real video behind a guard VP
    digests.push_back(vd);
  }
  // Pin the first digest to the exact advertised start so the guard's
  // trajectory origin matches what neighbors of the seed VP observed.
  digests.front().loc_x = static_cast<float>(start.x);
  digests.front().loc_y = static_cast<float>(start.y);

  // Camouflage: a real VP's filter holds ~2 entries per neighbor; an
  // (almost) empty filter would fingerprint guards in the database.
  bloom::BloomFilter filter(kBloomBits, kBloomHashes);
  std::vector<std::uint8_t> fake_entry(dsrc::kViewDigestWireSize);
  for (std::size_t i = 0; i < 2 * camouflage_neighbors; ++i) {
    rng.fill_bytes(fake_entry);
    filter.insert(fake_entry);
  }
  return ViewProfile(std::move(digests), std::move(filter));
}

std::vector<ViewProfile> GuardVpFactory::make_guards_for(
    ViewProfile& actual, std::span<const NeighborRecord> neighbors,
    TimeSec minute_start, Rng& rng) const {
  std::vector<ViewProfile> guards;
  const std::size_t want = guard_count(cfg_.alpha, neighbors.size());
  if (want == 0) return guards;

  const geo::Vec2 own_end = actual.last_location();
  for (std::size_t idx : rng.sample_indices(neighbors.size(), want)) {
    // Pad the guard's filter to this vehicle's own neighborhood load
    // (minus the mutual link added below), so fill ratios blend in.
    const std::size_t camouflage = neighbors.size() > 0 ? neighbors.size() - 1 : 0;
    auto guard = make_guard(neighbors[idx], own_end, minute_start, rng, camouflage);
    if (!guard) continue;
    link_mutually(actual, *guard);
    guards.push_back(std::move(*guard));
  }
  return guards;
}

}  // namespace viewmap::vp
