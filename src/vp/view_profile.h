// View Profile (VP): the anonymized stand-in for a 1-minute video
// (paper §4, §5.1.1).
//
// A VP compiles (i) the minute's 60 view digests — time/location trajectory
// plus the cascaded video fingerprint — and (ii) a Bloom filter summarizing
// the neighbor VDs heard over DSRC. VPs, not users, are the entities the
// system searches, verifies, and rewards.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "bloom/bloom_filter.h"
#include "common/rng.h"
#include "common/types.h"
#include "dsrc/view_digest.h"
#include "geo/geometry.h"

namespace viewmap::vp {

/// Deployment Bloom configuration (§6.3.2): m = 2048 bits keeps the
/// two-way false-linkage rate ≈0.1% at 300 neighbors. k is fixed at the
/// near-optimal 3 for ≤250 neighbors × 2 VDs — both sides of a membership
/// check must agree on k, so it is a protocol constant, not per-VP.
inline constexpr std::size_t kBloomBits = 2048;
inline constexpr int kBloomHashes = 3;
inline constexpr std::size_t kBloomBytes = kBloomBits / 8;

/// §6.3.2 footnote 10: cap on neighbors accepted per vehicle per minute
/// (mitigates Bloom poisoning by VD floods).
inline constexpr std::size_t kMaxNeighbors = 250;

/// Serialized VP payload: 60 VDs + Bloom bit-array.
inline constexpr std::size_t kVpWireSize =
    static_cast<std::size_t>(kDigestsPerProfile) * dsrc::kViewDigestWireSize + kBloomBytes;

/// §6.1 storage accounting: payload + the owner's 8-byte secret number.
inline constexpr std::size_t kVpStorageBytes = kVpWireSize + 8;
static_assert(kVpStorageBytes == 4584, "must match paper §6.1");

/// Precomputed Bloom probe positions for every VD of one profile under
/// the protocol constants (kBloomBits, kBloomHashes). Positions fit 16
/// bits (kBloomBits = 2048), so the whole table is 360 bytes.
static_assert(kBloomBits <= 65536,
              "BloomProbes stores positions as uint16; widen Probe before "
              "growing the protocol filter");
struct BloomProbes {
  using Probe = std::array<std::uint16_t, static_cast<std::size_t>(kBloomHashes)>;
  std::array<Probe, static_cast<std::size_t>(kDigestsPerProfile)> at{};
};

class ViewProfile {
 public:
  /// Constructs from exactly 60 digests sharing one VP identifier.
  /// Throws std::invalid_argument on malformed input.
  ViewProfile(std::vector<dsrc::ViewDigest> digests, bloom::BloomFilter neighbor_bloom);

  // Value semantics (the probe cache is derived state: copies drop it,
  // moves carry it, equality ignores it).
  ViewProfile(const ViewProfile& other);
  ViewProfile(ViewProfile&& other) noexcept;
  ViewProfile& operator=(const ViewProfile& other);
  ViewProfile& operator=(ViewProfile&& other) noexcept;
  ~ViewProfile();

  [[nodiscard]] const Id16& vp_id() const noexcept { return digests_.front().vp_id; }
  [[nodiscard]] std::span<const dsrc::ViewDigest> digests() const noexcept {
    return digests_;
  }
  [[nodiscard]] const bloom::BloomFilter& neighbor_bloom() const noexcept {
    return bloom_;
  }

  [[nodiscard]] TimeSec start_time() const noexcept { return digests_.front().time; }
  [[nodiscard]] TimeSec end_time() const noexcept { return digests_.back().time; }
  /// Minute this VP covers (viewmaps are built per unit-time, §5.2.1).
  [[nodiscard]] TimeSec unit_time() const noexcept { return unit_start(start_time()); }

  [[nodiscard]] geo::Vec2 location_at(int second_index) const;
  [[nodiscard]] geo::Vec2 first_location() const { return location_at(0); }
  [[nodiscard]] geo::Vec2 last_location() const {
    return location_at(kDigestsPerProfile - 1);
  }

  /// Does any of the 60 claimed positions fall inside `area`?
  [[nodiscard]] bool visits(const geo::Rect& area) const noexcept;

  /// Were this VP and `other` ever within `radius_m` at time-aligned
  /// seconds? (The §5.2.1 location-proximity precondition for viewlinks —
  /// precludes long-distance edges.)
  [[nodiscard]] bool ever_within(const ViewProfile& other, double radius_m) const noexcept;

  /// Does this VP's Bloom filter claim to have heard any of `other`'s VDs?
  /// One direction of the §5.2.1 two-way membership test.
  [[nodiscard]] bool heard(const ViewProfile& other) const;

  /// The probe positions of this profile's own 60 VDs — what a
  /// membership check against ANY other profile's filter tests (the
  /// protocol fixes (bits, k), so positions transfer between filters).
  /// Digests are immutable after construction, so the table is computed
  /// once — lazily, on first use — and memoized; the 60 SHA-256 hashes
  /// are never redone however many viewmaps the profile lands in.
  /// Thread-safe: concurrent first calls race benignly (one result is
  /// published, the rest discarded).
  [[nodiscard]] const BloomProbes& bloom_probes() const;

  /// Records a neighbor VD into this profile's Bloom filter. Only the
  /// owning vehicle calls this, and only at generation time.
  void add_neighbor_digest(const dsrc::ViewDigest& vd);

  [[nodiscard]] std::vector<std::uint8_t> serialize() const;
  static ViewProfile parse(std::span<const std::uint8_t> data);

  friend bool operator==(const ViewProfile& a, const ViewProfile& b) {
    return a.digests_ == b.digests_ && a.bloom_ == b.bloom_;
  }

 private:
  std::vector<dsrc::ViewDigest> digests_;  // exactly kDigestsPerProfile
  bloom::BloomFilter bloom_;
  /// Lazily published probe table (see bloom_probes()); owned.
  mutable std::atomic<const BloomProbes*> probes_{nullptr};
};

/// Structural well-formedness rules the system applies on upload, before
/// a VP may enter the database: 60 digests, one id, contiguous seconds,
/// consecutive locations within a plausible per-second travel distance.
struct VpUploadPolicy {
  double max_speed_mps = 70.0;  ///< ~250 km/h — generous physical bound

  [[nodiscard]] bool well_formed(const ViewProfile& vp) const noexcept;
};

/// The owner-retained secret behind a VP: Q_u with R_u = H(Q_u) (§5.1.1).
/// Q never leaves the vehicle until the reward claim (§5.3).
struct VpSecret {
  std::array<std::uint8_t, 8> q{};

  [[nodiscard]] Id16 vp_id() const;
};

/// Draws a fresh secret and its identifier.
[[nodiscard]] VpSecret make_vp_secret(Rng& rng);

/// Inserts each profile's boundary VDs (first/last) into the other's Bloom
/// filter — the mutual neighborship a vehicle fabricates between its own
/// actual VP and the guard VPs it creates (§5.1.2).
void link_mutually(ViewProfile& a, ViewProfile& b);

}  // namespace viewmap::vp
