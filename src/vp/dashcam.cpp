#include "vp/dashcam.h"

#include <stdexcept>

namespace viewmap::vp {

Dashcam::Dashcam(const DashcamConfig& cfg, const road::Router* router, Rng rng)
    : cfg_(cfg),
      router_(router),
      rng_(std::move(rng)),
      source_(cfg.video_seed, cfg.video_bytes_per_second),
      storage_(cfg.storage_minutes) {}

dsrc::ViewDigest Dashcam::tick(TimeSec now, geo::Vec2 position) {
  // `now` is the second being completed; its minute is unit_start(now-1)
  // because second i of a minute completes at minute_start + i.
  const TimeSec minute = unit_start(now - 1);
  if (!builder_ || minute != minute_start_) {
    if (builder_) finalize_minute();
    minute_start_ = minute;
    builder_.emplace(minute, rng_);
  }

  const int second_index = builder_->seconds_done();  // 0-based chunk index
  source_.generate_chunk(minute_start_, second_index, chunk_);
  last_position_ = position;
  const dsrc::ViewDigest vd = builder_->tick(position, chunk_);
  if (builder_->seconds_done() == kDigestsPerProfile) finalize_minute();
  return vd;
}

bool Dashcam::receive(const dsrc::ViewDigest& vd) {
  if (!builder_) return false;
  const TimeSec now = minute_start_ + builder_->seconds_done();
  // accept_neighbor validates against the *current* second; receives
  // between ticks use the last known own position.
  (void)now;
  return builder_->accept_neighbor(vd, last_position_);
}

void Dashcam::finalize_minute() {
  if (!builder_ || builder_->seconds_done() != kDigestsPerProfile) {
    // An interrupted minute (power loss, parking-mode wake) yields no VP;
    // the paper's recorder simply starts fresh on the next boundary.
    builder_.reset();
    return;
  }
  auto gen = builder_->finish();
  builder_.reset();

  // SD card: keep the actual footage for later solicitation.
  storage_.store(source_.record_minute(minute_start_));
  owned_[gen.profile.vp_id()] = Owned{minute_start_, gen.secret};

  if (cfg_.guards_enabled && router_ != nullptr) {
    GuardVpFactory factory(*router_, cfg_.guard);
    for (auto& guard : factory.make_guards_for(gen.profile, gen.neighbors,
                                               minute_start_, rng_)) {
      // Queued for upload, then gone: the device retains nothing that
      // could answer a solicitation for a guard VP (§5.1.2).
      upload_queue_.push_back(guard.serialize());
    }
  }
  upload_queue_.push_back(gen.profile.serialize());
}

std::vector<std::vector<std::uint8_t>> Dashcam::drain_uploads() {
  auto out = std::move(upload_queue_);
  upload_queue_.clear();
  return out;
}

std::vector<Id16> Dashcam::answerable_vp_ids() const {
  std::vector<Id16> ids;
  ids.reserve(owned_.size());
  for (const auto& [id, owned] : owned_) ids.push_back(id);
  return ids;
}

const VpSecret* Dashcam::secret_of(const Id16& vp_id) const {
  auto it = owned_.find(vp_id);
  return it == owned_.end() ? nullptr : &it->second.secret;
}

const RecordedVideo* Dashcam::video_of(const Id16& vp_id) const {
  auto it = owned_.find(vp_id);
  if (it == owned_.end()) return nullptr;
  return storage_.find(it->second.unit_time);
}

}  // namespace viewmap::vp
