// Guard VP fabrication (paper §5.1.2).
//
// At the end of each minute a vehicle picks ⌈α·m⌉ of its m neighbors and,
// for each, fabricates a guard VP whose trajectory starts at the
// neighbor's advertised initial position L_1 and ends at the vehicle's own
// final position, following a plausible driving route (Directions-API
// style routing over the road map). VDs are spaced variably along the
// route, hash fields are random (there is no video), and the guard VP and
// the vehicle's actual VP insert each other's VDs into their Bloom filters.
//
// Guard VPs are uploaded and then *deleted locally* — they can never match
// a solicitation, but from the system's viewpoint they are actual-looking
// paths that fork away from the true one, defeating time-series tracking.
#pragma once

#include <optional>
#include <vector>

#include "common/rng.h"
#include "road/router.h"
#include "vp/vp_builder.h"

namespace viewmap::vp {

struct GuardConfig {
  double alpha = 0.1;          ///< fraction of neighbors covered (§6.2.2)
  double speed_jitter = 0.25;  ///< ± variation of VD spacing along the route
};

/// Probability that, after t minutes of driving among m-neighbor contacts,
/// some vehicle is still uncovered by anyone's guard VP:
///     P_t = [1 − {1 − (1−α)^m}^m]^t                      (§6.2.2)
/// The paper picks α = 0.1 so P_t < 0.01 within 5 minutes.
[[nodiscard]] double uncovered_probability(double alpha, int neighbors, int minutes);

/// Number of guard VPs a vehicle with m neighbors creates: ⌈α·m⌉ (0 if no
/// neighbors — path confusion needs someone to diverge toward).
[[nodiscard]] std::size_t guard_count(double alpha, std::size_t neighbors);

class GuardVpFactory {
 public:
  GuardVpFactory(const road::Router& router, GuardConfig cfg = {})
      : router_(&router), cfg_(cfg) {}

  /// Fabricates one guard VP from `seed_neighbor`'s advertised start to
  /// `own_end` for the minute starting at `minute_start`. Returns nullopt
  /// when the map gives no route between the endpoints.
  ///
  /// `camouflage_neighbors` pads the guard's Bloom filter with that many
  /// fabricated neighbor entries (2 VDs each, like real neighbors), so
  /// its fill ratio matches actual VPs from the same traffic — without
  /// padding, a near-empty filter would out a guard immediately. Padding
  /// cannot forge viewlinks: the two-way check still needs the *other*
  /// VP to have heard the guard's VDs, which nobody did.
  [[nodiscard]] std::optional<ViewProfile> make_guard(
      const NeighborRecord& seed_neighbor, geo::Vec2 own_end, TimeSec minute_start,
      Rng& rng, std::size_t camouflage_neighbors = 0) const;

  /// Full §5.1.2 end-of-minute procedure: selects ⌈α·m⌉ random neighbors,
  /// fabricates guards, and mutually links each guard with `actual`.
  /// Returns the guards (the caller uploads them and forgets them).
  [[nodiscard]] std::vector<ViewProfile> make_guards_for(
      ViewProfile& actual, std::span<const NeighborRecord> neighbors,
      TimeSec minute_start, Rng& rng) const;

 private:
  const road::Router* router_;
  GuardConfig cfg_;
};

}  // namespace viewmap::vp
