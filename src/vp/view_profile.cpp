#include "vp/view_profile.h"

#include <cmath>
#include <memory>
#include <stdexcept>

#include "common/rng.h"
#include "crypto/sha256.h"

namespace viewmap::vp {

ViewProfile::ViewProfile(std::vector<dsrc::ViewDigest> digests,
                         bloom::BloomFilter neighbor_bloom)
    : digests_(std::move(digests)), bloom_(std::move(neighbor_bloom)) {
  if (digests_.size() != static_cast<std::size_t>(kDigestsPerProfile))
    throw std::invalid_argument("ViewProfile: need exactly 60 digests");
  for (const auto& vd : digests_)
    if (vd.vp_id != digests_.front().vp_id)
      throw std::invalid_argument("ViewProfile: mixed VP identifiers");
  if (bloom_.bit_size() != kBloomBits || bloom_.hash_count() != kBloomHashes)
    throw std::invalid_argument("ViewProfile: non-protocol Bloom configuration");
}

// The probe cache is derived state over the immutable digests: copies
// recompute on demand, moves adopt the source's table, assignment drops
// the stale one. bloom_ mutation (add_neighbor_digest) never touches it
// — probes hash this profile's own digests, not its filter.

ViewProfile::ViewProfile(const ViewProfile& other)
    : digests_(other.digests_), bloom_(other.bloom_) {}

ViewProfile::ViewProfile(ViewProfile&& other) noexcept
    : digests_(std::move(other.digests_)),
      bloom_(std::move(other.bloom_)),
      probes_(other.probes_.exchange(nullptr, std::memory_order_acq_rel)) {}

ViewProfile& ViewProfile::operator=(const ViewProfile& other) {
  if (this != &other) {
    // Cache first: if a copy below throws, the object must not be left
    // holding a probe table computed for different digests.
    delete probes_.exchange(nullptr, std::memory_order_acq_rel);
    digests_ = other.digests_;
    bloom_ = other.bloom_;
  }
  return *this;
}

ViewProfile& ViewProfile::operator=(ViewProfile&& other) noexcept {
  if (this != &other) {
    digests_ = std::move(other.digests_);
    bloom_ = std::move(other.bloom_);
    delete probes_.exchange(other.probes_.exchange(nullptr, std::memory_order_acq_rel),
                            std::memory_order_acq_rel);
  }
  return *this;
}

ViewProfile::~ViewProfile() { delete probes_.load(std::memory_order_acquire); }

const BloomProbes& ViewProfile::bloom_probes() const {
  if (const BloomProbes* hit = probes_.load(std::memory_order_acquire))
    return *hit;
  auto fresh = std::make_unique<BloomProbes>();
  std::size_t wide[static_cast<std::size_t>(kBloomHashes)];
  for (std::size_t s = 0; s < digests_.size(); ++s) {
    bloom::BloomFilter::probe_positions(digests_[s].serialize(), kBloomBits,
                                        kBloomHashes, wide);
    for (std::size_t h = 0; h < static_cast<std::size_t>(kBloomHashes); ++h)
      fresh->at[s][h] = static_cast<std::uint16_t>(wide[h]);
  }
  const BloomProbes* expected = nullptr;
  if (probes_.compare_exchange_strong(expected, fresh.get(),
                                      std::memory_order_acq_rel,
                                      std::memory_order_acquire))
    return *fresh.release();
  return *expected;  // lost the benign race; another thread published
}

geo::Vec2 ViewProfile::location_at(int second_index) const {
  const auto& vd = digests_.at(static_cast<std::size_t>(second_index));
  return {vd.loc_x, vd.loc_y};
}

bool ViewProfile::visits(const geo::Rect& area) const noexcept {
  for (const auto& vd : digests_)
    if (area.contains({vd.loc_x, vd.loc_y})) return true;
  return false;
}

bool ViewProfile::ever_within(const ViewProfile& other, double radius_m) const noexcept {
  // Time-aligned comparison: both VPs cover the same minute second-by-
  // second (GPS-synchronized recording), so index i of one aligns with
  // the digest of the same wall-clock second in the other. Compared in
  // squared distance — this scan runs per candidate pair on the viewmap
  // construction hot path.
  if (radius_m < 0.0) return false;
  const double radius_sq = radius_m * radius_m;
  for (std::size_t i = 0; i < digests_.size(); ++i) {
    for (std::size_t j = 0; j < other.digests_.size(); ++j) {
      if (digests_[i].time != other.digests_[j].time) continue;
      const double dx = digests_[i].loc_x - other.digests_[j].loc_x;
      const double dy = digests_[i].loc_y - other.digests_[j].loc_y;
      if (dx * dx + dy * dy <= radius_sq) return true;
      break;  // at most one j matches a given i
    }
  }
  return false;
}

bool ViewProfile::heard(const ViewProfile& other) const {
  // Equivalent to probing each of other's serialized VDs, but through
  // other's memoized probe table: no hashing on the membership path.
  for (const auto& probe : other.bloom_probes().at)
    if (bloom_.test_positions(probe)) return true;
  return false;
}

std::vector<std::uint8_t> ViewProfile::serialize() const {
  std::vector<std::uint8_t> out;
  out.reserve(kVpWireSize);
  for (const auto& vd : digests_) {
    const auto frame = vd.serialize();
    out.insert(out.end(), frame.begin(), frame.end());
  }
  const auto& bits = bloom_.data();
  out.insert(out.end(), bits.begin(), bits.end());
  if (out.size() != kVpWireSize)
    throw std::logic_error("ViewProfile: wire size drifted from spec");
  return out;
}

ViewProfile ViewProfile::parse(std::span<const std::uint8_t> data) {
  if (data.size() != kVpWireSize)
    throw std::invalid_argument("ViewProfile: bad payload size");
  std::vector<dsrc::ViewDigest> digests;
  digests.reserve(kDigestsPerProfile);
  std::size_t off = 0;
  for (int i = 0; i < kDigestsPerProfile; ++i) {
    digests.push_back(dsrc::ViewDigest::parse(data.subspan(off, dsrc::kViewDigestWireSize)));
    off += dsrc::kViewDigestWireSize;
  }
  auto bloom = bloom::BloomFilter::from_bytes(data.subspan(off, kBloomBytes), kBloomHashes);
  return ViewProfile(std::move(digests), std::move(bloom));
}

bool VpUploadPolicy::well_formed(const ViewProfile& vp) const noexcept {
  const auto digests = vp.digests();
  for (std::size_t i = 0; i < digests.size(); ++i) {
    const auto& vd = digests[i];
    if (vd.second != static_cast<std::uint16_t>(i + 1)) return false;
    if (i > 0) {
      if (vd.time != digests[i - 1].time + 1) return false;
      const double dx = vd.loc_x - digests[i - 1].loc_x;
      const double dy = vd.loc_y - digests[i - 1].loc_y;
      if (std::sqrt(dx * dx + dy * dy) > max_speed_mps) return false;
      if (vd.file_size < digests[i - 1].file_size) return false;
      if (vd.initial_x != digests[0].initial_x || vd.initial_y != digests[0].initial_y)
        return false;
    }
  }
  // The advertised initial location must match the trajectory start.
  return digests[0].initial_x == digests[0].loc_x &&
         digests[0].initial_y == digests[0].loc_y;
}

Id16 VpSecret::vp_id() const { return crypto::derive_vp_id(q); }

VpSecret make_vp_secret(Rng& rng) {
  VpSecret s;
  rng.fill_bytes(s.q);
  return s;
}

void ViewProfile::add_neighbor_digest(const dsrc::ViewDigest& vd) {
  bloom_.insert(vd.serialize());
}

void link_mutually(ViewProfile& a, ViewProfile& b) {
  a.add_neighbor_digest(b.digests().front());
  a.add_neighbor_digest(b.digests().back());
  b.add_neighbor_digest(a.digests().front());
  b.add_neighbor_digest(a.digests().back());
}

}  // namespace viewmap::vp
