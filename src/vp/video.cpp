#include "vp/video.h"

#include <stdexcept>

namespace viewmap::vp {

namespace {

/// splitmix64 — cheap deterministic stream expansion. Chunk content is
/// never security-relevant (the hash chain is); it just has to be
/// deterministic and incompressible-looking.
std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace

std::span<const std::uint8_t> RecordedVideo::chunk(int second_index) const {
  const auto i = static_cast<std::size_t>(second_index);
  if (second_index < 0 || i + 1 >= chunk_offsets.size())
    throw std::out_of_range("RecordedVideo: bad second index");
  const std::uint64_t lo = chunk_offsets[i];
  const std::uint64_t hi = chunk_offsets[i + 1];
  return std::span<const std::uint8_t>(bytes).subspan(lo, hi - lo);
}

SyntheticVideoSource::SyntheticVideoSource(std::uint64_t seed,
                                           std::uint64_t bytes_per_second)
    : seed_(seed), bps_(bytes_per_second) {
  if (bytes_per_second == 0)
    throw std::invalid_argument("SyntheticVideoSource: zero chunk size");
}

void SyntheticVideoSource::generate_chunk(TimeSec minute_start, int second_index,
                                          std::vector<std::uint8_t>& out) const {
  out.resize(bps_);
  std::uint64_t state = seed_ ^ (static_cast<std::uint64_t>(minute_start) << 8) ^
                        static_cast<std::uint64_t>(second_index);
  std::size_t i = 0;
  while (i + 8 <= out.size()) {
    const std::uint64_t word = splitmix64(state);
    for (int b = 0; b < 8; ++b) out[i++] = static_cast<std::uint8_t>(word >> (8 * b));
  }
  if (i < out.size()) {
    const std::uint64_t word = splitmix64(state);
    for (int b = 0; i < out.size(); ++b) out[i++] = static_cast<std::uint8_t>(word >> (8 * b));
  }
}

RecordedVideo SyntheticVideoSource::record_minute(TimeSec minute_start) const {
  RecordedVideo video;
  video.start_time = minute_start;
  video.bytes.reserve(bps_ * static_cast<std::size_t>(kDigestsPerProfile));
  video.chunk_offsets.reserve(kDigestsPerProfile + 1);
  video.chunk_offsets.push_back(0);
  std::vector<std::uint8_t> chunk;
  for (int s = 0; s < kDigestsPerProfile; ++s) {
    generate_chunk(minute_start, s, chunk);
    video.bytes.insert(video.bytes.end(), chunk.begin(), chunk.end());
    video.chunk_offsets.push_back(video.bytes.size());
  }
  return video;
}

DashcamStorage::DashcamStorage(std::size_t capacity_minutes)
    : capacity_(capacity_minutes) {
  if (capacity_minutes == 0)
    throw std::invalid_argument("DashcamStorage: zero capacity");
}

void DashcamStorage::store(RecordedVideo video) {
  if (ring_.size() == capacity_) ring_.pop_front();
  ring_.push_back(std::move(video));
}

const RecordedVideo* DashcamStorage::find(TimeSec minute_start) const noexcept {
  for (const auto& v : ring_)
    if (v.start_time == minute_start) return &v;
  return nullptr;
}

std::optional<TimeSec> DashcamStorage::oldest_minute() const noexcept {
  if (ring_.empty()) return std::nullopt;
  return ring_.front().start_time;
}

}  // namespace viewmap::vp
