// Per-vehicle VP generation state machine (paper §5.1.1).
//
// Driving loop, once per second while recording minute u:
//   1. vehicle records chunk u[i-1..i] and advances the cascaded hash,
//   2. vehicle broadcasts its own VD_i,
//   3. vehicle screens and stores VDs heard from neighbors (first + last
//      per neighbor, at most 250 neighbors).
// At second 60 the builder compiles the VDs and the neighbor Bloom filter
// into VP_u and hands back everything guard-VP creation needs.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "dsrc/view_digest.h"
#include "geo/geometry.h"
#include "vp/view_profile.h"

namespace viewmap::vp {

/// What a vehicle remembers about one neighbor: the first and last VD it
/// received with a given R value (§5.1.1 "A temporarily stores at most two
/// valid VDs per neighbor").
struct NeighborRecord {
  dsrc::ViewDigest first;
  std::optional<dsrc::ViewDigest> last;  ///< unset if only one VD was heard

  /// Initial location the neighbor advertised (L_1) — the seed for a guard
  /// VP trajectory (§5.1.2).
  [[nodiscard]] geo::Vec2 advertised_start() const noexcept {
    return {first.initial_x, first.initial_y};
  }
};

/// Result of completing one minute of recording.
struct VpGenerationResult {
  ViewProfile profile;              ///< the actual VP_u
  VpSecret secret;                  ///< Q_u, retained by the owner
  std::vector<NeighborRecord> neighbors;  ///< inputs for guard creation
};

class VpBuilder {
 public:
  /// Starts a fresh minute. `minute_start` must be a unit-time boundary.
  VpBuilder(TimeSec minute_start, Rng& rng);

  /// Step 1+2 of the loop: record this second's chunk, return the VD the
  /// vehicle broadcasts. Call exactly 60 times with consecutive seconds.
  [[nodiscard]] dsrc::ViewDigest tick(geo::Vec2 position,
                                      std::span<const std::uint8_t> chunk);

  /// Step 3: screen a received VD against the §5.1.1 acceptance policy
  /// (time window + DSRC radius) and store it. Returns false if rejected.
  bool accept_neighbor(const dsrc::ViewDigest& vd, geo::Vec2 own_position);

  [[nodiscard]] int seconds_done() const noexcept { return second_; }
  [[nodiscard]] std::size_t neighbor_count() const noexcept { return neighbors_.size(); }
  [[nodiscard]] const Id16& vp_id() const noexcept { return vp_id_; }

  /// Compiles VP_u after the 60th tick. Consumes the builder state.
  [[nodiscard]] VpGenerationResult finish();

 private:
  VpSecret secret_;
  Id16 vp_id_;
  TimeSec minute_start_;
  int second_ = 0;  // seconds completed so far (i in 1..60 after tick)
  std::uint64_t file_size_ = 0;
  geo::Vec2 initial_pos_{};
  crypto::CascadedHasher hasher_;
  std::vector<dsrc::ViewDigest> own_digests_;
  std::unordered_map<Id16, NeighborRecord, Id16Hasher> neighbors_;
  dsrc::VdAcceptancePolicy policy_;
};

}  // namespace viewmap::vp
