// Dashcam video substrate.
//
// The paper's dashcams record 1-minute segments (~50 MB each) onto SD
// cards, overwriting the oldest segment when full (§2). We replace real
// camera output with a deterministic pseudo-random byte stream — the hash
// chain, solicitation, and validation code paths are identical, and
// determinism lets the system-side re-validation reproduce bit-exact
// chunks. Chunk size is configurable: benches that measure hashing cost
// use the real ~833 KB/s rate; large simulations use small chunks.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <span>
#include <vector>

#include "common/types.h"

namespace viewmap::vp {

/// Paper §6.1: a 1-minute video averages 50 MB ⇒ ~873 KiB recorded/second.
inline constexpr std::uint64_t kRealisticBytesPerSecond = 50ull * 1024 * 1024 / 60;

/// One fully recorded 1-minute video: 60 chunks plus their offsets.
struct RecordedVideo {
  TimeSec start_time = 0;               ///< minute boundary
  std::vector<std::uint8_t> bytes;      ///< concatenated chunks
  std::vector<std::uint64_t> chunk_offsets;  ///< 61 entries; [i]..[i+1] = second i

  [[nodiscard]] std::span<const std::uint8_t> chunk(int second_index) const;
  [[nodiscard]] std::uint64_t size() const noexcept { return bytes.size(); }
};

/// Deterministic per-vehicle video generator. The chunk for (minute m,
/// second i) depends only on (seed, m, i) — replayable anywhere.
class SyntheticVideoSource {
 public:
  SyntheticVideoSource(std::uint64_t seed, std::uint64_t bytes_per_second);

  [[nodiscard]] std::uint64_t bytes_per_second() const noexcept { return bps_; }

  /// Fills `out` with the deterministic chunk for the given second.
  void generate_chunk(TimeSec minute_start, int second_index,
                      std::vector<std::uint8_t>& out) const;

  /// Renders the whole minute at once (used by validation and benches).
  [[nodiscard]] RecordedVideo record_minute(TimeSec minute_start) const;

 private:
  std::uint64_t seed_;
  std::uint64_t bps_;
};

/// SD-card ring buffer (§2: "once the memory is full, the oldest segment
/// will be deleted and recorded over").
class DashcamStorage {
 public:
  explicit DashcamStorage(std::size_t capacity_minutes);

  void store(RecordedVideo video);

  /// Video whose minute starts at `minute_start`, if still retained.
  [[nodiscard]] const RecordedVideo* find(TimeSec minute_start) const noexcept;

  [[nodiscard]] std::size_t size() const noexcept { return ring_.size(); }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::optional<TimeSec> oldest_minute() const noexcept;

 private:
  std::size_t capacity_;
  std::deque<RecordedVideo> ring_;
};

}  // namespace viewmap::vp
