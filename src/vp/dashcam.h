// The ViewMap-enabled dashcam (paper §7.1: Raspberry Pi + camera + DSRC
// OBU + Tor bridge).
//
// One object owns the whole vehicle-side lifecycle:
//   * records video (synthetic source) into the SD ring buffer,
//   * runs the per-second VD generation/broadcast state machine,
//   * screens and stores neighbor VDs,
//   * at each minute boundary compiles the actual VP, fabricates guard
//     VPs, queues all of them for anonymous upload, and *forgets the
//     guards* (only actual VPs remain answerable),
//   * retains secrets Q and recorded videos so solicitations and reward
//     claims can be answered later.
//
// Drive it once per second with tick(); everything else is bookkeeping.
#pragma once

#include <optional>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "road/router.h"
#include "vp/guard.h"
#include "vp/video.h"
#include "vp/vp_builder.h"

namespace viewmap::vp {

struct DashcamConfig {
  std::uint64_t video_seed = 0;
  std::uint64_t video_bytes_per_second = 32;
  std::size_t storage_minutes = 120;  ///< SD ring-buffer capacity (§2)
  bool guards_enabled = true;
  GuardConfig guard{};
};

class Dashcam {
 public:
  /// `router` provides guard-VP trajectories; pass nullptr to disable
  /// guard creation (e.g. when no road map is loaded yet).
  Dashcam(const DashcamConfig& cfg, const road::Router* router, Rng rng);

  /// One second of recording at `position`; `now` must advance by exactly
  /// one second per call. Returns the VD to broadcast. Crossing a minute
  /// boundary finalizes the previous VP first.
  [[nodiscard]] dsrc::ViewDigest tick(TimeSec now, geo::Vec2 position);

  /// DSRC receive path; screens per §5.1.1 and stores first/last VD.
  bool receive(const dsrc::ViewDigest& vd);

  /// Serialized VPs (actual + guards) awaiting anonymous upload. Guards
  /// are deleted from the device the moment they are drained (§5.1.2).
  [[nodiscard]] std::vector<std::vector<std::uint8_t>> drain_uploads();

  // ── solicitation / reward support ───────────────────────────────────
  /// Identifiers of actual VPs this device can still answer for.
  [[nodiscard]] std::vector<Id16> answerable_vp_ids() const;

  /// Secret Q for a VP id, if it is ours (reward claims, §5.3).
  [[nodiscard]] const VpSecret* secret_of(const Id16& vp_id) const;

  /// Recorded video matching a VP id, if still in the ring buffer.
  [[nodiscard]] const RecordedVideo* video_of(const Id16& vp_id) const;

  [[nodiscard]] std::size_t minutes_recorded() const noexcept { return owned_.size(); }
  [[nodiscard]] std::size_t neighbor_count() const noexcept {
    return builder_ ? builder_->neighbor_count() : 0;
  }

 private:
  void finalize_minute();

  DashcamConfig cfg_;
  const road::Router* router_;
  Rng rng_;
  SyntheticVideoSource source_;
  DashcamStorage storage_;

  std::optional<VpBuilder> builder_;
  TimeSec minute_start_ = 0;
  geo::Vec2 last_position_{};
  std::vector<std::uint8_t> chunk_;

  struct Owned {
    TimeSec unit_time;
    VpSecret secret;
  };
  std::unordered_map<Id16, Owned, Id16Hasher> owned_;
  std::vector<std::vector<std::uint8_t>> upload_queue_;
};

}  // namespace viewmap::vp
