#include "vp/vp_builder.h"

#include <stdexcept>

namespace viewmap::vp {

VpBuilder::VpBuilder(TimeSec minute_start, Rng& rng)
    : secret_(make_vp_secret(rng)),
      vp_id_(secret_.vp_id()),
      minute_start_(minute_start),
      hasher_(vp_id_) {
  if (minute_start != unit_start(minute_start))
    throw std::invalid_argument("VpBuilder: minute_start not on a unit boundary");
  own_digests_.reserve(kDigestsPerProfile);
}

dsrc::ViewDigest VpBuilder::tick(geo::Vec2 position,
                                 std::span<const std::uint8_t> chunk) {
  if (second_ >= kDigestsPerProfile)
    throw std::logic_error("VpBuilder: minute already complete");
  if (second_ == 0) initial_pos_ = position;
  ++second_;
  file_size_ += chunk.size();

  dsrc::ViewDigest vd;
  vd.time = minute_start_ + second_;  // T_i at the end of second i
  vd.loc_x = static_cast<float>(position.x);
  vd.loc_y = static_cast<float>(position.y);
  vd.file_size = file_size_;
  vd.initial_x = static_cast<float>(initial_pos_.x);
  vd.initial_y = static_cast<float>(initial_pos_.y);
  vd.vp_id = vp_id_;
  vd.second = static_cast<std::uint16_t>(second_);
  vd.hash = hasher_.step(vd.chain_meta(), chunk);
  own_digests_.push_back(vd);
  return vd;
}

bool VpBuilder::accept_neighbor(const dsrc::ViewDigest& vd, geo::Vec2 own_position) {
  if (vd.vp_id == vp_id_) return false;  // own echo
  const TimeSec now = minute_start_ + second_;
  if (!policy_.acceptable(vd, now, own_position.x, own_position.y)) return false;

  auto it = neighbors_.find(vd.vp_id);
  if (it == neighbors_.end()) {
    if (neighbors_.size() >= kMaxNeighbors) return false;  // §6.3.2 fn.10
    neighbors_.emplace(vd.vp_id, NeighborRecord{vd, std::nullopt});
  } else {
    it->second.last = vd;  // keep first; latest received becomes "last"
  }
  return true;
}

VpGenerationResult VpBuilder::finish() {
  if (second_ != kDigestsPerProfile)
    throw std::logic_error("VpBuilder: finish before 60 ticks");

  bloom::BloomFilter filter(kBloomBits, kBloomHashes);
  std::vector<NeighborRecord> records;
  records.reserve(neighbors_.size());
  for (auto& [id, rec] : neighbors_) {
    filter.insert(rec.first.serialize());
    if (rec.last) filter.insert(rec.last->serialize());
    records.push_back(rec);
  }

  VpGenerationResult result{
      ViewProfile(std::move(own_digests_), std::move(filter)), secret_,
      std::move(records)};
  // Reset to a safe moved-from state; the builder is spent.
  second_ = kDigestsPerProfile;
  neighbors_.clear();
  return result;
}

}  // namespace viewmap::vp
