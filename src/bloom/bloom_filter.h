// Bloom filter for VP neighbor summaries (paper §5.1.1, §6.3.2).
//
// Each VP carries a Bloom filter N_u of the neighbor VDs the vehicle heard
// while recording (the first and last VD per neighbor). The system later
// replays membership queries to validate claimed viewlinks. The paper
// chooses m = 2048 bits (256 bytes) so that the *two-way* false linkage
// rate stays around 0.1% even with 300 neighbors (Fig. 14).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace viewmap::bloom {

/// Fixed-size Bloom filter with k independent hash functions derived from
/// SHA-256 via the Kirsch–Mitzenmacher double-hashing construction.
class BloomFilter {
 public:
  /// `bits` must be a positive multiple of 8 (serialized as whole bytes).
  /// `hash_count` is k; use optimal_hash_count() unless reproducing a
  /// specific configuration.
  BloomFilter(std::size_t bits, int hash_count);

  void insert(std::span<const std::uint8_t> element);
  [[nodiscard]] bool maybe_contains(std::span<const std::uint8_t> element) const;

  /// Precomputes the bit positions an element hashes to, so membership of
  /// one element can be tested against many filters without re-hashing
  /// (viewmap construction tests every VD against every candidate
  /// neighbor's filter). All protocol filters share (bits, hash_count),
  /// which is why probe positions transfer between filters.
  static void probe_positions(std::span<const std::uint8_t> element, std::size_t bits,
                              int hash_count, std::span<std::size_t> out);

  /// Membership test from precomputed positions (same (bits, hash_count)).
  [[nodiscard]] bool test_positions(std::span<const std::size_t> positions) const;
  /// Same, from narrow positions (protocol filters have bits ≤ 65536, so
  /// probe tables store uint16 — see vp::BloomProbes). Inline: viewmap
  /// construction calls this up to 120× per candidate pair.
  [[nodiscard]] bool test_positions(std::span<const std::uint16_t> positions) const {
    for (const std::uint16_t bit : positions)
      if ((data_[bit / 8] & (1u << (bit % 8))) == 0) return false;
    return true;
  }

  /// Sets every bit — used to model the §6.3.2 "all-ones bit-array" attack.
  void saturate();

  [[nodiscard]] std::size_t bit_size() const noexcept { return bits_; }
  [[nodiscard]] int hash_count() const noexcept { return k_; }
  [[nodiscard]] std::size_t popcount() const noexcept;
  [[nodiscard]] double fill_ratio() const noexcept;

  /// Raw bit-array, the form embedded into a VP (256 bytes at m = 2048).
  [[nodiscard]] const std::vector<std::uint8_t>& data() const noexcept { return data_; }

  /// Reconstructs a filter from its serialized bit-array (system side).
  static BloomFilter from_bytes(std::span<const std::uint8_t> bytes, int hash_count);

  friend bool operator==(const BloomFilter&, const BloomFilter&) = default;

 private:
  void indices(std::span<const std::uint8_t> element,
               std::span<std::size_t> out) const;

  std::size_t bits_;
  int k_;
  std::vector<std::uint8_t> data_;
};

/// k = (m/n) ln 2, clamped to at least 1 (paper §6.3.2).
[[nodiscard]] int optimal_hash_count(std::size_t bits, std::size_t expected_elements);

/// Theoretical one-way false-positive probability for an m-bit filter
/// holding n elements with k hashes: (1 - [1 - 1/m]^{nk})^k.
[[nodiscard]] double false_positive_rate(std::size_t bits, std::size_t elements,
                                         int hash_count);

/// Two-way false *linkage* probability (§6.3.2). A false viewlink needs an
/// independent false positive in BOTH directions' filters, each loaded
/// with ~n neighbor entries:
///     p = [ (1 - [1 - 1/m]^{nk})^k ]².
/// At the paper's operating point (m = 2048 bits, n = 300 neighbors,
/// optimal k) this gives ≈0.1%, matching the §6.3.2 claim. (The paper's
/// displayed formula has 2nk/2k exponents, which does not reproduce its
/// own quoted 0.1% — see EXPERIMENTS.md for the discrepancy note.)
[[nodiscard]] double false_linkage_rate(std::size_t bits, std::size_t neighbors,
                                        int hash_count);

}  // namespace viewmap::bloom
