#include "bloom/bloom_filter.h"

#include <bit>
#include <cmath>
#include <cstring>
#include <numbers>
#include <stdexcept>

#include "crypto/sha256.h"

namespace viewmap::bloom {

namespace {
constexpr int kMaxHashes = 64;
}

BloomFilter::BloomFilter(std::size_t bits, int hash_count)
    : bits_(bits), k_(hash_count), data_(bits / 8, 0) {
  if (bits == 0 || bits % 8 != 0)
    throw std::invalid_argument("BloomFilter: bits must be a positive multiple of 8");
  if (hash_count < 1 || hash_count > kMaxHashes)
    throw std::invalid_argument("BloomFilter: hash_count out of range");
}

void BloomFilter::probe_positions(std::span<const std::uint8_t> element,
                                  std::size_t bits, int hash_count,
                                  std::span<std::size_t> out) {
  // Kirsch–Mitzenmacher: derive k indices as h1 + i*h2 from one SHA-256.
  const Hash32 digest = crypto::sha256(element);
  std::uint64_t h1, h2;
  std::memcpy(&h1, digest.bytes.data(), 8);
  std::memcpy(&h2, digest.bytes.data() + 8, 8);
  h2 |= 1;  // force odd so the stride cycles through the table
  for (std::size_t i = 0; i < static_cast<std::size_t>(hash_count) && i < out.size(); ++i)
    out[i] = static_cast<std::size_t>((h1 + i * h2) % bits);
}

bool BloomFilter::test_positions(std::span<const std::size_t> positions) const {
  for (std::size_t bit : positions)
    if ((data_[bit / 8] & (1u << (bit % 8))) == 0) return false;
  return true;
}

void BloomFilter::indices(std::span<const std::uint8_t> element,
                          std::span<std::size_t> out) const {
  probe_positions(element, bits_, k_, out);
}

void BloomFilter::insert(std::span<const std::uint8_t> element) {
  std::size_t idx[kMaxHashes];
  auto span = std::span<std::size_t>(idx, static_cast<std::size_t>(k_));
  indices(element, span);
  for (std::size_t bit : span) data_[bit / 8] |= static_cast<std::uint8_t>(1u << (bit % 8));
}

bool BloomFilter::maybe_contains(std::span<const std::uint8_t> element) const {
  std::size_t idx[kMaxHashes];
  auto span = std::span<std::size_t>(idx, static_cast<std::size_t>(k_));
  indices(element, span);
  for (std::size_t bit : span)
    if ((data_[bit / 8] & (1u << (bit % 8))) == 0) return false;
  return true;
}

void BloomFilter::saturate() {
  std::memset(data_.data(), 0xff, data_.size());
}

std::size_t BloomFilter::popcount() const noexcept {
  std::size_t total = 0;
  for (auto byte : data_) total += static_cast<std::size_t>(std::popcount(byte));
  return total;
}

double BloomFilter::fill_ratio() const noexcept {
  return static_cast<double>(popcount()) / static_cast<double>(bits_);
}

BloomFilter BloomFilter::from_bytes(std::span<const std::uint8_t> bytes, int hash_count) {
  BloomFilter f(bytes.size() * 8, hash_count);
  std::memcpy(f.data_.data(), bytes.data(), bytes.size());
  return f;
}

int optimal_hash_count(std::size_t bits, std::size_t expected_elements) {
  if (expected_elements == 0) return 1;
  const double k = static_cast<double>(bits) / static_cast<double>(expected_elements) *
                   std::numbers::ln2;
  const int rounded = static_cast<int>(std::lround(k));
  if (rounded < 1) return 1;
  return rounded > kMaxHashes ? kMaxHashes : rounded;
}

double false_positive_rate(std::size_t bits, std::size_t elements, int hash_count) {
  const double m = static_cast<double>(bits);
  const double nk = static_cast<double>(elements) * hash_count;
  const double frac_zero = std::pow(1.0 - 1.0 / m, nk);
  return std::pow(1.0 - frac_zero, hash_count);
}

double false_linkage_rate(std::size_t bits, std::size_t neighbors, int hash_count) {
  const double one_way = false_positive_rate(bits, neighbors, hash_count);
  return one_way * one_way;
}

}  // namespace viewmap::bloom
