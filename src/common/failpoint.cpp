#include "common/failpoint.h"

#include <cerrno>
#include <cstdlib>
#include <map>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "common/rng.h"

namespace viewmap::failpoint {

namespace detail {
std::atomic<std::uint64_t> g_armed{0};
}  // namespace detail

namespace {

struct Point {
  Action action = Action::kNone;
  Trigger trigger;
  std::chrono::milliseconds delay{0};
  std::uint64_t hits = 0;
  std::uint64_t fires = 0;
  Rng rng{0};  // re-seeded on arm for kProbability
};

struct Registry {
  std::mutex mu;
  // Ordered map: armed_points() reports sorted names for free, and the
  // registry only ever holds a handful of entries.
  std::map<std::string, Point, std::less<>> points;
  std::uint64_t total_fires = 0;
};

Registry& registry() {
  static Registry r;
  return r;
}

bool trigger_fires(Point& p) {
  // hits was already incremented; the hit index of this evaluation is
  // hits - 1 so windows and every-Nth count from zero.
  const std::uint64_t idx = p.hits - 1;
  switch (p.trigger.kind) {
    case Trigger::Kind::kAlways:
      return true;
    case Trigger::Kind::kOnce:
      return idx == 0;
    case Trigger::Kind::kEveryNth:
      return p.trigger.n != 0 && (idx + 1) % p.trigger.n == 0;
    case Trigger::Kind::kProbability:
      return p.rng.bernoulli(p.trigger.p);
    case Trigger::Kind::kWindow:
      return idx >= p.trigger.from && idx < p.trigger.to;
  }
  return false;
}

Action parse_action(std::string_view s, std::chrono::milliseconds& delay) {
  const auto colon = s.find(':');
  const std::string_view name = s.substr(0, colon);
  std::string_view arg =
      colon == std::string_view::npos ? std::string_view{} : s.substr(colon + 1);
  if (name == "eio") return Action::kEIO;
  if (name == "enospc") return Action::kENOSPC;
  if (name == "short") return Action::kShortWrite;
  if (name == "error") return Action::kError;
  if (name == "delay") {
    if (arg.empty()) throw std::invalid_argument("failpoint: delay needs :MS");
    delay = std::chrono::milliseconds{std::stoll(std::string(arg))};
    return Action::kDelay;
  }
  throw std::invalid_argument("failpoint: unknown action '" + std::string(s) + "'");
}

Trigger parse_trigger(std::string_view s) {
  // Split on ':' into at most three fields.
  std::vector<std::string> f;
  std::size_t start = 0;
  while (start <= s.size()) {
    const auto colon = s.find(':', start);
    if (colon == std::string_view::npos) {
      f.emplace_back(s.substr(start));
      break;
    }
    f.emplace_back(s.substr(start, colon - start));
    start = colon + 1;
  }
  if (f.empty()) throw std::invalid_argument("failpoint: empty trigger");
  const std::string& kind = f[0];
  if (kind == "always" && f.size() == 1) return Trigger::always();
  if (kind == "once" && f.size() == 1) return Trigger::once();
  if (kind == "every" && f.size() == 2)
    return Trigger::every_nth(std::stoull(f[1]));
  if (kind == "prob" && (f.size() == 2 || f.size() == 3)) {
    const double p = std::stod(f[1]);
    return f.size() == 3 ? Trigger::probability(p, std::stoull(f[2]))
                         : Trigger::probability(p);
  }
  if (kind == "window" && f.size() == 3)
    return Trigger::window(std::stoull(f[1]), std::stoull(f[2]));
  throw std::invalid_argument("failpoint: bad trigger '" + std::string(s) + "'");
}

}  // namespace

int Decision::injected_errno() const noexcept {
  switch (action) {
    case Action::kEIO:
    case Action::kShortWrite:
      return EIO;
    case Action::kENOSPC:
      return ENOSPC;
    default:
      return 0;
  }
}

namespace detail {

Decision evaluate_slow(std::string_view point) {
  std::chrono::milliseconds delay{0};
  Decision d;
  {
    auto& r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    auto it = r.points.find(point);
    if (it == r.points.end()) return {};
    Point& p = it->second;
    ++p.hits;
    if (!trigger_fires(p)) return {};
    ++p.fires;
    ++r.total_fires;
    d.action = p.action;
    delay = p.delay;
  }
  // Sleep outside the lock so a delay point never serializes other
  // points behind it.
  if (d.action == Action::kDelay && delay.count() > 0)
    std::this_thread::sleep_for(delay);
  return d;
}

}  // namespace detail

Trigger Trigger::every_nth(std::uint64_t n) {
  if (n == 0) throw std::invalid_argument("failpoint: every:N needs N >= 1");
  Trigger t{Kind::kEveryNth};
  t.n = n;
  return t;
}

Trigger Trigger::probability(double p, std::uint64_t seed) {
  if (p < 0.0 || p > 1.0)
    throw std::invalid_argument("failpoint: prob:P needs P in [0, 1]");
  Trigger t{Kind::kProbability};
  t.p = p;
  t.seed = seed;
  return t;
}

Trigger Trigger::window(std::uint64_t from, std::uint64_t to) {
  if (to < from) throw std::invalid_argument("failpoint: window:A:B needs A <= B");
  Trigger t{Kind::kWindow};
  t.from = from;
  t.to = to;
  return t;
}

void arm(std::string point, Action action, Trigger trigger,
         std::chrono::milliseconds delay) {
  if (point.empty()) throw std::invalid_argument("failpoint: empty point name");
  if (action == Action::kNone)
    throw std::invalid_argument("failpoint: cannot arm kNone");
  auto& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  Point p;
  p.action = action;
  p.trigger = trigger;
  p.delay = delay;
  p.rng = Rng(trigger.seed);
  auto [it, inserted] = r.points.insert_or_assign(std::move(point), std::move(p));
  (void)it;
  if (inserted) detail::g_armed.fetch_add(1, std::memory_order_relaxed);
}

std::size_t arm_from_spec(std::string_view spec) {
  // Two-phase: parse every clause before arming anything, so a spec with
  // a bad clause arms nothing (no partially-applied chaos).
  struct Parsed {
    std::string point;
    Action action;
    Trigger trigger;
    std::chrono::milliseconds delay;
  };
  std::vector<Parsed> parsed;
  std::size_t start = 0;
  while (start < spec.size()) {
    auto end = spec.find(';', start);
    if (end == std::string_view::npos) end = spec.size();
    const std::string_view clause = spec.substr(start, end - start);
    start = end + 1;
    if (clause.empty()) continue;
    const auto eq = clause.find('=');
    if (eq == std::string_view::npos || eq == 0)
      throw std::invalid_argument("failpoint: bad clause '" + std::string(clause) +
                                  "' (want point=action[@trigger])");
    const std::string_view point = clause.substr(0, eq);
    std::string_view rhs = clause.substr(eq + 1);
    Trigger trigger = Trigger::always();
    const auto at = rhs.find('@');
    if (at != std::string_view::npos) {
      trigger = parse_trigger(rhs.substr(at + 1));
      rhs = rhs.substr(0, at);
    }
    std::chrono::milliseconds delay{0};
    const Action action = parse_action(rhs, delay);
    parsed.push_back({std::string(point), action, trigger, delay});
  }
  for (auto& p : parsed)
    arm(std::move(p.point), p.action, p.trigger, p.delay);
  return parsed.size();
}

std::size_t arm_from_env() {
  const char* spec = std::getenv("VIEWMAP_FAILPOINTS");
  if (spec == nullptr || *spec == '\0') return 0;
  return arm_from_spec(spec);
}

void disarm(std::string_view point) {
  auto& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  auto it = r.points.find(point);
  if (it == r.points.end()) return;
  r.points.erase(it);
  detail::g_armed.fetch_sub(1, std::memory_order_relaxed);
}

void disarm_all() {
  auto& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  detail::g_armed.fetch_sub(r.points.size(), std::memory_order_relaxed);
  r.points.clear();
  r.total_fires = 0;
}

PointStats stats(std::string_view point) {
  auto& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  auto it = r.points.find(point);
  if (it == r.points.end()) return {};
  return {it->second.hits, it->second.fires};
}

std::uint64_t total_fires() {
  auto& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  return r.total_fires;
}

std::vector<std::string> armed_points() {
  auto& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  std::vector<std::string> names;
  names.reserve(r.points.size());
  for (const auto& [name, p] : r.points) names.push_back(name);
  return names;
}

}  // namespace viewmap::failpoint
