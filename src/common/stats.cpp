#include "common/stats.h"

#include <cmath>
#include <stdexcept>

namespace viewmap {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double pearson_correlation(std::span<const double> x, std::span<const double> y) {
  if (x.size() != y.size())
    throw std::invalid_argument("pearson_correlation: size mismatch");
  const std::size_t n = x.size();
  if (n < 2) return 0.0;
  double mx = 0, my = 0;
  for (std::size_t i = 0; i < n; ++i) {
    mx += x[i];
    my += y[i];
  }
  mx /= static_cast<double>(n);
  my /= static_cast<double>(n);
  double sxy = 0, sxx = 0, syy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

double entropy_bits(std::span<const double> p) {
  double h = 0.0;
  for (double pi : p)
    if (pi > 0.0) h -= pi * std::log2(pi);
  return h;
}

}  // namespace viewmap
