// Small statistics helpers used by the evaluation harnesses.
#pragma once

#include <cstddef>
#include <span>

namespace viewmap {

/// Running mean/variance/min/max accumulator (Welford's algorithm).
class RunningStats {
 public:
  void add(double x) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const noexcept;  ///< sample variance
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Pearson correlation coefficient of two equally sized samples.
/// Returns 0 when either sample has zero variance (degenerate case used by
/// the Fig. 20 harness when a distance bucket saw only one outcome).
[[nodiscard]] double pearson_correlation(std::span<const double> x,
                                         std::span<const double> y);

/// Shannon entropy (bits) of a discrete distribution; zero entries skipped.
[[nodiscard]] double entropy_bits(std::span<const double> p);

}  // namespace viewmap
