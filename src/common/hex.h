// Hex encoding/decoding for ids, hashes, and debug output.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace viewmap {

[[nodiscard]] std::string to_hex(std::span<const std::uint8_t> bytes);

/// Throws std::invalid_argument on odd length or non-hex characters.
[[nodiscard]] std::vector<std::uint8_t> from_hex(const std::string& hex);

}  // namespace viewmap
