// Fundamental value types shared across all ViewMap modules.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <string>

namespace viewmap {

/// Wall-clock time in whole seconds since an arbitrary epoch.
/// ViewMap slices time into 60-second "unit times"; videos start on the
/// minute (paper §5.1.1, GPS-synchronized recording).
using TimeSec = std::int64_t;

/// Duration of one video unit / one viewmap slice (paper: 1 minute).
inline constexpr TimeSec kUnitTimeSec = 60;

/// Seconds-within-unit index i runs 1..60 in the paper's notation.
inline constexpr int kDigestsPerProfile = 60;

/// Start of the unit-time (minute) containing `t`.
constexpr TimeSec unit_start(TimeSec t) noexcept {
  return t - (t % kUnitTimeSec + kUnitTimeSec) % kUnitTimeSec;
}

/// 16-byte opaque identifier. Used for VP identifiers R = H(Q) truncated
/// to 128 bits (paper §6.1: VP identifier field is 16 bytes).
struct Id16 {
  std::array<std::uint8_t, 16> bytes{};

  friend bool operator==(const Id16&, const Id16&) = default;
  friend auto operator<=>(const Id16&, const Id16&) = default;

  [[nodiscard]] bool is_zero() const noexcept {
    for (auto b : bytes)
      if (b != 0) return false;
    return true;
  }
};

/// 16-byte truncated hash value (cascaded VD hash field, §6.1).
struct Hash16 {
  std::array<std::uint8_t, 16> bytes{};

  friend bool operator==(const Hash16&, const Hash16&) = default;
  friend auto operator<=>(const Hash16&, const Hash16&) = default;
};

/// Full SHA-256 digest.
struct Hash32 {
  std::array<std::uint8_t, 32> bytes{};

  friend bool operator==(const Hash32&, const Hash32&) = default;
  friend auto operator<=>(const Hash32&, const Hash32&) = default;

  /// First 16 bytes; ViewMap's wire formats carry truncated hashes.
  [[nodiscard]] Hash16 truncated() const noexcept {
    Hash16 h;
    for (int i = 0; i < 16; ++i) h.bytes[static_cast<std::size_t>(i)] = bytes[static_cast<std::size_t>(i)];
    return h;
  }
};

/// Identifier of a vehicle inside the simulator. Never leaves a vehicle:
/// the ViewMap system must not learn it (that is the point of the paper).
using VehicleId = std::uint32_t;

struct Id16Hasher {
  std::size_t operator()(const Id16& id) const noexcept {
    std::uint64_t x;
    static_assert(sizeof x <= sizeof id.bytes);
    __builtin_memcpy(&x, id.bytes.data(), sizeof x);
    return std::hash<std::uint64_t>{}(x);
  }
};

}  // namespace viewmap
