#include "common/hex.h"

#include <stdexcept>

namespace viewmap {

namespace {
constexpr char kDigits[] = "0123456789abcdef";

int nibble(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  throw std::invalid_argument("from_hex: non-hex character");
}
}  // namespace

std::string to_hex(std::span<const std::uint8_t> bytes) {
  std::string out;
  out.reserve(bytes.size() * 2);
  for (auto b : bytes) {
    out.push_back(kDigits[b >> 4]);
    out.push_back(kDigits[b & 0xf]);
  }
  return out;
}

std::vector<std::uint8_t> from_hex(const std::string& hex) {
  if (hex.size() % 2 != 0)
    throw std::invalid_argument("from_hex: odd length");
  std::vector<std::uint8_t> out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2)
    out.push_back(static_cast<std::uint8_t>(nibble(hex[i]) << 4 | nibble(hex[i + 1])));
  return out;
}

}  // namespace viewmap
