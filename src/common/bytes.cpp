#include "common/bytes.h"

// Header-only logic; this TU anchors the library target.
