// Failpoints: named fault-injection sites with deterministic triggers.
//
// PR 5's crash-point replay proved recovery from "the process dies at
// byte N"; this module generalizes the discipline to "syscall X fails at
// point Y". Durable-I/O and service-loop code declares *points* —
// `failpoint::inject("store.write.data")` — and tests, the chaos soak
// harness, or an operator (`viewmapd --failpoints=…`, the
// VIEWMAP_FAILPOINTS environment variable) *arm* them with an action and
// a trigger policy. Unarmed, a point costs one relaxed atomic load — the
// framework compiles into production builds so the chaos suite exercises
// the exact binary that ships.
//
// Actions (what an armed point does when its trigger fires):
//   eio / enospc   report errno EIO / ENOSPC — the site fails the way the
//                  real syscall would (write/fsync/close/rename/open)
//   short          torn write: the site persists a prefix of the bytes,
//                  then fails with EIO (only write-shaped sites honor the
//                  short part; others treat it as eio)
//   delay:MS       sleep MS milliseconds, then proceed normally — wedge
//                  and watchdog fodder, not an error
//   error          generic failure with no errno (sites throw)
//
// Triggers (when an armed point fires, counted in per-point hits):
//   always         every evaluation
//   once           the first evaluation only
//   every:N        evaluations N-1, 2N-1, … (every Nth)
//   prob:P[:SEED]  seeded Bernoulli(P) per evaluation — deterministic for
//                  a given seed and hit sequence
//   window:A:B     hit indices in [A, B) — a bounded failure burst
//
// Spec grammar (one string arms many points):
//   point=action@trigger[;point=action@trigger…]
//   e.g. "store.write.fsync=eio@every:3;store.write.data=enospc@window:2:6"
//
// Determinism: all trigger state (hit counters, the probability RNG) is
// per-point and advances only on evaluation, so a single-threaded test
// replays bit-identically. Evaluation under concurrency is serialized by
// the registry mutex — armed points are a chaos-mode cost, never a hot
// path.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace viewmap::failpoint {

enum class Action : std::uint8_t {
  kNone = 0,   ///< trigger did not fire: proceed
  kEIO,        ///< fail with errno EIO
  kENOSPC,     ///< fail with errno ENOSPC
  kShortWrite, ///< persist a prefix, then fail with EIO
  kDelay,      ///< sleep, then proceed (evaluate() performs the sleep)
  kError,      ///< generic failure, no errno
};

/// What one evaluation of one point decided.
struct Decision {
  Action action = Action::kNone;
  [[nodiscard]] bool fires() const noexcept { return action != Action::kNone; }
  /// errno the site should report (EIO for kShortWrite too); 0 when the
  /// action carries no errno semantics (kNone, kDelay, kError).
  [[nodiscard]] int injected_errno() const noexcept;
};

namespace detail {
extern std::atomic<std::uint64_t> g_armed;  ///< count of armed points
Decision evaluate_slow(std::string_view point);
}  // namespace detail

/// True when any point anywhere is armed. The disabled-mode fast path:
/// sites gate on this before touching the registry.
[[nodiscard]] inline bool any_armed() noexcept {
  return detail::g_armed.load(std::memory_order_relaxed) != 0;
}

/// Evaluates `point`: counts the hit, applies the trigger, performs a
/// kDelay sleep itself. Unarmed points (and the whole framework when
/// nothing is armed) return kNone.
[[nodiscard]] inline Decision evaluate(std::string_view point) {
  if (!any_armed()) return {};
  return detail::evaluate_slow(point);
}

/// Convenience for errno-shaped sites: the errno to fail with, or 0 to
/// proceed. kShortWrite maps to EIO here — sites that can model the torn
/// prefix use evaluate() and inspect the action instead.
[[nodiscard]] inline int inject(std::string_view point) {
  if (!any_armed()) return 0;
  return detail::evaluate_slow(point).injected_errno();
}

/// Trigger policy for arm(). kAlways fires on every hit.
struct Trigger {
  enum class Kind : std::uint8_t { kAlways, kOnce, kEveryNth, kProbability, kWindow };
  Kind kind = Kind::kAlways;
  std::uint64_t n = 1;         ///< kEveryNth period
  std::uint64_t from = 0;      ///< kWindow [from, to) in hit index
  std::uint64_t to = 0;
  double p = 0.0;              ///< kProbability
  std::uint64_t seed = 0x5eed; ///< kProbability RNG seed

  [[nodiscard]] static Trigger always() { return {}; }
  [[nodiscard]] static Trigger once() { return {Kind::kOnce}; }
  [[nodiscard]] static Trigger every_nth(std::uint64_t n);
  [[nodiscard]] static Trigger probability(double p, std::uint64_t seed = 0x5eed);
  [[nodiscard]] static Trigger window(std::uint64_t from, std::uint64_t to);
};

/// Arms (or re-arms, resetting counters) one point.
void arm(std::string point, Action action, Trigger trigger = Trigger::always(),
         std::chrono::milliseconds delay = std::chrono::milliseconds{0});

/// Parses and arms a `point=action@trigger[;…]` spec (see header
/// comment). Returns how many points were armed; throws
/// std::invalid_argument naming the bad clause on a parse error, in
/// which case NOTHING was armed (the whole spec is validated first).
std::size_t arm_from_spec(std::string_view spec);

/// Arms from the VIEWMAP_FAILPOINTS environment variable, if set.
/// Returns points armed (0 when unset/empty). Call explicitly from a
/// composition root — nothing reads the environment behind your back.
std::size_t arm_from_env();

/// Disarms one point / every point. Counters for disarmed points are
/// dropped.
void disarm(std::string_view point);
void disarm_all();

/// Per-point observability: evaluations seen / times the trigger fired
/// (kDelay counts as a fire). Zeros for unknown points.
struct PointStats {
  std::uint64_t hits = 0;
  std::uint64_t fires = 0;
};
[[nodiscard]] PointStats stats(std::string_view point);

/// Total fires across all points since the last disarm_all() — the chaos
/// harness's "≥ N faults actually injected" assertion reads this.
[[nodiscard]] std::uint64_t total_fires();

/// Names of currently armed points, sorted (diagnostics, --failpoints
/// echo).
[[nodiscard]] std::vector<std::string> armed_points();

}  // namespace viewmap::failpoint
