// Endian-stable binary serialization helpers.
//
// ViewMap's VD wire format (paper §6.1) is a fixed 72-byte message; this
// header provides the little building blocks used to produce and consume
// such messages deterministically on any host.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <vector>

namespace viewmap {

/// Appends fixed-width little-endian fields to a growing byte buffer.
class ByteWriter {
 public:
  ByteWriter() = default;
  explicit ByteWriter(std::size_t reserve) { buf_.reserve(reserve); }

  void put_u8(std::uint8_t v) { buf_.push_back(v); }
  void put_u16(std::uint16_t v) { put_le(v); }
  void put_u32(std::uint32_t v) { put_le(v); }
  void put_u64(std::uint64_t v) { put_le(v); }
  void put_i64(std::int64_t v) { put_le(static_cast<std::uint64_t>(v)); }

  /// IEEE-754 binary64, bit pattern serialized little-endian.
  void put_f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    put_le(bits);
  }

  /// IEEE-754 binary32.
  void put_f32(float v) {
    std::uint32_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    put_le(bits);
  }

  void put_bytes(std::span<const std::uint8_t> b) {
    buf_.insert(buf_.end(), b.begin(), b.end());
  }

  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const noexcept { return buf_; }
  [[nodiscard]] std::vector<std::uint8_t> take() && noexcept { return std::move(buf_); }
  [[nodiscard]] std::size_t size() const noexcept { return buf_.size(); }

 private:
  template <typename T>
  void put_le(T v) {
    for (std::size_t i = 0; i < sizeof(T); ++i)
      buf_.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xff));
  }

  std::vector<std::uint8_t> buf_;
};

/// Consumes fixed-width little-endian fields from a byte span.
/// Throws std::out_of_range on underrun — a malformed message is a caller
/// error surfaced loudly, never silent garbage.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint8_t get_u8() { return get_le<std::uint8_t>(); }
  std::uint16_t get_u16() { return get_le<std::uint16_t>(); }
  std::uint32_t get_u32() { return get_le<std::uint32_t>(); }
  std::uint64_t get_u64() { return get_le<std::uint64_t>(); }
  std::int64_t get_i64() { return static_cast<std::int64_t>(get_le<std::uint64_t>()); }

  double get_f64() {
    auto bits = get_le<std::uint64_t>();
    double v;
    std::memcpy(&v, &bits, sizeof v);
    return v;
  }

  float get_f32() {
    auto bits = get_le<std::uint32_t>();
    float v;
    std::memcpy(&v, &bits, sizeof v);
    return v;
  }

  void get_bytes(std::span<std::uint8_t> out) {
    require(out.size());
    std::memcpy(out.data(), data_.data() + pos_, out.size());
    pos_ += out.size();
  }

  [[nodiscard]] std::size_t remaining() const noexcept { return data_.size() - pos_; }

 private:
  template <typename T>
  T get_le() {
    require(sizeof(T));
    T v{};
    for (std::size_t i = 0; i < sizeof(T); ++i)
      v = static_cast<T>(v | (static_cast<T>(data_[pos_ + i]) << (8 * i)));
    pos_ += sizeof(T);
    return v;
  }

  void require(std::size_t n) const {
    if (pos_ + n > data_.size())
      throw std::out_of_range("ByteReader: truncated message");
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace viewmap
