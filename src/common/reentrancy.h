// Debug-build enforcement of single-caller contracts.
//
// Several hot paths (ViewMapService::ingest_uploads(), checkpoint-per-
// store) are documented "one caller at a time" and stay lock-free on
// that promise. A violation is a programming error in the embedding
// process, not a runtime condition to handle — so in debug builds we
// crash loudly at the exact call site instead of letting two drains
// interleave and corrupt last-call statistics. Release builds compile
// the guard away entirely (see the NDEBUG use sites).
#pragma once

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace viewmap {

/// RAII occupancy check over a caller-owned flag: the constructor aborts
/// the process if the flag is already held, i.e. if a second thread (or
/// a re-entrant call on the same thread) entered the guarded region
/// before the first left it. acquire/release ordering makes the state
/// the guarded region mutated visible to the next legitimate entrant.
class ReentrancyGuard {
 public:
  ReentrancyGuard(std::atomic<bool>& flag, const char* what) : flag_(flag) {
    if (flag_.exchange(true, std::memory_order_acquire)) {
      std::fprintf(stderr, "fatal: re-entered single-caller %s\n", what);
      std::abort();
    }
  }
  ~ReentrancyGuard() { flag_.store(false, std::memory_order_release); }

  ReentrancyGuard(const ReentrancyGuard&) = delete;
  ReentrancyGuard& operator=(const ReentrancyGuard&) = delete;

 private:
  std::atomic<bool>& flag_;
};

}  // namespace viewmap
