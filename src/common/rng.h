// Deterministic random number generation.
//
// Every stochastic component in this repository draws from an explicitly
// seeded Rng so that simulations, tests, and benchmark tables are exactly
// reproducible run-to-run (DESIGN.md §5 "Determinism").
#pragma once

#include <algorithm>
#include <cstdint>
#include <random>
#include <span>
#include <vector>

namespace viewmap {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Derive an independent child stream; `salt` separates subsystems that
  /// must not share a sequence (e.g. mobility vs. radio fading).
  [[nodiscard]] Rng fork(std::uint64_t salt) {
    return Rng(engine_() ^ (salt * 0x9e3779b97f4a7c15ull));
  }

  std::uint64_t next_u64() { return engine_(); }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  std::size_t index(std::size_t n) {
    return static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(n) - 1));
  }

  double uniform(double lo = 0.0, double hi = 1.0) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  double normal(double mean, double stddev) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  double exponential(double rate) {
    return std::exponential_distribution<double>(rate)(engine_);
  }

  bool bernoulli(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return std::bernoulli_distribution(p)(engine_);
  }

  void fill_bytes(std::span<std::uint8_t> out) {
    std::size_t i = 0;
    while (i < out.size()) {
      std::uint64_t word = engine_();
      for (int b = 0; b < 8 && i < out.size(); ++b, ++i)
        out[i] = static_cast<std::uint8_t>(word >> (8 * b));
    }
  }

  template <typename T>
  void shuffle(std::vector<T>& v) {
    std::shuffle(v.begin(), v.end(), engine_);
  }

  /// Sample k distinct indices from [0, n). k may exceed n, in which case
  /// all n indices are returned.
  std::vector<std::size_t> sample_indices(std::size_t n, std::size_t k) {
    std::vector<std::size_t> idx(n);
    for (std::size_t i = 0; i < n; ++i) idx[i] = i;
    // Partial Fisher-Yates: only the first min(k,n) positions are needed.
    const std::size_t take = k < n ? k : n;
    for (std::size_t i = 0; i < take; ++i) {
      std::size_t j = i + index(n - i);
      std::swap(idx[i], idx[j]);
    }
    idx.resize(take);
    return idx;
  }

  std::mt19937_64& engine() noexcept { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace viewmap
