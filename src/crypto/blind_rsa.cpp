#include "crypto/blind_rsa.h"

#include <openssl/bn.h>
#include <openssl/core_names.h>
#include <openssl/evp.h>
#include <openssl/rsa.h>

#include <cstring>
#include <stdexcept>

#include "common/rng.h"
#include "crypto/sha256.h"

namespace viewmap::crypto {

namespace {

struct BnDeleter {
  void operator()(BIGNUM* bn) const noexcept { BN_free(bn); }
};
struct BnCtxDeleter {
  void operator()(BN_CTX* ctx) const noexcept { BN_CTX_free(ctx); }
};
using BnPtr = std::unique_ptr<BIGNUM, BnDeleter>;
using BnCtxPtr = std::unique_ptr<BN_CTX, BnCtxDeleter>;

[[noreturn]] void fail(const char* what) { throw std::runtime_error(what); }

BnPtr make_bn() {
  BnPtr bn(BN_new());
  if (!bn) fail("blind_rsa: BN_new failed");
  return bn;
}

BnPtr from_bytes(const BigBytes& bytes) {
  BnPtr bn(BN_bin2bn(bytes.data(), static_cast<int>(bytes.size()), nullptr));
  if (!bn) fail("blind_rsa: BN_bin2bn failed");
  return bn;
}

BigBytes to_bytes(const BIGNUM* bn) {
  BigBytes out(static_cast<std::size_t>(BN_num_bytes(bn)));
  if (!out.empty()) BN_bn2bin(bn, out.data());
  return out;
}

}  // namespace

struct RsaSigner::Impl {
  BnPtr n;
  BnPtr e;
  BnPtr d;
  RsaPublicKey pub;
};

RsaSigner::RsaSigner(int bits) : impl_(std::make_unique<Impl>()) {
  EVP_PKEY* pkey = EVP_RSA_gen(static_cast<unsigned int>(bits));
  if (pkey == nullptr) fail("blind_rsa: RSA key generation failed");

  BIGNUM* n = nullptr;
  BIGNUM* e = nullptr;
  BIGNUM* d = nullptr;
  const bool ok = EVP_PKEY_get_bn_param(pkey, OSSL_PKEY_PARAM_RSA_N, &n) == 1 &&
                  EVP_PKEY_get_bn_param(pkey, OSSL_PKEY_PARAM_RSA_E, &e) == 1 &&
                  EVP_PKEY_get_bn_param(pkey, OSSL_PKEY_PARAM_RSA_D, &d) == 1;
  EVP_PKEY_free(pkey);
  if (!ok) {
    BN_free(n);
    BN_free(e);
    BN_free(d);
    fail("blind_rsa: failed to extract key parameters");
  }
  impl_->n.reset(n);
  impl_->e.reset(e);
  impl_->d.reset(d);
  impl_->pub.n = to_bytes(n);
  impl_->pub.e = to_bytes(e);
}

RsaSigner::~RsaSigner() = default;
RsaSigner::RsaSigner(RsaSigner&&) noexcept = default;
RsaSigner& RsaSigner::operator=(RsaSigner&&) noexcept = default;

const RsaPublicKey& RsaSigner::public_key() const noexcept { return impl_->pub; }

BigBytes RsaSigner::sign_blinded(const BigBytes& blinded) const {
  BnCtxPtr ctx(BN_CTX_new());
  if (!ctx) fail("blind_rsa: BN_CTX_new failed");
  BnPtr b = from_bytes(blinded);
  if (BN_cmp(b.get(), impl_->n.get()) >= 0)
    fail("blind_rsa: blinded message out of range");
  BnPtr s = make_bn();
  if (BN_mod_exp(s.get(), b.get(), impl_->d.get(), impl_->n.get(), ctx.get()) != 1)
    fail("blind_rsa: mod_exp(d) failed");
  return to_bytes(s.get());
}

BigBytes full_domain_hash(std::span<const std::uint8_t> message,
                          const RsaPublicKey& pub) {
  // Expand SHA-256 with a counter (MGF1-style) to the modulus width, then
  // reduce mod N. Deterministic in the message and key.
  BnPtr n = from_bytes(pub.n);
  const std::size_t width = pub.n.size();
  std::vector<std::uint8_t> expanded;
  expanded.reserve(width + 32);
  std::uint32_t counter = 0;
  while (expanded.size() < width) {
    Sha256 h;
    std::uint8_t ctr_bytes[4] = {
        static_cast<std::uint8_t>(counter >> 24), static_cast<std::uint8_t>(counter >> 16),
        static_cast<std::uint8_t>(counter >> 8), static_cast<std::uint8_t>(counter)};
    h.update(ctr_bytes).update(message);
    const Hash32 block = h.finish();
    expanded.insert(expanded.end(), block.bytes.begin(), block.bytes.end());
    ++counter;
  }
  expanded.resize(width);

  BnCtxPtr ctx(BN_CTX_new());
  BnPtr x(BN_bin2bn(expanded.data(), static_cast<int>(expanded.size()), nullptr));
  BnPtr r = make_bn();
  if (!ctx || !x || BN_mod(r.get(), x.get(), n.get(), ctx.get()) != 1)
    fail("blind_rsa: FDH reduction failed");
  return to_bytes(r.get());
}

BlindedMessage blind(std::span<const std::uint8_t> message, const RsaPublicKey& pub,
                     std::uint64_t rng_seed) {
  BnCtxPtr ctx(BN_CTX_new());
  if (!ctx) fail("blind_rsa: BN_CTX_new failed");
  BnPtr n = from_bytes(pub.n);
  BnPtr e = from_bytes(pub.e);
  BnPtr hm = from_bytes(full_domain_hash(message, pub));

  // Draw r until gcd(r, N) = 1; with an RSA modulus this virtually always
  // succeeds on the first draw.
  Rng rng(rng_seed);
  BnPtr r = make_bn();
  BnPtr gcd = make_bn();
  std::vector<std::uint8_t> rbytes(pub.n.size());
  for (;;) {
    rng.fill_bytes(rbytes);
    if (BN_bin2bn(rbytes.data(), static_cast<int>(rbytes.size()), r.get()) == nullptr)
      fail("blind_rsa: r generation failed");
    if (BN_mod(r.get(), r.get(), n.get(), ctx.get()) != 1) fail("blind_rsa: r mod N");
    if (BN_is_zero(r.get()) || BN_is_one(r.get())) continue;
    if (BN_gcd(gcd.get(), r.get(), n.get(), ctx.get()) != 1) fail("blind_rsa: gcd");
    if (BN_is_one(gcd.get())) break;
  }

  // b = H(m) * r^e mod N
  BnPtr re = make_bn();
  BnPtr b = make_bn();
  if (BN_mod_exp(re.get(), r.get(), e.get(), n.get(), ctx.get()) != 1 ||
      BN_mod_mul(b.get(), hm.get(), re.get(), n.get(), ctx.get()) != 1)
    fail("blind_rsa: blinding failed");

  return BlindedMessage{to_bytes(b.get()), to_bytes(r.get())};
}

BigBytes unblind(const BigBytes& blind_signature, const BigBytes& blinding_secret,
                 const RsaPublicKey& pub) {
  BnCtxPtr ctx(BN_CTX_new());
  if (!ctx) fail("blind_rsa: BN_CTX_new failed");
  BnPtr n = from_bytes(pub.n);
  BnPtr s_blind = from_bytes(blind_signature);
  BnPtr r = from_bytes(blinding_secret);

  BnPtr r_inv(BN_mod_inverse(nullptr, r.get(), n.get(), ctx.get()));
  if (!r_inv) fail("blind_rsa: r not invertible");
  BnPtr s = make_bn();
  if (BN_mod_mul(s.get(), s_blind.get(), r_inv.get(), n.get(), ctx.get()) != 1)
    fail("blind_rsa: unblinding failed");
  return to_bytes(s.get());
}

bool verify_signature(std::span<const std::uint8_t> message, const BigBytes& signature,
                      const RsaPublicKey& pub) {
  BnCtxPtr ctx(BN_CTX_new());
  if (!ctx) fail("blind_rsa: BN_CTX_new failed");
  BnPtr n = from_bytes(pub.n);
  BnPtr e = from_bytes(pub.e);
  BnPtr s = from_bytes(signature);
  if (BN_cmp(s.get(), n.get()) >= 0) return false;
  BnPtr check = make_bn();
  if (BN_mod_exp(check.get(), s.get(), e.get(), n.get(), ctx.get()) != 1)
    fail("blind_rsa: mod_exp(e) failed");
  BnPtr hm = from_bytes(full_domain_hash(message, pub));
  return BN_cmp(check.get(), hm.get()) == 0;
}

}  // namespace viewmap::crypto
