#include "crypto/hash_chain.h"

#include "common/bytes.h"

namespace viewmap::crypto {

namespace {

/// Serializes the bound metadata exactly as the VD wire layout orders it:
/// T | L | F  (see dsrc/messages.h for the full 72-byte frame).
void put_meta(ByteWriter& w, const ChainStepMeta& meta) {
  w.put_i64(meta.time);
  w.put_f32(meta.loc_x);
  w.put_f32(meta.loc_y);
  w.put_u64(meta.file_size);
}

}  // namespace

CascadedHasher::CascadedHasher(const Id16& vp_id) noexcept {
  last_.bytes = vp_id.bytes;  // H_0 = R_u
}

Hash16 CascadedHasher::step(const ChainStepMeta& meta,
                            std::span<const std::uint8_t> chunk) {
  last_ = chain_step(last_, meta, chunk);
  ++steps_;
  return last_;
}

Hash16 chain_step(const Hash16& prev, const ChainStepMeta& meta,
                  std::span<const std::uint8_t> chunk) {
  ByteWriter header(40);
  put_meta(header, meta);
  Sha256 h;
  h.update(header.bytes());
  h.update(prev.bytes);
  h.update(chunk);
  return h.finish().truncated();
}

Hash16 normal_hash(const ChainStepMeta& meta,
                   std::span<const std::uint8_t> whole_video_so_far) {
  ByteWriter header(40);
  put_meta(header, meta);
  Sha256 h;
  h.update(header.bytes());
  h.update(whole_video_so_far);
  return h.finish().truncated();
}

bool verify_chain(const Id16& vp_id, std::span<const ChainStepMeta> metas,
                  std::span<const Hash16> expected,
                  std::span<const std::uint8_t> video,
                  std::span<const std::uint64_t> chunk_offsets) {
  if (metas.size() != expected.size()) return false;
  if (chunk_offsets.size() != metas.size() + 1) return false;
  if (!metas.empty() && chunk_offsets.back() != video.size()) return false;

  Hash16 h;
  h.bytes = vp_id.bytes;
  for (std::size_t i = 0; i < metas.size(); ++i) {
    const std::uint64_t lo = chunk_offsets[i];
    const std::uint64_t hi = chunk_offsets[i + 1];
    if (lo > hi || hi > video.size()) return false;
    h = chain_step(h, metas[i], video.subspan(lo, hi - lo));
    if (h != expected[i]) return false;
  }
  return true;
}

}  // namespace viewmap::crypto
