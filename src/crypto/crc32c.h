// CRC32C (Castagnoli, the iSCSI/ext4 polynomial) over byte spans.
//
// The v2 segment codec (store/segment_store) needs a whole-file
// integrity check cheap enough to run over gigabytes on every restart.
// SHA-256 — the right tool for content *identity* (digest-named
// segments, manifest entries) — costs seconds per gigabyte even with
// SHA-NI; a torn-write/bit-rot detector does not need collision
// resistance, only error detection, which CRC32C provides at memory
// bandwidth. The hardware path uses the SSE4.2 crc32 instruction when
// the CPU has it (runtime-dispatched — no build-flag changes, binaries
// stay runnable on any x86-64); the fallback is a slicing-by-8 table.
//
// Standard CRC32C framing: initial value ~0, final complement, so
// crc32c("123456789") == 0xE3069283 (the RFC 3720 check value).
#pragma once

#include <cstdint>
#include <span>

namespace viewmap::crypto {

/// CRC32C of `data`. For incremental use, feed the previous return value
/// back as `seed` (the chaining is associative over concatenation:
/// crc32c(a+b) == crc32c(b, crc32c(a))).
[[nodiscard]] std::uint32_t crc32c(std::span<const std::uint8_t> data,
                                   std::uint32_t seed = 0);

}  // namespace viewmap::crypto
