// Cascaded video hashing (paper §5.1.1, Fig. 4).
//
// Every second i, a vehicle must broadcast a fresh digest of its
// currently-recording video u. Rehashing the whole file each second grows
// linearly with recording time and misses the 1-second deadline past ~20 s
// (paper Fig. 8). ViewMap instead chains:
//
//     H_i = H( T_i | L_i | F_i | H_{i-1} | u[i-1..i] ),   H_0 = R_u
//
// so each step hashes only the newly recorded chunk — constant time.
// The same chain lets the system later validate a solicited video against
// its stored VP by replaying the 60 steps (§5.2.3).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/types.h"
#include "crypto/sha256.h"

namespace viewmap::crypto {

/// Per-second metadata bound into each chain step. Mirrors the VD header
/// fields: time, location, and cumulative file size.
struct ChainStepMeta {
  TimeSec time = 0;       ///< T_i — wall-clock second
  float loc_x = 0.0f;     ///< L_i — position (meters, local frame)
  float loc_y = 0.0f;
  std::uint64_t file_size = 0;  ///< F_i — video bytes recorded so far
};

/// Incremental cascaded hasher owned by the recording vehicle.
class CascadedHasher {
 public:
  /// `vp_id` is R_u; the paper anchors the chain with H_0 = R_u.
  explicit CascadedHasher(const Id16& vp_id) noexcept;

  /// Absorb the chunk recorded during second i and produce H_i.
  /// Cost is O(|chunk|) regardless of total video length.
  Hash16 step(const ChainStepMeta& meta, std::span<const std::uint8_t> chunk);

  [[nodiscard]] const Hash16& last_hash() const noexcept { return last_; }
  [[nodiscard]] int steps_done() const noexcept { return steps_; }

 private:
  Hash16 last_;
  int steps_ = 0;
};

/// Baseline "normal" hasher used by the Fig. 8 comparison: hashes the
/// entire video prefix every second. Provided only to reproduce the
/// evaluation; real vehicles use CascadedHasher.
[[nodiscard]] Hash16 normal_hash(const ChainStepMeta& meta,
                                 std::span<const std::uint8_t> whole_video_so_far);

/// One step of the chain computed statelessly (system-side validation).
[[nodiscard]] Hash16 chain_step(const Hash16& prev, const ChainStepMeta& meta,
                                std::span<const std::uint8_t> chunk);

/// Replay a full chain over a solicited video.
///
/// `metas[i]` and the chunk `video[chunk_offsets[i] .. chunk_offsets[i+1])`
/// must reproduce `expected[i]` for every i; `chunk_offsets` has one more
/// entry than `metas` (final entry = video size). Returns true iff every
/// step matches — this is the system's §5.2.3 "validated via cascading hash
/// operations against the system-owned VP".
[[nodiscard]] bool verify_chain(const Id16& vp_id,
                                std::span<const ChainStepMeta> metas,
                                std::span<const Hash16> expected,
                                std::span<const std::uint8_t> video,
                                std::span<const std::uint64_t> chunk_offsets);

}  // namespace viewmap::crypto
