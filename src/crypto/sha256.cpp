#include "crypto/sha256.h"

#include <openssl/evp.h>

#include <stdexcept>
#include <utility>

namespace viewmap::crypto {

namespace {
EVP_MD_CTX* as_ctx(void* p) { return static_cast<EVP_MD_CTX*>(p); }
}  // namespace

Hash32 sha256(std::span<const std::uint8_t> data) {
  Hash32 out;
  unsigned int len = 0;
  if (EVP_Digest(data.data(), data.size(), out.bytes.data(), &len,
                 EVP_sha256(), nullptr) != 1 ||
      len != out.bytes.size())
    throw std::runtime_error("sha256: EVP_Digest failed");
  return out;
}

Sha256::Sha256() : ctx_(EVP_MD_CTX_new()) {
  if (ctx_ == nullptr || EVP_DigestInit_ex(as_ctx(ctx_), EVP_sha256(), nullptr) != 1)
    throw std::runtime_error("Sha256: init failed");
}

Sha256::~Sha256() {
  if (ctx_ != nullptr) EVP_MD_CTX_free(as_ctx(ctx_));
}

Sha256::Sha256(Sha256&& other) noexcept : ctx_(std::exchange(other.ctx_, nullptr)) {}

Sha256& Sha256::operator=(Sha256&& other) noexcept {
  if (this != &other) {
    if (ctx_ != nullptr) EVP_MD_CTX_free(as_ctx(ctx_));
    ctx_ = std::exchange(other.ctx_, nullptr);
  }
  return *this;
}

Sha256& Sha256::update(std::span<const std::uint8_t> data) {
  if (EVP_DigestUpdate(as_ctx(ctx_), data.data(), data.size()) != 1)
    throw std::runtime_error("Sha256: update failed");
  return *this;
}

Hash32 Sha256::finish() {
  Hash32 out;
  unsigned int len = 0;
  if (EVP_DigestFinal_ex(as_ctx(ctx_), out.bytes.data(), &len) != 1 ||
      len != out.bytes.size())
    throw std::runtime_error("Sha256: final failed");
  if (EVP_DigestInit_ex(as_ctx(ctx_), EVP_sha256(), nullptr) != 1)
    throw std::runtime_error("Sha256: reinit failed");
  return out;
}

Id16 derive_vp_id(std::span<const std::uint8_t> secret) {
  const Hash16 h = sha256(secret).truncated();
  Id16 id;
  id.bytes = h.bytes;
  return id;
}

}  // namespace viewmap::crypto
