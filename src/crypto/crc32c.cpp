#include "crypto/crc32c.h"

#include <array>
#include <cstring>

namespace viewmap::crypto {

namespace {

constexpr std::uint32_t kPoly = 0x82f63b78u;  // Castagnoli, reflected

/// Slicing-by-8 tables, built once at first use. Table 0 is the plain
/// bitwise CRC table; table k folds a byte that is k positions ahead.
struct Tables {
  std::array<std::array<std::uint32_t, 256>, 8> t{};
  Tables() {
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit)
        crc = (crc >> 1) ^ ((crc & 1u) ? kPoly : 0u);
      t[0][i] = crc;
    }
    for (std::uint32_t i = 0; i < 256; ++i)
      for (std::size_t k = 1; k < 8; ++k)
        t[k][i] = (t[k - 1][i] >> 8) ^ t[0][t[k - 1][i] & 0xffu];
  }
};

std::uint32_t crc32c_sw(const std::uint8_t* p, std::size_t n, std::uint32_t crc) {
  static const Tables tables;
  const auto& t = tables.t;
  while (n >= 8) {
    std::uint64_t word;
    std::memcpy(&word, p, 8);
    word ^= crc;  // little-endian: the CRC folds into the low 4 bytes
    crc = t[7][word & 0xffu] ^ t[6][(word >> 8) & 0xffu] ^
          t[5][(word >> 16) & 0xffu] ^ t[4][(word >> 24) & 0xffu] ^
          t[3][(word >> 32) & 0xffu] ^ t[2][(word >> 40) & 0xffu] ^
          t[1][(word >> 48) & 0xffu] ^ t[0][(word >> 56) & 0xffu];
    p += 8;
    n -= 8;
  }
  while (n-- > 0) crc = (crc >> 8) ^ t[0][(crc ^ *p++) & 0xffu];
  return crc;
}

#if defined(__x86_64__) && defined(__GNUC__)
__attribute__((target("sse4.2"))) std::uint32_t crc32c_hw(const std::uint8_t* p,
                                                          std::size_t n,
                                                          std::uint32_t crc) {
  std::uint64_t c = crc;
  while (n >= 8) {
    std::uint64_t word;
    std::memcpy(&word, p, 8);
    c = __builtin_ia32_crc32di(c, word);
    p += 8;
    n -= 8;
  }
  auto c32 = static_cast<std::uint32_t>(c);
  while (n-- > 0) c32 = __builtin_ia32_crc32qi(c32, *p++);
  return c32;
}

bool have_sse42() {
  static const bool yes = __builtin_cpu_supports("sse4.2") != 0;
  return yes;
}
#endif

}  // namespace

std::uint32_t crc32c(std::span<const std::uint8_t> data, std::uint32_t seed) {
  std::uint32_t crc = ~seed;
#if defined(__x86_64__) && defined(__GNUC__)
  if (have_sse42()) return ~crc32c_hw(data.data(), data.size(), crc);
#endif
  return ~crc32c_sw(data.data(), data.size(), crc);
}

}  // namespace viewmap::crypto
