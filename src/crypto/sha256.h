// SHA-256 primitives (OpenSSL EVP backed).
//
// ViewMap uses a cryptographic hash H(·) for: VD cascaded hashes (§5.1.1),
// VP identifiers R = H(Q) (§5.1.1), and full-domain hashing inside the
// blind-signature reward protocol (Appendix A).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/types.h"

namespace viewmap::crypto {

/// One-shot SHA-256.
[[nodiscard]] Hash32 sha256(std::span<const std::uint8_t> data);

/// Incremental SHA-256 for multi-part inputs (avoids concatenation copies
/// when hashing `T | L | F | H_{i-1} | chunk`).
class Sha256 {
 public:
  Sha256();
  ~Sha256();
  Sha256(const Sha256&) = delete;
  Sha256& operator=(const Sha256&) = delete;
  Sha256(Sha256&& other) noexcept;
  Sha256& operator=(Sha256&& other) noexcept;

  Sha256& update(std::span<const std::uint8_t> data);
  /// Finalizes and resets the context so the object can be reused.
  [[nodiscard]] Hash32 finish();

 private:
  void* ctx_;  // EVP_MD_CTX, kept opaque to avoid leaking OpenSSL headers
};

/// VP identifier derivation: R = H(Q) truncated to 128 bits (§5.1.1).
[[nodiscard]] Id16 derive_vp_id(std::span<const std::uint8_t> secret);

}  // namespace viewmap::crypto
