// Chaum blind signatures over RSA (paper §5.3 and Appendix A).
//
// The reward protocol:
//   (1) user A proves ownership of video u by revealing Q_u (R_u = H(Q_u)),
//   (2) A blinds message hashes:  b_i = H(m_i) · r_i^e  (mod N),
//   (3) the system signs blindly: s'_i = b_i^d          (mod N),
//   (4) A unblinds:               s_i  = s'_i · r_i^-1  (mod N),
// yielding cash (m_i, s_i) with s_i^e ≡ H(m_i) (mod N). The system never
// sees m_i in the clear, so cash is unlinkable to the video — yet anyone
// can verify the system's signature, and the bank rejects double spends.
//
// Implementation notes: textbook RSA with a full-domain hash (SHA-256
// expanded by counter to the modulus width), which is the construction the
// paper cites [16]. Keys are generated via OpenSSL 3 EVP; the modular
// arithmetic uses BIGNUM directly because EVP offers no blind-sign
// operation.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

namespace viewmap::crypto {

/// Big-endian byte encoding of a big integer, the interchange format for
/// all protocol values (blinded messages, signatures, key parts).
using BigBytes = std::vector<std::uint8_t>;

/// Public half of the system's signing key: (N, e).
struct RsaPublicKey {
  BigBytes n;
  BigBytes e;

  friend bool operator==(const RsaPublicKey&, const RsaPublicKey&) = default;
};

/// The system's signing key. Holds d privately; exposes blind signing only.
class RsaSigner {
 public:
  /// Generates a fresh RSA key. 2048 bits for deployment; tests may use
  /// 1024 to keep key generation fast (security is not under test there).
  explicit RsaSigner(int bits = 2048);
  ~RsaSigner();
  RsaSigner(RsaSigner&&) noexcept;
  RsaSigner& operator=(RsaSigner&&) noexcept;
  RsaSigner(const RsaSigner&) = delete;
  RsaSigner& operator=(const RsaSigner&) = delete;

  [[nodiscard]] const RsaPublicKey& public_key() const noexcept;

  /// Step (3): s' = blinded^d mod N. The signer cannot see H(m).
  [[nodiscard]] BigBytes sign_blinded(const BigBytes& blinded) const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// A message blinded by the client, plus the secret needed to unblind.
struct BlindedMessage {
  BigBytes blinded;         ///< b = H(m) · r^e mod N — safe to send
  BigBytes blinding_secret; ///< r — never leaves the client
};

/// Full-domain hash of an arbitrary message to [0, N) (deterministic).
[[nodiscard]] BigBytes full_domain_hash(std::span<const std::uint8_t> message,
                                        const RsaPublicKey& pub);

/// Step (2). `rng_seed` selects r deterministically for reproducible tests;
/// distinct seeds give computationally unlinkable blindings.
[[nodiscard]] BlindedMessage blind(std::span<const std::uint8_t> message,
                                   const RsaPublicKey& pub,
                                   std::uint64_t rng_seed);

/// Step (4): s = s' · r^-1 mod N.
[[nodiscard]] BigBytes unblind(const BigBytes& blind_signature,
                               const BigBytes& blinding_secret,
                               const RsaPublicKey& pub);

/// Anyone-side verification: s^e ≡ H(m) (mod N).
[[nodiscard]] bool verify_signature(std::span<const std::uint8_t> message,
                                    const BigBytes& signature,
                                    const RsaPublicKey& pub);

}  // namespace viewmap::crypto
