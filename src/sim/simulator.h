// Traffic + DSRC + ViewMap co-simulation (ns-3/SUMO substitute, §8).
//
// Time-stepped at 1 Hz, matching the VD broadcast cadence. Each second:
// vehicles move, record a video chunk, advance their cascaded hash,
// broadcast a VD, and screen/store VDs received over the radio model.
// Each minute boundary: VPs are compiled, guard VPs fabricated, and
// everything is appended to the result set together with the ground truth
// the privacy evaluation needs (which the real system never sees).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/stats.h"
#include "common/types.h"
#include "dsrc/channel.h"
#include "road/city.h"
#include "sim/mobility.h"
#include "vp/guard.h"
#include "vp/video.h"
#include "vp/vp_builder.h"

namespace viewmap::sim {

struct SimConfig {
  std::uint64_t seed = 1;
  int vehicle_count = 100;
  double mean_speed_kmh = 50.0;
  double speed_spread_frac = 0.2;  ///< per-vehicle speed ∈ mean·(1±spread)
  /// Fraction of the fleet parked in recording mode (§2 parking mode):
  /// stationary witnesses that still broadcast/collect VDs.
  double parked_fraction = 0.0;
  int minutes = 10;

  /// Synthetic video chunk bytes per second. Large simulations use small
  /// chunks; the hash-chain code path is identical (see vp/video.h).
  std::uint64_t video_bytes_per_second = 32;

  bool guards_enabled = true;
  vp::GuardConfig guard{};

  dsrc::RadioConfig radio{};
  double traffic_blocker_density_per_m = 0.0;  ///< heavy-traffic blockage
  /// Mean dwell of the per-pair vehicular-blockage Markov state: a truck
  /// between two vehicles stays there ~this long before traffic reshuffles.
  double traffic_block_dwell_s = 12.0;

  /// Camera view model for the §7.2.2 "On Video" ground truth: a vehicle
  /// captures another if it is within range, inside the forward field of
  /// view, and in line of sight.
  double camera_range_m = 250.0;
  double camera_fov_deg = 130.0;

  bool collect_pair_stats = false;  ///< per-pair-per-minute observations
  bool keep_videos = false;         ///< retain recorded videos + secrets
  std::size_t storage_minutes = 60; ///< dashcam ring-buffer capacity
};

/// One VP as produced by the fleet, with ground truth attached.
struct ProfileRecord {
  vp::ViewProfile profile;
  VehicleId creator;  ///< ground truth — never exposed to the system
  bool guard = false; ///< guard VPs are deleted from the vehicle after upload
};

/// Owner-retained state for an actual VP (enables solicitation replies).
struct OwnedVp {
  VehicleId vehicle;
  Id16 vp_id;
  TimeSec unit_time;
  vp::VpSecret secret;
};

/// Per-(pair, minute) observation for the §7.2 correlation analysis.
struct PairMinuteObservation {
  VehicleId a;
  VehicleId b;
  TimeSec unit_time;
  double min_distance_m = 0.0;
  bool vp_linked = false;  ///< two-way VD exchange succeeded this minute
  bool on_video = false;   ///< either camera captured the other vehicle
  bool los_ever = false;   ///< geometric LOS existed at some second
};

struct SimResult {
  std::vector<ProfileRecord> profiles;
  std::vector<OwnedVp> owned;
  std::vector<PairMinuteObservation> pair_minutes;
  std::vector<vp::RecordedVideo> videos;  ///< when keep_videos (parallel to owned)
  RunningStats contact_seconds;  ///< continuous in-range+LOS contact durations
  RunningStats neighbors_per_vehicle_minute;
  std::size_t vd_broadcasts = 0;
  std::size_t vd_deliveries = 0;
};

/// Serializes every generated VP (actual and guard alike — the upload
/// channel must not distinguish them) in result order. Feed these to the
/// service's anonymous channel or the index ingest engine; trusted VPs
/// still go through the authenticated path separately.
[[nodiscard]] std::vector<std::vector<std::uint8_t>> upload_payloads(
    const SimResult& result);

class TrafficSimulator {
 public:
  /// Random fleet over the city's road network.
  TrafficSimulator(road::CityMap city, const SimConfig& cfg);

  /// Explicit fleet (staged scenarios, parked witnesses, …).
  TrafficSimulator(road::CityMap city, const SimConfig& cfg,
                   std::vector<VehicleMotion> fleet);

  [[nodiscard]] SimResult run();

  [[nodiscard]] const road::CityMap& city() const noexcept { return city_; }

 private:
  road::CityMap city_;
  SimConfig cfg_;
  std::vector<VehicleMotion> fleet_;
  Rng rng_;
};

}  // namespace viewmap::sim
