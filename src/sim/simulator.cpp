#include "sim/simulator.h"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>
#include <unordered_map>

namespace viewmap::sim {

namespace {

/// Uniform grid over vehicle positions for neighbor-pair discovery.
class PositionGrid {
 public:
  PositionGrid(std::span<const geo::Vec2> positions, double cell_size)
      : cell_(cell_size) {
    for (std::uint32_t i = 0; i < positions.size(); ++i)
      cells_[key(positions[i])].push_back(i);
  }

  /// Visits each unordered pair (i < j) within 3×3 neighboring cells.
  template <typename Fn>
  void for_near_pairs(std::span<const geo::Vec2> positions, double max_dist,
                      Fn&& fn) const {
    const double max2 = max_dist * max_dist;
    for (const auto& [k, members] : cells_) {
      const auto [cx, cy] = unkey(k);
      for (int dy = 0; dy <= 1; ++dy) {
        for (int dx = (dy == 0 ? 0 : -1); dx <= 1; ++dx) {
          const auto it = cells_.find(make_key(cx + dx, cy + dy));
          if (it == cells_.end()) continue;
          const bool same = (dx == 0 && dy == 0);
          for (std::size_t ai = 0; ai < members.size(); ++ai) {
            const std::uint32_t a = members[ai];
            const std::size_t start = same ? ai + 1 : 0;
            for (std::size_t bi = start; bi < it->second.size(); ++bi) {
              const std::uint32_t b = it->second[bi];
              const std::uint32_t lo = a < b ? a : b;
              const std::uint32_t hi = a < b ? b : a;
              if ((positions[lo] - positions[hi]).norm2() <= max2) fn(lo, hi);
            }
          }
        }
      }
    }
  }

 private:
  [[nodiscard]] std::int64_t key(geo::Vec2 p) const {
    return make_key(static_cast<int>(std::floor(p.x / cell_)),
                    static_cast<int>(std::floor(p.y / cell_)));
  }
  static std::int64_t make_key(int cx, int cy) {
    return (static_cast<std::int64_t>(cx) << 32) ^ (static_cast<std::uint32_t>(cy));
  }
  static std::pair<int, int> unkey(std::int64_t k) {
    return {static_cast<int>(k >> 32), static_cast<int>(static_cast<std::uint32_t>(k))};
  }

  double cell_;
  std::unordered_map<std::int64_t, std::vector<std::uint32_t>> cells_;
};

struct PairState {
  int contact_streak = 0;       ///< consecutive seconds in range + LOS
  double min_distance_m = 1e18;
  bool recv_ab = false;  ///< a's VD accepted by b at least once this minute
  bool recv_ba = false;
  bool on_video = false;
  bool los_ever = false;
  // Two-state Markov vehicular-blockage (Gilbert) channel state.
  bool traffic_blocked = false;
  bool blockage_initialized = false;
};

std::uint64_t pair_key(std::uint32_t a, std::uint32_t b) {
  return (static_cast<std::uint64_t>(a) << 32) | b;
}

/// Camera model: does the dashcam of `viewer` capture `target`?
bool captures(geo::Vec2 viewer_pos, geo::Vec2 viewer_heading, geo::Vec2 target_pos,
              double range_m, double fov_deg, bool los) {
  if (!los) return false;
  const geo::Vec2 d = target_pos - viewer_pos;
  const double dist = d.norm();
  if (dist > range_m || dist < 1e-9) return false;
  if (viewer_heading.norm2() < 1e-12) return false;  // parked: camera still on
  const double cos_angle = geo::dot(viewer_heading, d) / dist;
  const double half_fov_rad = fov_deg * std::numbers::pi / 360.0;
  return cos_angle >= std::cos(half_fov_rad);
}

}  // namespace

TrafficSimulator::TrafficSimulator(road::CityMap city, const SimConfig& cfg)
    : city_(std::move(city)), cfg_(cfg), rng_(cfg.seed) {
  if (cfg_.vehicle_count <= 0) throw std::invalid_argument("SimConfig: no vehicles");
  Rng fleet_rng = rng_.fork(0xf1ee7);
  fleet_.reserve(static_cast<std::size_t>(cfg_.vehicle_count));
  for (int i = 0; i < cfg_.vehicle_count; ++i) {
    if (fleet_rng.bernoulli(cfg_.parked_fraction)) {
      // Parking-mode recorder: parked near a random intersection, still
      // a full protocol participant.
      const auto node = static_cast<road::NodeId>(
          fleet_rng.index(city_.roads.node_count()));
      const geo::Vec2 curb{city_.roads.node_pos(node).x + fleet_rng.uniform(-8, 8),
                           city_.roads.node_pos(node).y + fleet_rng.uniform(-8, 8)};
      fleet_.push_back(VehicleMotion::stationary(curb));
      continue;
    }
    const double speed = kmh(cfg_.mean_speed_kmh) *
                         fleet_rng.uniform(1.0 - cfg_.speed_spread_frac,
                                           1.0 + cfg_.speed_spread_frac);
    fleet_.push_back(
        VehicleMotion::random_trips(city_.roads, std::max(speed, 1.0), fleet_rng));
  }
}

TrafficSimulator::TrafficSimulator(road::CityMap city, const SimConfig& cfg,
                                   std::vector<VehicleMotion> fleet)
    : city_(std::move(city)), cfg_(cfg), fleet_(std::move(fleet)), rng_(cfg.seed) {
  if (fleet_.empty()) throw std::invalid_argument("TrafficSimulator: empty fleet");
}

SimResult TrafficSimulator::run() {
  const std::size_t n = fleet_.size();
  Rng mobility_rng = rng_.fork(1);
  Rng radio_rng = rng_.fork(2);
  Rng vp_rng = rng_.fork(3);
  Rng guard_rng = rng_.fork(4);

  road::Router router(city_.roads);
  vp::GuardVpFactory guard_factory(router, cfg_.guard);
  dsrc::BroadcastChannel channel(cfg_.radio);
  geo::ObstacleIndex obstacle_index(
      std::vector<geo::Rect>(city_.buildings.begin(), city_.buildings.end()));
  dsrc::ChannelEnvironment env{&obstacle_index, cfg_.traffic_blocker_density_per_m};
  const double range = cfg_.radio.max_range_m;

  std::vector<vp::SyntheticVideoSource> cameras;
  cameras.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    cameras.emplace_back(cfg_.seed * 1000003 + i, cfg_.video_bytes_per_second);

  SimResult result;
  std::unordered_map<std::uint64_t, PairState> pair_state;
  std::vector<geo::Vec2> positions(n);
  std::vector<dsrc::ViewDigest> second_vds(n);
  std::vector<std::uint8_t> chunk;

  for (int minute = 0; minute < cfg_.minutes; ++minute) {
    const TimeSec unit = static_cast<TimeSec>(minute) * kUnitTimeSec;

    std::vector<vp::VpBuilder> builders;
    builders.reserve(n);
    for (std::size_t i = 0; i < n; ++i) builders.emplace_back(unit, vp_rng);

    // Reset per-minute pair flags, keep contact streaks across minutes.
    for (auto& [k, st] : pair_state) {
      st.min_distance_m = 1e18;
      st.recv_ab = st.recv_ba = st.on_video = st.los_ever = false;
    }

    for (int sec = 1; sec <= kDigestsPerProfile; ++sec) {
      for (std::size_t i = 0; i < n; ++i) {
        fleet_[i].advance(1.0, mobility_rng);
        positions[i] = fleet_[i].position();
      }
      for (std::size_t i = 0; i < n; ++i) {
        cameras[i].generate_chunk(unit, sec - 1, chunk);
        second_vds[i] = builders[i].tick(positions[i], chunk);
        ++result.vd_broadcasts;
      }

      PositionGrid grid(positions, range);
      std::vector<std::uint64_t> touched;
      grid.for_near_pairs(positions, range, [&](std::uint32_t a, std::uint32_t b) {
        auto& st = pair_state[pair_key(a, b)];
        touched.push_back(pair_key(a, b));
        const double d = geo::distance(positions[a], positions[b]);
        st.min_distance_m = std::min(st.min_distance_m, d);

        const bool los = channel.line_of_sight(positions[a], positions[b], env);
        if (los) st.los_ever = true;

        // Evolve the pair's vehicular-blockage state: resample at the
        // dwell rate so a blocking truck persists across seconds (and
        // can black out whole minutes under heavy traffic).
        if (!st.blockage_initialized ||
            radio_rng.bernoulli(1.0 / std::max(1.0, cfg_.traffic_block_dwell_s))) {
          st.traffic_blocked = radio_rng.bernoulli(dsrc::traffic_blockage_probability(
              d, cfg_.traffic_blocker_density_per_m));
          st.blockage_initialized = true;
        }

        // Contact accounting: continuous in-range + LOS seconds.
        if (los) {
          ++st.contact_streak;
        } else if (st.contact_streak > 0) {
          result.contact_seconds.add(st.contact_streak);
          st.contact_streak = 0;
        }

        // Camera ground truth (§7.2.2 "On Video"). A blocking truck hides
        // the other vehicle from the lens just as it shadows the radio.
        if (cfg_.collect_pair_stats && !st.on_video) {
          const bool visible = los && !st.traffic_blocked;
          st.on_video =
              captures(positions[a], fleet_[a].heading(), positions[b],
                       cfg_.camera_range_m, cfg_.camera_fov_deg, visible) ||
              captures(positions[b], fleet_[b].heading(), positions[a],
                       cfg_.camera_range_m, cfg_.camera_fov_deg, visible);
        }

        // VD broadcast deliveries, each direction independent.
        if (channel.try_deliver_with_blockage(positions[a], positions[b], env,
                                              st.traffic_blocked, radio_rng)) {
          if (builders[b].accept_neighbor(second_vds[a], positions[b])) {
            st.recv_ab = true;
            ++result.vd_deliveries;
          }
        }
        if (channel.try_deliver_with_blockage(positions[b], positions[a], env,
                                              st.traffic_blocked, radio_rng)) {
          if (builders[a].accept_neighbor(second_vds[b], positions[a])) {
            st.recv_ba = true;
            ++result.vd_deliveries;
          }
        }
      });

      // Pairs that left radio range break their contact streak.
      for (auto& [k, st] : pair_state) {
        if (st.contact_streak > 0 &&
            std::find(touched.begin(), touched.end(), k) == touched.end()) {
          result.contact_seconds.add(st.contact_streak);
          st.contact_streak = 0;
        }
      }
    }

    // Minute boundary: compile VPs, fabricate guards, log ground truth.
    for (std::size_t i = 0; i < n; ++i) {
      auto gen = builders[i].finish();
      result.neighbors_per_vehicle_minute.add(static_cast<double>(gen.neighbors.size()));

      if (cfg_.keep_videos) {
        result.videos.push_back(cameras[i].record_minute(unit));
      }
      result.owned.push_back(
          OwnedVp{static_cast<VehicleId>(i), gen.profile.vp_id(), unit, gen.secret});

      if (cfg_.guards_enabled) {
        auto guards = guard_factory.make_guards_for(gen.profile, gen.neighbors, unit,
                                                    guard_rng);
        for (auto& g : guards)
          result.profiles.push_back(
              ProfileRecord{std::move(g), static_cast<VehicleId>(i), true});
      }
      result.profiles.push_back(
          ProfileRecord{std::move(gen.profile), static_cast<VehicleId>(i), false});
    }

    if (cfg_.collect_pair_stats) {
      for (const auto& [k, st] : pair_state) {
        if (st.min_distance_m > 1e17) continue;  // pair never met this minute
        PairMinuteObservation obs;
        obs.a = static_cast<VehicleId>(k >> 32);
        obs.b = static_cast<VehicleId>(k & 0xffffffffu);
        obs.unit_time = unit;
        obs.min_distance_m = st.min_distance_m;
        obs.vp_linked = st.recv_ab && st.recv_ba;
        obs.on_video = st.on_video;
        obs.los_ever = st.los_ever;
        result.pair_minutes.push_back(obs);
      }
    }
  }

  // Flush ongoing contacts.
  for (auto& [k, st] : pair_state)
    if (st.contact_streak > 0) result.contact_seconds.add(st.contact_streak);

  return result;
}

std::vector<std::vector<std::uint8_t>> upload_payloads(const SimResult& result) {
  std::vector<std::vector<std::uint8_t>> payloads;
  payloads.reserve(result.profiles.size());
  for (const auto& rec : result.profiles) payloads.push_back(rec.profile.serialize());
  return payloads;
}

}  // namespace viewmap::sim
