// Staged two-vehicle field scenarios (paper §7.2.2, Table 2, Fig. 19).
//
// The paper parked/drove two testbed vehicles in carefully chosen
// LOS / NLOS / mixed geometries (intersections, overpasses, tunnels, a
// parking structure, …) and measured (i) the VP linkage ratio and (ii)
// whether either dashcam captured the other vehicle. Each scenario here is
// the geometric essence of one row of Table 2: two trajectories plus the
// obstacle set that creates the sight-line condition.
#pragma once

#include <string>
#include <vector>

#include "sim/simulator.h"

namespace viewmap::sim {

enum class SightCondition { kLos, kNlos, kMixed };

[[nodiscard]] const char* to_string(SightCondition c) noexcept;

struct StagedScenario {
  std::string name;
  SightCondition condition = SightCondition::kLos;
  road::CityMap map;                  ///< obstacles; roads unused (scripted paths)
  std::vector<VehicleMotion> fleet;   ///< exactly two vehicles
  double traffic_blocker_density = 0.0;
};

/// All fourteen Table-2 rows, in paper order.
[[nodiscard]] std::vector<StagedScenario> table2_scenarios(std::uint64_t seed);

struct ScenarioOutcome {
  std::string name;
  SightCondition condition;
  double vp_linkage_ratio = 0.0;  ///< minutes with a two-way link / minutes
  double on_video_ratio = 0.0;    ///< minutes either camera saw the other
};

/// Runs one staged scenario for `minutes` simulated minutes.
[[nodiscard]] ScenarioOutcome run_staged(StagedScenario scenario, int minutes,
                                         std::uint64_t seed);

}  // namespace viewmap::sim
