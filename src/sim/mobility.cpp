#include "sim/mobility.h"

#include <stdexcept>

namespace viewmap::sim {

VehicleMotion VehicleMotion::random_trips(const road::RoadNetwork& net,
                                          double speed_mps, Rng& rng) {
  if (speed_mps <= 0) throw std::invalid_argument("VehicleMotion: bad speed");
  VehicleMotion m;
  m.mode_ = Mode::kRandomTrips;
  m.net_ = &net;
  m.speed_ = speed_mps;
  const auto start =
      static_cast<road::NodeId>(rng.index(net.node_count()));
  m.pos_ = net.node_pos(start);
  m.plan_trip(rng);
  return m;
}

VehicleMotion VehicleMotion::scripted(std::vector<geo::Vec2> path, double speed_mps,
                                      bool loop) {
  if (path.empty()) throw std::invalid_argument("VehicleMotion: empty path");
  VehicleMotion m;
  m.mode_ = Mode::kScripted;
  m.path_ = std::move(path);
  m.speed_ = speed_mps;
  m.loop_ = loop;
  m.pos_ = m.path_.front();
  if (m.path_.size() > 1) {
    const geo::Vec2 d = m.path_[1] - m.path_[0];
    const double n = d.norm();
    if (n > 0) m.heading_ = d * (1.0 / n);
  }
  return m;
}

VehicleMotion VehicleMotion::stationary(geo::Vec2 pos) {
  VehicleMotion m;
  m.mode_ = Mode::kStationary;
  m.pos_ = pos;
  return m;
}

void VehicleMotion::plan_trip(Rng& rng) {
  // Route from the nearest node to a random distinct destination. Retries
  // guard against disconnected picks; a handful suffices on grid maps.
  const road::Router router(*net_);
  const road::NodeId from = net_->nearest_node(pos_);
  for (int attempt = 0; attempt < 8; ++attempt) {
    const auto to = static_cast<road::NodeId>(rng.index(net_->node_count()));
    if (to == from) continue;
    auto route = router.shortest_path(from, to);
    if (route && route->points.size() >= 2) {
      path_ = std::move(route->points);
      progress_m_ = 0.0;
      return;
    }
  }
  // Degenerate map (single node): park.
  path_ = {pos_};
  progress_m_ = 0.0;
}

void VehicleMotion::follow(double dt, Rng& rng) {
  const double total = geo::polyline_length(path_);
  progress_m_ += speed_ * dt;
  if (progress_m_ >= total) {
    if (mode_ == Mode::kRandomTrips) {
      pos_ = path_.back();
      plan_trip(rng);
      return;
    }
    if (loop_ && total > 0) {
      progress_m_ -= total;
    } else {
      progress_m_ = total;
      pos_ = path_.back();
      return;
    }
  }
  const geo::Vec2 before = pos_;
  pos_ = geo::point_along_polyline(path_, progress_m_);
  const geo::Vec2 d = pos_ - before;
  const double n = d.norm();
  if (n > 1e-9) heading_ = d * (1.0 / n);
}

void VehicleMotion::advance(double dt, Rng& rng) {
  switch (mode_) {
    case Mode::kStationary:
      return;
    case Mode::kScripted:
    case Mode::kRandomTrips:
      follow(dt, rng);
      return;
  }
}

}  // namespace viewmap::sim
