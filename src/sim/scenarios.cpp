#include "sim/scenarios.h"

namespace viewmap::sim {

const char* to_string(SightCondition c) noexcept {
  switch (c) {
    case SightCondition::kLos: return "LOS";
    case SightCondition::kNlos: return "NLOS";
    case SightCondition::kMixed: return "LOS/NLOS";
  }
  return "?";
}

namespace {

using geo::Rect;
using geo::Vec2;

road::CityMap obstacles_only(std::vector<Rect> rects) {
  road::CityMap map;
  map.buildings = std::move(rects);
  map.bounds = {{-1000.0, -1000.0}, {1000.0, 1000.0}};
  return map;
}

VehicleMotion drive(Vec2 from, Vec2 to, double speed_kmh_v, bool loop = false) {
  return VehicleMotion::scripted({from, to}, kmh(speed_kmh_v), loop);
}

StagedScenario open_road() {
  StagedScenario s;
  s.name = "Open road";
  s.condition = SightCondition::kLos;
  s.map = obstacles_only({});
  // Two vehicles in convoy, 120 m apart, cruising a straight road.
  s.fleet.push_back(drive({0, 0}, {20000, 0}, 60));
  s.fleet.push_back(drive({120, 0}, {20120, 0}, 60));
  return s;
}

StagedScenario building1() {
  StagedScenario s;
  s.name = "Building 1";
  s.condition = SightCondition::kNlos;
  // A large office block squarely between two parked vehicles.
  s.map = obstacles_only({{{30, -50}, {90, 50}}});
  s.fleet.push_back(VehicleMotion::stationary({0, 0}));
  s.fleet.push_back(VehicleMotion::stationary({120, 0}));
  return s;
}

StagedScenario intersection(bool open_corner) {
  StagedScenario s;
  s.name = open_corner ? "Intersection 1" : "Intersection 2";
  s.condition = open_corner ? SightCondition::kLos : SightCondition::kNlos;
  // Four corner blocks; the setback decides whether approaching vehicles
  // can see each other diagonally before entering the junction.
  const double setback = open_corner ? 45.0 : 8.0;
  const double far = 320.0;
  s.map = obstacles_only({{{setback, setback}, {far, far}},
                          {{-far, setback}, {-setback, far}},
                          {{setback, -far}, {far, -setback}},
                          {{-far, -far}, {-setback, -setback}}});
  // Approach-and-turn-back runs at incommensurate speeds (as in Fig. 19:
  // both vehicles approach the junction, neither crosses). With tight
  // corners, sight exists only if both reach their turnaround at the same
  // moment — rare, hence the paper's 9%.
  const double stop = open_corner ? 30.0 : 13.0;
  s.fleet.push_back(
      VehicleMotion::scripted({{0, 333}, {0, stop}, {0, 333}}, kmh(43), true));
  s.fleet.push_back(
      VehicleMotion::scripted({{-333, 0}, {-stop, 0}, {-333, 0}}, kmh(31), true));
  return s;
}

StagedScenario overpass1() {
  StagedScenario s;
  s.name = "Overpass 1";
  s.condition = SightCondition::kLos;
  // Elevated road crossing an open one; embankments screen the far
  // approaches, the crossing region itself is open. Long round trips make
  // the crossing miss some minutes entirely (paper: 84% linkage).
  s.map = obstacles_only({{{-650, 12}, {-70, 26}}, {{70, 12}, {650, 26}}});
  s.fleet.push_back(
      VehicleMotion::scripted({{0, 600}, {0, -600}, {0, 600}}, kmh(52), true));
  s.fleet.push_back(
      VehicleMotion::scripted({{-600, 0}, {600, 0}, {-600, 0}}, kmh(47), true));
  return s;
}

StagedScenario overpass2() {
  StagedScenario s;
  s.name = "Overpass 2";
  s.condition = SightCondition::kNlos;
  // Vehicle 2 drives directly beneath the deck: enclosed by the structure.
  s.map = obstacles_only({{{-15, -300}, {15, 300}}});
  s.fleet.push_back(VehicleMotion::scripted({{-250, 40}, {250, 40}}, kmh(50), true));
  s.fleet.push_back(VehicleMotion::scripted({{0, -250}, {0, 250}}, kmh(50), true));
  return s;
}

StagedScenario traffic() {
  StagedScenario s;
  s.name = "Traffic";
  s.condition = SightCondition::kMixed;
  s.map = obstacles_only({});
  // Same road, 160 m apart, heavy interposed traffic.
  s.fleet.push_back(drive({0, 0}, {20000, 0}, 50));
  s.fleet.push_back(drive({160, 0}, {20160, 0}, 50));
  s.traffic_blocker_density = 0.012;  // p(block) ≈ 0.85 at 160 m
  return s;
}

StagedScenario vehicle_array() {
  StagedScenario s;
  s.name = "Vehicle array";
  s.condition = SightCondition::kNlos;
  // A long wall of parked trucks with a single 3 m gap. Vehicle 1 waits on
  // one side; vehicle 2 creeps along the far side and lines up with the
  // gap only briefly — the paper saw 13% linkage and nothing on video
  // (the gap sits 90° off the creeping camera's heading).
  s.map = obstacles_only({{{-200, -2}, {0, 4}}, {{3, -2}, {200, 4}}});
  s.fleet.push_back(VehicleMotion::stationary({1.5, -40}));
  s.fleet.push_back(VehicleMotion::scripted(
      {{-150, 40}, {150, 40}, {-150, 40}}, kmh(3), true));
  return s;
}

StagedScenario pedestrians() {
  StagedScenario s;
  s.name = "Pedestrians";
  s.condition = SightCondition::kLos;
  // Pedestrians do not block DSRC: modeled as a clear short-range face-off
  // with both vehicles creeping toward each other.
  s.map = obstacles_only({});
  s.fleet.push_back(VehicleMotion::scripted({{0, 0}, {35, 0}}, kmh(4), true));
  s.fleet.push_back(VehicleMotion::scripted({{90, 0}, {55, 0}}, kmh(4), true));
  return s;
}

StagedScenario tunnels() {
  StagedScenario s;
  s.name = "Tunnels";
  s.condition = SightCondition::kNlos;
  // Twin tubes with rock between; both vehicles fully enclosed.
  s.map = obstacles_only({{{-30, -300}, {-10, 300}},   // tube 1
                          {{10, -300}, {30, 300}},     // tube 2
                          {{-10, -300}, {10, 300}}});  // separating rock
  s.fleet.push_back(VehicleMotion::scripted({{-20, -250}, {-20, 250}}, kmh(60), true));
  s.fleet.push_back(VehicleMotion::scripted({{20, 250}, {20, -250}}, kmh(60), true));
  return s;
}

StagedScenario building2() {
  StagedScenario s;
  s.name = "Building 2";
  s.condition = SightCondition::kMixed;
  // Vehicle 1 laps a city block; vehicle 2 waits in a side alley whose
  // walls leave a narrow view corridor onto the south face. Sight exists
  // only while the lapping car crosses the corridor, so a fair share of
  // whole minutes pass dark (paper: 39% linkage, 18% on video).
  s.map = obstacles_only({{{30, 30}, {270, 270}},     // the block
                          {{60, -35}, {120, 12}},     // alley wall (west)
                          {{180, -35}, {240, 12}}});  // alley wall (east)
  s.fleet.push_back(VehicleMotion::scripted(
      {{0, 0}, {300, 0}, {300, 300}, {0, 300}, {0, 0}}, kmh(20), true));
  s.fleet.push_back(VehicleMotion::stationary({150, -20}));
  return s;
}

StagedScenario double_deck_bridge() {
  StagedScenario s;
  s.name = "Double-deck bridge";
  s.condition = SightCondition::kNlos;
  // Upper and lower decks: both vehicles inside the bridge structure.
  s.map = obstacles_only({{{-12, -400}, {12, 400}}});
  s.fleet.push_back(VehicleMotion::scripted({{-4, -350}, {-4, 350}}, kmh(60), true));
  s.fleet.push_back(VehicleMotion::scripted({{4, 350}, {4, -350}}, kmh(60), true));
  return s;
}

StagedScenario house() {
  StagedScenario s;
  s.name = "House";
  s.condition = SightCondition::kMixed;
  // Residential lane behind a row of houses with one gap; vehicle 2 is
  // parked behind the gap, vehicle 1 does slow laps of the lane and is
  // visible only through the gap window (paper: 56% / 51%).
  s.map = obstacles_only({{{-260, 15}, {100, 35}}, {{120, 15}, {480, 35}}});
  s.fleet.push_back(VehicleMotion::scripted(
      {{-300, 0}, {520, 0}, {-300, 0}}, kmh(30), true));
  s.fleet.push_back(VehicleMotion::stationary({110, 45}));
  return s;
}

StagedScenario parking_structure() {
  StagedScenario s;
  s.name = "Parking structure";
  s.condition = SightCondition::kNlos;
  // Vehicle 2 parked inside a garage; vehicle 1 passes on the street.
  s.map = obstacles_only({{{30, 30}, {130, 130}}});
  s.fleet.push_back(VehicleMotion::scripted({{-200, 0}, {300, 0}}, kmh(30), true));
  s.fleet.push_back(VehicleMotion::stationary({80, 80}));
  return s;
}

}  // namespace

std::vector<StagedScenario> table2_scenarios(std::uint64_t /*seed*/) {
  std::vector<StagedScenario> all;
  all.push_back(open_road());
  all.push_back(building1());
  all.push_back(intersection(true));
  all.push_back(intersection(false));
  all.push_back(overpass1());
  all.push_back(overpass2());
  all.push_back(traffic());
  all.push_back(vehicle_array());
  all.push_back(pedestrians());
  all.push_back(tunnels());
  all.push_back(building2());
  all.push_back(double_deck_bridge());
  all.push_back(house());
  all.push_back(parking_structure());
  return all;
}

ScenarioOutcome run_staged(StagedScenario scenario, int minutes, std::uint64_t seed) {
  SimConfig cfg;
  cfg.seed = seed;
  cfg.minutes = minutes;
  cfg.guards_enabled = false;       // two-vehicle field test, no privacy layer
  cfg.collect_pair_stats = true;
  cfg.traffic_blocker_density_per_m = scenario.traffic_blocker_density;
  cfg.video_bytes_per_second = 16;  // hashing load is irrelevant here
  cfg.camera_fov_deg = 160.0;       // wide-angle dashcam lens

  TrafficSimulator sim(std::move(scenario.map), cfg, std::move(scenario.fleet));
  const SimResult result = sim.run();

  ScenarioOutcome out;
  out.name = scenario.name;
  out.condition = scenario.condition;
  if (result.pair_minutes.empty()) return out;
  std::size_t linked = 0;
  std::size_t seen = 0;
  for (const auto& obs : result.pair_minutes) {
    linked += obs.vp_linked ? 1u : 0u;
    seen += obs.on_video ? 1u : 0u;
  }
  out.vp_linkage_ratio =
      static_cast<double>(linked) / static_cast<double>(minutes);
  out.on_video_ratio = static_cast<double>(seen) / static_cast<double>(minutes);
  return out;
}

}  // namespace viewmap::sim
