// Vehicle mobility (SUMO-trace substitute, paper §8).
//
// Three movement modes cover every experiment:
//   * random trips — shortest-path routes between random intersections,
//     re-planned on arrival (the city-scale traffic of §8);
//   * scripted    — follow a fixed polyline at constant speed (the staged
//     two-vehicle field scenarios of §7.2);
//   * stationary  — parked vehicles (parking-mode extension, §2).
#pragma once

#include <memory>
#include <vector>

#include "common/rng.h"
#include "geo/geometry.h"
#include "road/router.h"

namespace viewmap::sim {

class VehicleMotion {
 public:
  /// Random-trip driver. `speed_mps` is this vehicle's cruise speed.
  /// `net` must outlive the motion object (routers are built on demand).
  static VehicleMotion random_trips(const road::RoadNetwork& net, double speed_mps,
                                    Rng& rng);

  /// Scripted polyline at constant speed; holds position at the end
  /// (or restarts from the head when `loop`).
  static VehicleMotion scripted(std::vector<geo::Vec2> path, double speed_mps,
                                bool loop = false);

  static VehicleMotion stationary(geo::Vec2 pos);

  /// Advance `dt` seconds of movement.
  void advance(double dt, Rng& rng);

  [[nodiscard]] geo::Vec2 position() const noexcept { return pos_; }
  /// Unit direction of travel; {0,0} when parked.
  [[nodiscard]] geo::Vec2 heading() const noexcept { return heading_; }
  [[nodiscard]] double speed_mps() const noexcept { return speed_; }

 private:
  VehicleMotion() = default;

  void plan_trip(Rng& rng);
  void follow(double dt, Rng& rng);

  enum class Mode { kRandomTrips, kScripted, kStationary };
  Mode mode_ = Mode::kStationary;

  const road::RoadNetwork* net_ = nullptr;

  std::vector<geo::Vec2> path_;
  double progress_m_ = 0.0;
  bool loop_ = false;

  double speed_ = 0.0;
  geo::Vec2 pos_{};
  geo::Vec2 heading_{};
};

/// km/h → m/s.
[[nodiscard]] constexpr double kmh(double v) noexcept { return v / 3.6; }

}  // namespace viewmap::sim
