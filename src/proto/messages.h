// Wire protocol between ViewMap users and the system.
//
// Every user↔system interaction in the paper maps to one message pair,
// all carried over the anonymous channel (§5.1.2: users "constantly
// change sessions", so each request is self-contained and unlinkable):
//
//   VP upload               →  kVpUpload            (no response; fire & forget)
//   solicitation poll       →  kVideoListRequest    / kVideoListResponse
//   video submission        →  kVideoSubmit         / kSubmitResult
//   reward poll             →  kRewardListRequest   / kRewardListResponse
//   reward claim (App. A)   →  kRewardClaim         / kRewardGrant
//   blind-sign batch        →  kBlindBatch          / kSignatureBatch
//
// Framing: [u8 type][u32 payload length][payload], little-endian, with a
// 64 MiB payload cap (videos dominate). Malformed frames throw — servers
// drop them silently, clients surface them.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/types.h"
#include "crypto/blind_rsa.h"
#include "vp/video.h"
#include "vp/view_profile.h"

namespace viewmap::proto {

enum class MessageType : std::uint8_t {
  kVpUpload = 1,
  kVideoListRequest = 2,
  kVideoListResponse = 3,
  kVideoSubmit = 4,
  kSubmitResult = 5,
  kRewardListRequest = 6,
  kRewardListResponse = 7,
  kRewardClaim = 8,
  kRewardGrant = 9,
  kBlindBatch = 10,
  kSignatureBatch = 11,
  kError = 12,
};

inline constexpr std::size_t kMaxPayload = 64u * 1024 * 1024;

struct Envelope {
  MessageType type = MessageType::kError;
  std::vector<std::uint8_t> payload;

  friend bool operator==(const Envelope&, const Envelope&) = default;
};

[[nodiscard]] std::vector<std::uint8_t> encode(const Envelope& envelope);
/// Throws std::invalid_argument on malformed framing.
[[nodiscard]] Envelope decode(std::span<const std::uint8_t> frame);

// ── typed payload builders / parsers ─────────────────────────────────────
// Each make_* returns a full frame; each parse_* consumes an Envelope
// payload and throws std::invalid_argument on structural errors.

[[nodiscard]] std::vector<std::uint8_t> make_vp_upload(const vp::ViewProfile& profile);
[[nodiscard]] vp::ViewProfile parse_vp_upload(std::span<const std::uint8_t> payload);

[[nodiscard]] std::vector<std::uint8_t> make_list_request(MessageType kind);

[[nodiscard]] std::vector<std::uint8_t> make_id_list(MessageType kind,
                                                     std::span<const Id16> ids);
[[nodiscard]] std::vector<Id16> parse_id_list(std::span<const std::uint8_t> payload);

/// Video submission: VP id + the minute's start time + raw video bytes.
/// Chunk boundaries are NOT transmitted — the system derives them from
/// the cumulative file sizes in its own copy of the VP (§5.2.3), so a
/// client cannot lie about them.
struct VideoSubmit {
  Id16 vp_id;
  TimeSec start_time = 0;
  std::vector<std::uint8_t> video_bytes;
};
[[nodiscard]] std::vector<std::uint8_t> make_video_submit(const Id16& vp_id,
                                                          const vp::RecordedVideo& video);
[[nodiscard]] VideoSubmit parse_video_submit(std::span<const std::uint8_t> payload);

[[nodiscard]] std::vector<std::uint8_t> make_submit_result(bool accepted);
[[nodiscard]] bool parse_submit_result(std::span<const std::uint8_t> payload);

/// Reward claim: VP id + ownership proof Q (Appendix A step 1).
struct RewardClaim {
  Id16 vp_id;
  vp::VpSecret secret;
};
[[nodiscard]] std::vector<std::uint8_t> make_reward_claim(const Id16& vp_id,
                                                          const vp::VpSecret& secret);
[[nodiscard]] RewardClaim parse_reward_claim(std::span<const std::uint8_t> payload);

/// Grant: the cash amount n (0 = claim rejected).
[[nodiscard]] std::vector<std::uint8_t> make_reward_grant(std::uint32_t units);
[[nodiscard]] std::uint32_t parse_reward_grant(std::span<const std::uint8_t> payload);

/// Blinded-message and signature batches share one layout:
/// u32 count, then per item u32 length + bytes.
struct BigBatch {
  Id16 vp_id;  ///< which claim this batch belongs to
  std::vector<crypto::BigBytes> items;
};
[[nodiscard]] std::vector<std::uint8_t> make_big_batch(MessageType kind, const Id16& vp_id,
                                                       std::span<const crypto::BigBytes> items);
[[nodiscard]] BigBatch parse_big_batch(std::span<const std::uint8_t> payload);

[[nodiscard]] std::vector<std::uint8_t> make_error(const std::string& what);

}  // namespace viewmap::proto
