// Request/response endpoints speaking the ViewMap wire protocol.
//
// ServerEndpoint wraps a ViewMapService: it consumes one request frame and
// produces one response frame (or nothing, for fire-and-forget uploads).
// Every request is handled statelessly except the reward-claim → batch
// pairing, which the underlying service already tracks by VP id — so
// requests may arrive over different anonymous sessions, as the paper's
// unlinkability model requires.
//
// UserAgent is the matching client: it wraps a Dashcam and a RewardClient
// and turns protocol responses into actions (upload video, unblind cash).
#pragma once

#include <optional>
#include <vector>

#include "proto/messages.h"
#include "reward/client.h"
#include "system/service.h"
#include "vp/dashcam.h"

namespace viewmap::proto {

class ServerEndpoint {
 public:
  explicit ServerEndpoint(sys::ViewMapService& service) : service_(&service) {}

  /// Handles one frame. Returns the response frame, or nullopt when the
  /// message needs no reply (VP uploads) or was malformed (dropped —
  /// anonymous senders get no error oracle).
  std::optional<std::vector<std::uint8_t>> handle(
      std::span<const std::uint8_t> request);

  [[nodiscard]] std::size_t dropped_frames() const noexcept { return dropped_; }

 private:
  sys::ViewMapService* service_;
  std::size_t dropped_ = 0;
};

/// Client-side driver for one vehicle's interactions with the system.
class UserAgent {
 public:
  UserAgent(vp::Dashcam& dashcam, const crypto::RsaPublicKey& system_key,
            std::uint64_t seed)
      : dashcam_(&dashcam), reward_client_(system_key, seed) {}

  /// Drains the dashcam's upload queue into protocol frames.
  [[nodiscard]] std::vector<std::vector<std::uint8_t>> upload_frames();

  /// Poll request for pending video solicitations.
  [[nodiscard]] std::vector<std::uint8_t> video_poll_frame() const {
    return make_list_request(MessageType::kVideoListRequest);
  }

  /// Given the poll response, produce submission frames for every posted
  /// id this dashcam can answer (§5.2.3: only actual VPs ever match).
  [[nodiscard]] std::vector<std::vector<std::uint8_t>> answer_video_list(
      std::span<const std::uint8_t> response_payload);

  /// Reward poll + claims, Appendix A: returns claim frames for our ids.
  [[nodiscard]] std::vector<std::uint8_t> reward_poll_frame() const {
    return make_list_request(MessageType::kRewardListRequest);
  }
  [[nodiscard]] std::vector<std::vector<std::uint8_t>> claim_rewards(
      std::span<const std::uint8_t> response_payload);

  /// Step 2: a grant of n units arrived for `vp_id` — blind n messages.
  [[nodiscard]] std::vector<std::uint8_t> blind_batch_frame(const Id16& vp_id,
                                                            std::uint32_t units);

  /// Step 4: unblind the signature batch into spendable cash.
  [[nodiscard]] std::vector<reward::CashToken> receive_signatures(
      std::span<const std::uint8_t> batch_payload);

  [[nodiscard]] const std::vector<reward::CashToken>& wallet() const noexcept {
    return wallet_;
  }

 private:
  vp::Dashcam* dashcam_;
  reward::RewardClient reward_client_;
  std::vector<reward::CashToken> wallet_;
};

}  // namespace viewmap::proto
