#include "proto/endpoint.h"

namespace viewmap::proto {

std::optional<std::vector<std::uint8_t>> ServerEndpoint::handle(
    std::span<const std::uint8_t> request) {
  Envelope envelope;
  try {
    envelope = decode(request);
  } catch (const std::exception&) {
    ++dropped_;
    return std::nullopt;
  }

  try {
    switch (envelope.type) {
      case MessageType::kVpUpload: {
        // Fire-and-forget; screening happens inside the service.
        service_->upload_channel().submit(std::move(envelope.payload));
        (void)service_->ingest_uploads();
        return std::nullopt;
      }
      case MessageType::kVideoListRequest:
        return make_id_list(MessageType::kVideoListResponse,
                            service_->board().posted(sys::RequestKind::kVideo));
      case MessageType::kRewardListRequest:
        return make_id_list(MessageType::kRewardListResponse,
                            service_->board().posted(sys::RequestKind::kReward));
      case MessageType::kVideoSubmit: {
        const auto msg = parse_video_submit(envelope.payload);
        vp::RecordedVideo video;
        video.start_time = msg.start_time;
        video.bytes = msg.video_bytes;
        // Chunk offsets are derived server-side from the stored VP during
        // validation; RecordedVideo carries them only for local replay.
        const bool ok = service_->submit_video(msg.vp_id, video);
        return make_submit_result(ok);
      }
      case MessageType::kRewardClaim: {
        const auto claim = parse_reward_claim(envelope.payload);
        const auto granted = service_->begin_reward_claim(claim.vp_id, claim.secret);
        return make_reward_grant(granted ? static_cast<std::uint32_t>(*granted) : 0u);
      }
      case MessageType::kBlindBatch: {
        const auto batch = parse_big_batch(envelope.payload);
        auto signatures = service_->sign_reward_batch(batch.vp_id, batch.items);
        if (!signatures) return make_error("no open claim for batch");
        return make_big_batch(MessageType::kSignatureBatch, batch.vp_id, *signatures);
      }
      default:
        ++dropped_;
        return std::nullopt;
    }
  } catch (const std::exception&) {
    ++dropped_;
    return std::nullopt;  // anonymous senders get no error oracle
  }
}

std::vector<std::vector<std::uint8_t>> UserAgent::upload_frames() {
  std::vector<std::vector<std::uint8_t>> frames;
  for (auto& payload : dashcam_->drain_uploads())
    frames.push_back(encode(Envelope{MessageType::kVpUpload, std::move(payload)}));
  return frames;
}

std::vector<std::vector<std::uint8_t>> UserAgent::answer_video_list(
    std::span<const std::uint8_t> response_payload) {
  std::vector<std::vector<std::uint8_t>> frames;
  for (const Id16& id : parse_id_list(response_payload)) {
    const auto* video = dashcam_->video_of(id);
    if (video != nullptr) frames.push_back(make_video_submit(id, *video));
  }
  return frames;
}

std::vector<std::vector<std::uint8_t>> UserAgent::claim_rewards(
    std::span<const std::uint8_t> response_payload) {
  std::vector<std::vector<std::uint8_t>> frames;
  for (const Id16& id : parse_id_list(response_payload)) {
    const auto* secret = dashcam_->secret_of(id);
    if (secret != nullptr) frames.push_back(make_reward_claim(id, *secret));
  }
  return frames;
}

std::vector<std::uint8_t> UserAgent::blind_batch_frame(const Id16& vp_id,
                                                       std::uint32_t units) {
  const auto blinded = reward_client_.prepare(units);
  return make_big_batch(MessageType::kBlindBatch, vp_id, blinded);
}

std::vector<reward::CashToken> UserAgent::receive_signatures(
    std::span<const std::uint8_t> batch_payload) {
  const auto batch = parse_big_batch(batch_payload);
  auto cash = reward_client_.unblind_batch(batch.items);
  wallet_.insert(wallet_.end(), cash.begin(), cash.end());
  return cash;
}

}  // namespace viewmap::proto
