#include "proto/messages.h"

#include <stdexcept>
#include <string>

#include "common/bytes.h"

namespace viewmap::proto {

namespace {

[[noreturn]] void malformed(const char* what) {
  throw std::invalid_argument(std::string("proto: ") + what);
}

Envelope make_envelope(MessageType type, ByteWriter&& payload) {
  return Envelope{type, std::move(payload).take()};
}

}  // namespace

std::vector<std::uint8_t> encode(const Envelope& envelope) {
  if (envelope.payload.size() > kMaxPayload) malformed("payload too large");
  ByteWriter w(5 + envelope.payload.size());
  w.put_u8(static_cast<std::uint8_t>(envelope.type));
  w.put_u32(static_cast<std::uint32_t>(envelope.payload.size()));
  w.put_bytes(envelope.payload);
  return std::move(w).take();
}

Envelope decode(std::span<const std::uint8_t> frame) {
  if (frame.size() < 5) malformed("short frame");
  ByteReader r(frame);
  const auto type = r.get_u8();
  if (type < 1 || type > static_cast<std::uint8_t>(MessageType::kError))
    malformed("unknown message type");
  const std::uint32_t length = r.get_u32();
  if (length > kMaxPayload) malformed("payload too large");
  if (r.remaining() != length) malformed("length mismatch");
  Envelope e;
  e.type = static_cast<MessageType>(type);
  e.payload.assign(frame.begin() + 5, frame.end());
  return e;
}

std::vector<std::uint8_t> make_vp_upload(const vp::ViewProfile& profile) {
  return encode(Envelope{MessageType::kVpUpload, profile.serialize()});
}

vp::ViewProfile parse_vp_upload(std::span<const std::uint8_t> payload) {
  return vp::ViewProfile::parse(payload);  // throws on bad size
}

std::vector<std::uint8_t> make_list_request(MessageType kind) {
  if (kind != MessageType::kVideoListRequest && kind != MessageType::kRewardListRequest)
    malformed("not a list request type");
  return encode(Envelope{kind, {}});
}

std::vector<std::uint8_t> make_id_list(MessageType kind, std::span<const Id16> ids) {
  ByteWriter w(4 + ids.size() * 16);
  w.put_u32(static_cast<std::uint32_t>(ids.size()));
  for (const auto& id : ids) w.put_bytes(id.bytes);
  return encode(make_envelope(kind, std::move(w)));
}

std::vector<Id16> parse_id_list(std::span<const std::uint8_t> payload) {
  ByteReader r(payload);
  const std::uint32_t count = r.get_u32();
  if (r.remaining() != static_cast<std::size_t>(count) * 16) malformed("id list length");
  std::vector<Id16> ids(count);
  for (auto& id : ids) r.get_bytes(id.bytes);
  return ids;
}

std::vector<std::uint8_t> make_video_submit(const Id16& vp_id,
                                            const vp::RecordedVideo& video) {
  ByteWriter w(16 + 8 + 8 + video.bytes.size());
  w.put_bytes(vp_id.bytes);
  w.put_i64(video.start_time);
  w.put_u64(video.bytes.size());
  w.put_bytes(video.bytes);
  return encode(make_envelope(MessageType::kVideoSubmit, std::move(w)));
}

VideoSubmit parse_video_submit(std::span<const std::uint8_t> payload) {
  ByteReader r(payload);
  VideoSubmit msg;
  r.get_bytes(msg.vp_id.bytes);
  msg.start_time = r.get_i64();
  const std::uint64_t size = r.get_u64();
  if (r.remaining() != size) malformed("video length mismatch");
  msg.video_bytes.resize(size);
  r.get_bytes(msg.video_bytes);
  return msg;
}

std::vector<std::uint8_t> make_submit_result(bool accepted) {
  ByteWriter w(1);
  w.put_u8(accepted ? 1 : 0);
  return encode(make_envelope(MessageType::kSubmitResult, std::move(w)));
}

bool parse_submit_result(std::span<const std::uint8_t> payload) {
  ByteReader r(payload);
  return r.get_u8() != 0;
}

std::vector<std::uint8_t> make_reward_claim(const Id16& vp_id,
                                            const vp::VpSecret& secret) {
  ByteWriter w(16 + 8);
  w.put_bytes(vp_id.bytes);
  w.put_bytes(secret.q);
  return encode(make_envelope(MessageType::kRewardClaim, std::move(w)));
}

RewardClaim parse_reward_claim(std::span<const std::uint8_t> payload) {
  ByteReader r(payload);
  RewardClaim msg;
  r.get_bytes(msg.vp_id.bytes);
  r.get_bytes(msg.secret.q);
  if (r.remaining() != 0) malformed("reward claim trailing bytes");
  return msg;
}

std::vector<std::uint8_t> make_reward_grant(std::uint32_t units) {
  ByteWriter w(4);
  w.put_u32(units);
  return encode(make_envelope(MessageType::kRewardGrant, std::move(w)));
}

std::uint32_t parse_reward_grant(std::span<const std::uint8_t> payload) {
  ByteReader r(payload);
  return r.get_u32();
}

std::vector<std::uint8_t> make_big_batch(MessageType kind, const Id16& vp_id,
                                         std::span<const crypto::BigBytes> items) {
  if (kind != MessageType::kBlindBatch && kind != MessageType::kSignatureBatch)
    malformed("not a batch type");
  ByteWriter w;
  w.put_bytes(vp_id.bytes);
  w.put_u32(static_cast<std::uint32_t>(items.size()));
  for (const auto& item : items) {
    w.put_u32(static_cast<std::uint32_t>(item.size()));
    w.put_bytes(item);
  }
  return encode(make_envelope(kind, std::move(w)));
}

BigBatch parse_big_batch(std::span<const std::uint8_t> payload) {
  ByteReader r(payload);
  BigBatch batch;
  r.get_bytes(batch.vp_id.bytes);
  const std::uint32_t count = r.get_u32();
  if (count > 4096) malformed("batch too large");
  batch.items.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::uint32_t len = r.get_u32();
    if (len > 16384 || r.remaining() < len) malformed("batch item length");
    crypto::BigBytes item(len);
    r.get_bytes(item);
    batch.items.push_back(std::move(item));
  }
  if (r.remaining() != 0) malformed("batch trailing bytes");
  return batch;
}

std::vector<std::uint8_t> make_error(const std::string& what) {
  Envelope e;
  e.type = MessageType::kError;
  e.payload.assign(what.begin(), what.end());
  return encode(e);
}

}  // namespace viewmap::proto
