// Broadcast delivery: geometry + radio in one call.
//
// The per-frame pipeline mirrors what the testbed experienced on real
// roads: geometric line-of-sight against building footprints, stochastic
// blockage by interposed tall traffic, then the radio's RSSI/PDR trial.
#pragma once

#include "common/rng.h"
#include "dsrc/radio.h"
#include "geo/geometry.h"
#include "geo/obstacle_index.h"

namespace viewmap::dsrc {

/// Static surroundings affecting one delivery attempt.
struct ChannelEnvironment {
  const geo::ObstacleIndex* obstacles = nullptr;  ///< building footprints (may be null)
  double traffic_blocker_density_per_m = 0.0;     ///< tall vehicles per meter of gap
};

class BroadcastChannel {
 public:
  explicit BroadcastChannel(const RadioConfig& cfg = {}) : radio_(cfg) {}

  [[nodiscard]] const RadioModel& radio() const noexcept { return radio_; }

  /// Is the sight line tx→rx clear of static obstacles?
  [[nodiscard]] bool line_of_sight(geo::Vec2 tx, geo::Vec2 rx,
                                   const ChannelEnvironment& env) const {
    return env.obstacles == nullptr || env.obstacles->line_of_sight(tx, rx);
  }

  /// One Bernoulli delivery trial for a broadcast frame tx→rx. Vehicular
  /// blockage is drawn i.i.d. per frame from the environment's density.
  [[nodiscard]] bool try_deliver(geo::Vec2 tx, geo::Vec2 rx,
                                 const ChannelEnvironment& env, Rng& rng) const;

  /// Delivery trial with the caller supplying the vehicular-blockage
  /// state. The simulator evolves that state as a two-state Markov chain
  /// per pair (a truck that blocks the sight line stays there for a
  /// while), which is what produces whole minutes of unlinkage in heavy
  /// traffic (Table 2 "Traffic", Fig. 17 heavy curves).
  [[nodiscard]] bool try_deliver_with_blockage(geo::Vec2 tx, geo::Vec2 rx,
                                               const ChannelEnvironment& env,
                                               bool traffic_blocked, Rng& rng) const;

 private:
  RadioModel radio_;
};

}  // namespace viewmap::dsrc
