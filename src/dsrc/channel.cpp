#include "dsrc/channel.h"

namespace viewmap::dsrc {

bool BroadcastChannel::try_deliver(geo::Vec2 tx, geo::Vec2 rx,
                                   const ChannelEnvironment& env, Rng& rng) const {
  const double d = geo::distance(tx, rx);
  const bool traffic_block = rng.bernoulli(
      traffic_blockage_probability(d, env.traffic_blocker_density_per_m));
  return try_deliver_with_blockage(tx, rx, env, traffic_block, rng);
}

bool BroadcastChannel::try_deliver_with_blockage(geo::Vec2 tx, geo::Vec2 rx,
                                                 const ChannelEnvironment& env,
                                                 bool traffic_blocked,
                                                 Rng& rng) const {
  const double d = geo::distance(tx, rx);
  if (d > radio_.config().max_range_m) return false;
  const bool los = line_of_sight(tx, rx, env);
  // Endpoints inside a structure (tunnel tube, parking deck) attenuate far
  // beyond a mere blocked sight line.
  double extra = 0.0;
  if (env.obstacles != nullptr) {
    if (env.obstacles->contains_point(tx)) extra += radio_.config().enclosed_penalty_db;
    if (env.obstacles->contains_point(rx)) extra += radio_.config().enclosed_penalty_db;
  }
  return radio_.try_deliver(d, los, los && traffic_blocked, rng, extra);
}

}  // namespace viewmap::dsrc
