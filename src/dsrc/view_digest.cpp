#include "dsrc/view_digest.h"

#include <cmath>
#include <stdexcept>

#include "common/bytes.h"

namespace viewmap::dsrc {

std::vector<std::uint8_t> ViewDigest::serialize() const {
  ByteWriter w(kViewDigestWireSize);
  w.put_i64(time);
  w.put_f32(loc_x);
  w.put_f32(loc_y);
  w.put_u64(file_size);
  w.put_f32(initial_x);
  w.put_f32(initial_y);
  w.put_bytes(vp_id.bytes);
  w.put_bytes(hash.bytes);
  w.put_u16(second);
  // Reserved padding keeps the frame at the §6.1 size.
  for (int i = 0; i < 6; ++i) w.put_u8(0);
  if (w.size() != kViewDigestWireSize)
    throw std::logic_error("ViewDigest: wire size drifted from spec");
  return std::move(w).take();
}

ViewDigest ViewDigest::parse(std::span<const std::uint8_t> frame) {
  if (frame.size() != kViewDigestWireSize)
    throw std::invalid_argument("ViewDigest: bad frame size");
  ByteReader r(frame);
  ViewDigest vd;
  vd.time = r.get_i64();
  vd.loc_x = r.get_f32();
  vd.loc_y = r.get_f32();
  vd.file_size = r.get_u64();
  vd.initial_x = r.get_f32();
  vd.initial_y = r.get_f32();
  r.get_bytes(vd.vp_id.bytes);
  r.get_bytes(vd.hash.bytes);
  vd.second = r.get_u16();
  return vd;
}

bool VdAcceptancePolicy::acceptable(const ViewDigest& vd, TimeSec now, double rx_x,
                                    double rx_y) const noexcept {
  if (vd.time > now + max_clock_skew || vd.time < now - max_clock_skew) return false;
  const double dx = vd.loc_x - rx_x;
  const double dy = vd.loc_y - rx_y;
  return std::sqrt(dx * dx + dy * dy) <= max_distance_m;
}

}  // namespace viewmap::dsrc
