// View Digest (VD): the per-second DSRC broadcast message (paper §5.1.1).
//
//   A −→ ∗ :  T_i, L_i, F_i, L_1, R_u, H(T_i | L_i | F_i | H_{i-1} | u[i-1..i])
//
// §6.1 fixes the wire size at 72 bytes (time 8, location 8, file size 8,
// initial location 8, VP identifier 16, cascaded hash 16, plus the
// second-index and padding), small enough to piggyback on a DSRC beacon.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/types.h"
#include "crypto/hash_chain.h"

namespace viewmap::dsrc {

/// Exact serialized size of a VD frame (§6.1).
inline constexpr std::size_t kViewDigestWireSize = 72;

struct ViewDigest {
  TimeSec time = 0;            ///< T_i — second this digest covers
  float loc_x = 0.0f;          ///< L_i — broadcaster position (m)
  float loc_y = 0.0f;
  std::uint64_t file_size = 0; ///< F_i — cumulative video bytes
  float initial_x = 0.0f;      ///< L_1 — video's start position (guard-VP seed)
  float initial_y = 0.0f;
  Id16 vp_id;                  ///< R_u
  Hash16 hash;                 ///< H_i — cascaded hash
  std::uint16_t second = 0;    ///< i ∈ [1, 60]

  friend bool operator==(const ViewDigest&, const ViewDigest&) = default;

  /// 72-byte wire frame; also the Bloom-filter element for neighbor
  /// summaries (both sides must serialize identically for the membership
  /// check to work, so the element *is* the frame).
  [[nodiscard]] std::vector<std::uint8_t> serialize() const;

  /// Parses a frame. Throws std::invalid_argument on bad size and
  /// std::out_of_range on truncation.
  static ViewDigest parse(std::span<const std::uint8_t> frame);

  /// Metadata view used by the hash chain.
  [[nodiscard]] crypto::ChainStepMeta chain_meta() const noexcept {
    return {time, loc_x, loc_y, file_size};
  }
};

/// Plausibility window the *receiver* applies before accepting a VD
/// (§5.1.1 "Accepting neighbor VDs"): timestamp within the current 1-sec
/// interval and claimed location inside DSRC radius of the receiver.
struct VdAcceptancePolicy {
  double max_distance_m = 400.0;  ///< DSRC radio radius
  TimeSec max_clock_skew = 1;     ///< |T_now − T_vd| tolerance

  [[nodiscard]] bool acceptable(const ViewDigest& vd, TimeSec now,
                                double rx_x, double rx_y) const noexcept;
};

}  // namespace viewmap::dsrc
