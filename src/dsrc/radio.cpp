#include "dsrc/radio.h"

#include <algorithm>
#include <cmath>

namespace viewmap::dsrc {

double RadioModel::mean_rssi_dbm(double distance_m, bool line_of_sight) const {
  const double d = std::max(distance_m, 1.0);
  double loss = cfg_.ref_loss_db + 10.0 * cfg_.pathloss_exponent * std::log10(d);
  if (!line_of_sight) loss += cfg_.nlos_penalty_db;
  return cfg_.tx_power_dbm - loss;
}

double RadioModel::sample_rssi_dbm(double distance_m, bool line_of_sight,
                                   Rng& rng) const {
  const double sigma =
      line_of_sight ? cfg_.shadow_sigma_los_db : cfg_.shadow_sigma_nlos_db;
  return mean_rssi_dbm(distance_m, line_of_sight) + rng.normal(0.0, sigma);
}

double RadioModel::mean_pdr(double rssi_dbm) {
  // Logistic centered at -90 dBm: ≈0.95 at -80, ≈0.05 at -100.
  const double p = 1.0 / (1.0 + std::exp(-(rssi_dbm + 90.0) / 3.4));
  return std::clamp(p, 0.0, 1.0);
}

double RadioModel::sample_pdr(double rssi_dbm, Rng& rng) {
  // Per-frame channel variation: jitter the effective SNR before the
  // logistic. In the transition band this produces the wide scatter the
  // paper reports; in saturation it is absorbed by the clamp.
  const double jitter = rng.normal(0.0, 4.0);
  return mean_pdr(rssi_dbm + jitter);
}

bool RadioModel::try_deliver(double distance_m, bool line_of_sight,
                             bool blocked_by_traffic, Rng& rng,
                             double extra_loss_db) const {
  if (distance_m > cfg_.max_range_m) return false;
  double rssi = sample_rssi_dbm(distance_m, line_of_sight, rng) - extra_loss_db;
  if (blocked_by_traffic) rssi -= cfg_.traffic_block_penalty_db;
  return rng.bernoulli(sample_pdr(rssi, rng));
}

double traffic_blockage_probability(double distance_m, double blocker_density_per_m) {
  if (blocker_density_per_m <= 0.0 || distance_m <= 0.0) return 0.0;
  return 1.0 - std::exp(-blocker_density_per_m * distance_m);
}

}  // namespace viewmap::dsrc
