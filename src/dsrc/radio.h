// DSRC radio propagation model.
//
// Substitute for the paper's IEEE 802.11p on-board units. The field study
// (§7.2) found:
//   * open-road (LOS) linkage stays > 99% out to 400 m — distance alone
//     barely matters inside the radio range;
//   * RSSI in [-100, -80] dBm gives fluctuating PDR; above -80 dBm PDR is
//     near 1, below -100 dBm near 0 (Fig. 16, consistent with [17]);
//   * LOS obstruction (buildings, overpasses, tunnels, heavy traffic) is
//     the dominating factor for VP linkage (Table 2).
//
// The model: log-distance path loss with a large NLOS penalty, log-normal
// shadowing, and a smooth RSSI→PDR curve with receiver noise. Heavy
// vehicular traffic adds a stochastic partial blockage penalty.
#pragma once

#include <cstdint>

#include "common/rng.h"
#include "geo/geometry.h"

namespace viewmap::dsrc {

struct RadioConfig {
  double tx_power_dbm = 14.0;        ///< §7.1, recommended by [17]
  double max_range_m = 400.0;        ///< hard DSRC decode horizon (§5.1.2)
  double ref_loss_db = 40.0;         ///< path loss at 1 m
  double pathloss_exponent = 2.0;    ///< LOS exponent (open road)
  double nlos_penalty_db = 55.0;     ///< building/structure obstruction
  double shadow_sigma_los_db = 2.0;
  double shadow_sigma_nlos_db = 6.0;
  double traffic_block_penalty_db = 40.0;  ///< blockage by interposed tall vehicles
  double enclosed_penalty_db = 25.0;  ///< extra loss when an endpoint is inside a
                                      ///< structure (tunnel, garage, bridge deck)
};

class RadioModel {
 public:
  explicit RadioModel(const RadioConfig& cfg = {}) : cfg_(cfg) {}

  [[nodiscard]] const RadioConfig& config() const noexcept { return cfg_; }

  /// Deterministic mean RSSI at distance d (no shadowing).
  [[nodiscard]] double mean_rssi_dbm(double distance_m, bool line_of_sight) const;

  /// One shadowed RSSI sample.
  [[nodiscard]] double sample_rssi_dbm(double distance_m, bool line_of_sight,
                                       Rng& rng) const;

  /// Mean packet delivery ratio as a function of RSSI: near 1 above
  /// -80 dBm, near 0 below -100 dBm, S-shaped in between (Fig. 16).
  [[nodiscard]] static double mean_pdr(double rssi_dbm);

  /// One PDR realization including per-packet channel variation; this is
  /// what produces the paper's observed PDR "fluctuation" in the
  /// [-100, -80] dBm band.
  [[nodiscard]] static double sample_pdr(double rssi_dbm, Rng& rng);

  /// End-to-end Bernoulli delivery trial for one broadcast frame.
  /// `blocked_by_traffic` applies the vehicular blockage penalty on top of
  /// the geometric LOS state; `extra_loss_db` folds in scenario-specific
  /// attenuation (e.g. the enclosed-structure penalty).
  [[nodiscard]] bool try_deliver(double distance_m, bool line_of_sight,
                                 bool blocked_by_traffic, Rng& rng,
                                 double extra_loss_db = 0.0) const;

 private:
  RadioConfig cfg_;
};

/// Probability that the sight line between two vehicles at `distance_m` is
/// blocked by interposed tall traffic, given a linear density of such
/// vehicles (veh/m). Poisson thinning along the gap:  1 − e^{−λ·d}.
[[nodiscard]] double traffic_blockage_probability(double distance_m,
                                                  double blocker_density_per_m);

}  // namespace viewmap::dsrc
