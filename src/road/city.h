// Synthetic city generation.
//
// Substitute for the paper's OpenStreetMap extract of Seoul (§8) and for
// the four field-experiment environments (§7.2.1: open road, highway,
// residential area, downtown). A city is a grid of streets with
// rectangular building footprints filling the blocks; building size and
// density are what differentiate environments — exactly the obstacle
// structure that drives the paper's LOS results.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "geo/geometry.h"
#include "road/network.h"

namespace viewmap::road {

struct CityMap {
  RoadNetwork roads;
  std::vector<geo::Rect> buildings;
  geo::Rect bounds{};
};

struct GridCityConfig {
  double extent_m = 4000.0;      ///< side of the square map
  double block_m = 200.0;        ///< street spacing
  double building_fill = 0.7;    ///< probability a block hosts a building
  double building_setback_min = 8.0;   ///< min gap between building and street
  double building_setback_max = 40.0;  ///< max gap (larger ⇒ more sight lines)
};

/// Manhattan-grid city: streets every block_m, buildings inside blocks.
[[nodiscard]] CityMap make_grid_city(const GridCityConfig& cfg, Rng& rng);

/// The four measurement environments of §7.2.1.
enum class Environment { kOpenRoad, kHighway, kResidential, kDowntown };

[[nodiscard]] const char* environment_name(Environment env) noexcept;

/// Environment presets used by the Fig. 15 reproduction. `extent_m` is the
/// length of the drive corridor.
[[nodiscard]] CityMap make_environment(Environment env, double extent_m, Rng& rng);

}  // namespace viewmap::road
