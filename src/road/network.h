// Road network graph.
//
// Substrate for two paper dependencies: (i) SUMO-style vehicle mobility
// (vehicles drive shortest-path trips over a street map, §8) and (ii) the
// Google Directions API used when fabricating guard-VP trajectories
// (§5.1.2 — "readily available tools that instantly return a driving route
// between two points on a road map").
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "geo/geometry.h"

namespace viewmap::road {

using NodeId = std::uint32_t;

struct Edge {
  NodeId to = 0;
  double length_m = 0.0;
};

/// Undirected road graph with Euclidean node positions.
class RoadNetwork {
 public:
  NodeId add_node(geo::Vec2 pos);
  /// Adds an undirected road segment; length defaults to the Euclidean
  /// distance between endpoints.
  void add_road(NodeId a, NodeId b);

  [[nodiscard]] std::size_t node_count() const noexcept { return nodes_.size(); }
  [[nodiscard]] geo::Vec2 node_pos(NodeId id) const { return nodes_.at(id); }
  [[nodiscard]] std::span<const Edge> neighbors(NodeId id) const {
    return adjacency_.at(id);
  }
  [[nodiscard]] std::span<const geo::Vec2> node_positions() const noexcept {
    return nodes_;
  }

  /// Node nearest to an arbitrary point (linear scan; maps are small).
  [[nodiscard]] NodeId nearest_node(geo::Vec2 p) const;

 private:
  std::vector<geo::Vec2> nodes_;
  std::vector<std::vector<Edge>> adjacency_;
};

}  // namespace viewmap::road
