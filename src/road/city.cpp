#include "road/city.h"

#include <stdexcept>

namespace viewmap::road {

CityMap make_grid_city(const GridCityConfig& cfg, Rng& rng) {
  if (cfg.extent_m <= 0 || cfg.block_m <= 0 || cfg.block_m > cfg.extent_m)
    throw std::invalid_argument("make_grid_city: bad dimensions");

  CityMap city;
  city.bounds = {{0.0, 0.0}, {cfg.extent_m, cfg.extent_m}};

  const int lines = static_cast<int>(cfg.extent_m / cfg.block_m) + 1;

  // Intersection nodes on a regular lattice.
  std::vector<std::vector<NodeId>> grid(static_cast<std::size_t>(lines));
  for (int iy = 0; iy < lines; ++iy) {
    grid[static_cast<std::size_t>(iy)].resize(static_cast<std::size_t>(lines));
    for (int ix = 0; ix < lines; ++ix) {
      const geo::Vec2 p{ix * cfg.block_m, iy * cfg.block_m};
      grid[static_cast<std::size_t>(iy)][static_cast<std::size_t>(ix)] =
          city.roads.add_node(p);
    }
  }
  for (int iy = 0; iy < lines; ++iy) {
    for (int ix = 0; ix < lines; ++ix) {
      const NodeId here = grid[static_cast<std::size_t>(iy)][static_cast<std::size_t>(ix)];
      if (ix + 1 < lines)
        city.roads.add_road(here, grid[static_cast<std::size_t>(iy)][static_cast<std::size_t>(ix + 1)]);
      if (iy + 1 < lines)
        city.roads.add_road(here, grid[static_cast<std::size_t>(iy + 1)][static_cast<std::size_t>(ix)]);
    }
  }

  // Buildings inside blocks, set back from the streets.
  for (int iy = 0; iy + 1 < lines; ++iy) {
    for (int ix = 0; ix + 1 < lines; ++ix) {
      if (!rng.bernoulli(cfg.building_fill)) continue;
      const double x0 = ix * cfg.block_m;
      const double y0 = iy * cfg.block_m;
      const double sx = rng.uniform(cfg.building_setback_min, cfg.building_setback_max);
      const double sy = rng.uniform(cfg.building_setback_min, cfg.building_setback_max);
      const double ex = rng.uniform(cfg.building_setback_min, cfg.building_setback_max);
      const double ey = rng.uniform(cfg.building_setback_min, cfg.building_setback_max);
      geo::Rect b{{x0 + sx, y0 + sy}, {x0 + cfg.block_m - ex, y0 + cfg.block_m - ey}};
      if (b.width() > 5.0 && b.height() > 5.0) city.buildings.push_back(b);
    }
  }
  return city;
}

const char* environment_name(Environment env) noexcept {
  switch (env) {
    case Environment::kOpenRoad: return "Open road";
    case Environment::kHighway: return "Highway";
    case Environment::kResidential: return "Residential area";
    case Environment::kDowntown: return "Downtown";
  }
  return "?";
}

CityMap make_environment(Environment env, double extent_m, Rng& rng) {
  switch (env) {
    case Environment::kOpenRoad: {
      // One straight road, nothing around: the paper measures VLR > 99%
      // out to the full 400 m DSRC range here.
      CityMap city;
      city.bounds = {{0.0, -50.0}, {extent_m, 50.0}};
      const NodeId a = city.roads.add_node({0.0, 0.0});
      const NodeId b = city.roads.add_node({extent_m, 0.0});
      city.roads.add_road(a, b);
      return city;
    }
    case Environment::kHighway: {
      // Two parallel carriageways; occasional sound-wall style obstacles
      // well off the road. Blockage comes mostly from vehicle traffic,
      // which the radio model adds separately.
      CityMap city;
      city.bounds = {{0.0, -100.0}, {extent_m, 100.0}};
      const NodeId a1 = city.roads.add_node({0.0, -8.0});
      const NodeId b1 = city.roads.add_node({extent_m, -8.0});
      const NodeId a2 = city.roads.add_node({0.0, 8.0});
      const NodeId b2 = city.roads.add_node({extent_m, 8.0});
      city.roads.add_road(a1, b1);
      city.roads.add_road(a2, b2);
      for (double x = 300.0; x + 150.0 < extent_m; x += 600.0)
        if (rng.bernoulli(0.5))
          city.buildings.push_back({{x, 40.0}, {x + 150.0, 55.0}});
      return city;
    }
    case Environment::kResidential: {
      // Small blocks, modest houses, generous gaps between footprints.
      GridCityConfig cfg;
      cfg.extent_m = extent_m;
      cfg.block_m = 100.0;
      cfg.building_fill = 0.65;
      cfg.building_setback_min = 12.0;
      cfg.building_setback_max = 35.0;
      return make_grid_city(cfg, rng);
    }
    case Environment::kDowntown: {
      // Large buildings filling almost the whole block: sight lines only
      // survive along street canyons.
      GridCityConfig cfg;
      cfg.extent_m = extent_m;
      cfg.block_m = 150.0;
      cfg.building_fill = 0.92;
      cfg.building_setback_min = 6.0;
      cfg.building_setback_max = 12.0;
      return make_grid_city(cfg, rng);
    }
  }
  throw std::invalid_argument("make_environment: unknown environment");
}

}  // namespace viewmap::road
