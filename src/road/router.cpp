#include "road/router.h"

#include <algorithm>
#include <limits>
#include <queue>

namespace viewmap::road {

std::optional<Route> Router::shortest_path(NodeId from, NodeId to) const {
  const std::size_t n = net_->node_count();
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> dist(n, kInf);
  std::vector<NodeId> prev(n, 0);
  std::vector<bool> settled(n, false);

  const geo::Vec2 goal = net_->node_pos(to);
  auto heuristic = [&](NodeId v) { return geo::distance(net_->node_pos(v), goal); };

  using QItem = std::pair<double, NodeId>;  // (g + h, node)
  std::priority_queue<QItem, std::vector<QItem>, std::greater<>> open;
  dist[from] = 0.0;
  open.emplace(heuristic(from), from);

  while (!open.empty()) {
    const auto [f, u] = open.top();
    open.pop();
    if (settled[u]) continue;
    settled[u] = true;
    if (u == to) break;
    for (const Edge& e : net_->neighbors(u)) {
      const double nd = dist[u] + e.length_m;
      if (nd < dist[e.to]) {
        dist[e.to] = nd;
        prev[e.to] = u;
        open.emplace(nd + heuristic(e.to), e.to);
      }
    }
  }

  if (dist[to] == kInf) return std::nullopt;

  Route route;
  route.length_m = dist[to];
  for (NodeId v = to;; v = prev[v]) {
    route.nodes.push_back(v);
    if (v == from) break;
  }
  std::reverse(route.nodes.begin(), route.nodes.end());
  route.points.reserve(route.nodes.size());
  for (NodeId v : route.nodes) route.points.push_back(net_->node_pos(v));
  return route;
}

std::optional<Route> Router::route_between(geo::Vec2 from, geo::Vec2 to) const {
  const NodeId a = net_->nearest_node(from);
  const NodeId b = net_->nearest_node(to);
  if (a == b) {
    // Both endpoints snap to the same intersection: direct connection.
    Route r;
    r.nodes = {a};
    r.points = {from, to};
    r.length_m = geo::distance(from, to);
    return r;
  }
  auto base = shortest_path(a, b);
  if (!base) return std::nullopt;
  Route r = std::move(*base);
  // Stitch the exact query endpoints onto the snapped route.
  if (geo::distance(from, r.points.front()) > 1e-9) r.points.insert(r.points.begin(), from);
  if (geo::distance(to, r.points.back()) > 1e-9) r.points.push_back(to);
  r.length_m = geo::polyline_length(r.points);
  return r;
}

}  // namespace viewmap::road
