// Shortest-path routing over the road network (A*).
//
// Stands in for the Google Directions API that vehicles use when creating
// guard-VP trajectories (§5.1.2): given two points on the map, return a
// plausible driving route between them.
#pragma once

#include <optional>
#include <vector>

#include "road/network.h"

namespace viewmap::road {

struct Route {
  std::vector<NodeId> nodes;       ///< traversed intersections
  std::vector<geo::Vec2> points;   ///< polyline in meters
  double length_m = 0.0;
};

class Router {
 public:
  explicit Router(const RoadNetwork& net) : net_(&net) {}

  /// A* shortest path between two graph nodes. nullopt when disconnected.
  [[nodiscard]] std::optional<Route> shortest_path(NodeId from, NodeId to) const;

  /// Directions-API-style query: snap both endpoints to the nearest road
  /// node and route between them; the returned polyline starts/ends at the
  /// exact query points so guard trajectories line up with real VD fields.
  [[nodiscard]] std::optional<Route> route_between(geo::Vec2 from, geo::Vec2 to) const;

 private:
  const RoadNetwork* net_;
};

}  // namespace viewmap::road
