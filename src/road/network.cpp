#include "road/network.h"

#include <limits>
#include <stdexcept>

namespace viewmap::road {

NodeId add_checked(std::size_t n) {
  if (n > std::numeric_limits<NodeId>::max())
    throw std::length_error("RoadNetwork: too many nodes");
  return static_cast<NodeId>(n);
}

NodeId RoadNetwork::add_node(geo::Vec2 pos) {
  const NodeId id = add_checked(nodes_.size());
  nodes_.push_back(pos);
  adjacency_.emplace_back();
  return id;
}

void RoadNetwork::add_road(NodeId a, NodeId b) {
  if (a == b) throw std::invalid_argument("RoadNetwork: self-loop road");
  const double len = geo::distance(nodes_.at(a), nodes_.at(b));
  adjacency_.at(a).push_back({b, len});
  adjacency_.at(b).push_back({a, len});
}

NodeId RoadNetwork::nearest_node(geo::Vec2 p) const {
  if (nodes_.empty()) throw std::logic_error("RoadNetwork: empty network");
  NodeId best = 0;
  double best_d = std::numeric_limits<double>::infinity();
  for (NodeId i = 0; i < nodes_.size(); ++i) {
    const double d = geo::distance(nodes_[i], p);
    if (d < best_d) {
      best_d = d;
      best = i;
    }
  }
  return best;
}

}  // namespace viewmap::road
