#include "store/vp_store.h"

#include <cstring>
#include <fstream>
#include <stdexcept>
#include <unordered_set>

#include "common/bytes.h"

namespace viewmap::store {

namespace {

constexpr char kMagic[4] = {'V', 'M', 'D', 'B'};

void write_u32(std::ostream& out, std::uint32_t v) {
  char b[4];
  for (int i = 0; i < 4; ++i) b[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  out.write(b, 4);
}

void write_u64(std::ostream& out, std::uint64_t v) {
  char b[8];
  for (int i = 0; i < 8; ++i) b[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  out.write(b, 8);
}

std::uint32_t read_u32(std::istream& in) {
  unsigned char b[4];
  if (!in.read(reinterpret_cast<char*>(b), 4))
    throw std::runtime_error("vp_store: truncated header");
  return static_cast<std::uint32_t>(b[0]) | static_cast<std::uint32_t>(b[1]) << 8 |
         static_cast<std::uint32_t>(b[2]) << 16 | static_cast<std::uint32_t>(b[3]) << 24;
}

std::uint64_t read_u64(std::istream& in) {
  std::uint64_t v = 0;
  unsigned char b[8];
  if (!in.read(reinterpret_cast<char*>(b), 8))
    throw std::runtime_error("vp_store: truncated header");
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(b[i]) << (8 * i);
  return v;
}

}  // namespace

void save_snapshot(const index::DbSnapshot& snap, std::ostream& out) {
  out.write(kMagic, 4);
  write_u32(out, kFormatVersion);

  // all()/trusted_ids() iterate the pinned shards in (unit-time, id)
  // order, so equal snapshots serialize to equal bytes — and a snapshot
  // never changes, however long serialization takes.
  const auto profiles = snap.all();
  const auto trusted = snap.trusted_ids();
  write_u64(out, profiles.size());
  write_u64(out, trusted.size());
  write_u64(out, static_cast<std::uint64_t>(snap.trusted_now()));
  for (const auto* profile : profiles) {
    const auto payload = profile->serialize();
    out.write(reinterpret_cast<const char*>(payload.data()),
              static_cast<std::streamsize>(payload.size()));
  }
  for (const auto& id : trusted)
    out.write(reinterpret_cast<const char*>(id.bytes.data()),
              static_cast<std::streamsize>(id.bytes.size()));
  if (!out) throw std::runtime_error("vp_store: write failed");
}

void save_snapshot_file(const index::DbSnapshot& snap, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("vp_store: cannot open " + path);
  save_snapshot(snap, out);
}

void save_database(const sys::VpDatabase& db, std::ostream& out) {
  save_snapshot(db.snapshot(), out);
}

void save_database_file(const sys::VpDatabase& db, const std::string& path) {
  save_snapshot_file(db.snapshot(), path);
}

sys::VpDatabase load_database(std::istream& in, LoadStats* stats) {
  char magic[4];
  if (!in.read(magic, 4) || std::memcmp(magic, kMagic, 4) != 0)
    throw std::runtime_error("vp_store: bad magic");
  const std::uint32_t version = read_u32(in);
  if (version != kFormatVersion)
    throw std::runtime_error("vp_store: unsupported version");

  const std::uint64_t vp_count = read_u64(in);
  const std::uint64_t trusted_count = read_u64(in);
  const TimeSec saved_clock = static_cast<TimeSec>(read_u64(in));

  // Read trusted ids after the profiles; we need them first to route each
  // profile through the right upload path, so buffer the profiles.
  std::vector<std::vector<std::uint8_t>> payloads;
  payloads.reserve(vp_count);
  for (std::uint64_t i = 0; i < vp_count; ++i) {
    std::vector<std::uint8_t> payload(vp::kVpWireSize);
    if (!in.read(reinterpret_cast<char*>(payload.data()),
                 static_cast<std::streamsize>(payload.size())))
      throw std::runtime_error("vp_store: truncated profile section");
    payloads.push_back(std::move(payload));
  }
  std::unordered_set<std::string> trusted;
  for (std::uint64_t i = 0; i < trusted_count; ++i) {
    Id16 id;
    if (!in.read(reinterpret_cast<char*>(id.bytes.data()),
                 static_cast<std::streamsize>(id.bytes.size())))
      throw std::runtime_error("vp_store: truncated trusted section");
    trusted.insert(std::string(id.bytes.begin(), id.bytes.end()));
  }

  sys::VpDatabase db;
  LoadStats local;
  for (const auto& payload : payloads) {
    bool accepted = false;
    try {
      auto profile = vp::ViewProfile::parse(payload);
      const std::string key(profile.vp_id().bytes.begin(), profile.vp_id().bytes.end());
      accepted = db.restore(std::move(profile), trusted.contains(key));
    } catch (const std::exception&) {
      accepted = false;
    }
    if (accepted) {
      ++local.profiles_loaded;
    } else {
      ++local.profiles_rejected;
    }
  }
  // Force-set, don't advance: trusted inserts above already advanced the
  // clock to their max unit-time, which exceeds the saved value when the
  // operator had recovered a poisoned clock via reset_clock() — a
  // monotonic advance (or skipping a min-sentinel saved value, which
  // reset_clock(min) can legitimately produce) would silently undo that
  // recovery on reload. Unconditional reset restores the exact state.
  db.reset_clock(saved_clock);
  local.trusted_marked = db.trusted_count();
  local.shards_loaded = db.shard_stats().size();
  if (stats != nullptr) *stats = local;
  return db;
}

sys::VpDatabase load_database_file(const std::string& path, LoadStats* stats) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("vp_store: cannot open " + path);
  return load_database(in, stats);
}

}  // namespace viewmap::store
