// Incremental, crash-consistent VP persistence: sealed shard segments +
// atomically-published manifests.
//
// The legacy VMDB container (store/vp_store) rewrites every byte of the
// database on each save — O(database) I/O per checkpoint, a full reparse
// on restart, and no safe point if the process dies mid-write. A deployed
// ViewMap service checkpoints continuously over weeks of VP history
// (§2: dashcam retention is 2–3 weeks), so persistence must be
// *incremental* and *crash-consistent*. This module stores a database as:
//
//   dir/
//     seg-<digest16 hex>.vseg   one sealed segment per unit-time shard,
//                               named by its content digest
//     manifest-<seq hex>.vman   one small root per checkpoint: the list
//                               of (unit-time, digest, counts) it is
//                               composed of, plus the trusted clock
//     *.tmp                     in-flight writes (crash debris; GC'd)
//
// Segment v1:     "VSEG" | u32 1 | content | SHA-256(content)
//   content    =  unit_time i64 | vp_count u64 | trusted_count u64 |
//                 vp_count × ViewProfile payload (ascending id) |
//                 trusted_count × Id16 (ascending)
// Segment v2:     "VSG2" | u32 2 | unit_time i64 | vp_count u64 |
//   (.vseg2)      trusted_count u64 | arena_len u64 |
//                 vp_count × (offset u64, len u32) offset table |
//                 payload arena (ascending id) |
//                 trusted_count × Id16 (ascending) |
//                 Hash32 content digest | u32 CRC32C(all preceding bytes)
//   The arena holds the profiles in ascending-id order, so header fields
//   + arena + trusted ids ARE the canonical content bytes and the stored
//   digest equals TimeShard::content_digest() — identity is codec-
//   independent, incremental reuse works across codecs (see
//   SegmentCodec). See src/store/README.md for the full v2 rationale.
// Manifest file:  "VMAN" | u32 version | u64 sequence | i64 trusted_clock |
//                 u64 shard_count | shard_count × entry | SHA-256(above)
//   entry v1   =  unit_time i64 | vp_count u64 | trusted_count u64 |
//                 Hash32 content digest
//   entry v2   =  the same + u32 codec (1|2) before the digest
//
// Incrementality: a checkpoint walks the snapshot's shards and asks each
// for its content digest (cached on the shard — an untouched shard
// answers without re-serializing a byte, see TimeShard::content_digest).
// A digest whose segment file already exists is *sealed by reference*:
// the new manifest lists it, nothing is rewritten. Only new/changed
// shards cost serialization + I/O, so checkpoint cost is O(churn), not
// O(database).
//
// Crash consistency: every file is written to a .tmp sibling, fsynced,
// and atomically renamed into its final name — a file under a final name
// is always complete. Segments are content-addressed and therefore never
// overwritten in place; the manifest for sequence N is a NEW file, so no
// previously-sealed checkpoint is ever touched. The manifest rename is
// the commit point: a crash at any byte offset before it leaves every
// older manifest (and every segment it references — GC keeps them, see
// below) intact, so recovery lands exactly on the last sealed
// checkpoint. Recovery walks manifests newest-first and returns the
// first that validates end to end (manifest checksum, per-segment magic/
// digest/count checks, per-profile structural screen); a damaged newest
// checkpoint falls back to its predecessor instead of crashing or
// loading malformed VPs.
//
// GC: after each checkpoint (or via gc()), the newest `keep_manifests`
// manifests survive together with every segment any of them references;
// older manifests, unreferenced segments, and stale .tmp files are
// unlinked. Retention eviction therefore works across restarts for free:
// an evicted shard simply stops being referenced, and its segment is
// reclaimed once the last manifest naming it rotates out. If a kept
// manifest cannot be parsed, segment GC is skipped for that round (its
// references are unknown — deleting would turn one corrupt file into
// data loss).
//
// Concurrency contract: checkpoint()/gc() mutate the directory and must
// be driven by one thread at a time (the same single-caller discipline
// as ViewMapService::ingest_uploads()); the snapshot argument makes a
// checkpoint fully concurrent with live ingest, eviction, and
// investigations. recover() only reads and is safe from any thread.
#pragma once

#include <cerrno>
#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/types.h"
#include "index/db_snapshot.h"
#include "system/vp_database.h"

namespace viewmap::obs {
class MetricsRegistry;  // obs/metrics.h
class Counter;
class Histogram;
}  // namespace viewmap::obs

namespace viewmap::store {

/// I/O failure from the store's durable-write path, carrying the errno
/// and a transient-vs-permanent classification so callers (the
/// checkpoint daemon's retry loop, health reporting) can react without
/// parsing message strings. Corruption/validation failures during
/// recovery stay plain std::runtime_error — retrying those is pointless.
class StoreError : public std::runtime_error {
 public:
  StoreError(const std::string& what, int err)
      : std::runtime_error(err != 0 ? what + " (" + std::strerror(err) + ")" : what),
        errno_(err) {}

  [[nodiscard]] int errno_value() const noexcept { return errno_; }

  /// Transient failures are worth retrying on the same store: the
  /// condition can clear without operator action (disk-full after GC or
  /// log rotation, interrupted syscalls, kernel back-pressure, a flaky
  /// device returning EIO). Permanent ones (read-only filesystem,
  /// permissions, a path that vanished) need intervention — retry still
  /// happens (an operator remount DOES fix EROFS) but backoff jumps
  /// straight to its cap instead of ramping.
  [[nodiscard]] bool transient() const noexcept {
    switch (errno_) {
      case ENOSPC:
      case EDQUOT:
      case EIO:
      case EAGAIN:
      case EINTR:
      case ENOMEM:
      case EBUSY:
      case ETIMEDOUT:
        return true;
      default:
        return false;
    }
  }

  /// Low-cardinality label for the failures-by-reason counter.
  [[nodiscard]] const char* reason() const noexcept {
    switch (errno_) {
      case ENOSPC:
      case EDQUOT:
        return "enospc";
      case EIO:
        return "eio";
      case EROFS:
      case EACCES:
      case EPERM:
        return "permission";
      default:
        return "other";
    }
  }

 private:
  int errno_ = 0;
};

inline constexpr std::uint32_t kSegmentFormatVersion = 1;
inline constexpr std::uint32_t kSegmentFormatVersionV2 = 2;
inline constexpr std::uint32_t kManifestFormatVersion = 1;
inline constexpr std::uint32_t kManifestFormatVersionV2 = 2;

/// On-disk layout a segment is sealed in. Both are readable forever; the
/// codec only selects what checkpoint() writes for NEW segments.
///
///   kV1  "VSEG": the PR 5 stream format — the canonical content bytes
///        (TimeShard::stream_content) framed by magic/version and a
///        SHA-256 trailer. Verifying it on restart costs a full SHA-256
///        pass; loading it costs a per-profile parse.
///   kV2  "VSG2" (.vseg2): flat packed arrays — an offset/length table
///        into a payload arena holding the profiles in ascending-id
///        order, so the arena IS the canonical payload section and a
///        shard can be bulk-read and adopted wholesale
///        (VpTimeline::adopt_shard) instead of re-inserted profile by
///        profile. Integrity is a whole-file CRC32C (memory-bandwidth
///        cheap) plus the embedded content digest checked against the
///        manifest; identity stays the same SHA-256 content digest, so
///        v1 and v2 segments of one shard share a digest and incremental
///        reuse works across codecs.
enum class SegmentCodec : std::uint32_t { kV1 = 1, kV2 = 2 };

/// One durable filesystem mutation a checkpoint performed, in order.
/// Test instrumentation (SegmentStoreConfig::op_log): the fault-injection
/// harness replays every prefix of this sequence — truncating the write
/// it lands inside — to prove recovery from a crash at any byte offset.
/// Paths are file names relative to the store directory, so a recorded
/// sequence can be replayed into a scratch directory.
struct RecordedOp {
  enum class Kind { kWriteFile, kRename, kRemove };
  Kind kind = Kind::kWriteFile;
  std::string name;                 ///< target (write/remove) or rename source
  std::string to;                   ///< rename destination
  std::vector<std::uint8_t> bytes;  ///< full contents written (kWriteFile)
};

struct SegmentStoreConfig {
  /// How many checkpoint manifests (newest-first) survive GC — the
  /// recovery fallback depth. Minimum 1; the default keeps the sealed
  /// predecessor so a corrupted newest checkpoint never strands the
  /// store.
  std::size_t keep_manifests = 2;
  /// fsync file data before each rename and the directory after — the
  /// barrier that makes the recorded operation order the on-disk order.
  /// Off only in tests/benches that model durability logically.
  bool fsync = true;
  /// Codec NEW segments are sealed in. kV1 writes byte-identical PR 5
  /// segments AND version-1 manifests, so a store driven with kV1 is
  /// indistinguishable from one written by the old code
  /// (viewmap_convert's downgrade migration relies on this — with kV1,
  /// only v1 segments are ever reused, whatever reuse_any_codec says).
  SegmentCodec codec = SegmentCodec::kV2;
  /// When true (default) a kV2 checkpoint reuses an unchanged shard's
  /// sealed segment in EITHER codec — upgrading a store never rewrites
  /// history, new churn just arrives in v2. False forces shards whose
  /// sealed segment is not in `codec` to be rewritten: the migration
  /// knob (one full checkpoint converts the whole store).
  bool reuse_any_codec = true;
  /// Recovery worker-pool width: segments are read, validated, and
  /// parsed into ready-to-adopt shards by this many threads. Adoption
  /// itself stays ordered and serial, so the recovered database is
  /// bit-identical whatever the width (the determinism tests prove it).
  /// 0 = hardware_concurrency().
  unsigned restore_threads = 0;
  /// Paranoia knob: additionally recompute the full SHA-256 content
  /// digest of every v2 segment during recovery. v1 always pays the SHA
  /// pass (the digest is its only integrity check); v2's default check —
  /// whole-file CRC32C plus the embedded-digest/manifest comparison —
  /// already catches torn writes, bit rot, and stale-file swaps at
  /// memory-bandwidth cost instead of hash cost.
  bool deep_verify = false;
  /// Test instrumentation: when set, every durable mutation is appended
  /// here in execution order. Not owned.
  std::vector<RecordedOp>* op_log = nullptr;
  /// When set, the store publishes checkpoint/recovery counters and
  /// fsync latency here (see src/obs/README.md for the names). Null
  /// disables instrumentation; ViewMapService wires its own registry in
  /// lazily via adopt_metrics(). Not owned; must outlive the store.
  obs::MetricsRegistry* metrics = nullptr;
};

struct CheckpointStats {
  std::uint64_t sequence = 0;        ///< manifest sequence number sealed
  std::size_t shards_total = 0;      ///< shards in the pinned snapshot
  std::size_t segments_written = 0;  ///< new/changed shards serialized
  std::size_t segments_reused = 0;   ///< sealed by reference, zero I/O
  std::uint64_t bytes_written = 0;   ///< segment + manifest bytes this call
  std::uint64_t segment_bytes_total = 0;  ///< full size of all referenced segments
  std::size_t files_removed = 0;     ///< GC'd manifests/segments/temps
};

struct RecoveryStats {
  std::uint64_t sequence = 0;        ///< manifest the store recovered to
  std::size_t manifests_tried = 0;   ///< >1 ⇔ fallback happened
  std::size_t segments_loaded = 0;
  std::uint64_t manifest_profiles = 0;  ///< VP count the manifest promises
  std::size_t profiles_loaded = 0;
  std::size_t profiles_rejected = 0;  ///< failed the structural screen
  std::size_t trusted_marked = 0;
  std::size_t segments_v1 = 0;       ///< segments loaded from the v1 stream codec
  std::size_t segments_v2 = 0;       ///< segments loaded from the packed v2 codec
  unsigned threads_used = 0;         ///< recovery worker-pool width actually used
  /// Per-phase timings. read/validate/parse are summed across workers
  /// (CPU time — exceeds wall clock when parallel); adopt and total are
  /// wall clock on the recovering thread.
  std::uint64_t read_us = 0;
  std::uint64_t validate_us = 0;
  std::uint64_t parse_us = 0;
  std::uint64_t adopt_us = 0;
  std::uint64_t total_us = 0;
};

class SegmentStore {
 public:
  explicit SegmentStore(std::string dir, SegmentStoreConfig cfg = {});

  /// Seals one checkpoint of the pinned snapshot: writes segments for
  /// new/changed shards only, reuses sealed segments by digest, then
  /// atomically publishes the manifest and garbage-collects. Throws
  /// std::runtime_error on I/O failure — the store is then still exactly
  /// its previous checkpoint (nothing final was overwritten).
  CheckpointStats checkpoint(const index::DbSnapshot& snap);

  /// Loads the newest recoverable checkpoint into a fresh database
  /// (optionally with the caller's upload policy + index config, so
  /// retention/screening behave identically after a restart). A store
  /// with no manifest at all — including a directory never created —
  /// yields an empty database; a directory that exists but cannot be
  /// listed, or whose manifests are all damaged, throws
  /// std::runtime_error (an I/O failure must never masquerade as a
  /// fresh store). Damaged newest checkpoints fall back
  /// (RecoveryStats::manifests_tried > 1).
  [[nodiscard]] sys::VpDatabase recover(RecoveryStats* stats = nullptr) const;
  [[nodiscard]] sys::VpDatabase recover(vp::VpUploadPolicy policy,
                                        index::TimelineConfig index_cfg,
                                        RecoveryStats* stats = nullptr) const;

  /// Point-in-time restore: loads exactly the checkpoint sealed under
  /// manifest `sequence` — the daemon's "restart from a chosen
  /// checkpoint" path, and the investigation path for historical
  /// database states (run with keep_manifests > 2 to retain history).
  /// Unlike the newest-first recover() above this never falls back: a
  /// missing or damaged named manifest throws std::runtime_error,
  /// because silently landing on a different checkpoint than the one the
  /// operator named would defeat the point of naming it.
  [[nodiscard]] sys::VpDatabase recover(std::uint64_t sequence,
                                        RecoveryStats* stats = nullptr) const;
  [[nodiscard]] sys::VpDatabase recover(std::uint64_t sequence,
                                        vp::VpUploadPolicy policy,
                                        index::TimelineConfig index_cfg,
                                        RecoveryStats* stats = nullptr) const;

  /// Manifest sequences present on disk, ascending — the menu a
  /// point-in-time recover(sequence) picks from. Presence does not imply
  /// loadability (that is recover's job to verify).
  [[nodiscard]] std::vector<std::uint64_t> manifest_sequences() const;

  /// Newest manifest sequence present (0 = none). Scans the directory.
  [[nodiscard]] std::uint64_t latest_sequence() const;

  /// Removes everything the retention rules above say is dead. Returns
  /// files unlinked. checkpoint() calls this automatically.
  std::size_t gc();

  /// Unlinks crash debris only: stale `*.tmp` files from an interrupted
  /// checkpoint (ours alone — `.vseg.tmp` / `.vseg2.tmp` / `.vman.tmp`;
  /// foreign files are untouched). Returns files removed. Safe on a
  /// directory that does not exist (returns 0). Call it before starting
  /// a checkpoint cadence on a recovered store — recover() itself stays
  /// read-only per its concurrency contract, so the sweep is an explicit
  /// mutation under the same single-writer discipline as checkpoint().
  std::size_t sweep_temps();

  [[nodiscard]] const std::string& dir() const noexcept { return dir_; }
  [[nodiscard]] const SegmentStoreConfig& config() const noexcept { return cfg_; }

  /// Late metrics wiring: publishes this store's metrics into `registry`
  /// unless a registry is already wired (then a no-op — first wins, so a
  /// store shared between services keeps one consistent set of
  /// counters). ViewMapService calls this on every checkpoint()/
  /// restore_from(), which is why it is const: the handles are caching
  /// state, not store content. Call from the single control thread that
  /// drives checkpoint()/recover() — it is not synchronized.
  void adopt_metrics(obs::MetricsRegistry* registry) const;

  /// The v1 (".vseg") and v2 (".vseg2") file names for a content digest.
  /// One shard sealed in both codecs yields two distinct files sharing
  /// the digest — which codec a manifest entry references travels in the
  /// entry itself.
  [[nodiscard]] static std::string segment_file_name(const Hash32& digest);
  [[nodiscard]] static std::string segment_file_name_v2(const Hash32& digest);
  [[nodiscard]] static std::string manifest_file_name(std::uint64_t sequence);

 private:
  struct ManifestEntry {
    TimeSec unit_time = 0;
    std::uint64_t vp_count = 0;
    std::uint64_t trusted_count = 0;
    SegmentCodec codec = SegmentCodec::kV1;
    Hash32 digest{};
  };
  struct Manifest {
    std::uint64_t sequence = 0;
    TimeSec trusted_clock = 0;
    std::vector<ManifestEntry> entries;
  };

  /// Manifest sequences present on disk, descending.
  [[nodiscard]] std::vector<std::uint64_t> list_manifests_desc() const;
  /// Parses + checksum-validates a manifest file. Throws on any damage.
  [[nodiscard]] Manifest read_manifest(std::uint64_t sequence) const;
  /// Loads every segment of `manifest` into `db`: a worker pool
  /// (restore_threads wide) reads/validates/parses segments into
  /// ready-to-adopt shards; the calling thread then adopts them in
  /// manifest order (deterministic whatever the pool width). Throws on
  /// any segment damage (missing file, bad magic/version, CRC / digest /
  /// count / offset-table mismatch) — when several segments are damaged,
  /// deterministically the earliest one in manifest order.
  void load_segments(const Manifest& manifest, sys::VpDatabase& db,
                     RecoveryStats& stats) const;
  [[nodiscard]] sys::VpDatabase recover_impl(vp::VpUploadPolicy policy,
                                             index::TimelineConfig index_cfg,
                                             RecoveryStats* stats) const;
  /// Parses + fully validates exactly one checkpoint into a fresh
  /// database. Throws on any damage; shared by the fallback walk and the
  /// point-in-time recover(sequence).
  [[nodiscard]] sys::VpDatabase load_checkpoint(std::uint64_t sequence,
                                                vp::VpUploadPolicy policy,
                                                index::TimelineConfig index_cfg,
                                                RecoveryStats& stats) const;

  void write_file(const std::string& name, std::span<const std::uint8_t> bytes);
  /// write_file to `name + ".tmp"` then atomic-rename to `name` — and on
  /// ANY failure unlink the temp before rethrowing, so a failed
  /// checkpoint never leaves `.tmp` debris for retries to trip over.
  void publish_file(const std::string& name, std::span<const std::uint8_t> bytes);
  void rename_file(const std::string& from, const std::string& to);
  bool remove_file(const std::string& name);
  void fsync_dir() const;
  [[nodiscard]] std::string full_path(const std::string& name) const;

  /// Registry handles — all null until a registry is wired (config or
  /// adopt_metrics). Mutable: they cache where to report, they are not
  /// store content, and recovery instrumentation runs in const methods.
  struct StoreMetrics {
    obs::Counter* checkpoints = nullptr;
    obs::Counter* bytes_written = nullptr;
    obs::Counter* segments_written = nullptr;
    obs::Counter* segments_reused = nullptr;
    obs::Counter* recoveries = nullptr;
    obs::Counter* recovered_profiles = nullptr;
    obs::Histogram* checkpoint_us = nullptr;
    obs::Histogram* fsync_us = nullptr;
    obs::Histogram* recover_us = nullptr;
    /// Per-phase recovery timings (one record per recovery, the summed
    /// worker micros from RecoveryStats) — makes a slow restart
    /// attributable to I/O vs validation vs parse vs adoption.
    obs::Histogram* recover_read_us = nullptr;
    obs::Histogram* recover_validate_us = nullptr;
    obs::Histogram* recover_parse_us = nullptr;
    obs::Histogram* recover_adopt_us = nullptr;
  };

  std::string dir_;
  SegmentStoreConfig cfg_;
  mutable StoreMetrics m_;
};

}  // namespace viewmap::store
